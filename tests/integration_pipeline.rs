//! End-to-end integration: data generation → feature extraction → runtime
//! scheduling → SVM training → prediction, across crates.

#![allow(clippy::needless_range_loop)]

use dls::prelude::*;
use dls_data::labels::linear_teacher_labels;

/// The full paper pipeline on every Table VI dataset (scaled): the
/// scheduler must pick a basic format and training on that format must
/// converge to a useful model.
#[test]
fn full_pipeline_on_all_table6_datasets() {
    for name in dls_data::specs::TABLE6_DATASETS {
        let scale = match name {
            "gisette" => 16,
            "sector" => 8,
            _ => 4,
        };
        let spec = DatasetSpec::by_name(name).unwrap().scaled(scale);
        let data = generate(&spec, 42);
        let labels = linear_teacher_labels(&data, 0.0, 7);

        let scheduled = LayoutScheduler::new().schedule(&data);
        assert!(
            Format::BASIC.contains(&scheduled.format()),
            "{name}: scheduler must pick a basic format"
        );

        let params =
            SmoParams { kernel: KernelKind::Linear, max_iterations: 20_000, ..Default::default() };
        let (model, stats) = dls::svm::train_with_stats(scheduled.matrix(), &labels, &params)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(stats.iterations > 0, "{name}");

        let preds: Vec<f64> =
            (0..data.rows()).map(|i| model.predict_label(&data.row_sparse(i))).collect();
        let acc = dls::svm::accuracy(&preds, &labels);
        assert!(acc > 0.75, "{name}: training accuracy {acc}");
    }
}

/// Training through the scheduler must produce the same model as training
/// on a fixed CSR encoding of the same data — layout changes performance,
/// never results.
#[test]
fn scheduled_format_is_result_invariant() {
    let spec = DatasetSpec::by_name("aloi").unwrap().scaled(4);
    let data = generate(&spec, 11);
    let labels = linear_teacher_labels(&data, 0.0, 3);
    let params = SmoParams { kernel: KernelKind::Linear, ..Default::default() };

    let scheduled = LayoutScheduler::new().schedule(&data);
    let fixed =
        LayoutScheduler::with_strategy(SelectionStrategy::Fixed(Format::Csr)).schedule(&data);

    let (m1, s1) = dls::svm::train_with_stats(scheduled.matrix(), &labels, &params).unwrap();
    let (m2, s2) = dls::svm::train_with_stats(fixed.matrix(), &labels, &params).unwrap();
    assert_eq!(s1.iterations, s2.iterations);
    assert!((m1.bias() - m2.bias()).abs() < 1e-9);
    for i in 0..data.rows() {
        let r = data.row_sparse(i);
        assert_eq!(m1.predict_label(&r), m2.predict_label(&r), "row {i}");
    }
}

/// Gaussian-kernel training through the scheduler on a non-linear problem.
#[test]
fn gaussian_kernel_through_scheduler() {
    // Two concentric rings: not linearly separable.
    let mut t = TripletMatrix::new(40, 2);
    let mut labels = Vec::new();
    for i in 0..40 {
        let angle = i as f64 * std::f64::consts::TAU / 40.0;
        let r = if i % 2 == 0 { 1.0 } else { 3.0 };
        t.push(i, 0, r * angle.cos());
        t.push(i, 1, r * angle.sin());
        labels.push(if i % 2 == 0 { 1.0 } else { -1.0 });
    }
    let t = t.compact();
    let scheduled = LayoutScheduler::new().schedule(&t);
    let params =
        SmoParams { kernel: KernelKind::Gaussian { gamma: 1.0 }, c: 10.0, ..Default::default() };
    let model = dls::svm::train(scheduled.matrix(), &labels, &params).unwrap();
    for i in 0..40 {
        assert_eq!(model.predict_label(&t.row_sparse(i)), labels[i], "ring point {i}");
    }
}

/// The baseline and adaptive solvers agree end-to-end (Figure 7's premise:
/// speedups come from layout, not from different mathematics).
#[test]
fn baseline_agrees_with_adaptive_pipeline() {
    let spec = DatasetSpec::by_name("connect-4").unwrap().scaled(8);
    let data = generate(&spec, 5);
    let labels = linear_teacher_labels(&data, 0.0, 5);

    let base_params =
        dls::baseline::LibsvmLikeParams { kernel: KernelKind::Linear, ..Default::default() };
    let (base_model, base_stats) =
        dls::baseline::train_libsvm_like(&data, &labels, &base_params).unwrap();

    let scheduled = LayoutScheduler::new().schedule(&data);
    let params = SmoParams { kernel: KernelKind::Linear, ..Default::default() };
    let (model, stats) = dls::svm::train_with_stats(scheduled.matrix(), &labels, &params).unwrap();

    assert_eq!(base_stats.iterations, stats.iterations);
    for i in 0..data.rows() {
        let r = data.row_sparse(i);
        assert_eq!(base_model.predict_label(&r), model.predict_label(&r), "row {i}");
    }
}

/// LIBSVM round trip feeding the scheduler: write a twin out, read it back,
/// schedule, and get the same decision.
#[test]
fn libsvm_io_feeds_scheduler() {
    let spec = DatasetSpec::by_name("trefethen").unwrap();
    let data = generate(spec, 1);
    let labels = linear_teacher_labels(&data, 0.0, 1);

    let mut buf = Vec::new();
    dls_data::libsvm::write(&mut buf, &data, &labels).unwrap();
    let parsed = dls_data::libsvm::read(buf.as_slice()).unwrap();

    let direct = LayoutScheduler::new().select_only(&data);
    let via_io = LayoutScheduler::new().select_only(&parsed.matrix);
    assert_eq!(direct.chosen, via_io.chosen);
    assert_eq!(direct.chosen, Format::Dia, "trefethen routes to DIA");
}
