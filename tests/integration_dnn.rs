//! Integration across the DNN half: dataset → network → tuning → hardware
//! cost model (the §IV pipeline).

use dls::dnn::tuning::{batch, best_point};
use dls::dnn::{CifarLikeConfig, Dataset, Network, SgdConfig, Trainer, TrainerConfig};
use dls::hw::{build_table7, Platform, RunSpec, ThroughputModel};

fn dataset() -> Dataset {
    Dataset::cifar_like(CifarLikeConfig {
        classes: 5,
        side: 4,
        train: 250,
        test: 100,
        noise: 0.5,
        ..Default::default()
    })
}

/// An MLP reaches the paper's 0.8 target on the synthetic task and the
/// epochs-to-target number plugs into the platform model.
#[test]
fn training_outcome_drives_platform_model() {
    let ds = dataset();
    let mut net = Network::mlp(&[ds.dim(), 24, ds.classes()], 3);
    let config = TrainerConfig {
        batch_size: 25,
        sgd: SgdConfig { learning_rate: 0.03, momentum: 0.9, weight_decay: 0.0, nesterov: false },
        target_accuracy: 0.8,
        max_epochs: 60,
        ..Default::default()
    };
    let out = Trainer::run(&mut net, &ds, &config);
    assert!(out.reached, "accuracy {} in {} epochs", out.final_accuracy, out.epochs);

    // Project onto every platform: faster hardware, shorter time.
    let mut last = f64::INFINITY;
    for p in dls::hw::PLATFORMS {
        let secs = ThroughputModel::new(p).time_for(out.iterations, config.batch_size);
        assert!(secs > 0.0 && secs < last, "{} not faster than predecessor", p.name);
        last = secs;
    }
}

/// The batch sweep and the table builder compose: sweep → winner → row.
#[test]
fn batch_sweep_feeds_table_builder() {
    let ds = dataset();
    let base = TrainerConfig {
        sgd: SgdConfig { learning_rate: 0.03, momentum: 0.9, weight_decay: 0.0, nesterov: false },
        target_accuracy: 0.8,
        max_epochs: 60,
        ..Default::default()
    };
    let pts = batch::sweep(&ds, &[ds.dim(), 24, ds.classes()], 3, &base, &[10, 50, 250]);
    let best = best_point(&pts).expect("non-empty sweep");
    assert!(best.outcome.reached, "winner must reach the target");

    let specs: Vec<RunSpec> = pts
        .iter()
        .map(|p| RunSpec {
            method: "sweep point",
            platform: "DGX",
            batch: p.batch_size,
            learning_rate: p.learning_rate as f64,
            momentum: p.momentum as f64,
            iterations: p.outcome.iterations.max(1),
            epochs: p.outcome.epochs,
        })
        .collect();
    let rows = build_table7(&specs);
    assert_eq!(rows.len(), 3);
    // The slowest row is the 1x baseline.
    assert!(rows.iter().any(|r| (r.speedup - 1.0).abs() < 1e-9));
    for r in &rows {
        assert!(r.price_per_speedup > 0.0);
        assert_eq!(r.price_usd, Platform::by_name("DGX").unwrap().price_usd);
    }
}

/// Convnet path: the same trainer drives the conv stack (NCHW reshape is
/// inside the network via Flatten of image batches is validated at the
/// layer level; here we check the MLP-equivalent flat path end-to-end).
#[test]
fn convnet_forward_matches_batch_dims() {
    let ds = Dataset::cifar_like(CifarLikeConfig {
        classes: 4,
        side: 8,
        train: 16,
        test: 8,
        noise: 0.3,
        ..Default::default()
    });
    let mut net = Network::cifar_convnet(8, 4, 1);
    let (x, y) = ds.train_batch_images(&[0, 1, 2, 3]);
    let logits = net.forward(&x);
    assert_eq!(logits.shape(), &[4, 4]);
    let (loss, grad) = dls::dnn::loss::softmax_cross_entropy(&logits, &y);
    assert!(loss.is_finite());
    net.zero_grads();
    net.backward(&grad); // must not panic: gradients flow through the stack
}
