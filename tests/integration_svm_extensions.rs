//! Integration tests for the SVM extensions: regression through the
//! scheduler, model persistence round trips, shrinking + threading under
//! scheduled layouts, and the preprocessing pipeline.

#![allow(clippy::needless_range_loop)]

use dls::prelude::*;
use dls::svm::{read_model, train_svr, write_model, SvrParams};
use dls_data::labels::linear_teacher_labels;
use dls_data::preprocess::{normalize_rows, FeatureScaler, ScaleRange};
use dls_data::stratified_split;

/// ε-SVR on a scheduled layout: the regression solver accepts any format
/// the scheduler picks, and the tube holds.
#[test]
fn svr_trains_on_scheduled_layout() {
    let mut t = TripletMatrix::new(24, 2);
    let mut y = Vec::new();
    for i in 0..24 {
        let x1 = i as f64 / 23.0 * 2.0 - 1.0;
        t.push(i, 0, x1);
        t.push(i, 1, 1.0); // bias-like feature
        y.push(3.0 * x1 - 0.5);
    }
    let t = t.compact();
    let scheduled = LayoutScheduler::new().schedule(&t);
    let params =
        SvrParams { kernel: KernelKind::Linear, c: 100.0, epsilon: 0.05, ..Default::default() };
    let (model, stats) = train_svr(scheduled.matrix(), &y, &params).unwrap();
    assert!(stats.converged);
    for i in 0..24 {
        let pred = model.decision_function(&t.row_sparse(i));
        assert!((pred - y[i]).abs() <= 0.15, "sample {i}: {pred} vs {}", y[i]);
    }
}

/// Train → persist → reload → identical predictions, through a file.
#[test]
fn model_persistence_round_trip_via_file() {
    let spec = DatasetSpec::by_name("adult").unwrap().scaled(20);
    let data = generate(&spec, 11);
    let labels = linear_teacher_labels(&data, 0.0, 11);
    let scheduled = LayoutScheduler::new().schedule(&data);
    let params = SmoParams { kernel: KernelKind::Gaussian { gamma: 0.3 }, ..Default::default() };
    let model = dls::svm::train(scheduled.matrix(), &labels, &params).unwrap();

    let path = std::env::temp_dir().join("dls_roundtrip.model");
    {
        let mut f = std::fs::File::create(&path).unwrap();
        write_model(&mut f, &model).unwrap();
    }
    let loaded = {
        let f = std::fs::File::open(&path).unwrap();
        read_model(std::io::BufReader::new(f)).unwrap()
    };
    std::fs::remove_file(&path).unwrap();

    for i in 0..data.rows() {
        let r = data.row_sparse(i);
        assert!(
            (model.decision_function(&r) - loaded.decision_function(&r)).abs() < 1e-9,
            "row {i}"
        );
    }
}

/// Shrinking + threads + scheduled layout together still match the plain
/// solver's predictions.
#[test]
fn shrinking_and_threads_compose_with_scheduling() {
    let spec = DatasetSpec::by_name("connect-4").unwrap().scaled(20);
    let data = generate(&spec, 3);
    let labels = linear_teacher_labels(&data, 0.0, 3);
    let scheduled = LayoutScheduler::new().schedule(&data);

    let plain = SmoParams { kernel: KernelKind::Linear, ..Default::default() };
    let fancy = SmoParams { shrinking: true, threads: 3, ..plain };
    let (m1, s1) = dls::svm::train_with_stats(scheduled.matrix(), &labels, &plain).unwrap();
    let (m2, s2) = dls::svm::train_with_stats(scheduled.matrix(), &labels, &fancy).unwrap();
    assert!(s1.converged && s2.converged);
    for i in 0..data.rows() {
        let r = data.row_sparse(i);
        assert_eq!(m1.predict_label(&r), m2.predict_label(&r), "row {i}");
    }
}

/// Preprocessing composes: normalise rows, scale columns, split, train —
/// accuracy on held-out data beats chance comfortably.
#[test]
fn preprocessing_pipeline_end_to_end() {
    // adult/4: enough rows relative to the feature count that a linear
    // teacher generalises to held-out data.
    let spec = DatasetSpec::by_name("adult").unwrap().scaled(4);
    let data = normalize_rows(&generate(&spec, 5));
    let labels = linear_teacher_labels(&data, 0.0, 5);
    let split = stratified_split(&data, &labels, 0.3, 9);

    let scaler = FeatureScaler::fit(&split.train_x, ScaleRange::ZeroOne);
    let train_x = scaler.transform(&split.train_x);
    let test_x = scaler.transform(&split.test_x);

    let scheduled = LayoutScheduler::new().schedule(&train_x);
    let params = SmoParams {
        kernel: KernelKind::Linear,
        c: 10.0,
        max_iterations: 20_000,
        ..Default::default()
    };
    let model = dls::svm::train(scheduled.matrix(), &split.train_y, &params).unwrap();
    let preds: Vec<f64> =
        (0..test_x.rows()).map(|i| model.predict_label(&test_x.row_sparse(i))).collect();
    let acc = dls::svm::accuracy(&preds, &split.test_y);
    assert!(acc > 0.75, "held-out accuracy {acc}");
}
