//! End-to-end tests of the `dls` command-line binary: every subcommand is
//! exercised against synthetic twins and round-tripped files.

use std::process::Command;

fn dls() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dls"))
}

fn run(args: &[&str]) -> (bool, String, String) {
    let out = dls().args(args).output().expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn no_args_prints_usage() {
    let (ok, _, err) = run(&[]);
    assert!(!ok);
    assert!(err.contains("usage:"), "{err}");
}

#[test]
fn features_reports_the_nine_parameters() {
    let (ok, out, err) = run(&["features", "@trefethen"]);
    assert!(ok, "{err}");
    for key in ["M=", "N=", "nnz=", "ndig=", "vdim="] {
        assert!(out.contains(key), "missing {key} in {out}");
    }
    assert!(out.contains("DIA padding"));
}

#[test]
fn schedule_picks_dia_for_trefethen() {
    let (ok, out, _) = run(&["schedule", "@trefethen"]);
    assert!(ok);
    assert!(out.contains("selected DIA"), "{out}");
    // Strategy variants all run.
    for strat in ["rule", "rule-host", "cost", "empirical", "CSR"] {
        let (ok, out, err) = run(&["schedule", "@trefethen", strat]);
        assert!(ok, "{strat}: {err}");
        assert!(out.contains("selected"), "{strat}: {out}");
    }
}

#[test]
fn schedule_rejects_unknown_strategy() {
    let (ok, _, err) = run(&["schedule", "@adult", "quantum"]);
    assert!(!ok);
    assert!(err.contains("unknown strategy"), "{err}");
}

#[test]
fn train_reports_convergence() {
    let (ok, out, err) = run(&["train", "@trefethen"]);
    assert!(ok, "{err}");
    assert!(out.contains("scheduled format"), "{out}");
    assert!(out.contains("training accuracy"), "{out}");
}

#[test]
fn bench_lists_all_five_formats() {
    let (ok, out, _) = run(&["bench", "@trefethen", "5"]);
    assert!(ok);
    for fmt in ["ELL", "CSR", "COO", "DEN", "DIA"] {
        assert!(out.contains(fmt), "missing {fmt} in {out}");
    }
}

#[test]
fn scale_round_trips_a_file() {
    let dir = std::env::temp_dir();
    let input = dir.join("dls_cli_scale_in.libsvm");
    let output = dir.join("dls_cli_scale_out.libsvm");
    std::fs::write(&input, "1 1:2 2:10\n-1 1:6 2:0.5\n").unwrap();
    let (ok, out, err) = run(&["scale", input.to_str().unwrap(), output.to_str().unwrap(), "01"]);
    assert!(ok, "{err}");
    assert!(out.contains("scaled 2 rows"), "{out}");
    let scaled = std::fs::read_to_string(&output).unwrap();
    // Column maxima map to 1.
    assert!(scaled.lines().next().unwrap().contains("2:1"), "{scaled}");
    let _ = std::fs::remove_file(input);
    let _ = std::fs::remove_file(output);
}

#[test]
fn unknown_synthetic_dataset_fails_cleanly() {
    let (ok, _, err) = run(&["features", "@nope"]);
    assert!(!ok);
    assert!(err.contains("unknown synthetic dataset"), "{err}");
}
