#![warn(missing_docs)]

//! # dls-hw
//!
//! Hardware platform cost model for the paper's §IV/V evaluation: time to
//! 0.8 CIFAR-10 accuracy and **dollars per speedup** across an 8-core CPU,
//! Intel KNL, Intel Haswell, one Tesla P100, and a DGX station
//! (Table VII, Figures 5 and 6).
//!
//! None of that hardware is attached here, so each platform is modelled by
//! a saturating-throughput curve `rate(B) = r∞ · B / (B + B½)` calibrated
//! against the paper's own measurements: the B = 100 rows of Table VII pin
//! `rate(100)` for every platform, and the DGX rows at B = 512 pin the
//! DGX's `B½` (more samples per second at larger batch — the §IV-C effect
//! that makes batch tuning pay). Combining the model with *measured*
//! epochs-to-accuracy from `dls-dnn` reproduces the table's shape.

pub mod cost;
pub mod formats;
pub mod platform;
pub mod recommend;
pub mod speedup;

pub use cost::ThroughputModel;
pub use platform::{Platform, PLATFORMS};
pub use recommend::{fastest, recommend, Recommendation, TrainingJob};
pub use speedup::{build_table7, paper_run_specs, PriceModel, RunSpec, TableRow, PAPER_TABLE7};
