//! Per-platform, per-format effective bandwidth profiles.
//!
//! §III-B measures how the effective bandwidth of the *same* dataset swings
//! with the storage format (the gisette row: 25.3 / 63.9 / 63.5 / 53.1 /
//! 37.7 GB/s for ELL / CSR / COO / DEN / DIA on Ivy Bridge). That shape is
//! machine-dependent: on a latency-bound CPU the indirection-heavy CSR/COO
//! stream near peak while padded ELL wastes bandwidth, whereas on
//! wide-SIMD/SIMT machines (KNL, GPUs) the *regular* formats — ELL, DIA,
//! DEN — coalesce and the irregular ones stall on gather and atomics.
//!
//! This module extends the paper's one measured row to all five §IV-B
//! platforms with modelled profiles that keep each machine's character:
//! magnitudes scale with the platform's memory system, and the per-format
//! *ranking* flips between CPU-like and accelerator-like machines. The
//! online-selector harness (`repro_selector_online`) trains under one
//! profile and tests under another, which is exactly the cross-machine
//! portability experiment Stylianou et al. call for.

use crate::platform::Platform;
use dls_core::BandwidthProfile;

impl Platform {
    /// Effective per-format streaming bandwidth on this platform, for the
    /// cost model's Eq. (7). The "8-core CPU" row is the paper's measured
    /// Ivy Bridge profile; the others are modelled (see module docs).
    pub fn format_bandwidth(&self) -> BandwidthProfile {
        match self.name {
            // Paper §III-B, measured (gisette on Ivy Bridge).
            "8-core CPU" => BandwidthProfile::IVY_BRIDGE,
            // Wide-SIMD many-core with MCDRAM: regular formats vectorise,
            // COO's carried dependency serialises.
            "KNL" => {
                BandwidthProfile { ell: 320.0, csr: 240.0, coo: 150.0, den: 380.0, dia: 300.0 }
            }
            // Dual-socket CPU: the Ivy Bridge shape at server bandwidth.
            "Haswell" => {
                BandwidthProfile { ell: 45.0, csr: 105.0, coo: 100.0, den: 95.0, dia: 70.0 }
            }
            // SIMT: coalesced ELL/DIA/DEN run near peak, CSR's row lengths
            // diverge warps, COO needs atomics.
            "P100" => {
                BandwidthProfile { ell: 520.0, csr: 380.0, coo: 260.0, den: 560.0, dia: 480.0 }
            }
            "DGX" => {
                BandwidthProfile { ell: 900.0, csr: 650.0, coo: 420.0, den: 950.0, dia: 820.0 }
            }
            // Unknown platform: the neutral flat profile.
            _ => BandwidthProfile::FLAT,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::PLATFORMS;

    #[test]
    fn cpu_row_is_the_papers_measurement() {
        let p = Platform::by_name("8-core CPU").unwrap();
        assert_eq!(p.format_bandwidth(), BandwidthProfile::IVY_BRIDGE);
    }

    #[test]
    fn rankings_flip_between_cpu_and_accelerator() {
        // On the CPU, CSR out-streams ELL (indirection beats padding); on
        // the accelerators the regular format wins — the machine-dependence
        // the cross-machine harness exercises.
        let cpu = Platform::by_name("8-core CPU").unwrap().format_bandwidth();
        assert!(cpu.csr > cpu.ell);
        for name in ["KNL", "P100", "DGX"] {
            let acc = Platform::by_name(name).unwrap().format_bandwidth();
            assert!(acc.ell > acc.csr, "{name}: regular formats coalesce");
        }
    }

    #[test]
    fn every_platform_has_positive_bandwidths() {
        for p in &PLATFORMS {
            let b = p.format_bandwidth();
            for v in [b.ell, b.csr, b.coo, b.den, b.dia] {
                assert!(v > 0.0, "{}: {v}", p.name);
            }
        }
    }
}
