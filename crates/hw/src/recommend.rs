//! "Choose the right hardware" (§IV-B) as an API: rank the platforms for a
//! concrete training job by wall-clock and by the paper's dollars-per-
//! speedup metric, under an optional budget.

use crate::cost::ThroughputModel;
use crate::platform::{Platform, PLATFORMS};
use crate::speedup::PriceModel;

/// A concrete training job: how many SGD iterations at which batch size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainingJob {
    /// Weight updates required to reach the target accuracy.
    pub iterations: usize,
    /// Minibatch size.
    pub batch: usize,
}

/// One platform's evaluation for a job.
#[derive(Debug, Clone, Copy)]
pub struct Recommendation {
    /// The platform.
    pub platform: &'static Platform,
    /// Predicted wall-clock seconds.
    pub time_s: f64,
    /// Speedup over the slowest platform considered.
    pub speedup: f64,
    /// Dollars per unit speedup (lower = more efficient).
    pub price_per_speedup: f64,
}

/// Ranks all platforms for the job, cheapest-per-speedup first. With a
/// budget, platforms above it are excluded (an empty result means no
/// platform is affordable).
pub fn recommend(job: TrainingJob, budget_usd: Option<f64>) -> Vec<Recommendation> {
    assert!(job.iterations > 0 && job.batch > 0, "job must be non-trivial");
    let affordable: Vec<&'static Platform> =
        PLATFORMS.iter().filter(|p| budget_usd.map(|b| p.price_usd <= b).unwrap_or(true)).collect();
    if affordable.is_empty() {
        return Vec::new();
    }
    let times: Vec<f64> = affordable
        .iter()
        .map(|p| ThroughputModel::new(**p).time_for(job.iterations, job.batch))
        .collect();
    let slowest = times.iter().copied().fold(0.0, f64::max);
    let mut out: Vec<Recommendation> = affordable
        .into_iter()
        .zip(times)
        .map(|(platform, time_s)| {
            let speedup = slowest / time_s;
            Recommendation {
                platform,
                time_s,
                speedup,
                price_per_speedup: PriceModel::price_per_speedup(platform.price_usd, speedup),
            }
        })
        .collect();
    out.sort_by(|a, b| {
        a.price_per_speedup.partial_cmp(&b.price_per_speedup).expect("finite efficiency")
    });
    out
}

/// The fastest platform for the job regardless of price.
pub fn fastest(job: TrainingJob) -> Recommendation {
    recommend(job, None)
        .into_iter()
        .min_by(|a, b| a.time_s.partial_cmp(&b.time_s).expect("finite times"))
        .expect("five platforms exist")
}

#[cfg(test)]
mod tests {
    use super::*;

    const CIFAR_JOB: TrainingJob = TrainingJob { iterations: 60_000, batch: 100 };

    #[test]
    fn p100_is_most_efficient_for_the_paper_job() {
        // §V-C: "the Tesla P100 GPU is the most efficient platform".
        let ranked = recommend(CIFAR_JOB, None);
        assert_eq!(ranked[0].platform.name, "P100");
        // And the 8-core CPU the least efficient.
        assert_eq!(ranked.last().unwrap().platform.name, "8-core CPU");
    }

    #[test]
    fn fastest_is_the_dgx() {
        assert_eq!(fastest(CIFAR_JOB).platform.name, "DGX");
    }

    #[test]
    fn budget_excludes_expensive_platforms() {
        let ranked = recommend(CIFAR_JOB, Some(8_000.0));
        assert!(ranked.iter().all(|r| r.platform.price_usd <= 8_000.0));
        assert!(ranked.iter().any(|r| r.platform.name == "Haswell"));
        assert!(!ranked.iter().any(|r| r.platform.name == "DGX"));
        // An impossible budget yields nothing.
        assert!(recommend(CIFAR_JOB, Some(10.0)).is_empty());
    }

    #[test]
    fn speedups_are_relative_to_the_affordable_slowest() {
        let ranked = recommend(CIFAR_JOB, None);
        let slowest =
            ranked.iter().min_by(|a, b| a.speedup.partial_cmp(&b.speedup).unwrap()).unwrap();
        assert!((slowest.speedup - 1.0).abs() < 1e-9);
        assert_eq!(slowest.platform.name, "8-core CPU");
    }

    #[test]
    #[should_panic(expected = "non-trivial")]
    fn rejects_empty_job() {
        let _ = recommend(TrainingJob { iterations: 0, batch: 100 }, None);
    }
}
