//! Saturating-throughput time model.
//!
//! `rate(B) = r∞ · B / (B + B½)` — the textbook roofline-style saturation
//! curve: small batches leave lanes idle (GEMM of a 100-row matrix cannot
//! fill four P100s), large batches approach the asymptotic rate. §IV-C in
//! one formula.

use crate::platform::Platform;

/// Throughput and wall-clock predictions for one platform.
#[derive(Debug, Clone, Copy)]
pub struct ThroughputModel {
    platform: Platform,
}

impl ThroughputModel {
    /// Wraps a platform.
    pub fn new(platform: Platform) -> Self {
        Self { platform }
    }

    /// The wrapped platform.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// Samples per second at batch size `b`.
    pub fn samples_per_sec(&self, b: usize) -> f64 {
        assert!(b >= 1, "batch must be positive");
        let b = b as f64;
        self.platform.asymptotic_rate() * b / (b + self.platform.batch_half_saturation)
    }

    /// Seconds for `iterations` weight updates at batch size `b`.
    pub fn time_for(&self, iterations: usize, b: usize) -> f64 {
        (iterations * b) as f64 / self.samples_per_sec(b)
    }

    /// Seconds to process `epochs` passes over a dataset of `n` samples at
    /// batch size `b` (iterations = ⌈n/b⌉ per epoch).
    pub fn time_for_epochs(&self, epochs: usize, n: usize, b: usize) -> f64 {
        let iters_per_epoch = n.div_ceil(b);
        self.time_for(epochs * iters_per_epoch, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::PLATFORMS;

    #[test]
    fn rate_is_monotone_in_batch() {
        for p in &PLATFORMS {
            let m = ThroughputModel::new(*p);
            let mut last = 0.0;
            for b in [1usize, 10, 100, 1000, 10000] {
                let r = m.samples_per_sec(b);
                assert!(r > last, "{} at B={b}", p.name);
                last = r;
            }
            // Never exceeds the asymptote.
            assert!(last < p.asymptotic_rate());
        }
    }

    #[test]
    fn calibration_point_recovered() {
        for p in &PLATFORMS {
            let m = ThroughputModel::new(*p);
            let r100 = m.samples_per_sec(100);
            assert!(
                (r100 - p.rate_at_b100).abs() / p.rate_at_b100 < 1e-9,
                "{}: {} vs {}",
                p.name,
                r100,
                p.rate_at_b100
            );
        }
    }

    #[test]
    fn dgx_batch512_matches_paper_tuned_row() {
        // Table VII row 6: DGX, B = 512, 30,000 iterations, 361 s.
        let m = ThroughputModel::new(*crate::platform::Platform::by_name("DGX").unwrap());
        let t = m.time_for(30_000, 512);
        assert!((t - 361.0).abs() / 361.0 < 0.05, "computed {t} vs paper 361");
    }

    #[test]
    fn epochs_form_matches_iterations_form() {
        let m = ThroughputModel::new(PLATFORMS[0]);
        // 50,000-sample dataset, B = 100 → 500 iterations per epoch.
        let by_epochs = m.time_for_epochs(120, 50_000, 100);
        let by_iters = m.time_for(60_000, 100);
        assert!((by_epochs - by_iters).abs() < 1e-9);
    }

    #[test]
    fn bigger_batch_cuts_time_at_fixed_samples() {
        // Same number of samples processed: the DGX should be faster at
        // B = 512 than at B = 100.
        let m = ThroughputModel::new(*crate::platform::Platform::by_name("DGX").unwrap());
        let t_small = m.time_for(60_000, 100);
        let t_large = m.time_for(60_000 * 100 / 512, 512);
        assert!(t_large < t_small);
    }
}
