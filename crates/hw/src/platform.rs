//! The five evaluation platforms of §IV-B with the paper's prices and the
//! calibration constants of the throughput model.

/// One hardware platform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Platform {
    /// Display name as used in Table VII.
    pub name: &'static str,
    /// Purchase price in USD (Table VII's Price column).
    pub price_usd: f64,
    /// Measured peak double-precision Tflop/s where the paper reports one.
    pub peak_tflops: f64,
    /// Measured training throughput at B = 100, in samples/second —
    /// derived from Table VII: 60,000 iterations × 100 samples / time.
    pub rate_at_b100: f64,
    /// Batch half-saturation constant B½ of the throughput curve: the
    /// batch size at which the platform reaches half its asymptotic rate.
    /// Small for CPUs (latency-bound cores saturate quickly), large for
    /// multi-GPU systems that need big batches to fill their lanes.
    pub batch_half_saturation: f64,
}

impl Platform {
    /// Looks a platform up by name.
    pub fn by_name(name: &str) -> Option<&'static Platform> {
        PLATFORMS.iter().find(|p| p.name == name)
    }

    /// Asymptotic rate `r∞` implied by the B = 100 calibration point:
    /// `rate(100) = r∞ · 100 / (100 + B½)`.
    pub fn asymptotic_rate(&self) -> f64 {
        self.rate_at_b100 * (100.0 + self.batch_half_saturation) / 100.0
    }
}

/// Table VII's five platforms.
///
/// Rates come from the B = 100 rows (60,000 iterations × 100 samples):
/// 8-core CPU 29,427 s → 203.9 samples/s; KNL 4,922 s → 1,219; Haswell
/// 1,997 s → 3,004; P100 503 s → 11,928; DGX 387 s → 15,504. The DGX B½ of
/// 387 is solved from its B = 512 rows (30,000 × 512 / 361 s ≈ 42,500
/// samples/s).
pub const PLATFORMS: [Platform; 5] = [
    Platform {
        name: "8-core CPU",
        price_usd: 1_571.0,
        peak_tflops: 0.4,
        rate_at_b100: 203.9,
        batch_half_saturation: 8.0,
    },
    Platform {
        name: "KNL",
        price_usd: 4_876.0,
        peak_tflops: 3.0,
        rate_at_b100: 1_219.0,
        batch_half_saturation: 48.0,
    },
    Platform {
        name: "Haswell",
        price_usd: 7_400.0,
        peak_tflops: 1.2,
        rate_at_b100: 3_004.0,
        batch_half_saturation: 16.0,
    },
    Platform {
        name: "P100",
        price_usd: 11_571.0,
        peak_tflops: 4.7,
        rate_at_b100: 11_928.0,
        batch_half_saturation: 160.0,
    },
    Platform {
        name: "DGX",
        price_usd: 79_000.0,
        peak_tflops: 18.8,
        rate_at_b100: 15_504.0,
        batch_half_saturation: 387.0,
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_and_ordering() {
        assert!(Platform::by_name("DGX").is_some());
        assert!(Platform::by_name("TPU").is_none());
        // Faster platforms cost more (paper's premise for $/speedup).
        for w in PLATFORMS.windows(2) {
            assert!(w[0].rate_at_b100 < w[1].rate_at_b100, "{}", w[1].name);
            assert!(w[0].price_usd < w[1].price_usd, "{}", w[1].name);
        }
    }

    #[test]
    fn b100_rates_reproduce_table7_times() {
        // 60,000 iterations at B = 100 = 6e6 samples.
        let expect = [
            ("8-core CPU", 29_427.0),
            ("KNL", 4_922.0),
            ("Haswell", 1_997.0),
            ("P100", 503.0),
            ("DGX", 387.0),
        ];
        for (name, time) in expect {
            let p = Platform::by_name(name).unwrap();
            let computed = 6.0e6 / p.rate_at_b100;
            let rel = (computed - time).abs() / time;
            assert!(rel < 0.01, "{name}: {computed} vs paper {time}");
        }
    }

    #[test]
    fn asymptotic_rate_exceeds_calibration_point() {
        for p in &PLATFORMS {
            assert!(p.asymptotic_rate() > p.rate_at_b100, "{}", p.name);
        }
    }
}
