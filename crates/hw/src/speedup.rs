//! Table VII / Figures 5–6 builder: time, speedup, and price-per-speedup.
//!
//! "To give a fair comparison, we define the comparison benchmark as price
//! (U.S. Dollars) per speedup. A lower value means a higher efficiency."

use crate::cost::ThroughputModel;
use crate::platform::Platform;

/// One configuration to evaluate (a row of Table VII).
#[derive(Debug, Clone, Copy)]
pub struct RunSpec {
    /// Method label ("Intel Caffe on KNL", "Tune B on DGX station", …).
    pub method: &'static str,
    /// Platform the run executes on.
    pub platform: &'static str,
    /// Batch size B.
    pub batch: usize,
    /// Learning rate η.
    pub learning_rate: f64,
    /// Momentum µ.
    pub momentum: f64,
    /// SGD iterations to the 0.8 target.
    pub iterations: usize,
    /// Epochs to the 0.8 target.
    pub epochs: usize,
}

/// A computed row: spec + model outputs.
#[derive(Debug, Clone)]
pub struct TableRow {
    /// The input configuration.
    pub spec: RunSpec,
    /// Modelled wall-clock seconds.
    pub time_s: f64,
    /// Platform price.
    pub price_usd: f64,
    /// Speedup over the slowest row.
    pub speedup: f64,
    /// Dollars per unit of speedup (Figure 6's metric).
    pub price_per_speedup: f64,
}

/// One verbatim Table VII row: (method, platform, B, η, µ, iterations,
/// epochs, time_s, price, speedup, price/speedup).
pub type PaperRow = (&'static str, &'static str, usize, f64, f64, usize, usize, f64, f64, f64, f64);

/// The paper's Table VII, recorded verbatim for comparison.
pub const PAPER_TABLE7: [PaperRow; 8] = [
    (
        "Intel Caffe on 8-core CPUs",
        "8-core CPU",
        100,
        0.001,
        0.90,
        60_000,
        120,
        29_427.0,
        1_571.0,
        1.0,
        1_571.0,
    ),
    ("Intel Caffe on KNL", "KNL", 100, 0.001, 0.90, 60_000, 120, 4_922.0, 4_876.0, 6.0, 813.0),
    (
        "Intel Caffe on Haswell",
        "Haswell",
        100,
        0.001,
        0.90,
        60_000,
        120,
        1_997.0,
        7_400.0,
        15.0,
        493.0,
    ),
    (
        "Nvidia Caffe on Tesla P100 GPU",
        "P100",
        100,
        0.001,
        0.90,
        60_000,
        120,
        503.0,
        11_571.0,
        59.0,
        196.0,
    ),
    (
        "Nvidia Caffe on DGX station",
        "DGX",
        100,
        0.001,
        0.90,
        60_000,
        120,
        387.0,
        79_000.0,
        76.0,
        1_039.0,
    ),
    // The paper prints "387 epochs" for this row — almost certainly a typo
    // (30,000 x 512 / 50,000 = 307); we keep the printed value verbatim.
    ("Tune B on DGX station", "DGX", 512, 0.001, 0.90, 30_000, 387, 361.0, 79_000.0, 82.0, 963.0),
    (
        "Tune eta on DGX station",
        "DGX",
        512,
        0.003,
        0.90,
        12_000,
        123,
        138.0,
        79_000.0,
        213.0,
        371.0,
    ),
    ("Tune mu on DGX station", "DGX", 512, 0.003, 0.95, 7_000, 72, 83.0, 79_000.0, 355.0, 223.0),
];

/// The paper's eight run specs (inputs only), for feeding the model.
pub fn paper_run_specs() -> Vec<RunSpec> {
    PAPER_TABLE7
        .iter()
        .map(|&(method, platform, batch, lr, mu, iters, epochs, ..)| RunSpec {
            method,
            platform,
            batch,
            learning_rate: lr,
            momentum: mu,
            iterations: iters,
            epochs,
        })
        .collect()
}

/// Price-per-speedup helper.
#[derive(Debug, Clone, Copy, Default)]
pub struct PriceModel;

impl PriceModel {
    /// `$ / speedup`; lower is better.
    pub fn price_per_speedup(price_usd: f64, speedup: f64) -> f64 {
        assert!(speedup > 0.0, "speedup must be positive");
        price_usd / speedup
    }
}

/// Evaluates the throughput model over a set of runs and normalises
/// speedups to the slowest run (the paper's "8 CPUs is the baseline and
/// 1.0× speedup").
pub fn build_table7(specs: &[RunSpec]) -> Vec<TableRow> {
    assert!(!specs.is_empty(), "need at least one run");
    let times: Vec<(f64, f64)> = specs
        .iter()
        .map(|s| {
            let p = Platform::by_name(s.platform)
                .unwrap_or_else(|| panic!("unknown platform {}", s.platform));
            (ThroughputModel::new(*p).time_for(s.iterations, s.batch), p.price_usd)
        })
        .collect();
    let slowest = times.iter().map(|(t, _)| *t).fold(0.0, f64::max);
    specs
        .iter()
        .zip(times)
        .map(|(spec, (time_s, price_usd))| {
            let speedup = slowest / time_s;
            TableRow {
                spec: *spec,
                time_s,
                price_usd,
                speedup,
                price_per_speedup: PriceModel::price_per_speedup(price_usd, speedup),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modelled_table_matches_paper_times_within_tolerance() {
        let rows = build_table7(&paper_run_specs());
        for (row, paper) in rows.iter().zip(&PAPER_TABLE7) {
            let paper_time = paper.7;
            let rel = (row.time_s - paper_time).abs() / paper_time;
            assert!(
                rel < 0.06,
                "{}: modelled {:.0}s vs paper {:.0}s",
                row.spec.method,
                row.time_s,
                paper_time
            );
        }
    }

    #[test]
    fn speedups_match_paper_shape() {
        let rows = build_table7(&paper_run_specs());
        // Baseline row has speedup 1.
        assert!((rows[0].speedup - 1.0).abs() < 1e-9);
        // Monotone through the platform rows, and the final tuned row is
        // the fastest of all (paper: 355×).
        assert!(rows[1].speedup > rows[0].speedup);
        assert!(rows[4].speedup > rows[3].speedup);
        let last = rows.last().unwrap();
        assert!(rows.iter().all(|r| r.speedup <= last.speedup + 1e-9));
        assert!(
            (last.speedup - 355.0).abs() / 355.0 < 0.06,
            "final speedup {} vs paper 355",
            last.speedup
        );
    }

    #[test]
    fn p100_is_most_efficient_platform_and_untuned_dgx_least_efficient_gpu() {
        // Paper §V-C: "the Tesla P100 GPU is the most efficient platform
        // and the 8-core CPU is the least efficient platform" among the
        // untuned rows.
        let rows = build_table7(&paper_run_specs());
        let untuned = &rows[..5];
        let best = untuned
            .iter()
            .min_by(|a, b| a.price_per_speedup.partial_cmp(&b.price_per_speedup).unwrap())
            .unwrap();
        assert_eq!(best.spec.platform, "P100");
        let worst = untuned
            .iter()
            .max_by(|a, b| a.price_per_speedup.partial_cmp(&b.price_per_speedup).unwrap())
            .unwrap();
        assert_eq!(worst.spec.platform, "8-core CPU");
    }

    #[test]
    fn tuning_stages_reduce_price_per_speedup() {
        let rows = build_table7(&paper_run_specs());
        // DGX untuned → tune B → tune η → tune µ strictly improves.
        let dgx: Vec<&TableRow> = rows.iter().filter(|r| r.spec.platform == "DGX").collect();
        for w in dgx.windows(2) {
            assert!(
                w[1].price_per_speedup < w[0].price_per_speedup,
                "{} should beat {}",
                w[1].spec.method,
                w[0].spec.method
            );
        }
    }

    #[test]
    fn price_model_rejects_zero_speedup() {
        let result = std::panic::catch_unwind(|| PriceModel::price_per_speedup(100.0, 0.0));
        assert!(result.is_err());
    }
}
