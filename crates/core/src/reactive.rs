//! Mid-training re-scheduling: act on telemetry, not just predictions.
//!
//! The static scheduler picks a format once, up front. When its model is
//! wrong — mis-seeded fixed format, bandwidth profile that doesn't match
//! the host, data whose effective access pattern defies the features — the
//! whole SMO run pays for it. The reactive layer closes the loop:
//!
//! 1. train in *segments* ([`dls_svm::SmoState::run_segment`]),
//! 2. after each segment compare the **measured** SMSV seconds/call of the
//!    current format (from [`crate::monitor::KernelMonitor`]) against the
//!    cost model's calibrated prediction for every candidate,
//! 3. on a sustained mispredict beyond a hysteresis threshold — and only
//!    when the predicted gain amortises the conversion over the remaining
//!    iterations — re-convert the matrix to the best candidate and keep
//!    training. Solver state survives: α, f and the kernel cache depend on
//!    matrix content, not layout.

use crate::cost::CostModelSelector;
use crate::monitor::{KernelMonitor, TelemetrySnapshot};
use crate::report::{FormatScore, SelectionReport};
use crate::scheduler::LayoutScheduler;
use dls_sparse::telemetry::format_index;
use dls_sparse::{
    AnyMatrix, Format, InstrumentedMatrix, MatrixFormat, SmsvCounters, TripletMatrix,
};
use dls_svm::{SmoParams, SmoStats, SvmError, SvmModel};

/// Tunables for the reactive loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReactiveConfig {
    /// SMO iterations per segment (one telemetry window per segment).
    pub segment_iters: usize,
    /// Switch only when the current format's estimated seconds/call exceed
    /// the best candidate's by this factor. >1 absorbs timing noise.
    pub hysteresis: f64,
    /// Consecutive mispredicted windows required before switching.
    pub patience: usize,
    /// Windows with fewer SMSV calls than this are ignored (their timings
    /// are too noisy to act on).
    pub min_calls_per_window: u64,
    /// Estimated cost of one format conversion, in units of current-format
    /// SMSV sweeps (conversion streams the matrix a handful of times).
    pub conversion_cost_sweeps: f64,
    /// Hard cap on mid-training conversions.
    pub max_switches: usize,
}

impl Default for ReactiveConfig {
    fn default() -> Self {
        Self {
            segment_iters: 64,
            hysteresis: 1.5,
            patience: 2,
            min_calls_per_window: 8,
            conversion_cost_sweeps: 8.0,
            max_switches: 3,
        }
    }
}

/// Detects sustained cost-model mispredicts from measured throughput.
///
/// Decision logic, separated from the training loop so it is unit-testable
/// on synthetic timings: per candidate the detector keeps the cost model's
/// *predicted* seconds/call plus, once available, the *measured* value
/// (exponentially smoothed). Predictions are calibrated onto the measured
/// scale through the current format — prediction errors show up as a gap
/// between where the model put the current format and where it actually
/// landed — and measurements always override predictions.
#[derive(Debug, Clone)]
pub struct MispredictDetector {
    config: ReactiveConfig,
    predicted: [Option<f64>; Format::ALL.len()],
    measured: [Option<f64>; Format::ALL.len()],
    current: Format,
    streak: usize,
    switches: usize,
}

impl MispredictDetector {
    /// A detector starting on `current`, with per-candidate predicted
    /// seconds/call (typically [`CostModelSelector::score_all`]).
    pub fn new(current: Format, predictions: &[FormatScore], config: ReactiveConfig) -> Self {
        let mut predicted = [None; Format::ALL.len()];
        for p in predictions {
            predicted[format_index(p.format)] = Some(p.score);
        }
        Self {
            config,
            predicted,
            measured: [None; Format::ALL.len()],
            current,
            streak: 0,
            switches: 0,
        }
    }

    /// The format the detector currently believes the solver runs on.
    pub fn current(&self) -> Format {
        self.current
    }

    /// Mid-training switches committed so far.
    pub fn switches(&self) -> usize {
        self.switches
    }

    /// Estimated seconds/call for a candidate: measured when available,
    /// otherwise the prediction rescaled by the current format's
    /// measured-to-predicted ratio.
    pub fn estimate(&self, format: Format) -> Option<f64> {
        let i = format_index(format);
        if let Some(m) = self.measured[i] {
            return Some(m);
        }
        let pred = self.predicted[i]?;
        let scale = match (
            self.measured[format_index(self.current)],
            self.predicted[format_index(self.current)],
        ) {
            (Some(m), Some(p)) if p > 0.0 => m / p,
            _ => 1.0,
        };
        Some(pred * scale)
    }

    /// Feeds one window's measurement for the current format and decides.
    ///
    /// Returns `Some(target)` when a sustained, amortisable mispredict
    /// says training should re-convert to `target`; the detector then
    /// treats `target` as current. `calls` is the window's SMSV call count
    /// (noise gate) and `remaining_iterations` the solver budget left
    /// (amortisation gate: 2 SMSVs per iteration).
    pub fn observe(
        &mut self,
        secs_per_call: f64,
        calls: u64,
        remaining_iterations: usize,
    ) -> Option<Format> {
        if calls < self.config.min_calls_per_window || !secs_per_call.is_finite() {
            return None;
        }
        let i = format_index(self.current);
        self.measured[i] = Some(match self.measured[i] {
            Some(old) => 0.5 * old + 0.5 * secs_per_call,
            None => secs_per_call,
        });
        let est_current = self.measured[i].expect("just set");

        // Best alternative among the formats the model scored.
        let best = Format::ALL
            .iter()
            .copied()
            .filter(|&f| f != self.current && self.predicted[format_index(f)].is_some())
            .filter_map(|f| self.estimate(f).map(|e| (f, e)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite estimates"))?;
        let (target, est_best) = best;

        let mispredicted = est_current > self.config.hysteresis * est_best;
        // Amortisation: the conversion (≈ conversion_cost_sweeps SMSV
        // sweeps of the current format) must pay for itself within the
        // remaining ~2·iterations SMSV calls.
        let gain = (est_current - est_best) * 2.0 * remaining_iterations as f64;
        let amortised = gain > self.config.conversion_cost_sweeps * est_current;

        if mispredicted && amortised && self.switches < self.config.max_switches {
            self.streak += 1;
            if self.streak >= self.config.patience {
                self.streak = 0;
                self.switches += 1;
                self.current = target;
                return Some(target);
            }
        } else {
            self.streak = 0;
        }
        None
    }
}

/// One mid-training format change.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwitchEvent {
    /// SMO iterations completed when the switch happened.
    pub at_iteration: usize,
    /// Format trained on before the switch.
    pub from: Format,
    /// Format trained on after the switch.
    pub to: Format,
    /// Measured seconds/call of `from` that triggered the switch.
    pub measured_secs_per_call: f64,
    /// Estimated seconds/call of `to` at switch time.
    pub estimated_target_secs_per_call: f64,
}

/// Everything the reactive run learned and did.
#[derive(Debug, Clone)]
pub struct ReactiveReport {
    /// The up-front selection that seeded training.
    pub initial: SelectionReport,
    /// Format the run finished on.
    pub final_format: Format,
    /// Mid-training conversions, in order.
    pub switches: Vec<SwitchEvent>,
    /// Solver statistics for the whole run.
    pub stats: SmoStats,
    /// Telemetry at the end of the run.
    pub telemetry: TelemetrySnapshot,
}

/// A [`LayoutScheduler`] that keeps scheduling *during* training.
#[derive(Debug, Clone)]
pub struct ReactiveScheduler {
    scheduler: LayoutScheduler,
    cost: CostModelSelector,
    config: ReactiveConfig,
}

impl Default for ReactiveScheduler {
    fn default() -> Self {
        Self::new(LayoutScheduler::default())
    }
}

impl ReactiveScheduler {
    /// Reactive training seeded by `scheduler`'s up-front choice.
    pub fn new(scheduler: LayoutScheduler) -> Self {
        Self { scheduler, cost: CostModelSelector::default(), config: ReactiveConfig::default() }
    }

    /// Overrides the reactive tunables.
    pub fn with_config(mut self, config: ReactiveConfig) -> Self {
        self.config = config;
        self
    }

    /// Overrides the cost model used for candidate predictions.
    pub fn with_cost_model(mut self, cost: CostModelSelector) -> Self {
        self.cost = cost;
        self
    }

    /// The seeding scheduler.
    pub fn scheduler(&self) -> &LayoutScheduler {
        &self.scheduler
    }

    /// The reactive tunables.
    pub fn config(&self) -> &ReactiveConfig {
        &self.config
    }

    /// Trains an SVM with mid-training re-scheduling.
    ///
    /// The initial format comes from the seeding scheduler; thereafter
    /// each segment's measured SMSV throughput is compared against the
    /// cost model and the matrix is re-converted when the detector fires.
    pub fn train(
        &self,
        t: &TripletMatrix,
        y: &[dls_sparse::Scalar],
        params: &SmoParams,
    ) -> Result<(SvmModel, ReactiveReport), SvmError> {
        let initial = self.scheduler.select_only(t);
        let counters = SmsvCounters::shared();
        let mut matrix =
            InstrumentedMatrix::new(AnyMatrix::from_triplets(initial.chosen, t), counters.clone());
        let mut monitor = KernelMonitor::new(counters);
        let mut detector = MispredictDetector::new(
            initial.chosen,
            &self.cost.score_all(&initial.features),
            self.config,
        );

        let mut state = dls_svm::SmoState::new(&matrix, y, params)?;
        let mut switches = Vec::new();
        while state.can_continue(params) {
            state.run_segment(&matrix, params, self.config.segment_iters.max(1));
            let window = monitor.tick();
            let current = matrix.format();
            let delta = window.delta(current);
            let Some(secs_per_call) = delta.secs_per_call() else { continue };
            let remaining = params.max_iterations.saturating_sub(state.iterations());
            if let Some(target) = detector.observe(secs_per_call, delta.calls, remaining) {
                let estimated = detector.estimate(target).unwrap_or(f64::NAN);
                switches.push(SwitchEvent {
                    at_iteration: state.iterations(),
                    from: current,
                    to: target,
                    measured_secs_per_call: secs_per_call,
                    estimated_target_secs_per_call: estimated,
                });
                matrix = matrix.convert(target);
            }
        }

        let (model, stats) = state.finalize(&matrix, params);
        let report = ReactiveReport {
            final_format: matrix.format(),
            initial,
            switches,
            stats,
            telemetry: monitor.snapshot(),
        };
        Ok((model, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn predictions(pairs: &[(Format, f64)]) -> Vec<FormatScore> {
        pairs.iter().map(|&(f, s)| FormatScore::new(f, s)).collect()
    }

    #[test]
    fn sustained_mispredict_triggers_switch() {
        // Model says CSR should be 10× faster than DIA; solver sits on DIA.
        let preds = predictions(&[(Format::Dia, 1e-4), (Format::Csr, 1e-5)]);
        let mut d = MispredictDetector::new(Format::Dia, &preds, ReactiveConfig::default());
        assert_eq!(d.observe(1e-4, 100, 100_000), None, "patience window 1");
        assert_eq!(d.observe(1e-4, 100, 100_000), Some(Format::Csr), "patience window 2");
        assert_eq!(d.current(), Format::Csr);
        assert_eq!(d.switches(), 1);
    }

    #[test]
    fn noisy_timings_do_not_thrash() {
        // Two formats predicted within 10% of each other: ±20% timing
        // noise must never trigger a switch under 1.5× hysteresis.
        let preds = predictions(&[(Format::Csr, 1.0e-5), (Format::Ell, 1.1e-5)]);
        let mut d = MispredictDetector::new(Format::Csr, &preds, ReactiveConfig::default());
        let noisy = [1.2e-5, 0.8e-5, 1.1e-5, 0.9e-5, 1.25e-5, 0.85e-5, 1.0e-5, 1.15e-5];
        for (k, &s) in noisy.iter().cycle().take(64).enumerate() {
            assert_eq!(d.observe(s, 100, 100_000), None, "window {k}");
        }
        assert_eq!(d.current(), Format::Csr);
        assert_eq!(d.switches(), 0);
    }

    #[test]
    fn patience_requires_consecutive_windows() {
        let preds = predictions(&[(Format::Dia, 1e-4), (Format::Csr, 1e-5)]);
        let cfg = ReactiveConfig { patience: 3, ..Default::default() };
        let mut d = MispredictDetector::new(Format::Dia, &preds, cfg);
        assert_eq!(d.observe(1e-4, 100, 100_000), None);
        assert_eq!(d.observe(1e-4, 100, 100_000), None);
        // A quiet window (too few calls) must not count toward the streak
        // — and must not reset it either, since it carries no signal.
        assert_eq!(d.observe(1e-4, 1, 100_000), None);
        assert_eq!(d.observe(1e-4, 100, 100_000), Some(Format::Csr));
    }

    #[test]
    fn measured_values_override_predictions() {
        // Model claims ELL is 5× faster than CSR. After switching, ELL
        // *measures* 3× slower — the detector must switch back based on
        // CSR's retained measurement, then hold (max_switches respected).
        let preds = predictions(&[(Format::Csr, 5e-5), (Format::Ell, 1e-5)]);
        let cfg = ReactiveConfig { patience: 1, max_switches: 2, ..Default::default() };
        let mut d = MispredictDetector::new(Format::Csr, &preds, cfg);
        // CSR measures 1e-5; scaled prediction for ELL = 1e-5 * (1e-5/5e-5)
        // = 2e-6 → apparent 5× win → switch.
        assert_eq!(d.observe(1e-5, 100, 100_000), Some(Format::Ell));
        // ELL actually measures 3e-5, CSR's measured 1e-5 is remembered →
        // switch back.
        assert_eq!(d.observe(3e-5, 100, 100_000), Some(Format::Csr));
        // Back on CSR, measured ELL (3e-5) no longer looks attractive:
        // no further switches even with budget left.
        assert_eq!(d.observe(1e-5, 100, 100_000), None);
        assert_eq!(d.switches(), 2);
    }

    #[test]
    fn no_switch_when_conversion_cannot_amortise() {
        let preds = predictions(&[(Format::Dia, 1e-4), (Format::Csr, 1e-5)]);
        let mut d = MispredictDetector::new(Format::Dia, &preds, ReactiveConfig::default());
        // 10× mispredict but only 3 iterations left: 6 SMSV calls cannot
        // repay an 8-sweep conversion.
        for _ in 0..8 {
            assert_eq!(d.observe(1e-4, 100, 3), None);
        }
        assert_eq!(d.switches(), 0);
    }

    #[test]
    fn max_switches_caps_conversions() {
        let preds = predictions(&[(Format::Dia, 1e-4), (Format::Csr, 1e-5)]);
        let cfg = ReactiveConfig { patience: 1, max_switches: 0, ..Default::default() };
        let mut d = MispredictDetector::new(Format::Dia, &preds, cfg);
        for _ in 0..8 {
            assert_eq!(d.observe(1e-4, 100, 100_000), None);
        }
        assert_eq!(d.switches(), 0);
    }
}
