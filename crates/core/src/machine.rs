//! Machine profiles.
//!
//! Several of the paper's format preferences are *hardware-conditional*:
//! the COO-over-CSR rule (Fig. 4) exists because Ivy Bridge/MIC CSR
//! kernels process rows in fixed-width SIMD lockstep, and row-length
//! imbalance starves the lanes. On a scalar machine the same rule
//! mis-fires — CSR has no lanes to starve. A [`MachineProfile`] makes the
//! dependence explicit so the rule system can be instantiated for the
//! paper's testbed or for the host it actually runs on.

/// How the target machine executes the SMSV inner loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MachineProfile {
    /// Effective SIMD width of the CSR row kernel, in f64 lanes.
    /// 1 = scalar execution; 8 = 512-bit AVX/MIC-style lockstep rows.
    pub simd_lanes: usize,
    /// Worker threads available for row-partitioned kernels.
    pub threads: usize,
}

impl MachineProfile {
    /// A scalar, single-threaded host (this repository's CI container).
    pub const SCALAR: MachineProfile = MachineProfile { simd_lanes: 1, threads: 1 };

    /// The paper's testbed: AVX Ivy Bridge + 512-bit Xeon Phi, OpenMP
    /// across 24 cores.
    pub const PAPER_TESTBED: MachineProfile = MachineProfile { simd_lanes: 8, threads: 24 };

    /// True when the CSR kernel runs rows in lockstep lanes, making it
    /// sensitive to `vdim` (the Figure 4 effect).
    pub fn csr_is_lane_lockstep(&self) -> bool {
        self.simd_lanes > 1
    }

    /// Detects a profile for the current host.
    ///
    /// The lane width describes the *CSR kernel actually in use*, not the
    /// raw ISA: `dls_sparse`'s default CSR SMSV is a scalar scatter-gather
    /// loop, so `simd_lanes = 1` regardless of AVX support. A build that
    /// routed CSR through [`dls_sparse::CsrMatrix::smsv_lanes`] would
    /// report its lane constant instead — the profile is about which
    /// kernel's `vdim` sensitivity the rules should model.
    pub fn host() -> MachineProfile {
        let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        MachineProfile { simd_lanes: 1, threads }
    }
}

impl Default for MachineProfile {
    /// Defaults to the paper's testbed so the default rule system
    /// reproduces the paper's selections.
    fn default() -> Self {
        Self::PAPER_TESTBED
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_profile_has_no_lockstep() {
        assert!(!MachineProfile::SCALAR.csr_is_lane_lockstep());
        assert!(MachineProfile::PAPER_TESTBED.csr_is_lane_lockstep());
    }

    #[test]
    fn host_profile_describes_the_scalar_kernel() {
        let h = MachineProfile::host();
        assert_eq!(h.simd_lanes, 1, "default CSR kernel is scalar gather");
        assert!(!h.csr_is_lane_lockstep());
        assert!(h.threads >= 1);
    }

    #[test]
    fn default_is_paper_testbed() {
        assert_eq!(MachineProfile::default(), MachineProfile::PAPER_TESTBED);
    }
}
