//! The runtime layout scheduler: the public entry point of the library.
//!
//! ```text
//! TripletMatrix ──► extract 9 parameters ──► selector ──► AnyMatrix
//!                        (Table IV)        (rules/cost/    (chosen
//!                                           empirical)      format)
//! ```
//!
//! Selection policy is open: built-in strategies are named by
//! [`SelectionStrategy`] and instantiated through its single dispatch
//! point, [`SelectionStrategy::selector`]; arbitrary user policies plug in
//! through [`LayoutScheduler::with_selector`].

use crate::cost::CostModelSelector;
use crate::decision::RuleBasedSelector;
use crate::empirical::EmpiricalSelector;
use crate::report::{rank_by_storage, SelectionReport};
use dls_sparse::{AnyMatrix, Format, MatrixFeatures, TripletMatrix};
use std::sync::Arc;

/// A pluggable selection policy.
///
/// `Send + Sync` so schedulers can be shared across training threads and
/// held by the reactive monitor.
pub trait FormatSelector: Send + Sync {
    /// Chooses a format for the matrix, returning the full report.
    fn select(&self, t: &TripletMatrix, f: &MatrixFeatures) -> SelectionReport;
}

/// Boxed selectors forward, so `SelectionStrategy::selector()`'s result can
/// be wrapped directly (e.g. by [`crate::TuningCache`]).
impl<T: FormatSelector + ?Sized> FormatSelector for Box<T> {
    fn select(&self, t: &TripletMatrix, f: &MatrixFeatures) -> SelectionReport {
        (**self).select(t, f)
    }
}

/// Which built-in selection policy the scheduler runs.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum SelectionStrategy {
    /// Ordered rules over the influencing parameters (the paper's system,
    /// tuned for the paper's vectorised testbed).
    #[default]
    RuleBased,
    /// The same rules instantiated for the machine this binary runs on
    /// (SIMD-conditional COO rule — see [`crate::MachineProfile`]).
    RuleBasedHost,
    /// Analytic storage/bandwidth model (Equation 7).
    CostModel,
    /// Measure every candidate and keep the fastest.
    Empirical,
    /// No adaptivity: always the given format (the LIBSVM/GPUSVM behaviour
    /// the paper argues against; used as the baseline in the benches).
    Fixed(Format),
}

impl SelectionStrategy {
    /// Instantiates the selector implementing this strategy — the single
    /// strategy-dispatch point in the crate.
    pub fn selector(&self) -> Box<dyn FormatSelector> {
        match *self {
            SelectionStrategy::RuleBased => Box::new(RuleBasedSelector::default()),
            SelectionStrategy::RuleBasedHost => Box::new(RuleBasedSelector::for_host()),
            SelectionStrategy::CostModel => Box::new(CostModelSelector::default()),
            SelectionStrategy::Empirical => Box::new(EmpiricalSelector::default()),
            SelectionStrategy::Fixed(fmt) => Box::new(FixedSelector(fmt)),
        }
    }
}

/// The non-adaptive policy: always the wrapped format, whatever the data
/// looks like. Scores rank the alternatives by predicted storage so the
/// report stays informative.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FixedSelector(pub Format);

impl FormatSelector for FixedSelector {
    fn select(&self, _t: &TripletMatrix, f: &MatrixFeatures) -> SelectionReport {
        SelectionReport {
            chosen: self.0,
            block: crate::report::default_block(self.0),
            features: *f,
            scores: rank_by_storage(self.0, f),
            reason: format!("fixed format {} (non-adaptive)", self.0),
        }
    }
}

/// The scheduler: a selection policy + conversion.
#[derive(Clone)]
pub struct LayoutScheduler {
    /// `Some` when built from a named strategy, `None` for custom selectors.
    strategy: Option<SelectionStrategy>,
    selector: Arc<dyn FormatSelector>,
}

impl std::fmt::Debug for LayoutScheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.strategy {
            Some(s) => write!(f, "LayoutScheduler({s:?})"),
            None => write!(f, "LayoutScheduler(custom selector)"),
        }
    }
}

impl Default for LayoutScheduler {
    fn default() -> Self {
        Self::with_strategy(SelectionStrategy::default())
    }
}

/// A matrix whose storage format was chosen by the scheduler.
#[derive(Debug, Clone)]
pub struct ScheduledMatrix {
    matrix: AnyMatrix,
    report: SelectionReport,
}

impl ScheduledMatrix {
    /// The materialised matrix in its chosen format.
    #[inline]
    pub fn matrix(&self) -> &AnyMatrix {
        &self.matrix
    }

    /// The chosen format.
    #[inline]
    pub fn format(&self) -> Format {
        self.report.chosen
    }

    /// Why this format was chosen.
    #[inline]
    pub fn report(&self) -> &SelectionReport {
        &self.report
    }

    /// Extracted influencing parameters.
    #[inline]
    pub fn features(&self) -> &MatrixFeatures {
        &self.report.features
    }

    /// Consumes the schedule, yielding the matrix.
    pub fn into_matrix(self) -> AnyMatrix {
        self.matrix
    }
}

impl LayoutScheduler {
    /// A scheduler with the default (rule-based) strategy.
    pub fn new() -> Self {
        Self::default()
    }

    /// A scheduler running one of the built-in strategies.
    pub fn with_strategy(strategy: SelectionStrategy) -> Self {
        Self { strategy: Some(strategy), selector: strategy.selector().into() }
    }

    /// A scheduler running an arbitrary selection policy. This is the open
    /// extension point: anything implementing [`FormatSelector`] slots in.
    pub fn with_selector(selector: impl FormatSelector + 'static) -> Self {
        Self { strategy: None, selector: Arc::new(selector) }
    }

    /// The named strategy, when the scheduler was built from one. `None`
    /// for custom selectors installed via [`LayoutScheduler::with_selector`].
    pub fn strategy(&self) -> Option<SelectionStrategy> {
        self.strategy
    }

    /// The active selection policy.
    pub fn selector(&self) -> &dyn FormatSelector {
        &*self.selector
    }

    /// Extracts features, runs the selector, and materialises the matrix in
    /// the chosen format.
    pub fn schedule(&self, t: &TripletMatrix) -> ScheduledMatrix {
        let compact;
        let t = if t.is_compact() {
            t
        } else {
            compact = t.clone().compact();
            &compact
        };
        let report = self.report_for(t);
        let matrix = AnyMatrix::from_triplets(report.chosen, t);
        ScheduledMatrix { matrix, report }
    }

    /// Runs only the selection (no materialisation) — useful when the
    /// caller wants the decision for matrices it will build elsewhere.
    pub fn select_only(&self, t: &TripletMatrix) -> SelectionReport {
        self.report_for(t)
    }

    fn report_for(&self, t: &TripletMatrix) -> SelectionReport {
        let features = MatrixFeatures::from_triplets(t);
        self.selector.select(t, &features)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dls_data::{generate, DatasetSpec};
    use dls_sparse::MatrixFormat;

    #[test]
    fn default_scheduler_is_rule_based() {
        let spec = DatasetSpec::by_name("trefethen").unwrap();
        let t = generate(spec, 1);
        let sched = LayoutScheduler::new();
        assert_eq!(sched.strategy(), Some(SelectionStrategy::RuleBased));
        let s = sched.schedule(&t);
        assert_eq!(s.format(), Format::Dia);
        assert_eq!(s.matrix().format(), Format::Dia);
        assert_eq!(s.matrix().nnz(), t.nnz());
        assert!(s.report().reason.contains("diagonal"));
    }

    #[test]
    fn fixed_strategy_never_adapts() {
        let spec = DatasetSpec::by_name("trefethen").unwrap();
        let t = generate(spec, 1);
        let s = LayoutScheduler::with_strategy(SelectionStrategy::Fixed(Format::Csr)).schedule(&t);
        assert_eq!(s.format(), Format::Csr);
        assert!(s.report().reason.contains("non-adaptive"));
        // Fixed reports rank every format, derived ones included.
        assert_eq!(s.report().scores.len(), Format::ALL.len());
    }

    #[test]
    fn all_strategies_produce_valid_matrices() {
        let spec = DatasetSpec::by_name("adult").unwrap().scaled(8);
        let t = generate(&spec, 2);
        for strategy in [
            SelectionStrategy::RuleBased,
            SelectionStrategy::CostModel,
            SelectionStrategy::Empirical,
            SelectionStrategy::Fixed(Format::Dia),
        ] {
            let s = LayoutScheduler::with_strategy(strategy).schedule(&t);
            assert_eq!(s.matrix().rows(), t.rows());
            assert_eq!(s.matrix().to_triplets().compact().entries(), t.entries());
            assert_eq!(s.features().nnz, t.nnz());
        }
    }

    #[test]
    fn select_only_matches_schedule() {
        let spec = DatasetSpec::by_name("mnist").unwrap();
        let t = generate(spec, 3);
        let sched = LayoutScheduler::new();
        assert_eq!(sched.select_only(&t).chosen, sched.schedule(&t).format());
    }

    #[test]
    fn strategy_selector_matches_with_strategy() {
        // The enum's selector() and the scheduler built from the same
        // strategy must agree — there is exactly one dispatch site.
        let spec = DatasetSpec::by_name("aloi").unwrap();
        let t = generate(spec, 7);
        let f = MatrixFeatures::from_triplets(&t);
        for strategy in [
            SelectionStrategy::RuleBased,
            SelectionStrategy::CostModel,
            SelectionStrategy::Fixed(Format::Ell),
        ] {
            let direct = strategy.selector().select(&t, &f);
            let via_sched = LayoutScheduler::with_strategy(strategy).select_only(&t);
            assert_eq!(direct.chosen, via_sched.chosen);
        }
    }

    #[test]
    fn custom_selector_plugs_in() {
        /// A policy no built-in strategy expresses: smallest predicted
        /// storage over all nine formats.
        struct SmallestStorage;
        impl FormatSelector for SmallestStorage {
            fn select(&self, _t: &TripletMatrix, f: &MatrixFeatures) -> SelectionReport {
                let chosen = Format::ALL
                    .iter()
                    .copied()
                    .min_by(|&a, &b| {
                        dls_sparse::storage::predicted_storage_elems(a, f)
                            .partial_cmp(&dls_sparse::storage::predicted_storage_elems(b, f))
                            .unwrap()
                    })
                    .unwrap();
                SelectionReport {
                    chosen,
                    block: crate::report::default_block(chosen),
                    features: *f,
                    scores: rank_by_storage(chosen, f),
                    reason: "smallest storage".into(),
                }
            }
        }
        let spec = DatasetSpec::by_name("trefethen").unwrap();
        let t = generate(spec, 1);
        let sched = LayoutScheduler::with_selector(SmallestStorage);
        assert_eq!(sched.strategy(), None);
        let s = sched.schedule(&t);
        // Trefethen is diagonal: DIA stores the least by a wide margin.
        assert_eq!(s.format(), Format::Dia);
        assert!(s.report().reason.contains("smallest storage"));
    }

    #[test]
    fn scheduled_matrix_trains_with_svm() {
        use dls_data::labels::linear_teacher_labels;
        let spec = DatasetSpec::by_name("adult").unwrap().scaled(20);
        let t = generate(&spec, 4);
        let y = linear_teacher_labels(&t, 0.0, 4);
        let s = LayoutScheduler::new().schedule(&t);
        let params = dls_svm::SmoParams {
            kernel: dls_svm::KernelKind::Linear,
            max_iterations: 5_000,
            ..Default::default()
        };
        let (model, stats) = dls_svm::train_with_stats(s.matrix(), &y, &params).unwrap();
        assert!(stats.iterations > 0);
        // Training accuracy on a teacher-labelled set must beat chance.
        let preds: Vec<f64> =
            (0..t.rows()).map(|i| model.predict_label(&t.row_sparse(i))).collect();
        let acc = dls_svm::accuracy(&preds, &y);
        assert!(acc > 0.8, "training accuracy {acc}");
    }

    #[test]
    fn into_matrix_yields_ownership() {
        let spec = DatasetSpec::by_name("trefethen").unwrap();
        let t = generate(spec, 1);
        let m = LayoutScheduler::new().schedule(&t).into_matrix();
        assert_eq!(m.format(), Format::Dia);
    }
}
