//! The runtime layout scheduler: the public entry point of the library.
//!
//! ```text
//! TripletMatrix ──► extract 9 parameters ──► strategy ──► AnyMatrix
//!                        (Table IV)        (rules/cost/    (chosen
//!                                           empirical)      format)
//! ```

use crate::cost::CostModelSelector;
use crate::decision::RuleBasedSelector;
use crate::empirical::EmpiricalSelector;
use crate::report::SelectionReport;
use dls_sparse::{AnyMatrix, Format, MatrixFeatures, TripletMatrix};

/// A pluggable selection policy.
pub trait FormatSelector {
    /// Chooses a format for the matrix, returning the full report.
    fn select(&self, t: &TripletMatrix, f: &MatrixFeatures) -> SelectionReport;
}

/// Which selection policy the scheduler runs.
#[derive(Debug, Clone, Copy, Default)]
pub enum SelectionStrategy {
    /// Ordered rules over the influencing parameters (the paper's system,
    /// tuned for the paper's vectorised testbed).
    #[default]
    RuleBased,
    /// The same rules instantiated for the machine this binary runs on
    /// (SIMD-conditional COO rule — see [`crate::MachineProfile`]).
    RuleBasedHost,
    /// Analytic storage/bandwidth model (Equation 7).
    CostModel,
    /// Measure every candidate and keep the fastest.
    Empirical,
    /// No adaptivity: always the given format (the LIBSVM/GPUSVM behaviour
    /// the paper argues against; used as the baseline in the benches).
    Fixed(Format),
}

/// The scheduler: strategy + conversion.
#[derive(Debug, Clone, Copy, Default)]
pub struct LayoutScheduler {
    strategy: SelectionStrategy,
}

/// A matrix whose storage format was chosen by the scheduler.
#[derive(Debug, Clone)]
pub struct ScheduledMatrix {
    matrix: AnyMatrix,
    report: SelectionReport,
}

impl ScheduledMatrix {
    /// The materialised matrix in its chosen format.
    #[inline]
    pub fn matrix(&self) -> &AnyMatrix {
        &self.matrix
    }

    /// The chosen format.
    #[inline]
    pub fn format(&self) -> Format {
        self.report.chosen
    }

    /// Why this format was chosen.
    #[inline]
    pub fn report(&self) -> &SelectionReport {
        &self.report
    }

    /// Extracted influencing parameters.
    #[inline]
    pub fn features(&self) -> &MatrixFeatures {
        &self.report.features
    }

    /// Consumes the schedule, yielding the matrix.
    pub fn into_matrix(self) -> AnyMatrix {
        self.matrix
    }
}

impl LayoutScheduler {
    /// A scheduler with the default (rule-based) strategy.
    pub fn new() -> Self {
        Self::default()
    }

    /// A scheduler with an explicit strategy.
    pub fn with_strategy(strategy: SelectionStrategy) -> Self {
        Self { strategy }
    }

    /// The active strategy.
    pub fn strategy(&self) -> SelectionStrategy {
        self.strategy
    }

    /// Extracts features, runs the strategy, and materialises the matrix in
    /// the chosen format.
    pub fn schedule(&self, t: &TripletMatrix) -> ScheduledMatrix {
        let compact;
        let t = if t.is_compact() {
            t
        } else {
            compact = t.clone().compact();
            &compact
        };
        let features = MatrixFeatures::from_triplets(t);
        let report = match self.strategy {
            SelectionStrategy::RuleBased => RuleBasedSelector::default().select(t, &features),
            SelectionStrategy::RuleBasedHost => {
                RuleBasedSelector::for_host().select(t, &features)
            }
            SelectionStrategy::CostModel => CostModelSelector::default().select(t, &features),
            SelectionStrategy::Empirical => EmpiricalSelector::default().select(t, &features),
            SelectionStrategy::Fixed(fmt) => SelectionReport {
                chosen: fmt,
                features,
                scores: fixed_scores(fmt),
                reason: format!("fixed format {fmt} (non-adaptive)"),
            },
        };
        let matrix = AnyMatrix::from_triplets(report.chosen, t);
        ScheduledMatrix { matrix, report }
    }

    /// Runs only the selection (no materialisation) — useful when the
    /// caller wants the decision for matrices it will build elsewhere.
    pub fn select_only(&self, t: &TripletMatrix) -> SelectionReport {
        self.schedule_report(t)
    }

    fn schedule_report(&self, t: &TripletMatrix) -> SelectionReport {
        let features = MatrixFeatures::from_triplets(t);
        match self.strategy {
            SelectionStrategy::RuleBased => RuleBasedSelector::default().select(t, &features),
            SelectionStrategy::RuleBasedHost => {
                RuleBasedSelector::for_host().select(t, &features)
            }
            SelectionStrategy::CostModel => CostModelSelector::default().select(t, &features),
            SelectionStrategy::Empirical => EmpiricalSelector::default().select(t, &features),
            SelectionStrategy::Fixed(fmt) => SelectionReport {
                chosen: fmt,
                features,
                scores: fixed_scores(fmt),
                reason: format!("fixed format {fmt} (non-adaptive)"),
            },
        }
    }
}

/// Degenerate score table for the fixed strategy: chosen = 0, rest = 1.
/// If `chosen` is a derived format (CSC/BCSR) it takes the first slot and
/// only four of the basic formats fit in the remaining ones.
fn fixed_scores(chosen: Format) -> [(Format, f64); 5] {
    let mut scores = [(chosen, 0.0); 5];
    let mut k = 1;
    for &fmt in &Format::BASIC {
        if fmt != chosen && k < 5 {
            scores[k] = (fmt, 1.0);
            k += 1;
        }
    }
    scores
}

#[cfg(test)]
mod tests {
    use super::*;
    use dls_data::{generate, DatasetSpec};
    use dls_sparse::MatrixFormat;

    #[test]
    fn default_scheduler_is_rule_based() {
        let spec = DatasetSpec::by_name("trefethen").unwrap();
        let t = generate(spec, 1);
        let s = LayoutScheduler::new().schedule(&t);
        assert_eq!(s.format(), Format::Dia);
        assert_eq!(s.matrix().format(), Format::Dia);
        assert_eq!(s.matrix().nnz(), t.nnz());
        assert!(s.report().reason.contains("diagonal"));
    }

    #[test]
    fn fixed_strategy_never_adapts() {
        let spec = DatasetSpec::by_name("trefethen").unwrap();
        let t = generate(spec, 1);
        let s = LayoutScheduler::with_strategy(SelectionStrategy::Fixed(Format::Csr))
            .schedule(&t);
        assert_eq!(s.format(), Format::Csr);
        assert!(s.report().reason.contains("non-adaptive"));
    }

    #[test]
    fn all_strategies_produce_valid_matrices() {
        let spec = DatasetSpec::by_name("adult").unwrap().scaled(8);
        let t = generate(&spec, 2);
        for strategy in [
            SelectionStrategy::RuleBased,
            SelectionStrategy::CostModel,
            SelectionStrategy::Empirical,
            SelectionStrategy::Fixed(Format::Dia),
        ] {
            let s = LayoutScheduler::with_strategy(strategy).schedule(&t);
            assert_eq!(s.matrix().rows(), t.rows());
            assert_eq!(s.matrix().to_triplets().compact().entries(), t.entries());
            assert_eq!(s.features().nnz, t.nnz());
        }
    }

    #[test]
    fn select_only_matches_schedule() {
        let spec = DatasetSpec::by_name("mnist").unwrap();
        let t = generate(spec, 3);
        let sched = LayoutScheduler::new();
        assert_eq!(sched.select_only(&t).chosen, sched.schedule(&t).format());
    }

    #[test]
    fn scheduled_matrix_trains_with_svm() {
        use dls_data::labels::linear_teacher_labels;
        let spec = DatasetSpec::by_name("adult").unwrap().scaled(20);
        let t = generate(&spec, 4);
        let y = linear_teacher_labels(&t, 0.0, 4);
        let s = LayoutScheduler::new().schedule(&t);
        let params = dls_svm::SmoParams {
            kernel: dls_svm::KernelKind::Linear,
            max_iterations: 5_000,
            ..Default::default()
        };
        let (model, stats) = dls_svm::train_with_stats(s.matrix(), &y, &params).unwrap();
        assert!(stats.iterations > 0);
        // Training accuracy on a teacher-labelled set must beat chance.
        let preds: Vec<f64> =
            (0..t.rows()).map(|i| model.predict_label(&t.row_sparse(i))).collect();
        let acc = dls_svm::accuracy(&preds, &y);
        assert!(acc > 0.8, "training accuracy {acc}");
    }

    #[test]
    fn into_matrix_yields_ownership() {
        let spec = DatasetSpec::by_name("trefethen").unwrap();
        let t = generate(spec, 1);
        let m = LayoutScheduler::new().schedule(&t).into_matrix();
        assert_eq!(m.format(), Format::Dia);
    }
}
