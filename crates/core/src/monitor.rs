//! Windowed kernel telemetry on top of [`dls_sparse::telemetry`].
//!
//! [`KernelMonitor`] periodically samples the shared [`SmsvCounters`] of an
//! instrumented matrix and keeps a ring buffer of per-window deltas, giving
//! the reactive scheduler a recent-throughput view that tracks phase
//! changes instead of averaging over the whole run. [`TelemetrySnapshot`]
//! is the exportable form: hand-rolled JSON and CSV (this workspace has no
//! serde), consumed by the repro binaries and the `dls stats` CLI.

use dls_sparse::telemetry::{CounterSample, SmsvCounters};
use dls_sparse::Format;
use std::collections::VecDeque;
use std::sync::Arc;

/// Per-format counter deltas for one monitoring window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowRecord {
    /// Monotone window number (1 = first `tick`).
    pub tick: u64,
    /// Delta per format, in [`Format::ALL`] order.
    pub deltas: [CounterSample; Format::ALL.len()],
}

impl WindowRecord {
    /// Delta for one format in this window.
    pub fn delta(&self, format: Format) -> CounterSample {
        self.deltas[dls_sparse::telemetry::format_index(format)]
    }
}

/// Ring-buffered window view over shared SMSV counters.
#[derive(Debug)]
pub struct KernelMonitor {
    counters: Arc<SmsvCounters>,
    last: [CounterSample; Format::ALL.len()],
    windows: VecDeque<WindowRecord>,
    capacity: usize,
    ticks: u64,
}

impl KernelMonitor {
    /// Default ring capacity: enough history to smooth noisy segments
    /// without remembering a stale phase forever.
    pub const DEFAULT_WINDOWS: usize = 32;

    /// A monitor over `counters` with the default ring capacity.
    pub fn new(counters: Arc<SmsvCounters>) -> Self {
        Self::with_capacity(counters, Self::DEFAULT_WINDOWS)
    }

    /// A monitor keeping the most recent `capacity` windows.
    pub fn with_capacity(counters: Arc<SmsvCounters>, capacity: usize) -> Self {
        let capacity = capacity.max(1);
        let last = counters.sample_all();
        Self { counters, last, windows: VecDeque::with_capacity(capacity), capacity, ticks: 0 }
    }

    /// The shared counters being observed.
    pub fn counters(&self) -> &Arc<SmsvCounters> {
        &self.counters
    }

    /// Closes the current window: samples the counters, records the delta
    /// since the previous tick, and returns the new window record.
    pub fn tick(&mut self) -> WindowRecord {
        let now = self.counters.sample_all();
        let mut deltas = [CounterSample::default(); Format::ALL.len()];
        for (d, (new, old)) in deltas.iter_mut().zip(now.iter().zip(self.last.iter())) {
            *d = new.delta(old);
        }
        self.last = now;
        self.ticks += 1;
        let record = WindowRecord { tick: self.ticks, deltas };
        if self.windows.len() == self.capacity {
            self.windows.pop_front();
        }
        self.windows.push_back(record.clone());
        record
    }

    /// Number of `tick` calls so far.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// The retained windows, oldest first.
    pub fn windows(&self) -> impl Iterator<Item = &WindowRecord> {
        self.windows.iter()
    }

    /// Aggregated delta for `format` over the retained windows.
    pub fn recent(&self, format: Format) -> CounterSample {
        let mut acc = CounterSample::default();
        for w in &self.windows {
            let d = w.delta(format);
            acc.calls += d.calls;
            acc.nanos += d.nanos;
            acc.bytes += d.bytes;
        }
        acc
    }

    /// Mean seconds per SMSV call for `format` over the retained windows.
    pub fn recent_secs_per_call(&self, format: Format) -> Option<f64> {
        self.recent(format).secs_per_call()
    }

    /// Streaming throughput for `format` over the retained windows.
    pub fn recent_bytes_per_sec(&self, format: Format) -> Option<f64> {
        self.recent(format).bytes_per_sec()
    }

    /// Exportable snapshot: cumulative totals plus recent-window rates.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let per_format = Format::ALL
            .iter()
            .map(|&format| {
                let total = self.counters.sample(format);
                let recent = self.recent(format);
                FormatTelemetry {
                    format,
                    calls: total.calls,
                    nanos: total.nanos,
                    bytes: total.bytes,
                    recent_secs_per_call: recent.secs_per_call(),
                    recent_bytes_per_sec: recent.bytes_per_sec(),
                }
            })
            .collect();
        TelemetrySnapshot { ticks: self.ticks, per_format }
    }
}

/// One format's row in a [`TelemetrySnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct FormatTelemetry {
    /// The format.
    pub format: Format,
    /// Cumulative SMSV calls.
    pub calls: u64,
    /// Cumulative nanoseconds inside SMSV.
    pub nanos: u64,
    /// Cumulative bytes streamed.
    pub bytes: u64,
    /// Mean seconds per call over the monitor's recent windows.
    pub recent_secs_per_call: Option<f64>,
    /// Streaming throughput over the monitor's recent windows.
    pub recent_bytes_per_sec: Option<f64>,
}

/// Point-in-time telemetry export.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetrySnapshot {
    /// Monitoring windows closed so far.
    pub ticks: u64,
    /// Per-format rows in [`Format::ALL`] order. Formats with zero calls
    /// are retained so consumers see the full candidate space.
    pub per_format: Vec<FormatTelemetry>,
}

fn json_f64(v: Option<f64>) -> String {
    match v {
        Some(x) if x.is_finite() => format!("{x:.6e}"),
        _ => "null".to_string(),
    }
}

impl TelemetrySnapshot {
    /// Rows restricted to formats that actually ran.
    pub fn active(&self) -> impl Iterator<Item = &FormatTelemetry> {
        self.per_format.iter().filter(|t| t.calls > 0)
    }

    /// Total SMSV calls across formats.
    pub fn total_calls(&self) -> u64 {
        self.per_format.iter().map(|t| t.calls).sum()
    }

    /// Serialises to a compact JSON object.
    pub fn to_json(&self) -> String {
        let mut rows = Vec::with_capacity(self.per_format.len());
        for t in &self.per_format {
            rows.push(format!(
                concat!(
                    "{{\"format\":\"{}\",\"calls\":{},\"nanos\":{},\"bytes\":{},",
                    "\"recent_secs_per_call\":{},\"recent_bytes_per_sec\":{}}}"
                ),
                t.format,
                t.calls,
                t.nanos,
                t.bytes,
                json_f64(t.recent_secs_per_call),
                json_f64(t.recent_bytes_per_sec),
            ));
        }
        format!("{{\"ticks\":{},\"formats\":[{}]}}", self.ticks, rows.join(","))
    }

    /// CSV column header matching [`TelemetrySnapshot::to_csv_rows`].
    pub fn csv_header() -> &'static str {
        "format,calls,nanos,bytes,recent_secs_per_call,recent_bytes_per_sec"
    }

    /// One CSV row per format (formats with zero calls included).
    pub fn to_csv_rows(&self) -> Vec<String> {
        self.per_format
            .iter()
            .map(|t| {
                format!(
                    "{},{},{},{},{},{}",
                    t.format,
                    t.calls,
                    t.nanos,
                    t.bytes,
                    t.recent_secs_per_call.map_or(String::new(), |v| format!("{v:.6e}")),
                    t.recent_bytes_per_sec.map_or(String::new(), |v| format!("{v:.6e}")),
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(counters: &SmsvCounters, format: Format, calls: u64, nanos: u64, bytes: u64) {
        for _ in 0..calls {
            counters.record(format, nanos, bytes);
        }
    }

    #[test]
    fn tick_captures_window_deltas() {
        let counters = SmsvCounters::shared();
        let mut mon = KernelMonitor::new(counters.clone());
        record(&counters, Format::Csr, 3, 100, 1_000);
        let w1 = mon.tick();
        assert_eq!(w1.tick, 1);
        assert_eq!(w1.delta(Format::Csr), CounterSample { calls: 3, nanos: 300, bytes: 3_000 });
        assert_eq!(w1.delta(Format::Dia), CounterSample::default());
        // Second window sees only new activity.
        record(&counters, Format::Csr, 1, 500, 1_000);
        let w2 = mon.tick();
        assert_eq!(w2.delta(Format::Csr), CounterSample { calls: 1, nanos: 500, bytes: 1_000 });
    }

    #[test]
    fn pre_existing_counts_are_not_attributed_to_first_window() {
        let counters = SmsvCounters::shared();
        record(&counters, Format::Ell, 10, 50, 10);
        // Monitor created *after* activity: baseline excludes it.
        let mut mon = KernelMonitor::new(counters.clone());
        let w = mon.tick();
        assert_eq!(w.delta(Format::Ell), CounterSample::default());
    }

    #[test]
    fn ring_buffer_evicts_oldest_windows() {
        let counters = SmsvCounters::shared();
        let mut mon = KernelMonitor::with_capacity(counters.clone(), 2);
        for k in 0..5u64 {
            record(&counters, Format::Coo, 1, 100 * (k + 1), 10);
            mon.tick();
        }
        assert_eq!(mon.ticks(), 5);
        let ticks: Vec<u64> = mon.windows().map(|w| w.tick).collect();
        assert_eq!(ticks, vec![4, 5]);
        // recent() aggregates only retained windows: nanos 400 + 500.
        let r = mon.recent(Format::Coo);
        assert_eq!(r.calls, 2);
        assert_eq!(r.nanos, 900);
    }

    #[test]
    fn recent_rates_do_window_math() {
        let counters = SmsvCounters::shared();
        let mut mon = KernelMonitor::with_capacity(counters.clone(), 8);
        record(&counters, Format::Dia, 4, 1_000, 500);
        mon.tick();
        record(&counters, Format::Dia, 4, 3_000, 500);
        mon.tick();
        // 8 calls, 16 µs total → 2 µs/call; 4 000 bytes / 16 µs.
        let spc = mon.recent_secs_per_call(Format::Dia).unwrap();
        assert!((spc - 2e-6).abs() < 1e-12, "{spc}");
        let bps = mon.recent_bytes_per_sec(Format::Dia).unwrap();
        assert!((bps - 4_000.0 / 16e-6).abs() < 1e-3, "{bps}");
        assert_eq!(mon.recent_secs_per_call(Format::Den), None);
    }

    #[test]
    fn snapshot_exports_json_and_csv() {
        let counters = SmsvCounters::shared();
        let mut mon = KernelMonitor::new(counters.clone());
        record(&counters, Format::Csr, 2, 250, 64);
        mon.tick();
        let snap = mon.snapshot();
        assert_eq!(snap.ticks, 1);
        assert_eq!(snap.total_calls(), 2);
        assert_eq!(snap.active().count(), 1);
        let json = snap.to_json();
        assert!(json.starts_with("{\"ticks\":1,"));
        assert!(json.contains("\"format\":\"CSR\",\"calls\":2,\"nanos\":500,\"bytes\":128"));
        assert!(json.contains("\"recent_secs_per_call\":2.5"));
        // Unused formats serialise with null rates, not garbage.
        assert!(json.contains(
            "\"format\":\"DIA\",\"calls\":0,\"nanos\":0,\"bytes\":0,\"recent_secs_per_call\":null"
        ));
        let rows = snap.to_csv_rows();
        assert_eq!(rows.len(), Format::ALL.len());
        assert_eq!(TelemetrySnapshot::csv_header().split(',').count(), 6);
        let csr_row = rows.iter().find(|r| r.starts_with("CSR,")).unwrap();
        assert!(csr_row.starts_with("CSR,2,500,128,"));
    }
}
