//! Analytic cost-model selector (Equation 7 of the paper).
//!
//! `time ≳ transferred memory / memory bandwidth`: the per-iteration SMSV
//! streams the whole stored representation once, so predicted time is the
//! Table II storage volume (in bytes) divided by the per-format effective
//! bandwidth of §III-B.

use crate::bandwidth::BandwidthProfile;
use crate::report::{default_block, FormatScore, SelectionReport};
use crate::scheduler::FormatSelector;
use dls_sparse::storage::predicted_storage_elems;
use dls_sparse::{Format, MatrixFeatures, Scalar, TripletMatrix};

/// Selector that minimises predicted SMSV time over the candidate formats.
#[derive(Debug, Clone, Copy, Default)]
pub struct CostModelSelector {
    /// Per-format effective bandwidth used as the denominator of Eq. (7).
    pub bandwidth: BandwidthProfile,
    /// Score (and allow choosing) the derived formats — CSC, BCSR, HYB,
    /// JDS — beyond the paper's basic five. Off by default so selection
    /// matches the paper's five-way choice (CSC ties CSR exactly under
    /// Eq. 7).
    pub include_derived: bool,
    /// Kernel block size the consumer will use for batched SMSV
    /// (`smsv_block`). `0` or `1` models the unblocked per-vector kernel;
    /// larger values amortise the matrix stream over `block` right-hand
    /// sides for formats with a native blocked kernel.
    pub block: usize,
    /// Learned per-format tuned block sizes, indexed by each format's
    /// position in [`Format::ALL`]. A present non-zero entry overrides the
    /// uniform `block` when pricing that format, so amortisation is priced
    /// at the block size the kernel will actually run with rather than a
    /// fixed engine-wide constant.
    pub blocks: Option<[usize; Format::ALL.len()]>,
}

impl CostModelSelector {
    /// Creates a selector with a custom bandwidth profile.
    pub fn with_bandwidth(bandwidth: BandwidthProfile) -> Self {
        Self { bandwidth, ..Default::default() }
    }

    /// Also scores (and allows choosing) the derived formats.
    pub fn with_derived(mut self) -> Self {
        self.include_derived = true;
        self
    }

    /// Models a consumer that batches `block` SMSVs per matrix sweep.
    pub fn with_block(mut self, block: usize) -> Self {
        self.block = block;
        self
    }

    /// Supplies learned per-format tuned block sizes (indexed by each
    /// format's position in [`Format::ALL`]); a zero entry keeps the
    /// uniform `block` for that format.
    pub fn with_block_hints(mut self, blocks: [usize; Format::ALL.len()]) -> Self {
        self.blocks = Some(blocks);
        self
    }

    /// The block size used to price `format`: the tuned per-format hint
    /// when one is present, the uniform consumer `block` otherwise.
    pub fn effective_block(&self, format: Format) -> usize {
        let hint = self.blocks.and_then(|bs| {
            let k = Format::ALL.iter().position(|&f| f == format)?;
            (bs[k] > 0).then_some(bs[k])
        });
        hint.unwrap_or(self.block).max(1)
    }

    /// The candidate formats this selector scores.
    pub fn candidates(&self) -> &'static [Format] {
        if self.include_derived {
            &Format::ALL
        } else {
            &Format::BASIC
        }
    }

    /// Predicted seconds for one SMSV sweep in `format`.
    ///
    /// Storage *elements* are converted to bytes: the value array streams
    /// 8-byte scalars and index arrays 8-byte words, so elements × 8 is the
    /// transferred volume Equation (7) divides by bandwidth.
    /// With `block > 1` and a format that has a native blocked kernel, the
    /// matrix stream is amortised over the block: per SMSV the transferred
    /// volume drops to `storage / block` plus the per-vector workspace
    /// traffic (scatter + gather of one dense column vector, `2·n` words)
    /// that cannot be amortised. Formats without a blocked kernel fall back
    /// to one full sweep per vector and keep the unblocked prediction.
    pub fn predicted_time(&self, format: Format, f: &MatrixFeatures) -> f64 {
        let elems = predicted_storage_elems(format, f);
        let bytes = elems * std::mem::size_of::<Scalar>() as f64;
        let b = self.effective_block(format);
        if b > 1 && format.has_blocked_kernel() {
            let vector_bytes = 2.0 * f.n as f64 * std::mem::size_of::<Scalar>() as f64;
            (bytes / b as f64 + vector_bytes) / self.bandwidth.bytes_per_sec(format)
        } else {
            bytes / self.bandwidth.bytes_per_sec(format)
        }
    }

    /// Predicted times for every candidate format (lower is better).
    pub fn score_all(&self, f: &MatrixFeatures) -> Vec<FormatScore> {
        self.candidates()
            .iter()
            .map(|&fmt| FormatScore::new(fmt, self.predicted_time(fmt, f)))
            .collect()
    }
}

impl FormatSelector for CostModelSelector {
    fn select(&self, t: &TripletMatrix, f: &MatrixFeatures) -> SelectionReport {
        let _ = t;
        let scores = self.score_all(f);
        let FormatScore { format: chosen, score: best } = scores
            .iter()
            .min_by(|a, b| a.score.partial_cmp(&b.score).expect("finite times"))
            .copied()
            .expect("at least five candidates");
        // Batching consumers run the chosen format at the block the model
        // priced; a selector that never priced blocking still reports the
        // engine default so downstream coalescing is not throttled.
        let block = if self.block > 1 || self.blocks.is_some() {
            if chosen.has_blocked_kernel() {
                self.effective_block(chosen)
            } else {
                1
            }
        } else {
            default_block(chosen)
        };
        SelectionReport {
            chosen,
            block,
            features: *f,
            scores,
            reason: format!("cost model: {:.2e} s predicted via Eq. (7) storage/bandwidth", best),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dls_data::{generate, DatasetSpec};

    fn features_of(name: &str, scale: usize) -> MatrixFeatures {
        let spec = DatasetSpec::by_name(name).unwrap().scaled(scale);
        MatrixFeatures::from_triplets(&generate(&spec, 42))
    }

    #[test]
    fn dia_wins_on_diagonal_matrices() {
        let f = features_of("trefethen", 1);
        let sel = CostModelSelector::default();
        let scores = sel.score_all(&f);
        let best =
            scores.iter().min_by(|a, b| a.score.partial_cmp(&b.score).unwrap()).unwrap().format;
        assert_eq!(best, Format::Dia);
    }

    #[test]
    fn den_wins_on_dense_matrices() {
        let f = features_of("leukemia", 1);
        let sel = CostModelSelector::default();
        let best = sel
            .score_all(&f)
            .iter()
            .min_by(|a, b| a.score.partial_cmp(&b.score).unwrap())
            .unwrap()
            .format;
        assert_eq!(best, Format::Den, "DEN stores MN vs CSR's 2MN+M on dense data");
    }

    #[test]
    fn predicted_time_scales_with_storage() {
        let f = features_of("adult", 1);
        let sel = CostModelSelector::with_bandwidth(BandwidthProfile::FLAT);
        // With flat bandwidth the ordering must follow pure storage size.
        let t_coo = sel.predicted_time(Format::Coo, &f);
        let t_csr = sel.predicted_time(Format::Csr, &f);
        assert!(t_csr < t_coo, "CSR stores 2nnz+M+1 < COO's 3nnz");
    }

    #[test]
    fn ell_padding_penalised() {
        // mnist: mdim 291 vs adim 148 → ELL stores ~2x the useful data.
        let f = features_of("mnist", 1);
        let sel = CostModelSelector::with_bandwidth(BandwidthProfile::FLAT);
        assert!(
            sel.predicted_time(Format::Ell, &f) > sel.predicted_time(Format::Csr, &f),
            "padded ELL must cost more than CSR on imbalanced rows"
        );
    }

    #[test]
    fn report_is_consistent() {
        use crate::scheduler::FormatSelector;
        let spec = DatasetSpec::by_name("trefethen").unwrap();
        let t = generate(spec, 1);
        let f = MatrixFeatures::from_triplets(&t);
        let r = CostModelSelector::default().select(&t, &f);
        assert_eq!(r.chosen, Format::Dia);
        let chosen_score = r.score_of(r.chosen).unwrap();
        for s in &r.scores {
            assert!(chosen_score <= s.score);
        }
        assert!(r.reason.contains("cost model"));
    }

    #[test]
    fn blocking_cheapens_formats_with_blocked_kernels() {
        let f = features_of("adult", 1);
        let flat = CostModelSelector::with_bandwidth(BandwidthProfile::FLAT);
        let blocked = flat.with_block(8);
        // Every format has a true blocked kernel, CSC included (its merged
        // column sweep streams shared columns once per block).
        for fmt in Format::ALL {
            assert!(
                blocked.predicted_time(fmt, &f) < flat.predicted_time(fmt, &f),
                "{fmt}: amortised sweep must be cheaper"
            );
        }
        // block = 1 must be exactly the unblocked model.
        assert_eq!(
            flat.with_block(1).predicted_time(Format::Csr, &f),
            flat.predicted_time(Format::Csr, &f)
        );
    }

    #[test]
    fn block_hints_override_uniform_block_per_format() {
        let f = features_of("adult", 1);
        let flat = CostModelSelector::with_bandwidth(BandwidthProfile::FLAT);
        let mut hints = [0usize; Format::ALL.len()];
        let csr_at = Format::ALL.iter().position(|&x| x == Format::Csr).unwrap();
        hints[csr_at] = 4;
        let sel = flat.with_block(32).with_block_hints(hints);
        assert_eq!(sel.effective_block(Format::Csr), 4);
        // Zero entries fall back to the uniform block.
        assert_eq!(sel.effective_block(Format::Ell), 32);
        // Pricing CSR at block 4 must cost more than at block 32.
        assert!(
            sel.predicted_time(Format::Csr, &f)
                > flat.with_block(32).predicted_time(Format::Csr, &f)
        );
        // The report carries the tuned block of the chosen format.
        use crate::scheduler::FormatSelector;
        let spec = dls_data::DatasetSpec::by_name("adult").unwrap();
        let t = dls_data::generate(spec, 1);
        let r = sel.select(&t, &f);
        assert_eq!(r.block, sel.effective_block(r.chosen));
    }

    #[test]
    fn derived_candidates_are_scored_when_enabled() {
        let f = features_of("aloi", 1);
        let sel = CostModelSelector::default().with_derived();
        let r = sel.select(&dls_data::generate(DatasetSpec::by_name("aloi").unwrap(), 1), &f);
        assert_eq!(r.scores.len(), Format::ALL.len());
        for fmt in [Format::Csc, Format::Bcsr, Format::Hyb, Format::Jds] {
            let s = r.score_of(fmt).expect("derived formats are scored");
            assert!(s.is_finite() && s > 0.0, "{fmt}: {s}");
        }
    }
}
