//! Human-inspectable record of a selection decision.

use dls_sparse::{Format, MatrixFeatures};

/// Why and how a format was chosen for one dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectionReport {
    /// The chosen format.
    pub chosen: Format,
    /// Extracted influencing parameters the decision was based on.
    pub features: MatrixFeatures,
    /// Per-format score: *lower is better* (predicted seconds for the cost
    /// model, measured seconds for the empirical selector, rule rank for the
    /// rule system). Ordered as [`Format::BASIC`].
    pub scores: [(Format, f64); 5],
    /// One-line human-readable justification.
    pub reason: String,
}

impl SelectionReport {
    /// Score of a specific format, if present.
    pub fn score_of(&self, format: Format) -> Option<f64> {
        self.scores.iter().find(|(f, _)| *f == format).map(|(_, s)| *s)
    }

    /// The format with the worst (highest) score — the paper's baseline for
    /// the "non-adaptive worst case" speedups.
    pub fn worst(&self) -> Format {
        self.scores
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("scores are finite"))
            .map(|(f, _)| *f)
            .expect("five scores always present")
    }
}

impl std::fmt::Display for SelectionReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "selected {} — {}", self.chosen, self.reason)?;
        writeln!(f, "  features: {}", self.features)?;
        write!(f, "  scores:")?;
        for (fmt, s) in &self.scores {
            write!(f, " {fmt}={s:.3e}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dls_sparse::TripletMatrix;

    fn report() -> SelectionReport {
        let t = TripletMatrix::from_dense(2, 2, &[1.0, 0.0, 0.0, 1.0]);
        SelectionReport {
            chosen: Format::Dia,
            features: MatrixFeatures::from_triplets(&t),
            scores: [
                (Format::Ell, 3.0),
                (Format::Csr, 2.0),
                (Format::Coo, 2.5),
                (Format::Den, 4.0),
                (Format::Dia, 1.0),
            ],
            reason: "single diagonal".into(),
        }
    }

    #[test]
    fn score_lookup_and_worst() {
        let r = report();
        assert_eq!(r.score_of(Format::Csr), Some(2.0));
        assert_eq!(r.score_of(Format::Bcsr), None);
        assert_eq!(r.worst(), Format::Den);
    }

    #[test]
    fn display_mentions_choice_and_scores() {
        let s = report().to_string();
        assert!(s.contains("selected DIA"));
        assert!(s.contains("single diagonal"));
        assert!(s.contains("CSR="));
    }
}
