//! Human-inspectable record of a selection decision.

use dls_sparse::{Format, MatrixFeatures};

/// One scored candidate format. *Lower is better* — predicted seconds for
/// the cost model, measured seconds for the empirical selector, rule rank
/// for the rule system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FormatScore {
    /// The candidate format.
    pub format: Format,
    /// The candidate's score under the selector's own metric.
    pub score: f64,
}

impl FormatScore {
    /// Convenience constructor.
    pub fn new(format: Format, score: f64) -> Self {
        Self { format, score }
    }
}

/// Default kernel block size for a format: the engine-wide cap for formats
/// with a native blocked kernel, 1 (per-vector) for the rest.
pub fn default_block(format: Format) -> usize {
    if format.has_blocked_kernel() {
        dls_sparse::MAX_SMSV_BLOCK
    } else {
        1
    }
}

/// Why and how a format was chosen for one dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectionReport {
    /// The chosen format.
    pub chosen: Format,
    /// Kernel block size batched consumers should use with the chosen
    /// format: learned per-(format, dataset) when the selector tunes it,
    /// [`default_block`] otherwise.
    pub block: usize,
    /// Extracted influencing parameters the decision was based on.
    pub features: MatrixFeatures,
    /// Per-format scores, chosen format first. Selectors score at least the
    /// five basic formats; derived formats (CSC, BCSR, HYB, JDS) appear
    /// whenever the selector considered them.
    pub scores: Vec<FormatScore>,
    /// One-line human-readable justification.
    pub reason: String,
}

impl SelectionReport {
    /// Score of a specific format, if the selector scored it.
    pub fn score_of(&self, format: Format) -> Option<f64> {
        self.scores.iter().find(|s| s.format == format).map(|s| s.score)
    }

    /// The format with the worst (highest) score — the paper's baseline for
    /// the "non-adaptive worst case" speedups.
    pub fn worst(&self) -> Format {
        self.scores
            .iter()
            .max_by(|a, b| a.score.partial_cmp(&b.score).expect("scores are finite"))
            .map(|s| s.format)
            .expect("reports always carry scores")
    }

    /// The scored candidates restricted to the five basic formats, in
    /// [`Format::BASIC`] order — the view the paper's tables use.
    pub fn basic_scores(&self) -> Vec<FormatScore> {
        Format::BASIC
            .iter()
            .filter_map(|&f| self.score_of(f).map(|s| FormatScore::new(f, s)))
            .collect()
    }
}

/// Scores every format by predicted storage footprint, chosen format first
/// at 0.0, the rest ranked 1, 2, … smallest-storage-first. The fallback
/// score table for selectors whose decision is not itself score-shaped
/// (fixed format, rule system).
pub fn rank_by_storage(chosen: Format, f: &MatrixFeatures) -> Vec<FormatScore> {
    let mut ranked: Vec<Format> = Format::ALL.iter().copied().filter(|&x| x != chosen).collect();
    ranked.sort_by(|&a, &b| {
        let sa = dls_sparse::storage::predicted_storage_elems(a, f);
        let sb = dls_sparse::storage::predicted_storage_elems(b, f);
        sa.partial_cmp(&sb).expect("finite storage")
    });
    let mut scores = Vec::with_capacity(Format::ALL.len());
    scores.push(FormatScore::new(chosen, 0.0));
    scores.extend(
        ranked.into_iter().enumerate().map(|(k, fmt)| FormatScore::new(fmt, (k + 1) as f64)),
    );
    scores
}

impl std::fmt::Display for SelectionReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "selected {} — {}", self.chosen, self.reason)?;
        writeln!(f, "  block: {}", self.block)?;
        writeln!(f, "  features: {}", self.features)?;
        write!(f, "  scores:")?;
        for s in &self.scores {
            write!(f, " {}={:.3e}", s.format, s.score)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dls_sparse::TripletMatrix;

    fn report() -> SelectionReport {
        let t = TripletMatrix::from_dense(2, 2, &[1.0, 0.0, 0.0, 1.0]);
        SelectionReport {
            chosen: Format::Dia,
            block: default_block(Format::Dia),
            features: MatrixFeatures::from_triplets(&t),
            scores: vec![
                FormatScore::new(Format::Dia, 1.0),
                FormatScore::new(Format::Csr, 2.0),
                FormatScore::new(Format::Coo, 2.5),
                FormatScore::new(Format::Ell, 3.0),
                FormatScore::new(Format::Den, 4.0),
            ],
            reason: "single diagonal".into(),
        }
    }

    #[test]
    fn score_lookup_and_worst() {
        let r = report();
        assert_eq!(r.score_of(Format::Csr), Some(2.0));
        assert_eq!(r.score_of(Format::Bcsr), None);
        assert_eq!(r.worst(), Format::Den);
    }

    #[test]
    fn basic_scores_follow_basic_order() {
        let mut r = report();
        r.scores.push(FormatScore::new(Format::Jds, 2.2));
        let basics = r.basic_scores();
        let order: Vec<Format> = basics.iter().map(|s| s.format).collect();
        assert_eq!(order, Format::BASIC.to_vec());
        assert!(basics.iter().all(|s| s.format != Format::Jds));
    }

    #[test]
    fn rank_by_storage_covers_all_formats() {
        let t = TripletMatrix::from_dense(2, 2, &[1.0, 0.0, 0.0, 1.0]);
        let f = MatrixFeatures::from_triplets(&t);
        let scores = rank_by_storage(Format::Dia, &f);
        assert_eq!(scores.len(), Format::ALL.len());
        assert_eq!(scores[0], FormatScore::new(Format::Dia, 0.0));
        // Ranks are a permutation of 0..9 with chosen at 0.
        let mut ranks: Vec<f64> = scores.iter().map(|s| s.score).collect();
        ranks.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(ranks, (0..Format::ALL.len()).map(|k| k as f64).collect::<Vec<_>>());
    }

    #[test]
    fn display_mentions_choice_and_scores() {
        let s = report().to_string();
        assert!(s.contains("selected DIA"));
        assert!(s.contains("single diagonal"));
        assert!(s.contains("CSR="));
    }
}
