#![warn(missing_docs)]

//! # dls-core
//!
//! The paper's primary contribution: a **runtime data-layout scheduler**
//! that inspects a machine-learning data matrix, extracts the nine
//! influencing parameters of Table IV, and selects the storage format —
//! DEN, CSR, COO, ELL or DIA — that the SMO kernels should run on.
//!
//! Three interchangeable selection strategies are provided:
//!
//! * [`RuleBasedSelector`] — the paper's decision system: ordered rules over
//!   the influencing parameters (DIA fitness, density, ELL padding, row
//!   imbalance for the COO/CSR choice).
//! * [`CostModelSelector`] — analytic: predicted storage traffic divided by
//!   the per-format effective bandwidth (Equation 7 of the paper).
//! * [`EmpiricalSelector`] — micro-benchmark: materialise each candidate on
//!   a row sample and time real SMSV products, pick the fastest.
//!
//! [`LayoutScheduler`] wires a strategy to the conversion machinery and
//! produces a [`ScheduledMatrix`] ready for `dls_svm::train`.

pub mod bandwidth;
pub mod cost;
pub mod decision;
pub mod empirical;
pub mod json;
pub mod machine;
pub mod monitor;
pub mod reactive;
pub mod report;
pub mod scheduler;
pub mod swap;
pub mod tuning_cache;

pub use bandwidth::BandwidthProfile;
pub use cost::CostModelSelector;
pub use decision::RuleBasedSelector;
pub use empirical::EmpiricalSelector;
pub use machine::MachineProfile;
pub use monitor::{FormatTelemetry, KernelMonitor, TelemetrySnapshot, WindowRecord};
pub use reactive::{
    MispredictDetector, ReactiveConfig, ReactiveReport, ReactiveScheduler, SwitchEvent,
};
pub use report::{default_block, FormatScore, SelectionReport};
pub use scheduler::{
    FixedSelector, FormatSelector, LayoutScheduler, ScheduledMatrix, SelectionStrategy,
};
pub use swap::SwappableSelector;
pub use tuning_cache::{FeatureFingerprint, TuningCache};
