//! The rule-based decision system (paper §III-B, Table IV).
//!
//! The rules fire in fitness order, mirroring how the paper reasons about
//! each format:
//!
//! 1. **DIA** — non-zeros concentrated on few, well-filled diagonals
//!    (`ndig` small, `dnnz` a large fraction of the row count).
//! 2. **DEN** — density high enough that sparse index arrays would double
//!    or triple memory traffic (Table II: CSR 2MN+M vs DEN MN).
//! 3. **ELL** — near-uniform row lengths (`vdim` small) with little padding
//!    (`mdim ≈ adim`), the regime ELL's column-major layout is built for.
//! 4. **COO vs CSR** — everything else is compressed-row territory; strong
//!    row imbalance (high index of dispersion `vdim / adim`) degrades the
//!    fixed-width-SIMD CSR kernel, so COO wins there (Fig. 4).

use crate::report::{rank_by_storage, SelectionReport};
use crate::scheduler::FormatSelector;
use dls_sparse::{Format, MatrixFeatures};

/// Tunable thresholds of the rule system. Defaults are calibrated so the
/// Table V datasets route to the paper's Table VI selections.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RuleThresholds {
    /// DIA fires when `dnnz / min(M, N) >= dia_fill` (diagonals well
    /// filled) — equivalently the DIA padding ratio is small.
    pub dia_fill: f64,
    /// DIA also requires `ndig <= dia_max_ndig_frac * (M + N - 1)`.
    pub dia_max_ndig_frac: f64,
    /// DEN fires when `density >= den_density`.
    pub den_density: f64,
    /// ELL fires when the padding ratio `1 - adim/mdim <= ell_max_padding`…
    pub ell_max_padding: f64,
    /// …and the row-length variance stays below `ell_max_vdim`.
    pub ell_max_vdim: f64,
    /// COO beats CSR when the index of dispersion `vdim / adim` exceeds
    /// this (Fig. 4's crossover).
    pub coo_dispersion: f64,
}

impl Default for RuleThresholds {
    fn default() -> Self {
        Self {
            dia_fill: 0.5,
            dia_max_ndig_frac: 0.05,
            den_density: 0.30,
            ell_max_padding: 0.20,
            ell_max_vdim: 25.0,
            coo_dispersion: 5.0,
        }
    }
}

/// The paper's decision system over the nine influencing parameters.
#[derive(Debug, Clone, Copy, Default)]
pub struct RuleBasedSelector {
    /// Decision thresholds.
    pub thresholds: RuleThresholds,
    /// Target machine: the COO-over-CSR rule is a SIMD effect (Fig. 4)
    /// and only fires on lane-lockstep machines.
    pub machine: crate::MachineProfile,
}

impl RuleBasedSelector {
    /// Creates a selector with custom thresholds.
    pub fn with_thresholds(thresholds: RuleThresholds) -> Self {
        Self { thresholds, ..Default::default() }
    }

    /// Creates a selector tuned for a specific machine profile. On scalar
    /// machines the high-`vdim` rule keeps CSR (no lanes to starve);
    /// on vectorised ones it prefers COO, like the paper.
    pub fn for_machine(machine: crate::MachineProfile) -> Self {
        Self { thresholds: RuleThresholds::default(), machine }
    }

    /// Selector adapted to the host this binary runs on.
    pub fn for_host() -> Self {
        Self::for_machine(crate::MachineProfile::host())
    }

    /// Applies the ordered rules, returning the chosen format and reason.
    pub fn decide(&self, f: &MatrixFeatures) -> (Format, String) {
        let th = &self.thresholds;
        if f.nnz == 0 {
            return (Format::Csr, "empty matrix: CSR by convention".into());
        }
        let min_mn = f.m.min(f.n) as f64;
        let diag_fill = if min_mn > 0.0 { f.dnnz / min_mn } else { 0.0 };
        let ndig_frac = f.ndig as f64 / (f.m + f.n - 1) as f64;
        if diag_fill >= th.dia_fill && ndig_frac <= th.dia_max_ndig_frac {
            return (
                Format::Dia,
                format!(
                    "diagonal structure: {} diagonals at {:.0}% fill",
                    f.ndig,
                    diag_fill * 100.0
                ),
            );
        }
        if f.density >= th.den_density {
            return (
                Format::Den,
                format!("dense data: density {:.2} makes index arrays pure overhead", f.density),
            );
        }
        if f.ell_padding_ratio() <= th.ell_max_padding && f.vdim <= th.ell_max_vdim {
            return (
                Format::Ell,
                format!(
                    "uniform rows: vdim {:.2}, padding {:.0}%",
                    f.vdim,
                    f.ell_padding_ratio() * 100.0
                ),
            );
        }
        let dispersion = if f.adim > 0.0 { f.vdim / f.adim } else { 0.0 };
        if dispersion > th.coo_dispersion && self.machine.csr_is_lane_lockstep() {
            (
                Format::Coo,
                format!("imbalanced rows: vdim/adim {:.1} starves lockstep CSR lanes", dispersion),
            )
        } else {
            (Format::Csr, format!("general sparse: vdim/adim {dispersion:.1}"))
        }
    }
}

impl FormatSelector for RuleBasedSelector {
    fn select(&self, t: &dls_sparse::TripletMatrix, f: &MatrixFeatures) -> SelectionReport {
        let _ = t; // rules work on features alone
        let (chosen, reason) = self.decide(f);
        // Rules don't produce a numeric score per format; rank the
        // alternatives by predicted storage ("computation is proportional
        // to storage"), derived formats included.
        SelectionReport {
            chosen,
            block: crate::report::default_block(chosen),
            features: *f,
            scores: rank_by_storage(chosen, f),
            reason,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dls_data::{generate, DatasetSpec};
    use dls_sparse::TripletMatrix;

    fn features_of(name: &str, scale: usize) -> MatrixFeatures {
        let spec = DatasetSpec::by_name(name).unwrap().scaled(scale);
        MatrixFeatures::from_triplets(&generate(&spec, 42))
    }

    #[test]
    fn trefethen_routes_to_dia() {
        let f = features_of("trefethen", 1);
        let (fmt, reason) = RuleBasedSelector::default().decide(&f);
        assert_eq!(fmt, Format::Dia, "{reason}");
    }

    #[test]
    fn dense_sets_route_to_den() {
        for name in ["leukemia", "gisette", "connect-4"] {
            let scale = if name == "gisette" { 8 } else { 1 };
            let f = features_of(name, scale);
            let (fmt, reason) = RuleBasedSelector::default().decide(&f);
            assert_eq!(fmt, Format::Den, "{name}: {reason}");
        }
    }

    #[test]
    fn adult_routes_to_ell() {
        let f = features_of("adult", 1);
        let (fmt, reason) = RuleBasedSelector::default().decide(&f);
        assert_eq!(fmt, Format::Ell, "{reason}");
    }

    #[test]
    fn aloi_routes_to_csr() {
        let f = features_of("aloi", 1);
        let (fmt, reason) = RuleBasedSelector::default().decide(&f);
        assert_eq!(fmt, Format::Csr, "{reason}");
    }

    #[test]
    fn imbalanced_sets_route_to_coo() {
        for name in ["mnist", "sector"] {
            let f = features_of(name, 1);
            let (fmt, reason) = RuleBasedSelector::default().decide(&f);
            assert_eq!(fmt, Format::Coo, "{name}: {reason}");
        }
    }

    #[test]
    fn empty_matrix_defaults_to_csr() {
        let f = MatrixFeatures::from_triplets(&TripletMatrix::new(4, 4));
        let (fmt, _) = RuleBasedSelector::default().decide(&f);
        assert_eq!(fmt, Format::Csr);
    }

    #[test]
    fn report_scores_rank_chosen_first() {
        use crate::scheduler::FormatSelector;
        let spec = DatasetSpec::by_name("adult").unwrap().scaled(4);
        let t = generate(&spec, 1);
        let f = MatrixFeatures::from_triplets(&t);
        let r = RuleBasedSelector::default().select(&t, &f);
        assert_eq!(r.scores[0].format, r.chosen);
        assert_eq!(r.scores[0].score, 0.0);
        assert_eq!(r.score_of(r.chosen), Some(0.0));
        // Every format scored, derived ones included.
        let mut fmts: Vec<Format> = r.scores.iter().map(|s| s.format).collect();
        fmts.sort();
        let mut all = Format::ALL.to_vec();
        all.sort();
        assert_eq!(fmts, all);
    }

    #[test]
    fn scalar_machine_keeps_csr_on_imbalanced_rows() {
        // The Fig. 4 effect is SIMD-borne: a scalar profile must not
        // switch mnist/sector to COO.
        for name in ["mnist", "sector"] {
            let f = features_of(name, 1);
            let scalar = RuleBasedSelector::for_machine(crate::MachineProfile::SCALAR);
            let (fmt, reason) = scalar.decide(&f);
            assert_eq!(fmt, Format::Csr, "{name}: {reason}");
            let paper = RuleBasedSelector::for_machine(crate::MachineProfile::PAPER_TESTBED);
            assert_eq!(paper.decide(&f).0, Format::Coo, "{name} on the testbed");
        }
    }

    #[test]
    fn for_host_produces_a_valid_decision() {
        let f = features_of("adult", 4);
        let (fmt, _) = RuleBasedSelector::for_host().decide(&f);
        assert!(Format::BASIC.contains(&fmt));
    }

    #[test]
    fn custom_thresholds_change_decisions() {
        let f = features_of("connect-4", 1);
        // Raising the density gate past 0.336 pushes connect-4 to ELL
        // (its rows are perfectly uniform).
        let strict = RuleBasedSelector::with_thresholds(RuleThresholds {
            den_density: 0.9,
            ..Default::default()
        });
        let (fmt, _) = strict.decide(&f);
        assert_eq!(fmt, Format::Ell);
    }
}
