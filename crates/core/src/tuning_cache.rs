//! Decision memoization: an OSKI-style tuning database.
//!
//! The paper's related work is Vuduc/Demmel/Yelick's OSKI, whose central
//! idea is that tuning is expensive but *reusable*: matrices with the same
//! structural profile want the same kernel. [`TuningCache`] memoizes
//! selection reports keyed by a quantised fingerprint of the nine
//! influencing parameters, so repeated scheduling of similar datasets
//! (e.g. minibatches or chunked loads of one corpus) skips re-selection —
//! which matters most for the empirical strategy, whose probe is costly.

use crate::report::SelectionReport;
use crate::scheduler::FormatSelector;
use dls_sparse::{MatrixFeatures, TripletMatrix};
use std::collections::HashMap;

/// Quantised structural fingerprint of a matrix.
///
/// Continuous parameters are bucketed on a log/linear grid coarse enough
/// that "the same dataset, resampled" collides, and fine enough that
/// different Table V datasets do not.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FeatureFingerprint {
    /// log2 bucket of the row count.
    m_log2: u32,
    /// log2 bucket of the column count.
    n_log2: u32,
    /// log2 bucket of nnz.
    nnz_log2: u32,
    /// Density in percent (0–100).
    density_pct: u8,
    /// log2 bucket of the diagonal count.
    ndig_log2: u32,
    /// ELL padding ratio in 5%-steps.
    ell_padding_20th: u8,
    /// Index of dispersion (vdim/adim) log2-bucketed, saturated at 2^15.
    dispersion_log2: u32,
}

impl FeatureFingerprint {
    /// Builds the fingerprint from extracted features.
    pub fn of(f: &MatrixFeatures) -> Self {
        let log2 = |v: usize| -> u32 { (v.max(1) as f64).log2().round() as u32 };
        let dispersion = if f.adim > 0.0 { f.vdim / f.adim } else { 0.0 };
        Self {
            m_log2: log2(f.m),
            n_log2: log2(f.n),
            nnz_log2: log2(f.nnz),
            density_pct: (f.density * 100.0).round().clamp(0.0, 100.0) as u8,
            ndig_log2: log2(f.ndig),
            ell_padding_20th: (f.ell_padding_ratio() * 20.0).round().clamp(0.0, 20.0) as u8,
            dispersion_log2: log2(dispersion.min(32_768.0) as usize),
        }
    }
}

/// A memoizing wrapper around any [`FormatSelector`].
#[derive(Debug)]
pub struct TuningCache<S> {
    inner: S,
    entries: HashMap<FeatureFingerprint, SelectionReport>,
    hits: u64,
    misses: u64,
}

impl<S: FormatSelector> TuningCache<S> {
    /// Wraps a selector with an empty cache.
    pub fn new(inner: S) -> Self {
        Self { inner, entries: HashMap::new(), hits: 0, misses: 0 }
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses (i.e. real selector invocations).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of distinct fingerprints stored.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is memoized yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Selects with memoization. On a hit the cached report is returned
    /// with the *current* matrix's exact features substituted (the chosen
    /// format and scores come from the cached decision).
    pub fn select(&mut self, t: &TripletMatrix, f: &MatrixFeatures) -> SelectionReport {
        let key = FeatureFingerprint::of(f);
        if let Some(cached) = self.entries.get(&key) {
            self.hits += 1;
            let mut report = cached.clone();
            report.features = *f;
            report.reason = format!("{} [memoized]", cached.reason);
            return report;
        }
        self.misses += 1;
        let report = self.inner.select(t, f);
        self.entries.insert(key, report.clone());
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decision::RuleBasedSelector;
    use dls_data::{generate, DatasetSpec};

    #[test]
    fn resampled_datasets_share_a_fingerprint() {
        let spec = DatasetSpec::by_name("adult").unwrap();
        let a = MatrixFeatures::from_triplets(&generate(spec, 1));
        let b = MatrixFeatures::from_triplets(&generate(spec, 2));
        assert_eq!(FeatureFingerprint::of(&a), FeatureFingerprint::of(&b));
    }

    #[test]
    fn different_datasets_get_different_fingerprints() {
        let names = ["adult", "mnist", "trefethen", "connect-4", "leukemia"];
        let prints: Vec<FeatureFingerprint> = names
            .iter()
            .map(|n| {
                let spec = DatasetSpec::by_name(n).unwrap();
                FeatureFingerprint::of(&MatrixFeatures::from_triplets(&generate(spec, 1)))
            })
            .collect();
        for i in 0..prints.len() {
            for j in i + 1..prints.len() {
                assert_ne!(prints[i], prints[j], "{} vs {}", names[i], names[j]);
            }
        }
    }

    #[test]
    fn second_selection_hits_the_cache() {
        let spec = DatasetSpec::by_name("trefethen").unwrap();
        let t1 = generate(spec, 1);
        let t2 = generate(spec, 2);
        let mut cache = TuningCache::new(RuleBasedSelector::default());

        let f1 = MatrixFeatures::from_triplets(&t1);
        let r1 = cache.select(&t1, &f1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 0);

        let f2 = MatrixFeatures::from_triplets(&t2);
        let r2 = cache.select(&t2, &f2);
        assert_eq!(cache.hits(), 1);
        assert_eq!(r1.chosen, r2.chosen);
        assert!(r2.reason.contains("memoized"));
        // The hit still reports the *new* matrix's features.
        assert_eq!(r2.features.nnz, t2.nnz());
        assert_eq!(cache.len(), 1);
        assert!(!cache.is_empty());
    }

    #[test]
    fn distinct_structures_occupy_distinct_slots() {
        let mut cache = TuningCache::new(RuleBasedSelector::default());
        for name in ["adult", "trefethen", "connect-4"] {
            let t = generate(DatasetSpec::by_name(name).unwrap(), 1);
            let f = MatrixFeatures::from_triplets(&t);
            let _ = cache.select(&t, &f);
        }
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.misses(), 3);
        assert_eq!(cache.hits(), 0);
    }
}
