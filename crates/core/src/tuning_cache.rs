//! Decision memoization: an OSKI-style tuning database.
//!
//! The paper's related work is Vuduc/Demmel/Yelick's OSKI, whose central
//! idea is that tuning is expensive but *reusable*: matrices with the same
//! structural profile want the same kernel. [`TuningCache`] memoizes
//! selection reports keyed by a quantised fingerprint of the nine
//! influencing parameters, so repeated scheduling of similar datasets
//! (e.g. minibatches or chunked loads of one corpus) skips re-selection —
//! which matters most for the empirical strategy, whose probe is costly.

use crate::json::{self, JsonValue};
use crate::report::{FormatScore, SelectionReport};
use crate::scheduler::FormatSelector;
use dls_sparse::{Format, MatrixFeatures, TripletMatrix};
use std::collections::HashMap;
use std::path::Path;

/// Quantised structural fingerprint of a matrix.
///
/// Continuous parameters are bucketed on a log/linear grid coarse enough
/// that "the same dataset, resampled" collides, and fine enough that
/// different Table V datasets do not.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FeatureFingerprint {
    /// log2 bucket of the row count.
    m_log2: u32,
    /// log2 bucket of the column count.
    n_log2: u32,
    /// log2 bucket of nnz.
    nnz_log2: u32,
    /// Density in percent (0–100).
    density_pct: u8,
    /// log2 bucket of the diagonal count.
    ndig_log2: u32,
    /// ELL padding ratio in 5%-steps.
    ell_padding_20th: u8,
    /// Index of dispersion (vdim/adim) log2-bucketed, saturated at 2^15.
    dispersion_log2: u32,
}

impl FeatureFingerprint {
    /// Builds the fingerprint from extracted features.
    pub fn of(f: &MatrixFeatures) -> Self {
        let log2 = |v: usize| -> u32 { (v.max(1) as f64).log2().round() as u32 };
        let dispersion = if f.adim > 0.0 { f.vdim / f.adim } else { 0.0 };
        Self {
            m_log2: log2(f.m),
            n_log2: log2(f.n),
            nnz_log2: log2(f.nnz),
            density_pct: (f.density * 100.0).round().clamp(0.0, 100.0) as u8,
            ndig_log2: log2(f.ndig),
            ell_padding_20th: (f.ell_padding_ratio() * 20.0).round().clamp(0.0, 20.0) as u8,
            dispersion_log2: log2(dispersion.min(32_768.0) as usize),
        }
    }
}

/// A memoizing wrapper around any [`FormatSelector`].
#[derive(Debug)]
pub struct TuningCache<S> {
    inner: S,
    entries: HashMap<FeatureFingerprint, SelectionReport>,
    hits: u64,
    misses: u64,
}

impl<S: FormatSelector> TuningCache<S> {
    /// Wraps a selector with an empty cache.
    pub fn new(inner: S) -> Self {
        Self { inner, entries: HashMap::new(), hits: 0, misses: 0 }
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses (i.e. real selector invocations).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of distinct fingerprints stored.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is memoized yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Selects with memoization. On a hit the cached report is returned
    /// with the *current* matrix's exact features substituted (the chosen
    /// format and scores come from the cached decision).
    pub fn select(&mut self, t: &TripletMatrix, f: &MatrixFeatures) -> SelectionReport {
        let key = FeatureFingerprint::of(f);
        if let Some(cached) = self.entries.get(&key) {
            self.hits += 1;
            let mut report = cached.clone();
            report.features = *f;
            report.reason = format!("{} [memoized]", cached.reason);
            return report;
        }
        self.misses += 1;
        let report = self.inner.select(t, f);
        self.entries.insert(key, report.clone());
        report
    }

    /// Serialises the fingerprint → report map as a JSON document, so a
    /// tuning run survives the process (OSKI's persistent tuning database).
    /// Hit/miss counters are runtime statistics and are not persisted.
    pub fn to_json(&self) -> String {
        // Deterministic output: sort by fingerprint fields, not map order.
        let mut entries: Vec<(&FeatureFingerprint, &SelectionReport)> =
            self.entries.iter().collect();
        entries.sort_by_key(|(fp, _)| **fp);
        let body: Vec<String> = entries
            .into_iter()
            .map(|(fp, report)| {
                format!(
                    "{{\"fingerprint\":{},\"report\":{}}}",
                    fingerprint_json(fp),
                    report_json(report)
                )
            })
            .collect();
        format!("{{\"version\":1,\"entries\":[{}]}}", body.join(","))
    }

    /// Merges entries from a JSON document produced by
    /// [`TuningCache::to_json`] into this cache, returning how many entries
    /// were loaded. Existing entries with the same fingerprint are replaced.
    pub fn load_json(&mut self, doc: &str) -> Result<usize, String> {
        let v = json::parse(doc)?;
        match v.req("version")?.as_u64() {
            Some(1) => {}
            other => return Err(format!("unsupported tuning-cache version {other:?}")),
        }
        let entries = v.req("entries")?.as_arr().ok_or("\"entries\" must be an array")?;
        let mut loaded = 0usize;
        for e in entries {
            let fp = parse_fingerprint(e.req("fingerprint")?)?;
            let report = parse_report(e.req("report")?)?;
            self.entries.insert(fp, report);
            loaded += 1;
        }
        Ok(loaded)
    }

    /// Writes the cache to a file (see [`TuningCache::to_json`]).
    pub fn save_file(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Loads and merges entries from a file written by
    /// [`TuningCache::save_file`]. Returns the number of entries loaded.
    pub fn load_file(&mut self, path: impl AsRef<Path>) -> Result<usize, String> {
        let doc = std::fs::read_to_string(path.as_ref())
            .map_err(|e| format!("read {}: {e}", path.as_ref().display()))?;
        self.load_json(&doc)
    }
}

fn fingerprint_json(fp: &FeatureFingerprint) -> String {
    format!(
        concat!(
            "{{\"m_log2\":{},\"n_log2\":{},\"nnz_log2\":{},\"density_pct\":{},",
            "\"ndig_log2\":{},\"ell_padding_20th\":{},\"dispersion_log2\":{}}}"
        ),
        fp.m_log2,
        fp.n_log2,
        fp.nnz_log2,
        fp.density_pct,
        fp.ndig_log2,
        fp.ell_padding_20th,
        fp.dispersion_log2,
    )
}

fn parse_fingerprint(v: &JsonValue) -> Result<FeatureFingerprint, String> {
    let u32_of = |key: &str| -> Result<u32, String> {
        v.req(key)?.as_u64().map(|x| x as u32).ok_or_else(|| format!("\"{key}\" must be a number"))
    };
    Ok(FeatureFingerprint {
        m_log2: u32_of("m_log2")?,
        n_log2: u32_of("n_log2")?,
        nnz_log2: u32_of("nnz_log2")?,
        density_pct: u32_of("density_pct")? as u8,
        ndig_log2: u32_of("ndig_log2")?,
        ell_padding_20th: u32_of("ell_padding_20th")? as u8,
        dispersion_log2: u32_of("dispersion_log2")?,
    })
}

fn report_json(r: &SelectionReport) -> String {
    let f = &r.features;
    let scores: Vec<String> = r
        .scores
        .iter()
        .map(|s| format!("[{},{}]", json::escape(s.format.name()), json::number(s.score)))
        .collect();
    format!(
        concat!(
            "{{\"chosen\":{},\"block\":{},\"reason\":{},\"scores\":[{}],",
            "\"features\":{{\"m\":{},\"n\":{},\"nnz\":{},\"ndig\":{},\"dnnz\":{},",
            "\"mdim\":{},\"adim\":{},\"vdim\":{},\"density\":{}}}}}"
        ),
        json::escape(r.chosen.name()),
        r.block,
        json::escape(&r.reason),
        scores.join(","),
        f.m,
        f.n,
        f.nnz,
        f.ndig,
        json::number(f.dnnz),
        f.mdim,
        json::number(f.adim),
        json::number(f.vdim),
        json::number(f.density),
    )
}

fn parse_format(v: &JsonValue) -> Result<Format, String> {
    v.as_str().ok_or("format must be a string")?.parse::<Format>()
}

fn parse_report(v: &JsonValue) -> Result<SelectionReport, String> {
    let chosen = parse_format(v.req("chosen")?)?;
    // Documents written before the tuned-block era carry no "block": fall
    // back to the format's engine default so old caches stay loadable.
    let block = match v.get("block") {
        Some(b) => b.as_usize().ok_or("\"block\" must be a count")?,
        None => crate::report::default_block(chosen),
    };
    let reason = v.req("reason")?.as_str().ok_or("\"reason\" must be a string")?.to_string();
    let scores = v
        .req("scores")?
        .as_arr()
        .ok_or("\"scores\" must be an array")?
        .iter()
        .map(|pair| {
            let pair = pair.as_arr().filter(|p| p.len() == 2).ok_or("score must be a pair")?;
            Ok(FormatScore::new(
                parse_format(&pair[0])?,
                pair[1].as_f64().ok_or("score must be a number")?,
            ))
        })
        .collect::<Result<Vec<FormatScore>, String>>()?;
    let fv = v.req("features")?;
    let usize_of = |key: &str| -> Result<usize, String> {
        fv.req(key)?.as_usize().ok_or_else(|| format!("\"{key}\" must be a count"))
    };
    let f64_of = |key: &str| -> Result<f64, String> {
        fv.req(key)?.as_f64().ok_or_else(|| format!("\"{key}\" must be a number"))
    };
    let features = MatrixFeatures {
        m: usize_of("m")?,
        n: usize_of("n")?,
        nnz: usize_of("nnz")?,
        ndig: usize_of("ndig")?,
        dnnz: f64_of("dnnz")?,
        mdim: usize_of("mdim")?,
        adim: f64_of("adim")?,
        vdim: f64_of("vdim")?,
        density: f64_of("density")?,
    };
    Ok(SelectionReport { chosen, block, features, scores, reason })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decision::RuleBasedSelector;
    use dls_data::{generate, DatasetSpec};

    #[test]
    fn resampled_datasets_share_a_fingerprint() {
        let spec = DatasetSpec::by_name("adult").unwrap();
        let a = MatrixFeatures::from_triplets(&generate(spec, 1));
        let b = MatrixFeatures::from_triplets(&generate(spec, 2));
        assert_eq!(FeatureFingerprint::of(&a), FeatureFingerprint::of(&b));
    }

    #[test]
    fn different_datasets_get_different_fingerprints() {
        let names = ["adult", "mnist", "trefethen", "connect-4", "leukemia"];
        let prints: Vec<FeatureFingerprint> = names
            .iter()
            .map(|n| {
                let spec = DatasetSpec::by_name(n).unwrap();
                FeatureFingerprint::of(&MatrixFeatures::from_triplets(&generate(spec, 1)))
            })
            .collect();
        for i in 0..prints.len() {
            for j in i + 1..prints.len() {
                assert_ne!(prints[i], prints[j], "{} vs {}", names[i], names[j]);
            }
        }
    }

    #[test]
    fn second_selection_hits_the_cache() {
        let spec = DatasetSpec::by_name("trefethen").unwrap();
        let t1 = generate(spec, 1);
        let t2 = generate(spec, 2);
        let mut cache = TuningCache::new(RuleBasedSelector::default());

        let f1 = MatrixFeatures::from_triplets(&t1);
        let r1 = cache.select(&t1, &f1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 0);

        let f2 = MatrixFeatures::from_triplets(&t2);
        let r2 = cache.select(&t2, &f2);
        assert_eq!(cache.hits(), 1);
        assert_eq!(r1.chosen, r2.chosen);
        assert!(r2.reason.contains("memoized"));
        // The hit still reports the *new* matrix's features.
        assert_eq!(r2.features.nnz, t2.nnz());
        assert_eq!(cache.len(), 1);
        assert!(!cache.is_empty());
    }

    #[test]
    fn json_round_trip_preserves_entries() {
        let mut cache = TuningCache::new(RuleBasedSelector::default());
        for name in ["adult", "trefethen", "mnist", "connect-4"] {
            let t = generate(DatasetSpec::by_name(name).unwrap(), 1);
            let f = MatrixFeatures::from_triplets(&t);
            let _ = cache.select(&t, &f);
        }
        let doc = cache.to_json();
        assert!(doc.starts_with("{\"version\":1,"));

        // A fresh cache over a *different* selector still replays the
        // persisted decisions: hits now come from disk, not re-selection.
        let mut restored = TuningCache::new(crate::cost::CostModelSelector::default());
        assert_eq!(restored.load_json(&doc).unwrap(), 4);
        assert_eq!(restored.len(), 4);
        let t = generate(DatasetSpec::by_name("trefethen").unwrap(), 2);
        let f = MatrixFeatures::from_triplets(&t);
        let r = restored.select(&t, &f);
        assert_eq!(restored.hits(), 1, "restored entry must hit");
        assert!(r.reason.contains("memoized"));
        assert!(r.reason.contains("diagonal"), "decision replays the rule reason: {}", r.reason);
        // Scores and exact float features survive the round trip.
        let doc2 = restored.to_json();
        assert_eq!(doc, doc2, "serialisation is canonical");
    }

    #[test]
    fn save_and_load_file() {
        let dir = std::env::temp_dir().join("dls_tuning_cache_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.json");
        let mut cache = TuningCache::new(RuleBasedSelector::default());
        let t = generate(DatasetSpec::by_name("adult").unwrap(), 1);
        let f = MatrixFeatures::from_triplets(&t);
        let _ = cache.select(&t, &f);
        cache.save_file(&path).unwrap();

        let mut other = TuningCache::new(RuleBasedSelector::default());
        assert_eq!(other.load_file(&path).unwrap(), 1);
        let _ = other.select(&t, &f);
        assert_eq!(other.hits(), 1);
        assert_eq!(other.misses(), 0);
        std::fs::remove_file(&path).unwrap();
        assert!(other.load_file(&path).is_err(), "missing file is a clean error");
    }

    #[test]
    fn load_rejects_malformed_documents() {
        let mut cache = TuningCache::new(RuleBasedSelector::default());
        assert!(cache.load_json("not json").is_err());
        assert!(cache.load_json("{\"version\":99,\"entries\":[]}").is_err());
        assert!(cache.load_json("{\"version\":1}").is_err());
        assert!(cache.load_json("{\"version\":1,\"entries\":[{\"fingerprint\":{}}]}").is_err());
        assert!(
            cache.is_empty(),
            "failed loads must not partially corrupt the map beyond parsed entries"
        );
    }

    #[test]
    fn distinct_structures_occupy_distinct_slots() {
        let mut cache = TuningCache::new(RuleBasedSelector::default());
        for name in ["adult", "trefethen", "connect-4"] {
            let t = generate(DatasetSpec::by_name(name).unwrap(), 1);
            let f = MatrixFeatures::from_triplets(&t);
            let _ = cache.select(&t, &f);
        }
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.misses(), 3);
        assert_eq!(cache.hits(), 0);
    }
}
