//! Per-format effective memory bandwidth.
//!
//! §III-B: "the bandwidth also varies when using different formats to
//! process the same dataset. For instance, the bandwidth of processing
//! gisette is 25.3 GB/s, 63.9 GB/s, 63.5 GB/s, 53.1 GB/s, and 37.7 GB/s for
//! ELL, CSR, COO, DEN, and DIA, respectively, on Ivy Bridge CPUs."
//!
//! Together with Equation (7) — `time ≳ transferred bytes / bandwidth` —
//! these coefficients turn the Table II storage model into a time estimate.

use dls_sparse::Format;

/// Effective streaming bandwidth per format, in GB/s.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BandwidthProfile {
    /// ELL effective bandwidth.
    pub ell: f64,
    /// CSR effective bandwidth.
    pub csr: f64,
    /// COO effective bandwidth.
    pub coo: f64,
    /// DEN effective bandwidth.
    pub den: f64,
    /// DIA effective bandwidth.
    pub dia: f64,
}

impl BandwidthProfile {
    /// The paper's measured Ivy Bridge profile (gisette workload, §III-B).
    pub const IVY_BRIDGE: BandwidthProfile =
        BandwidthProfile { ell: 25.3, csr: 63.9, coo: 63.5, den: 53.1, dia: 37.7 };

    /// A flat profile (every format equal): isolates the pure storage-size
    /// term of the cost model. Useful for ablations.
    pub const FLAT: BandwidthProfile =
        BandwidthProfile { ell: 50.0, csr: 50.0, coo: 50.0, den: 50.0, dia: 50.0 };

    /// Bandwidth for a given format in GB/s. Derived formats reuse the
    /// closest basic profile (CSC ≈ CSR, BCSR ≈ DEN-ish streaming).
    pub fn of(&self, format: Format) -> f64 {
        match format {
            Format::Ell => self.ell,
            Format::Csr => self.csr,
            Format::Coo => self.coo,
            Format::Den => self.den,
            Format::Dia => self.dia,
            Format::Csc => self.csr,
            Format::Bcsr => self.den,
            // HYB streams an ELL slab plus a COO tail; JDS streams
            // contiguous CSR-like arrays.
            Format::Hyb => (self.ell + self.coo) / 2.0,
            Format::Jds => self.csr,
        }
    }

    /// Bytes-per-second form of [`BandwidthProfile::of`].
    pub fn bytes_per_sec(&self, format: Format) -> f64 {
        self.of(format) * 1e9
    }
}

impl Default for BandwidthProfile {
    fn default() -> Self {
        Self::IVY_BRIDGE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ivy_bridge_matches_paper_section_3b() {
        let p = BandwidthProfile::IVY_BRIDGE;
        assert_eq!(p.of(Format::Ell), 25.3);
        assert_eq!(p.of(Format::Csr), 63.9);
        assert_eq!(p.of(Format::Coo), 63.5);
        assert_eq!(p.of(Format::Den), 53.1);
        assert_eq!(p.of(Format::Dia), 37.7);
    }

    #[test]
    fn derived_formats_borrow_neighbours() {
        let p = BandwidthProfile::IVY_BRIDGE;
        assert_eq!(p.of(Format::Csc), p.of(Format::Csr));
        assert_eq!(p.of(Format::Bcsr), p.of(Format::Den));
    }

    #[test]
    fn bytes_per_sec_scales() {
        let p = BandwidthProfile::FLAT;
        assert_eq!(p.bytes_per_sec(Format::Csr), 50.0e9);
    }

    #[test]
    fn default_is_ivy_bridge() {
        assert_eq!(BandwidthProfile::default(), BandwidthProfile::IVY_BRIDGE);
    }
}
