//! Minimal hand-rolled JSON reader/writer.
//!
//! The workspace deliberately vendors no serde (see DESIGN.md's dependency
//! policy), so everything that persists — telemetry snapshots, the tuning
//! cache, trained selector models in `dls-learn` — serialises by hand. This
//! module centralises the *parsing* side: a small recursive-descent parser
//! producing a [`JsonValue`] tree, plus the string-escaping helpers both
//! directions need. Writers stay hand-rolled per type (each type knows its
//! own schema); readers share this module so quoting/number edge cases are
//! handled once.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`; integers round-trip exactly up to
    /// 2^53, far beyond any count this workspace stores).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in source order (duplicate keys keep the last value on
    /// lookup, like most parsers).
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// An object from key/value pairs, in the given order.
    pub fn obj(members: impl IntoIterator<Item = (impl Into<String>, JsonValue)>) -> JsonValue {
        JsonValue::Obj(members.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// An array from values.
    pub fn arr(items: impl IntoIterator<Item = JsonValue>) -> JsonValue {
        JsonValue::Arr(items.into_iter().collect())
    }

    /// Serialises compactly (no whitespace). Round-trips through [`parse`]:
    /// strings are escaped via [`escape`] and finite numbers written in
    /// shortest-exact form via [`number`] (non-finite become `null`).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serialises with newlines and two-space indentation — the style the
    /// committed `BENCH_*.json` artefacts use so diffs stay reviewable.
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, level: usize) {
        let (open_sep, item_sep, pad) = match indent {
            Some(w) => ("\n".to_string(), ",\n".to_string(), " ".repeat(w * (level + 1))),
            None => (String::new(), ",".to_string(), String::new()),
        };
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            // Integral values (counts, sizes) print without a fractional
            // part; everything else uses the shortest-exact float form.
            JsonValue::Num(x)
                if x.fract() == 0.0
                    && x.abs() <= 2f64.powi(53)
                    && !(*x == 0.0 && x.is_sign_negative()) =>
            {
                out.push_str(&format!("{}", *x as i64));
            }
            JsonValue::Num(x) => out.push_str(&number(*x)),
            JsonValue::Str(s) => out.push_str(&escape(s)),
            JsonValue::Arr(items) if items.is_empty() => out.push_str("[]"),
            JsonValue::Arr(items) => {
                out.push('[');
                out.push_str(&open_sep);
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(&item_sep);
                    }
                    out.push_str(&pad);
                    v.write(out, indent, level + 1);
                }
                close(out, indent, level, ']');
            }
            JsonValue::Obj(members) if members.is_empty() => out.push_str("{}"),
            JsonValue::Obj(members) => {
                out.push('{');
                out.push_str(&open_sep);
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push_str(&item_sep);
                    }
                    out.push_str(&pad);
                    out.push_str(&escape(k));
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, level + 1);
                }
                close(out, indent, level, '}');
            }
        }
    }

    /// Member lookup on an object (last occurrence wins), `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(members) => members.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `f64` if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as `u64` if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= u64::MAX as f64 => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// The value as `usize` if it is a non-negative integral number.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().map(|v| v as usize)
    }

    /// The value as `&str` if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a slice if it is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as `bool` if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Required-member lookup with a path-flavoured error, for loaders.
    pub fn req(&self, key: &str) -> Result<&JsonValue, String> {
        self.get(key).ok_or_else(|| format!("missing key \"{key}\""))
    }
}

fn close(out: &mut String, indent: Option<usize>, level: usize, bracket: char) {
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * level));
    }
    out.push(bracket);
}

impl From<bool> for JsonValue {
    fn from(b: bool) -> Self {
        JsonValue::Bool(b)
    }
}

impl From<f64> for JsonValue {
    fn from(x: f64) -> Self {
        JsonValue::Num(x)
    }
}

impl From<u64> for JsonValue {
    fn from(n: u64) -> Self {
        JsonValue::Num(n as f64)
    }
}

impl From<usize> for JsonValue {
    fn from(n: usize) -> Self {
        JsonValue::Num(n as f64)
    }
}

impl From<&str> for JsonValue {
    fn from(s: &str) -> Self {
        JsonValue::Str(s.to_string())
    }
}

impl From<String> for JsonValue {
    fn from(s: String) -> Self {
        JsonValue::Str(s)
    }
}

/// Escapes a string for embedding in a JSON document (quotes included).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Serialises an `f64` so it parses back to the identical bit pattern for
/// all finite values (`{:?}` is Rust's shortest round-trip float form).
/// Non-finite values serialise as `null` — JSON has no NaN/∞.
pub fn number(x: f64) -> String {
    if x.is_finite() {
        format!("{x:?}")
    } else {
        "null".to_string()
    }
}

/// Parses a JSON document. Errors carry a byte offset and a short message.
pub fn parse(input: &str) -> Result<JsonValue, String> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("json parse error at byte {}: {msg}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\') {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates are not paired — this parser reads
                            // only documents this workspace writes, which
                            // never emit them.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape sequence")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse::<f64>().map(JsonValue::Num).map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), JsonValue::Null);
        assert_eq!(parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse(" false ").unwrap(), JsonValue::Bool(false));
        assert_eq!(parse("42").unwrap(), JsonValue::Num(42.0));
        assert_eq!(parse("-1.5e3").unwrap(), JsonValue::Num(-1500.0));
        assert_eq!(parse("\"hi\"").unwrap(), JsonValue::Str("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a":[1,2,{"b":null}],"c":{"d":"e"}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("c").unwrap().get("d").unwrap().as_str(), Some("e"));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0].as_usize(), Some(1));
        assert!(v.get("missing").is_none());
        assert!(v.req("missing").is_err());
    }

    #[test]
    fn parses_real_telemetry_output() {
        // The exact shape TelemetrySnapshot::to_json emits.
        let doc = r#"{"ticks":2,"formats":[{"format":"CSR","calls":3,"nanos":500,"bytes":128,"recent_secs_per_call":2.5e-7,"recent_bytes_per_sec":null}]}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("ticks").unwrap().as_u64(), Some(2));
        let row = &v.get("formats").unwrap().as_arr().unwrap()[0];
        assert_eq!(row.get("format").unwrap().as_str(), Some("CSR"));
        assert_eq!(row.get("recent_secs_per_call").unwrap().as_f64(), Some(2.5e-7));
        assert_eq!(*row.get("recent_bytes_per_sec").unwrap(), JsonValue::Null);
    }

    #[test]
    fn string_escapes_round_trip() {
        let nasty = "a \"quoted\" \\ back\nnew\ttab \u{1}ctl é";
        let doc = format!("{{{}:{}}}", escape("k"), escape(nasty));
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("k").unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn numbers_round_trip_exactly() {
        for x in [0.0, -0.0, 1.0, 1.0 / 3.0, 6.02214076e23, 5e-324, f64::MAX, -123.456789] {
            let v = parse(&number(x)).unwrap();
            assert_eq!(v.as_f64().unwrap().to_bits(), x.to_bits(), "{x}");
        }
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "tru", "\"unterminated", "{\"a\" 1}", "1 2", "{'a':1}"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn errors_carry_byte_offsets() {
        let err = parse("[1, @]").unwrap_err();
        assert!(err.contains("byte 4"), "{err}");
    }

    #[test]
    fn writer_round_trips_through_parser() {
        let doc = JsonValue::obj([
            ("name", JsonValue::from("bench \"serve\"")),
            ("count", JsonValue::from(42u64)),
            ("ratio", JsonValue::from(1.0 / 3.0)),
            ("flags", JsonValue::arr([JsonValue::from(true), JsonValue::Null])),
            ("empty_arr", JsonValue::Arr(vec![])),
            ("empty_obj", JsonValue::Obj(vec![])),
            ("nested", JsonValue::obj([("k", JsonValue::from("v"))])),
        ]);
        for text in [doc.to_json(), doc.to_json_pretty()] {
            assert_eq!(parse(&text).unwrap(), doc, "{text}");
        }
        assert!(!doc.to_json().contains('\n'));
    }

    #[test]
    fn pretty_writer_indents_two_spaces() {
        let doc = JsonValue::obj([("rows", JsonValue::arr([JsonValue::from(1u64)]))]);
        assert_eq!(doc.to_json_pretty(), "{\n  \"rows\": [\n    1\n  ]\n}\n");
    }

    #[test]
    fn writer_handles_non_finite_numbers_as_null() {
        assert_eq!(JsonValue::Num(f64::NAN).to_json(), "null");
        assert_eq!(JsonValue::arr([JsonValue::Num(f64::INFINITY)]).to_json(), "[null]");
    }

    #[test]
    fn duplicate_keys_keep_last() {
        let v = parse(r#"{"a":1,"a":2}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_f64(), Some(2.0));
    }
}
