//! Empirical micro-benchmark selector.
//!
//! The most faithful (and most expensive) strategy: materialise every
//! candidate format — on a row sample when the matrix is large — and time
//! real SMSV products with right-hand sides drawn from the matrix's own
//! rows, exactly the access pattern of the SMO loop. The fastest format
//! wins. This is classic auto-tuning in the OSKI tradition the paper cites.

use crate::report::{FormatScore, SelectionReport};
use crate::scheduler::FormatSelector;
use dls_sparse::{AnyMatrix, Format, MatrixFeatures, MatrixFormat, TripletMatrix};
use std::time::Instant;

/// Micro-benchmarking selector.
#[derive(Debug, Clone, Copy)]
pub struct EmpiricalSelector {
    /// SMSV repetitions to time per candidate (higher = less noise).
    pub reps: usize,
    /// Row-sample cap: matrices taller than this are probed on their first
    /// `sample_rows` rows. The sample keeps the row-length distribution of
    /// the full matrix because generators interleave row kinds.
    pub sample_rows: usize,
    /// Also consider the derived formats (HYB, JDS, CSC, BCSR) beyond the
    /// paper's five. They are measured and scored like any other candidate
    /// and win when fastest.
    pub include_derived: bool,
}

impl Default for EmpiricalSelector {
    fn default() -> Self {
        Self { reps: 5, sample_rows: 2_048, include_derived: false }
    }
}

impl EmpiricalSelector {
    /// Measures mean SMSV seconds for one candidate format on the (possibly
    /// sampled) matrix.
    fn measure(&self, fmt: Format, t: &TripletMatrix) -> f64 {
        let m = AnyMatrix::from_triplets(fmt, t);
        let rows = m.rows();
        let mut out = vec![0.0; rows];
        // Probe vectors: rows of the matrix itself (SMO multiplies X by its
        // own rows), spread across the row range.
        let probes: Vec<_> = (0..4).map(|k| m.row_sparse(k * (rows - 1) / 3)).collect();
        // Warm-up pass so page faults and cache state don't bias the first
        // candidate measured.
        m.smsv(&probes[0], &mut out);
        let start = Instant::now();
        for r in 0..self.reps {
            m.smsv(&probes[r % probes.len()], &mut out);
        }
        start.elapsed().as_secs_f64() / self.reps as f64
    }

    /// Restricts the matrix to its first `sample_rows` rows.
    fn sample(&self, t: &TripletMatrix) -> TripletMatrix {
        if t.rows() <= self.sample_rows {
            return t.clone();
        }
        let mut s = TripletMatrix::new(self.sample_rows, t.cols());
        for &(r, c, v) in t.entries() {
            if r < self.sample_rows {
                s.push(r, c, v);
            }
        }
        s.compact()
    }
}

impl FormatSelector for EmpiricalSelector {
    fn select(&self, t: &TripletMatrix, f: &MatrixFeatures) -> SelectionReport {
        let probe = self.sample(t);
        let candidates: &[Format] =
            if self.include_derived { &Format::ALL } else { &Format::BASIC };
        let scores: Vec<FormatScore> = candidates
            .iter()
            .map(|&fmt| FormatScore::new(fmt, self.measure(fmt, &probe)))
            .collect();
        let FormatScore { format: chosen, score: best } = scores
            .iter()
            .min_by(|a, b| a.score.partial_cmp(&b.score).expect("finite times"))
            .copied()
            .expect("at least five candidates");
        SelectionReport {
            chosen,
            block: crate::report::default_block(chosen),
            features: *f,
            scores,
            reason: format!(
                "micro-benchmark: {:.2e} s/SMSV over {} reps on {} sample rows",
                best,
                self.reps,
                probe.rows()
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dls_data::controlled::diag_matrix;
    use dls_data::{generate, DatasetSpec};

    #[test]
    fn sampling_caps_rows() {
        let sel = EmpiricalSelector { reps: 1, sample_rows: 8, ..Default::default() };
        let spec = DatasetSpec::by_name("adult").unwrap();
        let t = generate(spec, 1);
        let s = sel.sample(&t);
        assert_eq!(s.rows(), 8);
        assert!(s.nnz() > 0);
        // Small matrices pass through untouched.
        let tiny = diag_matrix(4, 4, 4, 1, 0);
        assert_eq!(sel.sample(&tiny).entries(), tiny.entries());
    }

    #[test]
    fn selects_some_basic_format_with_timing_scores() {
        let sel = EmpiricalSelector { reps: 2, sample_rows: 256, ..Default::default() };
        let spec = DatasetSpec::by_name("adult").unwrap().scaled(4);
        let t = generate(&spec, 1);
        let f = MatrixFeatures::from_triplets(&t);
        let r = sel.select(&t, &f);
        assert!(Format::BASIC.contains(&r.chosen));
        for s in &r.scores {
            assert!(s.score > 0.0, "every candidate was actually timed");
        }
        let best = r.score_of(r.chosen).unwrap();
        for s in &r.scores {
            assert!(best <= s.score);
        }
    }

    #[test]
    fn derived_formats_can_win_when_enabled() {
        // One long row among uniform short ones: HYB/JDS avoid ELL padding
        // and can beat all five basic formats; with include_derived the
        // selector is allowed to pick them.
        let t = dls_data::controlled::mdim_matrix(512, 512, 1024, 512, 9);
        let f = MatrixFeatures::from_triplets(&t);
        let sel = EmpiricalSelector { reps: 3, sample_rows: 4_096, include_derived: true };
        let r = sel.select(&t, &f);
        assert!(Format::ALL.contains(&r.chosen));
        // Derived candidates are first-class: they carry measured scores.
        assert_eq!(r.scores.len(), Format::ALL.len());
        for fmt in [Format::Hyb, Format::Jds, Format::Csc, Format::Bcsr] {
            assert!(r.score_of(fmt).unwrap() > 0.0, "{fmt} was actually timed");
        }
        // Whatever wins, its time is no worse than every other candidate.
        let best = r.score_of(r.chosen).unwrap();
        for s in &r.scores {
            assert!(best <= s.score);
        }
    }

    #[test]
    fn heavily_padded_ell_loses_to_compact_formats() {
        // One 256-nnz row among 255 empty rows: ELL stores 256*256 slots.
        let t = dls_data::controlled::mdim_matrix(256, 256, 256, 256, 3);
        let f = MatrixFeatures::from_triplets(&t);
        let sel = EmpiricalSelector { reps: 3, sample_rows: 4_096, ..Default::default() };
        let r = sel.select(&t, &f);
        let ell = r.score_of(Format::Ell).unwrap();
        let csr = r.score_of(Format::Csr).unwrap();
        assert!(csr < ell, "CSR ({csr:.2e}s) must beat padded ELL ({ell:.2e}s) at mdim = M");
    }
}
