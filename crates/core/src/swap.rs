//! Hot-swappable selector handle: replace the scheduler's brain without
//! pausing anything that is selecting through it.
//!
//! [`SwappableSelector`] wraps any [`FormatSelector`] behind an
//! `RwLock<Arc<…>>`. Readers ([`FormatSelector::select`] calls) take the
//! read lock just long enough to clone the inner `Arc`, then select against
//! their private handle — a writer swapping in a new selector never blocks
//! an in-flight selection, and selections started before the swap finish
//! against the generation they started with. Each swap bumps a monotonic
//! generation counter so telemetry can report which model version is live.
//!
//! This is the scheduler-side half of the online-learning loop: the
//! `dls-serve` background retrainer publishes each accepted candidate here,
//! and every subsequent schedule request picks it up with no
//! coordination beyond one uncontended `RwLock` read.

use crate::report::SelectionReport;
use crate::scheduler::FormatSelector;
use dls_sparse::{MatrixFeatures, TripletMatrix};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// A [`FormatSelector`] whose inner selector can be atomically replaced at
/// runtime.
pub struct SwappableSelector {
    inner: RwLock<Arc<dyn FormatSelector>>,
    generation: AtomicU64,
}

impl std::fmt::Debug for SwappableSelector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SwappableSelector")
            .field("generation", &self.generation())
            .finish_non_exhaustive()
    }
}

impl SwappableSelector {
    /// Wraps `initial` as generation 1.
    pub fn new(initial: Arc<dyn FormatSelector>) -> Self {
        Self { inner: RwLock::new(initial), generation: AtomicU64::new(1) }
    }

    /// Atomically replaces the inner selector, returning the new
    /// generation number. In-flight selections keep the handle they
    /// already cloned; everything after sees the replacement.
    pub fn swap(&self, next: Arc<dyn FormatSelector>) -> u64 {
        let mut guard = self.inner.write().expect("swappable selector poisoned");
        *guard = next;
        // Bumped under the write lock so generation and selector move
        // together: a reader that sees generation g also sees selector g.
        self.generation.fetch_add(1, Ordering::Release) + 1
    }

    /// Generation of the live selector (1 = the initial one).
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Clones a handle to the live selector.
    pub fn current(&self) -> Arc<dyn FormatSelector> {
        Arc::clone(&self.inner.read().expect("swappable selector poisoned"))
    }
}

impl FormatSelector for SwappableSelector {
    fn select(&self, t: &TripletMatrix, f: &MatrixFeatures) -> SelectionReport {
        self.current().select(t, f)
    }
}

/// `Arc<SwappableSelector>` forwards, so one handle can be shared between a
/// scheduler and the retrainer that feeds it.
impl FormatSelector for Arc<SwappableSelector> {
    fn select(&self, t: &TripletMatrix, f: &MatrixFeatures) -> SelectionReport {
        (**self).select(t, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::FixedSelector;
    use dls_sparse::Format;

    fn features(t: &TripletMatrix) -> MatrixFeatures {
        MatrixFeatures::from_triplets(t)
    }

    fn matrix() -> TripletMatrix {
        let mut t = TripletMatrix::new(4, 4);
        for i in 0..4 {
            t.push(i, i, 1.0);
        }
        t
    }

    #[test]
    fn swap_changes_the_selection_and_bumps_the_generation() {
        let swap = SwappableSelector::new(Arc::new(FixedSelector(Format::Csr)));
        let t = matrix();
        let f = features(&t);
        assert_eq!(swap.generation(), 1);
        assert_eq!(swap.select(&t, &f).chosen, Format::Csr);
        let g = swap.swap(Arc::new(FixedSelector(Format::Coo)));
        assert_eq!(g, 2);
        assert_eq!(swap.generation(), 2);
        assert_eq!(swap.select(&t, &f).chosen, Format::Coo);
    }

    #[test]
    fn in_flight_handles_survive_a_swap() {
        let swap = SwappableSelector::new(Arc::new(FixedSelector(Format::Csr)));
        let held = swap.current();
        swap.swap(Arc::new(FixedSelector(Format::Den)));
        let t = matrix();
        let f = features(&t);
        // The pre-swap handle still answers with the old model …
        assert_eq!(held.select(&t, &f).chosen, Format::Csr);
        // … while the shared handle serves the new one.
        assert_eq!(swap.select(&t, &f).chosen, Format::Den);
    }

    #[test]
    fn concurrent_selects_and_swaps_never_tear() {
        let swap = Arc::new(SwappableSelector::new(Arc::new(FixedSelector(Format::Csr))));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let swap = Arc::clone(&swap);
            handles.push(std::thread::spawn(move || {
                let t = matrix();
                let f = features(&t);
                for _ in 0..200 {
                    let chosen = swap.select(&t, &f).chosen;
                    assert!(chosen == Format::Csr || chosen == Format::Coo);
                }
            }));
        }
        let swapper = {
            let swap = Arc::clone(&swap);
            std::thread::spawn(move || {
                for k in 0..50 {
                    let fmt = if k % 2 == 0 { Format::Coo } else { Format::Csr };
                    swap.swap(Arc::new(FixedSelector(fmt)));
                }
            })
        };
        for h in handles {
            h.join().unwrap();
        }
        swapper.join().unwrap();
        assert_eq!(swap.generation(), 51);
    }
}
