//! Integration test for the reactive scheduler's headline promise: a
//! mis-seeded fixed format is detected and corrected mid-training without
//! changing what the trained model predicts.

use dls_core::{LayoutScheduler, ReactiveConfig, ReactiveScheduler, SelectionStrategy};
use dls_sparse::{AnyMatrix, Format, SparseVec};
use dls_svm::{train_with_stats, SmoParams};

#[test]
fn mis_seeded_dia_recovers_to_csr_with_identical_predictions() {
    // Adult-style sparse data: random pattern, terrible for DIA (the cost
    // model scores DIA ~20x worse than CSR here), ideal for CSR.
    let spec = dls_data::DatasetSpec::by_name("adult").unwrap().scaled(10);
    let t = dls_data::generate(&spec, 42);
    let y = dls_data::labels::linear_teacher_labels(&t, 0.0, 7);
    let params = SmoParams {
        // No kernel cache: every iteration issues its two SMSVs, so each
        // monitoring window has enough calls to clear the noise gate.
        cache_bytes: 0,
        max_iterations: 2_000,
        ..SmoParams::default()
    };

    let reactive = ReactiveScheduler::new(LayoutScheduler::with_strategy(
        SelectionStrategy::Fixed(Format::Dia),
    ))
    .with_config(ReactiveConfig { segment_iters: 16, ..ReactiveConfig::default() });
    let (model, report) = reactive.train(&t, &y, &params).expect("reactive training");

    // The wrong seed was honoured at the start…
    assert_eq!(report.initial.chosen, Format::Dia);
    // …then detected and corrected.
    assert!(!report.switches.is_empty(), "no mid-training re-schedule happened");
    assert_eq!(report.switches[0].from, Format::Dia);
    assert_eq!(report.switches[0].to, Format::Csr);
    assert_eq!(report.final_format, Format::Csr);
    // Telemetry saw both phases.
    let dia_calls =
        report.telemetry.per_format.iter().find(|f| f.format == Format::Dia).map_or(0, |f| f.calls);
    let csr_calls =
        report.telemetry.per_format.iter().find(|f| f.format == Format::Csr).map_or(0, |f| f.calls);
    assert!(dia_calls > 0, "no SMSV calls recorded on the mis-seeded format");
    assert!(csr_calls > 0, "no SMSV calls recorded after the switch");
    assert_eq!(report.telemetry.total_calls(), report.stats.smsv_count);

    // Reference: the same problem trained statically on CSR.
    let csr = AnyMatrix::from_triplets(Format::Csr, &t);
    let (static_model, _) = train_with_stats(&csr, &y, &params).expect("static training");

    // The re-scheduled run must predict exactly like the static one.
    for i in 0..t.rows() {
        let x: SparseVec = t.row_sparse(i);
        assert_eq!(
            model.predict_label(&x),
            static_model.predict_label(&x),
            "prediction diverged on row {i}"
        );
    }
    assert!((model.bias() - static_model.bias()).abs() < 1e-6);
}
