//! Property-based tests: every storage format must be an exact,
//! loss-free re-encoding of the same matrix, and every kernel must agree
//! with the reference implementation on arbitrary sparsity patterns.

use dls_sparse::ops::smsv_reference;
use dls_sparse::parallel::{par_smsv_coo, par_smsv_csr, par_smsv_generic, SmsvPool};
use dls_sparse::{
    AnyMatrix, CooMatrix, CsrMatrix, Format, MatrixFeatures, MatrixFormat, RowScratch, SparseVec,
    TripletMatrix,
};
use proptest::prelude::*;

/// Strategy: an arbitrary compact triplet matrix up to 24x24.
fn arb_matrix() -> impl Strategy<Value = TripletMatrix> {
    (1usize..24, 1usize..24)
        .prop_flat_map(|(rows, cols)| {
            let entry = (0..rows, 0..cols, -4i32..=4).prop_map(|(r, c, v)| (r, c, v as f64));
            (Just(rows), Just(cols), proptest::collection::vec(entry, 0..80))
        })
        .prop_map(|(rows, cols, entries)| {
            TripletMatrix::from_entries(rows, cols, entries).unwrap().compact()
        })
}

/// Strategy: a matrix together with a compatible sparse vector.
fn arb_matrix_and_vec() -> impl Strategy<Value = (TripletMatrix, SparseVec)> {
    arb_matrix().prop_flat_map(|t| {
        let cols = t.cols();
        let dense = proptest::collection::vec(-3i32..=3, cols)
            .prop_map(|v| SparseVec::from_dense(&v.into_iter().map(f64::from).collect::<Vec<_>>()));
        (Just(t), dense)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Round trip through every format preserves the triplet content bit-exactly.
    #[test]
    fn round_trip_all_formats(t in arb_matrix()) {
        for fmt in Format::ALL {
            let m = AnyMatrix::from_triplets(fmt, &t);
            prop_assert_eq!(m.rows(), t.rows());
            prop_assert_eq!(m.cols(), t.cols());
            prop_assert_eq!(m.nnz(), t.nnz(), "nnz through {}", fmt);
            let back = m.to_triplets().compact();
            prop_assert_eq!(back.entries(), t.entries(), "round trip through {}", fmt);
        }
    }

    /// `get` agrees with the dense materialisation for every format.
    #[test]
    fn get_agrees_with_dense(t in arb_matrix()) {
        let dense = t.to_dense();
        for fmt in Format::ALL {
            let m = AnyMatrix::from_triplets(fmt, &t);
            for i in 0..t.rows() {
                for j in 0..t.cols() {
                    prop_assert_eq!(m.get(i, j), dense[i * t.cols() + j], "{} at ({},{})", fmt, i, j);
                }
            }
        }
    }

    /// SMSV agrees with the merge-join reference for every format.
    #[test]
    fn smsv_agrees_with_reference((t, v) in arb_matrix_and_vec()) {
        let csr = CsrMatrix::from_triplets(&t);
        let reference = smsv_reference(&csr, &v);
        for fmt in Format::ALL {
            let m = AnyMatrix::from_triplets(fmt, &t);
            let mut out = vec![0.0; t.rows()];
            m.smsv(&v, &mut out);
            for (a, b) in out.iter().zip(&reference) {
                prop_assert!((a - b).abs() < 1e-9, "{}: {:?} vs {:?}", fmt, out, reference);
            }
        }
    }

    /// SpMV with the densified vector equals SMSV.
    #[test]
    fn spmv_equals_smsv_on_dense_vector((t, v) in arb_matrix_and_vec()) {
        let dense_v = v.to_dense();
        for fmt in Format::ALL {
            let m = AnyMatrix::from_triplets(fmt, &t);
            let mut a = vec![0.0; t.rows()];
            let mut b = vec![0.0; t.rows()];
            m.smsv(&v, &mut a);
            m.spmv(&dense_v, &mut b);
            for (x, y) in a.iter().zip(&b) {
                prop_assert!((x - y).abs() < 1e-9, "{}", fmt);
            }
        }
    }

    /// The lockstep SIMD-style CSR kernel is exactly the scalar kernel.
    #[test]
    fn csr_lanes_kernel_is_exact((t, v) in arb_matrix_and_vec()) {
        let m = CsrMatrix::from_triplets(&t);
        let mut scalar = vec![0.0; t.rows()];
        let mut lanes = vec![0.0; t.rows()];
        m.smsv(&v, &mut scalar);
        m.smsv_lanes::<8>(&v, &mut lanes);
        for (a, b) in scalar.iter().zip(&lanes) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    /// Parallel kernels agree with serial ones for any thread count.
    #[test]
    fn parallel_kernels_agree((t, v) in arb_matrix_and_vec(), threads in 1usize..6) {
        let csr = CsrMatrix::from_triplets(&t);
        let coo = CooMatrix::from_triplets(&t);
        let mut expect = vec![0.0; t.rows()];
        csr.smsv(&v, &mut expect);

        let mut got = vec![0.0; t.rows()];
        par_smsv_csr(&csr, &v, &mut got, threads);
        for (a, b) in got.iter().zip(&expect) {
            prop_assert!((a - b).abs() < 1e-9, "csr threads={}", threads);
        }
        par_smsv_coo(&coo, &v, &mut got, threads);
        for (a, b) in got.iter().zip(&expect) {
            prop_assert!((a - b).abs() < 1e-9, "coo threads={}", threads);
        }
        let any = AnyMatrix::from_triplets(Format::Ell, &t);
        par_smsv_generic(&any, &v, &mut got, threads);
        for (a, b) in got.iter().zip(&expect) {
            prop_assert!((a - b).abs() < 1e-9, "generic threads={}", threads);
        }
    }

    /// Row extraction through every format matches the triplet rows.
    #[test]
    fn row_sparse_matches_triplets(t in arb_matrix()) {
        for fmt in Format::ALL {
            let m = AnyMatrix::from_triplets(fmt, &t);
            for i in 0..t.rows() {
                let a = m.row_sparse(i);
                let b = t.row_sparse(i);
                prop_assert_eq!(a.indices(), b.indices(), "{} row {}", fmt, i);
                prop_assert_eq!(a.values(), b.values(), "{} row {}", fmt, i);
            }
        }
    }

    /// Feature extraction invariants that hold for every matrix.
    #[test]
    fn feature_invariants(t in arb_matrix()) {
        let f = MatrixFeatures::from_triplets(&t);
        prop_assert_eq!(f.nnz, t.nnz());
        prop_assert!(f.mdim <= f.n);
        prop_assert!(f.adim <= f.mdim as f64 + 1e-12);
        prop_assert!(f.ndig < f.m + f.n);
        prop_assert!(f.ndig <= f.nnz.max(1) || f.nnz == 0);
        prop_assert!((0.0..=1.0).contains(&f.density));
        prop_assert!(f.vdim >= 0.0);
        if f.nnz > 0 {
            prop_assert!(f.ndig >= 1);
            prop_assert!(f.dnnz >= 1.0 - 1e-12);
        }
    }

    /// Borrowed row views match the owned row extraction exactly for every
    /// format (including empty rows, which arbitrary matrices produce).
    #[test]
    fn row_view_matches_row_sparse(t in arb_matrix()) {
        let mut scratch = RowScratch::new();
        for fmt in Format::ALL {
            let m = AnyMatrix::from_triplets(fmt, &t);
            for i in 0..t.rows() {
                let owned = m.row_sparse(i);
                let view = m.row_view_in(i, &mut scratch);
                prop_assert_eq!(view.dim(), owned.dim(), "{} row {}", fmt, i);
                prop_assert_eq!(view.indices(), owned.indices(), "{} row {}", fmt, i);
                prop_assert_eq!(view.values(), owned.values(), "{} row {}", fmt, i);
            }
        }
    }

    /// The workspace-reusing SMSV agrees with the allocating one for every
    /// format — sharing one workspace across all formats and calls.
    #[test]
    fn smsv_view_matches_smsv((t, v) in arb_matrix_and_vec()) {
        let csr = CsrMatrix::from_triplets(&t);
        let reference = smsv_reference(&csr, &v);
        let mut ws = Vec::new();
        for fmt in Format::ALL {
            let m = AnyMatrix::from_triplets(fmt, &t);
            let mut out = vec![1.0; t.rows()]; // pre-polluted: must overwrite
            m.smsv_view(v.as_view(), &mut out, &mut ws);
            for (a, b) in out.iter().zip(&reference) {
                prop_assert!((a - b).abs() < 1e-9, "{}: {:?} vs {:?}", fmt, out, reference);
            }
            // The shared workspace must be restored to all-zero.
            prop_assert!(ws.iter().all(|&w| w == 0.0), "{} left workspace dirty", fmt);
        }
    }

    /// Blocked SMSV equals per-vector reference products for every format
    /// and any block width — including B > rows and B > MAX_SMSV_BLOCK.
    #[test]
    fn smsv_block_matches_reference((t, v) in arb_matrix_and_vec(), b in 0usize..40) {
        let csr = CsrMatrix::from_triplets(&t);
        // Block of B right-hand sides: matrix rows cycled, plus the
        // arbitrary vector interleaved so not every RHS is a matrix row.
        let vs: Vec<SparseVec> = (0..b)
            .map(|k| if k % 3 == 2 { v.clone() } else { t.row_sparse(k % t.rows()) })
            .collect();
        let mut ws = Vec::new();
        for fmt in Format::ALL {
            let m = AnyMatrix::from_triplets(fmt, &t);
            let mut out = vec![1.0; t.rows() * b];
            m.smsv_block(&vs, &mut out, &mut ws);
            for (k, rhs) in vs.iter().enumerate() {
                let expect = smsv_reference(&csr, rhs);
                let got = &out[k * t.rows()..(k + 1) * t.rows()];
                for (a, bb) in got.iter().zip(&expect) {
                    prop_assert!((a - bb).abs() < 1e-9, "{} block {}/{}", fmt, k, b);
                }
            }
            prop_assert!(ws.iter().all(|&w| w == 0.0), "{} left workspace dirty", fmt);
        }
    }

    /// Blocked SMSV is BIT-identical to the per-vector kernel for every
    /// format — not merely close. Each lane of the blocked kernels
    /// accumulates its row sums in exactly the per-vector order, which is
    /// what lets `predict_batch` swap kernels without changing decisions.
    /// The strategy space covers the hard shapes: empty rows (arbitrary
    /// matrices produce them), single-row matrices (`rows` starts at 1),
    /// B above any tuned block, and B > MAX_SMSV_BLOCK (chunking path,
    /// including size-1 tail chunks at B = 33).
    #[test]
    fn smsv_block_is_bit_identical_to_per_vector((t, v) in arb_matrix_and_vec(), b in 1usize..40) {
        let vs: Vec<SparseVec> = (0..b)
            .map(|k| if k % 3 == 2 { v.clone() } else { t.row_sparse(k % t.rows()) })
            .collect();
        let mut ws = Vec::new();
        for fmt in Format::ALL {
            let m = AnyMatrix::from_triplets(fmt, &t);
            let mut blocked = vec![1.0; t.rows() * b];
            m.smsv_block(&vs, &mut blocked, &mut ws);
            let mut single = vec![1.0; t.rows()];
            for (k, rhs) in vs.iter().enumerate() {
                m.smsv_view(rhs.as_view(), &mut single, &mut ws);
                let got = &blocked[k * t.rows()..(k + 1) * t.rows()];
                for (i, (a, bb)) in got.iter().zip(&single).enumerate() {
                    prop_assert_eq!(
                        a.to_bits(), bb.to_bits(),
                        "{} rhs {}/{} row {}: {} vs {}", fmt, k, b, i, a, bb
                    );
                }
            }
            prop_assert!(ws.iter().all(|&w| w == 0.0), "{} left workspace dirty", fmt);
        }
    }

    /// The persistent pool agrees with the serial kernel for any format and
    /// worker count.
    #[test]
    fn pool_smsv_agrees((t, v) in arb_matrix_and_vec(), threads in 1usize..5) {
        let csr = CsrMatrix::from_triplets(&t);
        let reference = smsv_reference(&csr, &v);
        let pool = SmsvPool::new(threads);
        for fmt in Format::ALL {
            let m = AnyMatrix::from_triplets(fmt, &t);
            let mut out = vec![1.0; t.rows()];
            pool.smsv_generic(&m, v.as_view(), &mut out);
            for (a, b) in out.iter().zip(&reference) {
                prop_assert!((a - b).abs() < 1e-9, "{} threads={}", fmt, threads);
            }
        }
    }

    /// Storage accounting: actual elements always fall inside the Table II
    /// [min, max] interval (up to the O(1) slack the paper's O(.) hides).
    #[test]
    fn storage_within_table2_bounds(t in arb_matrix()) {
        use dls_sparse::storage::{max_storage_elems, min_storage_elems};
        prop_assume!(t.nnz() > 0);
        for fmt in [Format::Den, Format::Csr, Format::Coo, Format::Ell] {
            let m = AnyMatrix::from_triplets(fmt, &t);
            let lo = min_storage_elems(fmt, t.rows(), t.cols());
            let hi = max_storage_elems(fmt, t.rows(), t.cols());
            prop_assert!(m.storage_elems() + 1 >= lo, "{} below Table II min", fmt);
            prop_assert!(m.storage_elems() <= hi + t.rows() + 1, "{} above Table II max", fmt);
        }
    }
}
