//! Format-independent linear-algebra helpers built on [`MatrixFormat`].

use crate::{MatrixFormat, Scalar, SparseVec, TripletMatrix};

/// `out = X · v` allocating the output vector.
pub fn smsv_alloc<M: MatrixFormat>(m: &M, v: &SparseVec) -> Vec<Scalar> {
    let mut out = vec![0.0; m.rows()];
    m.smsv(v, &mut out);
    out
}

/// Gram row: `out[i] = X_i · X_row` — the exact product SMO issues twice per
/// iteration, with the right-hand side taken from the matrix itself.
pub fn gram_row<M: MatrixFormat>(m: &M, row: usize, out: &mut [Scalar]) {
    let v = m.row_sparse(row);
    m.smsv(&v, out);
}

/// Dense Gram matrix `X Xᵀ` (for tests and small problems only: Θ(M²)).
pub fn gram_matrix<M: MatrixFormat>(m: &M) -> Vec<Scalar> {
    let rows = m.rows();
    let mut g = vec![0.0; rows * rows];
    for i in 0..rows {
        gram_row(m, i, &mut g[i * rows..(i + 1) * rows]);
    }
    g
}

/// Frobenius norm of any matrix.
pub fn frobenius_norm<M: MatrixFormat>(m: &M) -> Scalar {
    let mut norms = vec![0.0; m.rows()];
    m.row_norms_sq(&mut norms);
    norms.iter().sum::<Scalar>().sqrt()
}

/// Maximum absolute difference between two matrices of the same shape,
/// computed through the triplet form. Intended for cross-format testing.
pub fn max_abs_diff<A: MatrixFormat, B: MatrixFormat>(a: &A, b: &B) -> Scalar {
    assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()), "shape mismatch");
    let da = dense_of(&a.to_triplets());
    let db = dense_of(&b.to_triplets());
    da.iter().zip(&db).map(|(x, y)| (x - y).abs()).fold(0.0, Scalar::max)
}

fn dense_of(t: &TripletMatrix) -> Vec<Scalar> {
    t.to_dense()
}

/// Reference SMSV implementation via per-row sorted-merge dot products —
/// O(nnz + M · nnz(v)) and trivially correct; formats are tested against it.
pub fn smsv_reference<M: MatrixFormat>(m: &M, v: &SparseVec) -> Vec<Scalar> {
    (0..m.rows()).map(|i| m.row_sparse(i).dot(v)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AnyMatrix, Format};

    fn sample() -> TripletMatrix {
        TripletMatrix::from_entries(
            4,
            5,
            vec![(0, 0, 1.0), (0, 4, 2.0), (1, 2, -3.0), (2, 1, 4.0), (2, 2, 5.0), (3, 3, 6.0)],
        )
        .unwrap()
        .compact()
    }

    #[test]
    fn gram_row_is_symmetric_slice() {
        let m = AnyMatrix::from_triplets(Format::Csr, &sample());
        let g = gram_matrix(&m);
        for i in 0..4 {
            for j in 0..4 {
                assert!((g[i * 4 + j] - g[j * 4 + i]).abs() < 1e-12);
            }
        }
        // Diagonal entries are the squared row norms.
        let mut norms = vec![0.0; 4];
        m.row_norms_sq(&mut norms);
        for i in 0..4 {
            assert!((g[i * 4 + i] - norms[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn frobenius_matches_manual() {
        let m = AnyMatrix::from_triplets(Format::Coo, &sample());
        let expect = (1.0f64 + 4.0 + 9.0 + 16.0 + 25.0 + 36.0).sqrt();
        assert!((frobenius_norm(&m) - expect).abs() < 1e-12);
    }

    #[test]
    fn all_formats_agree_with_reference_smsv() {
        let t = sample();
        let v = SparseVec::new(5, vec![0, 2, 4], vec![1.5, -2.0, 0.5]);
        let reference = smsv_reference(&AnyMatrix::from_triplets(Format::Csr, &t), &v);
        for fmt in Format::ALL {
            let m = AnyMatrix::from_triplets(fmt, &t);
            let got = smsv_alloc(&m, &v);
            for (a, b) in got.iter().zip(&reference) {
                assert!((a - b).abs() < 1e-12, "{fmt} disagrees: {got:?} vs {reference:?}");
            }
        }
    }

    #[test]
    fn max_abs_diff_zero_across_formats() {
        let t = sample();
        let a = AnyMatrix::from_triplets(Format::Ell, &t);
        let b = AnyMatrix::from_triplets(Format::Dia, &t);
        assert_eq!(max_abs_diff(&a, &b), 0.0);
    }
}
