//! The [`MatrixFormat`] trait and the [`AnyMatrix`] runtime-dispatch enum.
//!
//! The layout scheduler picks a [`Format`] at runtime, so the solver needs a
//! single type that can hold any of the seven concrete formats. Enum
//! dispatch (rather than `dyn Trait`) keeps the hot SMSV call statically
//! dispatched inside each arm.

use crate::{
    BcsrMatrix, CooMatrix, CscMatrix, CsrMatrix, DenseMatrix, DiaMatrix, EllMatrix, HybMatrix,
    JdsMatrix, RowScratch, Scalar, SparseVec, SparseVecView, TripletMatrix,
};

/// Largest number of right-hand sides a single [`MatrixFormat::smsv_block`]
/// chunk processes at once. Chosen so the per-row accumulator fits in a
/// stack array and the interleaved workspace stays cache-resident.
pub const MAX_SMSV_BLOCK: usize = 32;

/// Identifier for each storage format studied by the paper (plus the two
/// derived formats of §III-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Format {
    /// Dense row-major storage.
    Den,
    /// Compressed Sparse Row.
    Csr,
    /// Coordinate list, row-major sorted.
    Coo,
    /// ELLPACK/ITPACK: rows padded to the longest row, column-major.
    Ell,
    /// Diagonal storage.
    Dia,
    /// Compressed Sparse Column (derived from CSR, §III-A).
    Csc,
    /// Block CSR (derived, for matrices with dense sub-blocks, §III-A).
    Bcsr,
    /// Hybrid ELL + COO (derived: bounded padding with a COO spill list).
    Hyb,
    /// Jagged diagonal storage (derived: length-sorted, padding-free ELL).
    Jds,
}

impl Format {
    /// The five basic formats of the paper, in Table II/III column order.
    pub const BASIC: [Format; 5] =
        [Format::Ell, Format::Csr, Format::Coo, Format::Den, Format::Dia];

    /// All implemented formats including derived ones.
    pub const ALL: [Format; 9] = [
        Format::Ell,
        Format::Csr,
        Format::Coo,
        Format::Den,
        Format::Dia,
        Format::Csc,
        Format::Bcsr,
        Format::Hyb,
        Format::Jds,
    ];

    /// Whether this format has a true multi-vector [`MatrixFormat::smsv_block`]
    /// kernel that amortises one matrix traversal over the whole block.
    /// All nine formats qualify: even CSC, whose column-outer sweep visits
    /// only the RHS's non-zero columns, merges the lanes' column lists so
    /// each column shared by several right-hand sides is streamed once
    /// instead of once per lane.
    pub fn has_blocked_kernel(self) -> bool {
        true
    }

    /// Short upper-case name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Format::Den => "DEN",
            Format::Csr => "CSR",
            Format::Coo => "COO",
            Format::Ell => "ELL",
            Format::Dia => "DIA",
            Format::Csc => "CSC",
            Format::Bcsr => "BCSR",
            Format::Hyb => "HYB",
            Format::Jds => "JDS",
        }
    }
}

impl std::fmt::Display for Format {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Format {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_uppercase().as_str() {
            "DEN" | "DENSE" => Ok(Format::Den),
            "CSR" => Ok(Format::Csr),
            "COO" => Ok(Format::Coo),
            "ELL" | "ELLPACK" => Ok(Format::Ell),
            "DIA" | "DIAG" => Ok(Format::Dia),
            "CSC" => Ok(Format::Csc),
            "BCSR" => Ok(Format::Bcsr),
            "HYB" | "HYBRID" => Ok(Format::Hyb),
            "JDS" | "JAD" => Ok(Format::Jds),
            other => Err(format!("unknown format: {other}")),
        }
    }
}

/// Common interface over every storage format.
///
/// The central method is [`MatrixFormat::smsv`], the sparse-matrix ×
/// sparse-vector product `out[i] = X_i · v` that the SMO algorithm performs
/// twice per iteration (once for `X_high`, once for `X_low`).
pub trait MatrixFormat {
    /// Number of rows (`M` = number of samples).
    fn rows(&self) -> usize;

    /// Number of columns (`N` = number of features).
    fn cols(&self) -> usize;

    /// Number of stored non-zero elements.
    fn nnz(&self) -> usize;

    /// Which format this is.
    fn format(&self) -> Format;

    /// Value at `(i, j)`; zero when not stored. O(log nnz_row) or better.
    fn get(&self, i: usize, j: usize) -> Scalar;

    /// Extracts row `i` as a sparse vector.
    fn row_sparse(&self, i: usize) -> SparseVec;

    /// Borrows row `i` as a [`SparseVecView`] without allocating.
    ///
    /// Row-contiguous formats (CSR, COO) return slices of their own
    /// storage and leave `scratch` untouched; every other format fills
    /// `scratch` (whose capacity persists across calls) and returns a view
    /// over it. The default materialises via [`MatrixFormat::row_sparse`]
    /// and copies into the scratch — concrete formats override it.
    fn row_view_in<'a>(&'a self, i: usize, scratch: &'a mut RowScratch) -> SparseVecView<'a> {
        let row = self.row_sparse(i);
        scratch.clear();
        for (j, x) in row.iter() {
            scratch.push(j, x);
        }
        scratch.view(self.cols())
    }

    /// Sparse-matrix × sparse-vector: `out[i] = X_i · v` for every row.
    ///
    /// # Panics
    /// Panics if `v.dim() != self.cols()` or `out.len() != self.rows()`.
    fn smsv(&self, v: &SparseVec, out: &mut [Scalar]);

    /// Zero-allocation SMSV over a borrowed right-hand side.
    ///
    /// `workspace` is a reusable buffer: formats that need a dense scatter
    /// resize it to (at least) `cols()` and restore every slot they touch
    /// to zero on exit, so one buffer can be shared across calls, formats
    /// and [`MatrixFormat::smsv_block`]. Callers must hand in a buffer
    /// whose contents are all zero (a fresh `Vec` qualifies); in steady
    /// state the capacity is stable and no allocation happens. The default
    /// copies the view into an owned vector — concrete formats override it.
    fn smsv_view(&self, v: SparseVecView<'_>, out: &mut [Scalar], workspace: &mut Vec<Scalar>) {
        let _ = workspace;
        self.smsv(&v.to_owned(), out);
    }

    /// Multi-vector SMSV: computes `vs.len()` products in one call, with
    /// `out` laid out vector-major (`out[b * rows .. (b + 1) * rows]` is
    /// the product for `vs[b]`).
    ///
    /// Formats for which [`Format::has_blocked_kernel`] is true traverse
    /// the matrix once per chunk of up to [`MAX_SMSV_BLOCK`] right-hand
    /// sides; the default falls back to one [`MatrixFormat::smsv_view`]
    /// sweep per vector (same results, no traversal amortisation).
    /// `workspace` follows the [`MatrixFormat::smsv_view`] contract.
    ///
    /// # Panics
    /// Panics if any `vs[b].dim() != self.cols()` or
    /// `out.len() != self.rows() * vs.len()`.
    fn smsv_block(&self, vs: &[SparseVec], out: &mut [Scalar], workspace: &mut Vec<Scalar>) {
        let rows = self.rows();
        assert_eq!(out.len(), rows * vs.len(), "smsv_block output length mismatch");
        for (v, chunk) in vs.iter().zip(out.chunks_exact_mut(rows.max(1))) {
            self.smsv_view(v.as_view(), chunk, workspace);
        }
    }

    /// Classical SpMV against a dense vector: `out = X x`.
    fn spmv(&self, x: &[Scalar], out: &mut [Scalar]);

    /// Fills `out[i] = ||X_i||^2` (needed by the Gaussian kernel).
    fn row_norms_sq(&self, out: &mut [Scalar]);

    /// Lowers the matrix to the triplet interchange form.
    fn to_triplets(&self) -> TripletMatrix;

    /// Bytes of heap storage actually used by this representation.
    fn storage_bytes(&self) -> usize;

    /// Number of stored *elements* (including padding), the unit Table II
    /// counts in.
    fn storage_elems(&self) -> usize;
}

/// Grows `workspace` to at least `len` slots (new slots zeroed, existing
/// contents untouched) and returns the first `len` as a slice. The shared
/// helper behind every format's `smsv_view`/`smsv_block` scratch handling:
/// growth happens once, after which the same buffer is reused forever.
pub(crate) fn ensure_workspace(workspace: &mut Vec<Scalar>, len: usize) -> &mut [Scalar] {
    if workspace.len() < len {
        workspace.resize(len, 0.0);
    }
    &mut workspace[..len]
}

/// A matrix in any of the supported formats, produced by the runtime
/// scheduler. Dispatch is by `match`, so each arm keeps its statically
/// compiled kernel.
#[derive(Debug, Clone)]
pub enum AnyMatrix {
    /// Dense storage.
    Den(DenseMatrix),
    /// Compressed sparse row.
    Csr(CsrMatrix),
    /// Coordinate list.
    Coo(CooMatrix),
    /// ELLPACK.
    Ell(EllMatrix),
    /// Diagonal.
    Dia(DiaMatrix),
    /// Compressed sparse column.
    Csc(CscMatrix),
    /// Block CSR.
    Bcsr(BcsrMatrix),
    /// Hybrid ELL + COO.
    Hyb(HybMatrix),
    /// Jagged diagonal.
    Jds(JdsMatrix),
}

macro_rules! dispatch {
    ($self:expr, $m:ident => $body:expr) => {
        match $self {
            AnyMatrix::Den($m) => $body,
            AnyMatrix::Csr($m) => $body,
            AnyMatrix::Coo($m) => $body,
            AnyMatrix::Ell($m) => $body,
            AnyMatrix::Dia($m) => $body,
            AnyMatrix::Csc($m) => $body,
            AnyMatrix::Bcsr($m) => $body,
            AnyMatrix::Hyb($m) => $body,
            AnyMatrix::Jds($m) => $body,
        }
    };
}

impl AnyMatrix {
    /// Builds a matrix in the requested format from triplets.
    pub fn from_triplets(format: Format, t: &TripletMatrix) -> Self {
        match format {
            Format::Den => AnyMatrix::Den(DenseMatrix::from_triplets(t)),
            Format::Csr => AnyMatrix::Csr(CsrMatrix::from_triplets(t)),
            Format::Coo => AnyMatrix::Coo(CooMatrix::from_triplets(t)),
            Format::Ell => AnyMatrix::Ell(EllMatrix::from_triplets(t)),
            Format::Dia => AnyMatrix::Dia(DiaMatrix::from_triplets(t)),
            Format::Csc => AnyMatrix::Csc(CscMatrix::from_triplets(t)),
            Format::Bcsr => AnyMatrix::Bcsr(BcsrMatrix::from_triplets(t, 4, 4)),
            Format::Hyb => AnyMatrix::Hyb(HybMatrix::from_triplets(t)),
            Format::Jds => AnyMatrix::Jds(JdsMatrix::from_triplets(t)),
        }
    }

    /// Re-encodes this matrix in another format.
    pub fn convert(&self, format: Format) -> Self {
        Self::from_triplets(format, &self.to_triplets())
    }
}

impl MatrixFormat for AnyMatrix {
    fn rows(&self) -> usize {
        dispatch!(self, m => m.rows())
    }

    fn cols(&self) -> usize {
        dispatch!(self, m => m.cols())
    }

    fn nnz(&self) -> usize {
        dispatch!(self, m => m.nnz())
    }

    fn format(&self) -> Format {
        dispatch!(self, m => m.format())
    }

    fn get(&self, i: usize, j: usize) -> Scalar {
        dispatch!(self, m => m.get(i, j))
    }

    fn row_sparse(&self, i: usize) -> SparseVec {
        dispatch!(self, m => m.row_sparse(i))
    }

    fn row_view_in<'a>(&'a self, i: usize, scratch: &'a mut RowScratch) -> SparseVecView<'a> {
        dispatch!(self, m => m.row_view_in(i, scratch))
    }

    fn smsv(&self, v: &SparseVec, out: &mut [Scalar]) {
        dispatch!(self, m => m.smsv(v, out))
    }

    fn smsv_view(&self, v: SparseVecView<'_>, out: &mut [Scalar], workspace: &mut Vec<Scalar>) {
        dispatch!(self, m => m.smsv_view(v, out, workspace))
    }

    fn smsv_block(&self, vs: &[SparseVec], out: &mut [Scalar], workspace: &mut Vec<Scalar>) {
        dispatch!(self, m => m.smsv_block(vs, out, workspace))
    }

    fn spmv(&self, x: &[Scalar], out: &mut [Scalar]) {
        dispatch!(self, m => m.spmv(x, out))
    }

    fn row_norms_sq(&self, out: &mut [Scalar]) {
        dispatch!(self, m => m.row_norms_sq(out))
    }

    fn to_triplets(&self) -> TripletMatrix {
        dispatch!(self, m => m.to_triplets())
    }

    fn storage_bytes(&self) -> usize {
        dispatch!(self, m => m.storage_bytes())
    }

    fn storage_elems(&self) -> usize {
        dispatch!(self, m => m.storage_elems())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_names_round_trip() {
        for f in Format::ALL {
            let parsed: Format = f.name().parse().unwrap();
            assert_eq!(parsed, f);
        }
        assert!("XYZ".parse::<Format>().is_err());
        assert_eq!("dense".parse::<Format>().unwrap(), Format::Den);
    }

    #[test]
    fn basic_formats_match_paper_tables() {
        assert_eq!(
            Format::BASIC,
            [Format::Ell, Format::Csr, Format::Coo, Format::Den, Format::Dia]
        );
    }

    #[test]
    fn any_matrix_builds_every_format() {
        let t = TripletMatrix::from_entries(3, 3, vec![(0, 0, 1.0), (1, 2, 2.0), (2, 1, 3.0)])
            .unwrap()
            .compact();
        for f in Format::ALL {
            let m = AnyMatrix::from_triplets(f, &t);
            assert_eq!(m.format(), f, "format tag for {f}");
            assert_eq!(m.rows(), 3);
            assert_eq!(m.cols(), 3);
            assert_eq!(m.get(1, 2), 2.0, "get through {f}");
            assert_eq!(m.to_triplets().compact().entries(), t.entries());
        }
    }

    #[test]
    fn convert_between_formats_preserves_content() {
        let t =
            TripletMatrix::from_entries(2, 4, vec![(0, 3, 5.0), (1, 0, -1.0)]).unwrap().compact();
        let csr = AnyMatrix::from_triplets(Format::Csr, &t);
        let dia = csr.convert(Format::Dia);
        assert_eq!(dia.format(), Format::Dia);
        assert_eq!(dia.to_triplets().compact().entries(), t.entries());
    }
}
