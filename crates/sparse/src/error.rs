//! Error type shared by all format constructors and conversions.

use std::fmt;

/// Errors raised when constructing or converting matrices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SparseError {
    /// An entry's row or column index is outside the declared shape.
    IndexOutOfBounds {
        /// Row index of the offending entry.
        row: usize,
        /// Column index of the offending entry.
        col: usize,
        /// Declared number of rows.
        rows: usize,
        /// Declared number of columns.
        cols: usize,
    },
    /// The raw arrays handed to a constructor are mutually inconsistent
    /// (e.g. `indices.len() != values.len()` or a non-monotone row pointer).
    Inconsistent(String),
    /// Operand shapes do not match (e.g. SMSV with a vector of wrong dim).
    ShapeMismatch {
        /// Shape expected by the operation.
        expected: (usize, usize),
        /// Shape actually supplied.
        got: (usize, usize),
    },
    /// The matrix is empty where a non-empty one is required.
    Empty,
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseError::IndexOutOfBounds { row, col, rows, cols } => {
                write!(f, "entry ({row}, {col}) out of bounds for {rows}x{cols} matrix")
            }
            SparseError::Inconsistent(msg) => write!(f, "inconsistent arrays: {msg}"),
            SparseError::ShapeMismatch { expected, got } => write!(
                f,
                "shape mismatch: expected {}x{}, got {}x{}",
                expected.0, expected.1, got.0, got.1
            ),
            SparseError::Empty => write!(f, "matrix must be non-empty"),
        }
    }
}

impl std::error::Error for SparseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_out_of_bounds() {
        let e = SparseError::IndexOutOfBounds { row: 5, col: 7, rows: 4, cols: 4 };
        assert_eq!(e.to_string(), "entry (5, 7) out of bounds for 4x4 matrix");
    }

    #[test]
    fn display_shape_mismatch() {
        let e = SparseError::ShapeMismatch { expected: (2, 3), got: (3, 2) };
        assert_eq!(e.to_string(), "shape mismatch: expected 2x3, got 3x2");
    }

    #[test]
    fn display_inconsistent_and_empty() {
        assert!(SparseError::Inconsistent("ptr".into()).to_string().contains("ptr"));
        assert_eq!(SparseError::Empty.to_string(), "matrix must be non-empty");
    }
}
