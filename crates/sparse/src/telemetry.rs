//! Low-overhead SMSV telemetry.
//!
//! The reactive scheduler needs to know how fast the kernels *actually*
//! run, not just what the cost model predicts. [`SmsvCounters`] is a set of
//! per-format atomic counters — calls, nanoseconds, bytes touched — cheap
//! enough to leave on in production: one `Instant` pair and three relaxed
//! atomic adds per SMSV call. [`InstrumentedMatrix`] wraps an [`AnyMatrix`]
//! and feeds the counters from the hot path while delegating every kernel
//! to the statically dispatched inner format.

use crate::{
    AnyMatrix, Format, MatrixFormat, RowScratch, Scalar, SparseVec, SparseVecView, TripletMatrix,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Number of log2 buckets in the block-size histogram: bucket `k` counts
/// `smsv_block` calls with `2^k <= B < 2^(k+1)` (last bucket is open-ended).
pub const BLOCK_HIST_BUCKETS: usize = 8;

/// Index of a format in the counter arrays, in [`Format::ALL`] order.
#[inline]
pub fn format_index(format: Format) -> usize {
    Format::ALL.iter().position(|&f| f == format).expect("ALL covers every format")
}

/// Monotonic per-format totals for one kernel family.
#[derive(Debug, Default)]
pub struct FormatCounters {
    /// Number of kernel invocations.
    pub calls: AtomicU64,
    /// Total wall-clock nanoseconds inside the kernel.
    pub nanos: AtomicU64,
    /// Estimated bytes of matrix storage streamed (storage bytes × calls;
    /// one SMSV sweep touches the whole representation once).
    pub bytes: AtomicU64,
}

impl FormatCounters {
    #[inline]
    fn record(&self, nanos: u64, bytes: u64) {
        self.record_many(1, nanos, bytes);
    }

    /// Records `calls` logical kernel invocations that shared one timed
    /// region — how a blocked SMSV reports its B products.
    #[inline]
    fn record_many(&self, calls: u64, nanos: u64, bytes: u64) {
        self.calls.fetch_add(calls, Ordering::Relaxed);
        self.nanos.fetch_add(nanos, Ordering::Relaxed);
        self.bytes.fetch_add(bytes, Ordering::Relaxed);
    }
}

/// A point-in-time reading of one format's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CounterSample {
    /// Kernel invocations so far.
    pub calls: u64,
    /// Nanoseconds spent so far.
    pub nanos: u64,
    /// Bytes streamed so far.
    pub bytes: u64,
}

impl CounterSample {
    /// Element-wise difference `self - earlier`, saturating at zero.
    pub fn delta(&self, earlier: &CounterSample) -> CounterSample {
        CounterSample {
            calls: self.calls.saturating_sub(earlier.calls),
            nanos: self.nanos.saturating_sub(earlier.nanos),
            bytes: self.bytes.saturating_sub(earlier.bytes),
        }
    }

    /// Mean seconds per call, `None` when no calls were recorded.
    pub fn secs_per_call(&self) -> Option<f64> {
        (self.calls > 0).then(|| self.nanos as f64 * 1e-9 / self.calls as f64)
    }

    /// Streaming throughput in bytes/second, `None` when no time elapsed.
    pub fn bytes_per_sec(&self) -> Option<f64> {
        (self.nanos > 0).then(|| self.bytes as f64 / (self.nanos as f64 * 1e-9))
    }
}

/// Shared per-format SMSV counters. Cloning the `Arc` shares the totals;
/// all updates are relaxed atomics, so readers may lag by a call or two —
/// fine for scheduling, which acts on windows of thousands of calls.
#[derive(Debug, Default)]
pub struct SmsvCounters {
    by_format: [FormatCounters; Format::ALL.len()],
    /// Heap allocations the zero-copy engine skipped: one per borrowed row
    /// view or workspace-reusing kernel call that would previously have
    /// materialised an owned vector.
    allocs_avoided: AtomicU64,
    /// Histogram of `smsv_block` block sizes, log2-bucketed.
    block_hist: [AtomicU64; BLOCK_HIST_BUCKETS],
}

impl SmsvCounters {
    /// Fresh zeroed counters behind an `Arc`.
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Records one SMSV call in `format`.
    #[inline]
    pub fn record(&self, format: Format, nanos: u64, bytes: u64) {
        self.by_format[format_index(format)].record(nanos, bytes);
    }

    /// Records `calls` SMSV products served by one timed blocked kernel
    /// invocation in `format`.
    #[inline]
    pub fn record_many(&self, format: Format, calls: u64, nanos: u64, bytes: u64) {
        self.by_format[format_index(format)].record_many(calls, nanos, bytes);
    }

    /// Counts `n` heap allocations avoided by the zero-copy paths.
    #[inline]
    pub fn record_allocs_avoided(&self, n: u64) {
        self.allocs_avoided.fetch_add(n, Ordering::Relaxed);
    }

    /// Total heap allocations the zero-copy engine has avoided so far.
    pub fn allocs_avoided(&self) -> u64 {
        self.allocs_avoided.load(Ordering::Relaxed)
    }

    /// Records one `smsv_block` call covering `block` right-hand sides.
    #[inline]
    pub fn record_block(&self, block: usize) {
        let bucket = (usize::BITS - 1 - block.max(1).leading_zeros()) as usize;
        self.block_hist[bucket.min(BLOCK_HIST_BUCKETS - 1)].fetch_add(1, Ordering::Relaxed);
    }

    /// The block-size histogram: bucket `k` counts calls with
    /// `2^k <= B < 2^(k+1)` (last bucket open-ended).
    pub fn block_histogram(&self) -> [u64; BLOCK_HIST_BUCKETS] {
        let mut out = [0u64; BLOCK_HIST_BUCKETS];
        for (o, b) in out.iter_mut().zip(self.block_hist.iter()) {
            *o = b.load(Ordering::Relaxed);
        }
        out
    }

    /// Reads one format's totals.
    pub fn sample(&self, format: Format) -> CounterSample {
        let c = &self.by_format[format_index(format)];
        CounterSample {
            calls: c.calls.load(Ordering::Relaxed),
            nanos: c.nanos.load(Ordering::Relaxed),
            bytes: c.bytes.load(Ordering::Relaxed),
        }
    }

    /// Reads every format's totals, in [`Format::ALL`] order.
    pub fn sample_all(&self) -> [CounterSample; Format::ALL.len()] {
        let mut out = [CounterSample::default(); Format::ALL.len()];
        for (slot, &f) in out.iter_mut().zip(Format::ALL.iter()) {
            *slot = self.sample(f);
        }
        out
    }

    /// Total calls across every format.
    pub fn total_calls(&self) -> u64 {
        Format::ALL.iter().map(|&f| self.sample(f).calls).sum()
    }
}

/// A point-in-time copy of *every* counter an [`SmsvCounters`] holds:
/// per-format totals, allocations avoided, and the block-size histogram.
///
/// Snapshots are plain data, so they compose without touching the live
/// atomics: [`SmsvSnapshot::delta`] subtracts an earlier reading and
/// [`SmsvSnapshot::merge`] adds element-wise. An aggregator that keeps the
/// last snapshot per source and merges only the deltas counts every event
/// exactly once, no matter how often it polls — the pattern `dls-serve`
/// uses to fold per-model counters into one process-wide view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SmsvSnapshot {
    /// Per-format totals, in [`Format::ALL`] order.
    pub by_format: [CounterSample; Format::ALL.len()],
    /// Heap allocations avoided by the zero-copy paths.
    pub allocs_avoided: u64,
    /// Block-size histogram, log2-bucketed as in [`SmsvCounters`].
    pub block_hist: [u64; BLOCK_HIST_BUCKETS],
}

impl SmsvSnapshot {
    /// Element-wise difference `self - earlier`, saturating at zero.
    /// Both readings must come from the same (monotone) counters for the
    /// result to mean "what happened in between".
    pub fn delta(&self, earlier: &SmsvSnapshot) -> SmsvSnapshot {
        let mut out = SmsvSnapshot::default();
        for ((o, new), old) in
            out.by_format.iter_mut().zip(self.by_format.iter()).zip(earlier.by_format.iter())
        {
            *o = new.delta(old);
        }
        out.allocs_avoided = self.allocs_avoided.saturating_sub(earlier.allocs_avoided);
        for ((o, new), old) in
            out.block_hist.iter_mut().zip(self.block_hist.iter()).zip(earlier.block_hist.iter())
        {
            *o = new.saturating_sub(*old);
        }
        out
    }

    /// Element-wise accumulation of `other` into `self`. Merging is
    /// commutative and associative, so any fold order over a set of
    /// disjoint deltas yields the same aggregate.
    pub fn merge(&mut self, other: &SmsvSnapshot) {
        for (mine, theirs) in self.by_format.iter_mut().zip(other.by_format.iter()) {
            mine.calls += theirs.calls;
            mine.nanos += theirs.nanos;
            mine.bytes += theirs.bytes;
        }
        self.allocs_avoided += other.allocs_avoided;
        for (mine, theirs) in self.block_hist.iter_mut().zip(other.block_hist.iter()) {
            *mine += theirs;
        }
    }

    /// Reading for one format.
    pub fn sample(&self, format: Format) -> CounterSample {
        self.by_format[format_index(format)]
    }

    /// Total calls across every format.
    pub fn total_calls(&self) -> u64 {
        self.by_format.iter().map(|s| s.calls).sum()
    }

    /// Total `smsv_block` invocations that covered more than one
    /// right-hand side (buckets 1.., i.e. `B >= 2`).
    pub fn multi_vector_blocks(&self) -> u64 {
        self.block_hist[1..].iter().sum()
    }
}

impl SmsvCounters {
    /// Atomically-read copy of every counter (relaxed loads; readers may
    /// lag in-flight updates by a call, which the delta discipline absorbs).
    pub fn snapshot(&self) -> SmsvSnapshot {
        SmsvSnapshot {
            by_format: self.sample_all(),
            allocs_avoided: self.allocs_avoided(),
            block_hist: self.block_histogram(),
        }
    }

    /// Adds `other`'s *current totals* into `self`. Meaningful when `other`
    /// is retired (e.g. a model being unloaded) — for live sources, poll
    /// snapshots and merge deltas instead to avoid double counting.
    pub fn merge(&self, other: &SmsvCounters) {
        self.merge_snapshot(&other.snapshot());
    }

    /// Adds a snapshot (usually a delta) into these counters.
    pub fn merge_snapshot(&self, snap: &SmsvSnapshot) {
        for (&f, s) in Format::ALL.iter().zip(snap.by_format.iter()) {
            if s.calls > 0 || s.nanos > 0 || s.bytes > 0 {
                self.by_format[format_index(f)].record_many(s.calls, s.nanos, s.bytes);
            }
        }
        if snap.allocs_avoided > 0 {
            self.record_allocs_avoided(snap.allocs_avoided);
        }
        for (bucket, &n) in self.block_hist.iter().zip(snap.block_hist.iter()) {
            if n > 0 {
                bucket.fetch_add(n, Ordering::Relaxed);
            }
        }
    }
}

/// An [`AnyMatrix`] that meters its SMSV calls into shared [`SmsvCounters`].
///
/// The SMSV kernel family (`smsv`, `smsv_view`, `smsv_block`) — what the
/// SMO loop hammers — is timed; `row_view_in` and `smsv_view` additionally
/// bump the allocs-avoided counter, and `smsv_block` feeds the block-size
/// histogram. The remaining trait methods delegate untouched. The per-call
/// bytes estimate is precomputed at wrap time so the hot path adds no
/// traversal.
#[derive(Debug, Clone)]
pub struct InstrumentedMatrix {
    inner: AnyMatrix,
    counters: Arc<SmsvCounters>,
    smsv_bytes: u64,
}

impl InstrumentedMatrix {
    /// Wraps `inner`, metering into `counters`.
    pub fn new(inner: AnyMatrix, counters: Arc<SmsvCounters>) -> Self {
        let smsv_bytes = inner.storage_bytes() as u64;
        Self { inner, counters, smsv_bytes }
    }

    /// The wrapped matrix.
    #[inline]
    pub fn inner(&self) -> &AnyMatrix {
        &self.inner
    }

    /// The shared counters this wrapper feeds.
    #[inline]
    pub fn counters(&self) -> &Arc<SmsvCounters> {
        &self.counters
    }

    /// Unwraps, yielding the inner matrix.
    pub fn into_inner(self) -> AnyMatrix {
        self.inner
    }

    /// Re-encodes the wrapped matrix in another format, keeping the same
    /// counters. This is the mid-training conversion the reactive
    /// scheduler performs.
    pub fn convert(&self, format: Format) -> Self {
        Self::new(self.inner.convert(format), Arc::clone(&self.counters))
    }
}

impl MatrixFormat for InstrumentedMatrix {
    #[inline]
    fn rows(&self) -> usize {
        self.inner.rows()
    }

    #[inline]
    fn cols(&self) -> usize {
        self.inner.cols()
    }

    #[inline]
    fn nnz(&self) -> usize {
        self.inner.nnz()
    }

    #[inline]
    fn format(&self) -> Format {
        self.inner.format()
    }

    #[inline]
    fn get(&self, i: usize, j: usize) -> Scalar {
        self.inner.get(i, j)
    }

    #[inline]
    fn row_sparse(&self, i: usize) -> SparseVec {
        self.inner.row_sparse(i)
    }

    #[inline]
    fn row_view_in<'a>(&'a self, i: usize, scratch: &'a mut RowScratch) -> SparseVecView<'a> {
        // Each borrowed view replaces a `row_sparse` heap allocation.
        self.counters.record_allocs_avoided(1);
        self.inner.row_view_in(i, scratch)
    }

    fn smsv(&self, v: &SparseVec, out: &mut [Scalar]) {
        let start = Instant::now();
        self.inner.smsv(v, out);
        let nanos = start.elapsed().as_nanos() as u64;
        self.counters.record(self.inner.format(), nanos, self.smsv_bytes);
    }

    fn smsv_view(&self, v: SparseVecView<'_>, out: &mut [Scalar], workspace: &mut Vec<Scalar>) {
        let start = Instant::now();
        self.inner.smsv_view(v, out, workspace);
        let nanos = start.elapsed().as_nanos() as u64;
        self.counters.record(self.inner.format(), nanos, self.smsv_bytes);
        // The reused workspace replaces `smsv`'s internal scratch allocation.
        self.counters.record_allocs_avoided(1);
    }

    fn smsv_block(&self, vs: &[SparseVec], out: &mut [Scalar], workspace: &mut Vec<Scalar>) {
        let start = Instant::now();
        self.inner.smsv_block(vs, out, workspace);
        let nanos = start.elapsed().as_nanos() as u64;
        // Blocked formats stream the matrix once per chunk; fallback
        // formats stream it once per right-hand side.
        let sweeps =
            if self.inner.format().has_blocked_kernel() { 1 } else { vs.len().max(1) as u64 };
        self.counters.record_many(
            self.inner.format(),
            vs.len() as u64,
            nanos,
            self.smsv_bytes * sweeps,
        );
        self.counters.record_block(vs.len());
    }

    #[inline]
    fn spmv(&self, x: &[Scalar], out: &mut [Scalar]) {
        self.inner.spmv(x, out)
    }

    #[inline]
    fn row_norms_sq(&self, out: &mut [Scalar]) {
        self.inner.row_norms_sq(out)
    }

    #[inline]
    fn to_triplets(&self) -> TripletMatrix {
        self.inner.to_triplets()
    }

    #[inline]
    fn storage_bytes(&self) -> usize {
        self.inner.storage_bytes()
    }

    #[inline]
    fn storage_elems(&self) -> usize {
        self.inner.storage_elems()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TripletMatrix;

    fn small() -> TripletMatrix {
        TripletMatrix::from_entries(4, 4, vec![(0, 0, 1.0), (1, 1, 2.0), (2, 3, 3.0), (3, 2, 4.0)])
            .unwrap()
            .compact()
    }

    #[test]
    fn smsv_calls_and_bytes_are_counted() {
        let t = small();
        let counters = SmsvCounters::shared();
        let m =
            InstrumentedMatrix::new(AnyMatrix::from_triplets(Format::Csr, &t), counters.clone());
        let v = m.row_sparse(0);
        let mut out = vec![0.0; 4];
        for _ in 0..5 {
            m.smsv(&v, &mut out);
        }
        let s = counters.sample(Format::Csr);
        assert_eq!(s.calls, 5);
        assert_eq!(s.bytes, 5 * m.storage_bytes() as u64);
        assert_eq!(counters.sample(Format::Coo).calls, 0);
        assert_eq!(counters.total_calls(), 5);
    }

    #[test]
    fn view_paths_count_avoided_allocations() {
        let t = small();
        let counters = SmsvCounters::shared();
        let m =
            InstrumentedMatrix::new(AnyMatrix::from_triplets(Format::Csr, &t), counters.clone());
        let mut scratch = RowScratch::new();
        let mut ws = Vec::new();
        let mut out = vec![0.0; 4];
        let v = m.row_sparse(0);
        let view = m.row_view_in(0, &mut scratch).to_owned();
        assert_eq!(view.indices(), v.indices());
        m.smsv_view(v.as_view(), &mut out, &mut ws);
        // One avoided alloc from row_view_in, one from smsv_view.
        assert_eq!(counters.allocs_avoided(), 2);
        assert_eq!(counters.sample(Format::Csr).calls, 1);
    }

    #[test]
    fn block_histogram_buckets_by_power_of_two() {
        let t = small();
        let counters = SmsvCounters::shared();
        let m =
            InstrumentedMatrix::new(AnyMatrix::from_triplets(Format::Csr, &t), counters.clone());
        let vs: Vec<SparseVec> = (0..4).map(|i| m.row_sparse(i)).collect();
        let mut ws = Vec::new();
        let mut out = vec![0.0; 4 * 4];
        m.smsv_block(&vs, &mut out, &mut ws);
        m.smsv_block(&vs[..1], &mut out[..4], &mut ws);
        let hist = counters.block_histogram();
        assert_eq!(hist[2], 1); // block of 4 -> bucket log2(4) = 2
        assert_eq!(hist[0], 1); // block of 1 -> bucket 0
                                // Blocked CSR kernel: one matrix sweep, but 4 + 1 SMSV calls.
        assert_eq!(counters.sample(Format::Csr).calls, 5);
        assert_eq!(counters.sample(Format::Csr).bytes, 2 * m.storage_bytes() as u64);
    }

    #[test]
    fn results_match_uninstrumented() {
        let t = small();
        let plain = AnyMatrix::from_triplets(Format::Ell, &t);
        let metered = InstrumentedMatrix::new(plain.clone(), SmsvCounters::shared());
        let v = plain.row_sparse(2);
        let (mut a, mut b) = (vec![0.0; 4], vec![0.0; 4]);
        plain.smsv(&v, &mut a);
        metered.smsv(&v, &mut b);
        assert_eq!(a, b);
        assert_eq!(metered.format(), Format::Ell);
        assert_eq!(metered.nnz(), plain.nnz());
    }

    #[test]
    fn convert_keeps_counters_and_content() {
        let t = small();
        let counters = SmsvCounters::shared();
        let m =
            InstrumentedMatrix::new(AnyMatrix::from_triplets(Format::Dia, &t), counters.clone());
        let v = m.row_sparse(0);
        let mut out = vec![0.0; 4];
        m.smsv(&v, &mut out);
        let m2 = m.convert(Format::Csr);
        m2.smsv(&v, &mut out);
        assert_eq!(m2.format(), Format::Csr);
        assert_eq!(m2.to_triplets().compact().entries(), t.entries());
        // Both formats metered into the same shared counters.
        assert_eq!(counters.sample(Format::Dia).calls, 1);
        assert_eq!(counters.sample(Format::Csr).calls, 1);
        assert!(Arc::ptr_eq(m.counters(), m2.counters()));
    }

    #[test]
    fn delta_and_rates() {
        let earlier = CounterSample { calls: 10, nanos: 1_000, bytes: 4_000 };
        let later = CounterSample { calls: 30, nanos: 5_000, bytes: 12_000 };
        let d = later.delta(&earlier);
        assert_eq!(d, CounterSample { calls: 20, nanos: 4_000, bytes: 8_000 });
        let spc = d.secs_per_call().unwrap();
        assert!((spc - 2e-7).abs() < 1e-15, "200 ns per call, got {spc}");
        assert_eq!(CounterSample::default().secs_per_call(), None);
        assert_eq!(CounterSample::default().bytes_per_sec(), None);
        let rate = d.bytes_per_sec().unwrap();
        assert!((rate - 8_000.0 / 4e-6).abs() < 1e-3);
    }

    /// Counters with a distinctive, per-source pattern in every field.
    fn loaded_counters(seed: u64) -> SmsvCounters {
        let c = SmsvCounters::default();
        for (k, &f) in Format::ALL.iter().enumerate() {
            let k = k as u64 + 1;
            for _ in 0..(seed % 3 + 1) {
                c.record(f, seed * 10 + k, seed * 100 + k);
            }
        }
        c.record_allocs_avoided(seed + 1);
        c.record_block((seed as usize % 6) + 1);
        c.record_block(1);
        c
    }

    #[test]
    fn snapshot_delta_isolates_new_activity() {
        let t = small();
        let counters = SmsvCounters::shared();
        let m =
            InstrumentedMatrix::new(AnyMatrix::from_triplets(Format::Csr, &t), counters.clone());
        let v = m.row_sparse(0);
        let mut out = vec![0.0; 4];
        m.smsv(&v, &mut out);
        let first = counters.snapshot();
        m.smsv(&v, &mut out);
        m.smsv(&v, &mut out);
        let second = counters.snapshot();
        let d = second.delta(&first);
        assert_eq!(d.sample(Format::Csr).calls, 2);
        assert_eq!(first.sample(Format::Csr).calls, 1);
        assert_eq!(second.total_calls(), 3);
        // Self-delta is zero everywhere.
        assert_eq!(second.delta(&second), SmsvSnapshot::default());
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let (a, b, c) = (
            loaded_counters(1).snapshot(),
            loaded_counters(2).snapshot(),
            loaded_counters(3).snapshot(),
        );
        // (a + b) + c
        let mut left = SmsvSnapshot::default();
        left.merge(&a);
        left.merge(&b);
        let mut left_total = left;
        left_total.merge(&c);
        // a + (b + c)
        let mut right = SmsvSnapshot::default();
        right.merge(&b);
        right.merge(&c);
        let mut right_total = a;
        right_total.merge(&right);
        assert_eq!(left_total, right_total);
        // Commutativity: c + (a + b).
        let mut flipped = c;
        flipped.merge(&left);
        assert_eq!(flipped, left_total);
    }

    #[test]
    fn delta_merging_never_double_counts() {
        // The serve aggregation pattern: poll two live sources repeatedly,
        // merging only deltas; the aggregate must equal the final totals.
        let sources = [loaded_counters(4), loaded_counters(7)];
        let global = SmsvCounters::default();
        let mut last = [SmsvSnapshot::default(); 2];
        for round in 0..3 {
            for (src, last) in sources.iter().zip(last.iter_mut()) {
                if round > 0 {
                    src.record(Format::Ell, 5, 9); // new activity between polls
                    src.record_block(4);
                }
                let now = src.snapshot();
                global.merge_snapshot(&now.delta(last));
                *last = now;
            }
        }
        let mut expected = sources[0].snapshot();
        expected.merge(&sources[1].snapshot());
        assert_eq!(global.snapshot(), expected);
        assert!(expected.multi_vector_blocks() >= 4); // the B=4 blocks recorded above
    }

    #[test]
    fn counters_merge_folds_retired_totals() {
        let a = loaded_counters(5);
        let b = loaded_counters(6);
        let mut expected = a.snapshot();
        expected.merge(&b.snapshot());
        a.merge(&b);
        assert_eq!(a.snapshot(), expected);
    }

    #[test]
    fn format_index_is_a_bijection() {
        let mut seen = [false; Format::ALL.len()];
        for f in Format::ALL {
            let i = format_index(f);
            assert!(!seen[i]);
            seen[i] = true;
        }
    }
}
