//! The nine influencing parameters of the data matrix (paper Table IV).
//!
//! These are the inputs to the runtime decision system in `dls-core`:
//!
//! | parameter | description                       | formula                      |
//! |-----------|-----------------------------------|------------------------------|
//! | `m`       | number of rows (samples)          | —                            |
//! | `n`       | number of columns (features)      | max feature index            |
//! | `nnz`     | number of non-zero elements       | Σ dim_i                      |
//! | `ndig`    | number of occupied diagonals      | —                            |
//! | `dnnz`    | non-zeros per diagonal            | nnz / ndig                   |
//! | `mdim`    | maximum non-zeros in a row        | max dim_i                    |
//! | `adim`    | average non-zeros in a row        | nnz / M                      |
//! | `vdim`    | variance of dim                   | Σ (dim_i − adim)² / M        |
//! | `density` | ratio of nnz to all elements      | nnz / (M·N)                  |

use crate::{MatrixFormat, TripletMatrix};

/// The influencing parameters extracted from a data matrix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatrixFeatures {
    /// Number of rows (samples), `M`.
    pub m: usize,
    /// Number of columns (features), `N`.
    pub n: usize,
    /// Number of non-zero elements.
    pub nnz: usize,
    /// Number of occupied (non-empty) diagonals.
    pub ndig: usize,
    /// Average non-zeros per occupied diagonal: `nnz / ndig`.
    pub dnnz: f64,
    /// Maximum row non-zero count, `max dim_i`.
    pub mdim: usize,
    /// Average row non-zero count, `nnz / M`.
    pub adim: f64,
    /// Population variance of the row non-zero counts.
    pub vdim: f64,
    /// `nnz / (M * N)`.
    pub density: f64,
}

impl MatrixFeatures {
    /// Extracts all nine parameters in one pass over the triplets.
    pub fn from_triplets(t: &TripletMatrix) -> Self {
        let m = t.rows();
        let n = t.cols();
        let nnz = if t.is_compact() { t.nnz() } else { t.clone().compact().nnz() };
        let counts = t.row_counts();

        // Occupied diagonals: diagonal id of (r, c) is c - r, shifted to be
        // non-negative; a bitset over the M + N - 1 possible diagonals.
        let n_diag_slots = if m + n == 0 { 0 } else { m + n - 1 };
        let mut seen = vec![false; n_diag_slots];
        let mut ndig = 0usize;
        for &(r, c, _) in t.entries() {
            let d = c + (m - 1) - r;
            if !seen[d] {
                seen[d] = true;
                ndig += 1;
            }
        }

        let mdim = counts.iter().copied().max().unwrap_or(0);
        let adim = if m == 0 { 0.0 } else { nnz as f64 / m as f64 };
        let vdim = if m == 0 {
            0.0
        } else {
            counts
                .iter()
                .map(|&c| {
                    let d = c as f64 - adim;
                    d * d
                })
                .sum::<f64>()
                / m as f64
        };
        let dnnz = if ndig == 0 { 0.0 } else { nnz as f64 / ndig as f64 };
        let density = if m * n == 0 { 0.0 } else { nnz as f64 / (m as f64 * n as f64) };

        Self { m, n, nnz, ndig, dnnz, mdim, adim, vdim, density }
    }

    /// Extracts the parameters from any stored matrix via its triplet form.
    pub fn from_matrix<M: MatrixFormat>(matrix: &M) -> Self {
        Self::from_triplets(&matrix.to_triplets().compact())
    }

    /// Coefficient of variation of the row lengths (`sqrt(vdim) / adim`),
    /// a scale-free imbalance measure used by the decision rules.
    pub fn row_imbalance(&self) -> f64 {
        if self.adim == 0.0 {
            0.0
        } else {
            self.vdim.sqrt() / self.adim
        }
    }

    /// True when every row has the same non-zero count (`vdim == 0`), the
    /// regime where ELL stores no padding.
    pub fn is_row_uniform(&self) -> bool {
        self.vdim == 0.0
    }

    /// Fraction of ELL storage that would be padding: `1 - adim / mdim`.
    pub fn ell_padding_ratio(&self) -> f64 {
        if self.mdim == 0 {
            0.0
        } else {
            1.0 - self.adim / self.mdim as f64
        }
    }

    /// Fraction of DIA storage that would be padding: `1 - dnnz / min(M,N)`
    /// (each stored diagonal is padded to the full row count).
    pub fn dia_padding_ratio(&self) -> f64 {
        let cap = self.m.min(self.n) as f64;
        if cap == 0.0 {
            0.0
        } else {
            (1.0 - self.dnnz / cap).max(0.0)
        }
    }
}

impl std::fmt::Display for MatrixFeatures {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "M={} N={} nnz={} ndig={} dnnz={:.2} mdim={} adim={:.2} vdim={:.3} density={:.3}",
            self.m,
            self.n,
            self.nnz,
            self.ndig,
            self.dnnz,
            self.mdim,
            self.adim,
            self.vdim,
            self.density
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CsrMatrix;

    #[test]
    fn full_dense_matrix_features() {
        // 2x3 all ones: nnz=6, diagonals = M+N-1 = 4, mdim=adim=3, vdim=0.
        let data = vec![1.0; 6];
        let t = TripletMatrix::from_dense(2, 3, &data);
        let f = MatrixFeatures::from_triplets(&t);
        assert_eq!(f.m, 2);
        assert_eq!(f.n, 3);
        assert_eq!(f.nnz, 6);
        assert_eq!(f.ndig, 4);
        assert_eq!(f.dnnz, 1.5);
        assert_eq!(f.mdim, 3);
        assert_eq!(f.adim, 3.0);
        assert_eq!(f.vdim, 0.0);
        assert_eq!(f.density, 1.0);
        assert!(f.is_row_uniform());
        assert_eq!(f.ell_padding_ratio(), 0.0);
    }

    #[test]
    fn single_diagonal_matrix() {
        let mut t = TripletMatrix::new(4, 4);
        for i in 0..4 {
            t.push(i, i, 1.0);
        }
        let f = MatrixFeatures::from_triplets(&t.compact());
        assert_eq!(f.ndig, 1);
        assert_eq!(f.dnnz, 4.0);
        assert_eq!(f.dia_padding_ratio(), 0.0);
        assert_eq!(f.density, 0.25);
    }

    #[test]
    fn imbalanced_rows_have_high_vdim() {
        // Row 0 has 4 nnz, rows 1-3 have 0: adim=1, vdim = (9 + 3*1)/4 = 3.
        let t = TripletMatrix::from_entries(
            4,
            4,
            vec![(0, 0, 1.0), (0, 1, 1.0), (0, 2, 1.0), (0, 3, 1.0)],
        )
        .unwrap()
        .compact();
        let f = MatrixFeatures::from_triplets(&t);
        assert_eq!(f.mdim, 4);
        assert_eq!(f.adim, 1.0);
        assert_eq!(f.vdim, 3.0);
        assert!(f.row_imbalance() > 1.0);
        assert_eq!(f.ell_padding_ratio(), 0.75);
    }

    #[test]
    fn from_matrix_agrees_with_from_triplets() {
        let t = TripletMatrix::from_entries(
            3,
            5,
            vec![(0, 1, 2.0), (1, 1, 3.0), (2, 4, 4.0), (2, 0, 5.0)],
        )
        .unwrap()
        .compact();
        let direct = MatrixFeatures::from_triplets(&t);
        let via_csr = MatrixFeatures::from_matrix(&CsrMatrix::from_triplets(&t));
        assert_eq!(direct, via_csr);
    }

    #[test]
    fn empty_matrix_is_all_zero() {
        let f = MatrixFeatures::from_triplets(&TripletMatrix::new(3, 3));
        assert_eq!(f.nnz, 0);
        assert_eq!(f.ndig, 0);
        assert_eq!(f.dnnz, 0.0);
        assert_eq!(f.vdim, 0.0);
        assert_eq!(f.row_imbalance(), 0.0);
    }

    #[test]
    fn display_contains_all_fields() {
        let f = MatrixFeatures::from_triplets(&TripletMatrix::from_dense(1, 1, &[1.0]));
        let s = f.to_string();
        for key in ["M=", "N=", "nnz=", "ndig=", "dnnz=", "mdim=", "adim=", "vdim=", "density="] {
            assert!(s.contains(key), "missing {key} in {s}");
        }
    }
}
