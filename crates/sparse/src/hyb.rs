//! HYB: hybrid ELL + COO storage.
//!
//! The classic remedy to ELL's Figure-3 pathology: store each row's first
//! `k` non-zeros in an ELL slab (k chosen so most rows fit entirely) and
//! spill the tail of longer rows to a COO list. Bounded padding *and*
//! bounded irregularity — the format NVIDIA's cusp library popularised, a
//! natural member of the paper's "derived from these basic formats" family.

use crate::format::{ensure_workspace, MAX_SMSV_BLOCK};
use crate::{
    CooMatrix, EllMatrix, Format, MatrixFormat, RowScratch, Scalar, SparseVec, SparseVecView,
    TripletMatrix,
};

/// Hybrid matrix: an ELL slab of width `k` plus a COO spill list.
#[derive(Debug, Clone, PartialEq)]
pub struct HybMatrix {
    ell: EllMatrix,
    coo: CooMatrix,
    /// The slab width used for the split.
    width: usize,
}

impl HybMatrix {
    /// Builds with an automatically chosen slab width: the smallest `k`
    /// covering at least ~90% of the non-zeros in the slab (a standard
    /// heuristic — wide enough to keep the COO tail short, narrow enough
    /// to avoid ELL padding).
    pub fn from_triplets(t: &TripletMatrix) -> Self {
        let counts = t.row_counts();
        let width = auto_width(&counts, 0.9);
        Self::from_triplets_with_width(t, width)
    }

    /// Builds with an explicit slab width.
    pub fn from_triplets_with_width(t: &TripletMatrix, width: usize) -> Self {
        let t = if t.is_compact() { t.clone() } else { t.clone().compact() };
        let mut slab = TripletMatrix::with_capacity(t.rows(), t.cols(), t.nnz());
        let mut spill = TripletMatrix::new(t.rows(), t.cols());
        let mut fill = vec![0usize; t.rows()];
        for &(r, c, v) in t.entries() {
            if fill[r] < width {
                slab.push(r, c, v);
                fill[r] += 1;
            } else {
                spill.push(r, c, v);
            }
        }
        Self { ell: EllMatrix::from_triplets(&slab), coo: CooMatrix::from_triplets(&spill), width }
    }

    /// The slab width.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Non-zeros stored in the regular ELL slab.
    #[inline]
    pub fn slab_nnz(&self) -> usize {
        self.ell.nnz()
    }

    /// Non-zeros spilled to the COO tail.
    #[inline]
    pub fn spill_nnz(&self) -> usize {
        self.coo.nnz()
    }
}

/// Smallest width whose slab captures at least `coverage` of all nnz.
fn auto_width(counts: &[usize], coverage: f64) -> usize {
    let total: usize = counts.iter().sum();
    if total == 0 {
        return 0;
    }
    let max = counts.iter().copied().max().unwrap_or(0);
    let mut hist = vec![0usize; max + 1];
    for &c in counts {
        hist[c] += 1;
    }
    // captured(k) = Σ_rows min(count, k); grow k until coverage met.
    let mut captured = 0usize;
    let mut rows_longer = counts.len();
    for k in 1..=max {
        rows_longer -= hist[k - 1];
        captured += rows_longer;
        if captured as f64 >= coverage * total as f64 {
            return k;
        }
    }
    max
}

impl MatrixFormat for HybMatrix {
    fn rows(&self) -> usize {
        self.ell.rows()
    }

    fn cols(&self) -> usize {
        self.ell.cols()
    }

    fn nnz(&self) -> usize {
        self.ell.nnz() + self.coo.nnz()
    }

    fn format(&self) -> Format {
        Format::Hyb
    }

    fn get(&self, i: usize, j: usize) -> Scalar {
        let v = self.ell.get(i, j);
        if v != 0.0 {
            v
        } else {
            self.coo.get(i, j)
        }
    }

    fn row_sparse(&self, i: usize) -> SparseVec {
        let a = self.ell.row_sparse(i);
        let b = self.coo.row_sparse(i);
        if b.nnz() == 0 {
            return a;
        }
        let mut pairs: Vec<(usize, Scalar)> = a.iter().chain(b.iter()).collect();
        pairs.sort_unstable_by_key(|p| p.0);
        SparseVec::new(
            self.cols(),
            pairs.iter().map(|p| p.0).collect(),
            pairs.iter().map(|p| p.1).collect(),
        )
    }

    fn row_view_in<'a>(&'a self, i: usize, scratch: &'a mut RowScratch) -> SparseVecView<'a> {
        // The slab holds each row's *first* `width` entries in ascending
        // column order and the spill holds the tail, so slab columns all
        // precede spill columns: pushing slab then spill stays sorted.
        scratch.clear();
        for k in 0..self.ell.width() {
            let c = self.ell.slot_col(i, k);
            if c == usize::MAX {
                break;
            }
            scratch.push(c, self.ell.slot_val(i, k));
        }
        let range = self.coo.row_range(i);
        for k in range {
            scratch.push(self.coo.col_idx()[k], self.coo.values()[k]);
        }
        scratch.view(self.cols())
    }

    fn smsv(&self, v: &SparseVec, out: &mut [Scalar]) {
        let mut workspace = Vec::new();
        self.smsv_view(v.as_view(), out, &mut workspace);
    }

    fn smsv_view(&self, v: SparseVecView<'_>, out: &mut [Scalar], workspace: &mut Vec<Scalar>) {
        self.ell.smsv_view(v, out, workspace);
        if self.coo.nnz() > 0 {
            // Accumulate the spill straight into `out` (no tail buffer):
            // re-scatter v and run the flat COO pass additively.
            let ws = ensure_workspace(workspace, self.cols());
            v.scatter(ws);
            for k in 0..self.coo.nnz() {
                out[self.coo.row_idx()[k]] += self.coo.values()[k] * ws[self.coo.col_idx()[k]];
            }
            v.unscatter(ws);
        }
    }

    fn smsv_block(&self, vs: &[SparseVec], out: &mut [Scalar], workspace: &mut Vec<Scalar>) {
        let rows = self.rows();
        let cols = self.cols();
        assert_eq!(out.len(), rows * vs.len(), "smsv_block output length mismatch");
        // Blocked kernel with ELL+COO split reuse: one interleaved scatter
        // of the whole chunk feeds both halves, the slab's column-major
        // sweep runs once per chunk (amortising the padded-index stream
        // over cb right-hand sides), and the spill adds its tail into the
        // same interleaved accumulator — slab entries of a row precede its
        // spill entries, matching the per-vector accumulation order
        // bit-for-bit.
        let mut b0 = 0;
        while b0 < vs.len() {
            let cb = (vs.len() - b0).min(MAX_SMSV_BLOCK);
            if cb == 1 {
                // A single lane degenerates to the per-vector sweep; skip
                // the interleaved workspace and its writeback entirely.
                let dst = &mut out[b0 * rows..(b0 + 1) * rows];
                self.smsv_view(vs[b0].as_view(), dst, workspace);
                b0 += 1;
                continue;
            }
            let chunk = &vs[b0..b0 + cb];
            // Scatter region carries one extra all-zero column at index
            // `cols` for the slab sweep's branch-free PAD select.
            let ws = ensure_workspace(workspace, (cols + 1 + rows) * cb);
            debug_assert!(ws.iter().all(|&w| w == 0.0));
            let (scat, acc) = ws.split_at_mut((cols + 1) * cb);
            for (bi, v) in chunk.iter().enumerate() {
                assert_eq!(v.dim(), cols, "SMSV vector dimension mismatch");
                for (j, x) in v.iter() {
                    scat[j * cb + bi] = x;
                }
            }
            self.ell.blocked_slab_sweep(cb, scat, acc);
            for k in 0..self.coo.nnz() {
                let x = self.coo.values()[k];
                let lane = &scat[self.coo.col_idx()[k] * cb..];
                let a = &mut acc[self.coo.row_idx()[k] * cb..];
                for bi in 0..cb {
                    a[bi] += x * lane[bi];
                }
            }
            for i in 0..rows {
                for bi in 0..cb {
                    out[(b0 + bi) * rows + i] = acc[i * cb + bi];
                    acc[i * cb + bi] = 0.0;
                }
            }
            for (bi, v) in chunk.iter().enumerate() {
                for &j in v.indices() {
                    scat[j * cb + bi] = 0.0;
                }
            }
            b0 += cb;
        }
    }

    fn spmv(&self, x: &[Scalar], out: &mut [Scalar]) {
        self.ell.spmv(x, out);
        if self.coo.nnz() > 0 {
            let mut tail = vec![0.0; out.len()];
            self.coo.spmv(x, &mut tail);
            for (o, t) in out.iter_mut().zip(&tail) {
                *o += t;
            }
        }
    }

    fn row_norms_sq(&self, out: &mut [Scalar]) {
        self.ell.row_norms_sq(out);
        if self.coo.nnz() > 0 {
            let mut tail = vec![0.0; out.len()];
            self.coo.row_norms_sq(&mut tail);
            for (o, t) in out.iter_mut().zip(&tail) {
                *o += t;
            }
        }
    }

    fn to_triplets(&self) -> TripletMatrix {
        let mut t = self.ell.to_triplets();
        for &(r, c, v) in self.coo.to_triplets().entries() {
            t.push(r, c, v);
        }
        t.compact()
    }

    fn storage_bytes(&self) -> usize {
        self.ell.storage_bytes() + self.coo.storage_bytes()
    }

    fn storage_elems(&self) -> usize {
        self.ell.storage_elems() + self.coo.storage_elems()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One long row (8 nnz) among short rows (1 nnz each).
    fn skewed() -> TripletMatrix {
        let mut t = TripletMatrix::new(5, 10);
        for j in 0..8 {
            t.push(0, j, (j + 1) as f64);
        }
        for i in 1..5 {
            t.push(i, i, 1.0);
        }
        t.compact()
    }

    #[test]
    fn auto_width_bounds_padding() {
        let m = HybMatrix::from_triplets(&skewed());
        // 12 nnz total: slab must capture >= 90% only when width is large,
        // but the spill path must exist for the 8-long row if width < 8.
        assert_eq!(m.slab_nnz() + m.spill_nnz(), 12);
        assert!(m.width() >= 1);
    }

    #[test]
    fn explicit_width_splits_exactly() {
        let m = HybMatrix::from_triplets_with_width(&skewed(), 2);
        assert_eq!(m.width(), 2);
        // Row 0 contributes 2 to the slab, 6 to the spill.
        assert_eq!(m.slab_nnz(), 2 + 4);
        assert_eq!(m.spill_nnz(), 6);
        // ELL padded storage is bounded by 2 slots per row.
        assert_eq!(m.storage_elems(), 2 * 5 * 2 + 3 * 6);
    }

    #[test]
    fn get_checks_both_halves() {
        let m = HybMatrix::from_triplets_with_width(&skewed(), 2);
        assert_eq!(m.get(0, 0), 1.0); // slab
        assert_eq!(m.get(0, 7), 8.0); // spill
        assert_eq!(m.get(0, 9), 0.0);
        assert_eq!(m.get(3, 3), 1.0);
    }

    #[test]
    fn smsv_sums_slab_and_spill() {
        let t = skewed();
        let m = HybMatrix::from_triplets_with_width(&t, 2);
        let v = SparseVec::new(10, (0..10).collect(), vec![1.0; 10]);
        let mut out = vec![0.0; 5];
        m.smsv(&v, &mut out);
        assert_eq!(out, vec![36.0, 1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn row_extraction_merges_sorted() {
        let m = HybMatrix::from_triplets_with_width(&skewed(), 3);
        let r = m.row_sparse(0);
        assert_eq!(r.indices(), &[0, 1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(r.values()[7], 8.0);
    }

    #[test]
    fn triplet_round_trip() {
        let t = skewed();
        for width in [1, 2, 4, 8] {
            let m = HybMatrix::from_triplets_with_width(&t, width);
            assert_eq!(m.to_triplets().entries(), t.entries(), "width {width}");
        }
    }

    #[test]
    fn hyb_storage_beats_pure_ell_on_skewed_rows() {
        use crate::EllMatrix;
        let t = skewed();
        let hyb = HybMatrix::from_triplets_with_width(&t, 1);
        let ell = EllMatrix::from_triplets(&t);
        assert!(
            hyb.storage_elems() < ell.storage_elems(),
            "hyb {} vs ell {}",
            hyb.storage_elems(),
            ell.storage_elems()
        );
    }

    #[test]
    fn empty_matrix() {
        let m = HybMatrix::from_triplets(&TripletMatrix::new(3, 3));
        assert_eq!(m.nnz(), 0);
        let mut out = vec![1.0; 3];
        m.smsv(&SparseVec::zeros(3), &mut out);
        assert_eq!(out, vec![0.0; 3]);
    }
}
