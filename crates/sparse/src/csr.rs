//! CSR: Compressed Sparse Row.
//!
//! The format LIBSVM fixes for every dataset. Stores `nnz` values, `nnz`
//! column indices and `M + 1` row pointers, so computation and memory
//! traffic are Θ(nnz). Weakness (paper §III-B, Fig. 4): when `dim_i` varies
//! strongly between rows (`vdim` large), fixed-width SIMD lanes processing
//! rows in lockstep idle on short rows — modelled here by the
//! [`CsrMatrix::smsv_lanes`] kernel, which mirrors the vectorised row-lockstep
//! kernels used on Xeon Phi.

// Kernel loops index row_ptr ranges and the output in lockstep; the
// indexed form is the clearest statement of the per-row sweep.
#![allow(clippy::needless_range_loop)]

use crate::format::{ensure_workspace, MAX_SMSV_BLOCK};
use crate::{Format, MatrixFormat, RowScratch, Scalar, SparseVec, SparseVecView, TripletMatrix};

/// Compressed Sparse Row matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    /// `row_ptr[i]..row_ptr[i+1]` is the index range of row `i`.
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<Scalar>,
}

impl CsrMatrix {
    /// Builds from raw CSR arrays, validating every invariant.
    pub fn new(
        rows: usize,
        cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<usize>,
        values: Vec<Scalar>,
    ) -> Result<Self, crate::SparseError> {
        use crate::SparseError::Inconsistent;
        if row_ptr.len() != rows + 1 {
            return Err(Inconsistent(format!(
                "row_ptr length {} != rows + 1 = {}",
                row_ptr.len(),
                rows + 1
            )));
        }
        if row_ptr[0] != 0 || *row_ptr.last().unwrap() != values.len() {
            return Err(Inconsistent("row_ptr endpoints".into()));
        }
        if col_idx.len() != values.len() {
            return Err(Inconsistent("col_idx/values length mismatch".into()));
        }
        if row_ptr.windows(2).any(|w| w[0] > w[1]) {
            return Err(Inconsistent("row_ptr not monotone".into()));
        }
        for i in 0..rows {
            let r = &col_idx[row_ptr[i]..row_ptr[i + 1]];
            if r.windows(2).any(|w| w[0] >= w[1]) {
                return Err(Inconsistent(format!("row {i} columns not strictly increasing")));
            }
            if let Some(&last) = r.last() {
                if last >= cols {
                    return Err(crate::SparseError::IndexOutOfBounds {
                        row: i,
                        col: last,
                        rows,
                        cols,
                    });
                }
            }
        }
        Ok(Self { rows, cols, row_ptr, col_idx, values })
    }

    /// Builds from the triplet interchange form. Duplicates are summed.
    pub fn from_triplets(t: &TripletMatrix) -> Self {
        let t = if t.is_compact() { t.clone() } else { t.clone().compact() };
        let mut row_ptr = vec![0usize; t.rows() + 1];
        for &(r, _, _) in t.entries() {
            row_ptr[r + 1] += 1;
        }
        for i in 0..t.rows() {
            row_ptr[i + 1] += row_ptr[i];
        }
        let mut col_idx = Vec::with_capacity(t.nnz());
        let mut values = Vec::with_capacity(t.nnz());
        for &(_, c, v) in t.entries() {
            col_idx.push(c);
            values.push(v);
        }
        Self { rows: t.rows(), cols: t.cols(), row_ptr, col_idx, values }
    }

    /// Row pointer array (`M + 1` entries).
    #[inline]
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// Column index array (`nnz` entries).
    #[inline]
    pub fn col_idx(&self) -> &[usize] {
        &self.col_idx
    }

    /// Value array (`nnz` entries).
    #[inline]
    pub fn values(&self) -> &[Scalar] {
        &self.values
    }

    /// Column indices and values of row `i` as borrowed slices.
    #[inline]
    pub fn row_view(&self, i: usize) -> (&[usize], &[Scalar]) {
        let (s, e) = (self.row_ptr[i], self.row_ptr[i + 1]);
        (&self.col_idx[s..e], &self.values[s..e])
    }

    /// Number of non-zeros in row `i` (`dim_i` in the paper's notation).
    #[inline]
    pub fn row_nnz(&self, i: usize) -> usize {
        self.row_ptr[i + 1] - self.row_ptr[i]
    }

    /// SMSV with an explicit scatter workspace, avoiding the per-call
    /// allocation of [`MatrixFormat::smsv`]. `workspace` must be all zeros
    /// on entry and is restored to all zeros on exit.
    pub fn smsv_with(&self, v: &SparseVec, out: &mut [Scalar], workspace: &mut [Scalar]) {
        self.smsv_view_with(v.as_view(), out, workspace);
    }

    /// Borrowed-view SMSV kernel behind both [`CsrMatrix::smsv_with`] and
    /// [`MatrixFormat::smsv_view`]. `workspace` must be all zeros on entry
    /// and is restored to all zeros on exit.
    pub fn smsv_view_with(
        &self,
        v: SparseVecView<'_>,
        out: &mut [Scalar],
        workspace: &mut [Scalar],
    ) {
        assert_eq!(v.dim(), self.cols, "SMSV vector dimension mismatch");
        assert_eq!(out.len(), self.rows, "SMSV output length mismatch");
        debug_assert!(workspace.iter().all(|&w| w == 0.0));
        // Scatter-gather: v lands in a dense workspace once, then each row
        // gathers in Θ(dim_i); total Θ(nnz + nnz(v)).
        //
        // Rows are gathered in pairs: each row keeps its own accumulator
        // chain (so every row still sums in ascending-column order,
        // preserving bit-parity with the blocked kernels), but the two
        // chains interleave in the lockstep prefix, doubling the
        // instruction-level parallelism of the serial `acc += x * w`
        // dependency that otherwise bounds the gather.
        v.scatter(workspace);
        let mut i = 0;
        while i + 2 <= self.rows {
            let (c0, v0) = self.row_view(i);
            let (c1, v1) = self.row_view(i + 1);
            let n = c0.len().min(c1.len());
            let (mut a0, mut a1) = (0.0 as Scalar, 0.0 as Scalar);
            for k in 0..n {
                a0 += v0[k] * workspace[c0[k]];
                a1 += v1[k] * workspace[c1[k]];
            }
            for k in n..c0.len() {
                a0 += v0[k] * workspace[c0[k]];
            }
            for k in n..c1.len() {
                a1 += v1[k] * workspace[c1[k]];
            }
            out[i] = a0;
            out[i + 1] = a1;
            i += 2;
        }
        if i < self.rows {
            let (cols, vals) = self.row_view(i);
            let mut acc = 0.0;
            for (&c, &x) in cols.iter().zip(vals) {
                acc += x * workspace[c];
            }
            out[i] = acc;
        }
        v.unscatter(workspace);
    }

    /// Row-lockstep "vectorised" SMSV processing `LANES` rows at a time,
    /// mirroring a fixed-width SIMD kernel (e.g. on Intel MIC): each lane
    /// group executes `max(dim_i)` steps, so short rows in a group pay for
    /// the longest one. This is the kernel whose efficiency degrades as
    /// `vdim` grows (paper Fig. 4).
    pub fn smsv_lanes<const LANES: usize>(&self, v: &SparseVec, out: &mut [Scalar]) {
        assert_eq!(v.dim(), self.cols, "SMSV vector dimension mismatch");
        assert_eq!(out.len(), self.rows, "SMSV output length mismatch");
        let mut dense = vec![0.0; self.cols];
        v.scatter(&mut dense);
        let mut i = 0;
        while i < self.rows {
            let group = (self.rows - i).min(LANES);
            let max_len = (i..i + group).map(|r| self.row_nnz(r)).max().unwrap_or(0);
            let mut acc = [0.0 as Scalar; LANES];
            // All lanes iterate max_len steps; lanes whose row is shorter
            // execute masked (zero-contribution) steps, as real SIMD would.
            for k in 0..max_len {
                for (lane, a) in acc.iter_mut().enumerate().take(group) {
                    let r = i + lane;
                    let (s, e) = (self.row_ptr[r], self.row_ptr[r + 1]);
                    let pos = s + k;
                    let masked = pos >= e;
                    let c = if masked { 0 } else { self.col_idx[pos] };
                    let x = if masked { 0.0 } else { self.values[pos] };
                    *a += x * dense[c];
                }
            }
            out[i..i + group].copy_from_slice(&acc[..group]);
            i += group;
        }
    }

    /// Per-row non-zero counts.
    pub fn row_counts(&self) -> Vec<usize> {
        (0..self.rows).map(|i| self.row_nnz(i)).collect()
    }
}

impl MatrixFormat for CsrMatrix {
    fn rows(&self) -> usize {
        self.rows
    }

    fn cols(&self) -> usize {
        self.cols
    }

    fn nnz(&self) -> usize {
        self.values.len()
    }

    fn format(&self) -> Format {
        Format::Csr
    }

    fn get(&self, i: usize, j: usize) -> Scalar {
        let (cols, vals) = self.row_view(i);
        match cols.binary_search(&j) {
            Ok(pos) => vals[pos],
            Err(_) => 0.0,
        }
    }

    fn row_sparse(&self, i: usize) -> SparseVec {
        let (cols, vals) = self.row_view(i);
        SparseVec::new(self.cols, cols.to_vec(), vals.to_vec())
    }

    fn row_view_in<'a>(&'a self, i: usize, _scratch: &'a mut RowScratch) -> SparseVecView<'a> {
        // CSR rows are contiguous: borrow the storage directly.
        let (cols, vals) = self.row_view(i);
        SparseVecView::new(self.cols, cols, vals)
    }

    fn smsv(&self, v: &SparseVec, out: &mut [Scalar]) {
        let mut workspace = vec![0.0; self.cols];
        self.smsv_with(v, out, &mut workspace);
    }

    fn smsv_view(&self, v: SparseVecView<'_>, out: &mut [Scalar], workspace: &mut Vec<Scalar>) {
        let ws = ensure_workspace(workspace, self.cols);
        self.smsv_view_with(v, out, ws);
    }

    fn smsv_block(&self, vs: &[SparseVec], out: &mut [Scalar], workspace: &mut Vec<Scalar>) {
        assert_eq!(out.len(), self.rows * vs.len(), "smsv_block output length mismatch");
        // Blocked kernel: the B right-hand sides are scattered into an
        // interleaved workspace (`ws[c * cb + bi]` = vs[bi][c]) so one
        // traversal of the matrix feeds all B accumulators; traffic over
        // the CSR arrays is amortised B-fold versus B smsv calls.
        let mut b0 = 0;
        while b0 < vs.len() {
            let cb = (vs.len() - b0).min(MAX_SMSV_BLOCK);
            if cb == 1 {
                // A single lane degenerates to the per-vector sweep; skip
                // the interleaved workspace and its writeback entirely.
                let dst = &mut out[b0 * self.rows..(b0 + 1) * self.rows];
                self.smsv_view(vs[b0].as_view(), dst, workspace);
                b0 += 1;
                continue;
            }
            let chunk = &vs[b0..b0 + cb];
            let ws = ensure_workspace(workspace, self.cols * cb);
            debug_assert!(ws.iter().all(|&w| w == 0.0));
            for (bi, v) in chunk.iter().enumerate() {
                assert_eq!(v.dim(), self.cols, "SMSV vector dimension mismatch");
                for (j, x) in v.iter() {
                    ws[j * cb + bi] = x;
                }
            }
            for i in 0..self.rows {
                let (cols, vals) = self.row_view(i);
                let mut acc = [0.0 as Scalar; MAX_SMSV_BLOCK];
                for (&c, &x) in cols.iter().zip(vals) {
                    let lane = &ws[c * cb..(c + 1) * cb];
                    for (a, &w) in acc[..cb].iter_mut().zip(lane) {
                        *a += x * w;
                    }
                }
                for (bi, &a) in acc[..cb].iter().enumerate() {
                    out[(b0 + bi) * self.rows + i] = a;
                }
            }
            for (bi, v) in chunk.iter().enumerate() {
                for &j in v.indices() {
                    ws[j * cb + bi] = 0.0;
                }
            }
            b0 += cb;
        }
    }

    fn spmv(&self, x: &[Scalar], out: &mut [Scalar]) {
        assert_eq!(x.len(), self.cols, "SpMV vector dimension mismatch");
        assert_eq!(out.len(), self.rows, "SpMV output length mismatch");
        for i in 0..self.rows {
            let (cols, vals) = self.row_view(i);
            out[i] = cols.iter().zip(vals).map(|(&c, &v)| v * x[c]).sum();
        }
    }

    fn row_norms_sq(&self, out: &mut [Scalar]) {
        assert_eq!(out.len(), self.rows);
        for (i, o) in out.iter_mut().enumerate() {
            let (_, vals) = self.row_view(i);
            *o = vals.iter().map(|v| v * v).sum();
        }
    }

    fn to_triplets(&self) -> TripletMatrix {
        let mut t = TripletMatrix::with_capacity(self.rows, self.cols, self.nnz());
        for i in 0..self.rows {
            let (cols, vals) = self.row_view(i);
            for (&c, &v) in cols.iter().zip(vals) {
                t.push(i, c, v);
            }
        }
        t
    }

    fn storage_bytes(&self) -> usize {
        self.row_ptr.len() * std::mem::size_of::<usize>()
            + self.col_idx.len() * std::mem::size_of::<usize>()
            + self.values.len() * std::mem::size_of::<Scalar>()
    }

    fn storage_elems(&self) -> usize {
        // Table II: data + indices arrays have nnz elements each, ptr has
        // M + 1; dense worst case is 2MN + M.
        2 * self.nnz() + self.rows + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        // [1 0 2 0]
        // [0 0 0 0]
        // [3 4 0 5]
        let t = TripletMatrix::from_entries(
            3,
            4,
            vec![(0, 0, 1.0), (0, 2, 2.0), (2, 0, 3.0), (2, 1, 4.0), (2, 3, 5.0)],
        )
        .unwrap();
        CsrMatrix::from_triplets(&t)
    }

    #[test]
    fn construction_from_triplets() {
        let m = sample();
        assert_eq!(m.row_ptr(), &[0, 2, 2, 5]);
        assert_eq!(m.col_idx(), &[0, 2, 0, 1, 3]);
        assert_eq!(m.nnz(), 5);
        assert_eq!(m.row_nnz(1), 0);
    }

    #[test]
    fn validating_constructor_accepts_valid() {
        let m = sample();
        let ok =
            CsrMatrix::new(3, 4, m.row_ptr().to_vec(), m.col_idx().to_vec(), m.values().to_vec());
        assert!(ok.is_ok());
    }

    #[test]
    fn validating_constructor_rejects_bad_ptr() {
        let err = CsrMatrix::new(2, 2, vec![0, 2], vec![0, 1], vec![1.0, 1.0]);
        assert!(err.is_err());
        let err = CsrMatrix::new(2, 2, vec![0, 3, 2], vec![0, 1], vec![1.0, 1.0]);
        assert!(err.is_err());
    }

    #[test]
    fn validating_constructor_rejects_unsorted_cols() {
        let err = CsrMatrix::new(1, 3, vec![0, 2], vec![2, 0], vec![1.0, 1.0]);
        assert!(err.is_err());
    }

    #[test]
    fn get_and_rows() {
        let m = sample();
        assert_eq!(m.get(2, 1), 4.0);
        assert_eq!(m.get(1, 3), 0.0);
        let r = m.row_sparse(2);
        assert_eq!(r.indices(), &[0, 1, 3]);
        assert_eq!(r.values(), &[3.0, 4.0, 5.0]);
    }

    #[test]
    fn smsv_scatter_gather() {
        let m = sample();
        let v = SparseVec::new(4, vec![0, 3], vec![2.0, 1.0]);
        let mut out = vec![0.0; 3];
        m.smsv(&v, &mut out);
        assert_eq!(out, vec![2.0, 0.0, 11.0]);
    }

    #[test]
    fn smsv_with_reusable_workspace_restores_zeros() {
        let m = sample();
        let v = SparseVec::new(4, vec![1], vec![10.0]);
        let mut out = vec![0.0; 3];
        let mut ws = vec![0.0; 4];
        m.smsv_with(&v, &mut out, &mut ws);
        assert_eq!(out, vec![0.0, 0.0, 40.0]);
        assert!(ws.iter().all(|&w| w == 0.0));
    }

    #[test]
    fn smsv_lanes_matches_scalar() {
        let m = sample();
        let v = SparseVec::new(4, vec![0, 1, 2, 3], vec![1.0, -1.0, 0.5, 2.0]);
        let mut scalar_out = vec![0.0; 3];
        let mut lanes_out = vec![0.0; 3];
        m.smsv(&v, &mut scalar_out);
        m.smsv_lanes::<8>(&v, &mut lanes_out);
        assert_eq!(scalar_out, lanes_out);
        m.smsv_lanes::<2>(&v, &mut lanes_out);
        assert_eq!(scalar_out, lanes_out);
    }

    #[test]
    fn spmv_and_norms() {
        let m = sample();
        let mut out = vec![0.0; 3];
        m.spmv(&[1.0, 1.0, 1.0, 1.0], &mut out);
        assert_eq!(out, vec![3.0, 0.0, 12.0]);
        m.row_norms_sq(&mut out);
        assert_eq!(out, vec![5.0, 0.0, 50.0]);
    }

    #[test]
    fn triplet_round_trip() {
        let m = sample();
        let back = CsrMatrix::from_triplets(&m.to_triplets());
        assert_eq!(back, m);
    }

    #[test]
    fn storage_elems_formula() {
        let m = sample();
        assert_eq!(m.storage_elems(), 2 * 5 + 3 + 1);
    }
}
