//! Storage-space model (paper Table II).
//!
//! | Format | Min                 | Max                                |
//! |--------|---------------------|------------------------------------|
//! | DEN    | `M·N`               | `M·N`                              |
//! | CSR    | `O(M + 2)`          | `2·M·N + M`                        |
//! | COO    | `O(1)`              | `3·M·N`                            |
//! | ELL    | `O(2M)`             | `2·M·N`                            |
//! | DIA    | `O(M + 1)`          | `(min(M,N)+1)·(M+N−1)`             |
//!
//! "The complexity of computation in SVM (two SMSVs) is proportional to the
//! complexity of storage" — so this model doubles as the analytic cost model
//! used by `dls-core`'s selector.

use crate::{Format, MatrixFeatures};

/// Table II minimum storage (elements) for an `m x n` matrix in `format`:
/// the best case over all sparsity patterns with at least one non-zero.
pub fn min_storage_elems(format: Format, m: usize, n: usize) -> usize {
    match format {
        // DEN always stores the full matrix.
        Format::Den => m * n,
        // One nnz: data + index (1 each) + ptr (M + 1).
        Format::Csr => m + 2,
        // One nnz: one (row, col, value) record.
        Format::Coo => 3,
        // One nnz: width 1, two M-long arrays... but empty rows pad to the
        // single-widest row, giving 2M slots.
        Format::Ell => 2 * m,
        // One nnz: one diagonal padded to M plus its offset.
        Format::Dia => m + 1,
        // Derived formats (not part of Table II): same shape as CSR/COO.
        Format::Csc => n + 2,
        Format::Bcsr => 3,
        // HYB degenerates to a width-1 ELL slab; JDS to nnz + pointers.
        Format::Hyb => 2 * m,
        Format::Jds => m + 4,
    }
}

/// Table II maximum storage (elements) for an `m x n` matrix in `format`:
/// the fully dense worst case.
pub fn max_storage_elems(format: Format, m: usize, n: usize) -> usize {
    match format {
        Format::Den => m * n,
        Format::Csr => 2 * m * n + m,
        Format::Coo => 3 * m * n,
        Format::Ell => 2 * m * n,
        // min(M,N)+1 arrays of... the paper gives (min(M,N)+1)(M+N-1): each
        // of the M+N-1 diagonals stores min(M,N) data slots plus one offset.
        Format::Dia => (m.min(n) + 1) * (m + n - 1),
        Format::Csc => 2 * m * n + n,
        Format::Bcsr => m * n + m * n + m, // degenerate 1x1 blocks
        // HYB slab covers everything on dense data (no spill); JDS stores
        // 2·nnz plus the permutation and n + 1 diagonal pointers.
        Format::Hyb => 2 * m * n,
        Format::Jds => 2 * m * n + m + n + 1,
    }
}

/// Predicted storage (elements) for a matrix with the given extracted
/// features — the analytic model the runtime selector evaluates *without*
/// materialising any format.
pub fn predicted_storage_elems(format: Format, f: &MatrixFeatures) -> f64 {
    match format {
        Format::Den => (f.m * f.n) as f64,
        Format::Csr => (2 * f.nnz + f.m + 1) as f64,
        Format::Coo => (3 * f.nnz) as f64,
        Format::Ell => (2 * f.m * f.mdim) as f64,
        Format::Dia => (f.ndig * f.m + f.ndig) as f64,
        Format::Csc => (2 * f.nnz + f.n + 1) as f64,
        // Assume 4x4 blocks at the observed density within touched blocks;
        // a coarse upper bound: every nnz owns its own block in the worst
        // case, min(nnz * 16, dense).
        Format::Bcsr => ((f.nnz * 16).min(f.m * f.n) + f.nnz + f.m + 1) as f64,
        // HYB: slab of width ≈ adim (90%-coverage heuristic) + ~10% spill.
        Format::Hyb => 2.0 * f.m as f64 * f.adim.ceil() + 0.1 * 3.0 * f.nnz as f64,
        Format::Jds => (2 * f.nnz + f.m + f.mdim + 1) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AnyMatrix, MatrixFormat, TripletMatrix};

    /// The actual storage of a fully dense matrix must match Table II's max
    /// column (up to the +/-1 bookkeeping noted in the paper's O(..)).
    #[test]
    fn dense_matrix_hits_table2_max() {
        let (m, n) = (6, 5);
        let data = vec![1.0; m * n];
        let t = TripletMatrix::from_dense(m, n, &data);
        for fmt in [Format::Den, Format::Csr, Format::Coo, Format::Ell] {
            let mat = AnyMatrix::from_triplets(fmt, &t);
            let max = max_storage_elems(fmt, m, n);
            let actual = mat.storage_elems();
            assert!(actual.abs_diff(max) <= m + 1, "{fmt}: actual {actual} vs Table II max {max}");
        }
        // DIA on a dense matrix: M+N-1 diagonals, each padded to M rows.
        let dia = AnyMatrix::from_triplets(Format::Dia, &t);
        assert_eq!(dia.storage_elems(), (m + n - 1) * m + (m + n - 1));
        // Table II says (min+1)(M+N-1) with min(M,N) data slots per diagonal;
        // our row-padded variant stores M per diagonal, so they coincide
        // exactly when M <= N (the common ML case: wide feature matrices).
        let (mw, nw) = (5, 6);
        let wide = TripletMatrix::from_dense(mw, nw, &vec![1.0; mw * nw]);
        let dia_wide = AnyMatrix::from_triplets(Format::Dia, &wide);
        assert_eq!(dia_wide.storage_elems(), max_storage_elems(Format::Dia, mw, nw));
    }

    /// A single-nonzero matrix approaches the Table II min column.
    #[test]
    fn singleton_matrix_hits_table2_min() {
        let (m, n) = (8, 7);
        let t = TripletMatrix::from_entries(m, n, vec![(3, 2, 1.0)]).unwrap().compact();
        let csr = AnyMatrix::from_triplets(Format::Csr, &t);
        assert_eq!(csr.storage_elems(), 2 + m + 1); // data+idx+ptr
        let coo = AnyMatrix::from_triplets(Format::Coo, &t);
        assert_eq!(coo.storage_elems(), 3);
        let ell = AnyMatrix::from_triplets(Format::Ell, &t);
        assert_eq!(ell.storage_elems(), 2 * m);
        let dia = AnyMatrix::from_triplets(Format::Dia, &t);
        assert_eq!(dia.storage_elems(), m + 1);
        let den = AnyMatrix::from_triplets(Format::Den, &t);
        assert_eq!(den.storage_elems(), m * n);
    }

    #[test]
    fn min_never_exceeds_max() {
        for fmt in Format::ALL {
            for &(m, n) in &[(1, 1), (4, 9), (100, 3), (64, 64)] {
                assert!(
                    min_storage_elems(fmt, m, n) <= max_storage_elems(fmt, m, n),
                    "{fmt} at {m}x{n}"
                );
            }
        }
    }

    #[test]
    fn predicted_matches_actual_for_basic_formats() {
        let t = TripletMatrix::from_entries(
            5,
            6,
            vec![(0, 0, 1.0), (1, 3, 2.0), (2, 2, 3.0), (2, 5, 4.0), (4, 1, 5.0)],
        )
        .unwrap()
        .compact();
        let f = MatrixFeatures::from_triplets(&t);
        for fmt in Format::BASIC {
            let actual = AnyMatrix::from_triplets(fmt, &t).storage_elems() as f64;
            let predicted = predicted_storage_elems(fmt, &f);
            assert!(
                (actual - predicted).abs() <= 1.0,
                "{fmt}: actual {actual} vs predicted {predicted}"
            );
        }
    }
}
