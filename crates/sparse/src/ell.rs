//! ELL: ELLPACK/ITPACK storage.
//!
//! Every row is padded to the length of the longest row (`mdim`), giving two
//! dense `M × mdim` arrays laid out column-major so that SIMD lanes stream
//! contiguous same-slot elements of consecutive rows. Excellent when row
//! lengths are uniform (`vdim ≈ 0`); pathological when one long row forces
//! `mdim ≫ adim`, since every padded slot still costs storage and a masked
//! multiply (paper Fig. 3: performance degrades as `mdim` grows at fixed
//! nnz).

use crate::format::{ensure_workspace, MAX_SMSV_BLOCK};
use crate::{Format, MatrixFormat, RowScratch, Scalar, SparseVec, SparseVecView, TripletMatrix};

/// Sentinel column index marking a padded slot.
const PAD: usize = usize::MAX;

/// ELLPACK matrix: column-major `M × mdim` index and value arrays.
#[derive(Debug, Clone, PartialEq)]
pub struct EllMatrix {
    rows: usize,
    cols: usize,
    /// Width of the padded storage = max row nnz.
    width: usize,
    /// Column indices, column-major: slot `k` of row `i` is `idx[k * rows + i]`.
    /// Padded slots hold [`PAD`].
    idx: Vec<usize>,
    /// Values, column-major, zeros in padded slots.
    val: Vec<Scalar>,
    nnz: usize,
}

impl EllMatrix {
    /// Builds from the triplet interchange form.
    pub fn from_triplets(t: &TripletMatrix) -> Self {
        let t = if t.is_compact() { t.clone() } else { t.clone().compact() };
        let rows = t.rows();
        let counts = t.row_counts();
        let width = counts.iter().copied().max().unwrap_or(0);
        let mut idx = vec![PAD; rows * width];
        let mut val = vec![0.0; rows * width];
        let mut fill = vec![0usize; rows];
        for &(r, c, v) in t.entries() {
            let k = fill[r];
            idx[k * rows + r] = c;
            val[k * rows + r] = v;
            fill[r] += 1;
        }
        Self { rows, cols: t.cols(), width, idx, val, nnz: t.nnz() }
    }

    /// Padded row width (`mdim`).
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of padded (wasted) slots: `M * mdim - nnz`.
    #[inline]
    pub fn padding(&self) -> usize {
        self.rows * self.width - self.nnz
    }

    /// Column index stored in slot `k` of row `i`, or [`usize::MAX`] if padded.
    #[inline]
    pub fn slot_col(&self, i: usize, k: usize) -> usize {
        self.idx[k * self.rows + i]
    }

    /// Value stored in slot `k` of row `i` (zero if padded).
    #[inline]
    pub fn slot_val(&self, i: usize, k: usize) -> Scalar {
        self.val[k * self.rows + i]
    }

    /// SMSV with an explicit scatter workspace (all zeros on entry/exit).
    pub fn smsv_with(&self, v: &SparseVec, out: &mut [Scalar], workspace: &mut [Scalar]) {
        self.smsv_view_with(v.as_view(), out, workspace);
    }

    /// One blocked column-major sweep of the padded slot arrays into an
    /// interleaved accumulator, shared by [`MatrixFormat::smsv_block`] here
    /// and by the HYB kernel (which reuses the same scatter for its COO
    /// spill pass).
    ///
    /// `scat` is the `(cols + 1) * cb` interleaved scatter of the chunk's
    /// right-hand sides: lane `bi` of column `j` lives at `scat[j*cb+bi]`,
    /// and the extra column slot at index `cols` stays all-zero so padded
    /// slots read from it. `acc` is the `rows * cb` interleaved accumulator
    /// the products land in. The pad remap is a select, not a branch, so
    /// the inner lane loop is straight-line code the autovectorizer can
    /// turn into FMAs (a padded slot contributes `0.0 * 0.0`, leaving the
    /// accumulator bit-identical to skipping it).
    pub(crate) fn blocked_slab_sweep(&self, cb: usize, scat: &[Scalar], acc: &mut [Scalar]) {
        debug_assert_eq!(scat.len(), (self.cols + 1) * cb);
        debug_assert_eq!(acc.len(), self.rows * cb);
        for k in 0..self.width {
            let idx = &self.idx[k * self.rows..(k + 1) * self.rows];
            let val = &self.val[k * self.rows..(k + 1) * self.rows];
            for i in 0..self.rows {
                let c = idx[i];
                let c = if c == PAD { self.cols } else { c };
                let x = val[i];
                let lane = &scat[c * cb..(c + 1) * cb];
                let a = &mut acc[i * cb..(i + 1) * cb];
                for (ab, &w) in a.iter_mut().zip(lane) {
                    *ab += x * w;
                }
            }
        }
    }

    /// Borrowed-view SMSV kernel behind both [`EllMatrix::smsv_with`] and
    /// [`MatrixFormat::smsv_view`] (workspace all zeros on entry/exit).
    pub fn smsv_view_with(
        &self,
        v: SparseVecView<'_>,
        out: &mut [Scalar],
        workspace: &mut [Scalar],
    ) {
        assert_eq!(v.dim(), self.cols, "SMSV vector dimension mismatch");
        assert_eq!(out.len(), self.rows, "SMSV output length mismatch");
        debug_assert!(workspace.iter().all(|&w| w == 0.0));
        v.scatter(workspace);
        out.fill(0.0);
        // Column-major sweep: slot k of all rows before slot k+1, the memory
        // order ELL is designed for. Padded slots execute a masked FMA —
        // the cost the paper attributes to large mdim.
        for k in 0..self.width {
            let idx = &self.idx[k * self.rows..(k + 1) * self.rows];
            let val = &self.val[k * self.rows..(k + 1) * self.rows];
            for i in 0..self.rows {
                let c = idx[i];
                let x = if c == PAD { 0.0 } else { workspace[c] };
                out[i] += val[i] * x;
            }
        }
        v.unscatter(workspace);
    }
}

impl MatrixFormat for EllMatrix {
    fn rows(&self) -> usize {
        self.rows
    }

    fn cols(&self) -> usize {
        self.cols
    }

    fn nnz(&self) -> usize {
        self.nnz
    }

    fn format(&self) -> Format {
        Format::Ell
    }

    fn get(&self, i: usize, j: usize) -> Scalar {
        for k in 0..self.width {
            let c = self.slot_col(i, k);
            if c == j {
                return self.slot_val(i, k);
            }
            if c == PAD {
                break;
            }
        }
        0.0
    }

    fn row_sparse(&self, i: usize) -> SparseVec {
        let mut indices = Vec::new();
        let mut values = Vec::new();
        for k in 0..self.width {
            let c = self.slot_col(i, k);
            if c == PAD {
                break;
            }
            indices.push(c);
            values.push(self.slot_val(i, k));
        }
        SparseVec::new(self.cols, indices, values)
    }

    fn row_view_in<'a>(&'a self, i: usize, scratch: &'a mut RowScratch) -> SparseVecView<'a> {
        // Slots of a row are filled in ascending-column order by
        // `from_triplets`, so the scratch is sorted without a sort.
        scratch.clear();
        for k in 0..self.width {
            let c = self.slot_col(i, k);
            if c == PAD {
                break;
            }
            scratch.push(c, self.slot_val(i, k));
        }
        scratch.view(self.cols)
    }

    fn smsv(&self, v: &SparseVec, out: &mut [Scalar]) {
        let mut workspace = vec![0.0; self.cols];
        self.smsv_with(v, out, &mut workspace);
    }

    fn smsv_view(&self, v: SparseVecView<'_>, out: &mut [Scalar], workspace: &mut Vec<Scalar>) {
        let ws = ensure_workspace(workspace, self.cols);
        self.smsv_view_with(v, out, ws);
    }

    fn smsv_block(&self, vs: &[SparseVec], out: &mut [Scalar], workspace: &mut Vec<Scalar>) {
        assert_eq!(out.len(), self.rows * vs.len(), "smsv_block output length mismatch");
        // Blocked kernel: one column-major sweep over the padded slot
        // arrays feeds all B right-hand sides. The workspace carves out an
        // interleaved scatter region (`(cols + 1) * cb`, the extra all-zero
        // column absorbing padded slots branch-free) followed by an
        // interleaved accumulator region (`rows * cb`); both are restored
        // to zero before the chunk ends.
        let mut b0 = 0;
        while b0 < vs.len() {
            let cb = (vs.len() - b0).min(MAX_SMSV_BLOCK);
            if cb == 1 {
                // A single lane degenerates to the per-vector sweep; skip
                // the interleaved workspace and its writeback entirely.
                let dst = &mut out[b0 * self.rows..(b0 + 1) * self.rows];
                self.smsv_view(vs[b0].as_view(), dst, workspace);
                b0 += 1;
                continue;
            }
            let chunk = &vs[b0..b0 + cb];
            let ws = ensure_workspace(workspace, (self.cols + 1 + self.rows) * cb);
            debug_assert!(ws.iter().all(|&w| w == 0.0));
            let (scat, acc) = ws.split_at_mut((self.cols + 1) * cb);
            for (bi, v) in chunk.iter().enumerate() {
                assert_eq!(v.dim(), self.cols, "SMSV vector dimension mismatch");
                for (j, x) in v.iter() {
                    scat[j * cb + bi] = x;
                }
            }
            self.blocked_slab_sweep(cb, scat, acc);
            for i in 0..self.rows {
                for bi in 0..cb {
                    out[(b0 + bi) * self.rows + i] = acc[i * cb + bi];
                    acc[i * cb + bi] = 0.0;
                }
            }
            for (bi, v) in chunk.iter().enumerate() {
                for &j in v.indices() {
                    scat[j * cb + bi] = 0.0;
                }
            }
            b0 += cb;
        }
    }

    fn spmv(&self, x: &[Scalar], out: &mut [Scalar]) {
        assert_eq!(x.len(), self.cols, "SpMV vector dimension mismatch");
        assert_eq!(out.len(), self.rows, "SpMV output length mismatch");
        out.fill(0.0);
        for k in 0..self.width {
            let idx = &self.idx[k * self.rows..(k + 1) * self.rows];
            let val = &self.val[k * self.rows..(k + 1) * self.rows];
            for i in 0..self.rows {
                let c = idx[i];
                let xv = if c == PAD { 0.0 } else { x[c] };
                out[i] += val[i] * xv;
            }
        }
    }

    fn row_norms_sq(&self, out: &mut [Scalar]) {
        assert_eq!(out.len(), self.rows);
        out.fill(0.0);
        for k in 0..self.width {
            let val = &self.val[k * self.rows..(k + 1) * self.rows];
            for i in 0..self.rows {
                out[i] += val[i] * val[i];
            }
        }
    }

    fn to_triplets(&self) -> TripletMatrix {
        let mut t = TripletMatrix::with_capacity(self.rows, self.cols, self.nnz);
        for i in 0..self.rows {
            for k in 0..self.width {
                let c = self.slot_col(i, k);
                if c == PAD {
                    break;
                }
                t.push(i, c, self.slot_val(i, k));
            }
        }
        t
    }

    fn storage_bytes(&self) -> usize {
        self.idx.len() * std::mem::size_of::<usize>()
            + self.val.len() * std::mem::size_of::<Scalar>()
    }

    fn storage_elems(&self) -> usize {
        // Table II: two M x mdim arrays (max 2MN when a row is full).
        2 * self.rows * self.width
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EllMatrix {
        let t = TripletMatrix::from_entries(
            3,
            4,
            vec![(0, 0, 1.0), (0, 2, 2.0), (2, 0, 3.0), (2, 1, 4.0), (2, 3, 5.0)],
        )
        .unwrap();
        EllMatrix::from_triplets(&t)
    }

    #[test]
    fn width_is_max_row_nnz() {
        let m = sample();
        assert_eq!(m.width(), 3);
        assert_eq!(m.padding(), 9 - 5);
        assert_eq!(m.nnz(), 5);
    }

    #[test]
    fn column_major_layout() {
        let m = sample();
        // slot 0 of each row
        assert_eq!(m.slot_col(0, 0), 0);
        assert_eq!(m.slot_col(2, 0), 0);
        assert_eq!(m.slot_col(1, 0), usize::MAX);
        // row 0 has 2 slots used, third padded
        assert_eq!(m.slot_col(0, 2), usize::MAX);
        assert_eq!(m.slot_val(0, 1), 2.0);
    }

    #[test]
    fn get_handles_padding() {
        let m = sample();
        assert_eq!(m.get(0, 2), 2.0);
        assert_eq!(m.get(0, 3), 0.0);
        assert_eq!(m.get(1, 0), 0.0);
    }

    #[test]
    fn smsv_matches_manual() {
        let m = sample();
        let v = SparseVec::new(4, vec![0, 3], vec![2.0, 1.0]);
        let mut out = vec![0.0; 3];
        m.smsv(&v, &mut out);
        assert_eq!(out, vec![2.0, 0.0, 11.0]);
    }

    #[test]
    fn spmv_and_norms() {
        let m = sample();
        let mut out = vec![0.0; 3];
        m.spmv(&[1.0, 1.0, 1.0, 1.0], &mut out);
        assert_eq!(out, vec![3.0, 0.0, 12.0]);
        m.row_norms_sq(&mut out);
        assert_eq!(out, vec![5.0, 0.0, 50.0]);
    }

    #[test]
    fn row_sparse_skips_padding() {
        let m = sample();
        let r = m.row_sparse(0);
        assert_eq!(r.indices(), &[0, 2]);
        assert_eq!(m.row_sparse(1).nnz(), 0);
    }

    #[test]
    fn triplet_round_trip() {
        let m = sample();
        assert_eq!(EllMatrix::from_triplets(&m.to_triplets()), m);
    }

    #[test]
    fn empty_matrix_has_zero_width() {
        let t = TripletMatrix::new(4, 4);
        let m = EllMatrix::from_triplets(&t);
        assert_eq!(m.width(), 0);
        assert_eq!(m.storage_elems(), 0);
        let mut out = vec![1.0; 4];
        m.smsv(&SparseVec::zeros(4), &mut out);
        assert_eq!(out, vec![0.0; 4]);
    }
}
