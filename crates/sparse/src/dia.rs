//! DIA: diagonal storage.
//!
//! One array per occupied diagonal, each padded to `M` slots. Storage is
//! `ndig * M` plus one offset per diagonal, so the format only pays off when
//! non-zeros concentrate on few diagonals (`dnnz` high). A matrix whose nnz
//! are spread across many diagonals stores almost all padding — the paper's
//! Fig. 2 sweeps `ndig` at fixed nnz and shows performance collapsing as
//! diagonals multiply.

use crate::format::{ensure_workspace, MAX_SMSV_BLOCK};
use crate::{Format, MatrixFormat, RowScratch, Scalar, SparseVec, SparseVecView, TripletMatrix};

/// Diagonal-format matrix.
///
/// Diagonal `d` has offset `offsets[d] = j - i`; the element of that
/// diagonal in row `i` lives at `data[d * rows + i]` (padded with zeros
/// where `i + offset` falls outside `0..cols`).
#[derive(Debug, Clone, PartialEq)]
pub struct DiaMatrix {
    rows: usize,
    cols: usize,
    /// Sorted distinct diagonal offsets (`j - i`), in `-(M-1) ..= N-1`.
    offsets: Vec<isize>,
    /// Row-padded diagonal data, diagonal-major: `data[d * rows + i]`.
    data: Vec<Scalar>,
    nnz: usize,
}

impl DiaMatrix {
    /// Builds from the triplet interchange form.
    pub fn from_triplets(t: &TripletMatrix) -> Self {
        let t = if t.is_compact() { t.clone() } else { t.clone().compact() };
        let rows = t.rows();
        let mut offsets: Vec<isize> =
            t.entries().iter().map(|&(r, c, _)| c as isize - r as isize).collect();
        offsets.sort_unstable();
        offsets.dedup();
        let mut data = vec![0.0; offsets.len() * rows];
        for &(r, c, v) in t.entries() {
            let off = c as isize - r as isize;
            let d = offsets.binary_search(&off).expect("offset present");
            data[d * rows + r] = v;
        }
        Self { rows, cols: t.cols(), offsets, data, nnz: t.nnz() }
    }

    /// Number of occupied diagonals (`ndig` counts only non-empty ones).
    #[inline]
    pub fn ndiag(&self) -> usize {
        self.offsets.len()
    }

    /// The sorted diagonal offsets.
    #[inline]
    pub fn offsets(&self) -> &[isize] {
        &self.offsets
    }

    /// Average non-zeros per stored diagonal (`dnnz`).
    pub fn dnnz(&self) -> f64 {
        if self.offsets.is_empty() {
            0.0
        } else {
            self.nnz as f64 / self.offsets.len() as f64
        }
    }

    /// SMSV with an explicit scatter workspace (all zeros on entry/exit).
    pub fn smsv_with(&self, v: &SparseVec, out: &mut [Scalar], workspace: &mut [Scalar]) {
        self.smsv_view_with(v.as_view(), out, workspace);
    }

    /// Borrowed-view SMSV kernel behind both [`DiaMatrix::smsv_with`] and
    /// [`MatrixFormat::smsv_view`] (workspace all zeros on entry/exit).
    pub fn smsv_view_with(
        &self,
        v: SparseVecView<'_>,
        out: &mut [Scalar],
        workspace: &mut [Scalar],
    ) {
        assert_eq!(v.dim(), self.cols, "SMSV vector dimension mismatch");
        assert_eq!(out.len(), self.rows, "SMSV output length mismatch");
        debug_assert!(workspace.iter().all(|&w| w == 0.0));
        v.scatter(workspace);
        out.fill(0.0);
        // Diagonal-major sweep. Every in-range slot of every stored diagonal
        // is touched — including padding zeros, which is exactly the waste
        // that grows with ndig.
        for (d, &off) in self.offsets.iter().enumerate() {
            let diag = &self.data[d * self.rows..(d + 1) * self.rows];
            let i_lo = if off < 0 { (-off) as usize } else { 0 };
            let i_hi = self.rows.min((self.cols as isize - off).max(0) as usize);
            for i in i_lo..i_hi {
                let j = (i as isize + off) as usize;
                out[i] += diag[i] * workspace[j];
            }
        }
        v.unscatter(workspace);
    }

    /// Diagonal-band sweep with a compile-time lane count. `CB` fixes the
    /// inner trip count so the lane loop unrolls into straight-line FMAs
    /// the autovectorizer turns into SIMD — with a runtime width the
    /// per-element slice-and-zip overhead dominates and even `CB = 1`
    /// runs several times slower than the per-vector sweep. Accumulation
    /// order per row (sorted diagonal offsets = ascending columns) is
    /// identical to [`DiaMatrix::smsv_view_with`], so results stay
    /// bit-exact.
    fn blocked_band_sweep<const CB: usize>(&self, scat: &[Scalar], acc: &mut [Scalar]) {
        for (d, &off) in self.offsets.iter().enumerate() {
            let diag = &self.data[d * self.rows..(d + 1) * self.rows];
            let i_lo = if off < 0 { (-off) as usize } else { 0 };
            let i_hi = self.rows.min((self.cols as isize - off).max(0) as usize);
            for i in i_lo..i_hi {
                let x = diag[i];
                let j = (i as isize + off) as usize;
                let lane: &[Scalar; CB] = scat[j * CB..j * CB + CB].try_into().unwrap();
                let a: &mut [Scalar; CB] = (&mut acc[i * CB..i * CB + CB]).try_into().unwrap();
                for bi in 0..CB {
                    a[bi] += x * lane[bi];
                }
            }
        }
    }

    /// Runtime-width fallback for chunk tails that are not a candidate
    /// block size. Same traversal and accumulation order as the
    /// monomorphised sweep.
    fn blocked_band_sweep_any(&self, cb: usize, scat: &[Scalar], acc: &mut [Scalar]) {
        for (d, &off) in self.offsets.iter().enumerate() {
            let diag = &self.data[d * self.rows..(d + 1) * self.rows];
            let i_lo = if off < 0 { (-off) as usize } else { 0 };
            let i_hi = self.rows.min((self.cols as isize - off).max(0) as usize);
            for i in i_lo..i_hi {
                let x = diag[i];
                let j = (i as isize + off) as usize;
                let lane = &scat[j * cb..(j + 1) * cb];
                let a = &mut acc[i * cb..(i + 1) * cb];
                for (ab, &w) in a.iter_mut().zip(lane) {
                    *ab += x * w;
                }
            }
        }
    }
}

impl MatrixFormat for DiaMatrix {
    fn rows(&self) -> usize {
        self.rows
    }

    fn cols(&self) -> usize {
        self.cols
    }

    fn nnz(&self) -> usize {
        self.nnz
    }

    fn format(&self) -> Format {
        Format::Dia
    }

    fn get(&self, i: usize, j: usize) -> Scalar {
        let off = j as isize - i as isize;
        match self.offsets.binary_search(&off) {
            Ok(d) => self.data[d * self.rows + i],
            Err(_) => 0.0,
        }
    }

    fn row_sparse(&self, i: usize) -> SparseVec {
        let mut pairs: Vec<(usize, Scalar)> = Vec::new();
        for (d, &off) in self.offsets.iter().enumerate() {
            let j = i as isize + off;
            if j >= 0 && (j as usize) < self.cols {
                let v = self.data[d * self.rows + i];
                if v != 0.0 {
                    pairs.push((j as usize, v));
                }
            }
        }
        pairs.sort_unstable_by_key(|p| p.0);
        SparseVec::new(
            self.cols,
            pairs.iter().map(|p| p.0).collect(),
            pairs.iter().map(|p| p.1).collect(),
        )
    }

    fn row_view_in<'a>(&'a self, i: usize, scratch: &'a mut RowScratch) -> SparseVecView<'a> {
        // Offsets are sorted ascending, so j = i + off comes out ascending
        // and the scratch needs no sort.
        scratch.clear();
        for (d, &off) in self.offsets.iter().enumerate() {
            let j = i as isize + off;
            if j >= 0 && (j as usize) < self.cols {
                let v = self.data[d * self.rows + i];
                if v != 0.0 {
                    scratch.push(j as usize, v);
                }
            }
        }
        scratch.view(self.cols)
    }

    fn smsv(&self, v: &SparseVec, out: &mut [Scalar]) {
        let mut workspace = vec![0.0; self.cols];
        self.smsv_with(v, out, &mut workspace);
    }

    fn smsv_view(&self, v: SparseVecView<'_>, out: &mut [Scalar], workspace: &mut Vec<Scalar>) {
        let ws = ensure_workspace(workspace, self.cols);
        self.smsv_view_with(v, out, ws);
    }

    fn smsv_block(&self, vs: &[SparseVec], out: &mut [Scalar], workspace: &mut Vec<Scalar>) {
        assert_eq!(out.len(), self.rows * vs.len(), "smsv_block output length mismatch");
        // Diagonal-band blocked sweep: each stored diagonal's in-range band
        // is streamed once per chunk, with cb interleaved accumulators per
        // row. The scatter lane for column j = i + off advances with i, so
        // both the diagonal payload and the lane window stream contiguously
        // — the inner loop is a strided broadcast-FMA the autovectorizer
        // handles. Diagonals are visited in sorted offset order, matching
        // the per-vector kernel's per-row (ascending column) accumulation
        // order bit-for-bit.
        let mut b0 = 0;
        while b0 < vs.len() {
            let cb = (vs.len() - b0).min(MAX_SMSV_BLOCK);
            if cb == 1 {
                // A single lane degenerates to the per-vector sweep; run it
                // straight into the output chunk and skip the interleaved
                // accumulator (and its writeback) entirely.
                let ws = ensure_workspace(workspace, self.cols);
                let dst = &mut out[b0 * self.rows..(b0 + 1) * self.rows];
                self.smsv_view_with(vs[b0].as_view(), dst, ws);
                b0 += 1;
                continue;
            }
            let chunk = &vs[b0..b0 + cb];
            let ws = ensure_workspace(workspace, (self.cols + self.rows) * cb);
            debug_assert!(ws.iter().all(|&w| w == 0.0));
            let (scat, acc) = ws.split_at_mut(self.cols * cb);
            for (bi, v) in chunk.iter().enumerate() {
                assert_eq!(v.dim(), self.cols, "SMSV vector dimension mismatch");
                for (j, x) in v.iter() {
                    scat[j * cb + bi] = x;
                }
            }
            match cb {
                1 => self.blocked_band_sweep::<1>(scat, acc),
                2 => self.blocked_band_sweep::<2>(scat, acc),
                4 => self.blocked_band_sweep::<4>(scat, acc),
                8 => self.blocked_band_sweep::<8>(scat, acc),
                16 => self.blocked_band_sweep::<16>(scat, acc),
                32 => self.blocked_band_sweep::<32>(scat, acc),
                _ => self.blocked_band_sweep_any(cb, scat, acc),
            }
            for i in 0..self.rows {
                for bi in 0..cb {
                    out[(b0 + bi) * self.rows + i] = acc[i * cb + bi];
                    acc[i * cb + bi] = 0.0;
                }
            }
            for (bi, v) in chunk.iter().enumerate() {
                for &j in v.indices() {
                    scat[j * cb + bi] = 0.0;
                }
            }
            b0 += cb;
        }
    }

    fn spmv(&self, x: &[Scalar], out: &mut [Scalar]) {
        assert_eq!(x.len(), self.cols, "SpMV vector dimension mismatch");
        assert_eq!(out.len(), self.rows, "SpMV output length mismatch");
        out.fill(0.0);
        for (d, &off) in self.offsets.iter().enumerate() {
            let diag = &self.data[d * self.rows..(d + 1) * self.rows];
            let i_lo = if off < 0 { (-off) as usize } else { 0 };
            let i_hi = self.rows.min((self.cols as isize - off).max(0) as usize);
            for i in i_lo..i_hi {
                out[i] += diag[i] * x[(i as isize + off) as usize];
            }
        }
    }

    fn row_norms_sq(&self, out: &mut [Scalar]) {
        assert_eq!(out.len(), self.rows);
        out.fill(0.0);
        for d in 0..self.offsets.len() {
            let diag = &self.data[d * self.rows..(d + 1) * self.rows];
            for i in 0..self.rows {
                out[i] += diag[i] * diag[i];
            }
        }
    }

    fn to_triplets(&self) -> TripletMatrix {
        let mut t = TripletMatrix::with_capacity(self.rows, self.cols, self.nnz);
        for i in 0..self.rows {
            for (d, &off) in self.offsets.iter().enumerate() {
                let j = i as isize + off;
                if j >= 0 && (j as usize) < self.cols {
                    let v = self.data[d * self.rows + i];
                    if v != 0.0 {
                        t.push(i, j as usize, v);
                    }
                }
            }
        }
        t.compact()
    }

    fn storage_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<isize>()
            + self.data.len() * std::mem::size_of::<Scalar>()
    }

    fn storage_elems(&self) -> usize {
        // Data padded to M per diagonal plus the offsets array; bounded by
        // Table II's (min(M,N)+1)(M+N-1) when every diagonal is occupied.
        self.offsets.len() * self.rows + self.offsets.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DiaMatrix {
        // [1 0 2 0]
        // [0 0 0 0]
        // [3 4 0 5]
        let t = TripletMatrix::from_entries(
            3,
            4,
            vec![(0, 0, 1.0), (0, 2, 2.0), (2, 0, 3.0), (2, 1, 4.0), (2, 3, 5.0)],
        )
        .unwrap();
        DiaMatrix::from_triplets(&t)
    }

    #[test]
    fn offsets_are_distinct_sorted() {
        let m = sample();
        // offsets present: 0-0=0, 2-0=2, 0-2=-2, 1-2=-1, 3-2=1
        assert_eq!(m.offsets(), &[-2, -1, 0, 1, 2]);
        assert_eq!(m.ndiag(), 5);
        assert_eq!(m.dnnz(), 1.0);
    }

    #[test]
    fn get_via_offset_search() {
        let m = sample();
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(2, 3), 5.0);
        assert_eq!(m.get(1, 1), 0.0);
        assert_eq!(m.get(0, 3), 0.0);
    }

    #[test]
    fn smsv_matches_manual() {
        let m = sample();
        let v = SparseVec::new(4, vec![0, 3], vec![2.0, 1.0]);
        let mut out = vec![0.0; 3];
        m.smsv(&v, &mut out);
        assert_eq!(out, vec![2.0, 0.0, 11.0]);
    }

    #[test]
    fn spmv_and_norms() {
        let m = sample();
        let mut out = vec![0.0; 3];
        m.spmv(&[1.0, 1.0, 1.0, 1.0], &mut out);
        assert_eq!(out, vec![3.0, 0.0, 12.0]);
        m.row_norms_sq(&mut out);
        assert_eq!(out, vec![5.0, 0.0, 50.0]);
    }

    #[test]
    fn row_sparse_collects_diagonal_hits() {
        let m = sample();
        let r = m.row_sparse(2);
        assert_eq!(r.indices(), &[0, 1, 3]);
        assert_eq!(r.values(), &[3.0, 4.0, 5.0]);
    }

    #[test]
    fn triplet_round_trip() {
        let m = sample();
        assert_eq!(DiaMatrix::from_triplets(&m.to_triplets()), m);
    }

    #[test]
    fn tridiagonal_is_compact() {
        // 4x4 tridiagonal: 3 diagonals, storage 3*4 + 3 elems.
        let mut t = TripletMatrix::new(4, 4);
        for i in 0..4 {
            t.push(i, i, 2.0);
            if i > 0 {
                t.push(i, i - 1, -1.0);
            }
            if i < 3 {
                t.push(i, i + 1, -1.0);
            }
        }
        let m = DiaMatrix::from_triplets(&t.compact());
        assert_eq!(m.ndiag(), 3);
        assert_eq!(m.storage_elems(), 3 * 4 + 3);
    }

    #[test]
    fn anti_diagonal_worst_case() {
        // An anti-diagonal hits a different diagonal per element: ndig = nnz.
        let mut t = TripletMatrix::new(4, 4);
        for i in 0..4 {
            t.push(i, 3 - i, 1.0);
        }
        let m = DiaMatrix::from_triplets(&t.compact());
        assert_eq!(m.ndiag(), 4);
        assert_eq!(m.nnz(), 4);
        assert_eq!(m.storage_elems(), 4 * 4 + 4);
    }
}
