//! Row-partitioned parallel SMSV/SpMV kernels.
//!
//! The paper's implementation uses OpenMP across the cores of an Ivy Bridge
//! CPU / Xeon Phi; here crossbeam scoped threads split the output rows into
//! contiguous chunks. For COO the split is by *entries* (rebalanced to row
//! boundaries), which is why COO stays load-balanced under high `vdim`
//! while row-split CSR does not.

use crate::{CooMatrix, CsrMatrix, MatrixFormat, RowScratch, Scalar, SparseVec, SparseVecView};
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::thread::JoinHandle;

/// Splits `0..len` into at most `parts` contiguous non-empty ranges.
pub fn split_ranges(len: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    let parts = parts.max(1).min(len.max(1));
    let base = len / parts;
    let extra = len % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let size = base + usize::from(p < extra);
        if size == 0 {
            continue;
        }
        out.push(start..start + size);
        start += size;
    }
    out
}

/// Parallel SMSV for any format, splitting output rows across `threads`
/// workers. Each worker re-runs the row gather on its own slice via
/// [`MatrixFormat::row_sparse`]-free indexing when the format supports it;
/// the generic fallback extracts rows, which is correct for every format.
pub fn par_smsv_generic<M: MatrixFormat + Sync>(
    m: &M,
    v: &SparseVec,
    out: &mut [Scalar],
    threads: usize,
) {
    assert_eq!(out.len(), m.rows(), "output length mismatch");
    assert_eq!(v.dim(), m.cols(), "vector dimension mismatch");
    let ranges = split_ranges(m.rows(), threads);
    if ranges.len() <= 1 {
        m.smsv(v, out);
        return;
    }
    let chunks = partition_disjoint(out, &ranges);
    crossbeam::thread::scope(|s| {
        for (range, chunk) in ranges.iter().zip(chunks) {
            let range = range.clone();
            s.spawn(move |_| {
                for (k, i) in range.enumerate() {
                    chunk[k] = m.row_sparse(i).dot(v);
                }
            });
        }
    })
    .expect("worker thread panicked");
}

/// Parallel CSR SMSV: contiguous row blocks, each worker with its own
/// scatter workspace. Work per worker is Σ dim_i over its rows, so highly
/// imbalanced row lengths (`vdim` large) skew worker runtimes.
pub fn par_smsv_csr(m: &CsrMatrix, v: &SparseVec, out: &mut [Scalar], threads: usize) {
    assert_eq!(out.len(), m.rows(), "output length mismatch");
    assert_eq!(v.dim(), m.cols(), "vector dimension mismatch");
    let ranges = split_ranges(m.rows(), threads);
    if ranges.len() <= 1 {
        m.smsv(v, out);
        return;
    }
    let chunks = partition_disjoint(out, &ranges);
    crossbeam::thread::scope(|s| {
        for (range, chunk) in ranges.iter().zip(chunks) {
            let range = range.clone();
            s.spawn(move |_| {
                let mut ws = vec![0.0; m.cols()];
                v.scatter(&mut ws);
                for (k, i) in range.enumerate() {
                    let (cols, vals) = m.row_view(i);
                    chunk[k] = cols.iter().zip(vals).map(|(&c, &x)| x * ws[c]).sum();
                }
            });
        }
    })
    .expect("worker thread panicked");
}

/// Parallel COO SMSV: entries are split evenly and each split is snapped to
/// the nearest row boundary so workers write disjoint output rows. Because
/// the unit of work is one entry, the partition stays balanced regardless of
/// the row-length distribution.
pub fn par_smsv_coo(m: &CooMatrix, v: &SparseVec, out: &mut [Scalar], threads: usize) {
    assert_eq!(out.len(), m.rows(), "output length mismatch");
    assert_eq!(v.dim(), m.cols(), "vector dimension mismatch");
    let nnz = m.nnz();
    let threads = threads.max(1);
    if threads == 1 || nnz == 0 {
        m.smsv(v, out);
        return;
    }
    // Entry split points snapped forward to row boundaries.
    let row_idx = m.row_idx();
    let mut cuts = vec![0usize];
    for p in 1..threads {
        let target = p * nnz / threads;
        let mut k = target;
        while k < nnz && k > 0 && row_idx[k] == row_idx[k - 1] {
            k += 1;
        }
        if k > *cuts.last().unwrap() && k < nnz {
            cuts.push(k);
        }
    }
    cuts.push(nnz);

    // Row ranges owned by each entry chunk (disjoint by construction).
    let mut row_ranges = Vec::with_capacity(cuts.len() - 1);
    for w in cuts.windows(2) {
        let (s, e) = (w[0], w[1]);
        if s == e {
            row_ranges.push(0..0);
        } else {
            row_ranges.push(row_idx[s]..row_idx[e - 1] + 1);
        }
    }
    out.fill(0.0);
    let chunks = partition_disjoint(out, &row_ranges);
    crossbeam::thread::scope(|s| {
        for ((w, row_range), chunk) in cuts.windows(2).zip(&row_ranges).zip(chunks) {
            let (es, ee) = (w[0], w[1]);
            let row_base = row_range.start;
            s.spawn(move |_| {
                let mut ws = vec![0.0; m.cols()];
                v.scatter(&mut ws);
                for k in es..ee {
                    let r = m.row_idx()[k];
                    chunk[r - row_base] += m.values()[k] * ws[m.col_idx()[k]];
                }
            });
        }
    })
    .expect("worker thread panicked");
}

/// An erased unit of work shipped to a pool worker.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// A persistent SMSV worker pool.
///
/// [`par_smsv_generic`] and friends pay a thread spawn + join per call —
/// fine for one-shot benchmarks, ruinous inside an SMO loop issuing two
/// SMSVs per iteration. `SmsvPool` spawns its workers once and feeds them
/// jobs over channels; a call costs two channel hops instead of a clone/
/// spawn/join cycle.
///
/// With `threads <= 1` (e.g. a single-core host) no workers are spawned at
/// all and every job runs inline on the caller's thread, so the pool is
/// safe to construct unconditionally.
///
/// Not reentrant: jobs submitted via [`SmsvPool::run`] must not themselves
/// call back into the same pool.
pub struct SmsvPool {
    tx: Option<Sender<Job>>,
    done_rx: Receiver<bool>,
    workers: Vec<JoinHandle<()>>,
    threads: usize,
}

impl std::fmt::Debug for SmsvPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SmsvPool")
            .field("threads", &self.threads)
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl SmsvPool {
    /// Creates a pool with `threads` logical workers. `threads <= 1` spawns
    /// no OS threads and runs jobs inline.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let (tx, rx) = unbounded::<Job>();
        let (done_tx, done_rx) = unbounded::<bool>();
        let mut workers = Vec::new();
        if threads > 1 {
            for _ in 0..threads {
                let rx = rx.clone();
                let done_tx = done_tx.clone();
                workers.push(std::thread::spawn(move || {
                    while let Ok(job) = rx.recv() {
                        let panicked = catch_unwind(AssertUnwindSafe(job)).is_err();
                        done_tx.send(panicked).ok();
                    }
                }));
            }
        }
        Self { tx: Some(tx), done_rx, workers, threads }
    }

    /// Logical worker count the pool was built with.
    #[inline]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs every job to completion, blocking until all have finished.
    ///
    /// Jobs may borrow from the caller's stack (`'env`), like scoped
    /// threads: the lifetime erasure below is sound because `run` does not
    /// return until every submitted job has reported completion, so no job
    /// can outlive the borrows it captures.
    ///
    /// # Panics
    /// Panics if any job panicked on a worker.
    pub fn run<'env>(&self, jobs: Vec<Box<dyn FnOnce() + Send + 'env>>) {
        if self.workers.is_empty() {
            for job in jobs {
                job();
            }
            return;
        }
        let tx = self.tx.as_ref().expect("pool alive");
        let sent = jobs.len();
        for job in jobs {
            // SAFETY: the job is joined (via done_rx) before `run` returns,
            // so extending its lifetime to 'static cannot let it observe a
            // dangling borrow.
            let job: Job =
                unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Job>(job) };
            assert!(tx.send(job).is_ok(), "pool workers alive");
        }
        let mut panicked = false;
        for _ in 0..sent {
            panicked |= self.done_rx.recv().expect("pool workers alive");
        }
        assert!(!panicked, "SMSV pool job panicked");
    }

    /// Pool-backed SMSV over borrowed data: output rows are split across the
    /// workers, each computing its chunk with a private [`RowScratch`] (no
    /// per-row allocation). Serial fallback uses the caller-side scratch the
    /// same way.
    pub fn smsv_generic<M: MatrixFormat + Sync>(
        &self,
        m: &M,
        v: SparseVecView<'_>,
        out: &mut [Scalar],
    ) {
        assert_eq!(out.len(), m.rows(), "output length mismatch");
        assert_eq!(v.dim(), m.cols(), "vector dimension mismatch");
        let ranges = split_ranges(m.rows(), self.threads);
        if self.workers.is_empty() || ranges.len() <= 1 {
            let mut scratch = RowScratch::new();
            for (i, slot) in out.iter_mut().enumerate() {
                *slot = m.row_view_in(i, &mut scratch).dot(v);
            }
            return;
        }
        let chunks = partition_disjoint(out, &ranges);
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = ranges
            .iter()
            .zip(chunks)
            .map(|(range, chunk)| {
                let range = range.clone();
                Box::new(move || {
                    let mut scratch = RowScratch::new();
                    for (k, i) in range.enumerate() {
                        chunk[k] = m.row_view_in(i, &mut scratch).dot(v);
                    }
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        self.run(jobs);
    }
}

impl Drop for SmsvPool {
    fn drop(&mut self) {
        // Closing the job channel lets every worker's recv() fail and exit.
        self.tx.take();
        for w in self.workers.drain(..) {
            w.join().ok();
        }
    }
}

/// Splits a mutable slice into disjoint sub-slices described by sorted,
/// non-overlapping ranges.
fn partition_disjoint<'a>(
    mut slice: &'a mut [Scalar],
    ranges: &[std::ops::Range<usize>],
) -> Vec<&'a mut [Scalar]> {
    let mut consumed = 0usize;
    let mut out = Vec::with_capacity(ranges.len());
    for r in ranges {
        debug_assert!(r.start >= consumed, "ranges must be sorted and disjoint");
        let skip = r.start - consumed;
        let (_, rest) = slice.split_at_mut(skip);
        let (chunk, rest) = rest.split_at_mut(r.len());
        out.push(chunk);
        slice = rest;
        consumed = r.end;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TripletMatrix;

    fn skewed_matrix() -> TripletMatrix {
        // Row 0 is long (vdim high), rest are short.
        let mut t = TripletMatrix::new(16, 64);
        for j in 0..64 {
            t.push(0, j, (j + 1) as f64);
        }
        for i in 1..16 {
            t.push(i, i % 64, i as f64);
            t.push(i, (i * 3 + 1) % 64, 1.0);
        }
        t.compact()
    }

    #[test]
    fn split_ranges_covers_everything() {
        for (len, parts) in [(10, 3), (7, 7), (5, 9), (1, 4), (100, 8)] {
            let ranges = split_ranges(len, parts);
            assert_eq!(ranges.iter().map(|r| r.len()).sum::<usize>(), len);
            assert_eq!(ranges.first().unwrap().start, 0);
            assert_eq!(ranges.last().unwrap().end, len);
            for w in ranges.windows(2) {
                assert_eq!(w[0].end, w[1].start);
            }
        }
    }

    #[test]
    fn par_csr_matches_serial() {
        let t = skewed_matrix();
        let m = CsrMatrix::from_triplets(&t);
        let v = m.row_sparse(0);
        let mut serial = vec![0.0; 16];
        m.smsv(&v, &mut serial);
        for threads in [1, 2, 4, 16, 32] {
            let mut par = vec![0.0; 16];
            par_smsv_csr(&m, &v, &mut par, threads);
            for (a, b) in par.iter().zip(&serial) {
                assert!((a - b).abs() < 1e-9, "threads={threads}");
            }
        }
    }

    #[test]
    fn par_coo_matches_serial() {
        let t = skewed_matrix();
        let m = CooMatrix::from_triplets(&t);
        let v = m.row_sparse(0);
        let mut serial = vec![0.0; 16];
        m.smsv(&v, &mut serial);
        for threads in [1, 2, 3, 8, 64] {
            let mut par = vec![0.0; 16];
            par_smsv_coo(&m, &v, &mut par, threads);
            for (a, b) in par.iter().zip(&serial) {
                assert!((a - b).abs() < 1e-9, "threads={threads}");
            }
        }
    }

    #[test]
    fn par_generic_matches_serial_for_all_formats() {
        use crate::{AnyMatrix, Format};
        let t = skewed_matrix();
        let v = SparseVec::new(64, vec![0, 5, 33], vec![1.0, -2.0, 4.0]);
        let csr = CsrMatrix::from_triplets(&t);
        let mut expect = vec![0.0; 16];
        csr.smsv(&v, &mut expect);
        for fmt in Format::ALL {
            let m = AnyMatrix::from_triplets(fmt, &t);
            let mut got = vec![0.0; 16];
            par_smsv_generic(&m, &v, &mut got, 4);
            for (a, b) in got.iter().zip(&expect) {
                assert!((a - b).abs() < 1e-9, "{fmt}");
            }
        }
    }

    #[test]
    fn pool_matches_serial_for_all_formats() {
        use crate::{AnyMatrix, Format};
        let t = skewed_matrix();
        let v = SparseVec::new(64, vec![0, 5, 33], vec![1.0, -2.0, 4.0]);
        let csr = CsrMatrix::from_triplets(&t);
        let mut expect = vec![0.0; 16];
        csr.smsv(&v, &mut expect);
        for threads in [1, 2, 4] {
            let pool = SmsvPool::new(threads);
            assert_eq!(pool.threads(), threads);
            for fmt in Format::ALL {
                let m = AnyMatrix::from_triplets(fmt, &t);
                let mut got = vec![0.0; 16];
                pool.smsv_generic(&m, v.as_view(), &mut got);
                for (a, b) in got.iter().zip(&expect) {
                    assert!((a - b).abs() < 1e-9, "{fmt} threads={threads}");
                }
            }
        }
    }

    #[test]
    fn pool_is_reusable_across_calls() {
        let t = skewed_matrix();
        let m = CsrMatrix::from_triplets(&t);
        let v = m.row_sparse(0);
        let mut expect = vec![0.0; 16];
        m.smsv(&v, &mut expect);
        let pool = SmsvPool::new(3);
        for _ in 0..50 {
            let mut got = vec![0.0; 16];
            pool.smsv_generic(&m, v.as_view(), &mut got);
            assert_eq!(got, expect);
        }
    }

    #[test]
    fn pool_run_executes_borrowing_jobs() {
        let pool = SmsvPool::new(4);
        let mut cells = vec![0usize; 8];
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = cells
            .iter_mut()
            .enumerate()
            .map(|(i, c)| Box::new(move || *c = i + 1) as Box<dyn FnOnce() + Send + '_>)
            .collect();
        pool.run(jobs);
        assert_eq!(cells, vec![1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = SmsvPool::new(1);
        let main_id = std::thread::current().id();
        let mut seen = None;
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = vec![Box::new(|| {
            seen = Some(std::thread::current().id());
        })];
        pool.run(jobs);
        assert_eq!(seen, Some(main_id));
    }

    #[test]
    fn coo_single_row_matrix() {
        // All nnz in one row: the entry split must not produce overlapping
        // row ranges.
        let mut t = TripletMatrix::new(4, 32);
        for j in 0..32 {
            t.push(2, j, 1.0);
        }
        let m = CooMatrix::from_triplets(&t.compact());
        let v = SparseVec::new(32, (0..32).collect(), vec![1.0; 32]);
        let mut out = vec![0.0; 4];
        par_smsv_coo(&m, &v, &mut out, 8);
        assert_eq!(out, vec![0.0, 0.0, 32.0, 0.0]);
    }
}
