//! Row-partitioned parallel SMSV/SpMV kernels.
//!
//! The paper's implementation uses OpenMP across the cores of an Ivy Bridge
//! CPU / Xeon Phi; here crossbeam scoped threads split the output rows into
//! contiguous chunks. For COO the split is by *entries* (rebalanced to row
//! boundaries), which is why COO stays load-balanced under high `vdim`
//! while row-split CSR does not.

use crate::{CooMatrix, CsrMatrix, MatrixFormat, Scalar, SparseVec};

/// Splits `0..len` into at most `parts` contiguous non-empty ranges.
pub fn split_ranges(len: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    let parts = parts.max(1).min(len.max(1));
    let base = len / parts;
    let extra = len % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let size = base + usize::from(p < extra);
        if size == 0 {
            continue;
        }
        out.push(start..start + size);
        start += size;
    }
    out
}

/// Parallel SMSV for any format, splitting output rows across `threads`
/// workers. Each worker re-runs the row gather on its own slice via
/// [`MatrixFormat::row_sparse`]-free indexing when the format supports it;
/// the generic fallback extracts rows, which is correct for every format.
pub fn par_smsv_generic<M: MatrixFormat + Sync>(
    m: &M,
    v: &SparseVec,
    out: &mut [Scalar],
    threads: usize,
) {
    assert_eq!(out.len(), m.rows(), "output length mismatch");
    assert_eq!(v.dim(), m.cols(), "vector dimension mismatch");
    let ranges = split_ranges(m.rows(), threads);
    if ranges.len() <= 1 {
        m.smsv(v, out);
        return;
    }
    let chunks = partition_disjoint(out, &ranges);
    crossbeam::thread::scope(|s| {
        for (range, chunk) in ranges.iter().zip(chunks) {
            let range = range.clone();
            s.spawn(move |_| {
                for (k, i) in range.enumerate() {
                    chunk[k] = m.row_sparse(i).dot(v);
                }
            });
        }
    })
    .expect("worker thread panicked");
}

/// Parallel CSR SMSV: contiguous row blocks, each worker with its own
/// scatter workspace. Work per worker is Σ dim_i over its rows, so highly
/// imbalanced row lengths (`vdim` large) skew worker runtimes.
pub fn par_smsv_csr(m: &CsrMatrix, v: &SparseVec, out: &mut [Scalar], threads: usize) {
    assert_eq!(out.len(), m.rows(), "output length mismatch");
    assert_eq!(v.dim(), m.cols(), "vector dimension mismatch");
    let ranges = split_ranges(m.rows(), threads);
    if ranges.len() <= 1 {
        m.smsv(v, out);
        return;
    }
    let chunks = partition_disjoint(out, &ranges);
    crossbeam::thread::scope(|s| {
        for (range, chunk) in ranges.iter().zip(chunks) {
            let range = range.clone();
            s.spawn(move |_| {
                let mut ws = vec![0.0; m.cols()];
                v.scatter(&mut ws);
                for (k, i) in range.enumerate() {
                    let (cols, vals) = m.row_view(i);
                    chunk[k] = cols.iter().zip(vals).map(|(&c, &x)| x * ws[c]).sum();
                }
            });
        }
    })
    .expect("worker thread panicked");
}

/// Parallel COO SMSV: entries are split evenly and each split is snapped to
/// the nearest row boundary so workers write disjoint output rows. Because
/// the unit of work is one entry, the partition stays balanced regardless of
/// the row-length distribution.
pub fn par_smsv_coo(m: &CooMatrix, v: &SparseVec, out: &mut [Scalar], threads: usize) {
    assert_eq!(out.len(), m.rows(), "output length mismatch");
    assert_eq!(v.dim(), m.cols(), "vector dimension mismatch");
    let nnz = m.nnz();
    let threads = threads.max(1);
    if threads == 1 || nnz == 0 {
        m.smsv(v, out);
        return;
    }
    // Entry split points snapped forward to row boundaries.
    let row_idx = m.row_idx();
    let mut cuts = vec![0usize];
    for p in 1..threads {
        let target = p * nnz / threads;
        let mut k = target;
        while k < nnz && k > 0 && row_idx[k] == row_idx[k - 1] {
            k += 1;
        }
        if k > *cuts.last().unwrap() && k < nnz {
            cuts.push(k);
        }
    }
    cuts.push(nnz);

    // Row ranges owned by each entry chunk (disjoint by construction).
    let mut row_ranges = Vec::with_capacity(cuts.len() - 1);
    for w in cuts.windows(2) {
        let (s, e) = (w[0], w[1]);
        if s == e {
            row_ranges.push(0..0);
        } else {
            row_ranges.push(row_idx[s]..row_idx[e - 1] + 1);
        }
    }
    out.fill(0.0);
    let chunks = partition_disjoint(out, &row_ranges);
    crossbeam::thread::scope(|s| {
        for ((w, row_range), chunk) in cuts.windows(2).zip(&row_ranges).zip(chunks) {
            let (es, ee) = (w[0], w[1]);
            let row_base = row_range.start;
            s.spawn(move |_| {
                let mut ws = vec![0.0; m.cols()];
                v.scatter(&mut ws);
                for k in es..ee {
                    let r = m.row_idx()[k];
                    chunk[r - row_base] += m.values()[k] * ws[m.col_idx()[k]];
                }
            });
        }
    })
    .expect("worker thread panicked");
}

/// Splits a mutable slice into disjoint sub-slices described by sorted,
/// non-overlapping ranges.
fn partition_disjoint<'a>(
    mut slice: &'a mut [Scalar],
    ranges: &[std::ops::Range<usize>],
) -> Vec<&'a mut [Scalar]> {
    let mut consumed = 0usize;
    let mut out = Vec::with_capacity(ranges.len());
    for r in ranges {
        debug_assert!(r.start >= consumed, "ranges must be sorted and disjoint");
        let skip = r.start - consumed;
        let (_, rest) = slice.split_at_mut(skip);
        let (chunk, rest) = rest.split_at_mut(r.len());
        out.push(chunk);
        slice = rest;
        consumed = r.end;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TripletMatrix;

    fn skewed_matrix() -> TripletMatrix {
        // Row 0 is long (vdim high), rest are short.
        let mut t = TripletMatrix::new(16, 64);
        for j in 0..64 {
            t.push(0, j, (j + 1) as f64);
        }
        for i in 1..16 {
            t.push(i, i % 64, i as f64);
            t.push(i, (i * 3 + 1) % 64, 1.0);
        }
        t.compact()
    }

    #[test]
    fn split_ranges_covers_everything() {
        for (len, parts) in [(10, 3), (7, 7), (5, 9), (1, 4), (100, 8)] {
            let ranges = split_ranges(len, parts);
            assert_eq!(ranges.iter().map(|r| r.len()).sum::<usize>(), len);
            assert_eq!(ranges.first().unwrap().start, 0);
            assert_eq!(ranges.last().unwrap().end, len);
            for w in ranges.windows(2) {
                assert_eq!(w[0].end, w[1].start);
            }
        }
    }

    #[test]
    fn par_csr_matches_serial() {
        let t = skewed_matrix();
        let m = CsrMatrix::from_triplets(&t);
        let v = m.row_sparse(0);
        let mut serial = vec![0.0; 16];
        m.smsv(&v, &mut serial);
        for threads in [1, 2, 4, 16, 32] {
            let mut par = vec![0.0; 16];
            par_smsv_csr(&m, &v, &mut par, threads);
            for (a, b) in par.iter().zip(&serial) {
                assert!((a - b).abs() < 1e-9, "threads={threads}");
            }
        }
    }

    #[test]
    fn par_coo_matches_serial() {
        let t = skewed_matrix();
        let m = CooMatrix::from_triplets(&t);
        let v = m.row_sparse(0);
        let mut serial = vec![0.0; 16];
        m.smsv(&v, &mut serial);
        for threads in [1, 2, 3, 8, 64] {
            let mut par = vec![0.0; 16];
            par_smsv_coo(&m, &v, &mut par, threads);
            for (a, b) in par.iter().zip(&serial) {
                assert!((a - b).abs() < 1e-9, "threads={threads}");
            }
        }
    }

    #[test]
    fn par_generic_matches_serial_for_all_formats() {
        use crate::{AnyMatrix, Format};
        let t = skewed_matrix();
        let v = SparseVec::new(64, vec![0, 5, 33], vec![1.0, -2.0, 4.0]);
        let csr = CsrMatrix::from_triplets(&t);
        let mut expect = vec![0.0; 16];
        csr.smsv(&v, &mut expect);
        for fmt in Format::ALL {
            let m = AnyMatrix::from_triplets(fmt, &t);
            let mut got = vec![0.0; 16];
            par_smsv_generic(&m, &v, &mut got, 4);
            for (a, b) in got.iter().zip(&expect) {
                assert!((a - b).abs() < 1e-9, "{fmt}");
            }
        }
    }

    #[test]
    fn coo_single_row_matrix() {
        // All nnz in one row: the entry split must not produce overlapping
        // row ranges.
        let mut t = TripletMatrix::new(4, 32);
        for j in 0..32 {
            t.push(2, j, 1.0);
        }
        let m = CooMatrix::from_triplets(&t.compact());
        let v = SparseVec::new(32, (0..32).collect(), vec![1.0; 32]);
        let mut out = vec![0.0; 4];
        par_smsv_coo(&m, &v, &mut out, 8);
        assert_eq!(out, vec![0.0, 0.0, 32.0, 0.0]);
    }
}
