//! Sparse vectors.
//!
//! The SMO inner loop multiplies the data matrix by one of its own rows
//! (`X · X_high` and `X · X_low`), so the right-hand side of the bottleneck
//! kernel is itself sparse — this is what the paper calls SMSV (sparse-matrix
//! × **sparse**-vector), distinguishing it from classical SpMV.

use crate::Scalar;

/// A sparse vector stored as parallel `(index, value)` arrays with indices
/// strictly increasing.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseVec {
    dim: usize,
    indices: Vec<usize>,
    values: Vec<Scalar>,
}

impl SparseVec {
    /// Builds a sparse vector from parallel arrays.
    ///
    /// # Panics
    /// Panics if the arrays differ in length, an index is `>= dim`, or the
    /// indices are not strictly increasing.
    pub fn new(dim: usize, indices: Vec<usize>, values: Vec<Scalar>) -> Self {
        assert_eq!(indices.len(), values.len(), "index/value length mismatch");
        for w in indices.windows(2) {
            assert!(w[0] < w[1], "indices must be strictly increasing");
        }
        if let Some(&last) = indices.last() {
            assert!(last < dim, "index {last} out of bounds for dim {dim}");
        }
        Self { dim, indices, values }
    }

    /// An all-zero vector of the given dimension.
    pub fn zeros(dim: usize) -> Self {
        Self { dim, indices: Vec::new(), values: Vec::new() }
    }

    /// Builds from a dense slice, keeping only non-zero entries.
    pub fn from_dense(dense: &[Scalar]) -> Self {
        let mut indices = Vec::new();
        let mut values = Vec::new();
        for (i, &v) in dense.iter().enumerate() {
            if v != 0.0 {
                indices.push(i);
                values.push(v);
            }
        }
        Self { dim: dense.len(), indices, values }
    }

    /// Dimension of the vector (including implicit zeros).
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of explicitly stored non-zeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Stored indices, strictly increasing.
    #[inline]
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// Stored values, parallel to [`SparseVec::indices`].
    #[inline]
    pub fn values(&self) -> &[Scalar] {
        &self.values
    }

    /// Iterates over `(index, value)` pairs of stored entries.
    pub fn iter(&self) -> impl Iterator<Item = (usize, Scalar)> + '_ {
        self.indices.iter().copied().zip(self.values.iter().copied())
    }

    /// Value at position `i` (zero if not stored).
    pub fn get(&self, i: usize) -> Scalar {
        debug_assert!(i < self.dim);
        match self.indices.binary_search(&i) {
            Ok(pos) => self.values[pos],
            Err(_) => 0.0,
        }
    }

    /// Materialises the vector densely.
    pub fn to_dense(&self) -> Vec<Scalar> {
        let mut out = vec![0.0; self.dim];
        for (i, v) in self.iter() {
            out[i] = v;
        }
        out
    }

    /// Scatters the stored values into a caller-provided dense workspace.
    /// The workspace must be at least `dim` long and zeroed where this
    /// vector has no entries; use together with [`SparseVec::unscatter`].
    pub fn scatter(&self, workspace: &mut [Scalar]) {
        debug_assert!(workspace.len() >= self.dim);
        for (i, v) in self.iter() {
            workspace[i] = v;
        }
    }

    /// Undoes [`SparseVec::scatter`], restoring the touched workspace slots
    /// to zero. Cheaper than re-zeroing the whole workspace when
    /// `nnz << dim`.
    pub fn unscatter(&self, workspace: &mut [Scalar]) {
        for &i in &self.indices {
            workspace[i] = 0.0;
        }
    }

    /// Dot product with another sparse vector via sorted-merge join.
    pub fn dot(&self, other: &SparseVec) -> Scalar {
        debug_assert_eq!(self.dim, other.dim, "dimension mismatch in dot");
        let (mut a, mut b) = (0usize, 0usize);
        let mut acc = 0.0;
        while a < self.indices.len() && b < other.indices.len() {
            let (ia, ib) = (self.indices[a], other.indices[b]);
            if ia == ib {
                acc += self.values[a] * other.values[b];
                a += 1;
                b += 1;
            } else if ia < ib {
                a += 1;
            } else {
                b += 1;
            }
        }
        acc
    }

    /// Dot product against a dense slice.
    pub fn dot_dense(&self, dense: &[Scalar]) -> Scalar {
        debug_assert!(dense.len() >= self.dim);
        self.iter().map(|(i, v)| v * dense[i]).sum()
    }

    /// Squared Euclidean norm of the vector.
    pub fn norm_sq(&self) -> Scalar {
        self.values.iter().map(|v| v * v).sum()
    }

    /// Squared Euclidean distance to another sparse vector,
    /// `||a - b||^2 = ||a||^2 + ||b||^2 - 2 a·b`.
    pub fn dist_sq(&self, other: &SparseVec) -> Scalar {
        (self.norm_sq() + other.norm_sq() - 2.0 * self.dot(other)).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(dim: usize, pairs: &[(usize, Scalar)]) -> SparseVec {
        SparseVec::new(
            dim,
            pairs.iter().map(|p| p.0).collect(),
            pairs.iter().map(|p| p.1).collect(),
        )
    }

    #[test]
    fn from_dense_round_trip() {
        let d = [0.0, 1.5, 0.0, -2.0, 0.0];
        let s = SparseVec::from_dense(&d);
        assert_eq!(s.nnz(), 2);
        assert_eq!(s.to_dense(), d.to_vec());
    }

    #[test]
    fn get_present_and_absent() {
        let s = v(6, &[(1, 2.0), (4, 3.0)]);
        assert_eq!(s.get(1), 2.0);
        assert_eq!(s.get(4), 3.0);
        assert_eq!(s.get(0), 0.0);
        assert_eq!(s.get(5), 0.0);
    }

    #[test]
    fn dot_merge_matches_dense() {
        let a = v(8, &[(0, 1.0), (3, 2.0), (7, -1.0)]);
        let b = v(8, &[(3, 4.0), (5, 9.0), (7, 2.0)]);
        assert_eq!(a.dot(&b), 2.0 * 4.0 + -2.0);
        let bd = b.to_dense();
        assert_eq!(a.dot_dense(&bd), a.dot(&b));
    }

    #[test]
    fn dot_disjoint_is_zero() {
        let a = v(4, &[(0, 1.0), (2, 1.0)]);
        let b = v(4, &[(1, 1.0), (3, 1.0)]);
        assert_eq!(a.dot(&b), 0.0);
    }

    #[test]
    fn scatter_unscatter_restores_zeros() {
        let s = v(5, &[(1, 7.0), (3, 8.0)]);
        let mut ws = vec![0.0; 5];
        s.scatter(&mut ws);
        assert_eq!(ws, vec![0.0, 7.0, 0.0, 8.0, 0.0]);
        s.unscatter(&mut ws);
        assert_eq!(ws, vec![0.0; 5]);
    }

    #[test]
    fn norms_and_distance() {
        let a = v(4, &[(0, 3.0), (1, 4.0)]);
        let b = v(4, &[(0, 3.0), (1, 4.0)]);
        assert_eq!(a.norm_sq(), 25.0);
        assert_eq!(a.dist_sq(&b), 0.0);
        let c = v(4, &[(2, 1.0)]);
        assert_eq!(a.dist_sq(&c), 26.0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_unsorted_indices() {
        let _ = SparseVec::new(4, vec![2, 1], vec![1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn rejects_out_of_range_index() {
        let _ = SparseVec::new(2, vec![2], vec![1.0]);
    }

    #[test]
    fn zeros_has_no_entries() {
        let z = SparseVec::zeros(10);
        assert_eq!(z.nnz(), 0);
        assert_eq!(z.dim(), 10);
        assert_eq!(z.norm_sq(), 0.0);
    }
}
