//! Sparse vectors.
//!
//! The SMO inner loop multiplies the data matrix by one of its own rows
//! (`X · X_high` and `X · X_low`), so the right-hand side of the bottleneck
//! kernel is itself sparse — this is what the paper calls SMSV (sparse-matrix
//! × **sparse**-vector), distinguishing it from classical SpMV.

use crate::Scalar;

/// A sparse vector stored as parallel `(index, value)` arrays with indices
/// strictly increasing.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseVec {
    dim: usize,
    indices: Vec<usize>,
    values: Vec<Scalar>,
}

impl SparseVec {
    /// Builds a sparse vector from parallel arrays.
    ///
    /// # Panics
    /// Panics if the arrays differ in length, an index is `>= dim`, or the
    /// indices are not strictly increasing.
    pub fn new(dim: usize, indices: Vec<usize>, values: Vec<Scalar>) -> Self {
        assert_eq!(indices.len(), values.len(), "index/value length mismatch");
        for w in indices.windows(2) {
            assert!(w[0] < w[1], "indices must be strictly increasing");
        }
        if let Some(&last) = indices.last() {
            assert!(last < dim, "index {last} out of bounds for dim {dim}");
        }
        Self { dim, indices, values }
    }

    /// An all-zero vector of the given dimension.
    pub fn zeros(dim: usize) -> Self {
        Self { dim, indices: Vec::new(), values: Vec::new() }
    }

    /// Builds from a dense slice, keeping only non-zero entries.
    pub fn from_dense(dense: &[Scalar]) -> Self {
        let mut indices = Vec::new();
        let mut values = Vec::new();
        for (i, &v) in dense.iter().enumerate() {
            if v != 0.0 {
                indices.push(i);
                values.push(v);
            }
        }
        Self { dim: dense.len(), indices, values }
    }

    /// Dimension of the vector (including implicit zeros).
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of explicitly stored non-zeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Stored indices, strictly increasing.
    #[inline]
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// Stored values, parallel to [`SparseVec::indices`].
    #[inline]
    pub fn values(&self) -> &[Scalar] {
        &self.values
    }

    /// Iterates over `(index, value)` pairs of stored entries.
    pub fn iter(&self) -> impl Iterator<Item = (usize, Scalar)> + '_ {
        self.indices.iter().copied().zip(self.values.iter().copied())
    }

    /// Value at position `i` (zero if not stored).
    pub fn get(&self, i: usize) -> Scalar {
        debug_assert!(i < self.dim);
        match self.indices.binary_search(&i) {
            Ok(pos) => self.values[pos],
            Err(_) => 0.0,
        }
    }

    /// Materialises the vector densely.
    pub fn to_dense(&self) -> Vec<Scalar> {
        let mut out = vec![0.0; self.dim];
        for (i, v) in self.iter() {
            out[i] = v;
        }
        out
    }

    /// Scatters the stored values into a caller-provided dense workspace.
    /// The workspace must be at least `dim` long and zeroed where this
    /// vector has no entries; use together with [`SparseVec::unscatter`].
    pub fn scatter(&self, workspace: &mut [Scalar]) {
        debug_assert!(workspace.len() >= self.dim);
        for (i, v) in self.iter() {
            workspace[i] = v;
        }
    }

    /// Undoes [`SparseVec::scatter`], restoring the touched workspace slots
    /// to zero. Cheaper than re-zeroing the whole workspace when
    /// `nnz << dim`.
    pub fn unscatter(&self, workspace: &mut [Scalar]) {
        for &i in &self.indices {
            workspace[i] = 0.0;
        }
    }

    /// Dot product with another sparse vector via sorted-merge join.
    pub fn dot(&self, other: &SparseVec) -> Scalar {
        debug_assert_eq!(self.dim, other.dim, "dimension mismatch in dot");
        let (mut a, mut b) = (0usize, 0usize);
        let mut acc = 0.0;
        while a < self.indices.len() && b < other.indices.len() {
            let (ia, ib) = (self.indices[a], other.indices[b]);
            if ia == ib {
                acc += self.values[a] * other.values[b];
                a += 1;
                b += 1;
            } else if ia < ib {
                a += 1;
            } else {
                b += 1;
            }
        }
        acc
    }

    /// Dot product against a dense slice.
    pub fn dot_dense(&self, dense: &[Scalar]) -> Scalar {
        debug_assert!(dense.len() >= self.dim);
        self.iter().map(|(i, v)| v * dense[i]).sum()
    }

    /// Squared Euclidean norm of the vector.
    pub fn norm_sq(&self) -> Scalar {
        self.values.iter().map(|v| v * v).sum()
    }

    /// Squared Euclidean distance to another sparse vector,
    /// `||a - b||^2 = ||a||^2 + ||b||^2 - 2 a·b`.
    pub fn dist_sq(&self, other: &SparseVec) -> Scalar {
        (self.norm_sq() + other.norm_sq() - 2.0 * self.dot(other)).max(0.0)
    }

    /// Borrows this vector as a [`SparseVecView`] without copying.
    #[inline]
    pub fn as_view(&self) -> SparseVecView<'_> {
        SparseVecView { dim: self.dim, indices: &self.indices, values: &self.values }
    }
}

/// A borrowed sparse vector: the zero-copy counterpart of [`SparseVec`].
///
/// Views are how matrix rows reach the SMSV kernels without a heap
/// allocation per access: contiguous formats (CSR, COO) hand out slices of
/// their own storage directly, and everything else fills a caller-owned
/// [`RowScratch`] whose capacity persists across calls. Same invariants as
/// `SparseVec`: indices strictly increasing, all `< dim`.
#[derive(Debug, Clone, Copy)]
pub struct SparseVecView<'a> {
    dim: usize,
    indices: &'a [usize],
    values: &'a [Scalar],
}

impl<'a> SparseVecView<'a> {
    /// Builds a view over parallel index/value slices.
    ///
    /// Invariants are debug-asserted only: views are produced on the hot
    /// path by format code that already guarantees sorted bounds-checked
    /// rows.
    #[inline]
    pub fn new(dim: usize, indices: &'a [usize], values: &'a [Scalar]) -> Self {
        debug_assert_eq!(indices.len(), values.len(), "index/value length mismatch");
        debug_assert!(
            indices.windows(2).all(|w| w[0] < w[1]),
            "indices must be strictly increasing"
        );
        debug_assert!(indices.last().is_none_or(|&last| last < dim), "index out of bounds");
        Self { dim, indices, values }
    }

    /// Dimension of the vector (including implicit zeros).
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of explicitly stored non-zeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Stored indices, strictly increasing.
    #[inline]
    pub fn indices(&self) -> &'a [usize] {
        self.indices
    }

    /// Stored values, parallel to [`SparseVecView::indices`].
    #[inline]
    pub fn values(&self) -> &'a [Scalar] {
        self.values
    }

    /// Iterates over `(index, value)` pairs of stored entries.
    pub fn iter(&self) -> impl Iterator<Item = (usize, Scalar)> + 'a {
        self.indices.iter().copied().zip(self.values.iter().copied())
    }

    /// Value at position `i` (zero if not stored).
    pub fn get(&self, i: usize) -> Scalar {
        debug_assert!(i < self.dim);
        match self.indices.binary_search(&i) {
            Ok(pos) => self.values[pos],
            Err(_) => 0.0,
        }
    }

    /// Dot product with another view via sorted-merge join.
    pub fn dot(&self, other: SparseVecView<'_>) -> Scalar {
        debug_assert_eq!(self.dim, other.dim, "dimension mismatch in dot");
        let (mut a, mut b) = (0usize, 0usize);
        let mut acc = 0.0;
        while a < self.indices.len() && b < other.indices.len() {
            let (ia, ib) = (self.indices[a], other.indices[b]);
            if ia == ib {
                acc += self.values[a] * other.values[b];
                a += 1;
                b += 1;
            } else if ia < ib {
                a += 1;
            } else {
                b += 1;
            }
        }
        acc
    }

    /// Dot product against a dense slice.
    pub fn dot_dense(&self, dense: &[Scalar]) -> Scalar {
        debug_assert!(dense.len() >= self.dim);
        self.iter().map(|(i, v)| v * dense[i]).sum()
    }

    /// Squared Euclidean norm.
    pub fn norm_sq(&self) -> Scalar {
        self.values.iter().map(|v| v * v).sum()
    }

    /// Scatters stored values into a dense workspace (`>= dim` long, zero
    /// where this view has no entries); pair with
    /// [`SparseVecView::unscatter`].
    pub fn scatter(&self, workspace: &mut [Scalar]) {
        debug_assert!(workspace.len() >= self.dim);
        for (i, v) in self.iter() {
            workspace[i] = v;
        }
    }

    /// Restores the workspace slots touched by [`SparseVecView::scatter`]
    /// to zero.
    pub fn unscatter(&self, workspace: &mut [Scalar]) {
        for &i in self.indices {
            workspace[i] = 0.0;
        }
    }

    /// Copies the view into an owned [`SparseVec`] (allocates).
    pub fn to_owned(&self) -> SparseVec {
        SparseVec { dim: self.dim, indices: self.indices.to_vec(), values: self.values.to_vec() }
    }
}

/// Reusable buffer a matrix format fills to serve a row view when its
/// storage is not row-contiguous (ELL, DIA, DEN, CSC, BCSR, HYB, JDS).
///
/// Capacity is retained across [`RowScratch::clear`] calls, so after
/// warm-up, producing a row view allocates nothing.
#[derive(Debug, Default, Clone)]
pub struct RowScratch {
    indices: Vec<usize>,
    values: Vec<Scalar>,
}

impl RowScratch {
    /// An empty scratch; grows on first use and then stays allocated.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empties the scratch, keeping its capacity.
    #[inline]
    pub fn clear(&mut self) {
        self.indices.clear();
        self.values.clear();
    }

    /// Appends one `(index, value)` entry. Callers must push indices in
    /// strictly increasing order or call [`RowScratch::sort_pairs`] before
    /// taking a view.
    #[inline]
    pub fn push(&mut self, index: usize, value: Scalar) {
        self.indices.push(index);
        self.values.push(value);
    }

    /// Number of buffered entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// Whether the scratch holds no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// Co-sorts the buffered pairs by index (insertion sort: rows are
    /// short and often nearly sorted, and this allocates nothing).
    pub fn sort_pairs(&mut self) {
        for i in 1..self.indices.len() {
            let (ki, kv) = (self.indices[i], self.values[i]);
            let mut j = i;
            while j > 0 && self.indices[j - 1] > ki {
                self.indices[j] = self.indices[j - 1];
                self.values[j] = self.values[j - 1];
                j -= 1;
            }
            self.indices[j] = ki;
            self.values[j] = kv;
        }
    }

    /// Takes a [`SparseVecView`] over the buffered entries.
    #[inline]
    pub fn view(&self, dim: usize) -> SparseVecView<'_> {
        SparseVecView::new(dim, &self.indices, &self.values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(dim: usize, pairs: &[(usize, Scalar)]) -> SparseVec {
        SparseVec::new(
            dim,
            pairs.iter().map(|p| p.0).collect(),
            pairs.iter().map(|p| p.1).collect(),
        )
    }

    #[test]
    fn from_dense_round_trip() {
        let d = [0.0, 1.5, 0.0, -2.0, 0.0];
        let s = SparseVec::from_dense(&d);
        assert_eq!(s.nnz(), 2);
        assert_eq!(s.to_dense(), d.to_vec());
    }

    #[test]
    fn get_present_and_absent() {
        let s = v(6, &[(1, 2.0), (4, 3.0)]);
        assert_eq!(s.get(1), 2.0);
        assert_eq!(s.get(4), 3.0);
        assert_eq!(s.get(0), 0.0);
        assert_eq!(s.get(5), 0.0);
    }

    #[test]
    fn dot_merge_matches_dense() {
        let a = v(8, &[(0, 1.0), (3, 2.0), (7, -1.0)]);
        let b = v(8, &[(3, 4.0), (5, 9.0), (7, 2.0)]);
        assert_eq!(a.dot(&b), 2.0 * 4.0 + -2.0);
        let bd = b.to_dense();
        assert_eq!(a.dot_dense(&bd), a.dot(&b));
    }

    #[test]
    fn dot_disjoint_is_zero() {
        let a = v(4, &[(0, 1.0), (2, 1.0)]);
        let b = v(4, &[(1, 1.0), (3, 1.0)]);
        assert_eq!(a.dot(&b), 0.0);
    }

    #[test]
    fn scatter_unscatter_restores_zeros() {
        let s = v(5, &[(1, 7.0), (3, 8.0)]);
        let mut ws = vec![0.0; 5];
        s.scatter(&mut ws);
        assert_eq!(ws, vec![0.0, 7.0, 0.0, 8.0, 0.0]);
        s.unscatter(&mut ws);
        assert_eq!(ws, vec![0.0; 5]);
    }

    #[test]
    fn norms_and_distance() {
        let a = v(4, &[(0, 3.0), (1, 4.0)]);
        let b = v(4, &[(0, 3.0), (1, 4.0)]);
        assert_eq!(a.norm_sq(), 25.0);
        assert_eq!(a.dist_sq(&b), 0.0);
        let c = v(4, &[(2, 1.0)]);
        assert_eq!(a.dist_sq(&c), 26.0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_unsorted_indices() {
        let _ = SparseVec::new(4, vec![2, 1], vec![1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn rejects_out_of_range_index() {
        let _ = SparseVec::new(2, vec![2], vec![1.0]);
    }

    #[test]
    fn zeros_has_no_entries() {
        let z = SparseVec::zeros(10);
        assert_eq!(z.nnz(), 0);
        assert_eq!(z.dim(), 10);
        assert_eq!(z.norm_sq(), 0.0);
    }

    #[test]
    fn view_mirrors_owned_vector() {
        let s = v(8, &[(0, 1.0), (3, 2.0), (7, -1.0)]);
        let view = s.as_view();
        assert_eq!(view.dim(), 8);
        assert_eq!(view.nnz(), 3);
        assert_eq!(view.get(3), 2.0);
        assert_eq!(view.get(4), 0.0);
        assert_eq!(view.norm_sq(), s.norm_sq());
        assert_eq!(view.to_owned(), s);
    }

    #[test]
    fn view_dot_matches_owned_dot() {
        let a = v(8, &[(0, 1.0), (3, 2.0), (7, -1.0)]);
        let b = v(8, &[(3, 4.0), (5, 9.0), (7, 2.0)]);
        assert_eq!(a.as_view().dot(b.as_view()), a.dot(&b));
        let bd = b.to_dense();
        assert_eq!(a.as_view().dot_dense(&bd), a.dot_dense(&bd));
    }

    #[test]
    fn view_scatter_unscatter_round_trips() {
        let s = v(5, &[(1, 7.0), (3, 8.0)]);
        let mut ws = vec![0.0; 5];
        s.as_view().scatter(&mut ws);
        assert_eq!(ws, vec![0.0, 7.0, 0.0, 8.0, 0.0]);
        s.as_view().unscatter(&mut ws);
        assert_eq!(ws, vec![0.0; 5]);
    }

    #[test]
    fn scratch_reuses_capacity_across_rows() {
        let mut scratch = RowScratch::new();
        scratch.push(1, 2.0);
        scratch.push(4, 3.0);
        assert_eq!(scratch.view(6).to_owned(), v(6, &[(1, 2.0), (4, 3.0)]));
        scratch.clear();
        assert!(scratch.is_empty());
        scratch.push(0, 1.0);
        assert_eq!(scratch.len(), 1);
        assert_eq!(scratch.view(6).get(0), 1.0);
    }

    #[test]
    fn scratch_sort_pairs_co_sorts_values() {
        let mut scratch = RowScratch::new();
        for &(i, x) in &[(5usize, 50.0), (1, 10.0), (3, 30.0), (0, 0.5)] {
            scratch.push(i, x);
        }
        scratch.sort_pairs();
        let got = scratch.view(6).to_owned();
        assert_eq!(got, v(6, &[(0, 0.5), (1, 10.0), (3, 30.0), (5, 50.0)]));
    }
}
