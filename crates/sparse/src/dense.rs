//! DEN: dense row-major storage.
//!
//! Stores all `M * N` elements. Best for the (near-)dense datasets common in
//! machine learning (gisette, epsilon, leukemia, dna in Table V), where the
//! index arrays of sparse formats double or triple the memory traffic.

use crate::{Format, MatrixFormat, Scalar, SparseVec, TripletMatrix};

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<Scalar>,
    nnz: usize,
}

impl DenseMatrix {
    /// Builds from a row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn new(rows: usize, cols: usize, data: Vec<Scalar>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer length mismatch");
        let nnz = data.iter().filter(|&&v| v != 0.0).count();
        Self { rows, cols, data, nnz }
    }

    /// An all-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols], nnz: 0 }
    }

    /// Builds from the triplet interchange form (duplicates summed).
    pub fn from_triplets(t: &TripletMatrix) -> Self {
        let mut data = vec![0.0; t.rows() * t.cols()];
        for &(r, c, v) in t.entries() {
            data[r * t.cols() + c] += v;
        }
        Self::new(t.rows(), t.cols(), data)
    }

    /// Borrow of row `i` as a dense slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[Scalar] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// The full row-major buffer.
    #[inline]
    pub fn data(&self) -> &[Scalar] {
        &self.data
    }
}

impl MatrixFormat for DenseMatrix {
    fn rows(&self) -> usize {
        self.rows
    }

    fn cols(&self) -> usize {
        self.cols
    }

    fn nnz(&self) -> usize {
        self.nnz
    }

    fn format(&self) -> Format {
        Format::Den
    }

    fn get(&self, i: usize, j: usize) -> Scalar {
        self.data[i * self.cols + j]
    }

    fn row_sparse(&self, i: usize) -> SparseVec {
        SparseVec::from_dense(self.row(i))
    }

    fn smsv(&self, v: &SparseVec, out: &mut [Scalar]) {
        assert_eq!(v.dim(), self.cols, "SMSV vector dimension mismatch");
        assert_eq!(out.len(), self.rows, "SMSV output length mismatch");
        // Dense-row x sparse-vector: the gather over v's nnz indices is the
        // natural kernel; cost is M * nnz(v) regardless of matrix sparsity.
        // When v is (near-)dense — the common case for the dense ML datasets
        // DEN is chosen for — skip the index gather entirely and run a
        // straight dot product, the layout's whole advantage.
        if v.nnz() * 4 >= 3 * self.cols {
            let dense_v = v.to_dense();
            for (i, o) in out.iter_mut().enumerate() {
                let row = &self.data[i * self.cols..(i + 1) * self.cols];
                *o = row.iter().zip(&dense_v).map(|(a, b)| a * b).sum();
            }
            return;
        }
        let idx = v.indices();
        let val = v.values();
        for (i, o) in out.iter_mut().enumerate() {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            let mut acc = 0.0;
            for (&j, &x) in idx.iter().zip(val) {
                acc += row[j] * x;
            }
            *o = acc;
        }
    }

    fn spmv(&self, x: &[Scalar], out: &mut [Scalar]) {
        assert_eq!(x.len(), self.cols, "SpMV vector dimension mismatch");
        assert_eq!(out.len(), self.rows, "SpMV output length mismatch");
        for (i, o) in out.iter_mut().enumerate() {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            *o = row.iter().zip(x).map(|(a, b)| a * b).sum();
        }
    }

    fn row_norms_sq(&self, out: &mut [Scalar]) {
        assert_eq!(out.len(), self.rows);
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.row(i).iter().map(|v| v * v).sum();
        }
    }

    fn to_triplets(&self) -> TripletMatrix {
        TripletMatrix::from_dense(self.rows, self.cols, &self.data)
    }

    fn storage_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<Scalar>()
    }

    fn storage_elems(&self) -> usize {
        // Table II: DEN stores exactly M * N elements, min and max alike.
        self.rows * self.cols
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DenseMatrix {
        DenseMatrix::new(
            3,
            4,
            vec![
                1.0, 0.0, 2.0, 0.0, //
                0.0, 0.0, 0.0, 0.0, //
                3.0, 4.0, 0.0, 5.0,
            ],
        )
    }

    #[test]
    fn construction_counts_nnz() {
        let m = sample();
        assert_eq!(m.nnz(), 5);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 4);
        assert_eq!(m.format(), Format::Den);
    }

    #[test]
    fn get_and_row_access() {
        let m = sample();
        assert_eq!(m.get(0, 2), 2.0);
        assert_eq!(m.get(1, 1), 0.0);
        assert_eq!(m.row(2), &[3.0, 4.0, 0.0, 5.0]);
        let r = m.row_sparse(2);
        assert_eq!(r.indices(), &[0, 1, 3]);
    }

    #[test]
    fn smsv_matches_manual() {
        let m = sample();
        let v = SparseVec::new(4, vec![0, 3], vec![2.0, 1.0]);
        let mut out = vec![0.0; 3];
        m.smsv(&v, &mut out);
        assert_eq!(out, vec![2.0, 0.0, 11.0]);
    }

    #[test]
    fn spmv_matches_manual() {
        let m = sample();
        let mut out = vec![0.0; 3];
        m.spmv(&[1.0, 1.0, 1.0, 1.0], &mut out);
        assert_eq!(out, vec![3.0, 0.0, 12.0]);
    }

    #[test]
    fn row_norms() {
        let m = sample();
        let mut out = vec![0.0; 3];
        m.row_norms_sq(&mut out);
        assert_eq!(out, vec![5.0, 0.0, 50.0]);
    }

    #[test]
    fn triplet_round_trip() {
        let m = sample();
        let back = DenseMatrix::from_triplets(&m.to_triplets());
        assert_eq!(back, m);
    }

    #[test]
    fn storage_is_m_times_n() {
        let m = sample();
        assert_eq!(m.storage_elems(), 12);
        assert_eq!(m.storage_bytes(), 12 * 8);
    }

    #[test]
    #[should_panic(expected = "buffer length mismatch")]
    fn rejects_wrong_buffer() {
        let _ = DenseMatrix::new(2, 2, vec![0.0; 3]);
    }
}
