//! DEN: dense row-major storage.
//!
//! Stores all `M * N` elements. Best for the (near-)dense datasets common in
//! machine learning (gisette, epsilon, leukemia, dna in Table V), where the
//! index arrays of sparse formats double or triple the memory traffic.

use crate::format::{ensure_workspace, MAX_SMSV_BLOCK};
use crate::{Format, MatrixFormat, RowScratch, Scalar, SparseVec, SparseVecView, TripletMatrix};

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<Scalar>,
    nnz: usize,
}

impl DenseMatrix {
    /// Builds from a row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn new(rows: usize, cols: usize, data: Vec<Scalar>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer length mismatch");
        let nnz = data.iter().filter(|&&v| v != 0.0).count();
        Self { rows, cols, data, nnz }
    }

    /// An all-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols], nnz: 0 }
    }

    /// Builds from the triplet interchange form (duplicates summed).
    pub fn from_triplets(t: &TripletMatrix) -> Self {
        let mut data = vec![0.0; t.rows() * t.cols()];
        for &(r, c, v) in t.entries() {
            data[r * t.cols() + c] += v;
        }
        Self::new(t.rows(), t.cols(), data)
    }

    /// Borrow of row `i` as a dense slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[Scalar] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// The full row-major buffer.
    #[inline]
    pub fn data(&self) -> &[Scalar] {
        &self.data
    }
}

impl MatrixFormat for DenseMatrix {
    fn rows(&self) -> usize {
        self.rows
    }

    fn cols(&self) -> usize {
        self.cols
    }

    fn nnz(&self) -> usize {
        self.nnz
    }

    fn format(&self) -> Format {
        Format::Den
    }

    fn get(&self, i: usize, j: usize) -> Scalar {
        self.data[i * self.cols + j]
    }

    fn row_sparse(&self, i: usize) -> SparseVec {
        SparseVec::from_dense(self.row(i))
    }

    fn row_view_in<'a>(&'a self, i: usize, scratch: &'a mut RowScratch) -> SparseVecView<'a> {
        scratch.clear();
        for (j, &x) in self.row(i).iter().enumerate() {
            if x != 0.0 {
                scratch.push(j, x);
            }
        }
        scratch.view(self.cols)
    }

    fn smsv(&self, v: &SparseVec, out: &mut [Scalar]) {
        let mut workspace = Vec::new();
        self.smsv_view(v.as_view(), out, &mut workspace);
    }

    fn smsv_view(&self, v: SparseVecView<'_>, out: &mut [Scalar], workspace: &mut Vec<Scalar>) {
        assert_eq!(v.dim(), self.cols, "SMSV vector dimension mismatch");
        assert_eq!(out.len(), self.rows, "SMSV output length mismatch");
        // Dense-row x sparse-vector: the gather over v's nnz indices is the
        // natural kernel; cost is M * nnz(v) regardless of matrix sparsity.
        // When v is (near-)dense — the common case for the dense ML datasets
        // DEN is chosen for — skip the index gather entirely and run a
        // straight dot product, the layout's whole advantage.
        if v.nnz() * 4 >= 3 * self.cols {
            let ws = ensure_workspace(workspace, self.cols);
            debug_assert!(ws.iter().all(|&w| w == 0.0));
            v.scatter(ws);
            for (i, o) in out.iter_mut().enumerate() {
                let row = &self.data[i * self.cols..(i + 1) * self.cols];
                // Explicit fold from +0.0, not `.sum()`: std's float Sum
                // keeps a lone -0.0 term as -0.0, which would break the
                // bit-parity contract with the blocked kernel's +0.0-seeded
                // accumulators (an empty row times a negative RHS entry).
                let mut acc = 0.0;
                for (a, b) in row.iter().zip(ws.iter()) {
                    acc += a * b;
                }
                *o = acc;
            }
            v.unscatter(ws);
            return;
        }
        let idx = v.indices();
        let val = v.values();
        for (i, o) in out.iter_mut().enumerate() {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            let mut acc = 0.0;
            for (&j, &x) in idx.iter().zip(val) {
                acc += row[j] * x;
            }
            *o = acc;
        }
    }

    fn smsv_block(&self, vs: &[SparseVec], out: &mut [Scalar], workspace: &mut Vec<Scalar>) {
        assert_eq!(out.len(), self.rows * vs.len(), "smsv_block output length mismatch");
        // Blocked kernel: stream each dense row once and feed all B
        // accumulators from it, instead of re-reading the M*N buffer B
        // times. Right-hand sides sit in an interleaved scatter workspace
        // (`ws[j * cb + bi]`) when dense enough, or are gathered per-index
        // when sparse.
        let mut b0 = 0;
        while b0 < vs.len() {
            let cb = (vs.len() - b0).min(MAX_SMSV_BLOCK);
            if cb == 1 {
                // A single lane degenerates to the per-vector sweep; skip
                // the interleaved workspace and its writeback entirely.
                let dst = &mut out[b0 * self.rows..(b0 + 1) * self.rows];
                self.smsv_view(vs[b0].as_view(), dst, workspace);
                b0 += 1;
                continue;
            }
            let chunk = &vs[b0..b0 + cb];
            for v in chunk {
                assert_eq!(v.dim(), self.cols, "SMSV vector dimension mismatch");
            }
            let total_nnz: usize = chunk.iter().map(|v| v.nnz()).sum();
            if total_nnz * 4 >= 3 * self.cols * cb {
                let ws = ensure_workspace(workspace, self.cols * cb);
                debug_assert!(ws.iter().all(|&w| w == 0.0));
                for (bi, v) in chunk.iter().enumerate() {
                    for (j, x) in v.iter() {
                        ws[j * cb + bi] = x;
                    }
                }
                for i in 0..self.rows {
                    let row = self.row(i);
                    let mut acc = [0.0 as Scalar; MAX_SMSV_BLOCK];
                    for (j, &x) in row.iter().enumerate() {
                        let lane = &ws[j * cb..(j + 1) * cb];
                        for (a, &w) in acc[..cb].iter_mut().zip(lane) {
                            *a += x * w;
                        }
                    }
                    for (bi, &a) in acc[..cb].iter().enumerate() {
                        out[(b0 + bi) * self.rows + i] = a;
                    }
                }
                for (bi, v) in chunk.iter().enumerate() {
                    for &j in v.indices() {
                        ws[j * cb + bi] = 0.0;
                    }
                }
            } else {
                // Sparse gather: the per-row read count is so low that the
                // interleaved accumulators cost more than they save, and
                // scattered output writes would dominate. Run each product
                // through the single-vector kernel — same access pattern,
                // sequential writes, never slower than unblocked.
                for (bi, v) in chunk.iter().enumerate() {
                    let dst = &mut out[(b0 + bi) * self.rows..(b0 + bi + 1) * self.rows];
                    self.smsv_view(v.as_view(), dst, workspace);
                }
            }
            b0 += cb;
        }
    }

    fn spmv(&self, x: &[Scalar], out: &mut [Scalar]) {
        assert_eq!(x.len(), self.cols, "SpMV vector dimension mismatch");
        assert_eq!(out.len(), self.rows, "SpMV output length mismatch");
        for (i, o) in out.iter_mut().enumerate() {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            *o = row.iter().zip(x).map(|(a, b)| a * b).sum();
        }
    }

    fn row_norms_sq(&self, out: &mut [Scalar]) {
        assert_eq!(out.len(), self.rows);
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.row(i).iter().map(|v| v * v).sum();
        }
    }

    fn to_triplets(&self) -> TripletMatrix {
        TripletMatrix::from_dense(self.rows, self.cols, &self.data)
    }

    fn storage_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<Scalar>()
    }

    fn storage_elems(&self) -> usize {
        // Table II: DEN stores exactly M * N elements, min and max alike.
        self.rows * self.cols
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DenseMatrix {
        DenseMatrix::new(
            3,
            4,
            vec![
                1.0, 0.0, 2.0, 0.0, //
                0.0, 0.0, 0.0, 0.0, //
                3.0, 4.0, 0.0, 5.0,
            ],
        )
    }

    #[test]
    fn construction_counts_nnz() {
        let m = sample();
        assert_eq!(m.nnz(), 5);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 4);
        assert_eq!(m.format(), Format::Den);
    }

    #[test]
    fn get_and_row_access() {
        let m = sample();
        assert_eq!(m.get(0, 2), 2.0);
        assert_eq!(m.get(1, 1), 0.0);
        assert_eq!(m.row(2), &[3.0, 4.0, 0.0, 5.0]);
        let r = m.row_sparse(2);
        assert_eq!(r.indices(), &[0, 1, 3]);
    }

    #[test]
    fn smsv_matches_manual() {
        let m = sample();
        let v = SparseVec::new(4, vec![0, 3], vec![2.0, 1.0]);
        let mut out = vec![0.0; 3];
        m.smsv(&v, &mut out);
        assert_eq!(out, vec![2.0, 0.0, 11.0]);
    }

    #[test]
    fn spmv_matches_manual() {
        let m = sample();
        let mut out = vec![0.0; 3];
        m.spmv(&[1.0, 1.0, 1.0, 1.0], &mut out);
        assert_eq!(out, vec![3.0, 0.0, 12.0]);
    }

    #[test]
    fn row_norms() {
        let m = sample();
        let mut out = vec![0.0; 3];
        m.row_norms_sq(&mut out);
        assert_eq!(out, vec![5.0, 0.0, 50.0]);
    }

    #[test]
    fn triplet_round_trip() {
        let m = sample();
        let back = DenseMatrix::from_triplets(&m.to_triplets());
        assert_eq!(back, m);
    }

    #[test]
    fn storage_is_m_times_n() {
        let m = sample();
        assert_eq!(m.storage_elems(), 12);
        assert_eq!(m.storage_bytes(), 12 * 8);
    }

    #[test]
    #[should_panic(expected = "buffer length mismatch")]
    fn rejects_wrong_buffer() {
        let _ = DenseMatrix::new(2, 2, vec![0.0; 3]);
    }
}
