//! BCSR: Block Compressed Sparse Row — a derived format (§III-A) "often
//! used when there are many dense sub-blocks in a sparse matrix".
//!
//! The matrix is tiled into `br × bc` blocks; any tile containing at least
//! one non-zero is stored densely. One column index per block instead of per
//! element cuts index traffic by `br * bc` for blocky matrices, at the price
//! of storing the zeros inside partially-filled blocks.

use crate::format::{ensure_workspace, MAX_SMSV_BLOCK};
use crate::{Format, MatrixFormat, RowScratch, Scalar, SparseVec, SparseVecView, TripletMatrix};

/// Block CSR matrix with run-time block shape.
#[derive(Debug, Clone, PartialEq)]
pub struct BcsrMatrix {
    rows: usize,
    cols: usize,
    br: usize,
    bc: usize,
    /// Block-row pointer: `block_ptr[bi]..block_ptr[bi+1]` indexes the
    /// blocks of block-row `bi`.
    block_ptr: Vec<usize>,
    /// Block-column index per stored block.
    block_col: Vec<usize>,
    /// Dense `br * bc` payloads, row-major within each block.
    blocks: Vec<Scalar>,
    nnz: usize,
}

impl BcsrMatrix {
    /// Builds from triplets with the given block shape.
    ///
    /// # Panics
    /// Panics if `br == 0 || bc == 0`.
    pub fn from_triplets(t: &TripletMatrix, br: usize, bc: usize) -> Self {
        assert!(br > 0 && bc > 0, "block dimensions must be positive");
        let t = if t.is_compact() { t.clone() } else { t.clone().compact() };
        let (rows, cols) = (t.rows(), t.cols());
        let n_brows = rows.div_ceil(br);
        // Group entries by (block_row, block_col); entries are row-major so
        // re-key and sort.
        let mut keyed: Vec<(usize, usize, usize, usize, Scalar)> =
            t.entries().iter().map(|&(r, c, v)| (r / br, c / bc, r, c, v)).collect();
        keyed.sort_unstable_by_key(|&(bi, bj, r, c, _)| (bi, bj, r, c));

        let mut block_ptr = vec![0usize; n_brows + 1];
        let mut block_col = Vec::new();
        let mut blocks: Vec<Scalar> = Vec::new();
        let mut cur: Option<(usize, usize)> = None;
        for &(bi, bj, r, c, v) in &keyed {
            if cur != Some((bi, bj)) {
                block_ptr[bi + 1] += 1;
                block_col.push(bj);
                blocks.extend(std::iter::repeat_n(0.0, br * bc));
                cur = Some((bi, bj));
            }
            let base = (block_col.len() - 1) * br * bc;
            blocks[base + (r % br) * bc + (c % bc)] = v;
        }
        for bi in 0..n_brows {
            block_ptr[bi + 1] += block_ptr[bi];
        }
        Self { rows, cols, br, bc, block_ptr, block_col, blocks, nnz: t.nnz() }
    }

    /// Block shape `(br, bc)`.
    #[inline]
    pub fn block_shape(&self) -> (usize, usize) {
        (self.br, self.bc)
    }

    /// Number of stored blocks.
    #[inline]
    pub fn n_blocks(&self) -> usize {
        self.block_col.len()
    }

    /// Fill ratio: nnz / stored slots. 1.0 means perfectly blocky.
    pub fn fill_ratio(&self) -> f64 {
        if self.blocks.is_empty() {
            1.0
        } else {
            self.nnz as f64 / self.blocks.len() as f64
        }
    }

    fn block_payload(&self, b: usize) -> &[Scalar] {
        &self.blocks[b * self.br * self.bc..(b + 1) * self.br * self.bc]
    }
}

impl MatrixFormat for BcsrMatrix {
    fn rows(&self) -> usize {
        self.rows
    }

    fn cols(&self) -> usize {
        self.cols
    }

    fn nnz(&self) -> usize {
        self.nnz
    }

    fn format(&self) -> Format {
        Format::Bcsr
    }

    fn get(&self, i: usize, j: usize) -> Scalar {
        let (bi, bj) = (i / self.br, j / self.bc);
        let range = self.block_ptr[bi]..self.block_ptr[bi + 1];
        match self.block_col[range.clone()].binary_search(&bj) {
            Ok(pos) => {
                let b = range.start + pos;
                self.block_payload(b)[(i % self.br) * self.bc + (j % self.bc)]
            }
            Err(_) => 0.0,
        }
    }

    fn row_sparse(&self, i: usize) -> SparseVec {
        let bi = i / self.br;
        let mut indices = Vec::new();
        let mut values = Vec::new();
        for b in self.block_ptr[bi]..self.block_ptr[bi + 1] {
            let bj = self.block_col[b];
            let payload = self.block_payload(b);
            for jc in 0..self.bc {
                let j = bj * self.bc + jc;
                if j >= self.cols {
                    break;
                }
                let v = payload[(i % self.br) * self.bc + jc];
                if v != 0.0 {
                    indices.push(j);
                    values.push(v);
                }
            }
        }
        SparseVec::new(self.cols, indices, values)
    }

    fn row_view_in<'a>(&'a self, i: usize, scratch: &'a mut RowScratch) -> SparseVecView<'a> {
        // Blocks of a block-row are sorted by block column and columns
        // within a block ascend, so pushes arrive already sorted.
        let bi = i / self.br;
        scratch.clear();
        for b in self.block_ptr[bi]..self.block_ptr[bi + 1] {
            let bj = self.block_col[b];
            let payload = self.block_payload(b);
            for jc in 0..self.bc {
                let j = bj * self.bc + jc;
                if j >= self.cols {
                    break;
                }
                let v = payload[(i % self.br) * self.bc + jc];
                if v != 0.0 {
                    scratch.push(j, v);
                }
            }
        }
        scratch.view(self.cols)
    }

    fn smsv(&self, v: &SparseVec, out: &mut [Scalar]) {
        let mut workspace = Vec::new();
        self.smsv_view(v.as_view(), out, &mut workspace);
    }

    fn smsv_view(&self, v: SparseVecView<'_>, out: &mut [Scalar], workspace: &mut Vec<Scalar>) {
        assert_eq!(v.dim(), self.cols, "SMSV vector dimension mismatch");
        assert_eq!(out.len(), self.rows, "SMSV output length mismatch");
        let dense = ensure_workspace(workspace, self.cols);
        debug_assert!(dense.iter().all(|&w| w == 0.0));
        v.scatter(dense);
        out.fill(0.0);
        let n_brows = self.rows.div_ceil(self.br);
        for bi in 0..n_brows {
            for b in self.block_ptr[bi]..self.block_ptr[bi + 1] {
                let bj = self.block_col[b];
                let payload = self.block_payload(b);
                for ir in 0..self.br {
                    let i = bi * self.br + ir;
                    if i >= self.rows {
                        break;
                    }
                    let mut acc = 0.0;
                    for jc in 0..self.bc {
                        let j = bj * self.bc + jc;
                        if j >= self.cols {
                            break;
                        }
                        acc += payload[ir * self.bc + jc] * dense[j];
                    }
                    out[i] += acc;
                }
            }
        }
        v.unscatter(dense);
    }

    fn smsv_block(&self, vs: &[SparseVec], out: &mut [Scalar], workspace: &mut Vec<Scalar>) {
        assert_eq!(out.len(), self.rows * vs.len(), "smsv_block output length mismatch");
        // Blocked tile sweep: each stored block's dense payload is read once
        // per chunk and applied to cb right-hand sides. Per (block, row) a
        // stack array of cb lane accumulators gathers the tile's columns,
        // then folds into the interleaved row accumulator — the same
        // per-tile grouping as the per-vector kernel, so every lane's sum
        // is bit-identical to it.
        let mut b0 = 0;
        while b0 < vs.len() {
            let cb = (vs.len() - b0).min(MAX_SMSV_BLOCK);
            if cb == 1 {
                // A single lane degenerates to the per-vector sweep; skip
                // the interleaved workspace and its writeback entirely.
                let dst = &mut out[b0 * self.rows..(b0 + 1) * self.rows];
                self.smsv_view(vs[b0].as_view(), dst, workspace);
                b0 += 1;
                continue;
            }
            let chunk = &vs[b0..b0 + cb];
            let ws = ensure_workspace(workspace, (self.cols + self.rows) * cb);
            debug_assert!(ws.iter().all(|&w| w == 0.0));
            let (scat, acc) = ws.split_at_mut(self.cols * cb);
            for (bi, v) in chunk.iter().enumerate() {
                assert_eq!(v.dim(), self.cols, "SMSV vector dimension mismatch");
                for (j, x) in v.iter() {
                    scat[j * cb + bi] = x;
                }
            }
            let n_brows = self.rows.div_ceil(self.br);
            for brow in 0..n_brows {
                for b in self.block_ptr[brow]..self.block_ptr[brow + 1] {
                    let bj = self.block_col[b];
                    let payload = self.block_payload(b);
                    for ir in 0..self.br {
                        let i = brow * self.br + ir;
                        if i >= self.rows {
                            break;
                        }
                        let mut tile = [0.0 as Scalar; MAX_SMSV_BLOCK];
                        for jc in 0..self.bc {
                            let j = bj * self.bc + jc;
                            if j >= self.cols {
                                break;
                            }
                            let x = payload[ir * self.bc + jc];
                            let lane = &scat[j * cb..(j + 1) * cb];
                            for (t, &w) in tile[..cb].iter_mut().zip(lane) {
                                *t += x * w;
                            }
                        }
                        let a = &mut acc[i * cb..(i + 1) * cb];
                        for (ab, &t) in a.iter_mut().zip(&tile[..cb]) {
                            *ab += t;
                        }
                    }
                }
            }
            for i in 0..self.rows {
                for bi in 0..cb {
                    out[(b0 + bi) * self.rows + i] = acc[i * cb + bi];
                    acc[i * cb + bi] = 0.0;
                }
            }
            for (bi, v) in chunk.iter().enumerate() {
                for &j in v.indices() {
                    scat[j * cb + bi] = 0.0;
                }
            }
            b0 += cb;
        }
    }

    fn spmv(&self, x: &[Scalar], out: &mut [Scalar]) {
        assert_eq!(x.len(), self.cols, "SpMV vector dimension mismatch");
        let v = SparseVec::from_dense(x);
        self.smsv(&v, out);
    }

    fn row_norms_sq(&self, out: &mut [Scalar]) {
        assert_eq!(out.len(), self.rows);
        out.fill(0.0);
        let n_brows = self.rows.div_ceil(self.br);
        for bi in 0..n_brows {
            for b in self.block_ptr[bi]..self.block_ptr[bi + 1] {
                let payload = self.block_payload(b);
                for ir in 0..self.br {
                    let i = bi * self.br + ir;
                    if i >= self.rows {
                        break;
                    }
                    for jc in 0..self.bc {
                        let v = payload[ir * self.bc + jc];
                        out[i] += v * v;
                    }
                }
            }
        }
    }

    fn to_triplets(&self) -> TripletMatrix {
        let mut t = TripletMatrix::with_capacity(self.rows, self.cols, self.nnz);
        let n_brows = self.rows.div_ceil(self.br);
        for bi in 0..n_brows {
            for b in self.block_ptr[bi]..self.block_ptr[bi + 1] {
                let bj = self.block_col[b];
                let payload = self.block_payload(b);
                for ir in 0..self.br {
                    let i = bi * self.br + ir;
                    if i >= self.rows {
                        break;
                    }
                    for jc in 0..self.bc {
                        let j = bj * self.bc + jc;
                        if j >= self.cols {
                            break;
                        }
                        let v = payload[ir * self.bc + jc];
                        if v != 0.0 {
                            t.push(i, j, v);
                        }
                    }
                }
            }
        }
        t.compact()
    }

    fn storage_bytes(&self) -> usize {
        (self.block_ptr.len() + self.block_col.len()) * std::mem::size_of::<usize>()
            + self.blocks.len() * std::mem::size_of::<Scalar>()
    }

    fn storage_elems(&self) -> usize {
        self.blocks.len() + self.block_col.len() + self.block_ptr.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BcsrMatrix {
        let t = TripletMatrix::from_entries(
            4,
            4,
            vec![
                (0, 0, 1.0),
                (0, 1, 2.0),
                (1, 0, 3.0),
                (1, 1, 4.0), // one full 2x2 block at (0,0)
                (3, 3, 5.0), // lone element in block (1,1)
            ],
        )
        .unwrap();
        BcsrMatrix::from_triplets(&t, 2, 2)
    }

    #[test]
    fn blocks_and_fill() {
        let m = sample();
        assert_eq!(m.n_blocks(), 2);
        assert_eq!(m.block_shape(), (2, 2));
        assert_eq!(m.fill_ratio(), 5.0 / 8.0);
    }

    #[test]
    fn get_inside_and_outside_blocks() {
        let m = sample();
        assert_eq!(m.get(1, 1), 4.0);
        assert_eq!(m.get(3, 3), 5.0);
        assert_eq!(m.get(3, 2), 0.0);
        assert_eq!(m.get(2, 0), 0.0);
    }

    #[test]
    fn smsv_matches_dense_reference() {
        let m = sample();
        let v = SparseVec::new(4, vec![0, 1, 3], vec![1.0, -1.0, 2.0]);
        let mut out = vec![0.0; 4];
        m.smsv(&v, &mut out);
        assert_eq!(out, vec![-1.0, -1.0, 0.0, 10.0]);
    }

    #[test]
    fn row_sparse_and_norms() {
        let m = sample();
        let r = m.row_sparse(1);
        assert_eq!(r.indices(), &[0, 1]);
        assert_eq!(r.values(), &[3.0, 4.0]);
        let mut out = vec![0.0; 4];
        m.row_norms_sq(&mut out);
        assert_eq!(out, vec![5.0, 25.0, 0.0, 25.0]);
    }

    #[test]
    fn triplet_round_trip() {
        let m = sample();
        let back = BcsrMatrix::from_triplets(&m.to_triplets(), 2, 2);
        assert_eq!(back, m);
    }

    #[test]
    fn handles_non_dividing_block_size() {
        // 3x5 matrix with 2x2 blocks: ragged edges must be respected.
        let t =
            TripletMatrix::from_entries(3, 5, vec![(2, 4, 7.0), (0, 0, 1.0)]).unwrap().compact();
        let m = BcsrMatrix::from_triplets(&t, 2, 2);
        assert_eq!(m.get(2, 4), 7.0);
        assert_eq!(m.to_triplets().entries(), t.entries());
        let v = SparseVec::new(5, vec![4], vec![3.0]);
        let mut out = vec![0.0; 3];
        m.smsv(&v, &mut out);
        assert_eq!(out, vec![0.0, 0.0, 21.0]);
    }
}
