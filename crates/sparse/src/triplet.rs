//! Coordinate-list builder used as the interchange representation.
//!
//! All format constructors accept a [`TripletMatrix`], and every format can
//! lower itself back to one, so conversion between any two formats is
//! `A -> triplets -> B`.

use crate::{Scalar, SparseError, SparseVec};

/// An unordered list of `(row, col, value)` entries with an explicit shape.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TripletMatrix {
    rows: usize,
    cols: usize,
    entries: Vec<(usize, usize, Scalar)>,
}

impl TripletMatrix {
    /// Creates an empty builder for a `rows x cols` matrix.
    pub fn new(rows: usize, cols: usize) -> Self {
        Self { rows, cols, entries: Vec::new() }
    }

    /// Creates a builder with pre-allocated capacity for `cap` entries.
    pub fn with_capacity(rows: usize, cols: usize, cap: usize) -> Self {
        Self { rows, cols, entries: Vec::with_capacity(cap) }
    }

    /// Builds directly from a list of entries, validating bounds.
    pub fn from_entries(
        rows: usize,
        cols: usize,
        entries: Vec<(usize, usize, Scalar)>,
    ) -> Result<Self, SparseError> {
        for &(r, c, _) in &entries {
            if r >= rows || c >= cols {
                return Err(SparseError::IndexOutOfBounds { row: r, col: c, rows, cols });
            }
        }
        Ok(Self { rows, cols, entries })
    }

    /// Builds from a dense row-major buffer, keeping non-zeros.
    pub fn from_dense(rows: usize, cols: usize, data: &[Scalar]) -> Self {
        assert_eq!(data.len(), rows * cols);
        let mut t = Self::new(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                let v = data[r * cols + c];
                if v != 0.0 {
                    t.entries.push((r, c, v));
                }
            }
        }
        t
    }

    /// Appends one entry. Duplicates are allowed; they are summed by
    /// [`TripletMatrix::compact`].
    ///
    /// # Panics
    /// Panics if the entry is out of bounds.
    pub fn push(&mut self, row: usize, col: usize, value: Scalar) {
        assert!(
            row < self.rows && col < self.cols,
            "entry ({row}, {col}) out of bounds for {}x{} matrix",
            self.rows,
            self.cols
        );
        self.entries.push((row, col, value));
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries (before deduplication this may exceed the
    /// logical nnz).
    #[inline]
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// The raw entries in insertion order.
    #[inline]
    pub fn entries(&self) -> &[(usize, usize, Scalar)] {
        &self.entries
    }

    /// Sorts entries in row-major order, sums duplicates, and drops explicit
    /// zeros that result from cancellation. Returns `self` for chaining.
    pub fn compact(mut self) -> Self {
        self.entries.sort_unstable_by_key(|&(r, c, _)| (r, c));
        let mut out: Vec<(usize, usize, Scalar)> = Vec::with_capacity(self.entries.len());
        for (r, c, v) in self.entries.drain(..) {
            match out.last_mut() {
                Some(last) if last.0 == r && last.1 == c => last.2 += v,
                _ => out.push((r, c, v)),
            }
        }
        out.retain(|&(_, _, v)| v != 0.0);
        self.entries = out;
        self
    }

    /// True if entries are sorted row-major with no duplicates.
    pub fn is_compact(&self) -> bool {
        self.entries.windows(2).all(|w| (w[0].0, w[0].1) < (w[1].0, w[1].1))
    }

    /// Per-row non-zero counts (`dim_i` in the paper's notation).
    pub fn row_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.rows];
        for &(r, _, _) in &self.entries {
            counts[r] += 1;
        }
        counts
    }

    /// Extracts row `i` as a sparse vector of dimension `cols`.
    /// Requires a compact matrix for the strict-ordering invariant.
    pub fn row_sparse(&self, i: usize) -> SparseVec {
        debug_assert!(self.is_compact(), "row_sparse requires a compact matrix");
        let mut idx = Vec::new();
        let mut val = Vec::new();
        for &(r, c, v) in &self.entries {
            if r == i {
                idx.push(c);
                val.push(v);
            }
        }
        SparseVec::new(self.cols, idx, val)
    }

    /// Materialises the matrix densely (row-major). Intended for tests and
    /// small matrices.
    pub fn to_dense(&self) -> Vec<Scalar> {
        let mut out = vec![0.0; self.rows * self.cols];
        for &(r, c, v) in &self.entries {
            out[r * self.cols + c] += v;
        }
        out
    }

    /// The transposed triplet list (shape swapped, entries flipped).
    pub fn transpose(&self) -> Self {
        Self {
            rows: self.cols,
            cols: self.rows,
            entries: self.entries.iter().map(|&(r, c, v)| (c, r, v)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_compact_sums_duplicates() {
        let mut t = TripletMatrix::new(3, 3);
        t.push(1, 1, 2.0);
        t.push(0, 2, 1.0);
        t.push(1, 1, 3.0);
        let t = t.compact();
        assert!(t.is_compact());
        assert_eq!(t.nnz(), 2);
        assert_eq!(t.entries()[0], (0, 2, 1.0));
        assert_eq!(t.entries()[1], (1, 1, 5.0));
    }

    #[test]
    fn compact_drops_cancelled_entries() {
        let mut t = TripletMatrix::new(2, 2);
        t.push(0, 0, 1.0);
        t.push(0, 0, -1.0);
        let t = t.compact();
        assert_eq!(t.nnz(), 0);
    }

    #[test]
    fn from_entries_validates_bounds() {
        let err = TripletMatrix::from_entries(2, 2, vec![(2, 0, 1.0)]).unwrap_err();
        assert!(matches!(err, SparseError::IndexOutOfBounds { row: 2, .. }));
    }

    #[test]
    fn dense_round_trip() {
        let d = vec![1.0, 0.0, 0.0, 2.0, 0.0, 3.0];
        let t = TripletMatrix::from_dense(2, 3, &d);
        assert_eq!(t.nnz(), 3);
        assert_eq!(t.to_dense(), d);
    }

    #[test]
    fn row_counts_and_row_sparse() {
        let t = TripletMatrix::from_entries(3, 4, vec![(0, 1, 1.0), (0, 3, 2.0), (2, 0, 5.0)])
            .unwrap()
            .compact();
        assert_eq!(t.row_counts(), vec![2, 0, 1]);
        let r0 = t.row_sparse(0);
        assert_eq!(r0.indices(), &[1, 3]);
        assert_eq!(r0.values(), &[1.0, 2.0]);
        assert_eq!(t.row_sparse(1).nnz(), 0);
    }

    #[test]
    fn transpose_flips_entries() {
        let t = TripletMatrix::from_entries(2, 3, vec![(0, 2, 4.0)]).unwrap();
        let tt = t.transpose();
        assert_eq!(tt.rows(), 3);
        assert_eq!(tt.cols(), 2);
        assert_eq!(tt.entries()[0], (2, 0, 4.0));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn push_rejects_out_of_bounds() {
        let mut t = TripletMatrix::new(1, 1);
        t.push(0, 1, 1.0);
    }
}
