//! JDS: jagged diagonal storage.
//!
//! The vectorisation-friendly answer to ELL's padding and CSR's lane
//! starvation: rows are sorted by descending length, then stored
//! column-major like ELL but each "jagged diagonal" only extends over the
//! rows long enough to reach it — no padding at all, and lockstep lanes
//! always process rows of near-equal remaining length. A classic derived
//! format from the vector-machine era (SPARSKIT), directly relevant to the
//! paper's `vdim` discussion.

use crate::format::{ensure_workspace, MAX_SMSV_BLOCK};
use crate::{Format, MatrixFormat, RowScratch, Scalar, SparseVec, SparseVecView, TripletMatrix};

/// Jagged-diagonal matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct JdsMatrix {
    rows: usize,
    cols: usize,
    /// `perm[k]` = original row index of the k-th longest row.
    perm: Vec<usize>,
    /// Start offset of each jagged diagonal in `col_idx`/`values`.
    jd_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<Scalar>,
}

impl JdsMatrix {
    /// Builds from the triplet interchange form.
    pub fn from_triplets(t: &TripletMatrix) -> Self {
        let t = if t.is_compact() { t.clone() } else { t.clone().compact() };
        let rows = t.rows();
        let counts = t.row_counts();
        // Rows sorted by descending nnz (stable, so ties keep row order).
        let mut perm: Vec<usize> = (0..rows).collect();
        perm.sort_by_key(|&i| std::cmp::Reverse(counts[i]));

        // Row-major entry lists per row for slot access.
        let mut per_row: Vec<Vec<(usize, Scalar)>> = vec![Vec::new(); rows];
        for &(r, c, v) in t.entries() {
            per_row[r].push((c, v));
        }

        let max_len = counts.iter().copied().max().unwrap_or(0);
        let mut jd_ptr = Vec::with_capacity(max_len + 1);
        let mut col_idx = Vec::with_capacity(t.nnz());
        let mut values = Vec::with_capacity(t.nnz());
        jd_ptr.push(0);
        for k in 0..max_len {
            // All rows with at least k+1 entries contribute; because perm
            // is sorted by length, they are a prefix of perm.
            for &r in &perm {
                if per_row[r].len() <= k {
                    break;
                }
                let (c, v) = per_row[r][k];
                col_idx.push(c);
                values.push(v);
            }
            jd_ptr.push(col_idx.len());
        }
        Self { rows, cols: t.cols(), perm, jd_ptr, col_idx, values }
    }

    /// Number of jagged diagonals (= the longest row's length).
    #[inline]
    pub fn n_jdiags(&self) -> usize {
        self.jd_ptr.len() - 1
    }

    /// The row permutation (descending row length).
    #[inline]
    pub fn permutation(&self) -> &[usize] {
        &self.perm
    }

    /// Number of rows participating in jagged diagonal `k`.
    #[inline]
    pub fn jdiag_len(&self, k: usize) -> usize {
        self.jd_ptr[k + 1] - self.jd_ptr[k]
    }
}

impl MatrixFormat for JdsMatrix {
    fn rows(&self) -> usize {
        self.rows
    }

    fn cols(&self) -> usize {
        self.cols
    }

    fn nnz(&self) -> usize {
        self.values.len()
    }

    fn format(&self) -> Format {
        Format::Jds
    }

    fn get(&self, i: usize, j: usize) -> Scalar {
        // Position of row i in the permutation.
        let p = self.perm.iter().position(|&r| r == i).expect("row in perm");
        for k in 0..self.n_jdiags() {
            if self.jdiag_len(k) <= p {
                break; // row i is shorter than k+1 entries
            }
            let pos = self.jd_ptr[k] + p;
            if self.col_idx[pos] == j {
                return self.values[pos];
            }
        }
        0.0
    }

    fn row_sparse(&self, i: usize) -> SparseVec {
        let p = self.perm.iter().position(|&r| r == i).expect("row in perm");
        let mut pairs: Vec<(usize, Scalar)> = Vec::new();
        for k in 0..self.n_jdiags() {
            if self.jdiag_len(k) <= p {
                break;
            }
            let pos = self.jd_ptr[k] + p;
            pairs.push((self.col_idx[pos], self.values[pos]));
        }
        pairs.sort_unstable_by_key(|x| x.0);
        SparseVec::new(
            self.cols,
            pairs.iter().map(|x| x.0).collect(),
            pairs.iter().map(|x| x.1).collect(),
        )
    }

    fn row_view_in<'a>(&'a self, i: usize, scratch: &'a mut RowScratch) -> SparseVecView<'a> {
        // Jagged diagonals visit a row's entries in original CSR slot
        // order, which is already ascending by column — but keep the
        // co-sort for safety with hand-built triplet orders.
        let p = self.perm.iter().position(|&r| r == i).expect("row in perm");
        scratch.clear();
        for k in 0..self.n_jdiags() {
            if self.jdiag_len(k) <= p {
                break;
            }
            let pos = self.jd_ptr[k] + p;
            scratch.push(self.col_idx[pos], self.values[pos]);
        }
        scratch.sort_pairs();
        scratch.view(self.cols)
    }

    fn smsv(&self, v: &SparseVec, out: &mut [Scalar]) {
        let mut workspace = Vec::new();
        self.smsv_view(v.as_view(), out, &mut workspace);
    }

    fn smsv_view(&self, v: SparseVecView<'_>, out: &mut [Scalar], workspace: &mut Vec<Scalar>) {
        assert_eq!(v.dim(), self.cols, "SMSV vector dimension mismatch");
        assert_eq!(out.len(), self.rows, "SMSV output length mismatch");
        // Workspace holds the dense scatter (cols) followed by the permuted
        // accumulator (rows); both regions are restored to zero on exit.
        let ws = ensure_workspace(workspace, self.cols + self.rows);
        debug_assert!(ws.iter().all(|&w| w == 0.0));
        let (dense, acc) = ws.split_at_mut(self.cols);
        v.scatter(dense);
        // Accumulate in permuted order (contiguous streams, zero padding),
        // then scatter back through the permutation.
        for k in 0..self.n_jdiags() {
            let (s, e) = (self.jd_ptr[k], self.jd_ptr[k + 1]);
            let idx = &self.col_idx[s..e];
            let val = &self.values[s..e];
            for (p, (&c, &x)) in idx.iter().zip(val).enumerate() {
                acc[p] += x * dense[c];
            }
        }
        for (p, &r) in self.perm.iter().enumerate() {
            out[r] = acc[p];
            acc[p] = 0.0;
        }
        v.unscatter(dense);
    }

    fn smsv_block(&self, vs: &[SparseVec], out: &mut [Scalar], workspace: &mut Vec<Scalar>) {
        assert_eq!(out.len(), self.rows * vs.len(), "smsv_block output length mismatch");
        // Blocked jagged-diagonal sweep: the padding-free column-major
        // streams are walked once per chunk, and each permuted position
        // keeps cb interleaved accumulators (one per right-hand side) so
        // the inner lane loop is a broadcast-multiply-add the
        // autovectorizer maps straight onto SIMD lanes. Each lane still
        // sums a row's entries in jagged-diagonal (= ascending column)
        // order, bit-identical to the per-vector kernel.
        let mut b0 = 0;
        while b0 < vs.len() {
            let cb = (vs.len() - b0).min(MAX_SMSV_BLOCK);
            if cb == 1 {
                // A single lane degenerates to the per-vector sweep; skip
                // the interleaved workspace and its writeback entirely.
                let dst = &mut out[b0 * self.rows..(b0 + 1) * self.rows];
                self.smsv_view(vs[b0].as_view(), dst, workspace);
                b0 += 1;
                continue;
            }
            let chunk = &vs[b0..b0 + cb];
            let ws = ensure_workspace(workspace, (self.cols + self.rows) * cb);
            debug_assert!(ws.iter().all(|&w| w == 0.0));
            let (scat, acc) = ws.split_at_mut(self.cols * cb);
            for (bi, v) in chunk.iter().enumerate() {
                assert_eq!(v.dim(), self.cols, "SMSV vector dimension mismatch");
                for (j, x) in v.iter() {
                    scat[j * cb + bi] = x;
                }
            }
            for k in 0..self.n_jdiags() {
                let (s, e) = (self.jd_ptr[k], self.jd_ptr[k + 1]);
                let idx = &self.col_idx[s..e];
                let val = &self.values[s..e];
                for (p, (&c, &x)) in idx.iter().zip(val).enumerate() {
                    let lane = &scat[c * cb..(c + 1) * cb];
                    let a = &mut acc[p * cb..(p + 1) * cb];
                    for (ab, &w) in a.iter_mut().zip(lane) {
                        *ab += x * w;
                    }
                }
            }
            for (p, &r) in self.perm.iter().enumerate() {
                for bi in 0..cb {
                    out[(b0 + bi) * self.rows + r] = acc[p * cb + bi];
                    acc[p * cb + bi] = 0.0;
                }
            }
            for (bi, v) in chunk.iter().enumerate() {
                for &j in v.indices() {
                    scat[j * cb + bi] = 0.0;
                }
            }
            b0 += cb;
        }
    }

    fn spmv(&self, x: &[Scalar], out: &mut [Scalar]) {
        assert_eq!(x.len(), self.cols, "SpMV vector dimension mismatch");
        let v = SparseVec::from_dense(x);
        self.smsv(&v, out);
    }

    fn row_norms_sq(&self, out: &mut [Scalar]) {
        assert_eq!(out.len(), self.rows);
        let mut acc = vec![0.0; self.rows];
        for k in 0..self.n_jdiags() {
            let (s, e) = (self.jd_ptr[k], self.jd_ptr[k + 1]);
            for (p, &v) in self.values[s..e].iter().enumerate() {
                acc[p] += v * v;
            }
        }
        for (p, &r) in self.perm.iter().enumerate() {
            out[r] = acc[p];
        }
    }

    fn to_triplets(&self) -> TripletMatrix {
        let mut t = TripletMatrix::with_capacity(self.rows, self.cols, self.nnz());
        for k in 0..self.n_jdiags() {
            let (s, e) = (self.jd_ptr[k], self.jd_ptr[k + 1]);
            for (p, (&c, &v)) in self.col_idx[s..e].iter().zip(&self.values[s..e]).enumerate() {
                t.push(self.perm[p], c, v);
            }
        }
        t.compact()
    }

    fn storage_bytes(&self) -> usize {
        (self.perm.len() + self.jd_ptr.len() + self.col_idx.len()) * std::mem::size_of::<usize>()
            + self.values.len() * std::mem::size_of::<Scalar>()
    }

    fn storage_elems(&self) -> usize {
        // nnz data + nnz indices + permutation + jd pointers: no padding.
        2 * self.nnz() + self.rows + self.jd_ptr.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Rows of length 3, 1, 2 — exercises the permutation.
    fn sample() -> TripletMatrix {
        TripletMatrix::from_entries(
            3,
            4,
            vec![(0, 0, 1.0), (0, 2, 2.0), (0, 3, 3.0), (1, 1, 4.0), (2, 0, 5.0), (2, 3, 6.0)],
        )
        .unwrap()
        .compact()
    }

    #[test]
    fn permutation_sorts_by_length() {
        let m = JdsMatrix::from_triplets(&sample());
        assert_eq!(m.permutation(), &[0, 2, 1]); // lengths 3, 2, 1
        assert_eq!(m.n_jdiags(), 3);
        assert_eq!(m.jdiag_len(0), 3); // all rows have >= 1 entry
        assert_eq!(m.jdiag_len(1), 2); // rows 0 and 2
        assert_eq!(m.jdiag_len(2), 1); // row 0 only
    }

    #[test]
    fn no_padding_is_stored() {
        let m = JdsMatrix::from_triplets(&sample());
        assert_eq!(m.nnz(), 6);
        assert_eq!(m.storage_elems(), 2 * 6 + 3 + 4);
    }

    #[test]
    fn get_and_row_extraction() {
        let m = JdsMatrix::from_triplets(&sample());
        assert_eq!(m.get(0, 3), 3.0);
        assert_eq!(m.get(1, 1), 4.0);
        assert_eq!(m.get(2, 1), 0.0);
        let r = m.row_sparse(2);
        assert_eq!(r.indices(), &[0, 3]);
        assert_eq!(r.values(), &[5.0, 6.0]);
    }

    #[test]
    fn smsv_matches_reference() {
        let t = sample();
        let m = JdsMatrix::from_triplets(&t);
        let v = SparseVec::new(4, vec![0, 3], vec![2.0, 1.0]);
        let mut out = vec![0.0; 3];
        m.smsv(&v, &mut out);
        assert_eq!(out, vec![2.0 + 3.0, 0.0, 10.0 + 6.0]);
    }

    #[test]
    fn norms_respect_permutation() {
        let m = JdsMatrix::from_triplets(&sample());
        let mut out = vec![0.0; 3];
        m.row_norms_sq(&mut out);
        assert_eq!(out, vec![1.0 + 4.0 + 9.0, 16.0, 25.0 + 36.0]);
    }

    #[test]
    fn triplet_round_trip() {
        let t = sample();
        let m = JdsMatrix::from_triplets(&t);
        assert_eq!(m.to_triplets().entries(), t.entries());
    }

    #[test]
    fn jds_stores_less_than_ell_on_skewed_rows() {
        use crate::EllMatrix;
        let mut t = TripletMatrix::new(64, 64);
        for j in 0..64 {
            t.push(0, j, 1.0);
        }
        for i in 1..64 {
            t.push(i, i, 1.0);
        }
        let t = t.compact();
        let jds = JdsMatrix::from_triplets(&t);
        let ell = EllMatrix::from_triplets(&t);
        assert!(jds.storage_elems() < ell.storage_elems() / 10);
    }
}
