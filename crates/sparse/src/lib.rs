#![warn(missing_docs)]

//! # dls-sparse
//!
//! Storage formats and kernels for machine-learning data matrices.
//!
//! This crate implements the five basic storage formats studied by the
//! paper — [`DenseMatrix`] (DEN), [`CsrMatrix`] (CSR), [`CooMatrix`] (COO),
//! [`EllMatrix`] (ELL) and [`DiaMatrix`] (DIA) — plus two derived formats
//! mentioned in §III-A ([`CscMatrix`] and [`BcsrMatrix`]). Every format
//! implements [`MatrixFormat`], whose central operation is
//! [`MatrixFormat::smsv`]: the sparse-matrix × sparse-vector product that
//! dominates each SMO iteration of SVM training.
//!
//! The nine influencing parameters of Table IV are computed by
//! [`features::MatrixFeatures`], and the Table II storage-space model lives
//! in [`storage`].

pub mod bcsr;
pub mod coo;
pub mod csc;
pub mod csr;
pub mod dense;
pub mod dia;
pub mod ell;
pub mod error;
pub mod features;
pub mod format;
pub mod hyb;
pub mod jds;
pub mod ops;
pub mod parallel;
pub mod sparsevec;
pub mod storage;
pub mod telemetry;
pub mod triplet;

pub use bcsr::BcsrMatrix;
pub use coo::CooMatrix;
pub use csc::CscMatrix;
pub use csr::CsrMatrix;
pub use dense::DenseMatrix;
pub use dia::DiaMatrix;
pub use ell::EllMatrix;
pub use error::SparseError;
pub use features::MatrixFeatures;
pub use format::{AnyMatrix, Format, MatrixFormat, MAX_SMSV_BLOCK};
pub use hyb::HybMatrix;
pub use jds::JdsMatrix;
pub use sparsevec::{RowScratch, SparseVec, SparseVecView};
pub use telemetry::{
    CounterSample, InstrumentedMatrix, SmsvCounters, SmsvSnapshot, BLOCK_HIST_BUCKETS,
};
pub use triplet::TripletMatrix;

/// Scalar type used throughout the library. LIBSVM and the paper's
/// implementation both use double precision.
pub type Scalar = f64;
