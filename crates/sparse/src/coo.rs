//! COO: coordinate list, sorted row-major.
//!
//! Stores `(row, col, value)` for every non-zero — 3·nnz elements, the most
//! of any sparse format for dense data (Table II max `3MN`) — but every
//! stored element is an independent unit of work, so the kernel is immune to
//! row-length imbalance (`vdim`). This is why COO overtakes CSR as `vdim`
//! grows (paper Fig. 4).

use crate::format::{ensure_workspace, MAX_SMSV_BLOCK};
use crate::{Format, MatrixFormat, RowScratch, Scalar, SparseVec, SparseVecView, TripletMatrix};

/// Coordinate-format matrix with entries sorted row-major.
#[derive(Debug, Clone, PartialEq)]
pub struct CooMatrix {
    rows: usize,
    cols: usize,
    row_idx: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<Scalar>,
}

impl CooMatrix {
    /// Builds from the triplet interchange form (compacted first).
    pub fn from_triplets(t: &TripletMatrix) -> Self {
        let t = if t.is_compact() { t.clone() } else { t.clone().compact() };
        let mut row_idx = Vec::with_capacity(t.nnz());
        let mut col_idx = Vec::with_capacity(t.nnz());
        let mut values = Vec::with_capacity(t.nnz());
        for &(r, c, v) in t.entries() {
            row_idx.push(r);
            col_idx.push(c);
            values.push(v);
        }
        Self { rows: t.rows(), cols: t.cols(), row_idx, col_idx, values }
    }

    /// Row index array (`nnz` entries, non-decreasing).
    #[inline]
    pub fn row_idx(&self) -> &[usize] {
        &self.row_idx
    }

    /// Column index array (`nnz` entries).
    #[inline]
    pub fn col_idx(&self) -> &[usize] {
        &self.col_idx
    }

    /// Value array (`nnz` entries).
    #[inline]
    pub fn values(&self) -> &[Scalar] {
        &self.values
    }

    /// Range of entry positions belonging to row `i` (binary search on the
    /// sorted row index array).
    pub fn row_range(&self, i: usize) -> std::ops::Range<usize> {
        let start = self.row_idx.partition_point(|&r| r < i);
        let end = self.row_idx.partition_point(|&r| r <= i);
        start..end
    }

    /// SMSV with an explicit scatter workspace (all zeros on entry/exit).
    pub fn smsv_with(&self, v: &SparseVec, out: &mut [Scalar], workspace: &mut [Scalar]) {
        self.smsv_view_with(v.as_view(), out, workspace);
    }

    /// Borrowed-view SMSV kernel behind both [`CooMatrix::smsv_with`] and
    /// [`MatrixFormat::smsv_view`] (workspace all zeros on entry/exit).
    pub fn smsv_view_with(
        &self,
        v: SparseVecView<'_>,
        out: &mut [Scalar],
        workspace: &mut [Scalar],
    ) {
        assert_eq!(v.dim(), self.cols, "SMSV vector dimension mismatch");
        assert_eq!(out.len(), self.rows, "SMSV output length mismatch");
        debug_assert!(workspace.iter().all(|&w| w == 0.0));
        v.scatter(workspace);
        out.fill(0.0);
        // One flat pass over all nnz entries: perfectly balanced work.
        for k in 0..self.values.len() {
            out[self.row_idx[k]] += self.values[k] * workspace[self.col_idx[k]];
        }
        v.unscatter(workspace);
    }
}

impl MatrixFormat for CooMatrix {
    fn rows(&self) -> usize {
        self.rows
    }

    fn cols(&self) -> usize {
        self.cols
    }

    fn nnz(&self) -> usize {
        self.values.len()
    }

    fn format(&self) -> Format {
        Format::Coo
    }

    fn get(&self, i: usize, j: usize) -> Scalar {
        let range = self.row_range(i);
        match self.col_idx[range.clone()].binary_search(&j) {
            Ok(pos) => self.values[range.start + pos],
            Err(_) => 0.0,
        }
    }

    fn row_sparse(&self, i: usize) -> SparseVec {
        let range = self.row_range(i);
        SparseVec::new(self.cols, self.col_idx[range.clone()].to_vec(), self.values[range].to_vec())
    }

    fn row_view_in<'a>(&'a self, i: usize, _scratch: &'a mut RowScratch) -> SparseVecView<'a> {
        // Entries are row-major sorted, so a row is a contiguous run:
        // borrow the storage directly.
        let range = self.row_range(i);
        SparseVecView::new(self.cols, &self.col_idx[range.clone()], &self.values[range])
    }

    fn smsv(&self, v: &SparseVec, out: &mut [Scalar]) {
        let mut workspace = vec![0.0; self.cols];
        self.smsv_with(v, out, &mut workspace);
    }

    fn smsv_view(&self, v: SparseVecView<'_>, out: &mut [Scalar], workspace: &mut Vec<Scalar>) {
        let ws = ensure_workspace(workspace, self.cols);
        self.smsv_view_with(v, out, ws);
    }

    fn smsv_block(&self, vs: &[SparseVec], out: &mut [Scalar], workspace: &mut Vec<Scalar>) {
        assert_eq!(out.len(), self.rows * vs.len(), "smsv_block output length mismatch");
        // Blocked kernel via segmented accumulation: entries are row-major
        // sorted, so each row is a contiguous run of the flat entry pass.
        // A cb-lane stack accumulator rides the run and flushes on the row
        // boundary, so the three COO arrays are streamed exactly once per
        // chunk instead of once per right-hand side, and the inner lane
        // loop (one value broadcast against cb scattered lanes) is
        // straight-line code the autovectorizer can fuse.
        let mut b0 = 0;
        while b0 < vs.len() {
            let cb = (vs.len() - b0).min(MAX_SMSV_BLOCK);
            if cb == 1 {
                // A single lane degenerates to the per-vector sweep; skip
                // the interleaved workspace and its writeback entirely.
                let dst = &mut out[b0 * self.rows..(b0 + 1) * self.rows];
                self.smsv_view(vs[b0].as_view(), dst, workspace);
                b0 += 1;
                continue;
            }
            let chunk = &vs[b0..b0 + cb];
            let ws = ensure_workspace(workspace, self.cols * cb);
            debug_assert!(ws.iter().all(|&w| w == 0.0));
            for (bi, v) in chunk.iter().enumerate() {
                assert_eq!(v.dim(), self.cols, "SMSV vector dimension mismatch");
                for (j, x) in v.iter() {
                    ws[j * cb + bi] = x;
                }
            }
            out[b0 * self.rows..(b0 + cb) * self.rows].fill(0.0);
            let mut acc = [0.0 as Scalar; MAX_SMSV_BLOCK];
            let mut cur = usize::MAX;
            for k in 0..self.values.len() {
                let r = self.row_idx[k];
                if r != cur {
                    if cur != usize::MAX {
                        for (bi, a) in acc[..cb].iter_mut().enumerate() {
                            out[(b0 + bi) * self.rows + cur] = *a;
                            *a = 0.0;
                        }
                    }
                    cur = r;
                }
                let x = self.values[k];
                let c = self.col_idx[k];
                let lane = &ws[c * cb..(c + 1) * cb];
                for (a, &w) in acc[..cb].iter_mut().zip(lane) {
                    *a += x * w;
                }
            }
            if cur != usize::MAX {
                for (bi, a) in acc[..cb].iter_mut().enumerate() {
                    out[(b0 + bi) * self.rows + cur] = *a;
                    *a = 0.0;
                }
            }
            for (bi, v) in chunk.iter().enumerate() {
                for &j in v.indices() {
                    ws[j * cb + bi] = 0.0;
                }
            }
            b0 += cb;
        }
    }

    fn spmv(&self, x: &[Scalar], out: &mut [Scalar]) {
        assert_eq!(x.len(), self.cols, "SpMV vector dimension mismatch");
        assert_eq!(out.len(), self.rows, "SpMV output length mismatch");
        out.fill(0.0);
        for k in 0..self.values.len() {
            out[self.row_idx[k]] += self.values[k] * x[self.col_idx[k]];
        }
    }

    fn row_norms_sq(&self, out: &mut [Scalar]) {
        assert_eq!(out.len(), self.rows);
        out.fill(0.0);
        for k in 0..self.values.len() {
            out[self.row_idx[k]] += self.values[k] * self.values[k];
        }
    }

    fn to_triplets(&self) -> TripletMatrix {
        let mut t = TripletMatrix::with_capacity(self.rows, self.cols, self.nnz());
        for k in 0..self.values.len() {
            t.push(self.row_idx[k], self.col_idx[k], self.values[k]);
        }
        t
    }

    fn storage_bytes(&self) -> usize {
        2 * self.row_idx.len() * std::mem::size_of::<usize>()
            + self.values.len() * std::mem::size_of::<Scalar>()
    }

    fn storage_elems(&self) -> usize {
        // Table II: three arrays of nnz elements each (max 3MN when dense).
        3 * self.nnz()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CooMatrix {
        let t = TripletMatrix::from_entries(
            3,
            4,
            vec![(0, 0, 1.0), (0, 2, 2.0), (2, 0, 3.0), (2, 1, 4.0), (2, 3, 5.0)],
        )
        .unwrap();
        CooMatrix::from_triplets(&t)
    }

    #[test]
    fn construction_sorts_entries() {
        let t = TripletMatrix::from_entries(2, 2, vec![(1, 1, 4.0), (0, 0, 1.0)]).unwrap();
        let m = CooMatrix::from_triplets(&t);
        assert_eq!(m.row_idx(), &[0, 1]);
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(1, 1), 4.0);
    }

    #[test]
    fn row_range_finds_rows() {
        let m = sample();
        assert_eq!(m.row_range(0), 0..2);
        assert_eq!(m.row_range(1), 2..2);
        assert_eq!(m.row_range(2), 2..5);
    }

    #[test]
    fn smsv_matches_manual() {
        let m = sample();
        let v = SparseVec::new(4, vec![0, 3], vec![2.0, 1.0]);
        let mut out = vec![0.0; 3];
        m.smsv(&v, &mut out);
        assert_eq!(out, vec![2.0, 0.0, 11.0]);
    }

    #[test]
    fn spmv_and_norms() {
        let m = sample();
        let mut out = vec![0.0; 3];
        m.spmv(&[1.0, 1.0, 1.0, 1.0], &mut out);
        assert_eq!(out, vec![3.0, 0.0, 12.0]);
        m.row_norms_sq(&mut out);
        assert_eq!(out, vec![5.0, 0.0, 50.0]);
    }

    #[test]
    fn row_sparse_extracts_row() {
        let m = sample();
        let r = m.row_sparse(2);
        assert_eq!(r.indices(), &[0, 1, 3]);
        assert_eq!(m.row_sparse(1).nnz(), 0);
    }

    #[test]
    fn triplet_round_trip() {
        let m = sample();
        assert_eq!(CooMatrix::from_triplets(&m.to_triplets()), m);
    }

    #[test]
    fn storage_elems_is_three_nnz() {
        assert_eq!(sample().storage_elems(), 15);
    }
}
