//! CSC: Compressed Sparse Column — a derived format (§III-A), "similar to
//! CSR, the only difference is that the columns are used instead of rows".
//!
//! Interesting for SMSV because the sparse right-hand vector selects
//! *columns*: only the columns where `v` is non-zero are touched at all, so
//! the kernel is Θ(Σ_{j ∈ nnz(v)} colnnz_j) — independent of the matrix rows
//! that never meet `v`.

// Kernel loops index multiple parallel arrays; the indexed form is the
// clearest statement of the per-column sweep.
#![allow(clippy::needless_range_loop)]

use crate::format::MAX_SMSV_BLOCK;
use crate::{Format, MatrixFormat, RowScratch, Scalar, SparseVec, SparseVecView, TripletMatrix};

/// Compressed Sparse Column matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct CscMatrix {
    rows: usize,
    cols: usize,
    /// `col_ptr[j]..col_ptr[j+1]` is the entry range of column `j`.
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
    values: Vec<Scalar>,
}

impl CscMatrix {
    /// Builds from the triplet interchange form.
    pub fn from_triplets(t: &TripletMatrix) -> Self {
        let mut entries: Vec<(usize, usize, Scalar)> = t.clone().compact().entries().to_vec();
        // Column-major order.
        entries.sort_unstable_by_key(|&(r, c, _)| (c, r));
        let mut col_ptr = vec![0usize; t.cols() + 1];
        for &(_, c, _) in &entries {
            col_ptr[c + 1] += 1;
        }
        for j in 0..t.cols() {
            col_ptr[j + 1] += col_ptr[j];
        }
        let row_idx = entries.iter().map(|e| e.0).collect();
        let values = entries.iter().map(|e| e.2).collect();
        Self { rows: t.rows(), cols: t.cols(), col_ptr, row_idx, values }
    }

    /// Column pointer array (`N + 1` entries).
    #[inline]
    pub fn col_ptr(&self) -> &[usize] {
        &self.col_ptr
    }

    /// Row indices and values of column `j`.
    #[inline]
    pub fn col_view(&self, j: usize) -> (&[usize], &[Scalar]) {
        let (s, e) = (self.col_ptr[j], self.col_ptr[j + 1]);
        (&self.row_idx[s..e], &self.values[s..e])
    }
}

impl MatrixFormat for CscMatrix {
    fn rows(&self) -> usize {
        self.rows
    }

    fn cols(&self) -> usize {
        self.cols
    }

    fn nnz(&self) -> usize {
        self.values.len()
    }

    fn format(&self) -> Format {
        Format::Csc
    }

    fn get(&self, i: usize, j: usize) -> Scalar {
        let (rows, vals) = self.col_view(j);
        match rows.binary_search(&i) {
            Ok(pos) => vals[pos],
            Err(_) => 0.0,
        }
    }

    fn row_sparse(&self, i: usize) -> SparseVec {
        // O(N log colnnz): CSC pays for row extraction, as expected of a
        // column-oriented layout.
        let mut indices = Vec::new();
        let mut values = Vec::new();
        for j in 0..self.cols {
            let v = self.get(i, j);
            if v != 0.0 {
                indices.push(j);
                values.push(v);
            }
        }
        SparseVec::new(self.cols, indices, values)
    }

    fn row_view_in<'a>(&'a self, i: usize, scratch: &'a mut RowScratch) -> SparseVecView<'a> {
        // Same O(N log colnnz) walk as `row_sparse`, but into the reusable
        // scratch; columns are visited in ascending order so no sort.
        scratch.clear();
        for j in 0..self.cols {
            let v = self.get(i, j);
            if v != 0.0 {
                scratch.push(j, v);
            }
        }
        scratch.view(self.cols)
    }

    fn smsv(&self, v: &SparseVec, out: &mut [Scalar]) {
        let mut workspace = Vec::new();
        self.smsv_view(v.as_view(), out, &mut workspace);
    }

    fn smsv_view(&self, v: SparseVecView<'_>, out: &mut [Scalar], workspace: &mut Vec<Scalar>) {
        assert_eq!(v.dim(), self.cols, "SMSV vector dimension mismatch");
        assert_eq!(out.len(), self.rows, "SMSV output length mismatch");
        // No dense scatter needed: v's indices select columns directly.
        let _ = workspace;
        out.fill(0.0);
        // Only columns selected by v contribute: out += X[:, j] * v_j.
        for (j, x) in v.iter() {
            let (rows, vals) = self.col_view(j);
            for (&r, &a) in rows.iter().zip(vals) {
                out[r] += a * x;
            }
        }
    }

    fn smsv_block(&self, vs: &[SparseVec], out: &mut [Scalar], workspace: &mut Vec<Scalar>) {
        let rows = self.rows;
        assert_eq!(out.len(), rows * vs.len(), "smsv_block output length mismatch");
        let mut b0 = 0;
        while b0 < vs.len() {
            let cb = (vs.len() - b0).min(MAX_SMSV_BLOCK);
            if cb == 1 {
                // A single lane degenerates to the per-vector sweep.
                let dst = &mut out[b0 * rows..(b0 + 1) * rows];
                self.smsv_view(vs[b0].as_view(), dst, workspace);
                b0 += 1;
                continue;
            }
            let chunk = &vs[b0..b0 + cb];
            for v in chunk {
                assert_eq!(v.dim(), self.cols, "SMSV vector dimension mismatch");
            }
            let outs = &mut out[b0 * rows..(b0 + cb) * rows];
            outs.fill(0.0);
            // K-way merge of the lanes' ascending column lists: each union
            // column's row/value data is streamed exactly once and fed to
            // every lane holding that column, instead of once per lane. A
            // fixed lane still sees its own columns in ascending order with
            // rows in storage order inside a column — exactly the
            // per-vector sweep's order — so blocked results stay
            // bit-identical to `smsv_view`.
            let mut cur = [0usize; MAX_SMSV_BLOCK];
            let mut active = [(0usize, 0.0 as Scalar); MAX_SMSV_BLOCK];
            loop {
                let mut j = usize::MAX;
                for (bi, v) in chunk.iter().enumerate() {
                    if let Some(&ji) = v.indices().get(cur[bi]) {
                        j = j.min(ji);
                    }
                }
                if j == usize::MAX {
                    break;
                }
                let mut nact = 0;
                for (bi, v) in chunk.iter().enumerate() {
                    if v.indices().get(cur[bi]) == Some(&j) {
                        active[nact] = (bi * rows, v.values()[cur[bi]]);
                        nact += 1;
                        cur[bi] += 1;
                    }
                }
                let (ridx, vals) = self.col_view(j);
                for (&r, &a) in ridx.iter().zip(vals) {
                    for &(base, x) in &active[..nact] {
                        outs[base + r] += a * x;
                    }
                }
            }
            b0 += cb;
        }
    }

    fn spmv(&self, x: &[Scalar], out: &mut [Scalar]) {
        assert_eq!(x.len(), self.cols, "SpMV vector dimension mismatch");
        assert_eq!(out.len(), self.rows, "SpMV output length mismatch");
        out.fill(0.0);
        for j in 0..self.cols {
            let xj = x[j];
            if xj == 0.0 {
                continue;
            }
            let (rows, vals) = self.col_view(j);
            for (&r, &a) in rows.iter().zip(vals) {
                out[r] += a * xj;
            }
        }
    }

    fn row_norms_sq(&self, out: &mut [Scalar]) {
        assert_eq!(out.len(), self.rows);
        out.fill(0.0);
        for (r, v) in self.row_idx.iter().zip(&self.values) {
            out[*r] += v * v;
        }
    }

    fn to_triplets(&self) -> TripletMatrix {
        let mut t = TripletMatrix::with_capacity(self.rows, self.cols, self.nnz());
        for j in 0..self.cols {
            let (rows, vals) = self.col_view(j);
            for (&r, &v) in rows.iter().zip(vals) {
                t.push(r, j, v);
            }
        }
        t.compact()
    }

    fn storage_bytes(&self) -> usize {
        self.col_ptr.len() * std::mem::size_of::<usize>()
            + self.row_idx.len() * std::mem::size_of::<usize>()
            + self.values.len() * std::mem::size_of::<Scalar>()
    }

    fn storage_elems(&self) -> usize {
        2 * self.nnz() + self.cols + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CscMatrix {
        let t = TripletMatrix::from_entries(
            3,
            4,
            vec![(0, 0, 1.0), (0, 2, 2.0), (2, 0, 3.0), (2, 1, 4.0), (2, 3, 5.0)],
        )
        .unwrap();
        CscMatrix::from_triplets(&t)
    }

    #[test]
    fn column_pointers() {
        let m = sample();
        assert_eq!(m.col_ptr(), &[0, 2, 3, 4, 5]);
        let (rows, vals) = m.col_view(0);
        assert_eq!(rows, &[0, 2]);
        assert_eq!(vals, &[1.0, 3.0]);
    }

    #[test]
    fn get_and_row_extraction() {
        let m = sample();
        assert_eq!(m.get(2, 1), 4.0);
        assert_eq!(m.get(1, 1), 0.0);
        let r = m.row_sparse(2);
        assert_eq!(r.indices(), &[0, 1, 3]);
    }

    #[test]
    fn smsv_touches_selected_columns_only() {
        let m = sample();
        let v = SparseVec::new(4, vec![0, 3], vec![2.0, 1.0]);
        let mut out = vec![0.0; 3];
        m.smsv(&v, &mut out);
        assert_eq!(out, vec![2.0, 0.0, 11.0]);
    }

    #[test]
    fn spmv_and_norms() {
        let m = sample();
        let mut out = vec![0.0; 3];
        m.spmv(&[1.0, 1.0, 1.0, 1.0], &mut out);
        assert_eq!(out, vec![3.0, 0.0, 12.0]);
        m.row_norms_sq(&mut out);
        assert_eq!(out, vec![5.0, 0.0, 50.0]);
    }

    #[test]
    fn triplet_round_trip() {
        let m = sample();
        assert_eq!(CscMatrix::from_triplets(&m.to_triplets()), m);
    }
}
