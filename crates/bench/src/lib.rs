#![warn(missing_docs)]

//! # dls-bench
//!
//! Reproduction harness. Each paper table/figure has a `repro_*` binary
//! (see `src/bin/`) and most have a Criterion bench (see `benches/`).
//! This library holds the shared pieces: scaled workload construction,
//! timing utilities, and table formatting.

pub mod csv;
pub mod timing;
pub mod workloads;

pub use csv::{csv_dir_from_env, CsvWriter};
pub use timing::{
    normalise_to_slowest, time_smo_iterations, time_smo_iterations_telemetry, time_smsv,
};
pub use workloads::{fig1_workloads, table6_workloads, workload, Workload};
