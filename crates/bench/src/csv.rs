//! Tiny CSV emitter for the repro binaries: each figure/table can dump its
//! data series under `results/` for external plotting.

use std::io::Write;
use std::path::{Path, PathBuf};

/// A CSV writer bound to one output file.
#[derive(Debug)]
pub struct CsvWriter {
    path: PathBuf,
    out: std::io::BufWriter<std::fs::File>,
    columns: usize,
}

impl CsvWriter {
    /// Creates `dir/name.csv` (and `dir` itself if needed) with a header.
    pub fn create(dir: &Path, name: &str, header: &[&str]) -> std::io::Result<CsvWriter> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{name}.csv"));
        let file = std::fs::File::create(&path)?;
        let mut out = std::io::BufWriter::new(file);
        writeln!(out, "{}", header.join(","))?;
        Ok(CsvWriter { path, out, columns: header.len() })
    }

    /// Writes one row; values are formatted with `Display`.
    ///
    /// # Panics
    /// Panics if the row width differs from the header width.
    pub fn row<D: std::fmt::Display>(&mut self, values: &[D]) -> std::io::Result<()> {
        assert_eq!(values.len(), self.columns, "row width mismatch in {:?}", self.path);
        let joined: Vec<String> = values.iter().map(|v| v.to_string()).collect();
        writeln!(self.out, "{}", joined.join(","))
    }

    /// Flushes and returns the file path.
    pub fn finish(mut self) -> std::io::Result<PathBuf> {
        self.out.flush()?;
        Ok(self.path)
    }
}

/// Reads `DLS_CSV_DIR` from the environment: when set, repro binaries dump
/// their series there.
pub fn csv_dir_from_env() -> Option<PathBuf> {
    std::env::var_os("DLS_CSV_DIR").map(PathBuf::from)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_header_and_rows() {
        let dir = std::env::temp_dir().join("dls_csv_test");
        let mut w = CsvWriter::create(&dir, "probe", &["x", "y"]).unwrap();
        w.row(&[1.5, 2.5]).unwrap();
        w.row(&[3.0, 4.0]).unwrap();
        let path = w.finish().unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "x,y\n1.5,2.5\n3,4\n");
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_wrong_width() {
        let dir = std::env::temp_dir().join("dls_csv_test2");
        let mut w = CsvWriter::create(&dir, "probe2", &["a", "b", "c"]).unwrap();
        let _ = w.row(&[1.0]);
    }

    #[test]
    fn env_controls_dir() {
        // Not set in the test environment by default.
        if std::env::var_os("DLS_CSV_DIR").is_none() {
            assert!(csv_dir_from_env().is_none());
        }
    }
}
