//! Reproduces **Figure 1 and Table III**: SMO performance of the five
//! storage formats on adult, aloi, mnist, gisette and trefethen, as
//! speedups normalised to the slowest format per dataset.
//!
//! Paper reference values (Table III):
//!
//! | dataset   | ELL  | CSR  | COO  | DEN  | DIA  |
//! |-----------|------|------|------|------|------|
//! | adult     | 14×  | 13×  | 8.6× | 13×  | 1.0  |
//! | aloi      | 2.8× | 6.6× | 1.0  | 3.8× | 1.7× |
//! | mnist     | 1.0  | 4.8× | 5.1× | 1.5× | 1.1× |
//! | gisette   | 1.9× | 1.9× | 1.2× | 3.7× | 1.0  |
//! | trefethen | 3.1× | 3.6× | 3.9× | 1.0  | 4.1× |

use dls_bench::{fig1_workloads, normalise_to_slowest, time_smo_iterations};
use dls_sparse::{AnyMatrix, Format, MatrixFormat, SparseVec};
use std::time::Instant;

/// Paper Table III, rows in FIG1_DATASETS order, columns in Format::BASIC
/// order (ELL, CSR, COO, DEN, DIA).
const PAPER_TABLE3: [(&str, [f64; 5]); 5] = [
    ("adult", [14.0, 13.0, 8.6, 13.0, 1.0]),
    ("aloi", [2.8, 6.6, 1.0, 3.8, 1.7]),
    ("mnist", [1.0, 4.8, 5.1, 1.5, 1.1]),
    ("gisette", [1.9, 1.9, 1.2, 3.7, 1.0]),
    ("trefethen", [3.1, 3.6, 3.9, 1.0, 4.1]),
];

fn main() {
    let iters: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(40);
    println!("# Figure 1 / Table III — per-format SMO speedup (normalised to slowest)");
    println!("# {iters} SMO iterations per measurement, kernel-row cache disabled\n");
    println!(
        "{:<12} {:>8} {:>8} {:>8} {:>8} {:>8}   best(worst)  paper-best(paper-worst)",
        "dataset", "ELL", "CSR", "COO", "DEN", "DIA"
    );

    for w in fig1_workloads(42) {
        let times: Vec<(Format, f64)> = Format::BASIC
            .iter()
            .map(|&f| (f, time_smo_iterations(&w.matrix, &w.labels, f, iters)))
            .collect();
        let speedups = normalise_to_slowest(&times);
        let best = speedups.iter().max_by(|a, b| a.1.partial_cmp(&b.1).unwrap()).unwrap().0;
        let worst = speedups.iter().min_by(|a, b| a.1.partial_cmp(&b.1).unwrap()).unwrap().0;
        let paper = PAPER_TABLE3.iter().find(|(n, _)| *n == w.name).unwrap();
        let paper_best = Format::BASIC
            [paper.1.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0];
        let paper_worst = Format::BASIC
            [paper.1.iter().enumerate().min_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0];
        print!("{:<12}", w.name);
        for (_, s) in &speedups {
            print!(" {s:>7.2}x");
        }
        println!("   {best}({worst})      {paper_best}({paper_worst})");
    }
    println!("\n# Shape check: the best/worst format should vary across datasets,");
    println!("# matching the paper's core observation that no single format wins.");

    blocked_engine_check();
}

/// Blocked SMSV engine check: per-product throughput of `smsv_block`
/// (B = 8) must be at least that of the single-vector kernel on every
/// format — formats with a true blocked kernel (DEN/CSR/ELL) should beat
/// it outright, the generic fallback must sit at parity. Timing uses the
/// minimum over repetitions (the classic noise-free estimator on a shared
/// single-core host) and a 0.9 noise floor on the ratio.
fn blocked_engine_check() {
    const BLOCK: usize = 8;
    const REPS: usize = 9;
    const NOISE_FLOOR: f64 = 0.9;

    // Min-over-reps ns per call of `f`, each rep timing two calls.
    fn min_ns(mut f: impl FnMut()) -> f64 {
        (0..REPS)
            .map(|_| {
                let start = Instant::now();
                f();
                f();
                start.elapsed().as_nanos() as f64 / 2.0
            })
            .fold(f64::INFINITY, f64::min)
    }

    println!("\n# Blocked SMSV engine — per-product speedup of smsv_block (B = {BLOCK})");
    println!("# over the single-vector kernel, min of {REPS} reps, noise floor {NOISE_FLOOR}");
    println!("{:<12} {:<6} {:>9} {:>6}", "dataset", "fmt", "speedup", "ok?");

    let mut worst: f64 = f64::INFINITY;
    for w in fig1_workloads(42) {
        for fmt in Format::ALL {
            let m = AnyMatrix::from_triplets(fmt, &w.matrix);
            let rows = m.rows();
            let v = m.row_sparse(0);
            let vs: Vec<SparseVec> = vec![v.clone(); BLOCK];
            let mut block_out = vec![0.0; rows * BLOCK];
            let mut ws = Vec::new();

            // Rotate the single-vector destination across the same B
            // chunks: in the real consumer (kernel-cache fill) every
            // product lands in a distinct row buffer.
            let mut k = 0;
            let single = min_ns(|| {
                let dst = &mut block_out[(k % BLOCK) * rows..(k % BLOCK + 1) * rows];
                k += 1;
                m.smsv_view(v.as_view(), dst, &mut ws);
            });
            let blocked = min_ns(|| m.smsv_block(&vs, &mut block_out, &mut ws)) / BLOCK as f64;

            let speedup = single / blocked;
            worst = worst.min(speedup);
            let ok = if speedup >= NOISE_FLOOR { "ok" } else { "SLOW" };
            println!("{:<12} {:<6} {:>8.2}x {:>6}", w.name, fmt.name(), speedup, ok);
        }
    }
    println!("# worst blocked/unblocked ratio: {worst:.2} (must be >= {NOISE_FLOOR})");
}
