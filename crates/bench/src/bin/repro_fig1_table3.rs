//! Reproduces **Figure 1 and Table III**: SMO performance of the five
//! storage formats on adult, aloi, mnist, gisette and trefethen, as
//! speedups normalised to the slowest format per dataset.
//!
//! Paper reference values (Table III):
//!
//! | dataset   | ELL  | CSR  | COO  | DEN  | DIA  |
//! |-----------|------|------|------|------|------|
//! | adult     | 14×  | 13×  | 8.6× | 13×  | 1.0  |
//! | aloi      | 2.8× | 6.6× | 1.0  | 3.8× | 1.7× |
//! | mnist     | 1.0  | 4.8× | 5.1× | 1.5× | 1.1× |
//! | gisette   | 1.9× | 1.9× | 1.2× | 3.7× | 1.0  |
//! | trefethen | 3.1× | 3.6× | 3.9× | 1.0  | 4.1× |

use dls_bench::{fig1_workloads, normalise_to_slowest, time_smo_iterations};
use dls_sparse::Format;

/// Paper Table III, rows in FIG1_DATASETS order, columns in Format::BASIC
/// order (ELL, CSR, COO, DEN, DIA).
const PAPER_TABLE3: [(&str, [f64; 5]); 5] = [
    ("adult", [14.0, 13.0, 8.6, 13.0, 1.0]),
    ("aloi", [2.8, 6.6, 1.0, 3.8, 1.7]),
    ("mnist", [1.0, 4.8, 5.1, 1.5, 1.1]),
    ("gisette", [1.9, 1.9, 1.2, 3.7, 1.0]),
    ("trefethen", [3.1, 3.6, 3.9, 1.0, 4.1]),
];

fn main() {
    let iters: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(40);
    println!("# Figure 1 / Table III — per-format SMO speedup (normalised to slowest)");
    println!("# {iters} SMO iterations per measurement, kernel-row cache disabled\n");
    println!(
        "{:<12} {:>8} {:>8} {:>8} {:>8} {:>8}   best(worst)  paper-best(paper-worst)",
        "dataset", "ELL", "CSR", "COO", "DEN", "DIA"
    );

    for w in fig1_workloads(42) {
        let times: Vec<(Format, f64)> = Format::BASIC
            .iter()
            .map(|&f| (f, time_smo_iterations(&w.matrix, &w.labels, f, iters)))
            .collect();
        let speedups = normalise_to_slowest(&times);
        let best = speedups.iter().max_by(|a, b| a.1.partial_cmp(&b.1).unwrap()).unwrap().0;
        let worst = speedups.iter().min_by(|a, b| a.1.partial_cmp(&b.1).unwrap()).unwrap().0;
        let paper = PAPER_TABLE3.iter().find(|(n, _)| *n == w.name).unwrap();
        let paper_best = Format::BASIC
            [paper.1.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0];
        let paper_worst = Format::BASIC
            [paper.1.iter().enumerate().min_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0];
        print!("{:<12}", w.name);
        for (_, s) in &speedups {
            print!(" {s:>7.2}x");
        }
        println!("   {best}({worst})      {paper_best}({paper_worst})");
    }
    println!("\n# Shape check: the best/worst format should vary across datasets,");
    println!("# matching the paper's core observation that no single format wins.");
}
