//! Empirically validates **Table IV**: the claimed sign of the correlation
//! between each influencing parameter and each format's efficiency.
//!
//! For every testable (parameter, format) claim, a controlled matrix pair
//! or sweep varies only that parameter and measures SMSV time; the sign of
//! the measured trend is compared against the paper's +/− entry.

use dls_bench::time_smsv;
use dls_data::controlled::{diag_matrix, mdim_matrix, vdim_matrix};
use dls_sparse::{AnyMatrix, CsrMatrix, Format, MatrixFormat, TripletMatrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Median SMSV seconds of a triplet matrix in a given format.
fn t(m: &TripletMatrix, fmt: Format) -> f64 {
    time_smsv(&AnyMatrix::from_triplets(fmt, m), 7)
}

/// Random uniform-rows matrix with the given density.
fn random_density(m: usize, n: usize, density: f64, seed: u64) -> TripletMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let per_row = ((n as f64 * density) as usize).max(1);
    let mut t = TripletMatrix::new(m, n);
    for i in 0..m {
        let mut placed = 0;
        let mut j = rng.gen_range(0..n);
        while placed < per_row {
            t.push(i, j, 1.0);
            j = (j + n / per_row + 1) % n;
            placed += 1;
        }
    }
    t.compact()
}

fn check(label: &str, claim: &str, low_time: f64, high_time: f64) {
    // "+" means efficiency rises with the parameter, i.e. time falls.
    let measured = if high_time < low_time { "+" } else { "-" };
    let verdict = if measured == claim { "ok" } else { "DIFFERS" };
    println!(
        "{label:<44} paper {claim:>2}   measured {measured:>2}   ({low_time:.2e}s -> {high_time:.2e}s)  {verdict}"
    );
}

fn main() {
    let size: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(1024);
    println!("# Table IV — measured correlation signs vs the paper's claims");
    println!("# '+' = parameter up, efficiency up (time down); size = {size}\n");

    // ndig vs DIA: '-' (Fig. 2's mechanism).
    let low = diag_matrix(size, size, size, 2, 1);
    let high = diag_matrix(size, size, size, size / 2, 1);
    check("ndig  vs DIA (more diagonals)", "-", t(&low, Format::Dia), t(&high, Format::Dia));

    // dnnz vs DIA: '+' (same ndig, fuller diagonals).
    let low = diag_matrix(size, size, size / 4, 8, 2);
    let high = diag_matrix(size, size, 4 * size, 8, 2);
    // time per nonzero: normalise by useful work.
    let tl = t(&low, Format::Dia) / (size as f64 / 4.0);
    let th = t(&high, Format::Dia) / (4.0 * size as f64);
    check("dnnz  vs DIA (fuller diagonals, per-nnz)", "+", tl, th);

    // mdim vs ELL: '-' (Fig. 3's mechanism).
    let low = mdim_matrix(size, size, 2 * size, 2, 3);
    let high = mdim_matrix(size, size, 2 * size, size, 3);
    check("mdim  vs ELL (longer max row)", "-", t(&low, Format::Ell), t(&high, Format::Ell));

    // adim vs ELL: '+' (same mdim, less padding per row, per-nnz cost).
    let low = mdim_matrix(size, size, 2 * size, 64, 4); // adim = 2, mdim = 64
    let high = {
        // every row has exactly 64: adim = mdim = 64, zero padding
        let mut t = TripletMatrix::new(size, size);
        let mut rng = StdRng::seed_from_u64(4);
        for i in 0..size {
            let start = rng.gen_range(0..size - 64);
            for k in 0..64 {
                t.push(i, start + k, 1.0);
            }
        }
        t.compact()
    };
    let tl = t(&low, Format::Ell) / (2.0 * size as f64);
    let th = t(&high, Format::Ell) / (64.0 * size as f64);
    check("adim  vs ELL (fuller rows, per-nnz)", "+", tl, th);

    // vdim vs CSR: '-' — with the lockstep-lane kernel (the paper's SIMD
    // CSR), imbalance wastes lane slots.
    let low = vdim_matrix(size, 2 * size, size * 16, 0.0, 5);
    let high = vdim_matrix(size, 2 * size, size * 16, 1024.0, 5);
    let lane_time = |tm: &TripletMatrix| {
        let c = CsrMatrix::from_triplets(tm);
        let v = c.row_sparse(0);
        let mut out = vec![0.0; c.rows()];
        c.smsv_lanes::<8>(&v, &mut out);
        let mut times: Vec<f64> = (0..7)
            .map(|_| {
                let s = Instant::now();
                c.smsv_lanes::<8>(&v, &mut out);
                s.elapsed().as_secs_f64()
            })
            .collect();
        times.sort_by(|a, b| a.partial_cmp(b).unwrap());
        times[3]
    };
    check("vdim  vs CSR (SIMD lanes, imbalance)", "-", lane_time(&low), lane_time(&high));

    // vdim vs COO: '+' relative claim — COO time stays flat where CSR
    // degrades; measured as COO time low-vs-high (≈ flat counts as '+'
    // when CSR's slowdown exceeds COO's).
    let coo_low = t(&low, Format::Coo);
    let coo_high = t(&high, Format::Coo);
    let csr_ratio = lane_time(&high) / lane_time(&low);
    let coo_ratio = coo_high / coo_low;
    let verdict = if coo_ratio < csr_ratio { "ok" } else { "DIFFERS" };
    println!(
        "{:<44} paper  +   measured: COO degrades {coo_ratio:.2}x vs CSR {csr_ratio:.2}x  {verdict}",
        "vdim  vs COO (relative to CSR)"
    );

    // density vs DEN: '+' — same shape, higher density, per-nnz DEN cost.
    let low = random_density(size, size, 0.05, 6);
    let high = random_density(size, size, 0.8, 6);
    let tl = t(&low, Format::Den) / low.nnz() as f64;
    let th = t(&high, Format::Den) / high.nnz() as f64;
    check("density vs DEN (per-nnz)", "+", tl, th);

    // N vs DEN: '-' — more columns at the same nnz is pure DEN overhead.
    let low = random_density(size, size / 2, 0.1, 7);
    let high = {
        let mut t = TripletMatrix::new(size, size * 4);
        for &(r, c, v) in low.entries() {
            t.push(r, c * 8, v);
        }
        t.compact()
    };
    check("N     vs DEN (wider, same nnz)", "-", t(&low, Format::Den), t(&high, Format::Den));

    println!("\n# Each 'ok' row is a Table IV sign reproduced by a controlled pair.");
}
