//! Measures the zero-copy batched SMSV engine and emits `BENCH_smsv.json`.
//!
//! For every format on three Figure-1 workload twins this reports, per
//! SMSV product: the best-of time of the classic allocating kernel
//! (`smsv`), the borrowed-view kernel with a reused workspace
//! (`smsv_view`), and the blocked kernel (`smsv_block`) swept over every
//! candidate block size B ∈ {1, 2, 4, 8, 16, 32}. The winning candidate is
//! the cell's `tuned_block`; `blocked_speedup` compares the allocating
//! kernel against the blocked kernel at that tuned block. Heap allocations
//! per call are counted by a wrapping global allocator — steady-state
//! `smsv_view`/`smsv_block` must allocate zero times; that is the
//! engine's whole point.
//!
//! Usage: `repro_smsv_block [reps] [out.json] [--check]`
//! (defaults: 15, `BENCH_smsv.json` in the current directory).
//! `--check` exits non-zero unless every format's geomean blocked speedup
//! stays at or above 0.95x and the COO/HYB/JDS paths clear 1.0x — the CI
//! smoke gate against blocked-kernel regressions.

use dls_bench::workload;
use dls_core::json::JsonValue;
use dls_sparse::{AnyMatrix, Format, MatrixFormat, SparseVec, MAX_SMSV_BLOCK};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Candidate block sizes, mirroring `dls_learn::BLOCK_CANDIDATES`.
const BLOCKS: [usize; 6] = [1, 2, 4, 8, 16, 32];

/// One timed call of `f`, in ns.
fn call_ns(mut f: impl FnMut()) -> f64 {
    let start = Instant::now();
    f();
    start.elapsed().as_nanos() as f64
}

/// Allocations of one call of `f` after a warm-up call.
fn allocs_per_call(mut f: impl FnMut()) -> u64 {
    f(); // warm up: one-time buffer growth is not steady state
    let before = ALLOCS.load(Ordering::Relaxed);
    f();
    ALLOCS.load(Ordering::Relaxed) - before
}

fn geomean(xs: impl Iterator<Item = f64>) -> f64 {
    let (mut sum, mut n) = (0.0, 0usize);
    for x in xs {
        sum += x.ln();
        n += 1;
    }
    if n == 0 {
        f64::NAN
    } else {
        (sum / n as f64).exp()
    }
}

struct Row {
    dataset: &'static str,
    format: Format,
    smsv_ns: f64,
    view_ns: f64,
    /// Per-product blocked ns at each `BLOCKS` candidate, in order.
    sweep_ns: [f64; BLOCKS.len()],
    tuned_block: usize,
    allocs_smsv: u64,
    allocs_view: u64,
    allocs_block: u64,
}

impl Row {
    /// Best (smallest) per-product blocked ns across the sweep.
    fn best_block_ns(&self) -> f64 {
        let i = BLOCKS.iter().position(|&b| b == self.tuned_block).unwrap();
        self.sweep_ns[i]
    }

    fn blocked_speedup(&self) -> f64 {
        self.smsv_ns / self.best_block_ns()
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let check = args.iter().any(|a| a == "--check");
    let positional: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    let reps: usize = positional.first().and_then(|s| s.parse().ok()).unwrap_or(15);
    let out_path =
        positional.get(1).map(|s| s.to_string()).unwrap_or_else(|| "BENCH_smsv.json".into());
    let inner = 4;

    println!("# Zero-copy batched SMSV engine — best of {reps} reps, B swept over {BLOCKS:?}");
    println!(
        "{:<11} {:<5} {:>11} {:>11} {:>13} {:>5} {:>7} {:>7} {:>7}  {:>8}",
        "dataset",
        "fmt",
        "smsv ns",
        "view ns",
        "blk ns/prod",
        "B*",
        "al/smsv",
        "al/view",
        "al/blk",
        "speedup"
    );

    let mut rows = Vec::new();
    for name in ["adult", "mnist", "trefethen"] {
        let w = workload(name, 42);
        for fmt in Format::ALL {
            let m = AnyMatrix::from_triplets(fmt, &w.matrix);
            let v = m.row_sparse(0);
            let mut out = vec![0.0; m.rows()];
            let mut block_out = vec![0.0; m.rows() * MAX_SMSV_BLOCK];
            let mut ws = Vec::new();

            // The single-vector series rotate their destination across the
            // same chunks the blocked kernel writes: in the real consumer
            // (kernel-cache fill) every product lands in a distinct row
            // buffer, so a single always-hot `out` would flatter them.
            let nrows = m.rows();

            // Identical right-hand sides across the sweep: the blocked /
            // unblocked ratio then measures kernel structure alone, not
            // RHS nnz variation.
            let vss: Vec<Vec<SparseVec>> = BLOCKS.iter().map(|&b| vec![v.clone(); b]).collect();

            // Every cycle round-robins ALL series with each call timed
            // individually, and each series keeps its fastest single
            // call. Interference on a shared single-core
            // host is strictly additive, so the minimum is the
            // least-polluted estimate of true cost — and per-call
            // interleaving means the series being ratioed sample the
            // same machine conditions microseconds apart. Series timed
            // in separate windows drift independently under cgroup
            // throttling and frequency scaling, which can flip a
            // blocked/unblocked ratio that is structurally >= 1.
            let mut smsv_ns = f64::INFINITY;
            let mut view_ns = f64::INFINITY;
            let mut sweep_ns = [f64::INFINITY; BLOCKS.len()];
            let mut k = 0;
            for _ in 0..reps * inner {
                smsv_ns = smsv_ns.min(call_ns(|| {
                    let dst = &mut block_out
                        [(k % MAX_SMSV_BLOCK) * nrows..(k % MAX_SMSV_BLOCK + 1) * nrows];
                    k += 1;
                    m.smsv(&v, dst)
                }));
                view_ns = view_ns.min(call_ns(|| {
                    let dst = &mut block_out
                        [(k % MAX_SMSV_BLOCK) * nrows..(k % MAX_SMSV_BLOCK + 1) * nrows];
                    k += 1;
                    m.smsv_view(v.as_view(), dst, &mut ws)
                }));
                for (slot, vs) in sweep_ns.iter_mut().zip(&vss) {
                    let b = vs.len();
                    let dst = &mut block_out[..nrows * b];
                    *slot = slot.min(call_ns(|| m.smsv_block(vs, dst, &mut ws)) / b as f64);
                }
            }
            // A width-1 chunk delegates to `smsv_view` inside every
            // blocked kernel, so the view series is one more sample set
            // of the exact same code path — pool it into the B=1
            // candidate for a tighter minimum.
            sweep_ns[0] = sweep_ns[0].min(view_ns);
            // Argmin with ties going to the larger block: deeper coalescing
            // amortises scheduling overhead the timer cannot see.
            let mut tuned = BLOCKS[0];
            let mut best = sweep_ns[0];
            for (&b, &ns) in BLOCKS.iter().zip(&sweep_ns).skip(1) {
                if ns <= best {
                    best = ns;
                    tuned = b;
                }
            }

            let vs: Vec<SparseVec> = vec![v.clone(); tuned];
            let allocs_smsv = allocs_per_call(|| m.smsv(&v, &mut out));
            let allocs_view = allocs_per_call(|| m.smsv_view(v.as_view(), &mut out, &mut ws));
            let allocs_block =
                allocs_per_call(|| m.smsv_block(&vs, &mut block_out[..m.rows() * tuned], &mut ws));

            let row = Row {
                dataset: name,
                format: fmt,
                smsv_ns,
                view_ns,
                sweep_ns,
                tuned_block: tuned,
                allocs_smsv,
                allocs_view,
                allocs_block,
            };
            println!(
                "{:<11} {:<5} {:>11.0} {:>11.0} {:>13.0} {:>5} {:>7} {:>7} {:>7}  {:>7.2}x",
                name,
                fmt.name(),
                smsv_ns,
                view_ns,
                row.best_block_ns(),
                tuned,
                allocs_smsv,
                allocs_view,
                allocs_block,
                row.blocked_speedup()
            );
            rows.push(row);
        }
    }

    // Geomean summary: per format across datasets, then overall.
    println!("\n# blocked speedup geomeans (smsv ns / tuned-block ns per product):");
    let mut format_geo = Vec::new();
    for fmt in Format::ALL {
        let g = geomean(rows.iter().filter(|r| r.format == fmt).map(Row::blocked_speedup));
        let blocks: Vec<String> = rows
            .iter()
            .filter(|r| r.format == fmt)
            .map(|r| format!("{}:{}", r.dataset, r.tuned_block))
            .collect();
        println!("#   {:<5} {:>5.2}x  tuned {}", fmt.name(), g, blocks.join(" "));
        format_geo.push((fmt, g));
    }
    let overall = geomean(rows.iter().map(Row::blocked_speedup));
    println!("#   {:<5} {:>5.2}x", "all", overall);

    let results = rows.iter().map(|r| {
        let sweep = BLOCKS
            .iter()
            .zip(&r.sweep_ns)
            .map(|(&b, &ns)| JsonValue::obj([(format!("{b}"), JsonValue::from(ns))]));
        JsonValue::obj([
            ("dataset", JsonValue::from(r.dataset)),
            ("format", JsonValue::from(r.format.name())),
            ("smsv_ns", JsonValue::from(r.smsv_ns)),
            ("smsv_view_ns", JsonValue::from(r.view_ns)),
            ("smsv_block_ns_per_product", JsonValue::from(r.best_block_ns())),
            ("tuned_block", JsonValue::from(r.tuned_block)),
            ("block_sweep_ns_per_product", JsonValue::arr(sweep)),
            ("allocs_per_smsv", JsonValue::from(r.allocs_smsv)),
            ("allocs_per_smsv_view", JsonValue::from(r.allocs_view)),
            ("allocs_per_smsv_block", JsonValue::from(r.allocs_block)),
            ("blocked_speedup", JsonValue::from(r.blocked_speedup())),
        ])
    });
    let geo = format_geo
        .iter()
        .map(|(f, g)| JsonValue::obj([(f.name(), JsonValue::from(*g))]))
        .chain([JsonValue::obj([("all", JsonValue::from(overall))])]);
    let doc = JsonValue::obj([
        ("blocks", JsonValue::arr(BLOCKS.iter().map(|&b| JsonValue::from(b)))),
        ("results", JsonValue::arr(results)),
        ("blocked_speedup_geomean", JsonValue::arr(geo)),
    ]);
    std::fs::write(&out_path, doc.to_json_pretty()).expect("write json");
    println!("\n# wrote {out_path}");
    println!("# smsv_view and steady-state smsv_block must report 0 allocations per call.");

    if check {
        let mut failures = Vec::new();
        for &(fmt, g) in &format_geo {
            let floor = match fmt {
                Format::Coo | Format::Hyb | Format::Jds => 1.0,
                _ => 0.95,
            };
            if g < floor {
                failures.push(format!("{} geomean {:.3}x < {:.2}x", fmt.name(), g, floor));
            }
        }
        if failures.is_empty() {
            println!("# --check passed: every format clears its blocked-speedup floor.");
        } else {
            eprintln!("# --check FAILED:");
            for f in &failures {
                eprintln!("#   {f}");
            }
            std::process::exit(1);
        }
    }
}
