//! Measures the zero-copy batched SMSV engine and emits `BENCH_smsv.json`.
//!
//! For every format on three Figure-1 workload twins this reports, per
//! SMSV product: the median time of the classic allocating kernel
//! (`smsv`), the borrowed-view kernel with a reused workspace
//! (`smsv_view`), and the blocked kernel (`smsv_block`, B = 8) — plus the
//! heap allocations each kernel performs per call, counted by a wrapping
//! global allocator. Steady-state `smsv_view`/`smsv_block` must allocate
//! zero times; that is the engine's whole point.
//!
//! Usage: `repro_smsv_block [reps] [out.json]` (defaults: 15,
//! `BENCH_smsv.json` in the current directory).

use dls_bench::workload;
use dls_core::json::JsonValue;
use dls_sparse::{AnyMatrix, Format, MatrixFormat, SparseVec};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

const BLOCK: usize = 8;

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

/// Median ns of `f` over `reps` repetitions, each timing `inner` calls.
fn time_ns(reps: usize, inner: usize, mut f: impl FnMut()) -> f64 {
    let samples: Vec<f64> = (0..reps)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..inner {
                f();
            }
            start.elapsed().as_nanos() as f64 / inner as f64
        })
        .collect();
    median(samples)
}

/// Allocations of one call of `f` after a warm-up call.
fn allocs_per_call(mut f: impl FnMut()) -> u64 {
    f(); // warm up: one-time buffer growth is not steady state
    let before = ALLOCS.load(Ordering::Relaxed);
    f();
    ALLOCS.load(Ordering::Relaxed) - before
}

struct Row {
    dataset: &'static str,
    format: Format,
    smsv_ns: f64,
    view_ns: f64,
    block_ns_per_product: f64,
    allocs_smsv: u64,
    allocs_view: u64,
    allocs_block: u64,
}

fn main() {
    let reps: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(15);
    let out_path = std::env::args().nth(2).unwrap_or_else(|| "BENCH_smsv.json".into());
    let inner = 4;

    println!("# Zero-copy batched SMSV engine — median of {reps} reps, B = {BLOCK}");
    println!(
        "{:<11} {:<5} {:>11} {:>11} {:>13} {:>7} {:>7} {:>7}  {:>8}",
        "dataset",
        "fmt",
        "smsv ns",
        "view ns",
        "blk ns/prod",
        "al/smsv",
        "al/view",
        "al/blk",
        "speedup"
    );

    let mut rows = Vec::new();
    for name in ["adult", "mnist", "trefethen"] {
        let w = workload(name, 42);
        for fmt in Format::ALL {
            let m = AnyMatrix::from_triplets(fmt, &w.matrix);
            let v = m.row_sparse(0);
            // Identical right-hand sides: the blocked/unblocked ratio then
            // measures kernel structure alone, not RHS nnz variation.
            let vs: Vec<SparseVec> = vec![v.clone(); BLOCK];
            let mut out = vec![0.0; m.rows()];
            let mut block_out = vec![0.0; m.rows() * BLOCK];
            let mut ws = Vec::new();

            // The single-vector series rotate their destination across the
            // same B chunks the blocked kernel writes: in the real consumer
            // (kernel-cache fill) every product lands in a distinct row
            // buffer, so a single always-hot `out` would flatter them.
            let nrows = m.rows();
            let mut k = 0;
            let smsv_ns = time_ns(reps, inner, || {
                let dst = &mut block_out[(k % BLOCK) * nrows..(k % BLOCK + 1) * nrows];
                k += 1;
                m.smsv(&v, dst)
            });
            let mut k = 0;
            let view_ns = time_ns(reps, inner, || {
                let dst = &mut block_out[(k % BLOCK) * nrows..(k % BLOCK + 1) * nrows];
                k += 1;
                m.smsv_view(v.as_view(), dst, &mut ws)
            });
            let block_ns =
                time_ns(reps, inner, || m.smsv_block(&vs, &mut block_out, &mut ws)) / BLOCK as f64;

            let allocs_smsv = allocs_per_call(|| m.smsv(&v, &mut out));
            let allocs_view = allocs_per_call(|| m.smsv_view(v.as_view(), &mut out, &mut ws));
            let allocs_block = allocs_per_call(|| m.smsv_block(&vs, &mut block_out, &mut ws));

            println!(
                "{:<11} {:<5} {:>11.0} {:>11.0} {:>13.0} {:>7} {:>7} {:>7}  {:>7.2}x",
                name,
                fmt.name(),
                smsv_ns,
                view_ns,
                block_ns,
                allocs_smsv,
                allocs_view,
                allocs_block,
                smsv_ns / block_ns
            );
            rows.push(Row {
                dataset: name,
                format: fmt,
                smsv_ns,
                view_ns,
                block_ns_per_product: block_ns,
                allocs_smsv,
                allocs_view,
                allocs_block,
            });
        }
    }

    let results = rows.iter().map(|r| {
        JsonValue::obj([
            ("dataset", JsonValue::from(r.dataset)),
            ("format", JsonValue::from(r.format.name())),
            ("smsv_ns", JsonValue::from(r.smsv_ns)),
            ("smsv_view_ns", JsonValue::from(r.view_ns)),
            ("smsv_block_ns_per_product", JsonValue::from(r.block_ns_per_product)),
            ("allocs_per_smsv", JsonValue::from(r.allocs_smsv)),
            ("allocs_per_smsv_view", JsonValue::from(r.allocs_view)),
            ("allocs_per_smsv_block", JsonValue::from(r.allocs_block)),
            ("blocked_speedup", JsonValue::from(r.smsv_ns / r.block_ns_per_product)),
        ])
    });
    let doc =
        JsonValue::obj([("block", JsonValue::from(BLOCK)), ("results", JsonValue::arr(results))]);
    std::fs::write(&out_path, doc.to_json_pretty()).expect("write json");
    println!("\n# wrote {out_path}");
    println!("# smsv_view and steady-state smsv_block must report 0 allocations per call.");
}
