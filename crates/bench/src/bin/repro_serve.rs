//! Closed-loop load generator for the dls-serve batching service; emits
//! `BENCH_serve.json`.
//!
//! Quick-trains SVMs on two Table-V twins, hosts them in an in-process
//! server, then sweeps client concurrency × request coalescing. Every
//! client is closed-loop (next request only after the previous reply), so
//! measured throughput reflects the service's end-to-end pipeline:
//! framing, queueing, the gather window, and the blocked kernel sweep.
//! The per-cell `multi_vector_blocks` column — read back from the wire
//! `Stats` endpoint — shows how many sweeps actually fused concurrent
//! requests.
//!
//! Usage: `repro_serve [secs_per_cell] [out.json]` (defaults: 0.4,
//! `BENCH_serve.json`), or `repro_serve --smoke` for the CI smoke run:
//! one Predict + Schedule + Stats round trip plus a graceful
//! shutdown-by-frame, exiting non-zero on any mismatch.

use dls_bench::workloads::default_scale;
use dls_core::json::JsonValue;
use dls_core::LayoutScheduler;
use dls_data::labels::linear_teacher_labels;
use dls_data::{generate, DatasetSpec};
use dls_serve::{
    ExecutorConfig, ModelRegistry, Response, ServeClient, ServedModel, ServerConfig, ServerHandle,
};
use dls_sparse::{CsrMatrix, MatrixFormat, SparseVec, MAX_SMSV_BLOCK};
use dls_svm::smo::{train, SmoParams};
use dls_svm::SvmModel;
use std::time::{Duration, Instant};

/// One hosted model plus the query stream its clients replay.
struct Hosted {
    name: &'static str,
    model: SvmModel,
    queries: Vec<SparseVec>,
}

/// Quick-trains a small model on a scaled-down twin of a Table V dataset.
fn quick_model(name: &'static str, extra_scale: usize, seed: u64) -> Hosted {
    let spec = DatasetSpec::by_name(name)
        .unwrap_or_else(|| panic!("unknown dataset {name}"))
        .scaled(default_scale(name) * extra_scale);
    let t = generate(&spec, seed);
    let labels = linear_teacher_labels(&t, 0.05, seed ^ 0xBEEF);
    let x = CsrMatrix::from_triplets(&t);
    let params = SmoParams {
        tolerance: 1e-2,
        max_iterations: 2_000,
        cache_bytes: 8 << 20,
        ..Default::default()
    };
    let model = train(&x, &labels, &params).expect("train quick model");
    let queries: Vec<SparseVec> = (0..x.rows().min(64)).map(|i| x.row_sparse(i)).collect();
    Hosted { name, model, queries }
}

fn registry(hosted: &[Hosted]) -> ModelRegistry {
    let scheduler = LayoutScheduler::new();
    let mut reg = ModelRegistry::new();
    for h in hosted {
        reg.insert(ServedModel::new(h.name, h.model.clone(), &scheduler));
    }
    reg
}

fn start_server(hosted: &[Hosted], executor: ExecutorConfig) -> ServerHandle {
    let config = ServerConfig { executor, ..Default::default() };
    dls_serve::start(registry(hosted), LayoutScheduler::new(), config).expect("bind loopback")
}

struct CellResult {
    concurrency: usize,
    coalescing: bool,
    ok: u64,
    busy: u64,
    secs: f64,
    req_per_s: f64,
    multi_vector_blocks: u64,
    p50_secs: Option<f64>,
    p95_secs: Option<f64>,
}

/// Runs one sweep cell: `concurrency` closed-loop clients for `secs`.
fn run_cell(hosted: &[Hosted], concurrency: usize, coalescing: bool, secs: f64) -> CellResult {
    let executor = if coalescing {
        ExecutorConfig {
            max_block: concurrency.clamp(2, MAX_SMSV_BLOCK),
            gather: Duration::from_micros(100),
            ..Default::default()
        }
    } else {
        // One vector per sweep, no lingering: the unbatched baseline.
        ExecutorConfig { max_block: 1, gather: Duration::ZERO, ..Default::default() }
    };
    let handle = start_server(hosted, executor);
    let addr = handle.local_addr();

    let started = Instant::now();
    let deadline = started + Duration::from_secs_f64(secs);
    let clients: Vec<_> = (0..concurrency)
        .map(|c| {
            // All clients target the first (largest) model: coalescing
            // needs concurrent requests against the SAME support matrix,
            // and the second hosted model checks the idle-queue path.
            let h = &hosted[0];
            let (model_name, queries) = (h.name, h.queries.clone());
            std::thread::spawn(move || {
                let mut client = ServeClient::connect(addr).expect("connect");
                let (mut ok, mut busy) = (0u64, 0u64);
                let mut k = c; // de-phase the query streams
                while Instant::now() < deadline {
                    let q = queries[k % queries.len()].clone();
                    k += 1;
                    match client.predict(model_name, vec![q], 0).expect("predict") {
                        Response::Predictions(_) => ok += 1,
                        Response::Busy => {
                            busy += 1;
                            std::thread::sleep(Duration::from_micros(200));
                        }
                        other => panic!("unexpected response {other:?}"),
                    }
                }
                (ok, busy)
            })
        })
        .collect();

    let (mut ok, mut busy) = (0u64, 0u64);
    for c in clients {
        let (o, b) = c.join().expect("client thread");
        ok += o;
        busy += b;
    }
    let elapsed = started.elapsed().as_secs_f64();

    let mut c = ServeClient::connect(addr).expect("connect");
    let stats = c.stats().expect("stats");
    drop(c);
    let doc = dls_core::json::parse(&stats).expect("valid stats json");
    let multi = doc
        .get("aggregate")
        .and_then(|a| a.get("multi_vector_blocks"))
        .and_then(JsonValue::as_u64)
        .unwrap_or(0);
    let quantile = |q: &str| doc.get("predict").and_then(|p| p.get(q)).and_then(JsonValue::as_f64);
    handle.shutdown();

    CellResult {
        concurrency,
        coalescing,
        ok,
        busy,
        secs: elapsed,
        req_per_s: ok as f64 / elapsed,
        multi_vector_blocks: multi,
        p50_secs: quantile("p50_secs"),
        p95_secs: quantile("p95_secs"),
    }
}

/// CI smoke: one of everything over real sockets, then a graceful
/// shutdown triggered by the wire `Shutdown` frame.
fn smoke() {
    let hosted = vec![quick_model("adult", 256, 42)];
    let handle = start_server(&hosted, ExecutorConfig::default());
    let addr = handle.local_addr();
    let mut c = ServeClient::connect(addr).expect("connect");

    let q = hosted[0].queries[0].clone();
    let want = hosted[0].model.decision_function(&q);
    match c.predict("adult", vec![q], 0).expect("predict") {
        Response::Predictions(values) => {
            assert_eq!(values.len(), 1);
            assert_eq!(values[0].to_bits(), want.to_bits(), "served != local decision value");
        }
        other => panic!("unexpected predict response {other:?}"),
    }
    match c.schedule("", 4, 4, vec![(0, 0, 1.0), (3, 3, 2.0)]).expect("schedule") {
        Response::Scheduled { format, .. } => println!("# schedule -> {format}"),
        other => panic!("unexpected schedule response {other:?}"),
    }
    let stats = c.stats().expect("stats");
    assert!(dls_core::json::parse(&stats).is_ok(), "stats endpoint returned invalid JSON");
    assert_eq!(c.shutdown().expect("shutdown"), Response::ShuttingDown);
    drop(c);
    handle.shutdown();
    assert!(
        ServeClient::connect(addr).is_err(),
        "server still accepting connections after graceful drain"
    );
    println!("# serve smoke OK: predict bit-exact, schedule + stats answered, drain clean");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--smoke") {
        smoke();
        return;
    }
    let secs: f64 = args.first().and_then(|s| s.parse().ok()).unwrap_or(0.4);
    let out_path = args.get(1).cloned().unwrap_or_else(|| "BENCH_serve.json".into());

    println!("# Quick-training models …");
    let hosted = vec![quick_model("adult", 8, 42), quick_model("mnist", 128, 42)];
    for h in &hosted {
        println!("#   {}: {} support vectors", h.name, h.model.n_support_vectors());
    }

    println!(
        "{:<6} {:<10} {:>9} {:>7} {:>10} {:>12} {:>10} {:>10}",
        "conc", "coalesce", "ok", "busy", "req/s", "multi-blk", "p50 ms", "p95 ms"
    );
    let mut cells = Vec::new();
    for &concurrency in &[2usize, 8] {
        for &coalescing in &[false, true] {
            let r = run_cell(&hosted, concurrency, coalescing, secs);
            println!(
                "{:<6} {:<10} {:>9} {:>7} {:>10.0} {:>12} {:>10.3} {:>10.3}",
                r.concurrency,
                if r.coalescing { "on" } else { "off" },
                r.ok,
                r.busy,
                r.req_per_s,
                r.multi_vector_blocks,
                r.p50_secs.map_or(f64::NAN, |s| s * 1e3),
                r.p95_secs.map_or(f64::NAN, |s| s * 1e3),
            );
            cells.push(r);
        }
    }

    let rows: Vec<JsonValue> = cells
        .iter()
        .map(|r| {
            JsonValue::obj([
                ("concurrency", JsonValue::from(r.concurrency)),
                ("coalescing", JsonValue::from(r.coalescing)),
                ("requests_ok", JsonValue::from(r.ok)),
                ("busy", JsonValue::from(r.busy)),
                ("secs", JsonValue::from(r.secs)),
                ("req_per_s", JsonValue::from(r.req_per_s)),
                ("multi_vector_blocks", JsonValue::from(r.multi_vector_blocks)),
                ("p50_secs", r.p50_secs.map(JsonValue::from).unwrap_or(JsonValue::Null)),
                ("p95_secs", r.p95_secs.map(JsonValue::from).unwrap_or(JsonValue::Null)),
            ])
        })
        .collect();
    let doc = JsonValue::obj([
        ("models", JsonValue::arr(hosted.iter().map(|h| JsonValue::from(h.name)))),
        ("secs_per_cell", JsonValue::from(secs)),
        ("results", JsonValue::Arr(rows)),
    ]);
    std::fs::write(&out_path, doc.to_json_pretty()).expect("write json");
    println!("\n# wrote {out_path}");
}
