//! Closed-loop load generator for the dls-serve batching service; emits
//! `BENCH_serve.json`.
//!
//! Quick-trains SVMs on two Table-V twins, hosts them in an in-process
//! server, then runs two sweeps:
//!
//! 1. **Coalescing** — client concurrency × request coalescing; every
//!    client is closed-loop, so measured throughput reflects the service's
//!    end-to-end pipeline. The per-cell `multi_vector_blocks` column —
//!    read back from the wire `Stats` endpoint — shows how many sweeps
//!    actually fused concurrent requests.
//! 2. **Mixed workload** — a batch flood (heavy multi-vector requests)
//!    plus tight-SLO interactive clients, once per queue discipline
//!    (fifo / priority / slo). The per-class p95/p99 and SLO-violation
//!    rates come from the server's own class ledgers; the point of the
//!    redesign is that `slo` strictly cuts interactive violations vs
//!    `fifo` under the same flood. Predictive admission is off for these
//!    cells so every miss is *measured* as a violation instead of being
//!    refused at the door.
//! 3. **Brown-out** — the same overload (heavier flood, FIFO so the queue
//!    discipline cannot rescue anyone) with the brown-out controller off
//!    vs on. With it on, sustained interactive SLO violations trip the
//!    controller: batch work sheds with `Busy`, the gather window
//!    shrinks, and admission falls back to the pessimistic analytic
//!    estimator — interactive compliance should measurably recover at
//!    the cost of batch throughput.
//!
//! 4. **Connection scaling** — the closed-loop workload at 8/64/256/1024
//!    concurrent connections against both I/O front ends
//!    (thread-per-connection vs the epoll reactor). Cells a resource
//!    limit prevents from running are *logged as skipped*, never silently
//!    capped. Alongside req/s each cell records the server-side thread
//!    count and implied stack reservation — the reactor's budget is
//!    constant while the threads front end pays a stack per connection.
//!
//! Usage: `repro_serve [secs_per_cell] [out.json]
//! [--connections 8,64,256,1024]` (defaults: 0.4, `BENCH_serve.json`), or
//! `repro_serve --smoke [--discipline NAME] [--frontend threads|reactor]`
//! for the CI smoke run: one Predict + Schedule + Stats round trip under
//! the named discipline (default slo) and front end plus a graceful
//! shutdown-by-frame, printing the per-class SLO-violation rates and a
//! frontend-independent `# parity` counter line, and exiting non-zero on
//! any mismatch. `repro_serve --retrain-smoke [--frontend threads|reactor]`
//! exercises the online-learning loop instead: live traffic with a
//! feedback hub wired in, one forced retraining cycle, and a hard
//! assertion of a model-version bump with zero dropped requests.

use dls_bench::workloads::default_scale;
use dls_core::json::JsonValue;
use dls_core::LayoutScheduler;
use dls_data::labels::linear_teacher_labels;
use dls_data::{generate, DatasetSpec};
use dls_serve::{
    parse_discipline, BrownoutConfig, ExecutorConfig, FeedbackConfig, FeedbackHub, Frontend,
    ModelRegistry, PredictRequest, RequestClass, Response, RetrainOutcome, ScheduleRequest,
    ServeClient, ServedModel, ServerConfig, ServerHandle, DISCIPLINES,
};
use dls_sparse::{CsrMatrix, MatrixFormat, SparseVec, MAX_SMSV_BLOCK};
use dls_svm::smo::{train, SmoParams};
use dls_svm::SvmModel;
use std::time::{Duration, Instant};

/// One hosted model plus the query stream its clients replay.
struct Hosted {
    name: &'static str,
    model: SvmModel,
    queries: Vec<SparseVec>,
}

/// Quick-trains a small model on a scaled-down twin of a Table V dataset.
fn quick_model(name: &'static str, extra_scale: usize, seed: u64) -> Hosted {
    let spec = DatasetSpec::by_name(name)
        .unwrap_or_else(|| panic!("unknown dataset {name}"))
        .scaled(default_scale(name) * extra_scale);
    let t = generate(&spec, seed);
    let labels = linear_teacher_labels(&t, 0.05, seed ^ 0xBEEF);
    let x = CsrMatrix::from_triplets(&t);
    let params = SmoParams {
        tolerance: 1e-2,
        max_iterations: 2_000,
        cache_bytes: 8 << 20,
        ..Default::default()
    };
    let model = train(&x, &labels, &params).expect("train quick model");
    let queries: Vec<SparseVec> = (0..x.rows().min(64)).map(|i| x.row_sparse(i)).collect();
    Hosted { name, model, queries }
}

fn registry(hosted: &[Hosted]) -> ModelRegistry {
    let scheduler = LayoutScheduler::new();
    let mut reg = ModelRegistry::new();
    for h in hosted {
        reg.insert(ServedModel::new(h.name, h.model.clone(), &scheduler));
    }
    reg
}

fn start_server(hosted: &[Hosted], executor: ExecutorConfig) -> ServerHandle {
    start_server_on(hosted, executor, Frontend::Threads)
}

fn start_server_on(
    hosted: &[Hosted],
    executor: ExecutorConfig,
    frontend: Frontend,
) -> ServerHandle {
    let config = ServerConfig { executor, frontend, ..Default::default() };
    dls_serve::start(registry(hosted), LayoutScheduler::new(), config).expect("bind loopback")
}

struct CellResult {
    concurrency: usize,
    coalescing: bool,
    ok: u64,
    busy: u64,
    secs: f64,
    req_per_s: f64,
    multi_vector_blocks: u64,
    p50_secs: Option<f64>,
    p95_secs: Option<f64>,
}

/// Runs one sweep cell: `concurrency` closed-loop clients for `secs`.
fn run_cell(hosted: &[Hosted], concurrency: usize, coalescing: bool, secs: f64) -> CellResult {
    let executor = if coalescing {
        ExecutorConfig {
            max_block: concurrency.clamp(2, MAX_SMSV_BLOCK),
            gather: Duration::from_micros(100),
            ..Default::default()
        }
    } else {
        // One vector per sweep, no lingering: the unbatched baseline.
        ExecutorConfig { max_block: 1, gather: Duration::ZERO, ..Default::default() }
    };
    let handle = start_server(hosted, executor);
    let addr = handle.local_addr();

    let started = Instant::now();
    let deadline = started + Duration::from_secs_f64(secs);
    let clients: Vec<_> = (0..concurrency)
        .map(|c| {
            // All clients target the first (largest) model: coalescing
            // needs concurrent requests against the SAME support matrix,
            // and the second hosted model checks the idle-queue path.
            let h = &hosted[0];
            let (model_name, queries) = (h.name, h.queries.clone());
            std::thread::spawn(move || {
                let mut client = ServeClient::connect(addr).expect("connect");
                let (mut ok, mut busy) = (0u64, 0u64);
                let mut k = c; // de-phase the query streams
                while Instant::now() < deadline {
                    let q = queries[k % queries.len()].clone();
                    k += 1;
                    let req = PredictRequest::builder(model_name).vector(q).build();
                    match client.send(&req).expect("predict") {
                        Response::Predictions(_) => ok += 1,
                        Response::Busy => {
                            busy += 1;
                            std::thread::sleep(Duration::from_micros(200));
                        }
                        other => panic!("unexpected response {other:?}"),
                    }
                }
                (ok, busy)
            })
        })
        .collect();

    let (mut ok, mut busy) = (0u64, 0u64);
    for c in clients {
        let (o, b) = c.join().expect("client thread");
        ok += o;
        busy += b;
    }
    let elapsed = started.elapsed().as_secs_f64();

    let mut c = ServeClient::connect(addr).expect("connect");
    let stats = c.stats().expect("stats");
    drop(c);
    let doc = dls_core::json::parse(&stats).expect("valid stats json");
    let multi = doc
        .get("aggregate")
        .and_then(|a| a.get("multi_vector_blocks"))
        .and_then(JsonValue::as_u64)
        .unwrap_or(0);
    let quantile = |q: &str| doc.get("predict").and_then(|p| p.get(q)).and_then(JsonValue::as_f64);
    handle.shutdown();

    CellResult {
        concurrency,
        coalescing,
        ok,
        busy,
        secs: elapsed,
        req_per_s: ok as f64 / elapsed,
        multi_vector_blocks: multi,
        p50_secs: quantile("p50_secs"),
        p95_secs: quantile("p95_secs"),
    }
}

/// Worker threads the executor runs in the scaling cells (the default
/// config), used for the server-side thread/stack accounting below.
const SCALE_WORKERS: usize = 2;
/// Linux's default thread stack reservation, for the equal-memory
/// comparison (the reactor keeps connection state in buffers instead).
const DEFAULT_STACK_MIB: u64 = 8;

/// One `frontend × connections` scaling cell, or why it was skipped.
struct ScaleCell {
    frontend: Frontend,
    connections: usize,
    outcome: Result<ScaleOk, String>,
}

struct ScaleOk {
    ok: u64,
    busy: u64,
    secs: f64,
    req_per_s: f64,
    /// Threads the *server* needs for this many connections (acceptor or
    /// event loop + per-connection handlers + executor workers).
    server_threads: u64,
    /// Stack reservation implied by those threads at the platform default.
    server_stack_mib: u64,
}

/// Runs one connection-scaling cell: `connections` closed-loop clients
/// against the given front end. Client threads get 64 KiB stacks so the
/// *load generator* is never the resource ceiling being measured; any
/// spawn or connect failure skips the cell loudly instead of silently
/// capping the connection count.
fn run_scale_cell(
    hosted: &[Hosted],
    frontend: Frontend,
    connections: usize,
    secs: f64,
) -> ScaleCell {
    let executor = ExecutorConfig {
        max_block: 32,
        gather: Duration::from_micros(100),
        workers: SCALE_WORKERS,
        ..Default::default()
    };
    let handle = start_server_on(hosted, executor, frontend);
    let addr = handle.local_addr();

    let started = Instant::now();
    let deadline = started + Duration::from_secs_f64(secs);
    let h = &hosted[0];
    let mut threads = Vec::with_capacity(connections);
    let mut spawn_err = None;
    for c in 0..connections {
        let (model_name, queries) = (h.name, h.queries.clone());
        let spawned = std::thread::Builder::new()
            .stack_size(64 * 1024)
            .name(format!("scale-client-{c}"))
            .spawn(move || -> Result<(u64, u64), String> {
                // The accept backlog is finite; under a 1k-connection
                // stampede some dials need a few tries.
                let mut client = None;
                for attempt in 0..50 {
                    match ServeClient::connect(addr) {
                        Ok(c) => {
                            client = Some(c);
                            break;
                        }
                        Err(e) if attempt == 49 => return Err(format!("connect: {e}")),
                        Err(_) => std::thread::sleep(Duration::from_millis(2 * (attempt + 1))),
                    }
                }
                let mut client = client.expect("connected or returned");
                client.set_read_timeout(Some(Duration::from_secs(30))).ok();
                let (mut ok, mut busy) = (0u64, 0u64);
                let mut k = c;
                while Instant::now() < deadline {
                    let q = queries[k % queries.len()].clone();
                    k += 1;
                    let req = PredictRequest::builder(model_name).vector(q).build();
                    match client.send(&req).map_err(|e| format!("predict: {e}"))? {
                        Response::Predictions(_) => ok += 1,
                        Response::Busy => {
                            busy += 1;
                            std::thread::sleep(Duration::from_micros(200));
                        }
                        other => return Err(format!("unexpected response {other:?}")),
                    }
                }
                Ok((ok, busy))
            });
        match spawned {
            Ok(t) => threads.push(t),
            Err(e) => {
                spawn_err = Some(format!("spawning load-generator thread {c}: {e}"));
                break;
            }
        }
    }

    let (mut ok, mut busy) = (0u64, 0u64);
    let mut client_errs: Vec<String> = Vec::new();
    for t in threads {
        match t.join().expect("client thread") {
            Ok((o, b)) => {
                ok += o;
                busy += b;
            }
            Err(e) => client_errs.push(e),
        }
    }
    let elapsed = started.elapsed().as_secs_f64();
    handle.shutdown();

    let outcome = if let Some(e) = spawn_err {
        Err(e)
    } else if !client_errs.is_empty() {
        Err(format!("{} clients failed (first: {})", client_errs.len(), client_errs[0]))
    } else {
        let server_threads = match frontend {
            // acceptor + one handler per connection + workers
            Frontend::Threads => 1 + connections as u64 + SCALE_WORKERS as u64,
            // one event loop + workers, independent of connection count
            Frontend::Reactor => 1 + SCALE_WORKERS as u64,
        };
        Ok(ScaleOk {
            ok,
            busy,
            secs: elapsed,
            req_per_s: ok as f64 / elapsed,
            server_threads,
            server_stack_mib: server_threads * DEFAULT_STACK_MIB,
        })
    };
    ScaleCell { frontend, connections, outcome }
}

/// Per-class tallies of one mixed-workload cell, straight off the
/// server's class ledgers.
#[derive(Debug, Clone)]
struct ClassOutcome {
    ok: u64,
    timed_out: u64,
    slo_violations: u64,
    violation_rate: f64,
    p95_secs: Option<f64>,
    p99_secs: Option<f64>,
}

struct MixedResult {
    discipline: &'static str,
    interactive: ClassOutcome,
    batch: ClassOutcome,
    batch_req_per_s: f64,
}

fn class_outcome(doc: &JsonValue, class: RequestClass) -> ClassOutcome {
    let entry = doc
        .get("classes")
        .and_then(|c| c.get(class.name()))
        .unwrap_or_else(|| panic!("stats JSON lacks classes.{class}"));
    let n = |k: &str| entry.get(k).and_then(JsonValue::as_u64).unwrap_or(0);
    ClassOutcome {
        ok: n("ok"),
        timed_out: n("timed_out"),
        slo_violations: n("slo_violations"),
        violation_rate: entry.get("slo_violation_rate").and_then(JsonValue::as_f64).unwrap_or(0.0),
        p95_secs: entry.get("p95_secs").and_then(JsonValue::as_f64),
        p99_secs: entry.get("p99_secs").and_then(JsonValue::as_f64),
    }
}

/// The interactive SLO the mixed cells are graded against.
const MIXED_INTERACTIVE_SLO: Duration = Duration::from_millis(2);
/// The tighter SLO for the brown-out cells: comfortably achievable when
/// batch work yields (the priority row's interactive p95 sits well under
/// it) but badly missed under a FIFO flood — exactly the regime the
/// controller exists for.
const BROWNOUT_INTERACTIVE_SLO: Duration = Duration::from_micros(500);
/// Vectors per batch-class request in the mixed cells.
const MIXED_BATCH_WEIGHT: usize = 32;

/// One mixed-workload cell: a sustained batch flood plus tight-SLO
/// interactive singles, under the named discipline.
fn run_mixed_cell(hosted: &[Hosted], discipline: &'static str, secs: f64) -> MixedResult {
    let executor = ExecutorConfig {
        max_block: MIXED_BATCH_WEIGHT,
        gather: Duration::from_micros(200),
        discipline: parse_discipline(discipline).expect("known discipline"),
        // Measure misses as violations instead of refusing them up front.
        predictive_admission: false,
        ..Default::default()
    };
    let handle = start_server(hosted, executor);
    let addr = handle.local_addr();

    let started = Instant::now();
    let deadline = started + Duration::from_secs_f64(secs);
    let h = &hosted[0];

    // The flood: closed-loop batch clients, each pushing full-block
    // requests with the relaxed class-default SLO.
    let batch_clients: Vec<_> = (0..6)
        .map(|c| {
            let (model_name, queries) = (h.name, h.queries.clone());
            std::thread::spawn(move || {
                let mut client = ServeClient::connect(addr).expect("connect");
                let mut sent = 0u64;
                let mut k = c;
                while Instant::now() < deadline {
                    let vs: Vec<SparseVec> = (0..MIXED_BATCH_WEIGHT)
                        .map(|j| queries[(k + j) % queries.len()].clone())
                        .collect();
                    k += MIXED_BATCH_WEIGHT;
                    let req = PredictRequest::builder(model_name)
                        .vectors(vs)
                        .class(RequestClass::Batch)
                        .build();
                    match client.send(&req).expect("predict") {
                        Response::Predictions(_) | Response::TimedOut => sent += 1,
                        Response::Busy => std::thread::sleep(Duration::from_micros(200)),
                        other => panic!("unexpected response {other:?}"),
                    }
                }
                sent
            })
        })
        .collect();

    // The victims: interactive singles with a tight explicit SLO, lightly
    // paced so each request meets a fresh backlog.
    let interactive_clients: Vec<_> = (0..2)
        .map(|c| {
            let (model_name, queries) = (h.name, h.queries.clone());
            std::thread::spawn(move || {
                let mut client = ServeClient::connect(addr).expect("connect");
                let mut k = c;
                while Instant::now() < deadline {
                    let q = queries[k % queries.len()].clone();
                    k += 1;
                    let req = PredictRequest::builder(model_name)
                        .vector(q)
                        .class(RequestClass::Interactive)
                        .slo(MIXED_INTERACTIVE_SLO)
                        .build();
                    match client.send(&req).expect("predict") {
                        Response::Predictions(_) | Response::TimedOut => {}
                        Response::Busy => std::thread::sleep(Duration::from_micros(200)),
                        other => panic!("unexpected response {other:?}"),
                    }
                    std::thread::sleep(Duration::from_micros(300));
                }
            })
        })
        .collect();

    let mut batch_ok = 0u64;
    for c in batch_clients {
        batch_ok += c.join().expect("batch client");
    }
    for c in interactive_clients {
        c.join().expect("interactive client");
    }
    let elapsed = started.elapsed().as_secs_f64();

    let mut c = ServeClient::connect(addr).expect("connect");
    let doc = dls_core::json::parse(&c.stats().expect("stats")).expect("valid stats json");
    drop(c);
    handle.shutdown();

    MixedResult {
        discipline,
        interactive: class_outcome(&doc, RequestClass::Interactive),
        batch: class_outcome(&doc, RequestClass::Batch),
        batch_req_per_s: batch_ok as f64 / elapsed,
    }
}

struct BrownoutResult {
    enabled: bool,
    interactive: ClassOutcome,
    batch: ClassOutcome,
    batch_req_per_s: f64,
    brownout_entries: u64,
    batch_shed: u64,
}

/// One brown-out cell: the mixed overload again, but heavier and under
/// FIFO (so the discipline cannot rescue interactive work), with the
/// brown-out controller off or on.
fn run_brownout_cell(hosted: &[Hosted], enabled: bool, secs: f64) -> BrownoutResult {
    let executor = ExecutorConfig {
        max_block: MIXED_BATCH_WEIGHT,
        gather: Duration::from_micros(200),
        discipline: parse_discipline("fifo").expect("known discipline"),
        predictive_admission: false,
        brownout: BrownoutConfig {
            enabled,
            // Short cells need a snappy controller: a small decision
            // window and dwell so it can engage within the run.
            window: 32,
            min_dwell: Duration::from_millis(10),
            ..Default::default()
        },
        ..Default::default()
    };
    let handle = start_server(hosted, executor);
    let addr = handle.local_addr();

    let started = Instant::now();
    let deadline = started + Duration::from_secs_f64(secs);
    let h = &hosted[0];

    // A heavier flood than the discipline cells: the point is sustained
    // overload the controller must dig out of.
    let batch_clients: Vec<_> = (0..8)
        .map(|c| {
            let (model_name, queries) = (h.name, h.queries.clone());
            std::thread::spawn(move || {
                let mut client = ServeClient::connect(addr).expect("connect");
                let mut sent = 0u64;
                let mut k = c;
                while Instant::now() < deadline {
                    let vs: Vec<SparseVec> = (0..MIXED_BATCH_WEIGHT)
                        .map(|j| queries[(k + j) % queries.len()].clone())
                        .collect();
                    k += MIXED_BATCH_WEIGHT;
                    let req = PredictRequest::builder(model_name)
                        .vectors(vs)
                        .class(RequestClass::Batch)
                        .build();
                    match client.send(&req).expect("predict") {
                        Response::Predictions(_) | Response::TimedOut => sent += 1,
                        // Both queue-full refusals and brown-out sheds
                        // land here; back off briefly either way.
                        Response::Busy => std::thread::sleep(Duration::from_micros(200)),
                        other => panic!("unexpected response {other:?}"),
                    }
                }
                sent
            })
        })
        .collect();

    let interactive_clients: Vec<_> = (0..2)
        .map(|c| {
            let (model_name, queries) = (h.name, h.queries.clone());
            std::thread::spawn(move || {
                let mut client = ServeClient::connect(addr).expect("connect");
                let mut k = c;
                while Instant::now() < deadline {
                    let q = queries[k % queries.len()].clone();
                    k += 1;
                    let req = PredictRequest::builder(model_name)
                        .vector(q)
                        .class(RequestClass::Interactive)
                        .slo(BROWNOUT_INTERACTIVE_SLO)
                        .build();
                    match client.send(&req).expect("predict") {
                        Response::Predictions(_) | Response::TimedOut => {}
                        Response::Busy => std::thread::sleep(Duration::from_micros(200)),
                        other => panic!("unexpected response {other:?}"),
                    }
                    std::thread::sleep(Duration::from_micros(300));
                }
            })
        })
        .collect();

    let mut batch_ok = 0u64;
    for c in batch_clients {
        batch_ok += c.join().expect("batch client");
    }
    for c in interactive_clients {
        c.join().expect("interactive client");
    }
    let elapsed = started.elapsed().as_secs_f64();

    let mut c = ServeClient::connect(addr).expect("connect");
    let doc = dls_core::json::parse(&c.stats().expect("stats")).expect("valid stats json");
    drop(c);
    handle.shutdown();

    let degrade = |key: &str| {
        doc.get("degradation").and_then(|d| d.get(key)).and_then(JsonValue::as_u64).unwrap_or(0)
    };
    BrownoutResult {
        enabled,
        interactive: class_outcome(&doc, RequestClass::Interactive),
        batch: class_outcome(&doc, RequestClass::Batch),
        batch_req_per_s: batch_ok as f64 / elapsed,
        brownout_entries: degrade("brownout_entries"),
        batch_shed: degrade("batch_shed"),
    }
}

/// CI smoke: one of everything over real sockets under the named queue
/// discipline, then a graceful shutdown triggered by the wire `Shutdown`
/// frame.
fn smoke(discipline: &str, frontend: Frontend) {
    let hosted = vec![quick_model("adult", 256, 42)];
    let executor = ExecutorConfig {
        discipline: parse_discipline(discipline).expect("known discipline"),
        ..Default::default()
    };
    let handle = start_server_on(&hosted, executor, frontend);
    let addr = handle.local_addr();
    let mut c = ServeClient::connect(addr).expect("connect");

    let q = hosted[0].queries[0].clone();
    let want = hosted[0].model.decision_function(&q);
    let req = PredictRequest::builder("adult")
        .vector(q)
        .class(RequestClass::Interactive)
        .slo(Duration::from_secs(5))
        .build();
    match c.send(&req).expect("predict") {
        Response::Predictions(values) => {
            assert_eq!(values.len(), 1);
            assert_eq!(values[0].to_bits(), want.to_bits(), "served != local decision value");
        }
        other => panic!("unexpected predict response {other:?}"),
    }
    let sched = ScheduleRequest::builder(4, 4).entries([(0u64, 0u64, 1.0), (3, 3, 2.0)]).build();
    match c.send(&sched).expect("schedule") {
        Response::Scheduled { format, .. } => println!("# schedule -> {format}"),
        other => panic!("unexpected schedule response {other:?}"),
    }
    let stats = c.stats().expect("stats");
    let doc = dls_core::json::parse(&stats).expect("stats endpoint returned invalid JSON");
    for class in RequestClass::ALL {
        let rate = doc
            .get("classes")
            .and_then(|cs| cs.get(class.name()))
            .and_then(|e| e.get("slo_violation_rate"))
            .and_then(JsonValue::as_f64)
            .unwrap_or_else(|| panic!("stats JSON lacks classes.{class}.slo_violation_rate"));
        println!("# slo_violation_rate {class}={rate}");
    }
    // The robustness counters must be on the wire even on a healthy,
    // fault-free server: a `faults` section, a `degradation` section, and
    // an answering Health endpoint.
    for (section, key) in [("faults", "injected"), ("degradation", "brownout_entries")] {
        doc.get(section)
            .and_then(|s| s.get(key))
            .and_then(JsonValue::as_u64)
            .unwrap_or_else(|| panic!("stats JSON lacks {section}.{key}"));
    }
    match c.request(&dls_serve::Request::Health).expect("health") {
        Response::Health(json) => {
            let h = dls_core::json::parse(&json).expect("health endpoint returned invalid JSON");
            let status = h
                .get("status")
                .and_then(JsonValue::as_str)
                .unwrap_or_else(|| panic!("health JSON lacks status"));
            println!("# stats sections faults+degradation exposed, health status={status}");
        }
        other => panic!("unexpected health response {other:?}"),
    }
    // Stats-counter parity across front ends: every value on this line is
    // fully determined by the fixed smoke request sequence, so CI runs the
    // smoke against `threads` and `reactor` and diffs the two lines.
    let counter = |section: &str, key: &str| {
        doc.get(section)
            .and_then(|s| s.get(key))
            .and_then(JsonValue::as_u64)
            .unwrap_or_else(|| panic!("stats JSON lacks {section}.{key}"))
    };
    let class_counter = |class: &str, key: &str| {
        doc.get("classes")
            .and_then(|cs| cs.get(class))
            .and_then(|e| e.get(key))
            .and_then(JsonValue::as_u64)
            .unwrap_or_else(|| panic!("stats JSON lacks classes.{class}.{key}"))
    };
    println!(
        "# parity predict_ok={} schedule_ok={} interactive_ok={} interactive_viol={} \
         batch_viol={} protocol_errors={} frames_too_large={} exec_panics={} injected={}",
        counter("predict", "ok"),
        counter("schedule", "ok"),
        class_counter("interactive", "ok"),
        class_counter("interactive", "slo_violations"),
        class_counter("batch", "slo_violations"),
        counter("faults", "protocol_errors"),
        counter("faults", "frames_too_large"),
        counter("faults", "exec_panics"),
        counter("faults", "injected"),
    );
    assert_eq!(c.shutdown().expect("shutdown"), Response::ShuttingDown);
    drop(c);
    handle.shutdown();
    assert!(
        ServeClient::connect(addr).is_err(),
        "server still accepting connections after graceful drain"
    );
    println!(
        "# serve smoke OK ({discipline}, {frontend}): predict bit-exact, schedule + stats \
         answered, drain clean"
    );
}

/// Online-learning smoke: serve live traffic with a feedback hub wired in,
/// force a retraining cycle mid-stream, and require a model-version bump
/// with zero dropped requests. This is the end-to-end loop
/// (serving → telemetry log → retrain → hot swap) as a CI gate.
fn retrain_smoke(frontend: Frontend) {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    let hosted = vec![quick_model("adult", 256, 42)];
    let hub = FeedbackHub::new(FeedbackConfig {
        min_observations: 8,
        background: false, // the smoke forces the cycle deterministically
        ..FeedbackConfig::default()
    });
    let executor = ExecutorConfig { feedback: Some(Arc::clone(&hub)), ..Default::default() };
    let handle = start_server_on(&hosted, executor, frontend);
    let addr = handle.local_addr();

    let stop = Arc::new(AtomicBool::new(false));
    let clients: Vec<_> = (0..2)
        .map(|t| {
            let stop = Arc::clone(&stop);
            let queries = hosted[0].queries.clone();
            std::thread::spawn(move || {
                let mut c = ServeClient::connect(addr).expect("connect");
                let mut sent = 0u64;
                let mut answered = 0u64;
                let mut k = t;
                while !stop.load(Ordering::Relaxed) || sent < 16 {
                    let q = queries[k % queries.len()].clone();
                    k += 1;
                    sent += 1;
                    match c.send(&PredictRequest::builder("adult").vector(q).build()) {
                        Ok(Response::Predictions(v)) => {
                            assert_eq!(v.len(), 1);
                            answered += 1;
                        }
                        other => panic!("dropped/refused request during retrain: {other:?}"),
                    }
                }
                (sent, answered)
            })
        })
        .collect();

    // Let the executor record telemetry, then force the cycle while the
    // clients above keep the wire busy across the hot swap.
    while hub.ring().total_appended() < 8 {
        std::thread::sleep(Duration::from_millis(5));
    }
    let before = hub.version();
    let outcome = hub.force_retrain();
    assert!(
        matches!(outcome, RetrainOutcome::Accepted { .. }),
        "retrain must be accepted: {outcome:?}"
    );
    assert!(hub.version() > before, "accepted retrain must bump the model version");

    stop.store(true, Ordering::Relaxed);
    let (mut sent, mut answered) = (0u64, 0u64);
    for c in clients {
        let (s, a) = c.join().expect("client thread");
        sent += s;
        answered += a;
    }
    assert_eq!(sent, answered, "every in-flight request answered across the swap");

    let mut c = ServeClient::connect(addr).expect("connect");
    let doc = dls_core::json::parse(&c.stats().expect("stats")).expect("valid stats json");
    let sel = doc.get("selector").expect("stats JSON lacks selector section");
    let gauge = |key: &str| sel.get(key).and_then(JsonValue::as_u64).unwrap_or(0);
    assert_eq!(gauge("active_version"), hub.version());
    assert_eq!(gauge("retrains_accepted"), 1);
    for refusal in ["busy", "timed_out", "errors"] {
        let n = doc.get("predict").and_then(|p| p.get(refusal)).and_then(JsonValue::as_u64);
        assert_eq!(n, Some(0), "predict.{refusal} must stay zero across the swap");
    }
    println!(
        "# retrain smoke OK ({frontend}): version {before} -> {}, {} requests, 0 dropped, \
         outcome={}",
        hub.version(),
        sent,
        sel.get("last_retrain_outcome").and_then(JsonValue::as_str).unwrap_or("?"),
    );
    drop(c);
    handle.shutdown();
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--retrain-smoke") {
        let frontend: Frontend = args
            .iter()
            .position(|a| a == "--frontend")
            .and_then(|i| args.get(i + 1))
            .map_or(Ok(Frontend::Threads), |v| v.parse())
            .expect("--frontend takes threads|reactor");
        retrain_smoke(frontend);
        return;
    }
    if args.iter().any(|a| a == "--smoke") {
        let discipline = args
            .iter()
            .position(|a| a == "--discipline")
            .and_then(|i| args.get(i + 1))
            .map_or("slo", String::as_str);
        let frontend: Frontend = args
            .iter()
            .position(|a| a == "--frontend")
            .and_then(|i| args.get(i + 1))
            .map_or(Ok(Frontend::Threads), |v| v.parse())
            .expect("--frontend takes threads|reactor");
        smoke(discipline, frontend);
        return;
    }
    let connections: Vec<usize> = args
        .iter()
        .position(|a| a == "--connections")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.split(',').map(|v| v.parse().expect("--connections takes counts")).collect())
        .unwrap_or_else(|| vec![8, 64, 256, 1024]);
    let positional: Vec<&String> = {
        let skip_value_of = args.iter().position(|a| a == "--connections").map(|i| i + 1);
        args.iter()
            .enumerate()
            .filter(|(i, a)| !a.starts_with("--") && Some(*i) != skip_value_of)
            .map(|(_, a)| a)
            .collect()
    };
    let secs: f64 = positional.first().and_then(|s| s.parse().ok()).unwrap_or(0.4);
    let out_path = positional.get(1).cloned().cloned().unwrap_or_else(|| "BENCH_serve.json".into());

    println!("# Quick-training models …");
    let hosted = vec![quick_model("adult", 8, 42), quick_model("mnist", 128, 42)];
    for h in &hosted {
        println!("#   {}: {} support vectors", h.name, h.model.n_support_vectors());
    }

    println!(
        "{:<6} {:<10} {:>9} {:>7} {:>10} {:>12} {:>10} {:>10}",
        "conc", "coalesce", "ok", "busy", "req/s", "multi-blk", "p50 ms", "p95 ms"
    );
    let mut cells = Vec::new();
    for &concurrency in &[2usize, 8] {
        for &coalescing in &[false, true] {
            let r = run_cell(&hosted, concurrency, coalescing, secs);
            println!(
                "{:<6} {:<10} {:>9} {:>7} {:>10.0} {:>12} {:>10.3} {:>10.3}",
                r.concurrency,
                if r.coalescing { "on" } else { "off" },
                r.ok,
                r.busy,
                r.req_per_s,
                r.multi_vector_blocks,
                r.p50_secs.map_or(f64::NAN, |s| s * 1e3),
                r.p95_secs.map_or(f64::NAN, |s| s * 1e3),
            );
            cells.push(r);
        }
    }

    // Connection scaling: the same closed-loop single-vector workload at
    // rising connection counts, against both front ends. The reactor
    // serves every count with a constant thread budget; the threads
    // front end pays one 8 MiB-stack thread per connection.
    println!(
        "\n{:<9} {:>6} {:>9} {:>7} {:>10} {:>11} {:>11}",
        "frontend", "conns", "ok", "busy", "req/s", "srv threads", "stack MiB"
    );
    let mut scale = Vec::new();
    for &frontend in &[Frontend::Threads, Frontend::Reactor] {
        for &conns in &connections {
            let cell = run_scale_cell(&hosted, frontend, conns, secs);
            match &cell.outcome {
                Ok(r) => println!(
                    "{:<9} {:>6} {:>9} {:>7} {:>10.0} {:>11} {:>11}",
                    cell.frontend.to_string(),
                    cell.connections,
                    r.ok,
                    r.busy,
                    r.req_per_s,
                    r.server_threads,
                    r.server_stack_mib,
                ),
                Err(reason) => {
                    println!("# SKIPPED {}×{}: {reason}", cell.frontend, cell.connections)
                }
            }
            scale.push(cell);
        }
    }
    let scale_rps = |frontend: Frontend, conns: usize| {
        scale
            .iter()
            .find(|c| c.frontend == frontend && c.connections == conns)
            .and_then(|c| c.outcome.as_ref().ok())
            .map(|r| r.req_per_s)
    };
    for &conns in &connections {
        if let (Some(t), Some(r)) =
            (scale_rps(Frontend::Threads, conns), scale_rps(Frontend::Reactor, conns))
        {
            println!(
                "# connection scaling @{conns}: threads={t:.0} req/s, reactor={r:.0} req/s ({})",
                if r > t { "reactor wins" } else { "threads wins" }
            );
        }
    }
    if let Some(c) = scale
        .iter()
        .find(|c| c.frontend == Frontend::Reactor && c.connections >= 256 && c.outcome.is_ok())
    {
        let r = c.outcome.as_ref().expect("checked ok");
        println!(
            "# reactor served {} connections on {} server threads ({} MiB stack); the threads \
             front end needs {} threads ({} MiB stack) for the same fan-in",
            c.connections,
            r.server_threads,
            r.server_stack_mib,
            1 + c.connections + SCALE_WORKERS,
            (1 + c.connections + SCALE_WORKERS) as u64 * DEFAULT_STACK_MIB,
        );
    }

    println!(
        "\n{:<10} {:>7} {:>9} {:>10} {:>10} {:>10} {:>12}",
        "disc", "int ok", "int viol", "viol rate", "int p95ms", "int p99ms", "batch req/s"
    );
    let mut mixed = Vec::new();
    for name in DISCIPLINES {
        let r = run_mixed_cell(&hosted, name, secs);
        println!(
            "{:<10} {:>7} {:>9} {:>10.3} {:>10.3} {:>10.3} {:>12.0}",
            r.discipline,
            r.interactive.ok,
            r.interactive.slo_violations,
            r.interactive.violation_rate,
            r.interactive.p95_secs.map_or(f64::NAN, |s| s * 1e3),
            r.interactive.p99_secs.map_or(f64::NAN, |s| s * 1e3),
            r.batch_req_per_s,
        );
        mixed.push(r);
    }
    let viol = |name: &str| {
        mixed.iter().find(|r| r.discipline == name).map(|r| r.interactive.slo_violations)
    };
    if let (Some(fifo), Some(slo)) = (viol("fifo"), viol("slo")) {
        println!(
            "# interactive SLO violations under batch flood: fifo={fifo} slo={slo} ({})",
            if slo < fifo { "slo-aware wins" } else { "NO IMPROVEMENT — investigate" }
        );
    }

    println!(
        "\n{:<9} {:>7} {:>9} {:>10} {:>10} {:>9} {:>9} {:>12}",
        "brownout",
        "int ok",
        "int viol",
        "viol rate",
        "int p95ms",
        "entries",
        "shed",
        "batch req/s"
    );
    let mut brownout = Vec::new();
    for enabled in [false, true] {
        let r = run_brownout_cell(&hosted, enabled, secs);
        println!(
            "{:<9} {:>7} {:>9} {:>10.3} {:>10.3} {:>9} {:>9} {:>12.0}",
            if r.enabled { "on" } else { "off" },
            r.interactive.ok,
            r.interactive.slo_violations,
            r.interactive.violation_rate,
            r.interactive.p95_secs.map_or(f64::NAN, |s| s * 1e3),
            r.brownout_entries,
            r.batch_shed,
            r.batch_req_per_s,
        );
        brownout.push(r);
    }
    if let [off, on] = &brownout[..] {
        println!(
            "# interactive SLO violation rate under overload: off={:.3} on={:.3} ({})",
            off.interactive.violation_rate,
            on.interactive.violation_rate,
            if on.interactive.violation_rate < off.interactive.violation_rate {
                "brown-out restores compliance"
            } else {
                "NO IMPROVEMENT — investigate"
            }
        );
    }

    let class_json = |o: &ClassOutcome| {
        JsonValue::obj([
            ("ok", JsonValue::from(o.ok)),
            ("timed_out", JsonValue::from(o.timed_out)),
            ("slo_violations", JsonValue::from(o.slo_violations)),
            ("slo_violation_rate", JsonValue::from(o.violation_rate)),
            ("p95_secs", o.p95_secs.map(JsonValue::from).unwrap_or(JsonValue::Null)),
            ("p99_secs", o.p99_secs.map(JsonValue::from).unwrap_or(JsonValue::Null)),
        ])
    };
    let rows: Vec<JsonValue> = cells
        .iter()
        .map(|r| {
            JsonValue::obj([
                ("concurrency", JsonValue::from(r.concurrency)),
                ("coalescing", JsonValue::from(r.coalescing)),
                ("requests_ok", JsonValue::from(r.ok)),
                ("busy", JsonValue::from(r.busy)),
                ("secs", JsonValue::from(r.secs)),
                ("req_per_s", JsonValue::from(r.req_per_s)),
                ("multi_vector_blocks", JsonValue::from(r.multi_vector_blocks)),
                ("p50_secs", r.p50_secs.map(JsonValue::from).unwrap_or(JsonValue::Null)),
                ("p95_secs", r.p95_secs.map(JsonValue::from).unwrap_or(JsonValue::Null)),
            ])
        })
        .collect();
    let mixed_rows: Vec<JsonValue> = mixed
        .iter()
        .map(|r| {
            JsonValue::obj([
                ("discipline", JsonValue::from(r.discipline)),
                ("interactive", class_json(&r.interactive)),
                ("batch", class_json(&r.batch)),
                ("batch_req_per_s", JsonValue::from(r.batch_req_per_s)),
            ])
        })
        .collect();
    let brownout_rows: Vec<JsonValue> = brownout
        .iter()
        .map(|r| {
            JsonValue::obj([
                ("brownout", JsonValue::from(r.enabled)),
                ("interactive", class_json(&r.interactive)),
                ("batch", class_json(&r.batch)),
                ("batch_req_per_s", JsonValue::from(r.batch_req_per_s)),
                ("brownout_entries", JsonValue::from(r.brownout_entries)),
                ("batch_shed", JsonValue::from(r.batch_shed)),
            ])
        })
        .collect();
    let scale_rows: Vec<JsonValue> = scale
        .iter()
        .map(|c| {
            let mut fields = vec![
                ("frontend", JsonValue::from(c.frontend.to_string())),
                ("connections", JsonValue::from(c.connections)),
            ];
            match &c.outcome {
                Ok(r) => fields.extend([
                    ("skipped", JsonValue::Null),
                    ("requests_ok", JsonValue::from(r.ok)),
                    ("busy", JsonValue::from(r.busy)),
                    ("secs", JsonValue::from(r.secs)),
                    ("req_per_s", JsonValue::from(r.req_per_s)),
                    ("server_threads", JsonValue::from(r.server_threads)),
                    ("server_stack_mib", JsonValue::from(r.server_stack_mib)),
                ]),
                Err(reason) => fields.push(("skipped", JsonValue::from(reason.as_str()))),
            }
            JsonValue::obj(fields)
        })
        .collect();
    let doc = JsonValue::obj([
        ("models", JsonValue::arr(hosted.iter().map(|h| JsonValue::from(h.name)))),
        ("secs_per_cell", JsonValue::from(secs)),
        ("results", JsonValue::Arr(rows)),
        ("connection_scaling", JsonValue::Arr(scale_rows)),
        (
            "mixed_workload",
            JsonValue::obj([
                ("interactive_slo_secs", JsonValue::from(MIXED_INTERACTIVE_SLO.as_secs_f64())),
                ("batch_request_weight", JsonValue::from(MIXED_BATCH_WEIGHT)),
                ("results", JsonValue::Arr(mixed_rows)),
            ]),
        ),
        (
            "brownout",
            JsonValue::obj([
                ("interactive_slo_secs", JsonValue::from(BROWNOUT_INTERACTIVE_SLO.as_secs_f64())),
                ("batch_request_weight", JsonValue::from(MIXED_BATCH_WEIGHT)),
                ("results", JsonValue::Arr(brownout_rows)),
            ]),
        ),
    ]);
    std::fs::write(&out_path, doc.to_json_pretty()).expect("write json");
    println!("\n# wrote {out_path}");
}
