//! Reproduces **Table VI**: effects of the adaptive system on nine
//! datasets — the worst format, the scheduler's selection, and the average
//! and maximum speedups of the selection over the other formats.
//!
//! Paper reference (Table VI):
//!
//! | dataset       | worst | selection | avg & max speedup |
//! |---------------|-------|-----------|-------------------|
//! | adult         | DIA   | ELL       | 3.8× & 14.3×      |
//! | breast_cancer | ELL   | CSR       | 16.2× & 35.7×     |
//! | aloi          | COO   | CSR       | 3.1× & 6.6×       |
//! | gisette       | DIA   | DEN       | 2.4× & 3.7×       |
//! | mnist         | ELL   | COO       | 3.0× & 5.1×       |
//! | sector        | DEN   | COO       | 14.3× & 39.6×     |
//! | leukemia      | ELL   | DEN       | 13.3× & 29.0×     |
//! | connect-4     | COO   | DEN       | 3.3× & 6.4×       |
//! | trefethen     | DEN   | DIA       | 1.7× & 4.1×       |

use dls_bench::{csv_dir_from_env, table6_workloads, time_smo_iterations_telemetry, CsvWriter};
use dls_core::{KernelMonitor, LayoutScheduler, SelectionStrategy, TelemetrySnapshot};
use dls_sparse::{Format, SmsvCounters};

const PAPER_TABLE6: [(&str, &str, &str, f64, f64); 9] = [
    ("adult", "DIA", "ELL", 3.8, 14.3),
    ("breast_cancer", "ELL", "CSR", 16.2, 35.7),
    ("aloi", "COO", "CSR", 3.1, 6.6),
    ("gisette", "DIA", "DEN", 2.4, 3.7),
    ("mnist", "ELL", "COO", 3.0, 5.1),
    ("sector", "DEN", "COO", 14.3, 39.6),
    ("leukemia", "ELL", "DEN", 13.3, 29.0),
    ("connect-4", "COO", "DEN", 3.3, 6.4),
    ("trefethen", "DEN", "DIA", 1.7, 4.1),
];

fn main() {
    let iters: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(30);
    let strategy = match std::env::args().nth(2).as_deref() {
        Some("empirical") => SelectionStrategy::Empirical,
        Some("cost") => SelectionStrategy::CostModel,
        _ => SelectionStrategy::RuleBased,
    };
    let scheduler = LayoutScheduler::with_strategy(strategy);

    println!("# Table VI — effects of the adaptive system ({iters} SMO iterations)");
    println!("# strategy: {strategy:?}\n");
    println!(
        "{:<14} {:>6} {:>10} {:>12} {:>12}   paper: worst sel avg max",
        "dataset", "worst", "selection", "avg speedup", "max speedup"
    );

    let mut avg_speedups = Vec::new();
    let mut max_speedups = Vec::new();
    let mut telemetry: Vec<(&str, TelemetrySnapshot)> = Vec::new();
    for w in table6_workloads(42) {
        let selection = scheduler.select_only(&w.matrix).chosen;
        // Per-dataset counters: every format's timed run contributes its
        // SMSV telemetry, so the snapshot compares layouts directly.
        let counters = SmsvCounters::shared();
        let mut monitor = KernelMonitor::new(counters.clone());
        let times: Vec<(Format, f64)> = Format::BASIC
            .iter()
            .map(|&f| {
                let secs = time_smo_iterations_telemetry(&w.matrix, &w.labels, f, iters, &counters);
                monitor.tick();
                (f, secs)
            })
            .collect();
        telemetry.push((w.name, monitor.snapshot()));
        let sel_time = times.iter().find(|(f, _)| *f == selection).unwrap().1;
        let worst = times.iter().max_by(|a, b| a.1.partial_cmp(&b.1).unwrap()).unwrap();
        let others: Vec<f64> =
            times.iter().filter(|(f, _)| *f != selection).map(|(_, t)| t / sel_time).collect();
        let avg = others.iter().sum::<f64>() / others.len() as f64;
        let max = worst.1 / sel_time;
        avg_speedups.push(avg);
        max_speedups.push(max);
        let paper = PAPER_TABLE6.iter().find(|p| p.0 == w.name).unwrap();
        println!(
            "{:<14} {:>6} {:>10} {:>11.1}x {:>11.1}x   paper: {} {} {:.1} {:.1}",
            w.name,
            worst.0.name(),
            selection.name(),
            avg,
            max,
            paper.1,
            paper.2,
            paper.3,
            paper.4
        );
    }
    let overall_avg = avg_speedups.iter().sum::<f64>() / avg_speedups.len() as f64;
    let overall_max = max_speedups.iter().fold(0.0f64, |a, &b| a.max(b));
    let overall_min = max_speedups.iter().fold(f64::INFINITY, |a, &b| a.min(b));
    println!(
        "\n# adaptive vs worst-format: {overall_min:.1}x - {overall_max:.1}x (avg of avgs {overall_avg:.1}x)"
    );
    println!("# paper: 1.7x - 16.2x average speedups, 6.8x overall average");

    println!("\n# measured SMSV seconds/call (telemetry)");
    for (name, snap) in &telemetry {
        let cells: Vec<String> = snap
            .active()
            .map(|t| format!("{} {:.2e}", t.format, t.nanos as f64 * 1e-9 / t.calls as f64))
            .collect();
        println!("{name:<14} {}", cells.join("  "));
    }
    if let Some(dir) = csv_dir_from_env() {
        let mut header = vec!["dataset"];
        header.extend(TelemetrySnapshot::csv_header().split(','));
        let mut csv =
            CsvWriter::create(&dir, "table6_telemetry", &header).expect("create telemetry csv");
        for (name, snap) in &telemetry {
            for row in snap.to_csv_rows() {
                let mut cells = vec![*name];
                let rest: Vec<&str> = row.split(',').collect();
                cells.extend(rest);
                csv.row(&cells).expect("write telemetry row");
            }
        }
        let path = csv.finish().expect("flush telemetry csv");
        eprintln!("# wrote {}", path.display());
    }
}
