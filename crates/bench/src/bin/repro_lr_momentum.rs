//! Reproduces the **§IV-D learning-rate** and **§IV-E momentum** studies:
//! epochs to target accuracy across the paper's η and µ tuning spaces,
//! with the previous stage's winners held fixed (the greedy pipeline).

use dls_dnn::tuning::{best_point, lr, momentum};
use dls_dnn::{CifarLikeConfig, Dataset, SgdConfig, TrainerConfig};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let ds = Dataset::cifar_like(if quick {
        CifarLikeConfig { train: 600, test: 200, noise: 1.2, ..Default::default() }
    } else {
        CifarLikeConfig::default()
    });
    let topology = [ds.dim(), 32, ds.classes()];
    let base = TrainerConfig {
        batch_size: 512.min(ds.n_train()),
        target_accuracy: 0.8,
        max_epochs: 120,
        ..Default::default()
    };

    println!("# §IV-D — learning-rate sweep at B = {} (µ = 0.9)\n", base.batch_size);
    println!("{:<10} {:>9} {:>8} {:>9} {:>9}", "eta", "iters", "epochs", "accuracy", "reached");
    let rates = if quick { vec![0.001, 0.002, 0.004, 0.008, 0.016] } else { lr::paper_lr_space() };
    let lr_points = lr::sweep(&ds, &topology, 9, &base, &rates);
    for p in &lr_points {
        println!(
            "{:<10.3} {:>9} {:>8} {:>9.3} {:>9}",
            p.learning_rate,
            p.outcome.iterations,
            p.outcome.epochs,
            p.outcome.final_accuracy,
            p.outcome.reached
        );
    }
    let best_lr = best_point(&lr_points).expect("non-empty sweep");
    let untuned = &lr_points[0];
    if untuned.outcome.reached && best_lr.outcome.reached {
        println!(
            "\n# best eta {:.3} cuts epochs {} -> {} ({:.1}x); paper's eta stage gave 2.6x",
            best_lr.learning_rate,
            untuned.outcome.epochs,
            best_lr.outcome.epochs,
            untuned.outcome.epochs as f64 / best_lr.outcome.epochs.max(1) as f64
        );
    }

    println!(
        "\n# §IV-E — momentum sweep at B = {}, eta = {:.3}\n",
        base.batch_size, best_lr.learning_rate
    );
    println!("{:<10} {:>9} {:>8} {:>9} {:>9}", "mu", "iters", "epochs", "accuracy", "reached");
    let mu_base = TrainerConfig {
        sgd: SgdConfig {
            learning_rate: best_lr.learning_rate,
            momentum: 0.90,
            weight_decay: 0.0,
            nesterov: false,
        },
        ..base
    };
    let momenta =
        if quick { vec![0.90, 0.93, 0.95, 0.97, 0.99] } else { momentum::paper_momentum_space() };
    let mu_points = momentum::sweep(&ds, &topology, 9, &mu_base, &momenta);
    for p in &mu_points {
        println!(
            "{:<10.2} {:>9} {:>8} {:>9.3} {:>9}",
            p.momentum,
            p.outcome.iterations,
            p.outcome.epochs,
            p.outcome.final_accuracy,
            p.outcome.reached
        );
    }
    let best_mu = best_point(&mu_points).expect("non-empty sweep");
    if best_mu.outcome.reached && best_lr.outcome.reached {
        println!(
            "\n# best mu {:.2} cuts epochs {} -> {} ({:.1}x); paper's mu stage gave 1.7x",
            best_mu.momentum,
            best_lr.outcome.epochs,
            best_mu.outcome.epochs,
            best_lr.outcome.epochs as f64 / best_mu.outcome.epochs.max(1) as f64
        );
    }
}
