//! Reproduces **Figure 2**: DIA-format SMSV performance versus number of
//! diagonals at fixed M = N = 4096, nnz = 4096.
//!
//! Paper: "the more diagonals a matrix has, the worse its performance will
//! be" — speedup normalised to the 4096-diagonal worst case.

use dls_bench::{csv_dir_from_env, normalise_to_slowest, time_smsv, CsvWriter};
use dls_data::controlled::diag_matrix;
use dls_sparse::{AnyMatrix, Format, MatrixFormat};

fn main() {
    let size: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(4096);
    let reps = 9;
    println!("# Figure 2 — DIA speedup vs number of diagonals");
    println!("# M = N = {size}, nnz = {size}, baseline = most-diagonal case\n");
    println!("{:>8} {:>14} {:>14} {:>10}", "ndig", "storage elems", "seconds", "speedup");

    let mut ndig = 2usize;
    let mut points = Vec::new();
    while ndig <= size {
        let t = diag_matrix(size, size, size, ndig, 7);
        let m = AnyMatrix::from_triplets(Format::Dia, &t);
        let secs = time_smsv(&m, reps);
        points.push((ndig, m.storage_elems(), secs));
        ndig *= 2;
    }
    let speedups =
        normalise_to_slowest(&points.iter().map(|&(n, _, s)| (n, s)).collect::<Vec<_>>());
    for ((ndig, elems, secs), (_, speedup)) in points.iter().zip(&speedups) {
        println!("{ndig:>8} {elems:>14} {secs:>14.3e} {speedup:>9.2}x");
    }
    if let Some(dir) = csv_dir_from_env() {
        let mut w =
            CsvWriter::create(&dir, "fig2_dia", &["ndig", "storage_elems", "seconds", "speedup"])
                .expect("create csv");
        for ((ndig, elems, secs), (_, speedup)) in points.iter().zip(&speedups) {
            w.row(&[*ndig as f64, *elems as f64, *secs, *speedup]).expect("write row");
        }
        let path = w.finish().expect("flush csv");
        println!("# wrote {}", path.display());
    }
    println!("\n# Shape check: speedup should decrease monotonically as ndig grows,");
    println!("# because every extra diagonal adds a full padded lane of work.");
}
