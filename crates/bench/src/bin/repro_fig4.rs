//! Reproduces **Figure 4**: speedup of COO over CSR as the row-length
//! variance `vdim` grows.
//!
//! The paper's effect is a *vectorisation* effect: "when dim changes
//! significantly among different rows, it could potentially have negative
//! effects on the performance of CSR … due to the inefficient usage of the
//! fixed-width SIMD. However, this has little influence on COO because all
//! the non-zero elements … can be processed in parallel."
//!
//! On scalar hardware the effect disappears, so this repro measures CSR
//! with the row-lockstep lane kernel ([`dls_sparse::CsrMatrix::smsv_lanes`])
//! that mirrors a fixed-width-SIMD CSR implementation (8 lanes, as on the
//! paper's Xeon Phi), against the flat COO kernel.

use dls_bench::{csv_dir_from_env, CsvWriter};
use dls_data::controlled::vdim_matrix;
use dls_sparse::{CooMatrix, CsrMatrix, MatrixFeatures, MatrixFormat};
use std::time::Instant;

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

fn main() {
    let m: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(2048);
    let n = 2 * m;
    let adim = 32usize;
    let nnz = m * adim;
    let reps = 9;
    println!("# Figure 4 — COO/CSR speedup vs vdim (CSR = 8-lane lockstep kernel)");
    println!("# M = {m}, N = {n}, nnz = {nnz} (adim = {adim})\n");
    println!(
        "{:>12} {:>12} {:>14} {:>14} {:>12}",
        "target vdim", "actual vdim", "CSR secs", "COO secs", "COO/CSR"
    );

    let mut csv = csv_dir_from_env().map(|dir| {
        CsvWriter::create(
            &dir,
            "fig4_coo_csr",
            &["target_vdim", "vdim", "csr_secs", "coo_secs", "ratio"],
        )
        .expect("create csv")
    });
    for &target in &[0.0, 4.0, 16.0, 64.0, 256.0, 1024.0, 4096.0] {
        let t = vdim_matrix(m, n, nnz, target, 13);
        let f = MatrixFeatures::from_triplets(&t);
        let csr = CsrMatrix::from_triplets(&t);
        let coo = CooMatrix::from_triplets(&t);
        let v = csr.row_sparse(0);
        let mut out = vec![0.0; m];

        csr.smsv_lanes::<8>(&v, &mut out); // warm-up
        let csr_secs = median(
            (0..reps)
                .map(|_| {
                    let s = Instant::now();
                    csr.smsv_lanes::<8>(&v, &mut out);
                    s.elapsed().as_secs_f64()
                })
                .collect(),
        );
        coo.smsv(&v, &mut out);
        let coo_secs = median(
            (0..reps)
                .map(|_| {
                    let s = Instant::now();
                    coo.smsv(&v, &mut out);
                    s.elapsed().as_secs_f64()
                })
                .collect(),
        );
        println!(
            "{target:>12.0} {:>12.1} {csr_secs:>14.3e} {coo_secs:>14.3e} {:>11.2}x",
            f.vdim,
            csr_secs / coo_secs
        );
        if let Some(w) = csv.as_mut() {
            w.row(&[target, f.vdim, csr_secs, coo_secs, csr_secs / coo_secs]).expect("write row");
        }
    }
    if let Some(w) = csv {
        let path = w.finish().expect("flush csv");
        println!("# wrote {}", path.display());
    }
    println!("\n# Shape check: the COO/CSR ratio should rise with vdim — lockstep");
    println!("# lanes idle on short rows while COO's per-element work stays flat.");
}
