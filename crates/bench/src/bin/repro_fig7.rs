//! Reproduces **Figure 7**: speedup of the adaptive system ("HPC-SVM")
//! over the parallel-LIBSVM-style fixed-CSR baseline on the real-world
//! datasets, plus the paper's §V-B secondary comparison: adaptive vs our
//! *own* fixed-CSR implementation.
//!
//! Paper: 1.2–16.5× over parallel LIBSVM (4× average); 1.3× average over
//! the own-CSR fixed version.

use dls_baseline::{train_libsvm_like, LibsvmLikeParams};
use dls_bench::{
    csv_dir_from_env, table6_workloads, time_smo_iterations, time_smo_iterations_telemetry,
    CsvWriter,
};
use dls_core::{KernelMonitor, LayoutScheduler, TelemetrySnapshot};
use dls_sparse::{Format, SmsvCounters};
use dls_svm::KernelKind;
use std::time::Instant;

fn main() {
    let iters: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(30);
    println!("# Figure 7 — adaptive system vs LIBSVM-style fixed-CSR baseline");
    println!("# fixed {iters} SMO iterations each; same arithmetic, different layout/kernels\n");
    println!(
        "{:<14} {:>10} {:>14} {:>14} {:>12} {:>12}",
        "dataset", "selection", "baseline s", "adaptive s", "vs libsvm", "vs own-CSR"
    );

    let scheduler = LayoutScheduler::new();
    let mut speedups = Vec::new();
    let mut own_csr_speedups = Vec::new();
    // Telemetry for the adaptive runs only: what the scheduled format
    // actually delivered, per dataset.
    let mut telemetry: Vec<(&str, TelemetrySnapshot)> = Vec::new();
    for w in table6_workloads(42) {
        let selection = scheduler.select_only(&w.matrix).chosen;

        // Baseline: LIBSVM-like merge-join CSR solver, same iteration count.
        let params = LibsvmLikeParams {
            kernel: KernelKind::Linear,
            tolerance: 1e-12,
            max_iterations: iters,
            ..Default::default()
        };
        let start = Instant::now();
        let _ = train_libsvm_like(&w.matrix, &w.labels, &params).expect("valid inputs");
        let baseline_secs = start.elapsed().as_secs_f64();

        // Adaptive: scheduled format through the tuned solver, with SMSV
        // telemetry recorded behind the timing.
        let counters = SmsvCounters::shared();
        let mut monitor = KernelMonitor::new(counters.clone());
        let adaptive_secs =
            time_smo_iterations_telemetry(&w.matrix, &w.labels, selection, iters, &counters);
        monitor.tick();
        telemetry.push((w.name, monitor.snapshot()));
        // Own fixed-CSR: tuned solver, CSR regardless of the data.
        let own_csr_secs = time_smo_iterations(&w.matrix, &w.labels, Format::Csr, iters);

        let speedup = baseline_secs / adaptive_secs;
        let own = own_csr_secs / adaptive_secs;
        speedups.push(speedup);
        own_csr_speedups.push(own);
        println!(
            "{:<14} {:>10} {:>14.3e} {:>14.3e} {:>11.1}x {:>11.2}x",
            w.name,
            selection.name(),
            baseline_secs,
            adaptive_secs,
            speedup,
            own
        );
    }
    let avg = speedups.iter().sum::<f64>() / speedups.len() as f64;
    let avg_own = own_csr_speedups.iter().sum::<f64>() / own_csr_speedups.len() as f64;
    let (lo, hi) = speedups.iter().fold((f64::INFINITY, 0.0f64), |(l, h), &s| (l.min(s), h.max(s)));
    println!("\n# adaptive vs parallel-LIBSVM-style: {lo:.1}x - {hi:.1}x (avg {avg:.1}x); paper: 1.2x - 16.5x (avg 4x)");
    println!("# adaptive vs own fixed-CSR: avg {avg_own:.2}x; paper: avg 1.3x");

    println!("\n# adaptive-run SMSV telemetry (format, calls, s/call)");
    for (name, snap) in &telemetry {
        for t in snap.active() {
            println!(
                "{name:<14} {:<4} {:>8} calls {:>10.2e} s/call",
                t.format,
                t.calls,
                t.nanos as f64 * 1e-9 / t.calls as f64
            );
        }
    }
    if let Some(dir) = csv_dir_from_env() {
        let mut header = vec!["dataset"];
        header.extend(TelemetrySnapshot::csv_header().split(','));
        let mut csv =
            CsvWriter::create(&dir, "fig7_telemetry", &header).expect("create telemetry csv");
        for (name, snap) in &telemetry {
            for row in snap.to_csv_rows() {
                let mut cells = vec![*name];
                cells.extend(row.split(','));
                csv.row(&cells).expect("write telemetry row");
            }
        }
        let path = csv.finish().expect("flush telemetry csv");
        eprintln!("# wrote {}", path.display());
    }
}
