//! Threshold-calibration study: where does DEN overtake the compressed
//! formats as density grows?
//!
//! The rule system's `den_density = 0.30` gate (calibrated so gisette,
//! leukemia and connect-4 route to DEN like the paper's Table VI) is an
//! empirical claim about a crossover; this sweep measures it directly on
//! fixed-shape matrices of increasing density.

use dls_bench::{csv_dir_from_env, time_smsv, CsvWriter};
use dls_sparse::{AnyMatrix, Format, TripletMatrix};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

fn matrix_with_density(m: usize, n: usize, density: f64, seed: u64) -> TripletMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let per_row = ((n as f64 * density).round() as usize).clamp(1, n);
    let mut t = TripletMatrix::with_capacity(m, n, m * per_row);
    let mut cols: Vec<usize> = (0..n).collect();
    for i in 0..m {
        cols.shuffle(&mut rng);
        for &j in cols.iter().take(per_row) {
            t.push(i, j, 1.0 - rng.gen::<f64>());
        }
    }
    t.compact()
}

fn main() {
    let m: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(1024);
    let n = 512usize;
    println!("# Density sweep — DEN vs CSR/COO/ELL crossover (M={m}, N={n})");
    println!("# rule-system gate: den_density = 0.30\n");
    println!(
        "{:>9} {:>12} {:>12} {:>12} {:>12} {:>10}",
        "density", "DEN secs", "CSR secs", "COO secs", "ELL secs", "DEN/CSR"
    );

    let mut csv = csv_dir_from_env().map(|dir| {
        CsvWriter::create(
            &dir,
            "density_sweep",
            &["density", "den_secs", "csr_secs", "coo_secs", "ell_secs"],
        )
        .expect("create csv")
    });
    let mut crossover: Option<f64> = None;
    for &density in &[0.01, 0.02, 0.05, 0.1, 0.2, 0.3, 0.4, 0.6, 0.8, 1.0] {
        let t = matrix_with_density(m, n, density, 11);
        let secs = |fmt: Format| time_smsv(&AnyMatrix::from_triplets(fmt, &t), 7);
        let (den, csr, coo, ell) =
            (secs(Format::Den), secs(Format::Csr), secs(Format::Coo), secs(Format::Ell));
        if den <= csr && crossover.is_none() {
            crossover = Some(density);
        }
        println!(
            "{density:>9.2} {den:>12.3e} {csr:>12.3e} {coo:>12.3e} {ell:>12.3e} {:>9.2}x",
            den / csr
        );
        if let Some(w) = csv.as_mut() {
            w.row(&[density, den, csr, coo, ell]).expect("write row");
        }
    }
    if let Some(w) = csv {
        let path = w.finish().expect("flush csv");
        println!("# wrote {}", path.display());
    }
    match crossover {
        Some(d) => println!("\n# measured DEN/CSR crossover on this host: density ≈ {d}"),
        None => println!("\n# DEN never overtook CSR in this sweep (crossover > 1.0)"),
    }
    println!("# The rule gate (0.30) reproduces the *paper's* Table VI selections —");
    println!("# their wide-SIMD testbed streams dense rows far better than this");
    println!("# host's scalar kernel, so their crossover sits lower. This is the");
    println!("# same hardware-dependence the selector ablation quantifies; the");
    println!("# empirical strategy adapts automatically.");
}
