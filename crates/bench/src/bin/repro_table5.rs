//! Reproduces **Table V**: the influencing parameters of every evaluated
//! dataset — paper values vs the measured statistics of our synthetic twins.

use dls_bench::workloads::{default_scale, workload};
use dls_sparse::MatrixFeatures;

fn main() {
    println!("# Table V — paper statistics vs measured synthetic-twin statistics");
    println!("# (twins of the scaled giants report the scaled spec's targets)\n");
    println!(
        "{:<14} {:>6} {:>9} {:>7} {:>11} {:>9} {:>8} {:>8} {:>8} {:>10} {:>9}",
        "dataset", "scale", "M", "N", "nnz", "ndig", "dnnz", "mdim", "adim", "vdim", "density"
    );

    for spec in dls_data::PAPER_DATASETS.iter() {
        let scale = default_scale(spec.name);
        let w = workload(spec.name, 42);
        let f = MatrixFeatures::from_triplets(&w.matrix);
        println!(
            "{:<14} {:>6} {:>9} {:>7} {:>11} {:>9} {:>8.2} {:>8} {:>8.2} {:>10.2} {:>9.3}",
            spec.name, scale, f.m, f.n, f.nnz, f.ndig, f.dnnz, f.mdim, f.adim, f.vdim, f.density
        );
        println!(
            "{:<14} {:>6} {:>9} {:>7} {:>11} {:>9} {:>8.2} {:>8} {:>8.2} {:>10.2} {:>9.3}",
            "  (paper)",
            "-",
            spec.m,
            spec.n,
            spec.nnz,
            spec.ndig,
            spec.dnnz,
            spec.mdim,
            spec.adim,
            spec.vdim,
            spec.density
        );
    }
    println!("\n# The format decision depends only on these statistics, so matching");
    println!("# them (up to scaling) is what makes the twins faithful.");
}
