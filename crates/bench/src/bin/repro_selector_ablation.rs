//! Ablation (DESIGN.md decision 1): how good is each selection strategy's
//! *choice*, measured as regret against the oracle (fastest measured
//! format) on every Table VI dataset.
//!
//! The paper's system is rule-based; the ablation quantifies what the
//! analytic cost model and the empirical micro-benchmark buy relative to
//! the rules — and what the rules cost when their hardware assumptions
//! (lockstep-SIMD CSR) don't match the host.

use dls_bench::{table6_workloads, time_smo_iterations};
use dls_core::{LayoutScheduler, SelectionStrategy};
use dls_sparse::Format;

fn main() {
    let iters: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(20);
    let strategies = [
        ("rule(paper)", SelectionStrategy::RuleBased),
        ("rule(host)", SelectionStrategy::RuleBasedHost),
        ("cost-model", SelectionStrategy::CostModel),
        ("empirical", SelectionStrategy::Empirical),
    ];
    println!("# Selector ablation — choice quality vs the measured oracle ({iters} SMO iters)");
    println!("# regret = time(choice) / time(oracle best); 1.00 = optimal\n");
    print!("{:<14} {:>8}", "dataset", "oracle");
    for (name, _) in &strategies {
        print!(" {name:>22}");
    }
    println!();

    let mut totals = vec![0.0f64; strategies.len()];
    let mut count = 0usize;
    for w in table6_workloads(42) {
        // Oracle: measure every basic format.
        let times: Vec<(Format, f64)> = Format::BASIC
            .iter()
            .map(|&f| (f, time_smo_iterations(&w.matrix, &w.labels, f, iters)))
            .collect();
        let &(oracle_fmt, oracle_time) =
            times.iter().min_by(|a, b| a.1.partial_cmp(&b.1).unwrap()).expect("five formats");

        print!("{:<14} {:>8}", w.name, oracle_fmt.name());
        for (k, (_, strategy)) in strategies.iter().enumerate() {
            let choice = LayoutScheduler::with_strategy(*strategy).select_only(&w.matrix).chosen;
            let t = times
                .iter()
                .find(|(f, _)| *f == choice)
                .map(|(_, t)| *t)
                // Derived-format choices get re-measured.
                .unwrap_or_else(|| time_smo_iterations(&w.matrix, &w.labels, choice, iters));
            let regret = t / oracle_time;
            totals[k] += regret;
            print!(" {:>12} ({:>5.2}x)", choice.name(), regret);
        }
        println!();
        count += 1;
    }
    println!();
    print!("{:<14} {:>8}", "mean regret", "");
    for total in &totals {
        print!(" {:>20.2}x ", total / count as f64);
    }
    println!();
    println!("\n# Reading: the empirical tuner should track the oracle closely (it");
    println!("# measures the same thing); rule(host) should beat rule(paper) on");
    println!("# scalar machines where the COO rule misfires; the cost model sits");
    println!("# between, limited by its bandwidth assumptions.");
}
