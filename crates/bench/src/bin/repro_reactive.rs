//! Demonstrates **mid-training re-scheduling**: an SVM run deliberately
//! mis-seeded with a wrong fixed format recovers to the oracle's choice
//! while training, and finishes within a small factor of a run that
//! started on the oracle format.
//!
//! Usage: `repro_reactive [dataset] [iterations]` (defaults: adult, 6000).
//! With `DLS_CSV_DIR` set, dumps the telemetry snapshot as
//! `reactive_telemetry.csv` and `reactive_telemetry.json`.

use dls_bench::{csv_dir_from_env, workload, CsvWriter};
use dls_core::{LayoutScheduler, ReactiveConfig, ReactiveScheduler, SelectionStrategy};
use dls_svm::{SmoParams, WorkingSetSelection};
use std::time::Instant;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "adult".to_string());
    let iters: usize = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(6_000);
    let w = workload(&name, 42);

    let params = SmoParams {
        c: 1.0,
        kernel: dls_svm::KernelKind::Linear,
        tolerance: 1e-12, // run the full budget so the two times compare
        max_iterations: iters,
        cache_bytes: 0, // every iteration pays its two SMSVs
        selection: WorkingSetSelection::FirstOrder,
        threads: 1,
        shrinking: false,
        positive_weight: 1.0,
        block_size: 1,
    };

    // Oracle: the cost model's up-front choice, trained statically.
    let oracle_sched = LayoutScheduler::with_strategy(SelectionStrategy::CostModel);
    let oracle_report = oracle_sched.select_only(&w.matrix);
    let oracle_fmt = oracle_report.chosen;
    let start = Instant::now();
    let scheduled = oracle_sched.schedule(&w.matrix);
    let _ =
        dls_svm::train_with_stats(scheduled.matrix(), &w.labels, &params).expect("oracle training");
    let oracle_time = start.elapsed().as_secs_f64();

    // Mis-seeded run: fixed on the *worst-scored* format, with the
    // reactive loop free to correct it.
    let wrong = oracle_report.worst();
    let reactive =
        ReactiveScheduler::new(LayoutScheduler::with_strategy(SelectionStrategy::Fixed(wrong)))
            .with_config(ReactiveConfig { segment_iters: 8, ..ReactiveConfig::default() });
    let start = Instant::now();
    let (_, report) = reactive.train(&w.matrix, &w.labels, &params).expect("reactive training");
    let reactive_time = start.elapsed().as_secs_f64();

    println!("# Reactive re-scheduling — {name} ({iters} SMO iterations)");
    println!("oracle start:    {:<4} {:.3}s", oracle_fmt.name(), oracle_time);
    println!(
        "mis-seeded start: {:<4} {:.3}s  -> finished on {}",
        wrong.name(),
        reactive_time,
        report.final_format.name()
    );
    for s in &report.switches {
        println!(
            "  switch @ iter {:>6}: {} -> {} (measured {:.3e} s/call, target est {:.3e})",
            s.at_iteration,
            s.from.name(),
            s.to.name(),
            s.measured_secs_per_call,
            s.estimated_target_secs_per_call
        );
    }
    let ratio = reactive_time / oracle_time;
    println!(
        "recovery ratio:  {ratio:.2}x of oracle (target <= 1.2x){}",
        if report.switches.is_empty() { "  [no switch fired]" } else { "" }
    );
    println!("\n# telemetry\n{}", report.telemetry.to_json());

    if let Some(dir) = csv_dir_from_env() {
        let header: Vec<&str> = dls_core::TelemetrySnapshot::csv_header().split(',').collect();
        let mut csv =
            CsvWriter::create(&dir, "reactive_telemetry", &header).expect("create telemetry csv");
        for row in report.telemetry.to_csv_rows() {
            let cells: Vec<&str> = row.split(',').collect();
            csv.row(&cells).expect("write telemetry row");
        }
        let path = csv.finish().expect("flush telemetry csv");
        let json_path = dir.join("reactive_telemetry.json");
        std::fs::write(&json_path, report.telemetry.to_json()).expect("write telemetry json");
        eprintln!("# wrote {} and {}", path.display(), json_path.display());
    }
}
