//! Learned-selector ablation: rules vs trained tree vs the labelling
//! oracle, on held-out synthetic matrices the tree never saw.
//!
//! Trains a fresh model on the `dls-learn` grid (measured labels by
//! default; `--analytic` for a deterministic storage-model oracle), holds
//! out every 5th case, and grades each selector's *choice* by agreement
//! with the oracle winner and by regret — how much slower the chosen
//! format's oracle time is than the winner's.
//!
//! Usage: `repro_selector_learned [--quick] [--analytic] [--seed N]`

use dls_core::{LayoutScheduler, SelectionStrategy};
use dls_learn::{
    evaluate, training_grid, DecisionTree, GridConfig, LabelMode, LabelSource, LearnedSelector,
    ModelMeta, TrainedModel, TreeParams,
};
use dls_sparse::Format;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let analytic = args.iter().any(|a| a == "--analytic");
    let seed = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| GridConfig::default().seed);

    let mode = if analytic { LabelMode::analytic_flat() } else { LabelMode::default() };
    let grid_cfg = GridConfig { seed, quick, ..Default::default() };

    println!("# Learned-selector ablation — choice quality on held-out grid matrices");
    println!(
        "# grid={} seed={seed} labels={}\n",
        if quick { "quick" } else { "full" },
        if analytic { "analytic(flat)" } else { "measured (analytic fallback)" }
    );

    // Generate + label once, keeping matrices paired with their samples so
    // the rule-based selectors (which inspect the matrix) can be graded on
    // the same holdout.
    let cases = training_grid(&grid_cfg);
    let labelled: Vec<_> =
        cases.iter().map(|c| (c, dls_learn::label_case(&c.desc, &c.matrix, mode))).collect();
    let stride = 5usize;
    let (train, holdout): (Vec<_>, Vec<_>) =
        labelled.into_iter().enumerate().partition(|(i, _)| i % stride != stride - 1);
    let train: Vec<_> = train.into_iter().map(|(_, p)| p).collect();
    let holdout: Vec<_> = holdout.into_iter().map(|(_, p)| p).collect();

    let xs: Vec<_> = train.iter().map(|(_, s)| s.x).collect();
    let ys: Vec<_> = train.iter().map(|(_, s)| s.label).collect();
    let tree = DecisionTree::train(&xs, &ys, TreeParams::default());
    let count = |src: LabelSource| train.iter().filter(|(_, s)| s.source == src).count();
    let model = TrainedModel {
        meta: ModelMeta {
            seed,
            grid: if quick { "quick".into() } else { "full".into() },
            samples: train.len(),
            measured: count(LabelSource::Measured),
            analytic_fallback: count(LabelSource::AnalyticFallback),
            analytic: count(LabelSource::Analytic),
        },
        tree,
        blocks: None,
        ensemble: None,
    };
    println!(
        "trained on {} samples ({} measured, {} fallback, {} analytic); \
         tree depth {} with {} leaves; holdout {} matrices\n",
        model.meta.samples,
        model.meta.measured,
        model.meta.analytic_fallback,
        model.meta.analytic,
        model.tree.depth(),
        model.tree.n_leaves(),
        holdout.len()
    );

    let hold_samples: Vec<_> = holdout.iter().map(|(_, s)| s.clone()).collect();
    let learned = LearnedSelector::new(model);
    let mut rows = Vec::new();

    // The oracle grades itself perfectly — printed as the reference row.
    let oracle_picks: Vec<Format> = hold_samples.iter().map(|s| s.label).collect();
    rows.push(evaluate("oracle", &hold_samples, &oracle_picks));

    for (name, strategy) in [
        ("rule(paper)", SelectionStrategy::RuleBased),
        ("rule(host)", SelectionStrategy::RuleBasedHost),
        ("cost-model", SelectionStrategy::CostModel),
    ] {
        let sched = LayoutScheduler::with_strategy(strategy);
        let picks: Vec<Format> =
            holdout.iter().map(|(c, _)| sched.select_only(&c.matrix).chosen).collect();
        rows.push(evaluate(name, &hold_samples, &picks));
    }
    let picks: Vec<Format> = hold_samples.iter().map(|s| learned.predict(&s.features)).collect();
    rows.push(evaluate("learned", &hold_samples, &picks));

    println!(
        "{:<12} {:>5}  {:>10}  {:>12}  {:>11}",
        "selector", "n", "agreement", "mean regret", "max regret"
    );
    for row in &rows {
        println!("{}", row.render_row());
    }

    // Per-matrix disagreements, so a surprising row can be diagnosed.
    println!("\n# learned-vs-oracle disagreements:");
    let mut any = false;
    for (s, &pick) in hold_samples.iter().zip(&picks) {
        if pick != s.label {
            any = true;
            let regret = s
                .score_of(pick)
                .map(|t| t / s.score_of(s.label).unwrap() - 1.0)
                .unwrap_or(f64::NAN);
            println!(
                "#   {:<28} oracle={} learned={} (+{:.1}%)",
                s.desc,
                s.label,
                pick,
                regret * 100.0
            );
        }
    }
    if !any {
        println!("#   (none)");
    }
    println!("\n# Reading: `learned` should match or beat `rule(paper)` on agreement —");
    println!("# the tree was fitted to this oracle's labels on neighbouring matrices.");
    println!("# Regret is the fairer metric: a wrong pick that is 2% slower matters");
    println!("# less than one that is 5x slower.");
}
