//! Reproduces **Figure 3**: ELL-format SMSV performance versus the maximum
//! row length `mdim` at fixed M = N = 4096, nnz = 8192.
//!
//! Paper: "the higher mdim, the worse its performance will be" — each row
//! pads to the longest, so storage and masked work grow with mdim while
//! the useful non-zeros stay constant.

use dls_bench::{csv_dir_from_env, normalise_to_slowest, time_smsv, CsvWriter};
use dls_data::controlled::mdim_matrix;
use dls_sparse::{AnyMatrix, Format, MatrixFeatures, MatrixFormat};

fn main() {
    let size: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(4096);
    let nnz = 2 * size;
    let reps = 9;
    println!("# Figure 3 — ELL speedup vs mdim");
    println!("# M = N = {size}, nnz = {nnz}, baseline = worst case\n");
    println!(
        "{:>8} {:>14} {:>12} {:>14} {:>10}",
        "mdim", "storage elems", "vdim", "seconds", "speedup"
    );

    // mdim = 1 is infeasible (needs nnz rows > M); start at 2 like the
    // feasible end of the paper's sweep.
    let mut mdim = 2usize;
    let mut points = Vec::new();
    while mdim <= size {
        let t = mdim_matrix(size, size, nnz, mdim, 11);
        let f = MatrixFeatures::from_triplets(&t);
        let m = AnyMatrix::from_triplets(Format::Ell, &t);
        let secs = time_smsv(&m, reps);
        points.push((mdim, m.storage_elems(), f.vdim, secs));
        mdim *= 2;
    }
    let speedups =
        normalise_to_slowest(&points.iter().map(|&(n, _, _, s)| (n, s)).collect::<Vec<_>>());
    for ((mdim, elems, vdim, secs), (_, speedup)) in points.iter().zip(&speedups) {
        println!("{mdim:>8} {elems:>14} {vdim:>12.1} {secs:>14.3e} {speedup:>9.2}x");
    }
    if let Some(dir) = csv_dir_from_env() {
        let mut w = CsvWriter::create(
            &dir,
            "fig3_ell",
            &["mdim", "storage_elems", "vdim", "seconds", "speedup"],
        )
        .expect("create csv");
        for ((mdim, elems, vdim, secs), (_, speedup)) in points.iter().zip(&speedups) {
            w.row(&[*mdim as f64, *elems as f64, *vdim, *secs, *speedup]).expect("write row");
        }
        let path = w.finish().expect("flush csv");
        println!("# wrote {}", path.display());
    }
    println!("\n# Shape check: speedup decreases as mdim grows; vdim grows alongside,");
    println!("# confirming the paper's second explanation (row imbalance).");
}
