//! Reproduces **Table VII and Figures 5–6**: time to target accuracy,
//! speedup, and price-per-speedup for every method, combining
//!
//! 1. *measured* epochs-to-accuracy from real SGD runs on the synthetic
//!    CIFAR-like dataset (`dls-dnn`), reproducing the tuning progression
//!    B → η → µ (the paper's DGX1/DGX2/DGX3), and
//! 2. the calibrated hardware throughput model (`dls-hw`) that converts
//!    iteration counts into per-platform wall-clock and dollars.

use dls_dnn::tuning::{batch, lr, momentum, AutoTuner};
use dls_dnn::{CifarLikeConfig, Dataset, TrainerConfig};
use dls_hw::{build_table7, paper_run_specs, PriceModel, RunSpec, PAPER_TABLE7};

fn main() {
    // ---------------------------------------------------------------
    // Part 1: Table VII from the paper's own iteration counts through
    // the calibrated throughput model (validates the hardware model).
    // ---------------------------------------------------------------
    println!("# Table VII (model) — paper iteration counts through the throughput model\n");
    println!(
        "{:<32} {:>5} {:>6} {:>5} {:>9} {:>9} {:>9} {:>8} {:>9} {:>8}",
        "method", "B", "eta", "mu", "iters", "time s", "paper s", "price", "speedup", "$/x"
    );
    let rows = build_table7(&paper_run_specs());
    for (row, paper) in rows.iter().zip(&PAPER_TABLE7) {
        println!(
            "{:<32} {:>5} {:>6} {:>5} {:>9} {:>9.0} {:>9.0} {:>8.0} {:>8.0}x {:>8.0}",
            row.spec.method,
            row.spec.batch,
            row.spec.learning_rate,
            row.spec.momentum,
            row.spec.iterations,
            row.time_s,
            paper.7,
            row.price_usd,
            row.speedup,
            row.price_per_speedup
        );
    }

    // ---------------------------------------------------------------
    // Part 2: the tuning progression measured on real SGD runs.
    // ---------------------------------------------------------------
    let quick = std::env::args().any(|a| a == "--quick");
    let ds = if quick {
        Dataset::cifar_like(CifarLikeConfig {
            train: 600,
            test: 200,
            noise: 1.2,
            ..Default::default()
        })
    } else {
        Dataset::cifar_like(CifarLikeConfig::default())
    };
    println!("\n# Tuning progression measured on the synthetic CIFAR-like set");
    println!(
        "# ({} train / {} test samples, {} classes, target accuracy 0.8)\n",
        ds.n_train(),
        ds.n_test(),
        ds.classes()
    );

    let base = TrainerConfig { target_accuracy: 0.8, max_epochs: 120, ..Default::default() };
    let tuner = AutoTuner { hidden: vec![32], net_seed: 9, base };
    let mut batches: Vec<usize> =
        batch::PAPER_BATCH_SPACE.iter().map(|&b| b.min(ds.n_train())).collect();
    batches.dedup();
    let rates = if quick { vec![0.001, 0.004, 0.016] } else { lr::paper_lr_space() };
    let momenta = if quick { vec![0.90, 0.95, 0.99] } else { momentum::paper_momentum_space() };
    let result = tuner.run(&ds, &batches, &rates, &momenta);

    println!(
        "{:<24} {:>6} {:>8} {:>6} {:>9} {:>8} {:>9} {:>8}",
        "stage", "B", "eta", "mu", "iters", "epochs", "accuracy", "reached"
    );
    for (label, p) in [
        ("untuned (Caffe defaults)", None),
        ("tune B        (DGX1)", Some(&result.after_batch)),
        ("tune B+eta    (DGX2)", Some(&result.after_lr)),
        ("tune B+eta+mu (DGX3)", Some(&result.after_momentum)),
    ] {
        match p {
            None => {
                // The untuned point is in the batch stage at B = 100.
                if let Some(u) = result.all_points.iter().find(|p| p.batch_size == 100) {
                    println!(
                        "{:<24} {:>6} {:>8} {:>6} {:>9} {:>8} {:>9.3} {:>8}",
                        label,
                        u.batch_size,
                        u.learning_rate,
                        u.momentum,
                        u.outcome.iterations,
                        u.outcome.epochs,
                        u.outcome.final_accuracy,
                        u.outcome.reached
                    );
                }
            }
            Some(p) => println!(
                "{:<24} {:>6} {:>8} {:>6} {:>9} {:>8} {:>9.3} {:>8}",
                label,
                p.batch_size,
                p.learning_rate,
                p.momentum,
                p.outcome.iterations,
                p.outcome.epochs,
                p.outcome.final_accuracy,
                p.outcome.reached
            ),
        }
    }

    // ---------------------------------------------------------------
    // Part 3: Figures 5 and 6 — measured epochs through the platform
    // model, normalised like the paper (8-core CPU = 1x).
    // ---------------------------------------------------------------
    println!("\n# Figures 5 & 6 — time (s) and price/speedup from measured tuning\n");
    let untuned = result
        .all_points
        .iter()
        .find(|p| p.batch_size == 100)
        .expect("batch stage includes B = 100");
    // Scale measured iterations onto CIFAR-10's 50,000-sample epochs so
    // the platform model sees a CIFAR-sized job.
    let scale = 50_000usize.div_ceil(
        untuned.batch_size * (untuned.outcome.iterations / untuned.outcome.epochs.max(1)).max(1),
    );
    let specs: Vec<RunSpec> = [
        ("8-core CPU", "8-core CPU", untuned),
        ("KNL", "KNL", untuned),
        ("Haswell", "Haswell", untuned),
        ("P100", "P100", untuned),
        ("DGX (untuned)", "DGX", untuned),
        ("DGX1 tune B", "DGX", &result.after_batch),
        ("DGX2 tune B+eta", "DGX", &result.after_lr),
        ("DGX3 tune B+eta+mu", "DGX", &result.after_momentum),
    ]
    .iter()
    .map(|&(method, platform, p)| RunSpec {
        method: Box::leak(method.to_string().into_boxed_str()),
        platform: Box::leak(platform.to_string().into_boxed_str()),
        batch: p.batch_size,
        learning_rate: p.learning_rate as f64,
        momentum: p.momentum as f64,
        iterations: p.outcome.iterations * scale,
        epochs: p.outcome.epochs,
    })
    .collect();
    let rows = build_table7(&specs);
    println!("{:<24} {:>10} {:>9} {:>10}", "method", "time s", "speedup", "$/speedup");
    for row in &rows {
        println!(
            "{:<24} {:>10.0} {:>8.0}x {:>10.0}",
            row.spec.method, row.time_s, row.speedup, row.price_per_speedup
        );
    }
    let best = rows
        .iter()
        .min_by(|a, b| a.price_per_speedup.partial_cmp(&b.price_per_speedup).unwrap())
        .unwrap();
    println!(
        "\n# most efficient platform by $/speedup: {} ({:.0} $/x)",
        best.spec.method,
        PriceModel::price_per_speedup(best.price_usd, best.speedup)
    );
    println!("# paper: P100 most efficient, 8-core CPU least efficient; tuning");
    println!("# takes the DGX from worst $/speedup towards the GPU's range.");
}
