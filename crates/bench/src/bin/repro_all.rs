//! Runs every reproduction binary in sequence (light/default settings) and
//! prints a combined report. Useful as a one-shot "regenerate the paper"
//! entry point:
//!
//! ```text
//! cargo run --release -p dls-bench --bin repro_all
//! ```

use std::process::Command;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let exe_dir = std::env::current_exe()
        .expect("current exe path")
        .parent()
        .expect("exe has a parent dir")
        .to_path_buf();

    let runs: Vec<(&str, Vec<&str>)> = vec![
        ("repro_table2", vec![]),
        ("repro_table5", vec![]),
        ("repro_table4", if quick { vec!["512"] } else { vec!["1024"] }),
        ("repro_fig2", if quick { vec!["1024"] } else { vec!["4096"] }),
        ("repro_fig3", if quick { vec!["1024"] } else { vec!["4096"] }),
        ("repro_fig4", if quick { vec!["1024"] } else { vec!["2048"] }),
        ("repro_fig1_table3", if quick { vec!["20"] } else { vec!["40"] }),
        ("repro_table6", if quick { vec!["20"] } else { vec!["40"] }),
        ("repro_fig7", if quick { vec!["20"] } else { vec!["40"] }),
        ("repro_selector_ablation", if quick { vec!["10"] } else { vec!["20"] }),
        ("repro_derived_formats", if quick { vec!["1024"] } else { vec!["2048"] }),
        ("repro_cache_ablation", vec![]),
        ("repro_density_sweep", if quick { vec!["512"] } else { vec!["1024"] }),
        ("repro_batch_sweep", if quick { vec!["--quick"] } else { vec![] }),
        ("repro_lr_momentum", if quick { vec!["--quick"] } else { vec![] }),
        ("repro_table7_fig5_fig6", if quick { vec!["--quick"] } else { vec![] }),
    ];

    let mut failures = Vec::new();
    for (bin, args) in &runs {
        println!("\n================ {bin} {} ================\n", args.join(" "));
        let status = Command::new(exe_dir.join(bin))
            .args(args)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        if !status.success() {
            failures.push(*bin);
        }
    }
    println!("\n================ summary ================");
    if failures.is_empty() {
        println!("all {} reproductions completed", runs.len());
    } else {
        println!("FAILED: {failures:?}");
        std::process::exit(1);
    }
}
