//! Cross-machine online-learning evaluation: a selector trained on one
//! `dls-hw` machine profile is deployed under another, and the online
//! retraining loop (production telemetry merged with the synthetic prior)
//! is graded against the frozen model it replaces.
//!
//! Each platform's [`dls_hw::Platform::format_bandwidth`] profile induces a
//! different labelling oracle over the same synthetic grid — CPUs stream
//! CSR/COO near peak while wide-SIMD/SIMT machines favour the regular
//! formats — so a CART frozen at training time carries the *training*
//! machine's format ranking to the test machine. The online path instead
//! sees production sweeps measured under the test machine's oracle,
//! retrains, and (second cycle) plateaus into the bagged forest. Both are
//! graded on held-out grid matrices the retrainer never fit, under the
//! test machine's oracle: agreement with its winner and regret (how much
//! slower the pick is than that winner).
//!
//! Usage: `repro_selector_online [--quick] [--check] [--seed N] [out.json]`
//! (default out: `BENCH_selector.json`). `--check` exits non-zero unless
//! online and ensemble mean regret are no worse than the frozen CART's on
//! every cross-machine pair.

use dls_core::json::JsonValue;
use dls_core::{LayoutScheduler, SelectionStrategy};
use dls_hw::{Platform, PLATFORMS};
use dls_learn::{
    evaluate, retrain_online, training_grid, DecisionTree, EvalSummary, GridConfig, LabelMode,
    LabeledObservation, OnlineTrainConfig, TreeParams,
};
use dls_sparse::Format;

/// Machine the frozen model is trained on (the paper's measurement host).
const TRAIN_PLATFORM: &str = "8-core CPU";

struct PairResult {
    test_platform: &'static str,
    rows: Vec<EvalSummary>,
    ensemble_size: usize,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check = args.iter().any(|a| a == "--check");
    let seed = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| GridConfig::default().seed);
    let out_path = args
        .iter()
        .enumerate()
        .filter(|(i, a)| !a.starts_with("--") && (*i == 0 || args[i - 1] != "--seed"))
        .map(|(_, a)| a)
        .find(|a| a.ends_with(".json"))
        .cloned()
        .unwrap_or_else(|| "BENCH_selector.json".into());

    let train_platform =
        Platform::by_name(TRAIN_PLATFORM).expect("train platform exists in dls-hw");
    println!("# Online selector — cross-machine regret (train on {TRAIN_PLATFORM})");
    println!("# grid={} seed={seed}\n", if quick { "quick" } else { "full" });

    // One grid, labelled per platform: the matrices are shared, only the
    // bandwidth profile (and hence the winning format) changes.
    let grid_cfg = GridConfig { seed, quick, ..Default::default() };
    let cases = training_grid(&grid_cfg);
    let label_under = |p: &Platform| {
        let mode = LabelMode::Analytic { bandwidth: p.format_bandwidth() };
        cases.iter().map(|c| dls_learn::label_case(&c.desc, &c.matrix, mode)).collect::<Vec<_>>()
    };
    let stride = 5usize;
    let is_holdout = |i: usize| i % stride == stride - 1;

    // Frozen CART: fitted once, on the training machine's oracle.
    let train_samples = label_under(train_platform);
    let xs: Vec<_> = train_samples
        .iter()
        .enumerate()
        .filter(|(i, _)| !is_holdout(*i))
        .map(|(_, s)| s.x)
        .collect();
    let ys: Vec<_> = train_samples
        .iter()
        .enumerate()
        .filter(|(i, _)| !is_holdout(*i))
        .map(|(_, s)| s.label)
        .collect();
    let frozen = DecisionTree::train(&xs, &ys, TreeParams::default());

    let rules = LayoutScheduler::with_strategy(SelectionStrategy::RuleBased);
    let cfg = OnlineTrainConfig { seed, quick_grid: quick, ..Default::default() };
    let mut pairs: Vec<PairResult> = Vec::new();

    for test_platform in &PLATFORMS {
        let test_samples = label_under(test_platform);
        let holdout: Vec<_> = test_samples
            .iter()
            .enumerate()
            .filter(|(i, _)| is_holdout(*i))
            .map(|(_, s)| s.clone())
            .collect();

        // Production telemetry on the test machine: every format's sweep
        // time for the matrices production actually served (the train
        // split — the holdout stays unseen by every learner).
        let observations: Vec<LabeledObservation> = test_samples
            .iter()
            .enumerate()
            .filter(|(i, _)| !is_holdout(*i))
            .flat_map(|(i, s)| {
                Format::BASIC.iter().enumerate().map(move |(k, &format)| LabeledObservation {
                    seq: (i * Format::BASIC.len() + k) as u64,
                    features: s.features,
                    format,
                    block: 1,
                    batch: 1,
                    nanos: ((s.scores[k] * 1e9).max(1.0)) as u64,
                })
            })
            .collect();

        // Cycle 1 publishes a fresh tree; cycle 2 sees no accuracy gain
        // over it and plateaus into the bagged forest.
        let first = retrain_online(&cfg, &observations, None);
        let second = retrain_online(&cfg, &observations, Some(first.holdout_accuracy));

        let grade = |name: &str, picks: Vec<Format>| evaluate(name, &holdout, &picks);
        let rows = vec![
            grade("oracle", holdout.iter().map(|s| s.label).collect()),
            grade(
                "rule(paper)",
                cases
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| is_holdout(*i))
                    .map(|(_, c)| rules.select_only(&c.matrix).chosen)
                    .collect(),
            ),
            grade("frozen", holdout.iter().map(|s| frozen.predict(&s.x)).collect()),
            grade("online", holdout.iter().map(|s| first.model.predict(&s.x)).collect()),
            grade("ensemble", holdout.iter().map(|s| second.model.predict(&s.x)).collect()),
        ];

        println!(
            "## test machine: {} ({} production sweeps, forest of {})",
            test_platform.name,
            observations.len(),
            second.model.ensemble_size()
        );
        println!(
            "{:<12} {:>5}  {:>10}  {:>12}  {:>11}",
            "selector", "n", "agreement", "mean regret", "max regret"
        );
        for row in &rows {
            println!("{}", row.render_row());
        }
        println!();

        pairs.push(PairResult {
            test_platform: test_platform.name,
            rows,
            ensemble_size: second.model.ensemble_size(),
        });
    }

    let summary_json = |e: &EvalSummary| {
        JsonValue::obj([
            ("selector", JsonValue::from(e.name.as_str())),
            ("n", JsonValue::from(e.n as u64)),
            ("agreement", JsonValue::from(e.agreement)),
            ("mean_regret", JsonValue::from(e.mean_regret)),
            ("max_regret", JsonValue::from(e.max_regret)),
        ])
    };
    let doc = JsonValue::obj([
        ("bench", JsonValue::from("selector_online")),
        ("grid", JsonValue::from(if quick { "quick" } else { "full" })),
        ("seed", JsonValue::from(seed)),
        ("train_platform", JsonValue::from(TRAIN_PLATFORM)),
        (
            "pairs",
            JsonValue::Arr(
                pairs
                    .iter()
                    .map(|p| {
                        JsonValue::obj([
                            ("test_platform", JsonValue::from(p.test_platform)),
                            ("ensemble_size", JsonValue::from(p.ensemble_size as u64)),
                            (
                                "selectors",
                                JsonValue::Arr(p.rows.iter().map(summary_json).collect()),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    std::fs::write(&out_path, doc.to_json_pretty()).expect("write json");
    println!("# wrote {out_path}");

    // The gate the CI runs: crossing machines, the online loop must be at
    // least as good as the model it hot-swaps out. (A hair of slack covers
    // float jitter in the regret means; the win is usually decisive.)
    if check {
        let mut failures = Vec::new();
        for p in &pairs {
            if p.test_platform == TRAIN_PLATFORM {
                continue; // same-machine row is a sanity baseline, not a gate
            }
            let regret_of = |name: &str| {
                p.rows.iter().find(|r| r.name == name).map(|r| r.mean_regret).unwrap_or(f64::NAN)
            };
            let frozen_r = regret_of("frozen");
            for name in ["online", "ensemble"] {
                let r = regret_of(name);
                if r.is_nan() || r > frozen_r + 1e-9 {
                    failures.push(format!(
                        "{}: {name} mean regret {:.4} > frozen {:.4}",
                        p.test_platform, r, frozen_r
                    ));
                }
            }
        }
        if failures.is_empty() {
            println!("# check: PASS — online/ensemble regret <= frozen on all cross-machine pairs");
        } else {
            for f in &failures {
                eprintln!("# check FAILED: {f}");
            }
            std::process::exit(1);
        }
    }
}
