//! Randomized, seeded chaos runs against a live dls-serve instance.
//!
//! For every seed the harness drives four scenarios against a real
//! loopback server, each with a watchdog armed:
//!
//! 1. **io-chaos** — the [`FaultPlan::from_seed`] preset (seeded rates of
//!    read/write delays, partial I/O, connection resets, execution
//!    delays, and registry failures) under a retrying client. Every
//!    completed predict must be bit-exact; every failure must be a typed
//!    response or a typed client error.
//! 2. **exec-chaos** — scripted kernel panics walk one model down the
//!    degradation ladder (degrade → quarantine) while its sibling keeps
//!    serving bit-exact answers.
//! 3. **hostile-client** — seeded mutated frames, truncations, oversized
//!    length prefixes, and mid-request disconnects from raw sockets; the
//!    server must classify, answer typed refusals where the protocol
//!    allows, and keep serving everyone else.
//! 4. **brown-out** — queue pressure from a paused executor trips the
//!    brown-out controller: batch submissions shed with `Busy`, the
//!    degradation counters move, and service recovers after release.
//!
//! After every scenario the plan is disarmed and a **clean probe** must
//! pass: a fresh connection gets a bit-exact predict, a well-formed stats
//! JSON exposing the `faults` and `degradation` sections, and an answered
//! `Health` frame. Any hang trips the watchdog (exit 2); any assertion
//! failure aborts the run (non-zero exit).
//!
//! Usage: `repro_chaos [--seeds N] [--base-seed S] [--smoke]
//! [--frontend threads|reactor]` (defaults: 32 seeds from base 1 against
//! the thread-per-connection front end; `--smoke` runs 8 unless
//! `--seeds` says otherwise and trims the per-scenario request counts
//! for CI). The same seeds drive the same scenarios against whichever
//! front end is selected — the PR-7 contract (zero hangs, zero
//! corrupted responses, clean probes) is frontend-independent.

use dls_core::json::JsonValue;
use dls_core::LayoutScheduler;
use dls_serve::fault::{flip_bit, FaultAction, FaultInjector, FaultPlan, FaultSite, SplitMix64};
use dls_serve::{
    BrownoutConfig, ClientError, ExecutorConfig, Frontend, ModelRegistry, PredictRequest, Request,
    RequestClass, Response, RetryClient, RetryPolicy, ServeClient, ServedModel, ServerConfig,
    ServerHandle,
};
use dls_sparse::SparseVec;
use dls_svm::{KernelKind, SvmModel};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const DIM: usize = 16;
/// Scenario heartbeat staleness that counts as a hang.
const WATCHDOG: Duration = Duration::from_secs(60);

fn chaos_model(salt: usize) -> SvmModel {
    let svs: Vec<SparseVec> = (0..6)
        .map(|i| {
            SparseVec::new(
                DIM,
                vec![i, i + 5, i + 10],
                vec![1.0 + (i + salt) as f64, -0.5 * i as f64 - 1.0, 0.25],
            )
        })
        .collect();
    SvmModel::new(
        KernelKind::Gaussian { gamma: 0.125 },
        svs,
        vec![1.0, -1.0, 0.5, -0.5, 0.75, -0.25],
        0.375,
    )
}

fn query(k: usize) -> SparseVec {
    SparseVec::new(DIM, vec![k % DIM], vec![1.0 + (k % 7) as f64 * 0.5])
}

fn serve(plan: Arc<FaultPlan>, executor: ExecutorConfig, frontend: Frontend) -> ServerHandle {
    let scheduler = LayoutScheduler::new();
    let registry = ModelRegistry::new()
        .with(ServedModel::new("m", chaos_model(0), &scheduler))
        .with(ServedModel::new("n", chaos_model(3), &scheduler));
    let config = ServerConfig {
        executor: ExecutorConfig { fault: FaultInjector::shared(plan), ..executor },
        frontend,
        // Chaos runs want prompt failure classification, not long stalls.
        read_timeout: Duration::from_millis(250),
        write_timeout: Duration::from_millis(250),
        idle_timeout: Duration::from_secs(5),
        ..Default::default()
    };
    dls_serve::start(registry, LayoutScheduler::new(), config).expect("bind loopback")
}

fn retry_client(addr: std::net::SocketAddr, seed: u64) -> RetryClient {
    let policy = RetryPolicy {
        max_attempts: 6,
        base_backoff: Duration::from_micros(200),
        max_backoff: Duration::from_millis(5),
        retry_budget: 10_000,
        retry_busy: true,
        seed,
    };
    let mut c = RetryClient::with_policy(addr.to_string(), policy);
    c.set_read_timeout(Some(Duration::from_millis(400)));
    c
}

/// Per-run outcome tallies, printed in the summary line.
#[derive(Default)]
struct Tally {
    ok: u64,
    refused: u64,
    typed_client_errors: u64,
    injected: u64,
}

/// Asserts the service is fully healthy with injection off: bit-exact
/// predict, parseable stats with the fault/degradation sections, and an
/// answered Health frame.
fn clean_probe(addr: std::net::SocketAddr, stage: &str) {
    let model = chaos_model(3); // "n" is never panicked by any scenario
    let mut c = ServeClient::connect(addr).unwrap_or_else(|e| panic!("{stage}: reconnect: {e}"));
    c.set_read_timeout(Some(Duration::from_secs(5))).expect("probe read timeout");
    let q = query(11);
    match c.send(&PredictRequest::builder("n").vector(q.clone()).build()) {
        Ok(Response::Predictions(values)) => {
            assert_eq!(
                values[0].to_bits(),
                model.decision_function(&q).to_bits(),
                "{stage}: clean probe served a corrupted value"
            );
        }
        other => panic!("{stage}: clean probe got {other:?}"),
    }
    let stats = c.stats().unwrap_or_else(|e| panic!("{stage}: stats: {e}"));
    let doc = dls_core::json::parse(&stats)
        .unwrap_or_else(|e| panic!("{stage}: stats JSON invalid: {e}"));
    for section in ["faults", "degradation"] {
        assert!(doc.get(section).is_some(), "{stage}: stats JSON lacks the {section:?} section");
    }
    match c.request(&Request::Health) {
        Ok(Response::Health(json)) => {
            let doc = dls_core::json::parse(&json)
                .unwrap_or_else(|e| panic!("{stage}: health JSON invalid: {e}"));
            assert!(doc.get("status").is_some(), "{stage}: health JSON lacks status");
        }
        other => panic!("{stage}: health got {other:?}"),
    }
}

/// Scenario 1: seeded fault rates under a retrying client.
fn io_chaos(seed: u64, requests: usize, frontend: Frontend, tally: &mut Tally) {
    let plan = Arc::new(FaultPlan::from_seed(seed));
    let handle = serve(Arc::clone(&plan), ExecutorConfig::default(), frontend);
    let addr = handle.local_addr();
    let model = chaos_model(0);
    let mut client = retry_client(addr, seed ^ 0xC11E);

    for k in 0..requests {
        let q = query(k);
        let req = Request::from(&PredictRequest::builder("m").vector(q.clone()).build());
        match client.request(&req) {
            Ok(Response::Predictions(values)) => {
                // The io-chaos preset never corrupts payloads, so every
                // completed answer must be bit-exact.
                assert_eq!(
                    values[0].to_bits(),
                    model.decision_function(&q).to_bits(),
                    "seed {seed}: corrupted response at request {k}"
                );
                tally.ok += 1;
            }
            Ok(Response::Busy | Response::TimedOut) => tally.refused += 1,
            Ok(Response::Error(msg)) => {
                assert!(
                    msg.contains("registry temporarily unavailable"),
                    "seed {seed}: unexpected typed error {msg:?}"
                );
                tally.refused += 1;
            }
            Ok(other) => panic!("seed {seed}: unexpected response {other:?}"),
            Err(e) => {
                // Exhausted retries under heavy fault rates are legal —
                // but only as *typed* errors.
                assert!(
                    matches!(
                        e,
                        ClientError::ConnectionLost(_)
                            | ClientError::Timeout
                            | ClientError::Protocol(_)
                    ),
                    "seed {seed}: untyped failure {e:?}"
                );
                tally.typed_client_errors += 1;
            }
        }
    }
    tally.injected += plan.injected();
    plan.disarm();
    drop(client); // release the connection so shutdown's drain is instant
    clean_probe(addr, &format!("seed {seed} io-chaos"));
    handle.shutdown();
}

/// Scenario 2: scripted exec panics walk the ladder; the sibling stays
/// bit-exact throughout.
fn exec_chaos(seed: u64, frontend: Frontend, tally: &mut Tally) {
    let script = vec![FaultAction::Panic; 3];
    let plan = Arc::new(FaultPlan::new(seed).script(FaultSite::Exec, script));
    let handle = serve(Arc::clone(&plan), ExecutorConfig::default(), frontend);
    let addr = handle.local_addr();
    let mut c = ServeClient::connect(addr).expect("connect");
    c.set_read_timeout(Some(Duration::from_secs(5))).expect("read timeout");

    for k in 0..3 {
        match c.send(&PredictRequest::builder("m").vector(query(k)).build()) {
            Ok(Response::Error(msg)) => {
                assert!(msg.contains("panicked"), "seed {seed}: panic {k} answered {msg:?}")
            }
            other => panic!("seed {seed}: panic {k} got {other:?}"),
        }
        tally.refused += 1;
    }
    match c.send(&PredictRequest::builder("m").vector(query(9)).build()) {
        Ok(Response::Error(msg)) => {
            assert!(msg.contains("quarantined"), "seed {seed}: expected quarantine, got {msg:?}")
        }
        other => panic!("seed {seed}: quarantine refusal got {other:?}"),
    }
    let sibling = chaos_model(3);
    match c.send(&PredictRequest::builder("n").vector(query(5)).build()) {
        Ok(Response::Predictions(values)) => {
            assert_eq!(
                values[0].to_bits(),
                sibling.decision_function(&query(5)).to_bits(),
                "seed {seed}: sibling corrupted during quarantine"
            );
            tally.ok += 1;
        }
        other => panic!("seed {seed}: sibling got {other:?}"),
    }
    tally.injected += plan.injected();
    plan.disarm();
    drop(c);
    clean_probe(addr, &format!("seed {seed} exec-chaos"));
    handle.shutdown();
}

/// Scenario 3: raw hostile frames — mutations of a valid request, lying
/// prefixes, and disconnects — must never take the service down.
fn hostile_client(seed: u64, frames: usize, frontend: Frontend, tally: &mut Tally) {
    use std::io::{Read, Write};
    let plan = Arc::new(FaultPlan::new(seed));
    plan.disarm(); // this scenario's hostility is real bytes, not injection
    let handle = serve(Arc::clone(&plan), ExecutorConfig::default(), frontend);
    let addr = handle.local_addr();
    let mut rng = SplitMix64::new(seed ^ 0x0571_1E11);

    let valid = dls_serve::proto::encode_request_version(
        &Request::from(&PredictRequest::builder("m").vector(query(1)).build()),
        dls_serve::PROTO_VERSION,
    );
    for _ in 0..frames {
        let mut stream = std::net::TcpStream::connect(addr).expect("connect hostile");
        stream.set_read_timeout(Some(Duration::from_millis(500))).ok();
        match rng.next_below(4) {
            0 => {
                // Mutated payload under an honest prefix: typed protocol
                // error (or an accidentally-valid request's answer).
                let mut payload = valid.clone();
                for _ in 0..1 + rng.next_below(8) {
                    flip_bit(&mut payload, rng.next_u64());
                }
                let _ = stream.write_all(&(payload.len() as u32).to_le_bytes());
                let _ = stream.write_all(&payload);
                let _ = stream.flush();
                let mut buf = [0u8; 256];
                let _ = stream.read(&mut buf); // any reply or close is fine
            }
            1 => {
                // A length prefix past MAX_FRAME_LEN: the server must
                // answer a typed refusal before closing.
                let lie = (dls_serve::MAX_FRAME_LEN as u32)
                    .saturating_add(1 + rng.next_u64() as u32 % 1024);
                let _ = stream.write_all(&lie.to_le_bytes());
                let _ = stream.flush();
                let mut reader = std::io::BufReader::new(&stream);
                match dls_serve::proto::read_frame(&mut reader) {
                    Ok(Some(frame)) => {
                        let resp = dls_serve::proto::decode_response(&frame)
                            .unwrap_or_else(|e| panic!("seed {seed}: refusal undecodable: {e}"));
                        assert!(
                            matches!(&resp, Response::Error(m) if m.contains("exceeds")),
                            "seed {seed}: oversized prefix answered {resp:?}"
                        );
                    }
                    other => panic!(
                        "seed {seed}: oversized prefix got {other:?} instead of a typed refusal"
                    ),
                }
            }
            2 => {
                // Truncated frame, then disconnect.
                let keep = rng.next_below(valid.len() as u64) as usize;
                let _ = stream.write_all(&(valid.len() as u32).to_le_bytes());
                let _ = stream.write_all(&valid[..keep]);
                let _ = stream.flush();
            }
            _ => {
                // Pure garbage, then disconnect.
                let junk: Vec<u8> = (0..rng.next_below(64)).map(|_| rng.next_u64() as u8).collect();
                let _ = stream.write_all(&junk);
                let _ = stream.flush();
            }
        }
        drop(stream);
        tally.refused += 1;
    }

    // Everyone else is unaffected, live, and bit-exact.
    clean_probe(addr, &format!("seed {seed} hostile-client"));
    tally.ok += 1;
    handle.shutdown();
}

/// Scenario 4: queue pressure trips the brown-out controller; batch work
/// sheds, counters move, and the service recovers once released.
fn brownout_chaos(seed: u64, frontend: Frontend, tally: &mut Tally) {
    let plan = Arc::new(FaultPlan::new(seed));
    plan.disarm();
    let executor = ExecutorConfig {
        queue_capacity: 8,
        gather: Duration::ZERO,
        predictive_admission: false,
        brownout: BrownoutConfig {
            enter_queue_pressure: 0.5,
            exit_queue_pressure: 0.25,
            min_dwell: Duration::ZERO,
            window: 8,
            ..Default::default()
        },
        ..Default::default()
    };
    let handle = serve(Arc::clone(&plan), executor, frontend);
    let addr = handle.local_addr();
    let exec = handle.executor();

    // Park the workers and pile up interactive work past the pressure
    // threshold.
    exec.pause(true);
    let mut queued = Vec::new();
    for k in 0..6 {
        match exec.submit_predict("m", vec![query(k)], RequestClass::Interactive, 0, 0) {
            Ok(rx) => queued.push(rx),
            Err(resp) => panic!("seed {seed}: interactive admission refused early: {resp:?}"),
        }
    }
    // The pressure re-check at submit engages the brown-out; batch work
    // now sheds with Busy.
    match exec.submit_predict("m", vec![query(9)], RequestClass::Batch, 0, 0) {
        Err(Response::Busy) => tally.refused += 1,
        other => panic!("seed {seed}: batch submission under brown-out got {other:?}"),
    }
    assert!(exec.is_browned_out(), "seed {seed}: controller did not engage under pressure");

    // Release: the parked work drains and the service answers again.
    exec.pause(false);
    for rx in queued {
        match rx.recv_timeout(Duration::from_secs(10)) {
            Ok(Response::Predictions(_) | Response::TimedOut) => tally.ok += 1,
            other => panic!("seed {seed}: parked job resolved to {other:?}"),
        }
    }
    // The ledger recorded the episode.
    let mut c = ServeClient::connect(addr).expect("connect");
    let doc = dls_core::json::parse(&c.stats().expect("stats")).expect("valid stats json");
    let degrade = |key: &str| {
        doc.get("degradation").and_then(|d| d.get(key)).and_then(JsonValue::as_u64).unwrap_or(0)
    };
    assert!(degrade("brownout_entries") >= 1, "seed {seed}: no brown-out entry recorded");
    assert!(degrade("batch_shed") >= 1, "seed {seed}: no batch shed recorded");
    drop(c);
    clean_probe(addr, &format!("seed {seed} brown-out"));
    handle.shutdown();
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
    };
    let seeds: u64 = flag("--seeds").unwrap_or(if smoke { 8 } else { 32 });
    let base_seed: u64 = flag("--base-seed").unwrap_or(1);
    let frontend: Frontend = args
        .iter()
        .position(|a| a == "--frontend")
        .and_then(|i| args.get(i + 1))
        .map_or(Ok(Frontend::Threads), |v| v.parse())
        .expect("--frontend takes threads|reactor");
    let io_requests = if smoke { 16 } else { 40 };
    let hostile_frames = if smoke { 8 } else { 16 };

    // Injected panics are part of the plan; keep their traces out of the
    // log so a *real* panic stands out (and still aborts the run).
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let msg = info.payload().downcast_ref::<&str>().copied().unwrap_or_default();
        if msg.contains("injected") {
            return;
        }
        default_hook(info);
    }));

    // The watchdog: scenarios must keep beating or the whole run is
    // declared hung. Exit code 2 distinguishes hangs from assertions.
    let heartbeat = Arc::new(AtomicU64::new(0));
    {
        let heartbeat = Arc::clone(&heartbeat);
        std::thread::spawn(move || {
            let mut last = heartbeat.load(Ordering::SeqCst);
            let mut last_change = Instant::now();
            loop {
                std::thread::sleep(Duration::from_millis(500));
                let now = heartbeat.load(Ordering::SeqCst);
                if now != last {
                    last = now;
                    last_change = Instant::now();
                } else if last_change.elapsed() > WATCHDOG {
                    eprintln!("WATCHDOG: chaos harness hung for {WATCHDOG:?}; aborting");
                    std::process::exit(2);
                }
            }
        });
    }

    println!(
        "# repro_chaos: {seeds} seeds from {base_seed} ({}, frontend {frontend}), \
         watchdog {WATCHDOG:?}",
        if smoke { "smoke" } else { "full" }
    );
    let started = Instant::now();
    let mut total = Tally::default();
    for i in 0..seeds {
        let seed = base_seed + i;
        let mut tally = Tally::default();
        let mut timing = String::new();
        for (name, run) in [
            (
                "io",
                &mut (|t: &mut Tally| io_chaos(seed, io_requests, frontend, t))
                    as &mut dyn FnMut(&mut Tally),
            ),
            ("exec", &mut |t: &mut Tally| exec_chaos(seed, frontend, t)),
            ("hostile", &mut |t: &mut Tally| hostile_client(seed, hostile_frames, frontend, t)),
            ("brownout", &mut |t: &mut Tally| brownout_chaos(seed, frontend, t)),
        ] {
            let at = Instant::now();
            run(&mut tally);
            timing.push_str(&format!(" {name}={:.2}s", at.elapsed().as_secs_f64()));
            heartbeat.fetch_add(1, Ordering::SeqCst);
        }
        println!(
            "# seed {seed}: ok={} refused={} typed_errors={} injected={} |{timing}",
            tally.ok, tally.refused, tally.typed_client_errors, tally.injected
        );
        total.ok += tally.ok;
        total.refused += tally.refused;
        total.typed_client_errors += tally.typed_client_errors;
        total.injected += tally.injected;
    }
    println!(
        "# chaos OK: {seeds} seeds in {:.1}s — {} bit-exact answers, {} typed refusals, \
         {} typed client errors, {} injected faults, zero hangs, zero corrupted responses",
        started.elapsed().as_secs_f64(),
        total.ok,
        total.refused,
        total.typed_client_errors,
        total.injected
    );
}
