//! Ablation: kernel-row cache budget vs SMO cost.
//!
//! The paper's SMO bottleneck is two SMSVs per iteration; the LRU kernel
//! cache (Joachims' technique, standard in LIBSVM) removes SMSVs whose
//! rows were computed before. This sweep measures hit rate and wall-clock
//! against the cache budget, on a problem large enough for the working set
//! to revisit rows.

use dls_core::LayoutScheduler;
use dls_data::labels::linear_teacher_labels;
use dls_data::{generate, DatasetSpec};
use dls_svm::{train_with_stats, KernelKind, SmoParams};
use std::time::Instant;

fn main() {
    let spec = DatasetSpec::by_name("adult").expect("known dataset").scaled(2);
    let t = generate(&spec, 42);
    let y = linear_teacher_labels(&t, 0.05, 7);
    let scheduled = LayoutScheduler::new().schedule(&t);
    println!(
        "# Kernel-cache ablation on adult/2 ({} rows, format {})",
        t.rows(),
        scheduled.format()
    );
    println!("# Gaussian kernel, run to convergence\n");
    println!(
        "{:<14} {:>10} {:>12} {:>12} {:>10} {:>12}",
        "cache budget", "iters", "SMSVs", "cache hits", "hit rate", "seconds"
    );

    for budget in [0usize, 64 << 10, 512 << 10, 4 << 20, 64 << 20] {
        let params = SmoParams {
            kernel: KernelKind::Gaussian { gamma: 0.5 },
            cache_bytes: budget,
            max_iterations: 20_000,
            ..Default::default()
        };
        let start = Instant::now();
        let (_, stats) = train_with_stats(scheduled.matrix(), &y, &params).expect("valid problem");
        let secs = start.elapsed().as_secs_f64();
        let total = stats.smsv_count + stats.cache_hits;
        let rate = if total > 0 { stats.cache_hits as f64 / total as f64 } else { 0.0 };
        println!(
            "{:<14} {:>10} {:>12} {:>12} {:>9.1}% {:>12.3}",
            human(budget),
            stats.iterations,
            stats.smsv_count,
            stats.cache_hits,
            rate * 100.0,
            secs
        );
    }
    println!("\n# Shape check: hit rate rises with budget (SMO revisits margin");
    println!("# points), SMSV count falls, wall-clock follows the SMSV count.");
}

fn human(bytes: usize) -> String {
    if bytes >= 1 << 20 {
        format!("{} MiB", bytes >> 20)
    } else if bytes >= 1 << 10 {
        format!("{} KiB", bytes >> 10)
    } else {
        format!("{bytes} B")
    }
}
