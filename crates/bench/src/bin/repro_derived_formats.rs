//! Extension study: the derived formats (paper §III-A "most of the other
//! storage formats can be derived from these basic formats") measured
//! against the basic five on workloads chosen to stress them.
//!
//! * **HYB** (ELL slab + COO spill) on skewed row lengths — bounded padding.
//! * **JDS** (length-sorted jagged diagonals) on the same — zero padding.
//! * **CSC** when the SMSV right-hand side is much sparser than the rows.
//! * **BCSR** on blocky matrices.

use dls_bench::time_smsv;
use dls_data::controlled::{mdim_matrix, vdim_matrix};
use dls_sparse::{AnyMatrix, Format, MatrixFormat, TripletMatrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn show(label: &str, t: &TripletMatrix, formats: &[Format]) {
    println!("\n## {label}  (M={}, N={}, nnz={})", t.rows(), t.cols(), t.nnz());
    println!("{:<6} {:>14} {:>14} {:>10}", "format", "storage elems", "seconds", "speedup");
    let mut times = Vec::new();
    for &fmt in formats {
        let m = AnyMatrix::from_triplets(fmt, t);
        let secs = time_smsv(&m, 7);
        times.push((fmt, m.storage_elems(), secs));
    }
    let slowest = times.iter().map(|x| x.2).fold(0.0, f64::max);
    for (fmt, elems, secs) in times {
        println!("{:<6} {elems:>14} {secs:>14.3e} {:>9.2}x", fmt.name(), slowest / secs);
    }
}

fn blocky_matrix(m: usize, n: usize, blocks: usize, seed: u64) -> TripletMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = TripletMatrix::new(m, n);
    for _ in 0..blocks {
        let bi = rng.gen_range(0..m / 4) * 4;
        let bj = rng.gen_range(0..n / 4) * 4;
        for di in 0..4 {
            for dj in 0..4 {
                t.push(bi + di, bj + dj, 1.0 - rng.gen::<f64>());
            }
        }
    }
    t.compact()
}

fn main() {
    let size: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(2048);
    println!("# Derived formats vs the paper's basic five (SMSV timing)");
    let all = [
        Format::Ell,
        Format::Csr,
        Format::Coo,
        Format::Dia,
        Format::Hyb,
        Format::Jds,
        Format::Csc,
        Format::Bcsr,
    ];

    // Skewed rows: ELL's pathology, HYB/JDS's home turf.
    let skewed = mdim_matrix(size, size, 2 * size, size, 3);
    show("skewed rows (one full row, mdim = M)", &skewed, &all);

    // Moderate imbalance.
    let imbalanced = vdim_matrix(size, 2 * size, size * 16, 1024.0, 5);
    show("imbalanced rows (vdim = 1024)", &imbalanced, &all);

    // Blocky: BCSR's home turf.
    let blocky = blocky_matrix(size, size, size / 8, 7);
    show("4x4 blocky structure", &blocky, &all);

    println!("\n# Shape check: HYB/JDS should dominate ELL on the skewed workload");
    println!("# (bounded/zero padding) and stay competitive with CSR elsewhere;");
    println!("# BCSR's single index per 16 elements pays off on the blocky one.");
    println!("#");
    println!("# CSC caveat: raw SMSV flatters CSC enormously (it touches only the");
    println!("# columns in the probe vector's support — the paper's related-work");
    println!("# point that the *vector's* format matters). Full SMO also needs");
    println!("# row extraction, which costs CSC O(N log nnz_col) per row and");
    println!("# erases that advantage; see repro_selector_ablation for end-to-end");
    println!("# SMO numbers.");
}
