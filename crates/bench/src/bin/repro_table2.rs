//! Reproduces **Table II**: minimum and maximum storage space per format,
//! and verifies the formulas against actually-constructed matrices.

use dls_sparse::storage::{max_storage_elems, min_storage_elems};
use dls_sparse::{AnyMatrix, Format, MatrixFormat, TripletMatrix};

fn main() {
    let (m, n) = (64usize, 48usize);
    println!("# Table II — storage space (elements) for an {m}x{n} matrix\n");
    println!(
        "{:<8} {:>12} {:>12} {:>16} {:>16}",
        "format", "min", "max", "actual@1nnz", "actual@dense"
    );

    let single = TripletMatrix::from_entries(m, n, vec![(m / 2, n / 2, 1.0)]).unwrap().compact();
    let dense = TripletMatrix::from_dense(m, n, &vec![1.0; m * n]);

    for fmt in Format::BASIC {
        let lo = min_storage_elems(fmt, m, n);
        let hi = max_storage_elems(fmt, m, n);
        let actual_single = AnyMatrix::from_triplets(fmt, &single).storage_elems();
        let actual_dense = AnyMatrix::from_triplets(fmt, &dense).storage_elems();
        println!("{:<8} {lo:>12} {hi:>12} {actual_single:>16} {actual_dense:>16}", fmt.name());
    }

    println!("\n# Paper formulas: DEN M*N | CSR O(M+2)..2MN+M | COO O(1)..3MN");
    println!("#                ELL O(2M)..2MN | DIA O(M+1)..(min(M,N)+1)(M+N-1)");
    println!("# A single-nnz matrix sits at each format's min; a dense one at its max");
    println!("# (DIA's row-padded variant stores M slots/diagonal, = the paper's");
    println!("#  min(M,N) exactly when M <= N).");
}
