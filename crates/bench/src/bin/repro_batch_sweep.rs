//! Reproduces the **§IV-C batch-size study**: how batch size trades
//! per-iteration cost against convergence rate on real SGD runs.
//!
//! The paper: "the computational cost per iteration increases at the speed
//! of Θ(B) while number of iterations (convergence rate) decreases at the
//! speed lower than Θ(B)"; B = 512 wins on the DGX station.

use dls_dnn::tuning::batch;
use dls_dnn::{CifarLikeConfig, Dataset, TrainerConfig};
use dls_hw::{Platform, ThroughputModel};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let ds = Dataset::cifar_like(if quick {
        CifarLikeConfig { train: 600, test: 200, noise: 1.2, ..Default::default() }
    } else {
        CifarLikeConfig::default()
    });
    let base = TrainerConfig { target_accuracy: 0.8, max_epochs: 120, ..Default::default() };
    let topology = [ds.dim(), 32, ds.classes()];
    let mut batches: Vec<usize> =
        batch::PAPER_BATCH_SPACE.iter().map(|&b| b.min(ds.n_train())).collect();
    batches.dedup();

    println!("# §IV-C — batch-size sweep to 0.8 accuracy on the CIFAR-like twin");
    println!("# ({} train samples; batches capped at the dataset size)\n", ds.n_train());
    println!(
        "{:<8} {:>9} {:>8} {:>9} {:>9} {:>14}",
        "B", "iters", "epochs", "accuracy", "reached", "DGX model s"
    );

    let dgx = ThroughputModel::new(*Platform::by_name("DGX").unwrap());
    let points = batch::sweep(&ds, &topology, 9, &base, &batches);
    for p in &points {
        // Iterations scaled to a CIFAR-10-sized epoch for the DGX model.
        let iters_per_epoch_cifar = 50_000usize.div_ceil(p.batch_size);
        let scaled_iters = p.outcome.epochs * iters_per_epoch_cifar;
        println!(
            "{:<8} {:>9} {:>8} {:>9.3} {:>9} {:>14.0}",
            p.batch_size,
            p.outcome.iterations,
            p.outcome.epochs,
            p.outcome.final_accuracy,
            p.outcome.reached,
            dgx.time_for(scaled_iters, p.batch_size)
        );
    }
    println!("\n# Shape check: epochs grow with B (sharp-minimum effect) while");
    println!("# modelled DGX time bottoms out at an intermediate B — the paper");
    println!("# found that sweet spot at B = 512.");
}
