//! Timing utilities for the repro harness.

use dls_sparse::telemetry::{InstrumentedMatrix, SmsvCounters};
use dls_sparse::{AnyMatrix, Format, MatrixFormat, Scalar, TripletMatrix};
use dls_svm::{SmoParams, WorkingSetSelection};
use std::sync::Arc;
use std::time::Instant;

/// Median wall-clock seconds of one SMSV over `reps` repetitions, using
/// rows of the matrix itself as right-hand sides (the SMO access pattern).
pub fn time_smsv(m: &AnyMatrix, reps: usize) -> f64 {
    assert!(reps >= 1);
    let rows = m.rows();
    let probes: Vec<_> = (0..4.min(rows)).map(|k| m.row_sparse(k * (rows - 1) / 3)).collect();
    let mut out = vec![0.0; rows];
    // Warm-up.
    m.smsv(&probes[0], &mut out);
    let mut times: Vec<f64> = (0..reps)
        .map(|r| {
            let start = Instant::now();
            m.smsv(&probes[r % probes.len()], &mut out);
            start.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    times[times.len() / 2]
}

/// Wall-clock seconds for a fixed number of SMO iterations on the matrix in
/// a given format. The kernel cache is disabled so every iteration pays its
/// two SMSVs — isolating the layout effect the paper measures.
pub fn time_smo_iterations(
    t: &TripletMatrix,
    y: &[Scalar],
    format: Format,
    iterations: usize,
) -> f64 {
    let m = AnyMatrix::from_triplets(format, t);
    let params = SmoParams {
        c: 1.0,
        kernel: dls_svm::KernelKind::Linear,
        tolerance: 1e-12, // don't let convergence cut the measurement short
        max_iterations: iterations,
        cache_bytes: 0,
        selection: WorkingSetSelection::FirstOrder,
        threads: 1,
        shrinking: false,
        positive_weight: 1.0,
        block_size: 1,
    };
    let start = Instant::now();
    let _ = dls_svm::train_with_stats(&m, y, &params).expect("valid training inputs");
    start.elapsed().as_secs_f64()
}

/// Like [`time_smo_iterations`], but runs the matrix behind an
/// [`InstrumentedMatrix`] so per-format SMSV telemetry accumulates in
/// `counters` while the iterations are timed.
pub fn time_smo_iterations_telemetry(
    t: &TripletMatrix,
    y: &[Scalar],
    format: Format,
    iterations: usize,
    counters: &Arc<SmsvCounters>,
) -> f64 {
    let m = InstrumentedMatrix::new(AnyMatrix::from_triplets(format, t), counters.clone());
    let params = SmoParams {
        c: 1.0,
        kernel: dls_svm::KernelKind::Linear,
        tolerance: 1e-12,
        max_iterations: iterations,
        cache_bytes: 0,
        selection: WorkingSetSelection::FirstOrder,
        threads: 1,
        shrinking: false,
        positive_weight: 1.0,
        block_size: 1,
    };
    let start = Instant::now();
    let _ = dls_svm::train_with_stats(&m, y, &params).expect("valid training inputs");
    start.elapsed().as_secs_f64()
}

/// Normalises a set of `(label, seconds)` measurements to speedups over the
/// slowest entry (the paper's Figure 1 convention).
pub fn normalise_to_slowest<L: Clone>(times: &[(L, f64)]) -> Vec<(L, f64)> {
    let slowest = times.iter().map(|(_, t)| *t).fold(0.0, f64::max);
    times.iter().map(|(l, t)| (l.clone(), slowest / t)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dls_data::controlled::diag_matrix;

    #[test]
    fn normalise_slowest_gets_one() {
        let out = normalise_to_slowest(&[("a", 2.0), ("b", 4.0), ("c", 1.0)]);
        assert_eq!(out[1], ("b", 1.0));
        assert_eq!(out[2].1, 4.0);
        assert_eq!(out[0].1, 2.0);
    }

    #[test]
    fn smsv_timer_returns_positive() {
        let t = diag_matrix(64, 64, 256, 4, 1);
        let m = AnyMatrix::from_triplets(Format::Csr, &t);
        assert!(time_smsv(&m, 3) > 0.0);
    }

    #[test]
    fn smo_timer_runs_fixed_iterations() {
        let t = diag_matrix(32, 32, 64, 2, 2);
        let y: Vec<f64> = (0..32).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
        let secs = time_smo_iterations(&t, &y, Format::Csr, 5);
        assert!(secs > 0.0);
    }
}
