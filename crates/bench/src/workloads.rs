//! Scaled workload construction shared by the repro binaries and benches.
//!
//! The huge dense sets (gisette 30M nnz, epsilon 780M, dna 720M) are scaled
//! down — format selection depends only on the influencing parameters, not
//! on absolute size — while the sparse sets run at (or near) full Table V
//! size.

use dls_data::labels::linear_teacher_labels;
use dls_data::{generate, DatasetSpec};
use dls_sparse::{Scalar, TripletMatrix};

/// A named dataset ready for the SVM harness.
pub struct Workload {
    /// Dataset name (paper Table V).
    pub name: &'static str,
    /// The data matrix in interchange form.
    pub matrix: TripletMatrix,
    /// ±1 labels from a linear teacher.
    pub labels: Vec<Scalar>,
    /// The (possibly scaled) spec the twin was generated from.
    pub spec: DatasetSpec,
}

/// Scale factor applied to each dataset so a full repro run completes in
/// minutes on one core. Chosen per dataset: dense giants shrink hard,
/// sparse sets barely or not at all.
pub fn default_scale(name: &str) -> usize {
    match name {
        "gisette" => 8,   // 6000x5000 dense -> 750x625
        "epsilon" => 400, // 390k x 2000 dense -> 975x5... still dense
        "dna" => 2_000,   // 3.6M x 200 dense -> 1800x...
        "sector" => 4,    // 55k features is fine; fewer rows for speed
        _ => 1,
    }
}

/// Builds one workload by name (panics on unknown names — these are fixed
/// experiment inputs, not user data).
pub fn workload(name: &str, seed: u64) -> Workload {
    let spec = DatasetSpec::by_name(name)
        .unwrap_or_else(|| panic!("unknown dataset {name}"))
        .scaled(default_scale(name));
    let matrix = generate(&spec, seed);
    let labels = linear_teacher_labels(&matrix, 0.05, seed ^ 0xBEEF);
    Workload { name: spec.name, matrix, labels, spec }
}

/// The five datasets of Figure 1 / Table III.
pub fn fig1_workloads(seed: u64) -> Vec<Workload> {
    dls_data::specs::FIG1_DATASETS.iter().map(|n| workload(n, seed)).collect()
}

/// The nine datasets of Table VI.
pub fn table6_workloads(seed: u64) -> Vec<Workload> {
    dls_data::specs::TABLE6_DATASETS.iter().map(|n| workload(n, seed)).collect()
}
