//! Criterion bench for Figure 1 / Table III: SMSV time per storage format
//! on (scaled) twins of the paper's five datasets.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dls_data::labels::linear_teacher_labels;
use dls_data::{generate, DatasetSpec};
use dls_sparse::{AnyMatrix, Format, MatrixFormat};

fn bench_formats(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1_smsv");
    group.sample_size(20);
    for name in ["adult", "aloi", "mnist", "gisette", "trefethen"] {
        // Extra scaling on top of the defaults keeps criterion's many
        // samples fast.
        let scale = match name {
            "gisette" => 12,
            "adult" | "trefethen" => 2,
            _ => 1,
        };
        let spec = DatasetSpec::by_name(name).unwrap().scaled(scale);
        let t = generate(&spec, 42);
        let _ = linear_teacher_labels(&t, 0.0, 1);
        for fmt in Format::BASIC {
            let m = AnyMatrix::from_triplets(fmt, &t);
            let v = m.row_sparse(0);
            let mut out = vec![0.0; m.rows()];
            group.bench_with_input(
                BenchmarkId::new(name, fmt.name()),
                &m,
                |b, m| b.iter(|| m.smsv(&v, &mut out)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_formats);
criterion_main!(benches);
