//! Criterion bench for Figure 1 / Table III: SMSV time per storage format
//! on (scaled) twins of the paper's five datasets.
//!
//! Each format also gets a `<fmt>+telemetry` series running the same SMSV
//! behind [`InstrumentedMatrix`] — the delta between the two is the
//! monitoring overhead, which must stay small (target ≤5%) for telemetry
//! to be always-on in the reactive scheduler.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dls_data::labels::linear_teacher_labels;
use dls_data::{generate, DatasetSpec};
use dls_sparse::{AnyMatrix, Format, InstrumentedMatrix, MatrixFormat, SmsvCounters};

fn bench_formats(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1_smsv");
    group.sample_size(20);
    for name in ["adult", "aloi", "mnist", "gisette", "trefethen"] {
        // Extra scaling on top of the defaults keeps criterion's many
        // samples fast.
        let scale = match name {
            "gisette" => 12,
            "adult" | "trefethen" => 2,
            _ => 1,
        };
        let spec = DatasetSpec::by_name(name).unwrap().scaled(scale);
        let t = generate(&spec, 42);
        let _ = linear_teacher_labels(&t, 0.0, 1);
        for fmt in Format::BASIC {
            let m = AnyMatrix::from_triplets(fmt, &t);
            let v = m.row_sparse(0);
            let mut out = vec![0.0; m.rows()];
            group.bench_with_input(BenchmarkId::new(name, fmt.name()), &m, |b, m| {
                b.iter(|| m.smsv(&v, &mut out))
            });
            let instrumented =
                InstrumentedMatrix::new(AnyMatrix::from_triplets(fmt, &t), SmsvCounters::shared());
            let mut out = vec![0.0; instrumented.rows()];
            group.bench_with_input(
                BenchmarkId::new(name, format!("{}+telemetry", fmt.name())),
                &instrumented,
                |b, m| b.iter(|| m.smsv(&v, &mut out)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_formats);
criterion_main!(benches);
