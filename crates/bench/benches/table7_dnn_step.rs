//! Criterion bench backing Table VII's cost-per-iteration premise: one SGD
//! step (forward + backward + update) scales ~linearly in the batch size,
//! while larger batches amortise fixed costs (§IV-C).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dls_dnn::loss::softmax_cross_entropy;
use dls_dnn::optim::Sgd;
use dls_dnn::{CifarLikeConfig, Dataset, Network, SgdConfig};

fn bench_step(c: &mut Criterion) {
    let ds = Dataset::cifar_like(CifarLikeConfig { train: 1024, test: 64, ..Default::default() });
    let mut group = c.benchmark_group("table7_sgd_step");
    group.sample_size(10);
    for batch in [16usize, 64, 256, 1024] {
        let mut net = Network::mlp(&[ds.dim(), 32, ds.classes()], 9);
        let mut opt = Sgd::new(SgdConfig::default(), &mut net);
        let idx: Vec<usize> = (0..batch).collect();
        let (x, y) = ds.train_batch(&idx);
        group.throughput(Throughput::Elements(batch as u64));
        group.bench_with_input(BenchmarkId::from_parameter(batch), &x, |b, x| {
            b.iter(|| {
                let logits = net.forward(x);
                let (_, grad) = softmax_cross_entropy(&logits, &y);
                net.zero_grads();
                net.backward(&grad);
                opt.step(&mut net);
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_step);
criterion_main!(benches);
