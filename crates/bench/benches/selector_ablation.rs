//! Ablation bench (DESIGN.md decision 1): cost of the three selection
//! strategies themselves — rules are O(1) over extracted features, the
//! cost model is arithmetic, the empirical tuner materialises and times
//! all five candidates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dls_core::{LayoutScheduler, SelectionStrategy};
use dls_data::{generate, DatasetSpec};

fn bench_selectors(c: &mut Criterion) {
    let mut group = c.benchmark_group("selector_ablation");
    group.sample_size(10);
    for name in ["adult", "trefethen"] {
        let spec = DatasetSpec::by_name(name).unwrap().scaled(4);
        let t = generate(&spec, 42);
        for (label, strategy) in [
            ("rule", SelectionStrategy::RuleBased),
            ("cost", SelectionStrategy::CostModel),
            ("empirical", SelectionStrategy::Empirical),
        ] {
            let scheduler = LayoutScheduler::with_strategy(strategy);
            group.bench_with_input(BenchmarkId::new(name, label), &t, |b, t| {
                b.iter(|| scheduler.select_only(t).chosen)
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_selectors);
criterion_main!(benches);
