//! Criterion bench: SMO solver feature ablations — shrinking on/off and
//! kernel cache on/off at a fixed iteration budget.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dls_data::labels::linear_teacher_labels;
use dls_data::{generate, DatasetSpec};
use dls_sparse::{AnyMatrix, Format};
use dls_svm::{train_with_stats, KernelKind, SmoParams};

fn bench_smo_features(c: &mut Criterion) {
    let mut group = c.benchmark_group("smo_features");
    group.sample_size(10);
    let spec = DatasetSpec::by_name("adult").unwrap().scaled(8);
    let t = generate(&spec, 42);
    let y = linear_teacher_labels(&t, 0.05, 7);
    let m = AnyMatrix::from_triplets(Format::Ell, &t);

    let base = SmoParams {
        kernel: KernelKind::Gaussian { gamma: 0.5 },
        max_iterations: 2_000,
        ..Default::default()
    };
    let configs = [
        ("plain", SmoParams { cache_bytes: 0, ..base }),
        ("cache", base),
        ("cache+shrink", SmoParams { shrinking: true, ..base }),
    ];
    for (name, params) in configs {
        group.bench_with_input(BenchmarkId::from_parameter(name), &m, |b, m| {
            b.iter(|| train_with_stats(m, &y, &params).unwrap().1.iterations)
        });
    }
    group.finish();
}

criterion_group!(benches, bench_smo_features);
criterion_main!(benches);
