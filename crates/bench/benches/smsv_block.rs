//! Criterion bench for the zero-copy batched SMSV engine: per-format
//! comparison of the classic allocating kernel (`smsv`), the borrowed
//! view kernel with a reused workspace (`smsv_view`), and the blocked
//! multi-vector kernel (`smsv_block`) at several block widths.
//!
//! The blocked series are normalised per product (`iters × B` products per
//! measurement loop), so a bar below the `smsv` bar means the block
//! amortisation beats one-vector-at-a-time streaming.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dls_data::{generate, DatasetSpec};
use dls_sparse::{AnyMatrix, Format, MatrixFormat, SparseVec};

fn bench_smsv_block(c: &mut Criterion) {
    let mut group = c.benchmark_group("smsv_block");
    group.sample_size(20);
    for name in ["adult", "mnist", "trefethen"] {
        let spec = DatasetSpec::by_name(name).unwrap();
        let t = generate(spec, 42);
        for fmt in Format::ALL {
            let m = AnyMatrix::from_triplets(fmt, &t);
            let rows = m.rows();
            let v = m.row_sparse(0);
            let mut ws = Vec::new();
            // The single-vector series rotate their destination across 16
            // chunks, matching the widest blocked series: in the real
            // consumer (kernel-cache fill) every product lands in a
            // distinct row buffer, so one always-hot `out` would flatter
            // the unblocked kernels.
            let mut out = vec![0.0; rows * 16];

            group.throughput(Throughput::Elements(1));
            let mut k = 0;
            group.bench_with_input(
                BenchmarkId::new(name, format!("{}/smsv", fmt.name())),
                &m,
                |b, m| {
                    b.iter(|| {
                        let dst = &mut out[(k % 16) * rows..(k % 16 + 1) * rows];
                        k += 1;
                        m.smsv(&v, dst)
                    })
                },
            );
            let mut k = 0;
            group.bench_with_input(
                BenchmarkId::new(name, format!("{}/smsv_view", fmt.name())),
                &m,
                |b, m| {
                    b.iter(|| {
                        let dst = &mut out[(k % 16) * rows..(k % 16 + 1) * rows];
                        k += 1;
                        m.smsv_view(v.as_view(), dst, &mut ws)
                    })
                },
            );

            for block in [4usize, 16] {
                let vs: Vec<SparseVec> = vec![v.clone(); block];
                let mut block_out = vec![0.0; rows * block];
                group.throughput(Throughput::Elements(block as u64));
                group.bench_with_input(
                    BenchmarkId::new(name, format!("{}/smsv_block{}", fmt.name(), block)),
                    &m,
                    |b, m| b.iter(|| m.smsv_block(&vs, &mut block_out, &mut ws)),
                );
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_smsv_block);
criterion_main!(benches);
