//! Criterion bench for Figure 2: DIA SMSV vs number of diagonals at fixed
//! M = N = 1024, nnz = 1024.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dls_data::controlled::diag_matrix;
use dls_sparse::{AnyMatrix, Format, MatrixFormat};

fn bench_dia(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_dia_ndig");
    group.sample_size(20);
    let size = 1024;
    for ndig in [2usize, 8, 32, 128, 512, 1024] {
        let t = diag_matrix(size, size, size, ndig, 7);
        let m = AnyMatrix::from_triplets(Format::Dia, &t);
        let v = m.row_sparse(0);
        let mut out = vec![0.0; size];
        group.bench_with_input(BenchmarkId::from_parameter(ndig), &m, |b, m| {
            b.iter(|| m.smsv(&v, &mut out))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dia);
criterion_main!(benches);
