//! Criterion bench: derived formats (HYB, JDS) vs the basic five on a
//! skewed-row workload — the extension study's measured core.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dls_data::controlled::mdim_matrix;
use dls_sparse::{AnyMatrix, Format, MatrixFormat};

fn bench_derived(c: &mut Criterion) {
    let mut group = c.benchmark_group("derived_formats_skewed");
    group.sample_size(20);
    let size = 1024;
    let t = mdim_matrix(size, size, 2 * size, size, 3);
    for fmt in [Format::Ell, Format::Csr, Format::Coo, Format::Hyb, Format::Jds] {
        let m = AnyMatrix::from_triplets(fmt, &t);
        let v = m.row_sparse(0);
        let mut out = vec![0.0; size];
        group.bench_with_input(BenchmarkId::from_parameter(fmt.name()), &m, |b, m| {
            b.iter(|| m.smsv(&v, &mut out))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_derived);
criterion_main!(benches);
