//! Criterion bench for Figure 4: lane-lockstep CSR vs COO as the
//! row-length variance grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dls_data::controlled::vdim_matrix;
use dls_sparse::{CooMatrix, CsrMatrix, MatrixFormat};

fn bench_coo_csr(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_vdim");
    group.sample_size(20);
    let (m, n, adim) = (1024usize, 2048usize, 32usize);
    for vdim in [0.0f64, 16.0, 256.0, 1024.0] {
        let t = vdim_matrix(m, n, m * adim, vdim, 13);
        let csr = CsrMatrix::from_triplets(&t);
        let coo = CooMatrix::from_triplets(&t);
        let v = csr.row_sparse(0);
        let mut out = vec![0.0; m];
        group.bench_with_input(BenchmarkId::new("csr_lanes8", vdim as usize), &csr, |b, csr| {
            b.iter(|| csr.smsv_lanes::<8>(&v, &mut out))
        });
        group.bench_with_input(BenchmarkId::new("coo", vdim as usize), &coo, |b, coo| {
            b.iter(|| coo.smsv(&v, &mut out))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_coo_csr);
criterion_main!(benches);
