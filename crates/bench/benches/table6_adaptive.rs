//! Criterion bench for Table VI: SMO iteration cost under the scheduled
//! format vs the worst format, per dataset.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dls_core::LayoutScheduler;
use dls_data::labels::linear_teacher_labels;
use dls_data::{generate, DatasetSpec};
use dls_sparse::{AnyMatrix, Format};
use dls_svm::{KernelKind, SmoParams, WorkingSetSelection};

fn smo_params(iters: usize) -> SmoParams {
    SmoParams {
        c: 1.0,
        kernel: KernelKind::Linear,
        tolerance: 1e-12,
        max_iterations: iters,
        cache_bytes: 0,
        selection: WorkingSetSelection::FirstOrder,
        threads: 1,
        shrinking: false,
        positive_weight: 1.0,
        block_size: 1,
    }
}

fn bench_adaptive(c: &mut Criterion) {
    let mut group = c.benchmark_group("table6_adaptive");
    group.sample_size(10);
    let scheduler = LayoutScheduler::new();
    for name in ["adult", "mnist", "trefethen", "connect-4"] {
        let scale = if name == "adult" { 2 } else { 1 };
        let spec = DatasetSpec::by_name(name).unwrap().scaled(scale);
        let t = generate(&spec, 42);
        let y = linear_teacher_labels(&t, 0.05, 7);
        let report = scheduler.select_only(&t);
        let chosen = AnyMatrix::from_triplets(report.chosen, &t);
        let worst_fmt = Format::BASIC
            .iter()
            .copied()
            .filter(|&f| f != report.chosen)
            .max_by(|&a, &b| {
                let sa = dls_sparse::storage::predicted_storage_elems(a, &report.features);
                let sb = dls_sparse::storage::predicted_storage_elems(b, &report.features);
                sa.partial_cmp(&sb).unwrap()
            })
            .unwrap();
        let worst = AnyMatrix::from_triplets(worst_fmt, &t);
        let params = smo_params(10);
        group.bench_with_input(BenchmarkId::new(name, "scheduled"), &chosen, |b, m| {
            b.iter(|| dls_svm::train_with_stats(m, &y, &params).unwrap().1.iterations)
        });
        group.bench_with_input(BenchmarkId::new(name, "worst"), &worst, |b, m| {
            b.iter(|| dls_svm::train_with_stats(m, &y, &params).unwrap().1.iterations)
        });
    }
    group.finish();
}

criterion_group!(benches, bench_adaptive);
criterion_main!(benches);
