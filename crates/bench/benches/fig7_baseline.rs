//! Criterion bench for Figure 7: adaptive solver vs LIBSVM-style fixed-CSR
//! baseline at a fixed iteration budget.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dls_baseline::{train_libsvm_like, LibsvmLikeParams};
use dls_core::LayoutScheduler;
use dls_data::labels::linear_teacher_labels;
use dls_data::{generate, DatasetSpec};
use dls_sparse::AnyMatrix;
use dls_svm::{KernelKind, SmoParams, WorkingSetSelection};

fn bench_baseline(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_vs_libsvm");
    group.sample_size(10);
    let iters = 10usize;
    for name in ["adult", "trefethen", "connect-4"] {
        let spec = DatasetSpec::by_name(name).unwrap().scaled(2);
        let t = generate(&spec, 42);
        let y = linear_teacher_labels(&t, 0.05, 7);

        let base_params = LibsvmLikeParams {
            kernel: KernelKind::Linear,
            tolerance: 1e-12,
            max_iterations: iters,
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::new(name, "libsvm_like"), &t, |b, t| {
            b.iter(|| train_libsvm_like(t, &y, &base_params).unwrap().1.iterations)
        });

        let report = LayoutScheduler::new().select_only(&t);
        let m = AnyMatrix::from_triplets(report.chosen, &t);
        let params = SmoParams {
            c: 1.0,
            kernel: KernelKind::Linear,
            tolerance: 1e-12,
            max_iterations: iters,
            cache_bytes: 0,
            selection: WorkingSetSelection::FirstOrder,
            threads: 1,
            shrinking: false,
            positive_weight: 1.0,
            block_size: 1,
        };
        group.bench_with_input(BenchmarkId::new(name, "adaptive"), &m, |b, m| {
            b.iter(|| dls_svm::train_with_stats(m, &y, &params).unwrap().1.iterations)
        });
    }
    group.finish();
}

criterion_group!(benches, bench_baseline);
criterion_main!(benches);
