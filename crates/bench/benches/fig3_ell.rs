//! Criterion bench for Figure 3: ELL SMSV vs mdim at fixed M = N = 1024,
//! nnz = 2048.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dls_data::controlled::mdim_matrix;
use dls_sparse::{AnyMatrix, Format, MatrixFormat};

fn bench_ell(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_ell_mdim");
    group.sample_size(20);
    let size = 1024;
    for mdim in [2usize, 8, 32, 128, 512, 1024] {
        let t = mdim_matrix(size, size, 2 * size, mdim, 11);
        let m = AnyMatrix::from_triplets(Format::Ell, &t);
        let v = m.row_sparse(0);
        let mut out = vec![0.0; size];
        group.bench_with_input(BenchmarkId::from_parameter(mdim), &m, |b, m| {
            b.iter(|| m.smsv(&v, &mut out))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ell);
criterion_main!(benches);
