//! Property-based tests for the data substrate: LIBSVM round trips over
//! arbitrary matrices, scaler invariants, split invariants, and generator
//! determinism.

use dls_data::libsvm;
use dls_data::preprocess::{normalize_rows, FeatureScaler, ScaleRange};
use dls_data::stratified_split;
use dls_sparse::TripletMatrix;
use proptest::prelude::*;

fn arb_dataset() -> impl Strategy<Value = (TripletMatrix, Vec<f64>)> {
    (2usize..20, 1usize..10)
        .prop_flat_map(|(rows, cols)| {
            let entry = (0..rows, 0..cols, -50i32..=50).prop_filter_map("non-zero", |(r, c, v)| {
                (v != 0).then_some((r, c, v as f64 * 0.25))
            });
            let entries = proptest::collection::vec(entry, 1..rows * 3);
            let labels = proptest::collection::vec(prop_oneof![Just(1.0), Just(-1.0)], rows);
            (Just(rows), Just(cols), entries, labels)
        })
        .prop_map(|(rows, cols, entries, labels)| {
            (TripletMatrix::from_entries(rows, cols, entries).unwrap().compact(), labels)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Write → read recovers the matrix and labels exactly. (The written
    /// dimension is the max occupied column, so re-reading can shrink
    /// trailing all-zero columns — compare on the re-read's own width.)
    #[test]
    fn libsvm_round_trip((t, y) in arb_dataset()) {
        let mut buf = Vec::new();
        libsvm::write(&mut buf, &t, &y).unwrap();
        let ds = libsvm::read(buf.as_slice()).unwrap();
        prop_assert_eq!(ds.labels, y);
        prop_assert_eq!(ds.matrix.rows(), t.rows());
        prop_assert!(ds.matrix.cols() <= t.cols());
        // Entry sets agree.
        prop_assert_eq!(ds.matrix.entries(), t.entries());
    }

    /// Scaled values land inside the target range for all stored entries.
    #[test]
    fn scaler_outputs_in_range((t, _y) in arb_dataset()) {
        for (range, lo, hi) in [
            (ScaleRange::ZeroOne, 0.0, 1.0),
            (ScaleRange::SymmetricOne, -1.0, 1.0),
        ] {
            let s = FeatureScaler::fit(&t, range);
            let scaled = s.transform(&t);
            for &(_, _, v) in scaled.entries() {
                prop_assert!(
                    (lo - 1e-12..=hi + 1e-12).contains(&v),
                    "{range:?}: value {v} outside [{lo}, {hi}]"
                );
            }
            prop_assert_eq!(scaled.rows(), t.rows());
            prop_assert_eq!(scaled.cols(), t.cols());
        }
    }

    /// Row normalisation yields unit (or zero) row norms and preserves
    /// sparsity patterns.
    #[test]
    fn normalization_unit_norms((t, _y) in arb_dataset()) {
        let n = normalize_rows(&t);
        prop_assert_eq!(n.nnz(), t.nnz());
        for i in 0..t.rows() {
            let n_row = n.row_sparse(i);
            let t_row = t.row_sparse(i);
            let norm = n_row.norm_sq();
            if t_row.nnz() > 0 {
                prop_assert!((norm - 1.0).abs() < 1e-9, "row {i} norm² {norm}");
            } else {
                prop_assert_eq!(norm, 0.0);
            }
            prop_assert_eq!(n_row.indices(), t_row.indices());
        }
    }

    /// Splits partition the rows exactly, with labels travelling along.
    #[test]
    fn split_partitions_rows((t, y) in arb_dataset(), frac in 0.2f64..0.5, seed in 0u64..100) {
        prop_assume!(y.contains(&1.0) && y.contains(&-1.0));
        prop_assume!(t.rows() >= 6);
        let s = stratified_split(&t, &y, frac, seed);
        prop_assert_eq!(s.train_x.rows() + s.test_x.rows(), t.rows());
        prop_assert_eq!(s.train_x.nnz() + s.test_x.nnz(), t.nnz());
        // Label multiset is preserved.
        let mut all: Vec<f64> = s.train_y.iter().chain(s.test_y.iter()).copied().collect();
        let mut orig = y.clone();
        all.sort_by(|a, b| a.partial_cmp(b).unwrap());
        orig.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert_eq!(all, orig);
    }
}
