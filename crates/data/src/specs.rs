//! The paper's Table V, recorded verbatim, plus a structural recipe telling
//! the generator how to reproduce each dataset's sparsity pattern.

/// Structural recipe for the synthetic twin of a dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Structure {
    /// Every element stored: text-style dense data (gisette, epsilon, ...).
    Dense,
    /// Every row has exactly `row_nnz` non-zeros at uniform random columns
    /// (vdim = 0 but not fully dense: connect-4 style categorical data).
    UniformRows {
        /// Non-zeros per row.
        row_nnz: usize,
    },
    /// Row lengths drawn to match a target mean and variance, with the
    /// maximum pinned to `mdim` (adult / aloi / mnist / sector style).
    VariableRows {
        /// Target average non-zeros per row.
        adim: f64,
        /// Target variance of the row lengths.
        vdim: f64,
        /// Target maximum row length.
        mdim: usize,
    },
    /// Non-zeros concentrated on `ndig` diagonals (trefethen style).
    Diagonal {
        /// Number of occupied diagonals.
        ndig: usize,
    },
}

/// One row of the paper's Table V plus the generation recipe.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatasetSpec {
    /// Dataset name as used in the paper.
    pub name: &'static str,
    /// Application domain (Table V column 2).
    pub application: &'static str,
    /// Number of samples `M`.
    pub m: usize,
    /// Number of features `N`.
    pub n: usize,
    /// Paper-reported nnz.
    pub nnz: u64,
    /// Paper-reported number of diagonals.
    pub ndig: u64,
    /// Paper-reported nnz per diagonal.
    pub dnnz: f64,
    /// Paper-reported maximum row length.
    pub mdim: usize,
    /// Paper-reported average row length.
    pub adim: f64,
    /// Paper-reported row-length variance.
    pub vdim: f64,
    /// Paper-reported density.
    pub density: f64,
    /// How to synthesise the twin.
    pub structure: Structure,
}

impl DatasetSpec {
    /// Looks a spec up by name.
    pub fn by_name(name: &str) -> Option<&'static DatasetSpec> {
        PAPER_DATASETS.iter().find(|s| s.name == name)
    }

    /// Returns a copy scaled down by `factor` (rows divided, structure
    /// preserved). Used for the huge dense sets (epsilon, dna, gisette)
    /// where absolute size is irrelevant to format selection.
    pub fn scaled(&self, factor: usize) -> DatasetSpec {
        assert!(factor >= 1, "scale factor must be >= 1");
        let mut s = *self;
        s.m = (s.m / factor).max(4);
        // Dense rows also shrink in feature count to keep runtimes sane
        // while density stays 1.0.
        if matches!(s.structure, Structure::Dense) {
            s.n = (s.n / factor).max(4);
            s.mdim = s.n;
            s.adim = s.n as f64;
            s.structure = Structure::Dense;
        }
        s.nnz = (s.m as u64) * (s.adim.round() as u64).max(1);
        s
    }
}

/// Table V, verbatim. `breast_cancer` and `leukemia` share statistics in
/// the paper (both are 38 × 7129 dense microarray sets).
pub const PAPER_DATASETS: [DatasetSpec; 11] = [
    DatasetSpec {
        name: "adult",
        application: "economy",
        m: 2_265,
        n: 119,
        nnz: 31_404,
        ndig: 2_347,
        dnnz: 13.38,
        mdim: 14,
        adim: 13.87,
        vdim: 0.059,
        density: 0.119,
        structure: Structure::VariableRows { adim: 13.87, vdim: 0.059, mdim: 14 },
    },
    DatasetSpec {
        name: "breast_cancer",
        application: "clinical",
        m: 38,
        n: 7_129,
        nnz: 270_902,
        ndig: 7_166,
        dnnz: 37.80,
        mdim: 7_129,
        adim: 7_129.0,
        vdim: 0.0,
        density: 1.0,
        structure: Structure::Dense,
    },
    DatasetSpec {
        name: "aloi",
        application: "vision",
        m: 1_000,
        n: 128,
        nnz: 32_142,
        ndig: 1_125,
        dnnz: 28.57,
        mdim: 74,
        adim: 32.14,
        vdim: 85.22,
        density: 0.251,
        structure: Structure::VariableRows { adim: 32.14, vdim: 85.22, mdim: 74 },
    },
    DatasetSpec {
        name: "gisette",
        application: "selection",
        m: 6_000,
        n: 5_000,
        nnz: 30_000_000,
        ndig: 10_999,
        dnnz: 2_728.0,
        mdim: 5_000,
        adim: 5_000.0,
        vdim: 0.0,
        density: 1.0,
        structure: Structure::Dense,
    },
    DatasetSpec {
        name: "mnist",
        application: "recognition",
        m: 450,
        n: 772,
        nnz: 66_825,
        ndig: 1_050,
        dnnz: 63.64,
        mdim: 291,
        adim: 148.5,
        vdim: 1_594.0,
        density: 0.192,
        structure: Structure::VariableRows { adim: 148.5, vdim: 1_594.0, mdim: 291 },
    },
    DatasetSpec {
        name: "sector",
        application: "industry",
        m: 1_500,
        n: 55_188,
        nnz: 238_790,
        ndig: 33_770,
        dnnz: 7.07,
        mdim: 1_819,
        adim: 159.19,
        vdim: 17_634.0,
        density: 0.003,
        structure: Structure::VariableRows { adim: 159.19, vdim: 17_634.0, mdim: 1_819 },
    },
    DatasetSpec {
        name: "epsilon",
        application: "AI",
        m: 390_000,
        n: 2_000,
        nnz: 780_000_000,
        ndig: 391_999,
        dnnz: 1_990.0,
        mdim: 2_000,
        adim: 2_000.0,
        vdim: 0.0,
        density: 1.0,
        structure: Structure::Dense,
    },
    DatasetSpec {
        name: "leukemia",
        application: "biology",
        m: 38,
        n: 7_129,
        nnz: 270_902,
        ndig: 7_166,
        dnnz: 37.8,
        mdim: 7_129,
        adim: 7_129.0,
        vdim: 0.0,
        density: 1.0,
        structure: Structure::Dense,
    },
    DatasetSpec {
        name: "connect-4",
        application: "game",
        m: 1_800,
        n: 125,
        nnz: 75_600,
        ndig: 1_922,
        dnnz: 39.33,
        mdim: 42,
        adim: 42.0,
        vdim: 0.0,
        density: 0.336,
        structure: Structure::UniformRows { row_nnz: 42 },
    },
    DatasetSpec {
        name: "trefethen",
        application: "numerical",
        m: 2_000,
        n: 2_000,
        nnz: 21_953,
        ndig: 12,
        dnnz: 1_829.0,
        mdim: 12,
        adim: 10.98,
        vdim: 1.25,
        density: 0.006,
        structure: Structure::Diagonal { ndig: 12 },
    },
    DatasetSpec {
        name: "dna",
        application: "genomics",
        m: 3_600_000,
        n: 200,
        nnz: 720_000_000,
        ndig: 3_600_199,
        dnnz: 200.0,
        mdim: 200,
        adim: 200.0,
        vdim: 0.0,
        density: 1.0,
        structure: Structure::Dense,
    },
];

/// The five datasets of Figure 1 / Table III, in the paper's order.
pub const FIG1_DATASETS: [&str; 5] = ["adult", "aloi", "mnist", "gisette", "trefethen"];

/// The nine datasets of Table VI, in the paper's order.
pub const TABLE6_DATASETS: [&str; 9] = [
    "adult",
    "breast_cancer",
    "aloi",
    "gisette",
    "mnist",
    "sector",
    "leukemia",
    "connect-4",
    "trefethen",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_by_name() {
        assert_eq!(DatasetSpec::by_name("adult").unwrap().m, 2_265);
        assert!(DatasetSpec::by_name("nope").is_none());
    }

    #[test]
    fn table5_row_consistency() {
        for s in &PAPER_DATASETS {
            // adim ≈ nnz / M
            let adim = s.nnz as f64 / s.m as f64;
            assert!(
                (adim - s.adim).abs() / s.adim < 0.05,
                "{}: adim {} vs nnz/M {}",
                s.name,
                s.adim,
                adim
            );
            // density ≈ nnz / (M N)
            let density = s.nnz as f64 / (s.m as f64 * s.n as f64);
            assert!(
                (density - s.density).abs() < 0.05,
                "{}: density {} vs computed {}",
                s.name,
                s.density,
                density
            );
            // mdim can't exceed N and adim can't exceed mdim.
            assert!(s.mdim <= s.n, "{}", s.name);
            assert!(s.adim <= s.mdim as f64 + 0.5, "{}", s.name);
            // ndig is bounded by M + N − 1.
            assert!(s.ndig <= (s.m + s.n - 1) as u64, "{}", s.name);
        }
    }

    #[test]
    fn fig1_and_table6_names_resolve() {
        for name in FIG1_DATASETS.iter().chain(TABLE6_DATASETS.iter()) {
            assert!(DatasetSpec::by_name(name).is_some(), "{name}");
        }
    }

    #[test]
    fn scaling_preserves_structure_class() {
        let eps = DatasetSpec::by_name("epsilon").unwrap().scaled(1000);
        assert_eq!(eps.m, 390);
        assert_eq!(eps.n, 4); // floored at the minimum feature count
        assert!(matches!(eps.structure, Structure::Dense));
        let adult = DatasetSpec::by_name("adult").unwrap().scaled(10);
        assert_eq!(adult.m, 226);
        assert_eq!(adult.n, 119); // sparse sets keep their feature space
    }
}
