//! Feature scaling — the `svm-scale` step of the LIBSVM workflow.
//!
//! SVM kernels (especially the Gaussian) are sensitive to feature ranges,
//! so real pipelines scale each column to `[0, 1]` or `[-1, 1]` before
//! training and apply the *same* affine map to test samples. The scaler is
//! fitted on training data and stored, exactly like LIBSVM's `.range`
//! files.

use dls_sparse::{Scalar, SparseVec, TripletMatrix};

/// Target range for scaled features.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScaleRange {
    /// Scale each column to `[0, 1]`.
    #[default]
    ZeroOne,
    /// Scale each column to `[-1, 1]`.
    SymmetricOne,
}

/// A fitted per-column affine scaler.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureScaler {
    range: ScaleRange,
    /// Per-column `(min, max)` observed at fit time.
    bounds: Vec<(Scalar, Scalar)>,
}

impl FeatureScaler {
    /// Fits column bounds on a training matrix. Columns with no observed
    /// spread (min == max) pass through unchanged.
    ///
    /// Note: like LIBSVM's scaler, implicit zeros count as observations —
    /// a column whose stored values are all positive still has min ≤ 0 if
    /// any row lacks an entry there.
    pub fn fit(t: &TripletMatrix, range: ScaleRange) -> Self {
        let mut bounds = vec![(Scalar::INFINITY, Scalar::NEG_INFINITY); t.cols()];
        let mut seen = vec![0usize; t.cols()];
        for &(_, c, v) in t.entries() {
            let b = &mut bounds[c];
            b.0 = b.0.min(v);
            b.1 = b.1.max(v);
            seen[c] += 1;
        }
        for (c, b) in bounds.iter_mut().enumerate() {
            if seen[c] == 0 {
                // Empty column: identity.
                *b = (0.0, 0.0);
            } else if seen[c] < t.rows() {
                // Implicit zeros participate in the range.
                b.0 = b.0.min(0.0);
                b.1 = b.1.max(0.0);
            }
        }
        Self { range, bounds }
    }

    /// The fitted target range.
    pub fn range(&self) -> ScaleRange {
        self.range
    }

    /// Scales a single raw value of column `c`.
    pub fn scale_value(&self, c: usize, v: Scalar) -> Scalar {
        let (lo, hi) = self.bounds[c];
        if hi <= lo {
            return v;
        }
        let unit = (v - lo) / (hi - lo);
        match self.range {
            ScaleRange::ZeroOne => unit,
            ScaleRange::SymmetricOne => 2.0 * unit - 1.0,
        }
    }

    /// Applies the fitted map to a whole matrix.
    ///
    /// For `[0, 1]` scaling, zeros map to zero whenever the column's
    /// observed minimum is ≤ 0, so sparsity is preserved on non-negative
    /// data. Symmetric scaling densifies in principle; we keep the sparse
    /// representation by only storing transformed *stored* entries, which
    /// matches LIBSVM's behaviour on sparse files.
    pub fn transform(&self, t: &TripletMatrix) -> TripletMatrix {
        let mut out = TripletMatrix::with_capacity(t.rows(), t.cols(), t.nnz());
        for &(r, c, v) in t.entries() {
            let s = self.scale_value(c, v);
            if s != 0.0 {
                out.push(r, c, s);
            }
        }
        out.compact()
    }

    /// Applies the fitted map to a single sample.
    pub fn transform_vec(&self, x: &SparseVec) -> SparseVec {
        let mut idx = Vec::with_capacity(x.nnz());
        let mut val = Vec::with_capacity(x.nnz());
        for (c, v) in x.iter() {
            let s = self.scale_value(c, v);
            if s != 0.0 {
                idx.push(c);
                val.push(s);
            }
        }
        SparseVec::new(x.dim(), idx, val)
    }
}

/// L2-normalises every row to unit norm (zero rows pass through). A
/// standard alternative to per-column scaling for text-like data (the
/// sector/mnist family), where direction matters more than magnitude.
pub fn normalize_rows(t: &TripletMatrix) -> TripletMatrix {
    let mut norms = vec![0.0f64; t.rows()];
    for &(r, _, v) in t.entries() {
        norms[r] += v * v;
    }
    for n in &mut norms {
        *n = n.sqrt();
    }
    let mut out = TripletMatrix::with_capacity(t.rows(), t.cols(), t.nnz());
    for &(r, c, v) in t.entries() {
        if norms[r] > 0.0 {
            out.push(r, c, v / norms[r]);
        } else {
            out.push(r, c, v);
        }
    }
    out.compact()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix() -> TripletMatrix {
        // Column 0 ranges over [2, 6] (all rows present); column 1 has an
        // implicit zero (row 1 missing), so its range is [0, 10].
        TripletMatrix::from_entries(
            3,
            2,
            vec![(0, 0, 2.0), (1, 0, 4.0), (2, 0, 6.0), (0, 1, 10.0), (2, 1, 5.0)],
        )
        .unwrap()
        .compact()
    }

    #[test]
    fn zero_one_scaling_maps_bounds() {
        let t = matrix();
        let s = FeatureScaler::fit(&t, ScaleRange::ZeroOne);
        assert_eq!(s.scale_value(0, 2.0), 0.0);
        assert_eq!(s.scale_value(0, 6.0), 1.0);
        assert_eq!(s.scale_value(0, 4.0), 0.5);
        // Column 1 includes the implicit zero.
        assert_eq!(s.scale_value(1, 0.0), 0.0);
        assert_eq!(s.scale_value(1, 10.0), 1.0);
    }

    #[test]
    fn symmetric_scaling_maps_to_pm_one() {
        let t = matrix();
        let s = FeatureScaler::fit(&t, ScaleRange::SymmetricOne);
        assert_eq!(s.scale_value(0, 2.0), -1.0);
        assert_eq!(s.scale_value(0, 6.0), 1.0);
        assert_eq!(s.scale_value(0, 4.0), 0.0);
    }

    #[test]
    fn transform_preserves_shape_and_drops_mapped_zeros() {
        let t = matrix();
        let s = FeatureScaler::fit(&t, ScaleRange::ZeroOne);
        let scaled = s.transform(&t);
        assert_eq!(scaled.rows(), 3);
        assert_eq!(scaled.cols(), 2);
        // (0,0) mapped to exactly 0 and was dropped from storage.
        assert_eq!(scaled.row_sparse(0).get(0), 0.0);
        assert_eq!(scaled.row_sparse(2).get(0), 1.0);
    }

    #[test]
    fn constant_column_passes_through() {
        let t =
            TripletMatrix::from_entries(2, 1, vec![(0, 0, 5.0), (1, 0, 5.0)]).unwrap().compact();
        let s = FeatureScaler::fit(&t, ScaleRange::ZeroOne);
        assert_eq!(s.scale_value(0, 5.0), 5.0, "no spread: identity");
    }

    #[test]
    fn transform_vec_matches_matrix_transform() {
        let t = matrix();
        let s = FeatureScaler::fit(&t, ScaleRange::ZeroOne);
        let scaled = s.transform(&t);
        for i in 0..3 {
            let via_vec = s.transform_vec(&t.row_sparse(i));
            let via_mat = scaled.row_sparse(i);
            assert_eq!(via_vec.indices(), via_mat.indices(), "row {i}");
            assert_eq!(via_vec.values(), via_mat.values(), "row {i}");
        }
    }

    #[test]
    fn normalize_rows_gives_unit_norms() {
        let t = TripletMatrix::from_entries(3, 3, vec![(0, 0, 3.0), (0, 1, 4.0), (1, 2, 7.0)])
            .unwrap()
            .compact();
        let n = normalize_rows(&t);
        let r0 = n.row_sparse(0);
        assert!((r0.norm_sq() - 1.0).abs() < 1e-12);
        assert!((r0.get(0) - 0.6).abs() < 1e-12);
        assert!((n.row_sparse(1).norm_sq() - 1.0).abs() < 1e-12);
        // Empty row stays empty.
        assert_eq!(n.row_sparse(2).nnz(), 0);
    }

    #[test]
    fn scaling_helps_wide_range_features() {
        // After [0,1] scaling every stored value is in [0, 1].
        let t = TripletMatrix::from_entries(
            3,
            2,
            vec![(0, 0, 1e6), (1, 0, 2e6), (2, 1, -500.0), (0, 1, 500.0)],
        )
        .unwrap()
        .compact();
        let s = FeatureScaler::fit(&t, ScaleRange::ZeroOne);
        let scaled = s.transform(&t);
        for &(_, _, v) in scaled.entries() {
            assert!((0.0..=1.0).contains(&v), "value {v} out of range");
        }
    }
}
