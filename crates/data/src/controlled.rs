//! Controlled single-parameter sweeps (paper Figures 2–4).
//!
//! Each generator fixes `M`, `N` and `nnz` and varies exactly one
//! influencing parameter, so measured kernel-time differences are
//! attributable to that parameter alone.

use dls_sparse::TripletMatrix;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Figure 2 workload: `nnz` entries spread over exactly `ndig` diagonals of
/// an `m × n` matrix. The paper uses `M = N = 4096`, `nnz = 4096` and
/// `ndig ∈ {2, 4, 8, …, 4096}`.
///
/// Entries are distributed as evenly as possible: `nnz / ndig` per diagonal
/// (each diagonal of a `ndig`-diagonal matrix holds few elements, so DIA
/// pads each one to full length — the waste Figure 2 measures).
///
/// # Panics
/// Panics if `ndig` is zero or exceeds `min(m, n)` (super/sub-diagonal
/// capacity is not modelled beyond that).
pub fn diag_matrix(m: usize, n: usize, nnz: usize, ndig: usize, seed: u64) -> TripletMatrix {
    assert!(ndig >= 1 && ndig <= n, "ndig must be in 1..=n");
    let mut rng = StdRng::seed_from_u64(seed);
    // Use offsets 0..ndig (upper diagonals): all have length >= min(m, n) - ndig.
    let per_diag = (nnz / ndig).max(1);
    let mut t = TripletMatrix::with_capacity(m, n, nnz);
    let mut placed = 0usize;
    for d in 0..ndig {
        let len = m.min(n - d);
        let take = per_diag.min(len).min(nnz - placed);
        // Distinct random rows along this diagonal.
        let mut rows: Vec<usize> = (0..len).collect();
        rows.shuffle(&mut rng);
        for &i in rows.iter().take(take) {
            t.push(i, i + d, 1.0 - rng.gen::<f64>());
            placed += 1;
        }
        if placed >= nnz {
            break;
        }
    }
    t.compact()
}

/// Figure 3 workload: fixed `nnz` with maximum row length `mdim`. The paper
/// uses `M = N = 4096`, `nnz = 8192`, `mdim ∈ {1, 2, …, 4096}`: exactly
/// `nnz / mdim` rows carry `mdim` non-zeros each, the rest are empty, so
/// ELL's padded width equals `mdim` while the work stays constant.
///
/// # Panics
/// Panics if `mdim` is zero, exceeds `n`, or `nnz / mdim` exceeds `m`.
pub fn mdim_matrix(m: usize, n: usize, nnz: usize, mdim: usize, seed: u64) -> TripletMatrix {
    assert!(mdim >= 1 && mdim <= n, "mdim must be in 1..=n");
    let full_rows = nnz / mdim;
    assert!(full_rows <= m, "nnz / mdim = {full_rows} rows exceed m = {m}");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = TripletMatrix::with_capacity(m, n, nnz);
    let mut cols: Vec<usize> = (0..n).collect();
    for i in 0..full_rows {
        cols.shuffle(&mut rng);
        for &j in cols.iter().take(mdim) {
            t.push(i, j, 1.0 - rng.gen::<f64>());
        }
    }
    // Remainder entries go to one extra partial row.
    let rem = nnz - full_rows * mdim;
    if rem > 0 && full_rows < m {
        cols.shuffle(&mut rng);
        for &j in cols.iter().take(rem) {
            t.push(full_rows, j, 1.0 - rng.gen::<f64>());
        }
    }
    t.compact()
}

/// Figure 4 workload: fixed `M`, `N`, `nnz` with tunable row-length variance
/// `vdim`. A fraction `p` of rows are "long" and the rest "short", chosen so
/// the mean stays `nnz / m` while the variance hits the target.
///
/// Returns the matrix; the achieved variance can be read back via
/// [`dls_sparse::MatrixFeatures`].
///
/// # Panics
/// Panics if the target is infeasible (needs row lengths outside `1..=n`).
pub fn vdim_matrix(m: usize, n: usize, nnz: usize, target_vdim: f64, seed: u64) -> TripletMatrix {
    let adim = nnz as f64 / m as f64;
    assert!(adim >= 1.0, "need at least one nnz per row on average");
    let mut rng = StdRng::seed_from_u64(seed);

    // Two-point distribution: lengths {lo, hi} with probabilities {1-p, p}.
    // mean = adim, var = p(1-p)(hi-lo)^2. Fix p = 0.1 and solve for hi - lo.
    let p = 0.1;
    let spread = (target_vdim / (p * (1.0 - p))).sqrt();
    let hi = adim + (1.0 - p) * spread;
    let lo = adim - p * spread;
    assert!(lo >= 0.0 && hi <= n as f64, "target vdim {target_vdim} infeasible: lo={lo} hi={hi}");

    let n_long = (p * m as f64).round() as usize;
    let mut lengths = vec![lo.round().max(0.0) as usize; m];
    for len in lengths.iter_mut().take(n_long) {
        *len = (hi.round() as usize).min(n);
    }
    // Adjust the total to exactly nnz by distributing the residual.
    let mut total: isize = lengths.iter().sum::<usize>() as isize;
    let mut i = 0usize;
    while total != nnz as isize {
        let idx = i % m;
        if total < nnz as isize && lengths[idx] < n {
            lengths[idx] += 1;
            total += 1;
        } else if total > nnz as isize && lengths[idx] > 0 {
            lengths[idx] -= 1;
            total -= 1;
        }
        i += 1;
    }
    lengths.shuffle(&mut rng);

    let mut t = TripletMatrix::with_capacity(m, n, nnz);
    let mut cols: Vec<usize> = (0..n).collect();
    for (i, &len) in lengths.iter().enumerate() {
        cols.shuffle(&mut rng);
        for &j in cols.iter().take(len) {
            t.push(i, j, 1.0 - rng.gen::<f64>());
        }
    }
    t.compact()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dls_sparse::MatrixFeatures;

    #[test]
    fn diag_matrix_hits_requested_diagonals() {
        for ndig in [2usize, 8, 64, 256] {
            let t = diag_matrix(512, 512, 512, ndig, 1);
            let f = MatrixFeatures::from_triplets(&t);
            assert_eq!(f.ndig, ndig, "requested {ndig}");
            assert!(f.nnz as isize - 512 <= 0 && f.nnz >= 512 - ndig, "nnz {}", f.nnz);
        }
    }

    #[test]
    fn diag_matrix_single_diagonal_is_dense_diagonal() {
        let t = diag_matrix(64, 64, 64, 1, 2);
        let f = MatrixFeatures::from_triplets(&t);
        assert_eq!(f.ndig, 1);
        assert_eq!(f.nnz, 64);
        assert_eq!(f.dnnz, 64.0);
    }

    #[test]
    fn mdim_matrix_pins_max_row_length() {
        // mdim = 1 would need nnz rows; like the paper's sweep the smallest
        // feasible width here is nnz / m = 2.
        for mdim in [2usize, 4, 16, 128] {
            let t = mdim_matrix(512, 512, 1024, mdim, 3);
            let f = MatrixFeatures::from_triplets(&t);
            assert_eq!(f.mdim, mdim, "requested mdim {mdim}");
            assert_eq!(f.nnz, 1024);
        }
    }

    #[test]
    fn mdim_matrix_extreme_case_single_row() {
        let t = mdim_matrix(512, 512, 512, 512, 4);
        let f = MatrixFeatures::from_triplets(&t);
        assert_eq!(f.mdim, 512);
        // One full row, 511 empty ones: variance is high.
        assert!(f.vdim > 100.0);
    }

    #[test]
    fn vdim_matrix_monotone_variance() {
        let mut last = -1.0;
        for target in [0.0, 16.0, 64.0, 256.0] {
            let t = vdim_matrix(256, 512, 256 * 16, target, 5);
            let f = MatrixFeatures::from_triplets(&t);
            assert_eq!(f.nnz, 256 * 16, "nnz preserved at target {target}");
            assert!(f.vdim >= last, "variance must grow with target: {} then {}", last, f.vdim);
            last = f.vdim;
        }
    }

    #[test]
    fn vdim_matrix_zero_target_is_uniform() {
        let t = vdim_matrix(128, 256, 128 * 8, 0.0, 6);
        let f = MatrixFeatures::from_triplets(&t);
        assert!(f.vdim < 1.0, "vdim {}", f.vdim);
        assert_eq!(f.adim, 8.0);
    }

    #[test]
    #[should_panic(expected = "infeasible")]
    fn vdim_matrix_rejects_impossible_targets() {
        let _ = vdim_matrix(16, 16, 32, 1e9, 7);
    }

    #[test]
    #[should_panic(expected = "ndig")]
    fn diag_matrix_rejects_zero_diagonals() {
        let _ = diag_matrix(8, 8, 8, 0, 1);
    }
}
