//! Synthetic-twin generator: produces a matrix whose nine influencing
//! parameters match a [`DatasetSpec`].

use crate::specs::{DatasetSpec, Structure};
use dls_sparse::TripletMatrix;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Generates the synthetic twin of `spec`, deterministically from `seed`.
///
/// Values are drawn uniformly from `(0, 1]` (never exactly zero, so the
/// requested sparsity pattern is exactly the stored pattern).
pub fn generate(spec: &DatasetSpec, seed: u64) -> TripletMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    match spec.structure {
        Structure::Dense => dense(spec.m, spec.n, &mut rng),
        Structure::UniformRows { row_nnz } => uniform_rows(spec.m, spec.n, row_nnz, &mut rng),
        Structure::VariableRows { adim, vdim, mdim } => {
            variable_rows(spec.m, spec.n, adim, vdim, mdim, &mut rng)
        }
        Structure::Diagonal { ndig } => diagonal(spec.m, spec.n, spec.nnz as usize, ndig, &mut rng),
    }
}

fn value(rng: &mut StdRng) -> f64 {
    // Uniform in (0, 1]: 1 − u with u in [0, 1).
    1.0 - rng.gen::<f64>()
}

/// Fully dense matrix.
fn dense(m: usize, n: usize, rng: &mut StdRng) -> TripletMatrix {
    let mut t = TripletMatrix::with_capacity(m, n, m * n);
    for i in 0..m {
        for j in 0..n {
            t.push(i, j, value(rng));
        }
    }
    t.compact()
}

/// Every row gets exactly `row_nnz` entries at distinct random columns.
fn uniform_rows(m: usize, n: usize, row_nnz: usize, rng: &mut StdRng) -> TripletMatrix {
    let row_nnz = row_nnz.min(n);
    let mut t = TripletMatrix::with_capacity(m, n, m * row_nnz);
    let mut cols: Vec<usize> = (0..n).collect();
    for i in 0..m {
        cols.shuffle(rng);
        for &j in cols.iter().take(row_nnz) {
            t.push(i, j, value(rng));
        }
    }
    t.compact()
}

/// Row lengths drawn to hit a target mean/variance/max.
///
/// Uses a two-point mixture: most rows near `adim`, a minority stretched
/// towards `mdim`, calibrated so the population variance lands on `vdim`.
/// One row is pinned to exactly `mdim` so the maximum is met.
fn variable_rows(
    m: usize,
    n: usize,
    adim: f64,
    vdim: f64,
    mdim: usize,
    rng: &mut StdRng,
) -> TripletMatrix {
    let mdim = mdim.min(n).max(1);
    let lengths = sample_row_lengths(m, adim, vdim, mdim, rng);
    let mut t = TripletMatrix::with_capacity(m, n, lengths.iter().sum());
    let mut cols: Vec<usize> = (0..n).collect();
    for (i, &len) in lengths.iter().enumerate() {
        cols.shuffle(rng);
        for &j in cols.iter().take(len) {
            t.push(i, j, value(rng));
        }
    }
    t.compact()
}

/// Draws `m` row lengths with mean ≈ `adim`, variance ≈ `vdim`, max = `mdim`.
fn sample_row_lengths(m: usize, adim: f64, vdim: f64, mdim: usize, rng: &mut StdRng) -> Vec<usize> {
    let cap = mdim as f64;
    let mut lengths = Vec::with_capacity(m);
    if vdim <= 1e-9 {
        // Uniform rows.
        let len = adim.round().max(1.0) as usize;
        return vec![len.min(mdim); m];
    }
    // Two-point mixture {lo, hi}: pick hi as the stretch toward mdim, then
    // p and lo follow from the mean/variance equations.
    let hi = (adim + vdim.sqrt() * 3.0).min(cap).max(adim + 1.0);
    // variance = p(1-p)(hi-lo)^2 with mean = p·hi + (1-p)·lo.
    // Solve by choosing p from the variance given lo ≈ adim - eps:
    let spread = hi - adim;
    let p = (vdim / (spread * spread + vdim)).clamp(0.001, 0.5);
    let lo = ((adim - p * hi) / (1.0 - p)).max(1.0);
    for _ in 0..m {
        let len = if rng.gen::<f64>() < p { hi } else { lo };
        // Jitter ±10% to avoid a degenerate two-value histogram.
        let jitter = 1.0 + (rng.gen::<f64>() - 0.5) * 0.2;
        let len = (len * jitter).round().clamp(1.0, cap) as usize;
        lengths.push(len);
    }
    // Pin the maximum.
    let max_pos = lengths.iter().enumerate().max_by_key(|(_, &l)| l).map(|(i, _)| i).unwrap();
    lengths[max_pos] = mdim;
    lengths
}

/// `nnz` entries spread over exactly `ndig` distinct diagonals (trefethen
/// style; the real Trefethen matrix puts entries at prime offsets).
fn diagonal(m: usize, n: usize, nnz: usize, ndig: usize, rng: &mut StdRng) -> TripletMatrix {
    let max_diags = m + n - 1;
    let ndig = ndig.clamp(1, max_diags);
    // Main diagonal plus increasing offsets (primes-like spacing: 1, 2, 4...).
    let mut offsets: Vec<isize> = vec![0];
    let mut step = 1isize;
    while offsets.len() < ndig {
        if offsets.len() % 2 == 1 {
            if (step as usize) < n {
                offsets.push(step);
            }
        } else if (step as usize) < m {
            offsets.push(-step);
            step *= 2;
        }
        if step as usize >= m.max(n) {
            // Fall back to dense packing of small offsets.
            let mut o = 1isize;
            while offsets.len() < ndig {
                if !offsets.contains(&o) && o.unsigned_abs() < n {
                    offsets.push(o);
                }
                if !offsets.contains(&-o) && offsets.len() < ndig && (o as usize) < m {
                    offsets.push(-o);
                }
                o += 1;
            }
        }
    }
    offsets.truncate(ndig);

    let mut t = TripletMatrix::with_capacity(m, n, nnz);
    let mut placed = 0usize;
    // Round-robin the diagonals, filling each from a random start, until
    // nnz entries are placed (or all slots are exhausted).
    let mut cursors: Vec<usize> = offsets
        .iter()
        .map(|&o| {
            let lo = if o < 0 { (-o) as usize } else { 0 };
            lo + rng.gen_range(0..4)
        })
        .collect();
    let mut exhausted = vec![false; offsets.len()];
    while placed < nnz && !exhausted.iter().all(|&e| e) {
        for (d, &off) in offsets.iter().enumerate() {
            if placed >= nnz || exhausted[d] {
                continue;
            }
            let i = cursors[d];
            let hi = m.min((n as isize - off).max(0) as usize);
            if i >= hi {
                exhausted[d] = true;
                continue;
            }
            let j = (i as isize + off) as usize;
            t.push(i, j, value(rng));
            cursors[d] += 1;
            placed += 1;
        }
    }
    t.compact()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::specs::DatasetSpec;
    use dls_sparse::MatrixFeatures;

    #[test]
    fn generation_is_deterministic() {
        let spec = DatasetSpec::by_name("adult").unwrap().scaled(10);
        let a = generate(&spec, 42);
        let b = generate(&spec, 42);
        assert_eq!(a.entries(), b.entries());
        let c = generate(&spec, 43);
        assert_ne!(a.entries(), c.entries());
    }

    #[test]
    fn dense_twin_matches_spec() {
        let spec = DatasetSpec::by_name("leukemia").unwrap().scaled(4);
        let t = generate(&spec, 1);
        let f = MatrixFeatures::from_triplets(&t);
        assert_eq!(f.m, spec.m);
        assert_eq!(f.n, spec.n);
        assert_eq!(f.density, 1.0);
        assert_eq!(f.vdim, 0.0);
        assert_eq!(f.mdim, spec.n);
    }

    #[test]
    fn uniform_rows_twin_matches_spec() {
        let spec = DatasetSpec::by_name("connect-4").unwrap().scaled(10);
        let t = generate(&spec, 1);
        let f = MatrixFeatures::from_triplets(&t);
        assert_eq!(f.m, spec.m);
        assert_eq!(f.vdim, 0.0, "connect-4 rows are uniform");
        assert_eq!(f.mdim, 42);
        assert!((f.density - spec.density).abs() < 0.02);
    }

    #[test]
    fn variable_rows_twin_approximates_moments() {
        let spec = DatasetSpec::by_name("aloi").unwrap();
        let t = generate(spec, 7);
        let f = MatrixFeatures::from_triplets(&t);
        assert_eq!(f.m, 1000);
        assert_eq!(f.mdim, 74, "max row length pinned");
        assert!((f.adim - spec.adim).abs() / spec.adim < 0.25, "adim {} vs {}", f.adim, spec.adim);
        assert!(f.vdim > 10.0, "aloi twin must be imbalanced, vdim = {}", f.vdim);
    }

    #[test]
    fn high_vdim_twin_is_strongly_imbalanced() {
        let spec = DatasetSpec::by_name("mnist").unwrap();
        let t = generate(spec, 3);
        let f = MatrixFeatures::from_triplets(&t);
        assert_eq!(f.mdim, 291);
        assert!(f.vdim > 500.0, "mnist twin vdim = {}", f.vdim);
    }

    #[test]
    fn diagonal_twin_has_exact_diagonal_count() {
        let spec = DatasetSpec::by_name("trefethen").unwrap();
        let t = generate(spec, 5);
        let f = MatrixFeatures::from_triplets(&t);
        assert_eq!(f.ndig, 12, "trefethen has 12 diagonals");
        assert_eq!(f.m, 2000);
        let rel_err = (f.nnz as f64 - spec.nnz as f64).abs() / (spec.nnz as f64);
        assert!(rel_err < 0.05, "nnz off by {rel_err}");
    }

    #[test]
    fn adult_twin_is_ell_friendly() {
        // adult: near-uniform short rows — low vdim, mdim close to adim.
        let spec = DatasetSpec::by_name("adult").unwrap();
        let t = generate(spec, 11);
        let f = MatrixFeatures::from_triplets(&t);
        assert!(f.vdim < 5.0, "adult twin vdim = {}", f.vdim);
        assert!(f.ell_padding_ratio() < 0.15);
    }
}
