//! Train/test splitting with stratification.

use dls_sparse::{Scalar, TripletMatrix};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Result of a split: re-indexed matrices and their labels.
#[derive(Debug, Clone)]
pub struct Split {
    /// Training matrix.
    pub train_x: TripletMatrix,
    /// Training labels.
    pub train_y: Vec<Scalar>,
    /// Test matrix.
    pub test_x: TripletMatrix,
    /// Test labels.
    pub test_y: Vec<Scalar>,
}

/// Splits rows into train/test, stratified by label so both sides keep the
/// class proportions. `test_fraction` ∈ (0, 1).
///
/// # Panics
/// Panics on an invalid fraction or mismatched label length.
pub fn stratified_split(x: &TripletMatrix, y: &[Scalar], test_fraction: f64, seed: u64) -> Split {
    assert!((0.0..1.0).contains(&test_fraction) && test_fraction > 0.0, "bad test fraction");
    assert_eq!(y.len(), x.rows(), "one label per row");
    let mut rng = StdRng::seed_from_u64(seed);

    // Group indices per distinct label (ordered for determinism).
    let mut labels: Vec<Scalar> = y.to_vec();
    labels.sort_by(|a, b| a.partial_cmp(b).expect("finite labels"));
    labels.dedup();
    let mut test_idx: Vec<usize> = Vec::new();
    let mut train_idx: Vec<usize> = Vec::new();
    for &label in &labels {
        let mut group: Vec<usize> = (0..y.len()).filter(|&i| y[i] == label).collect();
        group.shuffle(&mut rng);
        let n_test = ((group.len() as f64) * test_fraction).round() as usize;
        let n_test = n_test.min(group.len().saturating_sub(1)).max(usize::from(group.len() > 1));
        test_idx.extend(&group[..n_test]);
        train_idx.extend(&group[n_test..]);
    }
    train_idx.sort_unstable();
    test_idx.sort_unstable();

    let gather = |idx: &[usize]| -> (TripletMatrix, Vec<Scalar>) {
        let mut t = TripletMatrix::new(idx.len(), x.cols());
        let mut labels = Vec::with_capacity(idx.len());
        // Map old row -> new row for a single pass over the entries.
        let mut pos = vec![usize::MAX; x.rows()];
        for (new_i, &old_i) in idx.iter().enumerate() {
            pos[old_i] = new_i;
            labels.push(y[old_i]);
        }
        for &(r, c, v) in x.entries() {
            if pos[r] != usize::MAX {
                t.push(pos[r], c, v);
            }
        }
        (t.compact(), labels)
    };
    let (train_x, train_y) = gather(&train_idx);
    let (test_x, test_y) = gather(&test_idx);
    Split { train_x, train_y, test_x, test_y }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(n: usize) -> (TripletMatrix, Vec<Scalar>) {
        let mut t = TripletMatrix::new(n, 2);
        let mut y = Vec::new();
        for i in 0..n {
            t.push(i, i % 2, i as f64 + 1.0);
            // 3:1 class imbalance.
            y.push(if i % 4 == 0 { -1.0 } else { 1.0 });
        }
        (t.compact(), y)
    }

    #[test]
    fn split_partitions_all_rows() {
        let (x, y) = data(40);
        let s = stratified_split(&x, &y, 0.25, 1);
        assert_eq!(s.train_x.rows() + s.test_x.rows(), 40);
        assert_eq!(s.train_y.len(), s.train_x.rows());
        assert_eq!(s.test_y.len(), s.test_x.rows());
        // Roughly a quarter in test.
        assert!((8..=12).contains(&s.test_x.rows()), "test rows {}", s.test_x.rows());
    }

    #[test]
    fn stratification_keeps_class_ratio() {
        let (x, y) = data(80);
        let s = stratified_split(&x, &y, 0.25, 2);
        let frac =
            |ys: &[Scalar]| ys.iter().filter(|&&v| v == -1.0).count() as f64 / ys.len() as f64;
        let overall = frac(&y);
        assert!((frac(&s.train_y) - overall).abs() < 0.08);
        assert!((frac(&s.test_y) - overall).abs() < 0.08);
        // Both classes appear on both sides.
        assert!(s.test_y.contains(&-1.0) && s.test_y.contains(&1.0));
        assert!(s.train_y.contains(&-1.0) && s.train_y.contains(&1.0));
    }

    #[test]
    fn rows_keep_their_content() {
        let (x, y) = data(12);
        let s = stratified_split(&x, &y, 0.25, 3);
        // Every train row must exist identically in the original matrix.
        for i in 0..s.train_x.rows() {
            let row = s.train_x.row_sparse(i);
            let found = (0..x.rows()).any(|j| {
                let orig = x.row_sparse(j);
                orig.indices() == row.indices()
                    && orig.values() == row.values()
                    && y[j] == s.train_y[i]
            });
            assert!(found, "train row {i} not found in original");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let (x, y) = data(24);
        let a = stratified_split(&x, &y, 0.3, 7);
        let b = stratified_split(&x, &y, 0.3, 7);
        assert_eq!(a.train_y, b.train_y);
        assert_eq!(a.test_x.entries(), b.test_x.entries());
    }

    #[test]
    #[should_panic(expected = "bad test fraction")]
    fn rejects_bad_fraction() {
        let (x, y) = data(8);
        let _ = stratified_split(&x, &y, 0.0, 1);
    }
}
