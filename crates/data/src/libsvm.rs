//! LIBSVM text format: `label idx:value idx:value ...` with 1-based,
//! ascending feature indices. Reading real dataset files lets users run the
//! scheduler on the paper's actual datasets when they have them locally.

// Row loops index the matrix and the label vector together.
#![allow(clippy::needless_range_loop)]

use dls_sparse::{Scalar, TripletMatrix};
use std::io::{BufRead, Write};

/// A parsed LIBSVM dataset: the data matrix plus one label per row.
#[derive(Debug, Clone, PartialEq)]
pub struct LibsvmDataset {
    /// The data matrix (rows = samples).
    pub matrix: TripletMatrix,
    /// Raw labels as written in the file.
    pub labels: Vec<Scalar>,
}

/// Parse error with a line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Reads a LIBSVM-format dataset from any buffered reader.
///
/// The feature dimension is the maximum index seen (indices are 1-based in
/// the format, converted to 0-based internally). Blank lines and `#`
/// comments are skipped.
pub fn read<R: BufRead>(reader: R) -> Result<LibsvmDataset, ParseError> {
    let mut labels = Vec::new();
    let mut rows: Vec<Vec<(usize, Scalar)>> = Vec::new();
    let mut max_col = 0usize;

    for (lineno, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| ParseError { line: lineno + 1, message: e.to_string() })?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split_ascii_whitespace();
        let label_tok = parts.next().expect("non-empty line has a first token");
        let label: Scalar = label_tok.parse().map_err(|_| ParseError {
            line: lineno + 1,
            message: format!("bad label: {label_tok}"),
        })?;
        let mut entries = Vec::new();
        let mut last_idx = 0usize;
        for tok in parts {
            let (idx_s, val_s) = tok.split_once(':').ok_or_else(|| ParseError {
                line: lineno + 1,
                message: format!("expected idx:value, got {tok}"),
            })?;
            let idx: usize = idx_s.parse().map_err(|_| ParseError {
                line: lineno + 1,
                message: format!("bad index: {idx_s}"),
            })?;
            if idx == 0 {
                return Err(ParseError {
                    line: lineno + 1,
                    message: "feature indices are 1-based".into(),
                });
            }
            if idx <= last_idx {
                return Err(ParseError {
                    line: lineno + 1,
                    message: format!("indices must be ascending, {idx} after {last_idx}"),
                });
            }
            last_idx = idx;
            let val: Scalar = val_s.parse().map_err(|_| ParseError {
                line: lineno + 1,
                message: format!("bad value: {val_s}"),
            })?;
            max_col = max_col.max(idx);
            if val != 0.0 {
                entries.push((idx - 1, val));
            }
        }
        labels.push(label);
        rows.push(entries);
    }

    let mut t = TripletMatrix::new(rows.len(), max_col);
    for (i, row) in rows.iter().enumerate() {
        for &(j, v) in row {
            t.push(i, j, v);
        }
    }
    Ok(LibsvmDataset { matrix: t.compact(), labels })
}

/// Writes a dataset in LIBSVM format (1-based ascending indices).
pub fn write<W: Write>(
    w: &mut W,
    matrix: &TripletMatrix,
    labels: &[Scalar],
) -> std::io::Result<()> {
    assert_eq!(matrix.rows(), labels.len(), "one label per row required");
    debug_assert!(matrix.is_compact(), "write requires a compact matrix");
    for i in 0..matrix.rows() {
        write!(w, "{}", labels[i])?;
        let row = matrix.row_sparse(i);
        for (j, v) in row.iter() {
            write!(w, " {}:{}", j + 1, v)?;
        }
        writeln!(w)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_file() {
        let text = "+1 1:0.5 3:1.5\n-1 2:2.0\n";
        let ds = read(text.as_bytes()).unwrap();
        assert_eq!(ds.labels, vec![1.0, -1.0]);
        assert_eq!(ds.matrix.rows(), 2);
        assert_eq!(ds.matrix.cols(), 3);
        assert_eq!(ds.matrix.entries(), &[(0, 0, 0.5), (0, 2, 1.5), (1, 1, 2.0)]);
    }

    #[test]
    fn skips_comments_and_blank_lines() {
        let text = "# header\n\n1 1:1\n";
        let ds = read(text.as_bytes()).unwrap();
        assert_eq!(ds.matrix.rows(), 1);
    }

    #[test]
    fn rejects_zero_index() {
        let err = read("1 0:1.0\n".as_bytes()).unwrap_err();
        assert!(err.message.contains("1-based"));
        assert_eq!(err.line, 1);
    }

    #[test]
    fn rejects_descending_indices() {
        let err = read("1 3:1.0 2:1.0\n".as_bytes()).unwrap_err();
        assert!(err.message.contains("ascending"));
    }

    #[test]
    fn rejects_malformed_tokens() {
        assert!(read("abc 1:1\n".as_bytes()).is_err());
        assert!(read("1 1=2\n".as_bytes()).is_err());
        assert!(read("1 x:2\n".as_bytes()).is_err());
        assert!(read("1 1:y\n".as_bytes()).is_err());
    }

    #[test]
    fn round_trip() {
        let text = "1 1:0.25 2:-1\n-1 3:4\n";
        let ds = read(text.as_bytes()).unwrap();
        let mut buf = Vec::new();
        write(&mut buf, &ds.matrix, &ds.labels).unwrap();
        let ds2 = read(buf.as_slice()).unwrap();
        assert_eq!(ds, ds2);
    }

    #[test]
    fn drops_explicit_zero_values() {
        let ds = read("1 1:0 2:5\n-1 1:1\n".as_bytes()).unwrap();
        assert_eq!(ds.matrix.nnz(), 2);
    }
}
