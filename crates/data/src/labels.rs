//! Label generation for synthetic training problems.
//!
//! The twins need labels that are actually learnable, so classes are
//! assigned by a random linear teacher with optional label noise — an SVM
//! can then meaningfully converge on them.

use dls_sparse::{Scalar, TripletMatrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Assigns ±1 labels with a random linear teacher `sign(x · w − median)`.
///
/// The threshold is the median of the teacher scores, so the classes are
/// balanced regardless of the data distribution. `noise` flips each label
/// independently with that probability.
pub fn linear_teacher_labels(t: &TripletMatrix, noise: f64, seed: u64) -> Vec<Scalar> {
    assert!((0.0..=0.5).contains(&noise), "noise must be in [0, 0.5]");
    let mut rng = StdRng::seed_from_u64(seed);
    let w: Vec<f64> = (0..t.cols()).map(|_| rng.gen::<f64>() * 2.0 - 1.0).collect();

    let mut scores = vec![0.0; t.rows()];
    for &(r, c, v) in t.entries() {
        scores[r] += v * w[c];
    }
    let mut sorted = scores.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = sorted[sorted.len() / 2];

    scores
        .iter()
        .map(|&s| {
            let mut y = if s > median { 1.0 } else { -1.0 };
            if noise > 0.0 && rng.gen::<f64>() < noise {
                y = -y;
            }
            y
        })
        .collect()
}

/// Assigns integer class labels `0..k` by quantiles of the teacher score
/// (for multiclass experiments).
pub fn multiclass_teacher_labels(t: &TripletMatrix, k: usize, seed: u64) -> Vec<i64> {
    assert!(k >= 2, "need at least two classes");
    let mut rng = StdRng::seed_from_u64(seed);
    let w: Vec<f64> = (0..t.cols()).map(|_| rng.gen::<f64>() * 2.0 - 1.0).collect();
    let mut scores = vec![0.0; t.rows()];
    for &(r, c, v) in t.entries() {
        scores[r] += v * w[c];
    }
    let mut sorted = scores.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let thresholds: Vec<f64> =
        (1..k).map(|q| sorted[(q * sorted.len() / k).min(sorted.len() - 1)]).collect();
    scores.iter().map(|&s| thresholds.iter().filter(|&&th| s > th).count() as i64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::specs::DatasetSpec;
    use crate::synth::generate;

    #[test]
    fn labels_are_balanced_and_binary() {
        let spec = DatasetSpec::by_name("adult").unwrap().scaled(10);
        let t = generate(&spec, 1);
        let y = linear_teacher_labels(&t, 0.0, 2);
        assert_eq!(y.len(), t.rows());
        let pos = y.iter().filter(|&&l| l == 1.0).count();
        let neg = y.len() - pos;
        assert!(y.iter().all(|&l| l == 1.0 || l == -1.0));
        // Median split keeps classes within a couple of samples of balance
        // (ties at the median all fall on one side).
        assert!(pos > 0 && neg > 0);
        assert!((pos as i64 - neg as i64).unsigned_abs() as usize <= y.len() / 3);
    }

    #[test]
    fn labels_are_deterministic_per_seed() {
        let spec = DatasetSpec::by_name("adult").unwrap().scaled(20);
        let t = generate(&spec, 1);
        assert_eq!(linear_teacher_labels(&t, 0.0, 5), linear_teacher_labels(&t, 0.0, 5));
        assert_ne!(linear_teacher_labels(&t, 0.0, 5), linear_teacher_labels(&t, 0.0, 6));
    }

    #[test]
    fn noise_flips_some_labels() {
        let spec = DatasetSpec::by_name("adult").unwrap().scaled(5);
        let t = generate(&spec, 1);
        let clean = linear_teacher_labels(&t, 0.0, 7);
        let noisy = linear_teacher_labels(&t, 0.3, 7);
        let flips = clean.iter().zip(&noisy).filter(|(a, b)| a != b).count();
        assert!(flips > 0, "30% noise must flip something");
    }

    #[test]
    fn multiclass_covers_all_classes() {
        let spec = DatasetSpec::by_name("aloi").unwrap();
        let t = generate(spec, 1);
        let y = multiclass_teacher_labels(&t, 4, 3);
        for c in 0..4 {
            assert!(y.contains(&c), "class {c} missing");
        }
        assert!(y.iter().all(|&l| (0..4).contains(&l)));
    }

    #[test]
    #[should_panic(expected = "noise")]
    fn rejects_bad_noise() {
        let t = TripletMatrix::from_dense(2, 2, &[1.0, 0.0, 0.0, 1.0]);
        let _ = linear_teacher_labels(&t, 0.9, 1);
    }
}
