#![warn(missing_docs)]

//! # dls-data
//!
//! Dataset substrate for the reproduction.
//!
//! The paper evaluates on eleven real-world datasets (Table V). Those exact
//! files are not redistributable here, so [`specs`] records every Table V
//! statistic and [`synth`] generates *synthetic twins*: matrices whose nine
//! influencing parameters (M, N, nnz, ndig, dnnz, mdim, adim, vdim, density)
//! match the paper's, which is all the decision system and the format
//! kernels ever observe.
//!
//! [`controlled`] generates the parameter-sweep matrices of Figures 2–4
//! (fixed M, N, nnz with varying ndig / mdim / vdim), and [`libsvm`] reads
//! and writes the LIBSVM text format so real datasets can be dropped in.

pub mod controlled;
pub mod labels;
pub mod libsvm;
pub mod preprocess;
pub mod specs;
pub mod split;
pub mod synth;

pub use preprocess::{FeatureScaler, ScaleRange};
pub use specs::{DatasetSpec, Structure, PAPER_DATASETS};
pub use split::{stratified_split, Split};
pub use synth::generate;
