//! Fixed-width feature vector fed to the decision tree.
//!
//! The tree splits on axis-aligned thresholds, so each feature is a single
//! scalar derived from the nine influencing parameters (Table IV). The set
//! deliberately includes every quantity the hand-written rules test —
//! diagonal fill, density, ELL padding, the index of dispersion — so the
//! trained tree can rediscover the rules where they are right and refine
//! them where they are not. Counts are log-scaled: format choice depends on
//! *ratios* of structural quantities, not absolute sizes.

use dls_sparse::MatrixFeatures;

/// Number of scalar features the tree sees.
pub const NUM_FEATURES: usize = 10;

/// Names of the features, index-aligned with [`featurize`]'s output. These
/// are persisted in model files and checked on load, so a model trained
/// against one feature schema cannot silently mis-predict under another.
pub const FEATURE_NAMES: [&str; NUM_FEATURES] = [
    "log2_m",
    "log2_n",
    "log2_nnz",
    "density",
    "log2_ndig",
    "dia_fill",
    "ndig_frac",
    "ell_padding",
    "log2_vdim",
    "log2_dispersion",
];

/// Maps the nine influencing parameters to the tree's feature vector.
pub fn featurize(f: &MatrixFeatures) -> [f64; NUM_FEATURES] {
    let log2p = |v: f64| (v + 1.0).log2();
    let min_mn = f.m.min(f.n) as f64;
    let dia_fill = if min_mn > 0.0 { f.dnnz / min_mn } else { 0.0 };
    let ndig_frac = if f.m + f.n > 1 { f.ndig as f64 / (f.m + f.n - 1) as f64 } else { 0.0 };
    let dispersion = if f.adim > 0.0 { f.vdim / f.adim } else { 0.0 };
    [
        log2p(f.m as f64),
        log2p(f.n as f64),
        log2p(f.nnz as f64),
        f.density,
        log2p(f.ndig as f64),
        dia_fill,
        ndig_frac,
        f.ell_padding_ratio(),
        log2p(f.vdim),
        log2p(dispersion),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use dls_sparse::TripletMatrix;

    #[test]
    fn names_align_with_vector() {
        assert_eq!(FEATURE_NAMES.len(), NUM_FEATURES);
        let t = TripletMatrix::from_dense(4, 4, &[1.0; 16]);
        let x = featurize(&MatrixFeatures::from_triplets(&t));
        assert_eq!(x.len(), NUM_FEATURES);
        // Dense 4x4: density 1.0 at index 3, zero padding at index 7.
        assert_eq!(x[3], 1.0);
        assert_eq!(x[7], 0.0);
        assert!((x[0] - (5.0f64).log2()).abs() < 1e-12);
    }

    #[test]
    fn featurize_is_finite_on_degenerate_matrices() {
        for t in [TripletMatrix::new(0, 0), TripletMatrix::new(3, 3)] {
            let x = featurize(&MatrixFeatures::from_triplets(&t));
            assert!(x.iter().all(|v| v.is_finite()), "{x:?}");
        }
    }

    #[test]
    fn diagonal_matrix_has_high_dia_fill() {
        let mut t = TripletMatrix::new(8, 8);
        for i in 0..8 {
            t.push(i, i, 1.0);
        }
        let x = featurize(&MatrixFeatures::from_triplets(&t.compact()));
        assert_eq!(x[5], 1.0, "one full diagonal: dnnz / min(M,N) = 1");
        assert!(x[6] < 0.1, "1 of 15 possible diagonals occupied");
    }
}
