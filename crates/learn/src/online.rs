//! Online learning: production telemetry → labelled observations →
//! background retraining → confidence-gated hybrid selection.
//!
//! The offline pipeline ([`crate::train_selector`]) freezes its model at
//! ship time. This module closes the loop the paper never had:
//!
//! 1. **[`LabeledObservation`]** — one executed SMSV sweep as seen in
//!    production (the nine influencing parameters, the format that ran,
//!    the tuned block, the coalesced batch size, measured nanoseconds).
//!    Observations serialise to hand-rolled JSONL, one object per line.
//! 2. **[`ObservationRing`]** — a bounded, thread-safe ring the serve
//!    executor and `ReactiveScheduler` telemetry append into; when full
//!    the oldest observation is overwritten. A retrainer drains it.
//! 3. **[`observations_to_samples`]** — observations grouped by matrix
//!    fingerprint become [`LabelledSample`]s: measured seconds-per-vector
//!    for formats production actually ran, analytic estimates (rescaled to
//!    the measured reference) for the rest.
//! 4. **[`retrain_online`]** — merges production samples with the
//!    synthetic grid (recency-weighted), refits the CART, and upgrades to
//!    a bagged [`ForestModel`] when single-tree holdout accuracy plateaus.
//! 5. **[`HybridSelector`]** — confidence-gated ML+rule selection: the
//!    learned model decides when its vote margin clears a threshold, the
//!    paper's analytic rules decide otherwise (cf. SNIPPETS.md
//!    `MLLoopOptSelector`), with fallback counts for telemetry.
//!
//! The serve-side half (recording site, background thread, regret-guarded
//! hot swap) lives in `dls-serve::feedback`.

use crate::eval::{evaluate, split_holdout, EvalSummary};
use crate::features::{featurize, NUM_FEATURES};
use crate::grid::{training_grid, GridConfig};
use crate::label::{label_case, LabelMode, LabelSource, LabelledSample};
use crate::persist::{ModelMeta, TrainedModel};
use crate::selector::LearnedSelector;
use crate::tree::{DecisionTree, TreeParams};
use dls_core::json::{escape, number, parse};
use dls_core::{
    BandwidthProfile, CostModelSelector, FormatSelector, ReactiveReport, RuleBasedSelector,
    SelectionReport,
};
use dls_sparse::telemetry::format_index;
use dls_sparse::{Format, MatrixFeatures, TripletMatrix};
use std::collections::HashMap;
use std::collections::VecDeque;
use std::str::FromStr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// One executed sweep observed in production — the unit of the telemetry
/// training log.
#[derive(Debug, Clone, PartialEq)]
pub struct LabeledObservation {
    /// Monotonic sequence number, assigned by the ring on append.
    pub seq: u64,
    /// Extracted influencing parameters of the matrix that was served.
    pub features: MatrixFeatures,
    /// Format that executed the sweep.
    pub format: Format,
    /// Tuned kernel block size in effect.
    pub block: usize,
    /// Vectors coalesced into the sweep.
    pub batch: usize,
    /// Measured wall time of the whole sweep, nanoseconds.
    pub nanos: u64,
}

impl LabeledObservation {
    /// Feature vector for training.
    pub fn x(&self) -> [f64; NUM_FEATURES] {
        featurize(&self.features)
    }

    /// Seconds per vector — the unit comparable across batch sizes.
    pub fn secs_per_vector(&self) -> f64 {
        self.nanos as f64 * 1e-9 / self.batch.max(1) as f64
    }

    /// One JSONL line (no trailing newline). Canonical: parsing and
    /// re-encoding is byte-identical.
    pub fn to_jsonl(&self) -> String {
        let f = &self.features;
        format!(
            "{{\"seq\":{},\"m\":{},\"n\":{},\"nnz\":{},\"ndig\":{},\"dnnz\":{},\
             \"mdim\":{},\"adim\":{},\"vdim\":{},\"density\":{},\
             \"format\":{},\"block\":{},\"batch\":{},\"nanos\":{}}}",
            self.seq,
            f.m,
            f.n,
            f.nnz,
            f.ndig,
            number(f.dnnz),
            f.mdim,
            number(f.adim),
            number(f.vdim),
            number(f.density),
            escape(&self.format.to_string()),
            self.block,
            self.batch,
            self.nanos,
        )
    }

    /// Parses one JSONL line.
    pub fn from_jsonl(line: &str) -> Result<Self, String> {
        let v = parse(line)?;
        let usize_of = |key: &str| -> Result<usize, String> {
            v.req(key)?.as_usize().ok_or_else(|| format!("\"{key}\" must be a count"))
        };
        let f64_of = |key: &str| -> Result<f64, String> {
            v.req(key)?.as_f64().ok_or_else(|| format!("\"{key}\" must be a number"))
        };
        let u64_of = |key: &str| -> Result<u64, String> {
            v.req(key)?.as_u64().ok_or_else(|| format!("\"{key}\" must be a count"))
        };
        let name = v.req("format")?.as_str().ok_or("\"format\" must be a string")?;
        Ok(Self {
            seq: u64_of("seq")?,
            features: MatrixFeatures {
                m: usize_of("m")?,
                n: usize_of("n")?,
                nnz: usize_of("nnz")?,
                ndig: usize_of("ndig")?,
                dnnz: f64_of("dnnz")?,
                mdim: usize_of("mdim")?,
                adim: f64_of("adim")?,
                vdim: f64_of("vdim")?,
                density: f64_of("density")?,
            },
            format: Format::from_str(name).map_err(|e| e.to_string())?,
            block: usize_of("block")?,
            batch: usize_of("batch")?,
            nanos: u64_of("nanos")?,
        })
    }
}

/// Bounded, thread-safe observation ring. Appenders never block on a slow
/// retrainer: when the ring is full the **oldest** observation is dropped
/// (and counted), so the log always holds the most recent window of
/// production traffic.
#[derive(Debug)]
pub struct ObservationRing {
    cap: usize,
    seq: AtomicU64,
    dropped: AtomicU64,
    buf: Mutex<VecDeque<LabeledObservation>>,
}

impl ObservationRing {
    /// Creates a ring holding at most `cap` observations (`cap >= 1`).
    pub fn new(cap: usize) -> Self {
        Self {
            cap: cap.max(1),
            seq: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            buf: Mutex::new(VecDeque::with_capacity(cap.max(1))),
        }
    }

    /// Appends one observation, assigning its sequence number. Returns the
    /// assigned sequence. Overwrites the oldest entry when full.
    pub fn append(&self, mut obs: LabeledObservation) -> u64 {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        obs.seq = seq;
        let mut buf = self.buf.lock().expect("observation ring poisoned");
        if buf.len() == self.cap {
            buf.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        buf.push_back(obs);
        seq
    }

    /// Takes everything currently buffered, oldest first.
    pub fn drain(&self) -> Vec<LabeledObservation> {
        let mut buf = self.buf.lock().expect("observation ring poisoned");
        buf.drain(..).collect()
    }

    /// Observations currently buffered.
    pub fn len(&self) -> usize {
        self.buf.lock().expect("observation ring poisoned").len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum observations held.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Total observations ever appended.
    pub fn total_appended(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Observations overwritten before being drained.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Drains the ring and writes one JSONL line per observation.
    pub fn flush_jsonl(&self, out: &mut impl std::io::Write) -> std::io::Result<usize> {
        let drained = self.drain();
        for obs in &drained {
            writeln!(out, "{}", obs.to_jsonl())?;
        }
        Ok(drained.len())
    }
}

/// Parses a JSONL log (as written by [`ObservationRing::flush_jsonl`]).
/// Blank lines are skipped; a malformed line fails with its line number.
pub fn parse_jsonl_log(text: &str) -> Result<Vec<LabeledObservation>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        out.push(LabeledObservation::from_jsonl(line).map_err(|e| format!("line {}: {e}", i + 1))?);
    }
    Ok(out)
}

/// Mines a [`ReactiveReport`] for observations: every format the reactive
/// run actually executed becomes one observation carrying that format's
/// mean measured time per call. Lives here (not in `dls-core`) so the core
/// crate stays free of learning dependencies; callers append the result to
/// an [`ObservationRing`].
pub fn observations_from_reactive(report: &ReactiveReport) -> Vec<LabeledObservation> {
    report
        .telemetry
        .per_format
        .iter()
        .filter(|t| t.calls > 0 && t.nanos > 0)
        .map(|t| LabeledObservation {
            seq: 0, // assigned on append
            features: report.initial.features,
            format: t.format,
            block: report.initial.block,
            batch: 1, // SMO kernel rows are single-vector sweeps
            nanos: (t.nanos / t.calls).max(1),
        })
        .collect()
}

/// Quantised fingerprint: observations of the same matrix group together.
fn fingerprint(f: &MatrixFeatures) -> [u64; 9] {
    [
        f.m as u64,
        f.n as u64,
        f.nnz as u64,
        f.ndig as u64,
        f.mdim as u64,
        f.dnnz.to_bits(),
        f.adim.to_bits(),
        f.vdim.to_bits(),
        f.density.to_bits(),
    ]
}

fn analytic_scores(f: &MatrixFeatures) -> [f64; Format::BASIC.len()] {
    let sel = CostModelSelector::with_bandwidth(BandwidthProfile::FLAT);
    let mut scores = [0.0; Format::BASIC.len()];
    for (i, &fmt) in Format::BASIC.iter().enumerate() {
        scores[i] = sel.predicted_time(fmt, f);
    }
    scores
}

fn argmin(scores: &[f64]) -> usize {
    let mut best = 0;
    for (i, &s) in scores.iter().enumerate() {
        if s < scores[best] {
            best = i;
        }
    }
    best
}

/// Converts production observations into labelled training samples.
///
/// Observations are grouped by matrix fingerprint. Within a group, each
/// *observed* basic format gets the mean measured seconds-per-vector;
/// unobserved formats get the analytic prediction rescaled so the analytic
/// and measured scales agree on the most-observed format (the same
/// calibration trick `MispredictDetector` uses). The label is the argmin;
/// its provenance is [`LabelSource::Measured`] when the winner was
/// actually measured, [`LabelSource::AnalyticFallback`] when the rescaled
/// analytic estimate of an unobserved format wins. Observations of derived
/// (non-basic) formats are skipped — the label space is the basic five.
pub fn observations_to_samples(obs: &[LabeledObservation]) -> Vec<LabelledSample> {
    struct Group {
        features: MatrixFeatures,
        first_seq: u64,
        // Per basic format: (sum secs/vector, count).
        sums: [(f64, u64); Format::BASIC.len()],
    }
    let mut order: Vec<Group> = Vec::new();
    let mut index: HashMap<[u64; 9], usize> = HashMap::new();
    for o in obs {
        let Some(fi) = Format::BASIC.iter().position(|&f| f == o.format) else {
            continue;
        };
        let key = fingerprint(&o.features);
        let gi = *index.entry(key).or_insert_with(|| {
            order.push(Group {
                features: o.features,
                first_seq: o.seq,
                sums: [(0.0, 0); Format::BASIC.len()],
            });
            order.len() - 1
        });
        let slot = &mut order[gi].sums[fi];
        slot.0 += o.secs_per_vector();
        slot.1 += 1;
    }

    order
        .into_iter()
        .map(|g| {
            let analytic = analytic_scores(&g.features);
            // Reference: the most-observed format (ties to the earlier
            // Format::BASIC entry) anchors the analytic→measured rescale.
            let reference = g
                .sums
                .iter()
                .enumerate()
                .max_by_key(|(_, &(_, c))| c)
                .map(|(i, _)| i)
                .expect("basic format space is non-empty");
            let measured_ref = g.sums[reference].0 / g.sums[reference].1.max(1) as f64;
            let ratio = if analytic[reference] > 0.0 && measured_ref > 0.0 {
                measured_ref / analytic[reference]
            } else {
                1.0
            };
            let mut scores = [0.0; Format::BASIC.len()];
            let mut observed = [false; Format::BASIC.len()];
            for (i, &(sum, count)) in g.sums.iter().enumerate() {
                if count > 0 {
                    scores[i] = sum / count as f64;
                    observed[i] = true;
                } else {
                    scores[i] = analytic[i] * ratio;
                }
            }
            let best = argmin(&scores);
            LabelledSample {
                desc: format!("online#{}", g.first_seq),
                features: g.features,
                x: featurize(&g.features),
                label: Format::BASIC[best],
                scores,
                source: if observed[best] {
                    LabelSource::Measured
                } else {
                    LabelSource::AnalyticFallback
                },
            }
        })
        .collect()
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// A small bagged forest: independent CARTs trained on bootstrap resamples
/// of the same training set, predicting by majority vote. The vote share of
/// the winner is the prediction's confidence.
#[derive(Debug, Clone, PartialEq)]
pub struct ForestModel {
    trees: Vec<DecisionTree>,
}

impl ForestModel {
    /// Trains `n_trees` trees on deterministic bootstrap resamples
    /// (seeded by `seed`; tree `k` resamples with stream `seed + k`).
    pub fn train(
        xs: &[[f64; NUM_FEATURES]],
        ys: &[Format],
        params: TreeParams,
        n_trees: usize,
        seed: u64,
    ) -> Self {
        assert!(!xs.is_empty(), "cannot train a forest on an empty sample set");
        let n = xs.len();
        let trees = (0..n_trees.max(1))
            .map(|k| {
                let mut state = seed.wrapping_add(k as u64).wrapping_mul(0x9e3779b97f4a7c15);
                let mut bx = Vec::with_capacity(n);
                let mut by = Vec::with_capacity(n);
                for _ in 0..n {
                    let i = (splitmix64(&mut state) % n as u64) as usize;
                    bx.push(xs[i]);
                    by.push(ys[i]);
                }
                DecisionTree::train(&bx, &by, params)
            })
            .collect();
        Self { trees }
    }

    /// Rebuilds a forest from deserialised trees (used by model loading).
    pub fn from_trees(trees: Vec<DecisionTree>) -> Self {
        assert!(!trees.is_empty(), "a forest holds at least one tree");
        Self { trees }
    }

    /// The member trees.
    pub fn trees(&self) -> &[DecisionTree] {
        &self.trees
    }

    /// Number of trees.
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// Always false — construction requires at least one tree.
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }

    /// Majority-vote prediction (ties break to the earlier
    /// [`Format::ALL`] entry).
    pub fn predict(&self, x: &[f64; NUM_FEATURES]) -> Format {
        self.predict_with_confidence(x).0
    }

    /// Majority vote plus the winner's vote share in `[0, 1]`.
    pub fn predict_with_confidence(&self, x: &[f64; NUM_FEATURES]) -> (Format, f64) {
        let mut votes = [0usize; Format::ALL.len()];
        for tree in &self.trees {
            votes[format_index(tree.predict(x))] += 1;
        }
        let best = (0..votes.len()).max_by_key(|&k| votes[k]).expect("non-empty class space");
        (Format::ALL[best], votes[best] as f64 / self.trees.len() as f64)
    }
}

/// Knobs for one online retraining cycle.
#[derive(Debug, Clone, Copy)]
pub struct OnlineTrainConfig {
    /// Seed for grid generation and forest bootstrapping.
    pub seed: u64,
    /// Quick (CI-sized) synthetic grid instead of the full one.
    pub quick_grid: bool,
    /// Tree pruning parameters.
    pub params: TreeParams,
    /// Holdout stride over the synthetic grid; the held-out slice doubles
    /// as the trusted replay slice for the swap guard.
    pub holdout_stride: usize,
    /// Replication weight of each production-derived sample relative to a
    /// grid sample — production evidence is measured on *this* machine and
    /// workload, so it outweighs the synthetic prior.
    pub production_weight: usize,
    /// Extra multiplier for the most recent half of production samples.
    pub recency_boost: usize,
    /// Forest size used when the single tree plateaus (clamped to 3..=7).
    pub ensemble_trees: usize,
    /// Upgrade to the ensemble when single-tree holdout accuracy fails to
    /// beat the incumbent's by at least this much.
    pub plateau_margin: f64,
}

impl Default for OnlineTrainConfig {
    fn default() -> Self {
        Self {
            seed: GridConfig::default().seed,
            quick_grid: false,
            params: TreeParams::default(),
            holdout_stride: 5,
            production_weight: 3,
            recency_boost: 2,
            ensemble_trees: 5,
            plateau_margin: 0.005,
        }
    }
}

/// Everything one online retraining cycle produces.
#[derive(Debug, Clone)]
pub struct OnlineOutcome {
    /// The candidate model (single tree, or tree + ensemble).
    pub model: TrainedModel,
    /// Trusted replay slice: grid samples never seen during fitting. The
    /// swap guard replays candidate and incumbent over this slice, so a
    /// poisoned telemetry log cannot also poison its own acceptance test.
    pub holdout: Vec<LabelledSample>,
    /// Candidate holdout agreement (of whichever predictor `model` uses).
    pub holdout_accuracy: f64,
    /// True when the plateau rule fired and the forest is attached.
    pub ensemble_used: bool,
    /// Distinct production-derived samples merged into training.
    pub production_samples: usize,
}

/// Replays `model` over `slice` and grades it against the oracle scores.
pub fn model_regret(model: &TrainedModel, name: &str, slice: &[LabelledSample]) -> EvalSummary {
    let picks: Vec<Format> = slice.iter().map(|s| model.predict(&s.x)).collect();
    evaluate(name, slice, &picks)
}

/// One retraining cycle: synthetic grid (analytic labels, deterministic —
/// this runs on a background thread, so no timing) merged with production
/// observations, recency-weighted, refit. When `incumbent_accuracy` is
/// known and the fresh single tree fails to improve on it by
/// `plateau_margin`, a bagged forest is trained and attached if it scores
/// at least as well on the holdout.
pub fn retrain_online(
    cfg: &OnlineTrainConfig,
    observations: &[LabeledObservation],
    incumbent_accuracy: Option<f64>,
) -> OnlineOutcome {
    let grid_cfg = GridConfig { seed: cfg.seed, quick: cfg.quick_grid, ..Default::default() };
    let cases = training_grid(&grid_cfg);
    let grid_samples: Vec<LabelledSample> =
        cases.iter().map(|c| label_case(&c.desc, &c.matrix, LabelMode::analytic_flat())).collect();
    let (grid_train, holdout) = split_holdout(grid_samples, cfg.holdout_stride.max(2));

    let production = observations_to_samples(observations);
    let n_production = production.len();

    // Weighted merge by replication: the CART trainer is unweighted, so a
    // sample with weight w appears w times. Production outweighs the
    // synthetic prior, and the most recent half of production (groups are
    // ordered by first appearance in the log) gets a further boost.
    let mut xs: Vec<[f64; NUM_FEATURES]> = Vec::new();
    let mut ys: Vec<Format> = Vec::new();
    let mut measured = 0usize;
    let mut analytic_fallback = 0usize;
    let mut analytic = 0usize;
    for s in &grid_train {
        xs.push(s.x);
        ys.push(s.label);
        analytic += 1;
    }
    let recent_from = n_production / 2;
    for (i, s) in production.iter().enumerate() {
        let weight = cfg.production_weight.max(1)
            * if i >= recent_from { cfg.recency_boost.max(1) } else { 1 };
        for _ in 0..weight {
            xs.push(s.x);
            ys.push(s.label);
            match s.source {
                LabelSource::Measured => measured += 1,
                LabelSource::AnalyticFallback => analytic_fallback += 1,
                LabelSource::Analytic => analytic += 1,
            }
        }
    }

    let tree = DecisionTree::train(&xs, &ys, cfg.params);
    let tree_model = TrainedModel {
        meta: ModelMeta {
            seed: cfg.seed,
            grid: "online".into(),
            samples: xs.len(),
            measured,
            analytic_fallback,
            analytic,
        },
        tree,
        blocks: None,
        ensemble: None,
    };
    let tree_accuracy = model_regret(&tree_model, "tree", &holdout).agreement;

    // Plateau rule: a fresh single tree that cannot beat the incumbent is
    // at the ceiling of what one tree extracts from this data — spend the
    // extra memory on variance reduction instead.
    let plateaued =
        incumbent_accuracy.map(|prev| tree_accuracy <= prev + cfg.plateau_margin).unwrap_or(false);
    if plateaued {
        let n_trees = cfg.ensemble_trees.clamp(3, 7);
        let forest = ForestModel::train(&xs, &ys, cfg.params, n_trees, cfg.seed);
        let forest_model = TrainedModel { ensemble: Some(forest), ..tree_model.clone() };
        let forest_accuracy = model_regret(&forest_model, "forest", &holdout).agreement;
        if forest_accuracy >= tree_accuracy {
            return OnlineOutcome {
                model: forest_model,
                holdout,
                holdout_accuracy: forest_accuracy,
                ensemble_used: true,
                production_samples: n_production,
            };
        }
    }
    OnlineOutcome {
        model: tree_model,
        holdout,
        holdout_accuracy: tree_accuracy,
        ensemble_used: false,
        production_samples: n_production,
    }
}

/// Confidence-gated hybrid selector: the learned model (tree or forest)
/// decides when its confidence clears `min_confidence`; below that, the
/// paper's analytic rules decide. Fallback counts are exposed for
/// telemetry.
#[derive(Debug)]
pub struct HybridSelector {
    learned: LearnedSelector,
    rules: RuleBasedSelector,
    min_confidence: f64,
    decisions: AtomicU64,
    fallbacks: AtomicU64,
}

/// Default confidence gate: a forest of 5 needs a 4-1 vote (or a leaf at
/// 75% purity) for the learned pick to stand on its own.
pub const DEFAULT_MIN_CONFIDENCE: f64 = 0.75;

impl HybridSelector {
    /// Wraps a trained model with the default gate and host-tuned rules.
    pub fn new(model: TrainedModel) -> Self {
        Self::with_confidence(model, DEFAULT_MIN_CONFIDENCE)
    }

    /// Wraps a trained model with an explicit confidence gate.
    pub fn with_confidence(model: TrainedModel, min_confidence: f64) -> Self {
        Self {
            learned: LearnedSelector::new(model),
            rules: RuleBasedSelector::for_host(),
            min_confidence,
            decisions: AtomicU64::new(0),
            fallbacks: AtomicU64::new(0),
        }
    }

    /// The underlying model.
    pub fn model(&self) -> &TrainedModel {
        self.learned.model()
    }

    /// The confidence gate.
    pub fn min_confidence(&self) -> f64 {
        self.min_confidence
    }

    /// Selections made so far.
    pub fn decisions(&self) -> u64 {
        self.decisions.load(Ordering::Relaxed)
    }

    /// Selections that fell back to the analytic rules.
    pub fn fallbacks(&self) -> u64 {
        self.fallbacks.load(Ordering::Relaxed)
    }

    /// Fraction of selections decided by the rules (0 when unused).
    pub fn fallback_rate(&self) -> f64 {
        let d = self.decisions();
        if d == 0 {
            0.0
        } else {
            self.fallbacks() as f64 / d as f64
        }
    }
}

impl FormatSelector for HybridSelector {
    fn select(&self, t: &TripletMatrix, f: &MatrixFeatures) -> SelectionReport {
        self.decisions.fetch_add(1, Ordering::Relaxed);
        let x = featurize(f);
        let (format, confidence) = self.model().predict_with_confidence(&x);
        if confidence >= self.min_confidence {
            let mut report = self.learned.select(t, f);
            report.chosen = format;
            report.block = self.learned.tuned_block(format, f);
            report.reason = format!(
                "hybrid learned ({}, confidence {confidence:.2} >= {:.2}): {}",
                if self.model().ensemble.is_some() { "forest" } else { "tree" },
                self.min_confidence,
                report.reason,
            );
            report
        } else {
            self.fallbacks.fetch_add(1, Ordering::Relaxed);
            let mut report = self.rules.select(t, f);
            report.block = self.learned.tuned_block(report.chosen, f);
            report.reason = format!(
                "hybrid rule fallback (confidence {confidence:.2} < {:.2} for {format}): {}",
                self.min_confidence, report.reason,
            );
            report
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dls_data::controlled::{diag_matrix, mdim_matrix};
    use std::sync::Arc;

    // A CSR-shaped matrix (nnz = 2·m concentrated in one wide row): CSR is
    // both the analytic winner and the plausible measured one, so rescaled
    // analytic estimates of unobserved formats cannot undercut it.
    fn obs(m: usize, nnz: usize, format: Format, nanos: u64, batch: usize) -> LabeledObservation {
        let t = mdim_matrix(m, m, nnz, m, 2);
        LabeledObservation {
            seq: 0,
            features: MatrixFeatures::from_triplets(&t),
            format,
            block: 8,
            batch,
            nanos,
        }
    }

    #[test]
    fn jsonl_round_trip_is_identity() {
        let o = obs(128, 256, Format::Dia, 12_345, 4);
        let line = o.to_jsonl();
        let restored = LabeledObservation::from_jsonl(&line).unwrap();
        assert_eq!(restored, o);
        assert_eq!(restored.to_jsonl(), line, "encoding is canonical");
    }

    #[test]
    fn jsonl_log_round_trips_through_flush() {
        let ring = ObservationRing::new(8);
        for k in 0..5u64 {
            ring.append(obs(64 + k as usize, 128, Format::Csr, 1000 + k, 1));
        }
        let mut bytes = Vec::new();
        let n = ring.flush_jsonl(&mut bytes).unwrap();
        assert_eq!(n, 5);
        assert!(ring.is_empty(), "flush drains");
        let text = String::from_utf8(bytes).unwrap();
        let restored = parse_jsonl_log(&text).unwrap();
        assert_eq!(restored.len(), 5);
        assert_eq!(restored[0].seq, 0);
        assert_eq!(restored[4].seq, 4);
        assert!(parse_jsonl_log("{\"seq\":}").is_err(), "malformed lines are rejected");
    }

    #[test]
    fn ring_overwrites_oldest_when_full() {
        let ring = ObservationRing::new(3);
        for k in 0..5 {
            ring.append(obs(64, 128, Format::Csr, 1000 + k, 1));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.total_appended(), 5);
        assert_eq!(ring.dropped(), 2);
        let drained = ring.drain();
        // Seqs 0 and 1 were overwritten; the newest three survive in order.
        let seqs: Vec<u64> = drained.iter().map(|o| o.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4]);
        assert_eq!(ring.dropped(), 2, "draining does not count as dropping");
    }

    #[test]
    fn concurrent_append_while_drain_loses_nothing_below_capacity() {
        // Appenders and a drainer race; every appended observation must end
        // up either in some drain batch or still buffered — none vanish and
        // none duplicate (the ring never overflows in this test).
        let ring = Arc::new(ObservationRing::new(100_000));
        let n_threads = 4;
        let per_thread = 500;
        let drained = Arc::new(Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        for t in 0..n_threads {
            let ring = Arc::clone(&ring);
            handles.push(std::thread::spawn(move || {
                for k in 0..per_thread {
                    ring.append(obs(64, 128, Format::Csr, (t * per_thread + k) as u64 + 1, 1));
                }
            }));
        }
        let drainer = {
            let ring = Arc::clone(&ring);
            let drained = Arc::clone(&drained);
            std::thread::spawn(move || {
                for _ in 0..50 {
                    let batch = ring.drain();
                    drained.lock().unwrap().extend(batch);
                    std::thread::yield_now();
                }
            })
        };
        for h in handles {
            h.join().unwrap();
        }
        drainer.join().unwrap();
        let mut all = drained.lock().unwrap().clone();
        all.extend(ring.drain());
        assert_eq!(all.len(), n_threads * per_thread);
        let mut seqs: Vec<u64> = all.iter().map(|o| o.seq).collect();
        seqs.sort_unstable();
        seqs.dedup();
        assert_eq!(seqs.len(), n_threads * per_thread, "every seq exactly once");
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn observed_winner_is_labelled_measured() {
        // Same matrix observed under two formats; CSR measured much faster.
        let mut observations = vec![
            obs(128, 256, Format::Csr, 1_000, 1),
            obs(128, 256, Format::Dia, 50_000, 1),
            obs(128, 256, Format::Csr, 1_200, 1),
        ];
        for (i, o) in observations.iter_mut().enumerate() {
            o.seq = i as u64;
        }
        let samples = observations_to_samples(&observations);
        assert_eq!(samples.len(), 1, "one fingerprint group");
        let s = &samples[0];
        assert_eq!(s.label, Format::Csr);
        assert_eq!(s.source, LabelSource::Measured);
        // CSR's score is the mean of its two measurements.
        assert!((s.score_of(Format::Csr).unwrap() - 1.1e-6).abs() < 1e-12);
        // DIA keeps its own measurement rather than an analytic guess.
        assert!((s.score_of(Format::Dia).unwrap() - 5e-5).abs() < 1e-12);
    }

    #[test]
    fn derived_format_observations_are_skipped() {
        let observations = vec![obs(128, 256, Format::Hyb, 1_000, 1)];
        assert!(observations_to_samples(&observations).is_empty());
    }

    #[test]
    fn forest_is_deterministic_and_votes_sensibly() {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for k in 0..40 {
            let mut x = [0.0; NUM_FEATURES];
            x[3] = k as f64 / 39.0;
            xs.push(x);
            ys.push(if x[3] > 0.5 { Format::Den } else { Format::Csr });
        }
        let a = ForestModel::train(&xs, &ys, TreeParams::default(), 5, 7);
        let b = ForestModel::train(&xs, &ys, TreeParams::default(), 5, 7);
        assert_eq!(a, b, "same seed, same forest");
        assert_eq!(a.len(), 5);
        let mut deep = [0.0; NUM_FEATURES];
        deep[3] = 0.95;
        let (fmt, conf) = a.predict_with_confidence(&deep);
        assert_eq!(fmt, Format::Den);
        assert!(conf >= 0.6, "far from the boundary the vote is strong: {conf}");
    }

    #[test]
    fn retrain_merges_production_and_plateau_grows_a_forest() {
        let cfg = OnlineTrainConfig { quick_grid: true, ..Default::default() };
        let base = retrain_online(&cfg, &[], None);
        assert!(base.model.ensemble.is_none(), "no incumbent, no plateau");
        assert!(base.holdout_accuracy > 0.5);
        assert_eq!(base.production_samples, 0);

        // A fresh tree on the same data cannot beat an incumbent already at
        // its own accuracy — the plateau rule must fire.
        let upgraded = retrain_online(&cfg, &[], Some(base.holdout_accuracy));
        assert!(upgraded.ensemble_used, "plateau upgrades to the ensemble");
        assert_eq!(upgraded.model.ensemble_size(), 5);
        assert!(upgraded.holdout_accuracy >= base.holdout_accuracy);

        // Production observations land in the meta counts.
        let mut observations =
            vec![obs(200, 400, Format::Csr, 900, 1), obs(200, 400, Format::Dia, 90_000, 1)];
        for (i, o) in observations.iter_mut().enumerate() {
            o.seq = i as u64;
        }
        let with_prod = retrain_online(&cfg, &observations, None);
        assert_eq!(with_prod.production_samples, 1);
        assert!(with_prod.model.meta.measured > 0, "production samples counted as measured");
        assert_eq!(with_prod.model.meta.grid, "online");
    }

    #[test]
    fn retraining_is_deterministic() {
        let cfg = OnlineTrainConfig { quick_grid: true, ..Default::default() };
        let observations = vec![obs(96, 192, Format::Ell, 2_000, 2)];
        let a = retrain_online(&cfg, &observations, Some(0.99));
        let b = retrain_online(&cfg, &observations, Some(0.99));
        assert_eq!(a.model, b.model);
        assert_eq!(a.model.to_json(), b.model.to_json());
    }

    #[test]
    fn hybrid_selector_gates_on_confidence() {
        let cfg = OnlineTrainConfig { quick_grid: true, ..Default::default() };
        let model = retrain_online(&cfg, &[], None).model;
        let t = diag_matrix(128, 128, 256, 2, 1);
        let f = MatrixFeatures::from_triplets(&t);

        // Gate at 0: the learned model always decides.
        let trusting = HybridSelector::with_confidence(model.clone(), 0.0);
        let r = trusting.select(&t, &f);
        assert!(r.reason.starts_with("hybrid learned"), "{}", r.reason);
        assert_eq!(trusting.decisions(), 1);
        assert_eq!(trusting.fallbacks(), 0);

        // Gate above 1: everything falls back to the rules.
        let skeptical = HybridSelector::with_confidence(model, 1.1);
        let r = skeptical.select(&t, &f);
        assert!(r.reason.starts_with("hybrid rule fallback"), "{}", r.reason);
        assert_eq!(skeptical.fallbacks(), 1);
        assert!((skeptical.fallback_rate() - 1.0).abs() < 1e-12);
        // The rules know a diagonal matrix when they see one.
        assert_eq!(r.chosen, Format::Dia, "{}", r.reason);
    }
}
