//! Pure-Rust CART *regression* tree: the classifier's induction machinery
//! ([`crate::tree`]) re-targeted at a continuous response.
//!
//! Splits minimise the weighted sum of squared errors instead of Gini
//! impurity; leaves predict the mean response of their training samples.
//! The trainer keeps the classifier's determinism contract: candidate
//! thresholds are midpoints between consecutive distinct sorted values,
//! ties in gain break towards the lower feature index then the lower
//! threshold, so the same samples always grow the same tree.
//!
//! The first consumer is `dls-serve`'s learned latency predictor, which
//! fits sweep time (log-nanoseconds) as a function of a model's nine
//! influencing parameters plus the coalesced batch size — so feature width
//! is a runtime value here, not the classifier's compile-time
//! [`crate::features::NUM_FEATURES`].

/// Pruning limits for regression-tree induction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegressParams {
    /// Maximum split depth (a lone leaf is depth 0).
    pub max_depth: usize,
    /// Minimum samples on each side of a split.
    pub min_leaf: usize,
    /// Minimum reduction in total squared error for a split to be kept.
    pub min_gain: f64,
}

impl Default for RegressParams {
    fn default() -> Self {
        Self { max_depth: 12, min_leaf: 1, min_gain: 1e-12 }
    }
}

/// One regression-tree node.
#[derive(Debug, Clone, PartialEq)]
pub enum RegressNode {
    /// Terminal node predicting the mean response of its training samples.
    Leaf {
        /// Mean response at this leaf.
        value: f64,
        /// Training samples that landed here.
        n: usize,
    },
    /// Internal node: `x[feature] <= threshold` goes left, else right.
    Split {
        /// Feature index into the sample vectors.
        feature: usize,
        /// Split threshold.
        threshold: f64,
        /// Subtree for `x[feature] <= threshold`.
        left: Box<RegressNode>,
        /// Subtree for `x[feature] > threshold`.
        right: Box<RegressNode>,
    },
}

/// A trained CART regression tree over fixed-width feature vectors.
#[derive(Debug, Clone, PartialEq)]
pub struct RegressionTree {
    width: usize,
    params: RegressParams,
    root: RegressNode,
}

/// Sum of squared errors around the mean of `ys[idx]`.
fn sse(ys: &[f64], idx: &[usize]) -> f64 {
    if idx.is_empty() {
        return 0.0;
    }
    let mean = idx.iter().map(|&i| ys[i]).sum::<f64>() / idx.len() as f64;
    idx.iter().map(|&i| (ys[i] - mean).powi(2)).sum()
}

fn leaf(ys: &[f64], idx: &[usize]) -> RegressNode {
    let n = idx.len();
    let value = if n == 0 { 0.0 } else { idx.iter().map(|&i| ys[i]).sum::<f64>() / n as f64 };
    RegressNode::Leaf { value, n }
}

struct BestSplit {
    gain: f64,
    feature: usize,
    threshold: f64,
}

impl RegressionTree {
    /// Trains a tree on `(xs[i], ys[i])` pairs; every sample must have
    /// `width` finite features. Panics on empty or mismatched inputs —
    /// training sets come from this workspace's own calibration loops, so
    /// emptiness is a bug, not a user error.
    pub fn train(width: usize, xs: &[Vec<f64>], ys: &[f64], params: RegressParams) -> Self {
        assert_eq!(xs.len(), ys.len(), "every sample needs a response");
        assert!(!xs.is_empty(), "cannot train on an empty sample set");
        assert!(params.min_leaf >= 1, "min_leaf must be at least 1");
        assert!(params.min_gain > 0.0, "min_gain must be strictly positive");
        for x in xs {
            assert_eq!(x.len(), width, "feature width mismatch");
        }
        let idx: Vec<usize> = (0..xs.len()).collect();
        let root = build(width, xs, ys, &idx, &params, 0);
        Self { width, params, root }
    }

    /// Reassembles a tree from persisted parts (the model-JSON loaders'
    /// constructor; [`RegressionTree::train`] is the only other way in).
    pub fn from_parts(width: usize, params: RegressParams, root: RegressNode) -> Self {
        Self { width, params, root }
    }

    /// The feature width the tree was trained on.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The pruning parameters the tree was trained with.
    pub fn params(&self) -> RegressParams {
        self.params
    }

    /// The root node, for structural checks.
    pub fn root(&self) -> &RegressNode {
        &self.root
    }

    /// Predicted response for one feature vector.
    pub fn predict(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.width, "feature width mismatch");
        let mut node = &self.root;
        loop {
            match node {
                RegressNode::Leaf { value, .. } => return *value,
                RegressNode::Split { feature, threshold, left, right } => {
                    node = if x[*feature] <= *threshold { left } else { right };
                }
            }
        }
    }

    /// Maximum depth (a single leaf is depth 0).
    pub fn depth(&self) -> usize {
        fn d(node: &RegressNode) -> usize {
            match node {
                RegressNode::Leaf { .. } => 0,
                RegressNode::Split { left, right, .. } => 1 + d(left).max(d(right)),
            }
        }
        d(&self.root)
    }

    /// Number of leaves.
    pub fn n_leaves(&self) -> usize {
        fn count(node: &RegressNode) -> usize {
            match node {
                RegressNode::Leaf { .. } => 1,
                RegressNode::Split { left, right, .. } => count(left) + count(right),
            }
        }
        count(&self.root)
    }
}

fn build(
    width: usize,
    xs: &[Vec<f64>],
    ys: &[f64],
    idx: &[usize],
    params: &RegressParams,
    depth: usize,
) -> RegressNode {
    let parent_sse = sse(ys, idx);
    let n = idx.len();
    if depth >= params.max_depth || n < 2 * params.min_leaf || parent_sse <= 0.0 {
        return leaf(ys, idx);
    }

    let mut best: Option<BestSplit> = None;
    let mut order: Vec<usize> = Vec::with_capacity(n);
    // `feature` is a column index into every row of `xs`, not a row index;
    // iterating `xs` directly would walk the wrong axis.
    #[allow(clippy::needless_range_loop)]
    for feature in 0..width {
        order.clear();
        order.extend_from_slice(idx);
        order.sort_by(|&a, &b| {
            xs[a][feature].partial_cmp(&xs[b][feature]).expect("finite features").then(a.cmp(&b))
        });
        // Prefix sums over the sorted order let every candidate split's SSE
        // come out of the Welford-style identity SSE = Σy² − (Σy)²/n.
        let (mut lsum, mut lsq) = (0.0, 0.0);
        let (tsum, tsq) =
            order.iter().fold((0.0, 0.0), |(s, q), &i| (s + ys[i], q + ys[i] * ys[i]));
        for k in 0..n - 1 {
            let y = ys[order[k]];
            lsum += y;
            lsq += y * y;
            let (lo, hi) = (xs[order[k]][feature], xs[order[k + 1]][feature]);
            if lo == hi {
                continue;
            }
            let nl = k + 1;
            let nr = n - nl;
            if nl < params.min_leaf || nr < params.min_leaf {
                continue;
            }
            let (rsum, rsq) = (tsum - lsum, tsq - lsq);
            let child_sse = (lsq - lsum * lsum / nl as f64) + (rsq - rsum * rsum / nr as f64);
            let gain = parent_sse - child_sse;
            if gain <= params.min_gain {
                continue;
            }
            let mid = lo + (hi - lo) / 2.0;
            let threshold = if mid < hi { mid } else { lo };
            let replace = match &best {
                None => true,
                Some(b) => {
                    gain > b.gain + 1e-12
                        || ((gain - b.gain).abs() <= 1e-12
                            && (feature, threshold) < (b.feature, b.threshold))
                }
            };
            if replace {
                best = Some(BestSplit { gain, feature, threshold });
            }
        }
    }

    match best {
        None => leaf(ys, idx),
        Some(BestSplit { feature, threshold, .. }) => {
            let (li, ri): (Vec<usize>, Vec<usize>) =
                idx.iter().partition(|&&i| xs[i][feature] <= threshold);
            RegressNode::Split {
                feature,
                threshold,
                left: Box::new(build(width, xs, ys, &li, params, depth + 1)),
                right: Box::new(build(width, xs, ys, &ri, params, depth + 1)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xy(rows: &[(Vec<f64>, f64)]) -> (Vec<Vec<f64>>, Vec<f64>) {
        (rows.iter().map(|r| r.0.clone()).collect(), rows.iter().map(|r| r.1).collect())
    }

    #[test]
    fn fits_a_step_function_exactly() {
        let rows: Vec<_> =
            (0..20).map(|k| (vec![k as f64], if k < 10 { 1.0 } else { 5.0 })).collect();
        let (xs, ys) = xy(&rows);
        let tree = RegressionTree::train(1, &xs, &ys, RegressParams::default());
        assert_eq!(tree.depth(), 1);
        assert_eq!(tree.predict(&[3.0]), 1.0);
        assert_eq!(tree.predict(&[15.0]), 5.0);
    }

    #[test]
    fn approximates_a_monotone_curve_piecewise() {
        // y = x²: the tree must be monotone along its leaves and close at
        // the training points.
        let rows: Vec<_> = (0..32).map(|k| (vec![k as f64], (k * k) as f64)).collect();
        let (xs, ys) = xy(&rows);
        let tree = RegressionTree::train(1, &xs, &ys, RegressParams::default());
        for (x, y) in xs.iter().zip(&ys) {
            assert!((tree.predict(x) - y).abs() <= 40.0, "x={x:?} y={y}");
        }
        let at = |v: f64| tree.predict(&[v]);
        assert!(at(2.0) <= at(10.0) && at(10.0) <= at(25.0));
    }

    #[test]
    fn splits_on_the_informative_feature() {
        // Feature 1 carries the signal, feature 0 is constant.
        let rows: Vec<_> =
            (0..16).map(|k| (vec![7.0, k as f64], if k % 16 < 8 { -2.0 } else { 2.0 })).collect();
        let (xs, ys) = xy(&rows);
        let tree = RegressionTree::train(2, &xs, &ys, RegressParams::default());
        match tree.root() {
            RegressNode::Split { feature, .. } => assert_eq!(*feature, 1),
            other => panic!("expected a split, got {other:?}"),
        }
    }

    #[test]
    fn constant_response_is_a_single_leaf() {
        let xs: Vec<Vec<f64>> = (0..9).map(|k| vec![k as f64, -k as f64]).collect();
        let ys = vec![3.25; 9];
        let tree = RegressionTree::train(2, &xs, &ys, RegressParams::default());
        assert_eq!(tree.n_leaves(), 1);
        assert_eq!(tree.predict(&[100.0, 100.0]), 3.25);
    }

    #[test]
    fn min_leaf_and_depth_prune() {
        let rows: Vec<_> = (0..12).map(|k| (vec![k as f64], k as f64)).collect();
        let (xs, ys) = xy(&rows);
        let stump = RegressionTree::train(
            1,
            &xs,
            &ys,
            RegressParams { max_depth: 0, ..Default::default() },
        );
        assert_eq!(stump.n_leaves(), 1);
        assert!((stump.predict(&[0.0]) - 5.5).abs() < 1e-12, "stump predicts the global mean");
        let fat =
            RegressionTree::train(1, &xs, &ys, RegressParams { min_leaf: 6, ..Default::default() });
        fn smallest(node: &RegressNode) -> usize {
            match node {
                RegressNode::Leaf { n, .. } => *n,
                RegressNode::Split { left, right, .. } => smallest(left).min(smallest(right)),
            }
        }
        assert!(smallest(fat.root()) >= 6);
    }

    #[test]
    fn training_is_order_invariant() {
        let rows: Vec<_> =
            (0..14).map(|k| (vec![k as f64 * 0.5, (k % 3) as f64], (k * 3 % 7) as f64)).collect();
        let (xs, ys) = xy(&rows);
        let a = RegressionTree::train(2, &xs, &ys, RegressParams::default());
        let rev_xs: Vec<_> = xs.iter().rev().cloned().collect();
        let rev_ys: Vec<_> = ys.iter().rev().copied().collect();
        let b = RegressionTree::train(2, &rev_xs, &rev_ys, RegressParams::default());
        for x in &xs {
            assert_eq!(a.predict(x).to_bits(), b.predict(x).to_bits());
        }
    }
}
