//! Pure-Rust CART classifier over format labels.
//!
//! Classic top-down induction (Breiman et al.): at every node try all
//! axis-aligned splits on all features, keep the one with the largest Gini
//! impurity reduction, recurse until the node is pure or a pruning limit
//! (depth, leaf size, minimum gain) fires. Everything is deterministic:
//! candidate thresholds are midpoints between consecutive *distinct* sorted
//! values and ties in gain break towards the lower feature index, then the
//! lower threshold — so the same samples always grow the same tree,
//! whatever the sample order.

use crate::features::NUM_FEATURES;
use dls_sparse::telemetry::format_index;
use dls_sparse::Format;

/// Pruning limits for tree induction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreeParams {
    /// Maximum split depth (root = depth 0; a tree of only a leaf has
    /// depth 0).
    pub max_depth: usize,
    /// Minimum samples on each side of a split.
    pub min_leaf: usize,
    /// Minimum Gini gain for a split to be kept. Strictly positive, so
    /// every kept split strictly reduces weighted impurity.
    pub min_gain: f64,
}

impl Default for TreeParams {
    fn default() -> Self {
        Self { max_depth: 8, min_leaf: 3, min_gain: 1e-9 }
    }
}

/// Per-class sample counts, indexed by [`format_index`].
pub type ClassCounts = [usize; Format::ALL.len()];

/// One tree node.
#[derive(Debug, Clone, PartialEq)]
pub enum Node {
    /// Terminal node: predict `format` (the majority class here during
    /// training); `counts` keeps the full training-class histogram for
    /// introspection and confidence reporting.
    Leaf {
        /// Majority class at this leaf.
        format: Format,
        /// Non-zero training counts per class, in [`Format::ALL`] order.
        counts: Vec<(Format, usize)>,
    },
    /// Internal node: `x[feature] <= threshold` goes left, else right.
    Split {
        /// Feature index into the [`crate::features::featurize`] vector.
        feature: usize,
        /// Split threshold.
        threshold: f64,
        /// Subtree for `x[feature] <= threshold`.
        left: Box<Node>,
        /// Subtree for `x[feature] > threshold`.
        right: Box<Node>,
    },
}

/// A trained CART decision tree mapping feature vectors to formats.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionTree {
    params: TreeParams,
    root: Node,
}

/// Gini impurity `1 - Σ p_k²` of a class histogram.
pub fn gini(counts: &ClassCounts) -> f64 {
    let n: usize = counts.iter().sum();
    if n == 0 {
        return 0.0;
    }
    let n = n as f64;
    1.0 - counts.iter().map(|&c| (c as f64 / n).powi(2)).sum::<f64>()
}

fn counts_of(ys: &[Format], idx: &[usize]) -> ClassCounts {
    let mut counts = [0usize; Format::ALL.len()];
    for &i in idx {
        counts[format_index(ys[i])] += 1;
    }
    counts
}

/// Majority class; ties break towards the earlier [`Format::ALL`] entry.
fn majority(counts: &ClassCounts) -> Format {
    let best = (0..counts.len()).max_by_key(|&k| counts[k]).expect("non-empty class space");
    Format::ALL[best]
}

fn leaf(counts: &ClassCounts) -> Node {
    let named: Vec<(Format, usize)> =
        Format::ALL.iter().map(|&f| (f, counts[format_index(f)])).filter(|&(_, c)| c > 0).collect();
    Node::Leaf { format: majority(counts), counts: named }
}

struct BestSplit {
    gain: f64,
    feature: usize,
    threshold: f64,
}

impl DecisionTree {
    /// Trains a tree on `(xs[i], ys[i])` pairs. Panics on empty or
    /// mismatched inputs — training sets are produced by this crate's own
    /// grid, so emptiness is a bug, not a user error.
    pub fn train(xs: &[[f64; NUM_FEATURES]], ys: &[Format], params: TreeParams) -> Self {
        assert_eq!(xs.len(), ys.len(), "every sample needs a label");
        assert!(!xs.is_empty(), "cannot train on an empty sample set");
        assert!(params.min_gain > 0.0, "min_gain must be strictly positive");
        assert!(params.min_leaf >= 1, "min_leaf must be at least 1");
        let idx: Vec<usize> = (0..xs.len()).collect();
        let root = build(xs, ys, &idx, &params, 0);
        Self { params, root }
    }

    /// Rebuilds a tree from deserialised parts (used by model loading).
    pub fn from_parts(params: TreeParams, root: Node) -> Self {
        Self { params, root }
    }

    /// The pruning parameters the tree was trained with.
    pub fn params(&self) -> TreeParams {
        self.params
    }

    /// The root node, for serialisation and structural checks.
    pub fn root(&self) -> &Node {
        &self.root
    }

    /// Predicted format for one feature vector.
    pub fn predict(&self, x: &[f64; NUM_FEATURES]) -> Format {
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { format, .. } => return *format,
                Node::Split { feature, threshold, left, right } => {
                    node = if x[*feature] <= *threshold { left } else { right };
                }
            }
        }
    }

    /// Prediction plus a confidence in `[0, 1]`: the majority-class share
    /// of the reached leaf's training histogram (1.0 for a pure leaf). The
    /// single-tree analogue of a forest's vote margin.
    pub fn predict_with_confidence(&self, x: &[f64; NUM_FEATURES]) -> (Format, f64) {
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { format, counts } => {
                    let total: usize = counts.iter().map(|&(_, c)| c).sum();
                    let own =
                        counts.iter().find(|&&(f, _)| f == *format).map(|&(_, c)| c).unwrap_or(0);
                    let conf = if total == 0 { 0.0 } else { own as f64 / total as f64 };
                    return (*format, conf);
                }
                Node::Split { feature, threshold, left, right } => {
                    node = if x[*feature] <= *threshold { left } else { right };
                }
            }
        }
    }

    /// Prediction plus the decision path, rendered with `names` (one per
    /// feature index) — the human-readable "why" for selection reports.
    pub fn explain(
        &self,
        x: &[f64; NUM_FEATURES],
        names: &[&str; NUM_FEATURES],
    ) -> (Format, String) {
        let mut node = &self.root;
        let mut path = String::new();
        loop {
            match node {
                Node::Leaf { format, counts } => {
                    let total: usize = counts.iter().map(|&(_, c)| c).sum();
                    let own =
                        counts.iter().find(|&&(f, _)| f == *format).map(|&(_, c)| c).unwrap_or(0);
                    if path.is_empty() {
                        path.push_str("(root)");
                    }
                    return (*format, format!("{path} => {format} [{own}/{total} training]"));
                }
                Node::Split { feature, threshold, left, right } => {
                    if !path.is_empty() {
                        path.push_str(", ");
                    }
                    let went_left = x[*feature] <= *threshold;
                    path.push_str(&format!(
                        "{}{}{threshold:.3}",
                        names[*feature],
                        if went_left { "<=" } else { ">" },
                    ));
                    node = if went_left { left } else { right };
                }
            }
        }
    }

    /// Maximum depth (a single leaf is depth 0).
    pub fn depth(&self) -> usize {
        fn d(node: &Node) -> usize {
            match node {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + d(left).max(d(right)),
            }
        }
        d(&self.root)
    }

    /// Number of leaves.
    pub fn n_leaves(&self) -> usize {
        fn count(node: &Node) -> usize {
            match node {
                Node::Leaf { .. } => 1,
                Node::Split { left, right, .. } => count(left) + count(right),
            }
        }
        count(&self.root)
    }

    /// How many internal nodes split on each feature — a crude but
    /// serde-free importance measure for `dls selector-info`.
    pub fn feature_split_counts(&self) -> [usize; NUM_FEATURES] {
        fn walk(node: &Node, acc: &mut [usize; NUM_FEATURES]) {
            if let Node::Split { feature, left, right, .. } = node {
                acc[*feature] += 1;
                walk(left, acc);
                walk(right, acc);
            }
        }
        let mut acc = [0usize; NUM_FEATURES];
        walk(&self.root, &mut acc);
        acc
    }

    /// The set of formats the tree can ever predict (union of leaf
    /// majorities) — by construction a subset of the training labels.
    pub fn predictable_formats(&self) -> Vec<Format> {
        fn walk(node: &Node, acc: &mut Vec<Format>) {
            match node {
                Node::Leaf { format, .. } => {
                    if !acc.contains(format) {
                        acc.push(*format);
                    }
                }
                Node::Split { left, right, .. } => {
                    walk(left, acc);
                    walk(right, acc);
                }
            }
        }
        let mut acc = Vec::new();
        walk(&self.root, &mut acc);
        acc
    }
}

fn build(
    xs: &[[f64; NUM_FEATURES]],
    ys: &[Format],
    idx: &[usize],
    params: &TreeParams,
    depth: usize,
) -> Node {
    let counts = counts_of(ys, idx);
    let parent_gini = gini(&counts);
    let n = idx.len();
    if depth >= params.max_depth || n < 2 * params.min_leaf || parent_gini == 0.0 {
        return leaf(&counts);
    }

    let mut best: Option<BestSplit> = None;
    let mut order: Vec<usize> = Vec::with_capacity(n);
    // `feature` indexes the per-sample feature arrays, not `xs` itself.
    #[allow(clippy::needless_range_loop)]
    for feature in 0..NUM_FEATURES {
        order.clear();
        order.extend_from_slice(idx);
        // Secondary sort on the index keeps the scan deterministic when
        // feature values tie.
        order.sort_by(|&a, &b| {
            xs[a][feature].partial_cmp(&xs[b][feature]).expect("finite features").then(a.cmp(&b))
        });
        let mut left = [0usize; Format::ALL.len()];
        for k in 0..n - 1 {
            left[format_index(ys[order[k]])] += 1;
            let (lo, hi) = (xs[order[k]][feature], xs[order[k + 1]][feature]);
            if lo == hi {
                continue; // not a class boundary in feature space
            }
            let nl = k + 1;
            let nr = n - nl;
            if nl < params.min_leaf || nr < params.min_leaf {
                continue;
            }
            let mut right = counts;
            for (r, l) in right.iter_mut().zip(left.iter()) {
                *r -= l;
            }
            let weighted = (nl as f64 * gini(&left) + nr as f64 * gini(&right)) / n as f64;
            let gain = parent_gini - weighted;
            if gain <= params.min_gain {
                continue;
            }
            // Midpoint, guarded against rounding up to `hi` (which would
            // send equal-to-hi samples left and break the partition).
            let mid = lo + (hi - lo) / 2.0;
            let threshold = if mid < hi { mid } else { lo };
            let replace = match &best {
                None => true,
                Some(b) => {
                    gain > b.gain + 1e-12
                        || ((gain - b.gain).abs() <= 1e-12
                            && (feature, threshold) < (b.feature, b.threshold))
                }
            };
            if replace {
                best = Some(BestSplit { gain, feature, threshold });
            }
        }
    }

    match best {
        None => leaf(&counts),
        Some(BestSplit { feature, threshold, .. }) => {
            let (li, ri): (Vec<usize>, Vec<usize>) =
                idx.iter().partition(|&&i| xs[i][feature] <= threshold);
            Node::Split {
                feature,
                threshold,
                left: Box::new(build(xs, ys, &li, params, depth + 1)),
                right: Box::new(build(xs, ys, &ri, params, depth + 1)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::FEATURE_NAMES;

    fn xy(rows: &[([f64; NUM_FEATURES], Format)]) -> (Vec<[f64; NUM_FEATURES]>, Vec<Format>) {
        (rows.iter().map(|r| r.0).collect(), rows.iter().map(|r| r.1).collect())
    }

    fn vecf(d: f64, pad: f64) -> [f64; NUM_FEATURES] {
        let mut x = [0.0; NUM_FEATURES];
        x[3] = d; // density
        x[7] = pad; // ell_padding
        x
    }

    #[test]
    fn learns_a_single_threshold() {
        // density >= 0.5 ⇒ DEN, else CSR: one split suffices.
        let rows: Vec<_> = (0..20)
            .map(|k| {
                let d = k as f64 / 19.0;
                (vecf(d, 0.0), if d >= 0.5 { Format::Den } else { Format::Csr })
            })
            .collect();
        let (xs, ys) = xy(&rows);
        let tree = DecisionTree::train(&xs, &ys, TreeParams::default());
        assert_eq!(tree.depth(), 1);
        assert_eq!(tree.n_leaves(), 2);
        for (x, y) in xs.iter().zip(&ys) {
            assert_eq!(tree.predict(x), *y);
        }
        assert_eq!(tree.feature_split_counts()[3], 1, "split is on density");
    }

    #[test]
    fn learns_a_two_level_rule() {
        // DEN if dense; otherwise ELL when padding small, CSR when large.
        let mut rows = Vec::new();
        for k in 0..10 {
            rows.push((vecf(0.9, k as f64 / 10.0), Format::Den));
            rows.push((vecf(0.05, 0.02 * k as f64), Format::Ell));
            rows.push((vecf(0.05, 0.5 + 0.04 * k as f64), Format::Csr));
        }
        let (xs, ys) = xy(&rows);
        let tree = DecisionTree::train(&xs, &ys, TreeParams::default());
        for (x, y) in xs.iter().zip(&ys) {
            assert_eq!(tree.predict(x), *y);
        }
        assert!(tree.depth() <= 3);
        let predictable = tree.predictable_formats();
        assert_eq!(predictable.len(), 3);
        for f in [Format::Csr, Format::Den, Format::Ell] {
            assert!(predictable.contains(&f), "missing {f}");
        }
    }

    #[test]
    fn pure_training_set_is_a_single_leaf() {
        let rows: Vec<_> = (0..8).map(|k| (vecf(k as f64, 0.0), Format::Dia)).collect();
        let (xs, ys) = xy(&rows);
        let tree = DecisionTree::train(&xs, &ys, TreeParams::default());
        assert_eq!(tree.depth(), 0);
        assert_eq!(tree.n_leaves(), 1);
        assert_eq!(tree.predict(&vecf(99.0, 0.3)), Format::Dia);
    }

    #[test]
    fn min_leaf_bounds_leaf_populations() {
        // 3 DEN among 17 CSR: min_leaf = 5 cannot isolate a pure DEN leaf
        // (it may still split off a mixed-but-purer region — that is CART
        // working as intended), but every leaf must hold >= min_leaf
        // training samples.
        let mut rows = Vec::new();
        for k in 0..3 {
            rows.push((vecf(0.9 + 0.01 * k as f64, 0.0), Format::Den));
        }
        for k in 0..17 {
            rows.push((vecf(0.01 * k as f64, 0.0), Format::Csr));
        }
        let (xs, ys) = xy(&rows);
        let pruned =
            DecisionTree::train(&xs, &ys, TreeParams { min_leaf: 5, ..Default::default() });
        fn smallest_leaf(node: &Node) -> usize {
            match node {
                Node::Leaf { counts, .. } => counts.iter().map(|&(_, c)| c).sum(),
                Node::Split { left, right, .. } => smallest_leaf(left).min(smallest_leaf(right)),
            }
        }
        assert!(smallest_leaf(pruned.root()) >= 5);
        // min_leaf = 11 forbids every split of 20 samples outright.
        let stump =
            DecisionTree::train(&xs, &ys, TreeParams { min_leaf: 11, ..Default::default() });
        assert_eq!(stump.n_leaves(), 1);
        assert_eq!(stump.predict(&vecf(0.95, 0.0)), Format::Csr, "majority wins at the stump");
        let free = DecisionTree::train(&xs, &ys, TreeParams { min_leaf: 1, ..Default::default() });
        assert_eq!(free.predict(&vecf(0.95, 0.0)), Format::Den);
    }

    #[test]
    fn max_depth_zero_is_a_majority_stump() {
        let rows = [
            (vecf(0.1, 0.0), Format::Csr),
            (vecf(0.2, 0.0), Format::Csr),
            (vecf(0.9, 0.0), Format::Den),
        ];
        let (xs, ys) = xy(&rows);
        let tree = DecisionTree::train(&xs, &ys, TreeParams { max_depth: 0, ..Default::default() });
        assert_eq!(tree.depth(), 0);
        assert_eq!(tree.predict(&vecf(0.9, 0.0)), Format::Csr);
    }

    #[test]
    fn training_is_order_invariant() {
        let mut rows = Vec::new();
        for k in 0..12 {
            let d = k as f64 / 11.0;
            rows.push((vecf(d, 1.0 - d), if d > 0.6 { Format::Den } else { Format::Coo }));
        }
        let (xs, ys) = xy(&rows);
        let a = DecisionTree::train(&xs, &ys, TreeParams::default());
        let rev_xs: Vec<_> = xs.iter().rev().copied().collect();
        let rev_ys: Vec<_> = ys.iter().rev().copied().collect();
        let b = DecisionTree::train(&rev_xs, &rev_ys, TreeParams::default());
        for x in &xs {
            assert_eq!(a.predict(x), b.predict(x));
        }
        assert_eq!(a.depth(), b.depth());
        assert_eq!(a.n_leaves(), b.n_leaves());
    }

    #[test]
    fn explain_walks_the_path() {
        let rows: Vec<_> = (0..20)
            .map(|k| {
                let d = k as f64 / 19.0;
                (vecf(d, 0.0), if d >= 0.5 { Format::Den } else { Format::Csr })
            })
            .collect();
        let (xs, ys) = xy(&rows);
        let tree = DecisionTree::train(&xs, &ys, TreeParams::default());
        let (fmt, why) = tree.explain(&vecf(0.8, 0.0), &FEATURE_NAMES);
        assert_eq!(fmt, Format::Den);
        assert!(why.contains("density>"), "{why}");
        assert!(why.contains("=> DEN"), "{why}");
        assert!(why.contains("training"), "{why}");
    }
}
