//! Learned per-(format, dataset) kernel block-size tuning.
//!
//! The blocked SMSV engine amortises one matrix sweep over a chunk of
//! right-hand sides, but the best chunk size is not a constant: it trades
//! stream amortisation against the interleaved workspace's cache footprint,
//! and the balance point moves with the matrix's shape and the format's
//! storage layout. This module labels each training-grid cell with the best
//! block size from [`BLOCK_CANDIDATES`] — measured with real `smsv_block`
//! sweeps, or analytically from a cache-residency bound — and fits one
//! regression tree per format over the same nine-parameter feature vector
//! the format classifier uses. The trained [`BlockModel`] rides inside
//! `TrainedModel` and is consumed by `LearnedSelector` (selection reports)
//! and transitively by the `dls-serve` batching executor (gather cap).

use crate::features::NUM_FEATURES;
use crate::label::LabelMode;
use crate::regress::{RegressParams, RegressionTree};
use dls_sparse::{
    AnyMatrix, Format, MatrixFeatures, MatrixFormat, SparseVec, TripletMatrix, MAX_SMSV_BLOCK,
};
use std::time::Instant;

/// Block sizes the calibration sweep considers, smallest first. All powers
/// of two up to the engine-wide chunk cap [`MAX_SMSV_BLOCK`].
pub const BLOCK_CANDIDATES: [usize; 6] = [1, 2, 4, 8, 16, 32];

/// Working-set budget, in scalars, for the analytic block bound — sized to
/// a typical per-core L2 (256 KiB of 8-byte scalars).
const CACHE_BUDGET_SCALARS: usize = 32_768;

/// One labelled block-tuning sample: the best block for `format` on a
/// matrix with feature vector `x`.
#[derive(Debug, Clone, Copy)]
pub struct BlockSample {
    /// Format the sweep ran in.
    pub format: Format,
    /// The matrix's feature vector (same schema as the format classifier).
    pub x: [f64; NUM_FEATURES],
    /// Winning block size (a member of [`BLOCK_CANDIDATES`]).
    pub block: usize,
}

/// Analytic tuned block: the largest candidate whose interleaved blocked
/// workspace (scatter lanes over `n` columns plus `m` accumulator lanes)
/// stays within the cache budget. All nine formats have a native blocked
/// kernel today; the guard keeps the defensive per-vector fallback should
/// a future format opt out.
pub fn analytic_block(format: Format, f: &MatrixFeatures) -> usize {
    if !format.has_blocked_kernel() {
        return 1;
    }
    let per_lane = f.n + 1 + f.m;
    let mut b = MAX_SMSV_BLOCK;
    while b > 1 && per_lane * b > CACHE_BUDGET_SCALARS {
        b /= 2;
    }
    b
}

/// Measured tuned block: times `smsv_block` at every candidate over two
/// independent passes (element-wise minimum de-noises each candidate) and
/// returns the argmin. Ties and sub-candidate noise resolve toward the
/// *larger* block — amortisation wins downstream when per-product times are
/// indistinguishable.
pub fn measured_block(format: Format, t: &TripletMatrix, reps: usize) -> usize {
    if !format.has_blocked_kernel() {
        return 1;
    }
    let m = AnyMatrix::from_triplets(format, t);
    let rows = m.rows();
    // A full chunk of probe vectors: matrix rows cycled, like the labelling
    // oracle's probes, so the sweep exercises realistic sparsity.
    let probes: Vec<SparseVec> = (0..MAX_SMSV_BLOCK)
        .map(|k| m.row_sparse(k * rows.saturating_sub(1) / (MAX_SMSV_BLOCK - 1).max(1)))
        .collect();
    let mut ws = Vec::new();
    let mut out = vec![0.0; rows * MAX_SMSV_BLOCK];
    m.smsv_block(&probes, &mut out, &mut ws); // warm-up
    let time_candidate = |b: usize, ws: &mut Vec<f64>, out: &mut Vec<f64>| -> f64 {
        let start = Instant::now();
        for _ in 0..reps.max(1) {
            for chunk in probes.chunks(b) {
                m.smsv_block(chunk, &mut out[..rows * chunk.len()], ws);
            }
        }
        start.elapsed().as_secs_f64() / (reps.max(1) * probes.len()) as f64
    };
    let mut scores = [f64::INFINITY; BLOCK_CANDIDATES.len()];
    for pass in 0..2 {
        let _ = pass;
        for (i, &b) in BLOCK_CANDIDATES.iter().enumerate() {
            scores[i] = scores[i].min(time_candidate(b, &mut ws, &mut out));
        }
    }
    let mut best = 0;
    for (i, &s) in scores.iter().enumerate() {
        if s <= scores[best] {
            best = i; // <= : ties go to the larger candidate
        }
    }
    BLOCK_CANDIDATES[best]
}

/// Labels one (format, matrix) cell under the training run's label mode:
/// measured sweeps when format labelling is measured, the analytic bound
/// when it is analytic.
pub fn block_for_case(
    format: Format,
    t: &TripletMatrix,
    f: &MatrixFeatures,
    mode: LabelMode,
) -> usize {
    match mode {
        LabelMode::Measured { reps, .. } => measured_block(format, t, reps),
        LabelMode::Analytic { .. } => analytic_block(format, f),
    }
}

/// Learned per-format block-size model: one regression tree per format with
/// a native blocked kernel (today: all nine), fitted to `log2(best block)`
/// over the nine influencing parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockModel {
    /// `(format, tree)` pairs in [`Format::ALL`] order; a format absent
    /// from the training set carries no tree and falls back to the engine
    /// default block.
    pub trees: Vec<(Format, RegressionTree)>,
}

impl BlockModel {
    /// Fits one tree per format present in `samples`. Samples for formats
    /// without a blocked kernel are ignored.
    pub fn train(samples: &[BlockSample]) -> Self {
        let mut trees = Vec::new();
        for &fmt in Format::ALL.iter().filter(|f| f.has_blocked_kernel()) {
            let xs: Vec<Vec<f64>> =
                samples.iter().filter(|s| s.format == fmt).map(|s| s.x.to_vec()).collect();
            let ys: Vec<f64> = samples
                .iter()
                .filter(|s| s.format == fmt)
                .map(|s| (s.block.max(1) as f64).log2())
                .collect();
            if xs.is_empty() {
                continue;
            }
            trees.push((
                fmt,
                RegressionTree::train(NUM_FEATURES, &xs, &ys, RegressParams::default()),
            ));
        }
        Self { trees }
    }

    /// Tuned block for `format` on feature vector `x`: the tree's predicted
    /// `log2(block)` rounded to the nearest candidate. Formats without a
    /// tree fall back to the engine default ([`dls_core::default_block`]).
    pub fn tuned_block(&self, format: Format, x: &[f64; NUM_FEATURES]) -> usize {
        match self.trees.iter().find(|(f, _)| *f == format) {
            Some((_, tree)) => {
                let exp = tree.predict(x).round().clamp(0.0, 5.0) as u32;
                (1usize << exp).min(MAX_SMSV_BLOCK)
            }
            None => dls_core::default_block(format),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::featurize;
    use dls_data::controlled::diag_matrix;

    #[test]
    fn analytic_block_respects_kernel_availability_and_cache() {
        let t = diag_matrix(128, 128, 256, 2, 1);
        let f = MatrixFeatures::from_triplets(&t);
        // CSC's merged column sweep amortises too: budgeted like the rest.
        assert_eq!(analytic_block(Format::Csc, &f), MAX_SMSV_BLOCK);
        // A small matrix fits the budget at the full cap.
        assert_eq!(analytic_block(Format::Csr, &f), MAX_SMSV_BLOCK);
        // A huge matrix shrinks the block until the workspace fits.
        let big = MatrixFeatures { m: 40_000, n: 40_000, ..f };
        let b = analytic_block(Format::Csr, &big);
        assert!((1..MAX_SMSV_BLOCK).contains(&b), "tuned down: {b}");
        assert!((big.n + 1 + big.m) * b <= CACHE_BUDGET_SCALARS || b == 1);
    }

    #[test]
    fn measured_block_returns_a_candidate() {
        let t = diag_matrix(96, 96, 192, 3, 7);
        for fmt in [Format::Csr, Format::Coo, Format::Jds, Format::Csc] {
            let b = measured_block(fmt, &t, 1);
            assert!(BLOCK_CANDIDATES.contains(&b), "{fmt}: {b}");
        }
    }

    #[test]
    fn block_model_learns_a_shape_dependent_block() {
        // Small matrices tune to 32, huge ones to something smaller: the
        // tree must reproduce both regions.
        let mut samples = Vec::new();
        for k in 0..12 {
            let small = k < 6;
            let mut x = [0.0; NUM_FEATURES];
            x[0] = if small { 7.0 } else { 16.0 }; // log2_m
            samples.push(BlockSample { format: Format::Csr, x, block: if small { 32 } else { 2 } });
        }
        let model = BlockModel::train(&samples);
        let mut small = [0.0; NUM_FEATURES];
        small[0] = 7.0;
        let mut big = [0.0; NUM_FEATURES];
        big[0] = 16.0;
        assert_eq!(model.tuned_block(Format::Csr, &small), 32);
        assert_eq!(model.tuned_block(Format::Csr, &big), 2);
        // No tree for CSC in this training set: engine default cap.
        assert_eq!(model.tuned_block(Format::Csc, &small), MAX_SMSV_BLOCK);
        // No tree for ELL either in this training set: default cap.
        assert_eq!(model.tuned_block(Format::Ell, &small), MAX_SMSV_BLOCK);
    }

    #[test]
    fn tuned_blocks_are_consistent_with_features() {
        let t = diag_matrix(128, 128, 256, 2, 9);
        let f = MatrixFeatures::from_triplets(&t);
        let samples: Vec<BlockSample> = Format::ALL
            .iter()
            .filter(|fmt| fmt.has_blocked_kernel())
            .map(|&format| BlockSample {
                format,
                x: featurize(&f),
                block: analytic_block(format, &f),
            })
            .collect();
        let model = BlockModel::train(&samples);
        for s in &samples {
            assert_eq!(model.tuned_block(s.format, &s.x), s.block, "{}", s.format);
        }
    }
}
