//! Oracle-relative evaluation: agreement and regret.
//!
//! Every labelled sample carries the oracle's per-format scores, so any
//! selector can be graded against it: **agreement** is the fraction of
//! matrices where the selector picks the oracle's winner; **regret** is how
//! much slower the selector's pick is than the winner
//! (`score(pick) / score(winner) − 1`, 0 when they agree). Regret is the
//! fairer number — picking a format 2% slower than optimal is a much
//! smaller sin than disagreement alone suggests.

use crate::label::LabelledSample;
use dls_sparse::Format;

/// Aggregate quality of one selector over a sample set.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalSummary {
    /// Selector name (for table rendering).
    pub name: String,
    /// Number of samples evaluated.
    pub n: usize,
    /// Fraction of samples where the pick equals the oracle winner.
    pub agreement: f64,
    /// Mean relative regret over all samples.
    pub mean_regret: f64,
    /// Worst-case relative regret.
    pub max_regret: f64,
}

impl EvalSummary {
    /// One row of the ablation table.
    pub fn render_row(&self) -> String {
        format!(
            "{:<12} {:>5}  {:>9.1}%  {:>11.2}%  {:>10.2}%",
            self.name,
            self.n,
            self.agreement * 100.0,
            self.mean_regret * 100.0,
            self.max_regret * 100.0
        )
    }
}

/// Grades `pick` (one format per sample, index-aligned) against the oracle.
pub fn evaluate(name: &str, samples: &[LabelledSample], picks: &[Format]) -> EvalSummary {
    assert_eq!(samples.len(), picks.len(), "one pick per sample");
    let n = samples.len();
    let mut agree = 0usize;
    let mut total_regret = 0.0;
    let mut max_regret: f64 = 0.0;
    for (s, &pick) in samples.iter().zip(picks) {
        if pick == s.label {
            agree += 1;
            continue;
        }
        let best = s.score_of(s.label).expect("label is scored");
        // A pick outside the scored basic five (possible for selectors that
        // consider derived formats) is graded at the worst scored time: the
        // oracle cannot rank it, so it is charged conservatively.
        let picked =
            s.score_of(pick).unwrap_or_else(|| s.scores.iter().cloned().fold(f64::MIN, f64::max));
        let regret = if best > 0.0 { picked / best - 1.0 } else { 0.0 };
        total_regret += regret.max(0.0);
        max_regret = max_regret.max(regret);
    }
    EvalSummary {
        name: name.to_string(),
        n,
        agreement: if n == 0 { 1.0 } else { agree as f64 / n as f64 },
        mean_regret: if n == 0 { 0.0 } else { total_regret / n as f64 },
        max_regret,
    }
}

/// Deterministic train/holdout split: every `k`-th sample (by index) is held
/// out. Index striding keeps all families represented on both sides because
/// the grid interleaves families within each variant block.
pub fn split_holdout(
    samples: Vec<LabelledSample>,
    k: usize,
) -> (Vec<LabelledSample>, Vec<LabelledSample>) {
    assert!(k >= 2, "holdout stride must be at least 2");
    let mut train = Vec::new();
    let mut holdout = Vec::new();
    for (i, s) in samples.into_iter().enumerate() {
        if i % k == k - 1 {
            holdout.push(s);
        } else {
            train.push(s);
        }
    }
    (train, holdout)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::NUM_FEATURES;
    use crate::label::LabelSource;
    use dls_sparse::MatrixFeatures;

    fn sample(label: Format, scores: [f64; 5]) -> LabelledSample {
        LabelledSample {
            desc: "t".into(),
            features: MatrixFeatures::from_triplets(&dls_sparse::TripletMatrix::new(1, 1)),
            x: [0.0; NUM_FEATURES],
            label,
            scores,
            source: LabelSource::Analytic,
        }
    }

    #[test]
    fn perfect_picks_have_full_agreement_and_zero_regret() {
        let samples = vec![sample(Format::Ell, [1.0, 2.0, 3.0, 4.0, 5.0]); 4];
        let picks = vec![Format::Ell; 4];
        let e = evaluate("oracle", &samples, &picks);
        assert_eq!(e.agreement, 1.0);
        assert_eq!(e.mean_regret, 0.0);
        assert_eq!(e.max_regret, 0.0);
    }

    #[test]
    fn regret_measures_relative_slowdown() {
        // BASIC order: ELL, CSR, COO, DEN, DIA. Oracle: ELL at 1.0.
        let s = sample(Format::Ell, [1.0, 1.5, 3.0, 4.0, 5.0]);
        let e = evaluate("x", &[s.clone(), s], &[Format::Csr, Format::Coo]);
        assert_eq!(e.agreement, 0.0);
        // Regrets: 0.5 and 2.0 → mean 1.25, max 2.0.
        assert!((e.mean_regret - 1.25).abs() < 1e-12);
        assert!((e.max_regret - 2.0).abs() < 1e-12);
    }

    #[test]
    fn unscored_picks_are_charged_the_worst_time() {
        let s = sample(Format::Ell, [1.0, 1.5, 3.0, 4.0, 5.0]);
        let e = evaluate("derived", &[s], &[Format::Hyb]);
        assert!((e.max_regret - 4.0).abs() < 1e-12, "charged 5.0/1.0 - 1");
    }

    #[test]
    fn holdout_split_is_deterministic_and_disjoint() {
        let samples: Vec<_> =
            (0..10).map(|i| sample(Format::Ell, [i as f64 + 1.0, 2.0, 3.0, 4.0, 5.0])).collect();
        let (train, hold) = split_holdout(samples.clone(), 5);
        assert_eq!(train.len(), 8);
        assert_eq!(hold.len(), 2);
        // Held-out entries are exactly indices 4 and 9.
        assert_eq!(hold[0].scores[0], 5.0);
        assert_eq!(hold[1].scores[0], 10.0);
    }

    #[test]
    fn empty_set_is_vacuously_perfect() {
        let e = evaluate("none", &[], &[]);
        assert_eq!(e.agreement, 1.0);
        assert_eq!(e.mean_regret, 0.0);
    }
}
