//! [`LearnedSelector`]: a trained decision tree behind the scheduler's
//! [`FormatSelector`] extension point.
//!
//! Drop-in alternative to the rule-based/cost-model/empirical strategies:
//! `LayoutScheduler::with_selector(LearnedSelector::new(model))`. Composes
//! with everything else built on the trait — wrap it in a `TuningCache` to
//! memoise predictions, or hand it to a `ReactiveScheduler` as the
//! re-scheduling strategy.

use crate::features::{featurize, FEATURE_NAMES};
use crate::persist::TrainedModel;
use dls_core::{
    default_block, BandwidthProfile, CostModelSelector, FormatScore, FormatSelector,
    SelectionReport,
};
use dls_sparse::{Format, MatrixFeatures, TripletMatrix};
use std::path::Path;

/// Format selector backed by a trained CART model.
#[derive(Debug, Clone)]
pub struct LearnedSelector {
    model: TrainedModel,
}

impl LearnedSelector {
    /// Wraps a trained model.
    pub fn new(model: TrainedModel) -> Self {
        Self { model }
    }

    /// Loads a model file (as written by `dls train-selector`).
    pub fn from_file(path: impl AsRef<Path>) -> Result<Self, crate::persist::ModelError> {
        TrainedModel::load_file(path).map(Self::new)
    }

    /// The underlying model (for introspection, e.g. `dls selector-info`).
    pub fn model(&self) -> &TrainedModel {
        &self.model
    }

    /// Predicted format for raw features, without building a report.
    /// Ensemble-aware: forest models vote, single-tree models walk the
    /// tree.
    pub fn predict(&self, f: &MatrixFeatures) -> Format {
        self.model.predict(&featurize(f))
    }

    /// Tuned kernel block size for `format` on a matrix with features `f`:
    /// the learned per-(format, dataset) block when the model carries block
    /// trees, the engine default otherwise.
    pub fn tuned_block(&self, format: Format, f: &MatrixFeatures) -> usize {
        match &self.model.blocks {
            Some(blocks) => blocks.tuned_block(format, &featurize(f)),
            None => default_block(format),
        }
    }
}

impl FormatSelector for LearnedSelector {
    fn select(&self, t: &TripletMatrix, f: &MatrixFeatures) -> SelectionReport {
        let _ = t;
        let x = featurize(f);
        let (chosen, path) = match &self.model.ensemble {
            // Forest models vote; the explanation is the vote tally rather
            // than one tree's path.
            Some(forest) => {
                let (chosen, confidence) = forest.predict_with_confidence(&x);
                let votes = (confidence * forest.len() as f64).round() as usize;
                (chosen, format!("forest vote {votes}/{} for {chosen}", forest.len()))
            }
            None => self.model.tree.explain(&x, &FEATURE_NAMES),
        };
        // The tree emits a class, not per-format scores; attach the flat
        // storage model's predicted times so downstream consumers (regret
        // reports, telemetry) still see a full ranking. The *chosen* format
        // is the tree's — scores are advisory.
        let cost = CostModelSelector::with_bandwidth(BandwidthProfile::FLAT);
        let scores: Vec<FormatScore> = Format::BASIC
            .iter()
            .map(|&fmt| FormatScore::new(fmt, cost.predicted_time(fmt, f)))
            .collect();
        SelectionReport {
            chosen,
            block: self.tuned_block(chosen, f),
            features: *f,
            scores,
            reason: format!("learned tree: {path}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::{training_grid, GridConfig};
    use crate::label::{label_case, LabelMode};
    use crate::persist::ModelMeta;
    use crate::tree::{DecisionTree, TreeParams};
    use dls_core::LayoutScheduler;
    use dls_core::TuningCache;
    use dls_data::controlled::diag_matrix;

    fn quick_model() -> TrainedModel {
        // Full grid, analytic labels: cheap (no timing) and deterministic,
        // with every format's home region represented.
        let cases = training_grid(&GridConfig::default());
        let samples: Vec<_> = cases
            .iter()
            .map(|c| label_case(&c.desc, &c.matrix, LabelMode::analytic_flat()))
            .collect();
        let xs: Vec<_> = samples.iter().map(|s| s.x).collect();
        let ys: Vec<_> = samples.iter().map(|s| s.label).collect();
        let tree = DecisionTree::train(&xs, &ys, TreeParams::default());
        TrainedModel {
            meta: ModelMeta {
                seed: GridConfig::default().seed,
                grid: "full".into(),
                samples: samples.len(),
                measured: 0,
                analytic_fallback: 0,
                analytic: samples.len(),
            },
            tree,
            blocks: None,
            ensemble: None,
        }
    }

    #[test]
    fn slots_into_the_scheduler() {
        let sel = LearnedSelector::new(quick_model());
        let scheduler = LayoutScheduler::with_selector(sel);
        let t = diag_matrix(128, 128, 256, 2, 1);
        let scheduled = scheduler.schedule(&t);
        let r = scheduled.report();
        assert!(Format::BASIC.contains(&r.chosen));
        assert!(r.reason.starts_with("learned tree:"), "{}", r.reason);
        assert_eq!(r.scores.len(), Format::BASIC.len());
        // A near-pure diagonal matrix is squarely in the training
        // distribution: the analytic oracle labels it DIA and the tree must
        // have learned that region.
        assert_eq!(r.chosen, Format::Dia, "{}", r.reason);
    }

    #[test]
    fn report_explains_the_decision_path() {
        let sel = LearnedSelector::new(quick_model());
        let t = diag_matrix(128, 128, 256, 2, 2);
        let f = MatrixFeatures::from_triplets(&t);
        let r = sel.select(&t, &f);
        assert!(r.reason.contains("=>"), "path rendered: {}", r.reason);
        assert!(r.reason.contains("training"), "leaf confidence rendered: {}", r.reason);
    }

    #[test]
    fn composes_with_the_tuning_cache() {
        let mut cached = TuningCache::new(LearnedSelector::new(quick_model()));
        let t = diag_matrix(128, 128, 256, 2, 3);
        let f = MatrixFeatures::from_triplets(&t);
        let first = cached.select(&t, &f);
        let second = cached.select(&t, &f);
        assert_eq!(first.chosen, second.chosen);
        assert_eq!(cached.hits(), 1);
        assert_eq!(cached.misses(), 1);
    }

    #[test]
    fn tuned_block_lands_in_the_report() {
        use crate::block::{analytic_block, BlockModel, BlockSample, BLOCK_CANDIDATES};
        use crate::features::featurize;
        let mut model = quick_model();
        // Without block trees: engine default for the chosen format.
        let t = diag_matrix(128, 128, 256, 2, 4);
        let f = MatrixFeatures::from_triplets(&t);
        let sel = LearnedSelector::new(model.clone());
        assert_eq!(sel.select(&t, &f).block, dls_core::default_block(sel.predict(&f)));
        // With block trees: the learned tuned block.
        let mut samples = Vec::new();
        for case in training_grid(&GridConfig { quick: true, ..Default::default() }) {
            let cf = MatrixFeatures::from_triplets(&case.matrix);
            for &fmt in Format::ALL.iter().filter(|x| x.has_blocked_kernel()) {
                samples.push(BlockSample {
                    format: fmt,
                    x: featurize(&cf),
                    block: analytic_block(fmt, &cf),
                });
            }
        }
        model.blocks = Some(BlockModel::train(&samples));
        let sel = LearnedSelector::new(model);
        let r = sel.select(&t, &f);
        assert_eq!(r.block, sel.tuned_block(r.chosen, &f));
        assert!(BLOCK_CANDIDATES.contains(&r.block), "block {} is a candidate", r.block);
    }

    #[test]
    fn predict_agrees_with_select() {
        let sel = LearnedSelector::new(quick_model());
        for case in training_grid(&GridConfig { quick: true, ..Default::default() }) {
            let f = MatrixFeatures::from_triplets(&case.matrix);
            assert_eq!(sel.predict(&f), sel.select(&case.matrix, &f).chosen, "{}", case.desc);
        }
    }
}
