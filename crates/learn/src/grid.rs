//! Training-set grid over the nine influencing parameters.
//!
//! Six matrix families, each sweeping the structural axis that drives one
//! of the paper's format trade-offs (Figures 2–4 plus density):
//!
//! * **dense** — density sweep across the DEN/CSR crossover (~0.5 under the
//!   flat-bandwidth storage model),
//! * **uniform** — perfectly uniform row lengths, ELL's best case,
//! * **vdim** — fixed size/nnz with growing row-length variance (Figure 4),
//! * **mdim** — fixed nnz concentrated in ever-wider rows (Figure 3),
//! * **diag** — nnz spread over a growing number of diagonals (Figure 2),
//! * **band** — nearly-full banded matrices (trefethen-style): high
//!   per-diagonal fill with edge-truncated rows, covering the
//!   high-dispersion corner the partial-fill diag family cannot reach.
//!
//! Every base point is jittered into a few seeded variants so thresholds
//! are learned from a cloud of nearby matrices rather than single points.
//! Matrices are deliberately small (≤ 384 rows): labelling materialises all
//! five formats and optionally times real SMSV sweeps per case.

use dls_data::controlled::{diag_matrix, mdim_matrix, vdim_matrix};
use dls_data::specs::{DatasetSpec, Structure};
use dls_data::synth::generate;
use dls_sparse::TripletMatrix;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Grid generation knobs.
#[derive(Debug, Clone, Copy)]
pub struct GridConfig {
    /// Master seed; every case derives its own seed from this.
    pub seed: u64,
    /// Jittered variants per base grid point.
    pub variants: usize,
    /// Quick mode keeps a seeded random subset of roughly a third of the
    /// grid — enough to exercise the full pipeline in CI smoke runs.
    pub quick: bool,
}

impl Default for GridConfig {
    fn default() -> Self {
        Self { seed: 0x1eaf, variants: 2, quick: false }
    }
}

/// One grid case: a generated matrix plus a human-readable description used
/// in training logs and disagreement reports.
#[derive(Debug, Clone)]
pub struct GridCase {
    /// Family and swept-parameter description, e.g. `diag[ndig=24]#1`.
    pub desc: String,
    /// The generated matrix.
    pub matrix: TripletMatrix,
}

/// `m × n` matrix where every entry is present independently with
/// probability `density`.
fn dense_matrix(m: usize, n: usize, density: f64, rng: &mut StdRng) -> TripletMatrix {
    let mut t = TripletMatrix::with_capacity(m, n, (m as f64 * n as f64 * density) as usize);
    for i in 0..m {
        for j in 0..n {
            if rng.gen::<f64>() < density {
                t.push(i, j, 1.0 - rng.gen::<f64>());
            }
        }
    }
    t.compact()
}

/// Every row holds exactly `row_nnz` non-zeros in random columns — zero
/// row-length variance, the pattern ELL is built for.
fn uniform_rows(m: usize, n: usize, row_nnz: usize, rng: &mut StdRng) -> TripletMatrix {
    let cols: Vec<usize> = (0..n).collect();
    let mut t = TripletMatrix::with_capacity(m, n, m * row_nnz);
    for i in 0..m {
        for &j in cols.choose_multiple(rng, row_nnz) {
            t.push(i, j, 1.0 - rng.gen::<f64>());
        }
    }
    t.compact()
}

/// Square banded matrix with `ndig` diagonals each filled to roughly
/// `fill` of its capacity — the structure of the trefethen twin. Edge
/// truncation plus the unfilled tail give row lengths their variance.
fn band_matrix(m: usize, ndig: usize, fill: f64, seed: u64) -> TripletMatrix {
    let spec = DatasetSpec {
        name: "band",
        application: "synthetic",
        m,
        n: m,
        nnz: (m as f64 * ndig as f64 * fill) as u64,
        ndig: ndig as u64,
        dnnz: m as f64 * fill,
        mdim: ndig,
        adim: ndig as f64 * fill,
        vdim: 0.0,
        density: ndig as f64 * fill / m as f64,
        structure: Structure::Diagonal { ndig },
    };
    generate(&spec, seed)
}

/// Jitters `v` by up to ±`pct` percent (at least ±1 when `v` is small).
fn jitter(v: usize, pct: usize, rng: &mut StdRng) -> usize {
    let span = (v * pct / 100).max(1);
    let lo = v.saturating_sub(span).max(1);
    rng.gen_range(lo..=v + span)
}

/// Generates the full (or quick) training grid. Deterministic for a given
/// config: same seed, same matrices, in the same order.
pub fn training_grid(cfg: &GridConfig) -> Vec<GridCase> {
    let mut cases = Vec::new();
    let mut case_seed = cfg.seed;
    let mut push = |desc: String, build: &mut dyn FnMut(&mut StdRng) -> TripletMatrix| {
        case_seed = case_seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut rng = StdRng::seed_from_u64(case_seed);
        cases.push(GridCase { desc, matrix: build(&mut rng) });
    };

    for v in 0..cfg.variants.max(1) {
        // Density sweep bracketing the DEN/CSR storage crossover. Sizes
        // deliberately overlap the diag family's (up to 384 rows) so no
        // spurious "large matrices are diagonal" split can separate the
        // training set by size alone.
        for &(m, n) in &[(32usize, 24usize), (48, 64), (64, 128), (192, 160), (384, 256)] {
            for &density in &[0.15, 0.35, 0.55, 0.75, 1.0] {
                push(format!("dense[{m}x{n},d={density}]#{v}"), &mut |rng| {
                    let m = jitter(m, 10, rng);
                    let n = jitter(n, 10, rng);
                    dense_matrix(m, n, density, rng)
                });
            }
        }
        // Zero-variance rows: ELL territory. The tall 768×48 shape mirrors
        // Table V's sample-heavy datasets (connect-4 is 67k×126): with
        // m ≫ n the per-diagonal fill nnz/ndig/n gets as high as a loose
        // band's, so ELL must win there on structure, not on dia_fill.
        for &(m, n) in &[(192usize, 96usize), (384, 192), (768, 48)] {
            for &row_nnz in &[3usize, 12, 16, 36] {
                push(format!("uniform[{m}x{n},row={row_nnz}]#{v}"), &mut |rng| {
                    let m = jitter(m, 10, rng);
                    let n = jitter(n, 10, rng);
                    uniform_rows(m, n, row_nnz.min(n), rng)
                });
            }
        }
        // Figure 4: growing row-length variance at fixed size and nnz.
        for &vd in &[0.0, 5.0, 50.0, 250.0, 1000.0] {
            push(format!("vdim[384x192,v={vd}]#{v}"), &mut |rng| {
                let seed = rng.next_u64();
                vdim_matrix(384, 192, 4608, vd, seed)
            });
        }
        // Figure 3: same nnz concentrated in ever-wider rows.
        for &md in &[4usize, 32, 128, 256] {
            push(format!("mdim[256x256,w={md}]#{v}"), &mut |rng| {
                let seed = rng.next_u64();
                mdim_matrix(256, 256, 1024, md, seed)
            });
        }
        // Figure 2: nnz spread over a growing number of diagonals. Two base
        // sizes so the DIA-winning region (low ndig) has enough support on
        // both sides of the holdout split.
        for &(m, nnz) in &[(384usize, 768usize), (128, 256)] {
            for &nd in &[1usize, 2, 4, 16, 64] {
                push(format!("diag[{m}x{m},ndig={nd}]#{v}"), &mut |rng| {
                    let seed = rng.next_u64();
                    diag_matrix(m, m, nnz, nd, seed)
                });
            }
        }
        // Nearly-full bands (trefethen-style). Unlike the partial-fill diag
        // family these have high per-diagonal fill and high row-length
        // dispersion, so DIA's winning region is learned from structure
        // (dia_fill) rather than from the sweep artefacts of diag_matrix.
        for &m in &[96usize, 256, 384] {
            for &nd in &[2usize, 6, 12, 24] {
                push(format!("band[{m}x{m},ndig={nd}]#{v}"), &mut |rng| {
                    let seed = rng.next_u64();
                    band_matrix(m, nd, 0.9, seed)
                });
            }
        }
    }

    if cfg.quick {
        // Keep a stratified half: cases are pushed family-by-family along
        // each sweep, so a stride keeps every family represented across its
        // whole parameter range (a random subset can drop a format's entire
        // winning region and wreck the smoke model).
        return cases.into_iter().step_by(2).collect();
    }
    cases
}

#[cfg(test)]
mod tests {
    use super::*;
    use dls_sparse::MatrixFeatures;

    #[test]
    fn grid_is_deterministic() {
        let cfg = GridConfig::default();
        let a = training_grid(&cfg);
        let b = training_grid(&cfg);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.desc, y.desc);
            assert_eq!(x.matrix.entries(), y.matrix.entries());
        }
    }

    #[test]
    fn grid_covers_all_families_with_nonempty_matrices() {
        let cases = training_grid(&GridConfig::default());
        assert!(cases.len() >= 60, "full grid has {} cases", cases.len());
        for fam in ["dense", "uniform", "vdim", "mdim", "diag", "band"] {
            assert!(cases.iter().any(|c| c.desc.starts_with(fam)), "missing family {fam}");
        }
        for c in &cases {
            assert!(c.matrix.nnz() > 0, "{} generated an empty matrix", c.desc);
        }
    }

    #[test]
    fn quick_grid_is_a_subset_of_the_full_grid() {
        let full = training_grid(&GridConfig::default());
        let quick = training_grid(&GridConfig { quick: true, ..Default::default() });
        assert!(quick.len() >= 12);
        assert!(quick.len() < full.len());
        for c in &quick {
            assert!(full.iter().any(|f| f.desc == c.desc), "{} not in full grid", c.desc);
        }
    }

    #[test]
    fn families_move_the_intended_parameter() {
        let cases = training_grid(&GridConfig { variants: 1, ..Default::default() });
        let feat = |prefix: &str| -> Vec<MatrixFeatures> {
            cases
                .iter()
                .filter(|c| c.desc.starts_with(prefix))
                .map(|c| MatrixFeatures::from_triplets(&c.matrix))
                .collect()
        };
        let diag = feat("diag[384");
        assert!(diag.windows(2).all(|w| w[0].ndig <= w[1].ndig), "ndig sweeps upward");
        let vdim = feat("vdim");
        assert!(vdim.first().unwrap().vdim < vdim.last().unwrap().vdim);
        let uniform = feat("uniform");
        assert!(uniform.iter().all(|f| f.vdim < 1e-9), "uniform rows have zero variance");
        let dense = feat("dense[64x128,d=1]");
        assert!(dense.iter().all(|f| f.density > 0.99));
    }
}
