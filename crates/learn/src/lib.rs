#![warn(missing_docs)]

//! # dls-learn
//!
//! Learned format selection: replaces the hand-written decision rules with
//! a decision tree trained on labelled synthetic matrices, following the
//! paper's observation that the influencing parameters (Table IV) predict
//! the fastest format.
//!
//! The pipeline has four layers:
//!
//! 1. **Grid** ([`grid`]) — sweep the synthetic generators over the nine
//!    structural parameters, producing a cloud of small matrices around
//!    every format's home territory and the boundaries between them.
//! 2. **Labels** ([`label`]) — for each matrix, find the fastest of the
//!    five basic formats, either by timing real SMSV sweeps (with an
//!    agreement-and-margin gate against timer noise) or analytically from
//!    Table II storage under a flat bandwidth profile.
//! 3. **Tree** ([`tree`]) — a pure-Rust CART trainer (Gini impurity,
//!    depth/leaf/gain pruning, fully deterministic). No external ML
//!    dependency; models persist as hand-rolled JSON ([`persist`]). The
//!    same induction machinery re-targeted at a continuous response lives
//!    in [`regress`] ([`RegressionTree`], variance-reduction splits) and
//!    powers `dls-serve`'s learned latency predictor.
//! 4. **Selector** ([`selector`]) — [`LearnedSelector`] implements
//!    `dls_core::FormatSelector`, so a trained model drops into
//!    `LayoutScheduler::with_selector`, composes with `TuningCache`
//!    memoisation and `ReactiveScheduler` re-scheduling, and is graded
//!    against the rules and the empirical oracle by [`eval`].
//! 5. **Online** ([`online`]) — closes the loop: production telemetry
//!    ([`LabeledObservation`], [`ObservationRing`], JSONL log) feeds
//!    background retraining ([`retrain_online`]) that merges measured
//!    production labels with the synthetic grid, upgrades to a bagged
//!    [`ForestModel`] when a single tree plateaus, and gates low-confidence
//!    predictions back to the analytic rules ([`HybridSelector`]). The
//!    serve-side recording/swap half lives in `dls-serve::feedback`.

pub mod block;
pub mod eval;
pub mod features;
pub mod grid;
pub mod label;
pub mod online;
pub mod persist;
pub mod regress;
pub mod selector;
pub mod tree;

pub use block::{analytic_block, measured_block, BlockModel, BlockSample, BLOCK_CANDIDATES};
pub use eval::{evaluate, split_holdout, EvalSummary};
pub use features::{featurize, FEATURE_NAMES, NUM_FEATURES};
pub use grid::{training_grid, GridCase, GridConfig};
pub use label::{label_case, LabelMode, LabelSource, LabelledSample};
pub use online::{
    model_regret, observations_from_reactive, observations_to_samples, parse_jsonl_log,
    retrain_online, ForestModel, HybridSelector, LabeledObservation, ObservationRing,
    OnlineOutcome, OnlineTrainConfig, DEFAULT_MIN_CONFIDENCE,
};
pub use persist::{ModelError, ModelMeta, TrainedModel, MIN_MODEL_VERSION, MODEL_VERSION};
pub use regress::{RegressNode, RegressParams, RegressionTree};
pub use selector::LearnedSelector;
pub use tree::{gini, DecisionTree, Node, TreeParams};

use dls_sparse::Format;

/// End-to-end training configuration for [`train_selector`].
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    /// Master seed for grid generation.
    pub seed: u64,
    /// Quick mode: a seeded subset of the grid (CI smoke runs).
    pub quick: bool,
    /// Labelling mode (measured with analytic fallback, or pure analytic).
    pub mode: LabelMode,
    /// Tree pruning parameters.
    pub params: TreeParams,
    /// Holdout stride: every `holdout_stride`-th sample is held out of
    /// training and used only for evaluation.
    pub holdout_stride: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            seed: GridConfig::default().seed,
            quick: false,
            mode: LabelMode::default(),
            params: TreeParams::default(),
            holdout_stride: 5,
        }
    }
}

/// Everything a training run produces.
#[derive(Debug, Clone)]
pub struct TrainOutcome {
    /// The trained model (tree + provenance).
    pub model: TrainedModel,
    /// Labelled samples the tree was fitted on.
    pub train: Vec<LabelledSample>,
    /// Held-out labelled samples (never seen during fitting).
    pub holdout: Vec<LabelledSample>,
}

/// Runs the full pipeline: generate the grid, label every case, split off a
/// holdout set, fit the tree. Deterministic whenever `cfg.mode` is analytic.
pub fn train_selector(cfg: &TrainConfig) -> TrainOutcome {
    let grid_cfg = GridConfig { seed: cfg.seed, quick: cfg.quick, ..Default::default() };
    let cases = training_grid(&grid_cfg);
    let samples: Vec<LabelledSample> =
        cases.iter().map(|c| label_case(&c.desc, &c.matrix, cfg.mode)).collect();

    // Block-size calibration rides the same grid: every (format, cell) is
    // swept over the candidate block sizes and one regression tree per
    // format learns the winning block from the cell's features.
    let mut block_samples = Vec::new();
    for (case, sample) in cases.iter().zip(&samples) {
        for &fmt in Format::ALL.iter().filter(|f| f.has_blocked_kernel()) {
            block_samples.push(BlockSample {
                format: fmt,
                x: sample.x,
                block: block::block_for_case(fmt, &case.matrix, &sample.features, cfg.mode),
            });
        }
    }
    let blocks = BlockModel::train(&block_samples);

    let (train, holdout) = split_holdout(samples, cfg.holdout_stride);

    let xs: Vec<_> = train.iter().map(|s| s.x).collect();
    let ys: Vec<_> = train.iter().map(|s| s.label).collect();
    let tree = DecisionTree::train(&xs, &ys, cfg.params);

    let count = |src: LabelSource| train.iter().filter(|s| s.source == src).count();
    let model = TrainedModel {
        meta: ModelMeta {
            seed: cfg.seed,
            grid: if cfg.quick { "quick".into() } else { "full".into() },
            samples: train.len(),
            measured: count(LabelSource::Measured),
            analytic_fallback: count(LabelSource::AnalyticFallback),
            analytic: count(LabelSource::Analytic),
        },
        tree,
        blocks: Some(blocks),
        ensemble: None,
    };
    TrainOutcome { model, train, holdout }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dls_sparse::Format;

    fn analytic_cfg(quick: bool) -> TrainConfig {
        TrainConfig { quick, mode: LabelMode::analytic_flat(), ..Default::default() }
    }

    #[test]
    fn pipeline_trains_an_accurate_tree() {
        let out = train_selector(&analytic_cfg(false));
        assert!(out.train.len() >= 48, "train set has {}", out.train.len());
        assert!(out.holdout.len() >= 12, "holdout has {}", out.holdout.len());

        // On its own training set the tree should be near-perfect …
        let picks: Vec<Format> = out.train.iter().map(|s| out.model.tree.predict(&s.x)).collect();
        let train_eval = evaluate("learned", &out.train, &picks);
        assert!(train_eval.agreement >= 0.9, "train agreement {}", train_eval.agreement);

        // … and must generalise to matrices it never saw.
        let picks: Vec<Format> = out.holdout.iter().map(|s| out.model.tree.predict(&s.x)).collect();
        let hold_eval = evaluate("learned", &out.holdout, &picks);
        assert!(hold_eval.agreement >= 0.8, "holdout agreement {}", hold_eval.agreement);
    }

    #[test]
    fn analytic_training_is_fully_deterministic() {
        let a = train_selector(&analytic_cfg(true));
        let b = train_selector(&analytic_cfg(true));
        assert_eq!(a.model, b.model);
        assert_eq!(a.model.to_json(), b.model.to_json());
    }

    #[test]
    fn meta_counts_add_up() {
        let out = train_selector(&analytic_cfg(true));
        let m = &out.model.meta;
        assert_eq!(m.samples, out.train.len());
        assert_eq!(m.measured + m.analytic_fallback + m.analytic, m.samples);
        assert_eq!(m.analytic, m.samples, "analytic mode labels everything analytically");
        assert_eq!(m.grid, "quick");
    }

    #[test]
    fn trained_model_round_trips_through_json() {
        let out = train_selector(&analytic_cfg(true));
        let restored = TrainedModel::from_json(&out.model.to_json()).unwrap();
        for s in out.train.iter().chain(&out.holdout) {
            assert_eq!(restored.tree.predict(&s.x), out.model.tree.predict(&s.x), "{}", s.desc);
        }
    }
}
