//! Hand-rolled JSON persistence for trained models.
//!
//! Same approach as `TelemetrySnapshot` and the tuning cache: a per-type
//! writer emitting a versioned document, with parsing delegated to
//! `dls_core::json`. The document stores the feature schema by name and the
//! loader rejects models whose schema differs from the running binary's
//! [`FEATURE_NAMES`] — a model trained against one featurisation must never
//! silently mis-predict under another.
//!
//! Load failures are typed ([`ModelError`]): an unsupported document
//! version reports the version range this build reads, a malformed member
//! reports the dotted path of the offending field (`"meta.seed"`,
//! `"tree.left.leaf.counts[1]"`). Unknown members are ignored, so documents
//! written by a newer build of the *same* version family (extra optional
//! sections) still load — forward compatibility is by addition only.
//!
//! ```json
//! {"version":2,
//!  "meta":{"seed":7,"grid":"full","samples":80,"measured":61,
//!          "analytic_fallback":19,"analytic":0},
//!  "features":["log2_m", ...],
//!  "params":{"max_depth":8,"min_leaf":3,"min_gain":1e-9},
//!  "tree":{"split":{"feature":3,"threshold":0.52,
//!                   "left":{"leaf":{"format":"CSR","counts":[["CSR",12]]}},
//!                   "right":...}},
//!  "ensemble":[<tree>, ...]}
//! ```
//!
//! Version history: v1 = single tree (+ optional `"blocks"`); v2 adds the
//! optional `"ensemble"` section (bagged forest, PR 10). v1 documents load
//! unchanged; this build always writes v2.

use crate::block::BlockModel;
use crate::features::FEATURE_NAMES;
use crate::online::ForestModel;
use crate::regress::{RegressNode, RegressParams, RegressionTree};
use crate::tree::{DecisionTree, Node, TreeParams};
use dls_core::json::{escape, number, parse, JsonValue};
use dls_sparse::Format;
use std::fmt;
use std::path::Path;
use std::str::FromStr;

/// Document format version this build writes.
pub const MODEL_VERSION: u64 = 2;

/// Oldest document format version this build still reads.
pub const MIN_MODEL_VERSION: u64 = 1;

/// Typed model-load failure: what went wrong and exactly where.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// The document is not valid JSON at all.
    Json(String),
    /// The document's `version` is outside the readable range.
    Version {
        /// Version declared by the document.
        found: u64,
        /// Oldest version this build reads ([`MIN_MODEL_VERSION`]).
        min_supported: u64,
        /// Newest version this build reads ([`MODEL_VERSION`]).
        max_supported: u64,
    },
    /// The stored feature schema differs from this build's
    /// [`FEATURE_NAMES`].
    Schema {
        /// Feature names the document was trained against.
        found: Vec<String>,
    },
    /// A member is missing or has the wrong shape; `path` is the dotted
    /// location inside the document (e.g. `"meta.seed"`,
    /// `"tree.left.leaf.format"`).
    Field {
        /// Dotted path of the offending member.
        path: String,
        /// What was wrong with it.
        reason: String,
    },
    /// The model file could not be read.
    Io {
        /// Path of the file.
        file: String,
        /// Operating-system error text.
        reason: String,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Json(msg) => write!(f, "model document is not valid JSON: {msg}"),
            Self::Version { found, min_supported, max_supported } => write!(
                f,
                "unsupported model version {found} (this build reads \
                 {min_supported}..={max_supported}) — retrain with `dls train-selector`"
            ),
            Self::Schema { found } => write!(
                f,
                "feature schema mismatch: model has {found:?}, this build expects \
                 {FEATURE_NAMES:?} — retrain with `dls train-selector`"
            ),
            Self::Field { path, reason } => write!(f, "model field \"{path}\": {reason}"),
            Self::Io { file, reason } => write!(f, "cannot read {file}: {reason}"),
        }
    }
}

impl std::error::Error for ModelError {}

/// Legacy callers still thread `String` errors; keep `?` working for them.
impl From<ModelError> for String {
    fn from(e: ModelError) -> Self {
        e.to_string()
    }
}

fn field_err(path: &str, reason: impl Into<String>) -> ModelError {
    ModelError::Field { path: path.to_string(), reason: reason.into() }
}

/// Fetches `key` from an object, reporting the full dotted path on absence.
fn member<'a>(v: &'a JsonValue, key: &str, path: &str) -> Result<&'a JsonValue, ModelError> {
    v.get(key).ok_or_else(|| field_err(&join(path, key), "missing"))
}

fn join(path: &str, key: &str) -> String {
    if path.is_empty() {
        key.to_string()
    } else {
        format!("{path}.{key}")
    }
}

fn want_u64(v: &JsonValue, path: &str) -> Result<u64, ModelError> {
    v.as_u64().ok_or_else(|| field_err(path, "must be a non-negative integer"))
}

fn want_usize(v: &JsonValue, path: &str) -> Result<usize, ModelError> {
    v.as_usize().ok_or_else(|| field_err(path, "must be a non-negative integer"))
}

fn want_f64(v: &JsonValue, path: &str) -> Result<f64, ModelError> {
    v.as_f64().ok_or_else(|| field_err(path, "must be a number"))
}

fn want_str<'a>(v: &'a JsonValue, path: &str) -> Result<&'a str, ModelError> {
    v.as_str().ok_or_else(|| field_err(path, "must be a string"))
}

fn want_arr<'a>(v: &'a JsonValue, path: &str) -> Result<&'a [JsonValue], ModelError> {
    v.as_arr().ok_or_else(|| field_err(path, "must be an array"))
}

/// Provenance of a trained model: how its training set was built.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelMeta {
    /// Master seed of the training grid.
    pub seed: u64,
    /// Grid flavour: `"full"`, `"quick"` or `"online"`.
    pub grid: String,
    /// Total training samples.
    pub samples: usize,
    /// Samples labelled by trusted measurement.
    pub measured: usize,
    /// Samples where measurement was noisy and the analytic model decided.
    pub analytic_fallback: usize,
    /// Samples labelled analytically by request.
    pub analytic: usize,
}

/// A trained tree plus its provenance — the unit of persistence.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainedModel {
    /// Training provenance.
    pub meta: ModelMeta,
    /// The decision tree itself (always present; the ensemble's fallback
    /// single-tree view).
    pub tree: DecisionTree,
    /// Learned per-format tuned block sizes; `None` for models trained
    /// before the block-calibration sweep existed.
    pub blocks: Option<BlockModel>,
    /// Bagged forest upgrade; `None` for single-tree models. When present,
    /// [`TrainedModel::predict`] votes across the forest and
    /// [`TrainedModel::predict_with_confidence`] reports the vote share.
    pub ensemble: Option<ForestModel>,
}

fn node_json(node: &Node, out: &mut String) {
    match node {
        Node::Leaf { format, counts } => {
            out.push_str("{\"leaf\":{\"format\":");
            out.push_str(&escape(&format.to_string()));
            out.push_str(",\"counts\":[");
            for (i, (f, c)) in counts.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("[{},{c}]", escape(&f.to_string())));
            }
            out.push_str("]}}");
        }
        Node::Split { feature, threshold, left, right } => {
            out.push_str(&format!(
                "{{\"split\":{{\"feature\":{feature},\"threshold\":{},\"left\":",
                number(*threshold)
            ));
            node_json(left, out);
            out.push_str(",\"right\":");
            node_json(right, out);
            out.push_str("}}");
        }
    }
}

fn parse_node(v: &JsonValue, path: &str) -> Result<Node, ModelError> {
    if let Some(leaf) = v.get("leaf") {
        let path = join(path, "leaf");
        let format = parse_format(member(leaf, "format", &path)?, &join(&path, "format"))?;
        let counts_path = join(&path, "counts");
        let mut counts = Vec::new();
        for (i, pair) in want_arr(member(leaf, "counts", &path)?, &counts_path)?.iter().enumerate()
        {
            let entry_path = format!("{counts_path}[{i}]");
            let pair = want_arr(pair, &entry_path)?;
            if pair.len() != 2 {
                return Err(field_err(&entry_path, "must be a [format, n] pair"));
            }
            let f = parse_format(&pair[0], &format!("{entry_path}[0]"))?;
            let n = want_usize(&pair[1], &format!("{entry_path}[1]"))?;
            counts.push((f, n));
        }
        Ok(Node::Leaf { format, counts })
    } else if let Some(split) = v.get("split") {
        let path = join(path, "split");
        let fpath = join(&path, "feature");
        let feature = want_usize(member(split, "feature", &path)?, &fpath)?;
        if feature >= FEATURE_NAMES.len() {
            return Err(field_err(
                &fpath,
                format!("index {feature} out of range (max {})", FEATURE_NAMES.len() - 1),
            ));
        }
        let threshold = want_f64(member(split, "threshold", &path)?, &join(&path, "threshold"))?;
        Ok(Node::Split {
            feature,
            threshold,
            left: Box::new(parse_node(member(split, "left", &path)?, &join(&path, "left"))?),
            right: Box::new(parse_node(member(split, "right", &path)?, &join(&path, "right"))?),
        })
    } else {
        Err(field_err(path, "node must have a \"leaf\" or \"split\" member"))
    }
}

fn parse_format(v: &JsonValue, path: &str) -> Result<Format, ModelError> {
    let name = want_str(v, path)?;
    Format::from_str(name).map_err(|e| field_err(path, e.to_string()))
}

fn regress_node_json(node: &RegressNode, out: &mut String) {
    match node {
        RegressNode::Leaf { value, n } => {
            out.push_str(&format!("{{\"leaf\":{{\"value\":{},\"n\":{n}}}}}", number(*value)));
        }
        RegressNode::Split { feature, threshold, left, right } => {
            out.push_str(&format!(
                "{{\"split\":{{\"feature\":{feature},\"threshold\":{},\"left\":",
                number(*threshold)
            ));
            regress_node_json(left, out);
            out.push_str(",\"right\":");
            regress_node_json(right, out);
            out.push_str("}}");
        }
    }
}

fn parse_regress_node(v: &JsonValue, path: &str) -> Result<RegressNode, ModelError> {
    if let Some(leaf) = v.get("leaf") {
        let path = join(path, "leaf");
        Ok(RegressNode::Leaf {
            value: want_f64(member(leaf, "value", &path)?, &join(&path, "value"))?,
            n: want_usize(member(leaf, "n", &path)?, &join(&path, "n"))?,
        })
    } else if let Some(split) = v.get("split") {
        let path = join(path, "split");
        let fpath = join(&path, "feature");
        let feature = want_usize(member(split, "feature", &path)?, &fpath)?;
        if feature >= FEATURE_NAMES.len() {
            return Err(field_err(
                &fpath,
                format!("index {feature} out of range (max {})", FEATURE_NAMES.len() - 1),
            ));
        }
        Ok(RegressNode::Split {
            feature,
            threshold: want_f64(member(split, "threshold", &path)?, &join(&path, "threshold"))?,
            left: Box::new(parse_regress_node(
                member(split, "left", &path)?,
                &join(&path, "left"),
            )?),
            right: Box::new(parse_regress_node(
                member(split, "right", &path)?,
                &join(&path, "right"),
            )?),
        })
    } else {
        Err(field_err(path, "regression node must have a \"leaf\" or \"split\" member"))
    }
}

fn blocks_json(blocks: &BlockModel, out: &mut String) {
    out.push('{');
    for (i, (fmt, tree)) in blocks.trees.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let p = tree.params();
        out.push_str(&format!(
            "{}:{{\"params\":{{\"max_depth\":{},\"min_leaf\":{},\"min_gain\":{}}},\"tree\":",
            escape(&fmt.to_string()),
            p.max_depth,
            p.min_leaf,
            number(p.min_gain)
        ));
        regress_node_json(tree.root(), out);
        out.push('}');
    }
    out.push('}');
}

fn parse_blocks(v: &JsonValue, path: &str) -> Result<BlockModel, ModelError> {
    let members = match v {
        JsonValue::Obj(members) => members,
        _ => return Err(field_err(path, "must be an object")),
    };
    let mut trees = Vec::new();
    for (name, entry) in members {
        let entry_path = join(path, name);
        let fmt = Format::from_str(name).map_err(|e| field_err(&entry_path, e.to_string()))?;
        let p = member(entry, "params", &entry_path)?;
        let ppath = join(&entry_path, "params");
        let params = RegressParams {
            max_depth: want_usize(member(p, "max_depth", &ppath)?, &join(&ppath, "max_depth"))?,
            min_leaf: want_usize(member(p, "min_leaf", &ppath)?, &join(&ppath, "min_leaf"))?,
            min_gain: want_f64(member(p, "min_gain", &ppath)?, &join(&ppath, "min_gain"))?,
        };
        let root =
            parse_regress_node(member(entry, "tree", &entry_path)?, &join(&entry_path, "tree"))?;
        trees.push((fmt, RegressionTree::from_parts(FEATURE_NAMES.len(), params, root)));
    }
    Ok(BlockModel { trees })
}

impl TrainedModel {
    /// Serialises the model to its versioned JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str(&format!("{{\"version\":{MODEL_VERSION},\"meta\":{{"));
        out.push_str(&format!(
            "\"seed\":{},\"grid\":{},\"samples\":{},\"measured\":{},\
             \"analytic_fallback\":{},\"analytic\":{}}}",
            self.meta.seed,
            escape(&self.meta.grid),
            self.meta.samples,
            self.meta.measured,
            self.meta.analytic_fallback,
            self.meta.analytic,
        ));
        out.push_str(",\"features\":[");
        for (i, name) in FEATURE_NAMES.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&escape(name));
        }
        out.push_str("],\"params\":{");
        let p = self.tree.params();
        out.push_str(&format!(
            "\"max_depth\":{},\"min_leaf\":{},\"min_gain\":{}",
            p.max_depth,
            p.min_leaf,
            number(p.min_gain)
        ));
        out.push_str("},\"tree\":");
        node_json(self.tree.root(), &mut out);
        if let Some(blocks) = &self.blocks {
            out.push_str(",\"blocks\":");
            blocks_json(blocks, &mut out);
        }
        if let Some(forest) = &self.ensemble {
            out.push_str(",\"ensemble\":[");
            for (i, tree) in forest.trees().iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                node_json(tree.root(), &mut out);
            }
            out.push(']');
        }
        out.push('}');
        out
    }

    /// Parses a model document, validating version and feature schema.
    pub fn from_json(doc: &str) -> Result<Self, ModelError> {
        let v = parse(doc).map_err(ModelError::Json)?;
        let version = want_u64(member(&v, "version", "")?, "version")?;
        if !(MIN_MODEL_VERSION..=MODEL_VERSION).contains(&version) {
            return Err(ModelError::Version {
                found: version,
                min_supported: MIN_MODEL_VERSION,
                max_supported: MODEL_VERSION,
            });
        }
        let names = want_arr(member(&v, "features", "")?, "features")?;
        let stored: Vec<&str> = names.iter().filter_map(|n| n.as_str()).collect();
        if stored != FEATURE_NAMES {
            return Err(ModelError::Schema {
                found: stored.iter().map(|s| s.to_string()).collect(),
            });
        }
        let m = member(&v, "meta", "")?;
        let meta = ModelMeta {
            seed: want_u64(member(m, "seed", "meta")?, "meta.seed")?,
            grid: want_str(member(m, "grid", "meta")?, "meta.grid")?.to_string(),
            samples: want_usize(member(m, "samples", "meta")?, "meta.samples")?,
            measured: want_usize(member(m, "measured", "meta")?, "meta.measured")?,
            analytic_fallback: want_usize(
                member(m, "analytic_fallback", "meta")?,
                "meta.analytic_fallback",
            )?,
            analytic: want_usize(member(m, "analytic", "meta")?, "meta.analytic")?,
        };
        let p = member(&v, "params", "")?;
        let params = TreeParams {
            max_depth: want_usize(member(p, "max_depth", "params")?, "params.max_depth")?,
            min_leaf: want_usize(member(p, "min_leaf", "params")?, "params.min_leaf")?,
            min_gain: want_f64(member(p, "min_gain", "params")?, "params.min_gain")?,
        };
        let root = parse_node(member(&v, "tree", "")?, "tree")?;
        // "blocks" is optional: models trained before block calibration
        // existed load fine and fall back to the engine default block.
        let blocks = match v.get("blocks") {
            Some(b) => Some(parse_blocks(b, "blocks")?),
            None => None,
        };
        // "ensemble" is optional: v1 documents and single-tree v2 documents
        // simply have no forest. Ensemble trees share the main `params`.
        let ensemble = match v.get("ensemble") {
            Some(e) => {
                let mut trees = Vec::new();
                for (i, t) in want_arr(e, "ensemble")?.iter().enumerate() {
                    let tree_path = format!("ensemble[{i}]");
                    trees.push(DecisionTree::from_parts(params, parse_node(t, &tree_path)?));
                }
                if trees.is_empty() {
                    return Err(field_err("ensemble", "must hold at least one tree"));
                }
                Some(ForestModel::from_trees(trees))
            }
            None => None,
        };
        Ok(Self { meta, tree: DecisionTree::from_parts(params, root), blocks, ensemble })
    }

    /// Writes the model to `path`.
    pub fn save_file(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Reads a model from `path`.
    pub fn load_file(path: impl AsRef<Path>) -> Result<Self, ModelError> {
        let doc = std::fs::read_to_string(path.as_ref()).map_err(|e| ModelError::Io {
            file: path.as_ref().display().to_string(),
            reason: e.to_string(),
        })?;
        Self::from_json(&doc)
    }

    /// Number of trees voting: ensemble size, or 1 for single-tree models.
    pub fn ensemble_size(&self) -> usize {
        self.ensemble.as_ref().map(|f| f.len()).unwrap_or(1)
    }

    /// Predicted format: forest majority vote when an ensemble is present,
    /// the single tree otherwise.
    pub fn predict(&self, x: &[f64; crate::features::NUM_FEATURES]) -> Format {
        match &self.ensemble {
            Some(forest) => forest.predict(x),
            None => self.tree.predict(x),
        }
    }

    /// Prediction plus a confidence in `[0, 1]`: the forest's winning vote
    /// share, or the single tree's leaf purity (majority-class fraction of
    /// the leaf's training histogram).
    pub fn predict_with_confidence(
        &self,
        x: &[f64; crate::features::NUM_FEATURES],
    ) -> (Format, f64) {
        match &self.ensemble {
            Some(forest) => forest.predict_with_confidence(x),
            None => self.tree.predict_with_confidence(x),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::NUM_FEATURES;

    fn sample_model() -> TrainedModel {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for k in 0..24 {
            let mut x = [0.0; NUM_FEATURES];
            x[3] = k as f64 / 23.0; // density
            x[5] = if k % 2 == 0 { 0.9 } else { 0.1 }; // dia_fill
            xs.push(x);
            ys.push(if x[3] > 0.6 {
                Format::Den
            } else if x[5] > 0.5 {
                Format::Dia
            } else {
                Format::Csr
            });
        }
        let tree = DecisionTree::train(&xs, &ys, TreeParams::default());
        TrainedModel {
            meta: ModelMeta {
                seed: 7,
                grid: "full".into(),
                samples: 24,
                measured: 20,
                analytic_fallback: 4,
                analytic: 0,
            },
            tree,
            blocks: None,
            ensemble: None,
        }
    }

    fn sample_model_with_blocks() -> TrainedModel {
        use crate::block::{BlockModel, BlockSample};
        use dls_sparse::MAX_SMSV_BLOCK;
        let mut samples = Vec::new();
        for k in 0..12 {
            let mut x = [0.0; NUM_FEATURES];
            x[0] = k as f64; // log2_m
            for fmt in [Format::Csr, Format::Ell] {
                samples.push(BlockSample {
                    format: fmt,
                    x,
                    block: if k < 6 { MAX_SMSV_BLOCK } else { 4 },
                });
            }
        }
        TrainedModel { blocks: Some(BlockModel::train(&samples)), ..sample_model() }
    }

    fn sample_model_with_ensemble() -> TrainedModel {
        let base = sample_model();
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for k in 0..24 {
            let mut x = [0.0; NUM_FEATURES];
            x[3] = k as f64 / 23.0;
            xs.push(x);
            ys.push(if x[3] > 0.5 { Format::Den } else { Format::Csr });
        }
        let forest = ForestModel::train(&xs, &ys, base.tree.params(), 3, 42);
        TrainedModel { ensemble: Some(forest), ..base }
    }

    #[test]
    fn json_round_trip_is_identity() {
        let model = sample_model();
        let doc = model.to_json();
        let restored = TrainedModel::from_json(&doc).unwrap();
        assert_eq!(restored, model);
        // Canonical form: re-serialisation is byte-identical.
        assert_eq!(restored.to_json(), doc);
    }

    #[test]
    fn block_model_round_trips_and_predicts_identically() {
        let model = sample_model_with_blocks();
        let doc = model.to_json();
        assert!(doc.contains("\"blocks\":"), "block trees persisted");
        let restored = TrainedModel::from_json(&doc).unwrap();
        assert_eq!(restored, model);
        assert_eq!(restored.to_json(), doc, "serialisation is canonical");
        let (orig, rest) = (model.blocks.unwrap(), restored.blocks.unwrap());
        for k in 0..12 {
            let mut x = [0.0; NUM_FEATURES];
            x[0] = k as f64;
            for fmt in [Format::Csr, Format::Ell, Format::Coo, Format::Csc] {
                assert_eq!(orig.tuned_block(fmt, &x), rest.tuned_block(fmt, &x), "{fmt}");
            }
        }
    }

    #[test]
    fn ensemble_round_trips_and_votes_identically() {
        let model = sample_model_with_ensemble();
        let doc = model.to_json();
        assert!(doc.contains("\"ensemble\":["), "forest persisted");
        let restored = TrainedModel::from_json(&doc).unwrap();
        assert_eq!(restored, model);
        assert_eq!(restored.to_json(), doc, "serialisation is canonical");
        assert_eq!(restored.ensemble_size(), 3);
        for k in 0..50 {
            let mut x = [0.0; NUM_FEATURES];
            x[3] = k as f64 / 49.0;
            assert_eq!(model.predict_with_confidence(&x), restored.predict_with_confidence(&x));
        }
    }

    #[test]
    fn restored_model_predicts_identically() {
        let model = sample_model();
        let restored = TrainedModel::from_json(&model.to_json()).unwrap();
        for k in 0..50 {
            let mut x = [0.0; NUM_FEATURES];
            x[3] = k as f64 / 49.0;
            x[5] = 1.0 - x[3];
            assert_eq!(model.tree.predict(&x), restored.tree.predict(&x));
        }
    }

    #[test]
    fn save_and_load_file() {
        let model = sample_model();
        let path = std::env::temp_dir().join("dls_learn_model_test.json");
        model.save_file(&path).unwrap();
        let restored = TrainedModel::load_file(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(restored, model);
    }

    #[test]
    fn load_reports_typed_errors_with_field_paths() {
        assert!(matches!(TrainedModel::from_json(""), Err(ModelError::Json(_))));
        assert_eq!(
            TrainedModel::from_json("{}"),
            Err(ModelError::Field { path: "version".into(), reason: "missing".into() })
        );
        let doc = sample_model().to_json();
        // Future version: typed error carrying the supported range.
        let bad = doc.replacen("\"version\":2", "\"version\":99", 1);
        assert_eq!(
            TrainedModel::from_json(&bad),
            Err(ModelError::Version { found: 99, min_supported: 1, max_supported: 2 })
        );
        let rendered = TrainedModel::from_json(&bad).unwrap_err().to_string();
        assert!(rendered.contains("version 99"), "{rendered}");
        assert!(rendered.contains("1..=2"), "{rendered}");
        // Wrong feature schema.
        let bad = doc.replacen("log2_m", "log3_m", 1);
        match TrainedModel::from_json(&bad) {
            Err(ModelError::Schema { found }) => assert_eq!(found[0], "log3_m"),
            other => panic!("expected schema error, got {other:?}"),
        }
        // Unknown format name in a leaf: the error names the exact member.
        let bad = doc.replacen("\"CSR\"", "\"XYZ\"", 1);
        match TrainedModel::from_json(&bad) {
            Err(ModelError::Field { path, .. }) => {
                assert!(path.starts_with("tree."), "path locates the node: {path}")
            }
            other => panic!("expected field error, got {other:?}"),
        }
        // Wrong member type.
        let bad = doc.replacen("\"seed\":7", "\"seed\":\"x\"", 1);
        assert_eq!(
            TrainedModel::from_json(&bad),
            Err(ModelError::Field {
                path: "meta.seed".into(),
                reason: "must be a non-negative integer".into()
            })
        );
        // Out-of-range feature index must not panic.
        let bad = doc.replacen("\"feature\":", "\"feature\":97", 1);
        let _ = TrainedModel::from_json(&bad);
    }

    #[test]
    fn v1_documents_still_load() {
        let model = sample_model();
        let v1 = model.to_json().replacen("\"version\":2", "\"version\":1", 1);
        let restored = TrainedModel::from_json(&v1).unwrap();
        assert_eq!(restored.tree, model.tree);
        assert!(restored.ensemble.is_none());
    }

    #[test]
    fn v2_documents_with_unknown_optional_fields_still_load() {
        // Forward compatibility: a newer build of the v2 family may add
        // optional sections; this build must ignore them, not reject.
        let model = sample_model();
        let doc = model.to_json();
        let extended = doc.replacen(
            "\"meta\":",
            "\"calibration\":{\"host\":\"other\",\"runs\":3},\"notes\":[1,2],\"meta\":",
            1,
        );
        let restored = TrainedModel::from_json(&extended).unwrap();
        assert_eq!(restored, model);
    }
}
