//! Hand-rolled JSON persistence for trained models.
//!
//! Same approach as `TelemetrySnapshot` and the tuning cache: a per-type
//! writer emitting a versioned document, with parsing delegated to
//! `dls_core::json`. The document stores the feature schema by name and the
//! loader rejects models whose schema differs from the running binary's
//! [`FEATURE_NAMES`] — a model trained against one featurisation must never
//! silently mis-predict under another.
//!
//! ```json
//! {"version":1,
//!  "meta":{"seed":7,"grid":"full","samples":80,"measured":61,
//!          "analytic_fallback":19,"analytic":0},
//!  "features":["log2_m", ...],
//!  "params":{"max_depth":8,"min_leaf":3,"min_gain":1e-9},
//!  "tree":{"split":{"feature":3,"threshold":0.52,
//!                   "left":{"leaf":{"format":"CSR","counts":[["CSR",12]]}},
//!                   "right":...}}}
//! ```

use crate::block::BlockModel;
use crate::features::FEATURE_NAMES;
use crate::regress::{RegressNode, RegressParams, RegressionTree};
use crate::tree::{DecisionTree, Node, TreeParams};
use dls_core::json::{escape, number, parse, JsonValue};
use dls_sparse::Format;
use std::path::Path;
use std::str::FromStr;

/// Document format version this build writes and accepts.
pub const MODEL_VERSION: u64 = 1;

/// Provenance of a trained model: how its training set was built.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelMeta {
    /// Master seed of the training grid.
    pub seed: u64,
    /// Grid flavour: `"full"` or `"quick"`.
    pub grid: String,
    /// Total training samples.
    pub samples: usize,
    /// Samples labelled by trusted measurement.
    pub measured: usize,
    /// Samples where measurement was noisy and the analytic model decided.
    pub analytic_fallback: usize,
    /// Samples labelled analytically by request.
    pub analytic: usize,
}

/// A trained tree plus its provenance — the unit of persistence.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainedModel {
    /// Training provenance.
    pub meta: ModelMeta,
    /// The decision tree itself.
    pub tree: DecisionTree,
    /// Learned per-format tuned block sizes; `None` for models trained
    /// before the block-calibration sweep existed.
    pub blocks: Option<BlockModel>,
}

fn node_json(node: &Node, out: &mut String) {
    match node {
        Node::Leaf { format, counts } => {
            out.push_str("{\"leaf\":{\"format\":");
            out.push_str(&escape(&format.to_string()));
            out.push_str(",\"counts\":[");
            for (i, (f, c)) in counts.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("[{},{c}]", escape(&f.to_string())));
            }
            out.push_str("]}}");
        }
        Node::Split { feature, threshold, left, right } => {
            out.push_str(&format!(
                "{{\"split\":{{\"feature\":{feature},\"threshold\":{},\"left\":",
                number(*threshold)
            ));
            node_json(left, out);
            out.push_str(",\"right\":");
            node_json(right, out);
            out.push_str("}}");
        }
    }
}

fn parse_node(v: &JsonValue) -> Result<Node, String> {
    if let Some(leaf) = v.get("leaf") {
        let format = parse_format(leaf.req("format")?)?;
        let mut counts = Vec::new();
        for pair in leaf.req("counts")?.as_arr().ok_or("counts must be an array")? {
            let pair = pair.as_arr().ok_or("count entry must be [format, n]")?;
            if pair.len() != 2 {
                return Err("count entry must be [format, n]".into());
            }
            let f = parse_format(&pair[0])?;
            let n = pair[1].as_usize().ok_or("count must be a non-negative integer")?;
            counts.push((f, n));
        }
        Ok(Node::Leaf { format, counts })
    } else if let Some(split) = v.get("split") {
        let feature = split.req("feature")?.as_usize().ok_or("feature must be an index")?;
        if feature >= FEATURE_NAMES.len() {
            return Err(format!("feature index {feature} out of range"));
        }
        let threshold = split.req("threshold")?.as_f64().ok_or("threshold must be a number")?;
        Ok(Node::Split {
            feature,
            threshold,
            left: Box::new(parse_node(split.req("left")?)?),
            right: Box::new(parse_node(split.req("right")?)?),
        })
    } else {
        Err("node must have a \"leaf\" or \"split\" member".into())
    }
}

fn parse_format(v: &JsonValue) -> Result<Format, String> {
    let name = v.as_str().ok_or("format must be a string")?;
    Format::from_str(name).map_err(|e| e.to_string())
}

fn regress_node_json(node: &RegressNode, out: &mut String) {
    match node {
        RegressNode::Leaf { value, n } => {
            out.push_str(&format!("{{\"leaf\":{{\"value\":{},\"n\":{n}}}}}", number(*value)));
        }
        RegressNode::Split { feature, threshold, left, right } => {
            out.push_str(&format!(
                "{{\"split\":{{\"feature\":{feature},\"threshold\":{},\"left\":",
                number(*threshold)
            ));
            regress_node_json(left, out);
            out.push_str(",\"right\":");
            regress_node_json(right, out);
            out.push_str("}}");
        }
    }
}

fn parse_regress_node(v: &JsonValue) -> Result<RegressNode, String> {
    if let Some(leaf) = v.get("leaf") {
        Ok(RegressNode::Leaf {
            value: leaf.req("value")?.as_f64().ok_or("leaf value must be a number")?,
            n: leaf.req("n")?.as_usize().ok_or("leaf n must be a count")?,
        })
    } else if let Some(split) = v.get("split") {
        let feature = split.req("feature")?.as_usize().ok_or("feature must be an index")?;
        if feature >= FEATURE_NAMES.len() {
            return Err(format!("block-tree feature index {feature} out of range"));
        }
        Ok(RegressNode::Split {
            feature,
            threshold: split.req("threshold")?.as_f64().ok_or("threshold must be a number")?,
            left: Box::new(parse_regress_node(split.req("left")?)?),
            right: Box::new(parse_regress_node(split.req("right")?)?),
        })
    } else {
        Err("regression node must have a \"leaf\" or \"split\" member".into())
    }
}

fn blocks_json(blocks: &BlockModel, out: &mut String) {
    out.push('{');
    for (i, (fmt, tree)) in blocks.trees.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let p = tree.params();
        out.push_str(&format!(
            "{}:{{\"params\":{{\"max_depth\":{},\"min_leaf\":{},\"min_gain\":{}}},\"tree\":",
            escape(&fmt.to_string()),
            p.max_depth,
            p.min_leaf,
            number(p.min_gain)
        ));
        regress_node_json(tree.root(), out);
        out.push('}');
    }
    out.push('}');
}

fn parse_blocks(v: &JsonValue) -> Result<BlockModel, String> {
    let members = match v {
        JsonValue::Obj(members) => members,
        _ => return Err("\"blocks\" must be an object".into()),
    };
    let mut trees = Vec::new();
    for (name, entry) in members {
        let fmt = Format::from_str(name).map_err(|e| e.to_string())?;
        let p = entry.req("params")?;
        let params = RegressParams {
            max_depth: p.req("max_depth")?.as_usize().ok_or("max_depth must be an integer")?,
            min_leaf: p.req("min_leaf")?.as_usize().ok_or("min_leaf must be an integer")?,
            min_gain: p.req("min_gain")?.as_f64().ok_or("min_gain must be a number")?,
        };
        let root = parse_regress_node(entry.req("tree")?)?;
        trees.push((fmt, RegressionTree::from_parts(FEATURE_NAMES.len(), params, root)));
    }
    Ok(BlockModel { trees })
}

impl TrainedModel {
    /// Serialises the model to its versioned JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str(&format!("{{\"version\":{MODEL_VERSION},\"meta\":{{"));
        out.push_str(&format!(
            "\"seed\":{},\"grid\":{},\"samples\":{},\"measured\":{},\
             \"analytic_fallback\":{},\"analytic\":{}}}",
            self.meta.seed,
            escape(&self.meta.grid),
            self.meta.samples,
            self.meta.measured,
            self.meta.analytic_fallback,
            self.meta.analytic,
        ));
        out.push_str(",\"features\":[");
        for (i, name) in FEATURE_NAMES.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&escape(name));
        }
        out.push_str("],\"params\":{");
        let p = self.tree.params();
        out.push_str(&format!(
            "\"max_depth\":{},\"min_leaf\":{},\"min_gain\":{}",
            p.max_depth,
            p.min_leaf,
            number(p.min_gain)
        ));
        out.push_str("},\"tree\":");
        node_json(self.tree.root(), &mut out);
        if let Some(blocks) = &self.blocks {
            out.push_str(",\"blocks\":");
            blocks_json(blocks, &mut out);
        }
        out.push('}');
        out
    }

    /// Parses a model document, validating version and feature schema.
    pub fn from_json(doc: &str) -> Result<Self, String> {
        let v = parse(doc)?;
        let version = v.req("version")?.as_u64().ok_or("version must be an integer")?;
        if version != MODEL_VERSION {
            return Err(format!(
                "unsupported model version {version} (this build reads {MODEL_VERSION})"
            ));
        }
        let names = v.req("features")?.as_arr().ok_or("features must be an array")?;
        let stored: Vec<&str> = names.iter().filter_map(|n| n.as_str()).collect();
        if stored != FEATURE_NAMES {
            return Err(format!(
                "feature schema mismatch: model has {stored:?}, this build expects \
                 {FEATURE_NAMES:?} — retrain with `dls train-selector`"
            ));
        }
        let m = v.req("meta")?;
        let meta = ModelMeta {
            seed: m.req("seed")?.as_u64().ok_or("seed must be an integer")?,
            grid: m.req("grid")?.as_str().ok_or("grid must be a string")?.to_string(),
            samples: m.req("samples")?.as_usize().ok_or("samples must be an integer")?,
            measured: m.req("measured")?.as_usize().ok_or("measured must be an integer")?,
            analytic_fallback: m
                .req("analytic_fallback")?
                .as_usize()
                .ok_or("analytic_fallback must be an integer")?,
            analytic: m.req("analytic")?.as_usize().ok_or("analytic must be an integer")?,
        };
        let p = v.req("params")?;
        let params = TreeParams {
            max_depth: p.req("max_depth")?.as_usize().ok_or("max_depth must be an integer")?,
            min_leaf: p.req("min_leaf")?.as_usize().ok_or("min_leaf must be an integer")?,
            min_gain: p.req("min_gain")?.as_f64().ok_or("min_gain must be a number")?,
        };
        let root = parse_node(v.req("tree")?)?;
        // "blocks" is optional: models trained before block calibration
        // existed load fine and fall back to the engine default block.
        let blocks = match v.get("blocks") {
            Some(b) => Some(parse_blocks(b)?),
            None => None,
        };
        Ok(Self { meta, tree: DecisionTree::from_parts(params, root), blocks })
    }

    /// Writes the model to `path`.
    pub fn save_file(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Reads a model from `path`.
    pub fn load_file(path: impl AsRef<Path>) -> Result<Self, String> {
        let doc = std::fs::read_to_string(path.as_ref())
            .map_err(|e| format!("cannot read {}: {e}", path.as_ref().display()))?;
        Self::from_json(&doc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::NUM_FEATURES;

    fn sample_model() -> TrainedModel {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for k in 0..24 {
            let mut x = [0.0; NUM_FEATURES];
            x[3] = k as f64 / 23.0; // density
            x[5] = if k % 2 == 0 { 0.9 } else { 0.1 }; // dia_fill
            xs.push(x);
            ys.push(if x[3] > 0.6 {
                Format::Den
            } else if x[5] > 0.5 {
                Format::Dia
            } else {
                Format::Csr
            });
        }
        let tree = DecisionTree::train(&xs, &ys, TreeParams::default());
        TrainedModel {
            meta: ModelMeta {
                seed: 7,
                grid: "full".into(),
                samples: 24,
                measured: 20,
                analytic_fallback: 4,
                analytic: 0,
            },
            tree,
            blocks: None,
        }
    }

    fn sample_model_with_blocks() -> TrainedModel {
        use crate::block::{BlockModel, BlockSample};
        use dls_sparse::MAX_SMSV_BLOCK;
        let mut samples = Vec::new();
        for k in 0..12 {
            let mut x = [0.0; NUM_FEATURES];
            x[0] = k as f64; // log2_m
            for fmt in [Format::Csr, Format::Ell] {
                samples.push(BlockSample {
                    format: fmt,
                    x,
                    block: if k < 6 { MAX_SMSV_BLOCK } else { 4 },
                });
            }
        }
        TrainedModel { blocks: Some(BlockModel::train(&samples)), ..sample_model() }
    }

    #[test]
    fn json_round_trip_is_identity() {
        let model = sample_model();
        let doc = model.to_json();
        let restored = TrainedModel::from_json(&doc).unwrap();
        assert_eq!(restored, model);
        // Canonical form: re-serialisation is byte-identical.
        assert_eq!(restored.to_json(), doc);
    }

    #[test]
    fn block_model_round_trips_and_predicts_identically() {
        let model = sample_model_with_blocks();
        let doc = model.to_json();
        assert!(doc.contains("\"blocks\":"), "block trees persisted");
        let restored = TrainedModel::from_json(&doc).unwrap();
        assert_eq!(restored, model);
        assert_eq!(restored.to_json(), doc, "serialisation is canonical");
        let (orig, rest) = (model.blocks.unwrap(), restored.blocks.unwrap());
        for k in 0..12 {
            let mut x = [0.0; NUM_FEATURES];
            x[0] = k as f64;
            for fmt in [Format::Csr, Format::Ell, Format::Coo, Format::Csc] {
                assert_eq!(orig.tuned_block(fmt, &x), rest.tuned_block(fmt, &x), "{fmt}");
            }
        }
    }

    #[test]
    fn restored_model_predicts_identically() {
        let model = sample_model();
        let restored = TrainedModel::from_json(&model.to_json()).unwrap();
        for k in 0..50 {
            let mut x = [0.0; NUM_FEATURES];
            x[3] = k as f64 / 49.0;
            x[5] = 1.0 - x[3];
            assert_eq!(model.tree.predict(&x), restored.tree.predict(&x));
        }
    }

    #[test]
    fn save_and_load_file() {
        let model = sample_model();
        let path = std::env::temp_dir().join("dls_learn_model_test.json");
        model.save_file(&path).unwrap();
        let restored = TrainedModel::load_file(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(restored, model);
    }

    #[test]
    fn load_rejects_bad_documents() {
        assert!(TrainedModel::from_json("").is_err());
        assert!(TrainedModel::from_json("{}").is_err());
        let doc = sample_model().to_json();
        // Wrong version.
        let bad = doc.replacen("\"version\":1", "\"version\":99", 1);
        let err = TrainedModel::from_json(&bad).unwrap_err();
        assert!(err.contains("version"), "{err}");
        // Wrong feature schema.
        let bad = doc.replacen("log2_m", "log3_m", 1);
        let err = TrainedModel::from_json(&bad).unwrap_err();
        assert!(err.contains("schema"), "{err}");
        // Unknown format name in a leaf.
        let bad = doc.replace("\"CSR\"", "\"XYZ\"");
        assert!(TrainedModel::from_json(&bad).is_err());
        // Out-of-range feature index.
        let bad = doc.replacen("\"feature\":", "\"feature\":97", 1);
        let _ = TrainedModel::from_json(&bad); // must not panic (may err on number juxtaposition)
    }
}
