//! Labelling oracle: which format is actually fastest for a matrix?
//!
//! Two modes. **Measured** materialises all five basic formats and times
//! real SMSV sweeps (the honest oracle, used for real training runs). Timing
//! on a busy host is noisy, so each case is measured in `passes` independent
//! passes and the result is only trusted when a *majority* of passes agree
//! on the winner of the element-wise-minimum scores *and* that winner beats
//! the runner-up by a configurable margin; otherwise the case falls back to
//! the analytic model. (The original two-pass gate demanded unanimity,
//! which on a noisy 1-core host rejected ~20% of cases; three passes with a
//! 2-of-3 majority keeps the same measurement budget while rejecting far
//! fewer.) **Analytic** skips the clock entirely and labels by Table II
//! storage volume under a flat bandwidth profile — fully deterministic,
//! used by tests and `--analytic` CI smoke runs.

use crate::features::{featurize, NUM_FEATURES};
use dls_core::{BandwidthProfile, CostModelSelector};
use dls_sparse::{AnyMatrix, Format, MatrixFeatures, MatrixFormat, TripletMatrix};
use std::time::Instant;

/// How labels are produced.
#[derive(Debug, Clone, Copy)]
pub enum LabelMode {
    /// Time real SMSV sweeps; fall back to the analytic model when the
    /// measurement passes cannot form a majority for one winner or the
    /// margin is below `min_margin`.
    Measured {
        /// SMSV repetitions per pass per format.
        reps: usize,
        /// Independent measurement passes (clamped to ≥ 2). The label is
        /// trusted only when a strict majority of passes agree on the
        /// winner.
        passes: usize,
        /// Required relative gap between winner and runner-up
        /// (`0.03` = winner must be ≥ 3% faster) for a measurement to be
        /// trusted.
        min_margin: f64,
    },
    /// Label purely from predicted storage / bandwidth — deterministic.
    Analytic {
        /// Bandwidth profile for Eq. (7). [`BandwidthProfile::FLAT`]
        /// reduces the label to pure Table II storage volume.
        bandwidth: BandwidthProfile,
    },
}

impl Default for LabelMode {
    fn default() -> Self {
        // Same total budget as the old two-pass × 6-rep gate (12 sweeps per
        // format), split into three passes so a single noisy pass can be
        // outvoted instead of vetoing the measurement.
        Self::Measured { reps: 4, passes: 3, min_margin: 0.03 }
    }
}

impl LabelMode {
    /// Deterministic analytic labelling under the flat profile — the mode
    /// tests and `--analytic` runs use.
    pub fn analytic_flat() -> Self {
        Self::Analytic { bandwidth: BandwidthProfile::FLAT }
    }
}

/// Where a sample's label came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LabelSource {
    /// A majority of measurement passes agreed with sufficient margin.
    Measured,
    /// Measurement was too noisy; the analytic model decided.
    AnalyticFallback,
    /// Analytic mode was requested outright.
    Analytic,
}

/// One labelled training sample.
#[derive(Debug, Clone)]
pub struct LabelledSample {
    /// Grid-case description the sample came from.
    pub desc: String,
    /// Full extracted influencing parameters.
    pub features: MatrixFeatures,
    /// Feature vector the tree trains on.
    pub x: [f64; NUM_FEATURES],
    /// The winning format — the training label.
    pub label: Format,
    /// Per-format oracle scores (seconds; lower is better), in
    /// [`Format::BASIC`] order. Used for regret, not for training.
    pub scores: [f64; Format::BASIC.len()],
    /// Provenance of the label.
    pub source: LabelSource,
}

impl LabelledSample {
    /// Oracle score of `format`, for regret computations.
    pub fn score_of(&self, format: Format) -> Option<f64> {
        Format::BASIC.iter().position(|&f| f == format).map(|i| self.scores[i])
    }
}

/// Times `reps` SMSV sweeps of `t` materialised in `fmt` (mean seconds).
fn time_format(fmt: Format, t: &TripletMatrix, reps: usize) -> f64 {
    let m = AnyMatrix::from_triplets(fmt, t);
    let rows = m.rows();
    let mut out = vec![0.0; rows];
    let probes: Vec<_> = (0..4).map(|k| m.row_sparse(k * rows.saturating_sub(1) / 3)).collect();
    m.smsv(&probes[0], &mut out); // warm-up
    let start = Instant::now();
    for r in 0..reps.max(1) {
        m.smsv(&probes[r % probes.len()], &mut out);
    }
    start.elapsed().as_secs_f64() / reps.max(1) as f64
}

/// One full measurement pass over the basic formats.
fn measure_pass(t: &TripletMatrix, reps: usize) -> [f64; Format::BASIC.len()] {
    let mut scores = [0.0; Format::BASIC.len()];
    for (i, &fmt) in Format::BASIC.iter().enumerate() {
        scores[i] = time_format(fmt, t, reps);
    }
    scores
}

fn argmin(scores: &[f64]) -> usize {
    let mut best = 0;
    for (i, &s) in scores.iter().enumerate() {
        if s < scores[best] {
            best = i;
        }
    }
    best
}

/// Analytic per-format scores (predicted seconds).
fn analytic_scores(f: &MatrixFeatures, bandwidth: BandwidthProfile) -> [f64; Format::BASIC.len()] {
    let sel = CostModelSelector::with_bandwidth(bandwidth);
    let mut scores = [0.0; Format::BASIC.len()];
    for (i, &fmt) in Format::BASIC.iter().enumerate() {
        scores[i] = sel.predicted_time(fmt, f);
    }
    scores
}

/// Labels one matrix under `mode`.
pub fn label_case(desc: &str, t: &TripletMatrix, mode: LabelMode) -> LabelledSample {
    let features = MatrixFeatures::from_triplets(t);
    let x = featurize(&features);
    let (scores, label_idx, source) = match mode {
        LabelMode::Analytic { bandwidth } => {
            let scores = analytic_scores(&features, bandwidth);
            let best = argmin(&scores);
            (scores, best, LabelSource::Analytic)
        }
        LabelMode::Measured { reps, passes, min_margin } => {
            let passes = passes.max(2);
            // Element-wise minimum across all passes: the best observed time
            // is the least noise-inflated estimate of each format's speed.
            let mut scores = [f64::INFINITY; Format::BASIC.len()];
            let mut winners = Vec::with_capacity(passes);
            for _ in 0..passes {
                let pass = measure_pass(t, reps);
                winners.push(argmin(&pass));
                for (s, &p) in scores.iter_mut().zip(&pass) {
                    *s = s.min(p);
                }
            }
            let best = argmin(&scores);
            let votes = winners.iter().filter(|&&w| w == best).count();
            let mut runner_up = f64::INFINITY;
            for (i, &s) in scores.iter().enumerate() {
                if i != best && s < runner_up {
                    runner_up = s;
                }
            }
            let margin_ok = scores[best] > 0.0 && runner_up / scores[best] >= 1.0 + min_margin;
            if 2 * votes > passes && margin_ok {
                (scores, best, LabelSource::Measured)
            } else {
                let fallback = analytic_scores(&features, BandwidthProfile::FLAT);
                let best = argmin(&fallback);
                (fallback, best, LabelSource::AnalyticFallback)
            }
        }
    };
    LabelledSample {
        desc: desc.to_string(),
        features,
        x,
        label: Format::BASIC[label_idx],
        scores,
        source,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dls_data::controlled::{diag_matrix, mdim_matrix};
    use dls_sparse::TripletMatrix;

    #[test]
    fn analytic_labels_match_storage_intuition() {
        // Few-diagonal matrix: DIA stores least.
        let dia = diag_matrix(128, 128, 256, 2, 1);
        let s = label_case("dia", &dia, LabelMode::analytic_flat());
        assert_eq!(s.label, Format::Dia);
        assert_eq!(s.source, LabelSource::Analytic);
        // Fully dense: DEN stores MN vs CSR's 2MN+M.
        let den = TripletMatrix::from_dense(16, 16, &[1.0; 256]);
        assert_eq!(label_case("den", &den, LabelMode::analytic_flat()).label, Format::Den);
        // One wide row among empties: padded ELL and DIA blow up. With
        // nnz = M, COO's 3·nnz edges out CSR's 2·nnz + M + 1 by one word.
        let skew = mdim_matrix(128, 128, 128, 128, 2);
        assert_eq!(label_case("skew", &skew, LabelMode::analytic_flat()).label, Format::Coo);
        // Same shape with nnz >> M: the row pointer amortises, CSR wins.
        let skew = mdim_matrix(128, 128, 512, 128, 2);
        assert_eq!(label_case("skew2", &skew, LabelMode::analytic_flat()).label, Format::Csr);
    }

    #[test]
    fn analytic_labels_are_deterministic() {
        let t = diag_matrix(96, 96, 192, 6, 3);
        let a = label_case("x", &t, LabelMode::analytic_flat());
        let b = label_case("x", &t, LabelMode::analytic_flat());
        assert_eq!(a.label, b.label);
        assert_eq!(a.scores, b.scores);
        assert_eq!(a.x, b.x);
    }

    #[test]
    fn scores_align_with_label() {
        let t = diag_matrix(128, 128, 256, 4, 4);
        let s = label_case("d", &t, LabelMode::analytic_flat());
        let own = s.score_of(s.label).unwrap();
        for &fmt in &Format::BASIC {
            assert!(own <= s.score_of(fmt).unwrap(), "label must have the best score");
        }
        assert!(s.score_of(Format::Hyb).is_none(), "derived formats are not scored");
    }

    #[test]
    fn measured_mode_produces_a_basic_label_with_positive_scores() {
        // Tiny matrix: the point is exercising the measured path end to end,
        // not asserting which format wins on a noisy CI host.
        let t = diag_matrix(64, 64, 128, 2, 5);
        let s = label_case("m", &t, LabelMode::Measured { reps: 2, passes: 2, min_margin: 0.05 });
        assert!(Format::BASIC.contains(&s.label));
        assert!(s.scores.iter().all(|&v| v > 0.0));
        assert!(matches!(s.source, LabelSource::Measured | LabelSource::AnalyticFallback));
    }
}
