//! Integration pin: the learned selector vs the paper's rule-based system
//! on synthetic twins of all eleven Table V datasets.
//!
//! The model is trained deterministically (full grid, analytic flat-profile
//! labels, default seed), so both selectors' picks are stable and can be
//! pinned. Where the two disagree, the disagreement is documented inline
//! with the oracle winner (fastest format under the same flat storage
//! oracle the tree was trained against) — the point of the pin is to make
//! any future drift in either selector loud, not to hide it.

use dls_core::{BandwidthProfile, CostModelSelector, LayoutScheduler, SelectionStrategy};
use dls_data::specs::PAPER_DATASETS;
use dls_data::synth::generate;
use dls_learn::{train_selector, LabelMode, LearnedSelector, TrainConfig};
use dls_sparse::{Format, MatrixFeatures};

/// Same per-dataset scaling the bench harness uses: dense giants shrink,
/// sparse sets run near full size (format choice depends on the influencing
/// parameters, not absolute size).
fn scale_of(name: &str) -> usize {
    match name {
        "gisette" => 8,
        "epsilon" => 400,
        "dna" => 2_000,
        "sector" => 4,
        _ => 1,
    }
}

#[test]
fn learned_selector_vs_rules_on_table5_twins() {
    let cfg = TrainConfig { mode: LabelMode::analytic_flat(), ..Default::default() };
    let learned = LearnedSelector::new(train_selector(&cfg).model);
    let rules = LayoutScheduler::with_strategy(SelectionStrategy::RuleBased);
    let oracle = CostModelSelector::with_bandwidth(BandwidthProfile::FLAT);

    let mut actual = Vec::new();
    for spec in &PAPER_DATASETS {
        let t = generate(&spec.scaled(scale_of(spec.name)), 42);
        let f = MatrixFeatures::from_triplets(&t);
        let rule_pick = rules.select_only(&t).chosen;
        let learned_pick = learned.predict(&f);
        let oracle_pick = oracle
            .score_all(&f)
            .iter()
            .min_by(|a, b| a.score.partial_cmp(&b.score).unwrap())
            .unwrap()
            .format;
        actual.push((spec.name, rule_pick, learned_pick, oracle_pick));
    }

    // Pinned picks: (dataset, rules, learned, flat-storage oracle).
    //
    // The learned selector agrees with the oracle on all eleven twins. The
    // paper's rules disagree with the oracle on three, documented here with
    // the oracle winner:
    //
    // * mnist, sector — the COO rule fires on high row-length imbalance
    //   (vdim ≫ adim), but under flat-bandwidth storage CSR is smaller
    //   whenever nnz > M (3·nnz vs 2·nnz + M + 1). The rule encodes the
    //   paper's measured KNL behaviour, not the storage bound.
    // * connect-4 — the density rule tips to DEN at d ≈ 0.34 on a wide
    //   threshold, but the rows are perfectly uniform (vdim = 0) so ELL
    //   stores 2·M·mdim < M·N and wins the storage oracle.
    let expected = vec![
        ("adult", Format::Ell, Format::Ell, Format::Ell),
        ("breast_cancer", Format::Den, Format::Den, Format::Den),
        ("aloi", Format::Csr, Format::Csr, Format::Csr),
        ("gisette", Format::Den, Format::Den, Format::Den),
        ("mnist", Format::Coo, Format::Csr, Format::Csr),
        ("sector", Format::Coo, Format::Csr, Format::Csr),
        ("epsilon", Format::Den, Format::Den, Format::Den),
        ("leukemia", Format::Den, Format::Den, Format::Den),
        ("connect-4", Format::Den, Format::Ell, Format::Ell),
        ("trefethen", Format::Dia, Format::Dia, Format::Dia),
        ("dna", Format::Den, Format::Den, Format::Den),
    ];

    let render = |rows: &[(&str, Format, Format, Format)]| {
        rows.iter()
            .map(|(n, r, l, o)| format!("(\"{n}\", {r:?}, {l:?}, {o:?})"))
            .collect::<Vec<_>>()
            .join(",\n")
    };
    assert_eq!(actual, expected, "\nactual rows:\n{}\n", render(&actual));
}
