//! Property-based tests for the telemetry training log: JSONL encoding of
//! [`LabeledObservation`] must be a canonical round trip — parse(encode(o))
//! is identical to `o`, and encode(parse(line)) is byte-identical to
//! `line` — for arbitrary feature values, formats, blocks and batch sizes.

use dls_learn::{parse_jsonl_log, LabeledObservation};
use dls_sparse::{Format, MatrixFeatures};
use proptest::prelude::*;

/// Strategy: an observation with arbitrary (finite, non-negative) feature
/// values, any of the nine formats, and arbitrary counters. Feature floats
/// deliberately include awkward values (tiny, huge, many digits) to stress
/// the hand-rolled number formatter.
fn arb_observation() -> impl Strategy<Value = LabeledObservation> {
    (
        0u32..u32::MAX, // seq
        (0usize..1 << 20, 0usize..1 << 20, 0usize..1 << 24, 0usize..1 << 20, 0usize..1 << 16),
        (0.0f64..1e9, 0.0f64..1e6, 0.0f64..1e12, 0.0f64..1.0),
        0usize..Format::ALL.len(),
        (1usize..64, 1usize..256, 1u64..u64::from(u32::MAX)),
    )
        .prop_map(
            |(
                seq,
                (m, n, nnz, ndig, mdim),
                (dnnz, adim, vdim, density),
                fmt,
                (block, batch, nanos),
            )| {
                LabeledObservation {
                    seq: u64::from(seq),
                    features: MatrixFeatures { m, n, nnz, ndig, dnnz, mdim, adim, vdim, density },
                    format: Format::ALL[fmt],
                    block,
                    batch,
                    nanos,
                }
            },
        )
}

proptest! {
    /// Invariant: JSONL round trip is the identity, both ways.
    #[test]
    fn jsonl_round_trip_identity(obs in arb_observation()) {
        let line = obs.to_jsonl();
        prop_assert!(!line.contains('\n'), "one observation, one line");
        let restored = LabeledObservation::from_jsonl(&line)
            .expect("own output must parse");
        prop_assert_eq!(&restored, &obs);
        prop_assert_eq!(restored.to_jsonl(), line, "encoding is canonical");
    }

    /// Invariant: a multi-line log drains back in order and unchanged.
    #[test]
    fn jsonl_log_round_trip(observations in proptest::collection::vec(arb_observation(), 0..20)) {
        let text: String =
            observations.iter().map(|o| format!("{}\n", o.to_jsonl())).collect();
        let restored = parse_jsonl_log(&text).expect("log must parse");
        prop_assert_eq!(restored, observations);
    }
}
