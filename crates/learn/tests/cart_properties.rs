//! Property-based tests for the CART trainer's structural invariants:
//!
//! 1. every internal split strictly reduces weighted Gini impurity on the
//!    training samples that reach it,
//! 2. predictions always return a format that appeared in the training
//!    labels (the tree cannot invent classes),
//! 3. model JSON round-trips to an identical tree (same structure, same
//!    predictions, byte-identical re-serialisation).

use dls_learn::{DecisionTree, ModelMeta, Node, TrainedModel, TreeParams, NUM_FEATURES};
use dls_sparse::Format;
use proptest::prelude::*;

/// Strategy: a labelled training set with 2..60 samples over a compressed
/// 3-feature subspace (indices 0, 3, 7), labels from the basic five.
fn arb_training_set() -> impl Strategy<Value = (Vec<[f64; NUM_FEATURES]>, Vec<Format>)> {
    let sample = (0u8..5, -8i32..=8, -8i32..=8, -8i32..=8).prop_map(|(label, a, b, c)| {
        let mut x = [0.0; NUM_FEATURES];
        x[0] = a as f64 / 4.0;
        x[3] = b as f64 / 8.0;
        x[7] = c as f64 / 2.0;
        (x, Format::BASIC[label as usize])
    });
    proptest::collection::vec(sample, 2..60)
        .prop_map(|rows| (rows.iter().map(|r| r.0).collect(), rows.iter().map(|r| r.1).collect()))
}

/// Strategy: pruning parameters in sensible ranges.
fn arb_params() -> impl Strategy<Value = TreeParams> {
    (0usize..10, 1usize..6).prop_map(|(max_depth, min_leaf)| TreeParams {
        max_depth,
        min_leaf,
        min_gain: 1e-9,
    })
}

/// Gini impurity of a label multiset.
fn gini_of(labels: &[Format]) -> f64 {
    let mut counts = [0usize; Format::ALL.len()];
    for &l in labels {
        counts[dls_sparse::telemetry::format_index(l)] += 1;
    }
    dls_learn::gini(&counts)
}

/// Walks the tree alongside the samples that reach each node, checking the
/// strict-Gini-reduction invariant at every split.
fn check_splits_reduce_gini(node: &Node, xs: &[[f64; NUM_FEATURES]], ys: &[Format], idx: &[usize]) {
    if let Node::Split { feature, threshold, left, right } = node {
        let (li, ri): (Vec<usize>, Vec<usize>) =
            idx.iter().partition(|&&i| xs[i][*feature] <= *threshold);
        assert!(!li.is_empty() && !ri.is_empty(), "split must separate samples");
        let labels = |ids: &[usize]| ids.iter().map(|&i| ys[i]).collect::<Vec<_>>();
        let parent = gini_of(&labels(idx));
        let n = idx.len() as f64;
        let weighted = li.len() as f64 / n * gini_of(&labels(&li))
            + ri.len() as f64 / n * gini_of(&labels(&ri));
        assert!(
            weighted < parent,
            "split on feature {feature} @ {threshold} does not reduce Gini: \
             {weighted} !< {parent}"
        );
        check_splits_reduce_gini(left, xs, ys, &li);
        check_splits_reduce_gini(right, xs, ys, &ri);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Invariant 1: every kept split strictly reduces weighted Gini.
    #[test]
    fn splits_strictly_reduce_gini((xs, ys) in arb_training_set(), params in arb_params()) {
        let tree = DecisionTree::train(&xs, &ys, params);
        let idx: Vec<usize> = (0..xs.len()).collect();
        check_splits_reduce_gini(tree.root(), &xs, &ys, &idx);
    }

    /// Invariant 2: predictions come from the training label set — on the
    /// training samples themselves and on arbitrary unseen points.
    #[test]
    fn predictions_stay_in_the_training_label_set(
        (xs, ys) in arb_training_set(),
        params in arb_params(),
        probe in proptest::collection::vec(-100i32..=100, NUM_FEATURES),
    ) {
        let tree = DecisionTree::train(&xs, &ys, params);
        for x in &xs {
            prop_assert!(ys.contains(&tree.predict(x)));
        }
        let mut x = [0.0; NUM_FEATURES];
        for (slot, v) in x.iter_mut().zip(&probe) {
            *slot = *v as f64 / 7.0;
        }
        prop_assert!(ys.contains(&tree.predict(&x)), "unseen point predicted unseen class");
        for f in tree.predictable_formats() {
            prop_assert!(ys.contains(&f));
        }
    }

    /// Invariant 3: JSON round trip is the identity — structurally, on
    /// predictions, and on the serialised bytes.
    #[test]
    fn model_json_round_trips((xs, ys) in arb_training_set(), params in arb_params()) {
        let tree = DecisionTree::train(&xs, &ys, params);
        let model = TrainedModel {
            meta: ModelMeta {
                seed: 1,
                grid: "proptest".into(),
                samples: xs.len(),
                measured: 0,
                analytic_fallback: 0,
                analytic: xs.len(),
            },
            tree,
            blocks: None,
            ensemble: None,
        };
        let doc = model.to_json();
        let restored = TrainedModel::from_json(&doc).expect("own output must parse");
        prop_assert_eq!(&restored, &model);
        prop_assert_eq!(restored.to_json(), doc, "canonical form");
        for x in &xs {
            prop_assert_eq!(restored.tree.predict(x), model.tree.predict(x));
        }
    }
}
