//! Classification metrics.

use dls_sparse::Scalar;

/// Fraction of predictions equal to the truth.
///
/// # Panics
/// Panics if the slices differ in length or are empty.
pub fn accuracy(predicted: &[Scalar], truth: &[Scalar]) -> f64 {
    assert_eq!(predicted.len(), truth.len(), "length mismatch");
    assert!(!predicted.is_empty(), "empty prediction set");
    let correct = predicted.iter().zip(truth).filter(|(p, t)| p == t).count();
    correct as f64 / predicted.len() as f64
}

/// Binary confusion counts `(tp, fp, tn, fn)` treating `+1` as positive.
pub fn confusion_binary(predicted: &[Scalar], truth: &[Scalar]) -> (usize, usize, usize, usize) {
    assert_eq!(predicted.len(), truth.len(), "length mismatch");
    let (mut tp, mut fp, mut tn, mut fal_n) = (0, 0, 0, 0);
    for (&p, &t) in predicted.iter().zip(truth) {
        match (p > 0.0, t > 0.0) {
            (true, true) => tp += 1,
            (true, false) => fp += 1,
            (false, false) => tn += 1,
            (false, true) => fal_n += 1,
        }
    }
    (tp, fp, tn, fal_n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_accuracy() {
        assert_eq!(accuracy(&[1.0, -1.0], &[1.0, -1.0]), 1.0);
    }

    #[test]
    fn half_accuracy() {
        assert_eq!(accuracy(&[1.0, 1.0], &[1.0, -1.0]), 0.5);
    }

    #[test]
    fn confusion_counts() {
        let pred = [1.0, 1.0, -1.0, -1.0];
        let truth = [1.0, -1.0, -1.0, 1.0];
        assert_eq!(confusion_binary(&pred, &truth), (1, 1, 1, 1));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn rejects_mismatched_lengths() {
        let _ = accuracy(&[1.0], &[1.0, -1.0]);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn rejects_empty() {
        let _ = accuracy(&[], &[]);
    }
}
