//! Trained SVM model: support vectors, dual coefficients and bias.

use crate::KernelKind;
use dls_sparse::{
    AnyMatrix, Format, MatrixFormat, Scalar, SparseVec, TripletMatrix, MAX_SMSV_BLOCK,
};

/// A trained binary SVM.
///
/// Stores only the support vectors (rows with `α_i > 0`), their dual
/// coefficients `α_i y_i`, and the bias, so prediction is
/// `sign(Σ_s coef_s · K(SV_s, x) + b)`.
#[derive(Debug, Clone)]
pub struct SvmModel {
    kernel: KernelKind,
    support_vectors: Vec<SparseVec>,
    /// `α_i y_i` per support vector.
    coefficients: Vec<Scalar>,
    /// Cached squared norms of the support vectors (for Gaussian kernels).
    sv_norms_sq: Vec<Scalar>,
    bias: Scalar,
}

impl SvmModel {
    /// Assembles a model from training outputs.
    ///
    /// # Panics
    /// Panics if the arrays differ in length.
    pub fn new(
        kernel: KernelKind,
        support_vectors: Vec<SparseVec>,
        coefficients: Vec<Scalar>,
        bias: Scalar,
    ) -> Self {
        assert_eq!(support_vectors.len(), coefficients.len(), "SV/coef mismatch");
        let sv_norms_sq = support_vectors.iter().map(SparseVec::norm_sq).collect();
        Self { kernel, support_vectors, coefficients, sv_norms_sq, bias }
    }

    /// The kernel the model was trained with.
    #[inline]
    pub fn kernel(&self) -> KernelKind {
        self.kernel
    }

    /// Number of support vectors.
    #[inline]
    pub fn n_support_vectors(&self) -> usize {
        self.support_vectors.len()
    }

    /// The support vectors.
    #[inline]
    pub fn support_vectors(&self) -> &[SparseVec] {
        &self.support_vectors
    }

    /// The dual coefficients `α_i y_i`.
    #[inline]
    pub fn coefficients(&self) -> &[Scalar] {
        &self.coefficients
    }

    /// The bias term `b`.
    #[inline]
    pub fn bias(&self) -> Scalar {
        self.bias
    }

    /// Signed decision value `Σ coef_s K(SV_s, x) + b`.
    pub fn decision_function(&self, x: &SparseVec) -> Scalar {
        let x_norm_sq = x.norm_sq();
        let mut acc = self.bias;
        for ((sv, &coef), &sv_norm) in
            self.support_vectors.iter().zip(&self.coefficients).zip(&self.sv_norms_sq)
        {
            let dot = sv.dot(x);
            acc += coef * self.kernel.apply(dot, sv_norm, x_norm_sq);
        }
        acc
    }

    /// Predicted label: `+1.0` or `-1.0`. Zero decision values map to `+1`.
    pub fn predict_label(&self, x: &SparseVec) -> Scalar {
        if self.decision_function(x) >= 0.0 {
            1.0
        } else {
            -1.0
        }
    }

    /// Predicts labels for many samples (per-vector dot products).
    pub fn predict_labels<'a>(
        &self,
        samples: impl IntoIterator<Item = &'a SparseVec>,
    ) -> Vec<Scalar> {
        samples.into_iter().map(|x| self.predict_label(x)).collect()
    }

    /// The support vectors lowered to a row matrix (`n_sv × dim`), the
    /// shape the blocked SMSV kernels consume: one `smsv` against it yields
    /// `dot(SV_s, x)` for every support vector at once.
    ///
    /// Returns `None` for models with no support vectors (their decision
    /// function is the constant bias).
    pub fn support_matrix(&self, format: Format) -> Option<AnyMatrix> {
        let dim = self.support_vectors.first()?.dim();
        let mut t = TripletMatrix::with_capacity(
            self.support_vectors.len(),
            dim,
            self.support_vectors.iter().map(SparseVec::nnz).sum(),
        );
        for (i, sv) in self.support_vectors.iter().enumerate() {
            for (j, v) in sv.iter() {
                t.push(i, j, v);
            }
        }
        Some(AnyMatrix::from_triplets(format, &t.compact()))
    }

    /// Decision values for a batch of samples, routed through the blocked
    /// SMSV engine: queries are processed in chunks of up to
    /// [`MAX_SMSV_BLOCK`], each chunk amortising one sweep of the support-
    /// vector matrix across all of its vectors. The caller holds the
    /// [`PredictWorkspace`]; in steady state (same model, stable batch
    /// sizes) no allocation happens beyond the returned `Vec`.
    ///
    /// Results are bit-identical to [`SvmModel::decision_function`] on each
    /// sample individually: the blocked kernels accumulate each product in
    /// the same per-row order regardless of how requests are batched.
    pub fn predict_batch(&self, xs: &[SparseVec], ws: &mut PredictWorkspace) -> Vec<Scalar> {
        let matrix = ws.matrix.take().filter(|_| ws.cached_for == Some(self.fingerprint()));
        let matrix = match matrix {
            Some(m) => m,
            None => {
                ws.cached_for = Some(self.fingerprint());
                match self.support_matrix(PredictWorkspace::CACHE_FORMAT) {
                    Some(m) => m,
                    None => return vec![self.bias; xs.len()],
                }
            }
        };
        let out = self.predict_batch_with(&matrix, xs, ws);
        ws.matrix = Some(matrix);
        out
    }

    /// [`SvmModel::predict_batch`] against a caller-provided support-vector
    /// row matrix (as built by [`SvmModel::support_matrix`], possibly
    /// re-formatted by a scheduler or wrapped for telemetry). Only the
    /// workspace scratch buffers are used, never its cached matrix.
    ///
    /// # Panics
    /// Panics if `sv_rows` does not have one row per support vector.
    pub fn predict_batch_with<M: MatrixFormat>(
        &self,
        sv_rows: &M,
        xs: &[SparseVec],
        ws: &mut PredictWorkspace,
    ) -> Vec<Scalar> {
        let nsv = self.support_vectors.len();
        if nsv == 0 {
            return vec![self.bias; xs.len()];
        }
        assert_eq!(sv_rows.rows(), nsv, "support matrix row count mismatch");
        let mut out = Vec::with_capacity(xs.len());
        for chunk in xs.chunks(MAX_SMSV_BLOCK) {
            let need = chunk.len() * nsv;
            if ws.dots.len() < need {
                ws.dots.resize(need, 0.0);
            }
            sv_rows.smsv_block(chunk, &mut ws.dots[..need], &mut ws.smsv_ws);
            for (b, x) in chunk.iter().enumerate() {
                let dots = &mut ws.dots[b * nsv..(b + 1) * nsv];
                self.kernel.apply_row(dots, &self.sv_norms_sq, x.norm_sq());
                let mut acc = self.bias;
                for (&d, &coef) in dots.iter().zip(&self.coefficients) {
                    acc += coef * d;
                }
                out.push(acc);
            }
        }
        out
    }

    /// A cheap identity for workspace cache validation: SV count, dimension
    /// and the bit pattern of the first coefficient. Collisions only matter
    /// when one workspace is reused across *different* models of identical
    /// shape — documented misuse of [`PredictWorkspace`].
    fn fingerprint(&self) -> (usize, usize, u64) {
        (
            self.support_vectors.len(),
            self.support_vectors.first().map_or(0, SparseVec::dim),
            self.coefficients.first().map_or(0, |c| c.to_bits()),
        )
    }
}

/// Caller-held scratch for [`SvmModel::predict_batch`]: the lowered
/// support-vector matrix (built once per model, cached), the block of dot
/// products, and the SMSV scatter workspace. Reuse one workspace per model
/// per thread; it is cheap to construct but expensive to warm.
#[derive(Debug, Default)]
pub struct PredictWorkspace {
    matrix: Option<AnyMatrix>,
    cached_for: Option<(usize, usize, u64)>,
    dots: Vec<Scalar>,
    smsv_ws: Vec<Scalar>,
}

impl PredictWorkspace {
    /// Format the cached support matrix is materialised in. CSR has a true
    /// blocked kernel and tolerates any sparsity pattern, making it the
    /// safe default; callers wanting a scheduled format use
    /// [`SvmModel::predict_batch_with`].
    pub const CACHE_FORMAT: Format = Format::Csr;

    /// A fresh, cold workspace.
    pub fn new() -> Self {
        Self::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(dim: usize, at: usize) -> SparseVec {
        SparseVec::new(dim, vec![at], vec![1.0])
    }

    #[test]
    fn linear_decision_function() {
        // One positive SV at e0 with coef +2, one negative at e1 with coef -2,
        // zero bias: f(x) = 2 x0 - 2 x1.
        let model =
            SvmModel::new(KernelKind::Linear, vec![unit(2, 0), unit(2, 1)], vec![2.0, -2.0], 0.0);
        assert_eq!(model.decision_function(&unit(2, 0)), 2.0);
        assert_eq!(model.decision_function(&unit(2, 1)), -2.0);
        assert_eq!(model.predict_label(&unit(2, 0)), 1.0);
        assert_eq!(model.predict_label(&unit(2, 1)), -1.0);
    }

    #[test]
    fn bias_shifts_decisions() {
        let model = SvmModel::new(KernelKind::Linear, vec![unit(2, 0)], vec![1.0], -0.5);
        assert_eq!(model.decision_function(&SparseVec::zeros(2)), -0.5);
        assert_eq!(model.predict_label(&SparseVec::zeros(2)), -1.0);
    }

    #[test]
    fn gaussian_uses_cached_norms() {
        let model =
            SvmModel::new(KernelKind::Gaussian { gamma: 1.0 }, vec![unit(3, 0)], vec![1.0], 0.0);
        // K of the SV with itself is exactly 1.
        assert!((model.decision_function(&unit(3, 0)) - 1.0).abs() < 1e-12);
        // Distant point has tiny kernel value.
        let far = SparseVec::new(3, vec![2], vec![10.0]);
        assert!(model.decision_function(&far) < 1e-10);
    }

    #[test]
    fn predict_labels_maps_each_sample() {
        let model = SvmModel::new(KernelKind::Linear, vec![unit(2, 0)], vec![1.0], 0.0);
        let xs = [unit(2, 0), unit(2, 1)];
        assert_eq!(model.predict_labels(xs.iter()), vec![1.0, 1.0]); // zero ties to +1
    }

    /// A model with irregular support vectors exercising merge/scatter dot
    /// products, plus a query set larger than one SMSV block.
    fn wide_model(kernel: KernelKind) -> (SvmModel, Vec<SparseVec>) {
        let dim = 13;
        let svs: Vec<SparseVec> = (0..9)
            .map(|s| {
                let idx: Vec<usize> = (0..dim).filter(|j| (j + s) % 3 != 0).collect();
                let vals: Vec<Scalar> =
                    idx.iter().map(|&j| ((s * 31 + j * 7) % 11) as Scalar * 0.3 - 1.1).collect();
                SparseVec::new(dim, idx, vals)
            })
            .collect();
        let coefs: Vec<Scalar> = (0..9).map(|s| (s as Scalar - 4.0) * 0.25).collect();
        let model = SvmModel::new(kernel, svs, coefs, 0.125);
        let xs: Vec<SparseVec> = (0..MAX_SMSV_BLOCK + 5)
            .map(|q| {
                let idx: Vec<usize> = (0..dim).filter(|j| (j * 5 + q) % 4 != 1).collect();
                let vals: Vec<Scalar> =
                    idx.iter().map(|&j| ((q * 13 + j) % 7) as Scalar * 0.5 - 1.5).collect();
                SparseVec::new(dim, idx, vals)
            })
            .collect();
        (model, xs)
    }

    #[test]
    fn predict_batch_is_bit_identical_to_per_vector_decisions() {
        for kernel in [KernelKind::Linear, KernelKind::Gaussian { gamma: 0.7 }] {
            let (model, xs) = wide_model(kernel);
            let mut ws = PredictWorkspace::new();
            let batched = model.predict_batch(&xs, &mut ws);
            assert_eq!(batched.len(), xs.len());
            for (x, &got) in xs.iter().zip(&batched) {
                let want = model.decision_function(x);
                assert_eq!(
                    got.to_bits(),
                    want.to_bits(),
                    "{}: batched {got} != per-vector {want}",
                    kernel.name()
                );
            }
            // Batch composition does not change individual results.
            let singles: Vec<Scalar> = xs
                .iter()
                .map(|x| model.predict_batch(std::slice::from_ref(x), &mut ws)[0])
                .collect();
            assert_eq!(singles, batched);
        }
    }

    #[test]
    fn predict_batch_with_matches_cached_path_across_formats() {
        let (model, xs) = wide_model(KernelKind::Gaussian { gamma: 0.4 });
        let mut ws = PredictWorkspace::new();
        let want = model.predict_batch(&xs, &mut ws);
        for fmt in [Format::Csr, Format::Den, Format::Ell, Format::Coo] {
            let m = model.support_matrix(fmt).unwrap();
            let got = model.predict_batch_with(&m, &xs, &mut ws);
            // Kernel traversal order per product is row-major in every
            // format, so values agree to the last bit.
            assert_eq!(got, want, "{fmt:?}");
        }
    }

    #[test]
    fn predict_batch_on_empty_model_is_the_bias() {
        let model = SvmModel::new(KernelKind::Linear, vec![], vec![], 0.75);
        let mut ws = PredictWorkspace::new();
        assert_eq!(model.predict_batch(&[unit(4, 1), unit(4, 2)], &mut ws), vec![0.75, 0.75]);
        assert!(model.support_matrix(Format::Csr).is_none());
        assert_eq!(model.predict_batch(&[], &mut ws), Vec::<Scalar>::new());
    }

    #[test]
    fn workspace_rebuilds_when_the_model_changes() {
        let (model_a, xs) = wide_model(KernelKind::Linear);
        let model_b = SvmModel::new(KernelKind::Linear, vec![unit(13, 0)], vec![2.0], 0.0);
        let mut ws = PredictWorkspace::new();
        let a1 = model_a.predict_batch(&xs, &mut ws);
        let b = model_b.predict_batch(&xs, &mut ws); // different model, same workspace
        let a2 = model_a.predict_batch(&xs, &mut ws);
        assert_eq!(a1, a2);
        assert_eq!(b[0], 2.0 * xs[0].get(0));
    }

    #[test]
    fn accessors() {
        let model = SvmModel::new(KernelKind::Linear, vec![unit(2, 0)], vec![1.5], 0.25);
        assert_eq!(model.n_support_vectors(), 1);
        assert_eq!(model.coefficients(), &[1.5]);
        assert_eq!(model.bias(), 0.25);
        assert_eq!(model.kernel(), KernelKind::Linear);
        assert_eq!(model.support_vectors().len(), 1);
    }
}
