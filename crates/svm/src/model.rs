//! Trained SVM model: support vectors, dual coefficients and bias.

use crate::KernelKind;
use dls_sparse::{Scalar, SparseVec};

/// A trained binary SVM.
///
/// Stores only the support vectors (rows with `α_i > 0`), their dual
/// coefficients `α_i y_i`, and the bias, so prediction is
/// `sign(Σ_s coef_s · K(SV_s, x) + b)`.
#[derive(Debug, Clone)]
pub struct SvmModel {
    kernel: KernelKind,
    support_vectors: Vec<SparseVec>,
    /// `α_i y_i` per support vector.
    coefficients: Vec<Scalar>,
    /// Cached squared norms of the support vectors (for Gaussian kernels).
    sv_norms_sq: Vec<Scalar>,
    bias: Scalar,
}

impl SvmModel {
    /// Assembles a model from training outputs.
    ///
    /// # Panics
    /// Panics if the arrays differ in length.
    pub fn new(
        kernel: KernelKind,
        support_vectors: Vec<SparseVec>,
        coefficients: Vec<Scalar>,
        bias: Scalar,
    ) -> Self {
        assert_eq!(support_vectors.len(), coefficients.len(), "SV/coef mismatch");
        let sv_norms_sq = support_vectors.iter().map(SparseVec::norm_sq).collect();
        Self { kernel, support_vectors, coefficients, sv_norms_sq, bias }
    }

    /// The kernel the model was trained with.
    #[inline]
    pub fn kernel(&self) -> KernelKind {
        self.kernel
    }

    /// Number of support vectors.
    #[inline]
    pub fn n_support_vectors(&self) -> usize {
        self.support_vectors.len()
    }

    /// The support vectors.
    #[inline]
    pub fn support_vectors(&self) -> &[SparseVec] {
        &self.support_vectors
    }

    /// The dual coefficients `α_i y_i`.
    #[inline]
    pub fn coefficients(&self) -> &[Scalar] {
        &self.coefficients
    }

    /// The bias term `b`.
    #[inline]
    pub fn bias(&self) -> Scalar {
        self.bias
    }

    /// Signed decision value `Σ coef_s K(SV_s, x) + b`.
    pub fn decision_function(&self, x: &SparseVec) -> Scalar {
        let x_norm_sq = x.norm_sq();
        let mut acc = self.bias;
        for ((sv, &coef), &sv_norm) in
            self.support_vectors.iter().zip(&self.coefficients).zip(&self.sv_norms_sq)
        {
            let dot = sv.dot(x);
            acc += coef * self.kernel.apply(dot, sv_norm, x_norm_sq);
        }
        acc
    }

    /// Predicted label: `+1.0` or `-1.0`. Zero decision values map to `+1`.
    pub fn predict_label(&self, x: &SparseVec) -> Scalar {
        if self.decision_function(x) >= 0.0 {
            1.0
        } else {
            -1.0
        }
    }

    /// Predicts labels for many samples.
    pub fn predict_batch<'a>(
        &self,
        samples: impl IntoIterator<Item = &'a SparseVec>,
    ) -> Vec<Scalar> {
        samples.into_iter().map(|x| self.predict_label(x)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(dim: usize, at: usize) -> SparseVec {
        SparseVec::new(dim, vec![at], vec![1.0])
    }

    #[test]
    fn linear_decision_function() {
        // One positive SV at e0 with coef +2, one negative at e1 with coef -2,
        // zero bias: f(x) = 2 x0 - 2 x1.
        let model =
            SvmModel::new(KernelKind::Linear, vec![unit(2, 0), unit(2, 1)], vec![2.0, -2.0], 0.0);
        assert_eq!(model.decision_function(&unit(2, 0)), 2.0);
        assert_eq!(model.decision_function(&unit(2, 1)), -2.0);
        assert_eq!(model.predict_label(&unit(2, 0)), 1.0);
        assert_eq!(model.predict_label(&unit(2, 1)), -1.0);
    }

    #[test]
    fn bias_shifts_decisions() {
        let model = SvmModel::new(KernelKind::Linear, vec![unit(2, 0)], vec![1.0], -0.5);
        assert_eq!(model.decision_function(&SparseVec::zeros(2)), -0.5);
        assert_eq!(model.predict_label(&SparseVec::zeros(2)), -1.0);
    }

    #[test]
    fn gaussian_uses_cached_norms() {
        let model =
            SvmModel::new(KernelKind::Gaussian { gamma: 1.0 }, vec![unit(3, 0)], vec![1.0], 0.0);
        // K of the SV with itself is exactly 1.
        assert!((model.decision_function(&unit(3, 0)) - 1.0).abs() < 1e-12);
        // Distant point has tiny kernel value.
        let far = SparseVec::new(3, vec![2], vec![10.0]);
        assert!(model.decision_function(&far) < 1e-10);
    }

    #[test]
    fn predict_batch_maps_each_sample() {
        let model = SvmModel::new(KernelKind::Linear, vec![unit(2, 0)], vec![1.0], 0.0);
        let xs = [unit(2, 0), unit(2, 1)];
        assert_eq!(model.predict_batch(xs.iter()), vec![1.0, 1.0]); // zero ties to +1
    }

    #[test]
    fn accessors() {
        let model = SvmModel::new(KernelKind::Linear, vec![unit(2, 0)], vec![1.5], 0.25);
        assert_eq!(model.n_support_vectors(), 1);
        assert_eq!(model.coefficients(), &[1.5]);
        assert_eq!(model.bias(), 0.25);
        assert_eq!(model.kernel(), KernelKind::Linear);
        assert_eq!(model.support_vectors().len(), 1);
    }
}
