//! Multi-class SVMs built from independent binary machines (paper §II-A1:
//! "multi-class SVMs are generally implemented as several independent
//! binary-class SVMs" and "can be easily trained in parallel").

// Machine loops index votes and class tables together.
#![allow(clippy::needless_range_loop)]

use crate::{SmoParams, SvmError, SvmModel};
use dls_sparse::{MatrixFormat, Scalar, SparseVec, TripletMatrix};

/// Decomposition strategy for k-class problems.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MulticlassStrategy {
    /// One binary machine per class against the rest (k machines).
    #[default]
    OneVsRest,
    /// One binary machine per class pair (k·(k−1)/2 machines), majority vote.
    OneVsOne,
}

/// A trained multi-class model.
#[derive(Debug)]
pub struct MulticlassModel {
    strategy: MulticlassStrategy,
    /// Distinct class labels in ascending order.
    classes: Vec<i64>,
    /// For OvR: `machines[c]` separates class c from the rest.
    /// For OvO: machine for pair `(classes[a], classes[b])`, a < b, flattened.
    machines: Vec<SvmModel>,
    /// For OvO: the (a, b) class-index pair per machine.
    pairs: Vec<(usize, usize)>,
}

impl MulticlassModel {
    /// Trains a k-class model. `labels[i]` is the integer class of row `i`.
    pub fn train<M: MatrixFormat + Sync>(
        x: &M,
        labels: &[i64],
        params: &SmoParams,
        strategy: MulticlassStrategy,
    ) -> Result<Self, SvmError> {
        if labels.len() != x.rows() {
            return Err(SvmError::LabelLengthMismatch { rows: x.rows(), labels: labels.len() });
        }
        let mut classes: Vec<i64> = labels.to_vec();
        classes.sort_unstable();
        classes.dedup();
        if classes.len() < 2 {
            return Err(SvmError::SingleClass);
        }

        let mut machines = Vec::new();
        let mut pairs = Vec::new();
        match strategy {
            MulticlassStrategy::OneVsRest => {
                for &c in &classes {
                    let y: Vec<Scalar> =
                        labels.iter().map(|&l| if l == c { 1.0 } else { -1.0 }).collect();
                    machines.push(crate::train(x, &y, params)?);
                }
            }
            MulticlassStrategy::OneVsOne => {
                for a in 0..classes.len() {
                    for b in a + 1..classes.len() {
                        let (ca, cb) = (classes[a], classes[b]);
                        // Sub-matrix containing only classes a and b.
                        let keep: Vec<usize> = labels
                            .iter()
                            .enumerate()
                            .filter(|(_, &l)| l == ca || l == cb)
                            .map(|(i, _)| i)
                            .collect();
                        let mut t = TripletMatrix::new(keep.len(), x.cols());
                        let mut y = Vec::with_capacity(keep.len());
                        for (new_i, &old_i) in keep.iter().enumerate() {
                            let row = x.row_sparse(old_i);
                            for (j, v) in row.iter() {
                                t.push(new_i, j, v);
                            }
                            y.push(if labels[old_i] == ca { 1.0 } else { -1.0 });
                        }
                        let sub = dls_sparse::CsrMatrix::from_triplets(&t.compact());
                        machines.push(crate::train(&sub, &y, params)?);
                        pairs.push((a, b));
                    }
                }
            }
        }
        Ok(Self { strategy, classes, machines, pairs })
    }

    /// The distinct class labels.
    #[inline]
    pub fn classes(&self) -> &[i64] {
        &self.classes
    }

    /// Number of underlying binary machines.
    #[inline]
    pub fn n_machines(&self) -> usize {
        self.machines.len()
    }

    /// Predicts the class of one sample.
    pub fn predict(&self, x: &SparseVec) -> i64 {
        match self.strategy {
            MulticlassStrategy::OneVsRest => {
                // Highest decision value wins.
                let mut best = (Scalar::NEG_INFINITY, 0usize);
                for (c, m) in self.machines.iter().enumerate() {
                    let d = m.decision_function(x);
                    if d > best.0 {
                        best = (d, c);
                    }
                }
                self.classes[best.1]
            }
            MulticlassStrategy::OneVsOne => {
                let mut votes = vec![0usize; self.classes.len()];
                for (m, &(a, b)) in self.machines.iter().zip(&self.pairs) {
                    if m.predict_label(x) > 0.0 {
                        votes[a] += 1;
                    } else {
                        votes[b] += 1;
                    }
                }
                let winner =
                    votes.iter().enumerate().max_by_key(|(_, &v)| v).map(|(i, _)| i).unwrap_or(0);
                self.classes[winner]
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::KernelKind;
    use dls_sparse::CsrMatrix;

    /// Three clusters on a line: class 0 around −5, class 1 around 0,
    /// class 2 around +5.
    fn three_clusters() -> (CsrMatrix, Vec<i64>) {
        let centers = [-5.0, 0.0, 5.0];
        let mut t = TripletMatrix::new(12, 1);
        let mut labels = Vec::new();
        for (c, &center) in centers.iter().enumerate() {
            for k in 0..4 {
                let i = c * 4 + k;
                let v = center + (k as f64 - 1.5) * 0.2;
                if v != 0.0 {
                    t.push(i, 0, v);
                }
                labels.push(c as i64);
            }
        }
        (CsrMatrix::from_triplets(&t.compact()), labels)
    }

    fn params() -> SmoParams {
        SmoParams { kernel: KernelKind::Gaussian { gamma: 0.5 }, c: 10.0, ..Default::default() }
    }

    #[test]
    fn one_vs_rest_classifies_clusters() {
        let (x, labels) = three_clusters();
        let m =
            MulticlassModel::train(&x, &labels, &params(), MulticlassStrategy::OneVsRest).unwrap();
        assert_eq!(m.n_machines(), 3);
        assert_eq!(m.classes(), &[0, 1, 2]);
        for i in 0..x.rows() {
            assert_eq!(m.predict(&x.row_sparse(i)), labels[i], "sample {i}");
        }
    }

    #[test]
    fn one_vs_one_classifies_clusters() {
        let (x, labels) = three_clusters();
        let m =
            MulticlassModel::train(&x, &labels, &params(), MulticlassStrategy::OneVsOne).unwrap();
        assert_eq!(m.n_machines(), 3); // 3 choose 2
        for i in 0..x.rows() {
            assert_eq!(m.predict(&x.row_sparse(i)), labels[i], "sample {i}");
        }
    }

    #[test]
    fn rejects_single_class() {
        let (x, _) = three_clusters();
        let err = MulticlassModel::train(&x, &[7; 12], &params(), Default::default()).unwrap_err();
        assert_eq!(err, SvmError::SingleClass);
    }

    #[test]
    fn rejects_label_mismatch() {
        let (x, _) = three_clusters();
        let err = MulticlassModel::train(&x, &[0, 1], &params(), Default::default()).unwrap_err();
        assert!(matches!(err, SvmError::LabelLengthMismatch { .. }));
    }
}
