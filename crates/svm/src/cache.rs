//! LRU cache for kernel rows.
//!
//! SMO revisits the same working-set indices many times (points near the
//! margin get selected repeatedly), so caching whole kernel rows — the
//! technique Joachims introduced for SVMlight and LIBSVM adopted — removes
//! a large fraction of the SMSV work. The cache is bounded by a byte budget
//! and evicts least-recently-used rows.

use dls_sparse::Scalar;
use std::collections::HashMap;

/// A bounded LRU cache mapping sample index → kernel row.
#[derive(Debug)]
pub struct KernelCache {
    /// Maximum number of cached rows (derived from the byte budget).
    capacity: usize,
    map: HashMap<usize, Vec<Scalar>>,
    /// Access order, most recent last.
    order: Vec<usize>,
    hits: u64,
    misses: u64,
}

impl KernelCache {
    /// Creates a cache that holds at most `budget_bytes` worth of rows of
    /// length `row_len`. Always admits at least two rows (SMO needs the
    /// `high` and `low` rows of the current iteration simultaneously).
    pub fn with_budget(budget_bytes: usize, row_len: usize) -> Self {
        let row_bytes = (row_len * std::mem::size_of::<Scalar>()).max(1);
        let capacity = (budget_bytes / row_bytes).max(2);
        Self {
            capacity,
            map: HashMap::with_capacity(capacity.min(1024)),
            order: Vec::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Number of rows the cache can hold.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of rows currently resident.
    #[inline]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no rows are resident.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Cache hits so far.
    #[inline]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses so far.
    #[inline]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Fetches the row for `index`, computing and inserting it on a miss.
    pub fn get_or_insert_with(
        &mut self,
        index: usize,
        compute: impl FnOnce() -> Vec<Scalar>,
    ) -> &[Scalar] {
        if self.map.contains_key(&index) {
            self.hits += 1;
            self.touch(index);
        } else {
            self.misses += 1;
            if self.map.len() >= self.capacity {
                self.evict_lru();
            }
            self.map.insert(index, compute());
            self.order.push(index);
        }
        self.map.get(&index).expect("row just ensured").as_slice()
    }

    /// Fetches the row for `index` if resident, counting a hit (and
    /// refreshing recency) or a miss. The caller computes and [`insert`]s
    /// the row after a miss — splitting the miss path out of
    /// [`get_or_insert_with`] lets it fill several rows per miss with one
    /// blocked SMSV sweep.
    ///
    /// [`insert`]: KernelCache::insert
    /// [`get_or_insert_with`]: KernelCache::get_or_insert_with
    pub fn get(&mut self, index: usize) -> Option<&[Scalar]> {
        if self.map.contains_key(&index) {
            self.hits += 1;
            self.touch(index);
            self.map.get(&index).map(Vec::as_slice)
        } else {
            self.misses += 1;
            None
        }
    }

    /// True when `index` is resident. Does not count toward hit/miss
    /// statistics and does not refresh recency.
    #[inline]
    pub fn contains(&self, index: usize) -> bool {
        self.map.contains_key(&index)
    }

    /// Inserts (or replaces) the row for `index`, evicting the LRU row if
    /// at capacity. The inserted row becomes the most recently used.
    pub fn insert(&mut self, index: usize, row: Vec<Scalar>) {
        if self.map.contains_key(&index) {
            self.touch(index);
        } else {
            if self.map.len() >= self.capacity {
                self.evict_lru();
            }
            self.order.push(index);
        }
        self.map.insert(index, row);
    }

    /// Drops every cached row (used when α changes invalidate nothing —
    /// kernel rows depend only on X — so this exists for tests and resets).
    pub fn clear(&mut self) {
        self.map.clear();
        self.order.clear();
    }

    fn touch(&mut self, index: usize) {
        if let Some(pos) = self.order.iter().position(|&i| i == index) {
            self.order.remove(pos);
        }
        self.order.push(index);
    }

    fn evict_lru(&mut self) {
        if !self.order.is_empty() {
            let victim = self.order.remove(0);
            self.map.remove(&victim);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn computes_on_miss_and_reuses_on_hit() {
        let mut c = KernelCache::with_budget(1024, 4);
        let mut computed = 0;
        let row = c.get_or_insert_with(7, || {
            computed += 1;
            vec![1.0; 4]
        });
        assert_eq!(row, &[1.0; 4]);
        let _ = c.get_or_insert_with(7, || {
            computed += 1;
            vec![2.0; 4]
        });
        assert_eq!(computed, 1);
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn evicts_least_recently_used() {
        // Budget for exactly 2 rows of 4 f64s = 64 bytes.
        let mut c = KernelCache::with_budget(64, 4);
        assert_eq!(c.capacity(), 2);
        c.get_or_insert_with(0, || vec![0.0; 4]);
        c.get_or_insert_with(1, || vec![1.0; 4]);
        // Touch 0 so 1 becomes LRU.
        c.get_or_insert_with(0, || unreachable!());
        c.get_or_insert_with(2, || vec![2.0; 4]);
        assert_eq!(c.len(), 2);
        // 1 was evicted: recomputation happens.
        let mut recomputed = false;
        c.get_or_insert_with(1, || {
            recomputed = true;
            vec![1.0; 4]
        });
        assert!(recomputed);
    }

    #[test]
    fn always_admits_two_rows() {
        let c = KernelCache::with_budget(0, 1_000_000);
        assert_eq!(c.capacity(), 2);
    }

    #[test]
    fn split_get_insert_matches_combined_path() {
        let mut c = KernelCache::with_budget(64, 4);
        assert!(c.get(5).is_none());
        assert_eq!(c.misses(), 1);
        c.insert(5, vec![5.0; 4]);
        assert_eq!(c.get(5).unwrap(), &[5.0; 4]);
        assert_eq!(c.hits(), 1);
        assert!(c.contains(5));
        assert!(!c.contains(6));
        // contains() leaves the statistics alone.
        assert_eq!((c.hits(), c.misses()), (1, 1));
        // Inserting past capacity evicts the LRU row: after touching 5,
        // 6 is least recent and gets evicted by the insert of 7.
        c.insert(6, vec![6.0; 4]);
        let _ = c.get(5);
        c.insert(7, vec![7.0; 4]);
        assert_eq!(c.len(), 2);
        assert!(!c.contains(6));
        assert!(c.contains(5) && c.contains(7));
    }

    #[test]
    fn clear_empties_cache() {
        let mut c = KernelCache::with_budget(1024, 2);
        c.get_or_insert_with(3, || vec![3.0; 2]);
        assert!(!c.is_empty());
        c.clear();
        assert!(c.is_empty());
    }
}
