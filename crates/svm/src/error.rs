//! SVM training errors.

use std::fmt;

/// Errors raised while setting up or running SMO training.
#[derive(Debug, Clone, PartialEq)]
pub enum SvmError {
    /// Label vector length differs from the number of samples.
    LabelLengthMismatch {
        /// Number of matrix rows.
        rows: usize,
        /// Number of labels supplied.
        labels: usize,
    },
    /// A label other than +1/-1 was supplied to the binary solver.
    NonBinaryLabel {
        /// Index of the offending sample.
        index: usize,
        /// The label value found.
        value: f64,
    },
    /// Training data contains only one class, so no separating problem exists.
    SingleClass,
    /// A hyperparameter is out of its valid range.
    InvalidParameter(String),
}

impl fmt::Display for SvmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SvmError::LabelLengthMismatch { rows, labels } => {
                write!(f, "matrix has {rows} rows but {labels} labels were supplied")
            }
            SvmError::NonBinaryLabel { index, value } => {
                write!(f, "label at index {index} is {value}, expected +1 or -1")
            }
            SvmError::SingleClass => write!(f, "training data contains a single class"),
            SvmError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
        }
    }
}

impl std::error::Error for SvmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = SvmError::LabelLengthMismatch { rows: 10, labels: 9 };
        assert!(e.to_string().contains("10 rows"));
        let e = SvmError::NonBinaryLabel { index: 3, value: 2.0 };
        assert!(e.to_string().contains("index 3"));
        assert!(SvmError::SingleClass.to_string().contains("single class"));
        assert!(SvmError::InvalidParameter("C".into()).to_string().contains('C'));
    }
}
