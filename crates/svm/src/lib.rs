#![warn(missing_docs)]

//! # dls-svm
//!
//! SMO-based Support Vector Machine training, generic over the storage
//! format of the data matrix (any [`dls_sparse::MatrixFormat`]).
//!
//! The solver implements Algorithm 1 of the paper: Sequential Minimal
//! Optimization with first-order (maximal-violating-pair) working-set
//! selection. Each iteration's bottleneck is two SMSV products — computing
//! the kernel rows of the two selected samples — which is exactly the
//! operation whose cost depends on the chosen data layout.

pub mod cache;
pub mod error;
pub mod kernel;
pub mod metrics;
pub mod model;
pub mod model_selection;
pub mod multiclass;
pub mod persist;
pub mod platt;
pub mod problem;
pub mod smo;
pub mod svr;

pub use cache::KernelCache;
pub use error::SvmError;
pub use kernel::KernelKind;
pub use metrics::{accuracy, confusion_binary};
pub use model::{PredictWorkspace, SvmModel};
pub use model_selection::{cross_validate, grid_search, GridPoint, GridSearchResult};
pub use multiclass::{MulticlassModel, MulticlassStrategy};
pub use persist::{read_model, write_model, ModelFormatError};
pub use platt::{PlattScaling, ProbabilisticModel};
pub use problem::SvmProblem;
pub use smo::{
    train, train_with_stats, SegmentReport, SmoParams, SmoState, SmoStats, WorkingSetSelection,
};
pub use svr::{train_svr, SvrParams, SvrStats};
