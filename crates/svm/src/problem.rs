//! Problem container: a data matrix plus a ±1 label per row.

use crate::SvmError;
use dls_sparse::{MatrixFormat, Scalar};

/// A validated binary-classification training problem.
///
/// Borrows the data matrix (any storage format) and owns the label vector.
#[derive(Debug)]
pub struct SvmProblem<'a, M: MatrixFormat> {
    matrix: &'a M,
    labels: Vec<Scalar>,
}

impl<'a, M: MatrixFormat> SvmProblem<'a, M> {
    /// Validates shapes and label values (`+1.0` / `-1.0`, both present).
    pub fn new(matrix: &'a M, labels: &[Scalar]) -> Result<Self, SvmError> {
        if labels.len() != matrix.rows() {
            return Err(SvmError::LabelLengthMismatch {
                rows: matrix.rows(),
                labels: labels.len(),
            });
        }
        let mut pos = false;
        let mut neg = false;
        for (i, &y) in labels.iter().enumerate() {
            if y == 1.0 {
                pos = true;
            } else if y == -1.0 {
                neg = true;
            } else {
                return Err(SvmError::NonBinaryLabel { index: i, value: y });
            }
        }
        if !(pos && neg) {
            return Err(SvmError::SingleClass);
        }
        Ok(Self { matrix, labels: labels.to_vec() })
    }

    /// The data matrix.
    #[inline]
    pub fn matrix(&self) -> &'a M {
        self.matrix
    }

    /// The label vector (±1 entries).
    #[inline]
    pub fn labels(&self) -> &[Scalar] {
        &self.labels
    }

    /// Number of training samples.
    #[inline]
    pub fn n_samples(&self) -> usize {
        self.labels.len()
    }

    /// Number of features.
    #[inline]
    pub fn n_features(&self) -> usize {
        self.matrix.cols()
    }

    /// Count of positive labels.
    pub fn n_positive(&self) -> usize {
        self.labels.iter().filter(|&&y| y == 1.0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dls_sparse::{CsrMatrix, TripletMatrix};

    fn matrix(rows: usize) -> CsrMatrix {
        let mut t = TripletMatrix::new(rows, 2);
        for i in 0..rows {
            t.push(i, i % 2, 1.0);
        }
        CsrMatrix::from_triplets(&t.compact())
    }

    #[test]
    fn accepts_valid_problem() {
        let m = matrix(4);
        let p = SvmProblem::new(&m, &[1.0, -1.0, 1.0, -1.0]).unwrap();
        assert_eq!(p.n_samples(), 4);
        assert_eq!(p.n_features(), 2);
        assert_eq!(p.n_positive(), 2);
    }

    #[test]
    fn rejects_length_mismatch() {
        let m = matrix(4);
        let e = SvmProblem::new(&m, &[1.0, -1.0]).unwrap_err();
        assert!(matches!(e, SvmError::LabelLengthMismatch { rows: 4, labels: 2 }));
    }

    #[test]
    fn rejects_non_binary_labels() {
        let m = matrix(2);
        let e = SvmProblem::new(&m, &[1.0, 0.5]).unwrap_err();
        assert!(matches!(e, SvmError::NonBinaryLabel { index: 1, .. }));
    }

    #[test]
    fn rejects_single_class() {
        let m = matrix(3);
        let e = SvmProblem::new(&m, &[1.0, 1.0, 1.0]).unwrap_err();
        assert_eq!(e, SvmError::SingleClass);
    }
}
