//! Sequential Minimal Optimization (paper Algorithm 1, equations 3–6).
//!
//! Each iteration selects the maximal-violating pair `(high, low)`, solves
//! the two-variable QP analytically, and updates the optimality vector
//! `f_i = Σ_j α_j y_j K(X_i, X_j) − y_i`. The two kernel rows needed per
//! iteration are produced by two SMSV products — `X · X_high` and
//! `X · X_low` — which is the layout-sensitive bottleneck the scheduler in
//! `dls-core` optimises.
//!
//! Working-set selection is first-order by default (Keerthi's maximal
//! violating pair); the second-order rule of Fan, Chen & Lin (the paper's
//! reference \[29\], used inside LIBSVM) is available as an option.

// The Keerthi index-set conditions are written exactly as the paper/LIBSVM
// state them (clippy would "simplify" them into unrecognisable forms), the
// solver loops index several parallel arrays at once, and parameter checks
// use `!(x > 0)` deliberately so NaN fails validation.
#![allow(clippy::nonminimal_bool, clippy::needless_range_loop, clippy::neg_cmp_op_on_partial_ord)]

use crate::{KernelCache, KernelKind, SvmError, SvmModel, SvmProblem};
use dls_sparse::parallel::SmsvPool;
use dls_sparse::{MatrixFormat, RowScratch, Scalar, SparseVec};

/// α within this distance of a bound is treated as exactly at the bound.
const ALPHA_EPS: Scalar = 1e-12;

/// Working-set selection rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WorkingSetSelection {
    /// Maximal violating pair (first-order), as in Algorithm 1.
    #[default]
    FirstOrder,
    /// Second-order selection of the `low` index (Fan, Chen & Lin 2005).
    SecondOrder,
}

/// Hyperparameters for SMO training.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SmoParams {
    /// Regularization constant `C` balancing generality and accuracy.
    pub c: Scalar,
    /// Kernel function (Table I).
    pub kernel: KernelKind,
    /// Convergence tolerance τ: stop once `b_low ≤ b_high + 2τ`.
    pub tolerance: Scalar,
    /// Hard iteration cap.
    pub max_iterations: usize,
    /// Byte budget for the kernel-row LRU cache (0 disables caching).
    pub cache_bytes: usize,
    /// Working-set selection rule.
    pub selection: WorkingSetSelection,
    /// Worker threads for the SMSV kernel rows (1 = serial). Mirrors the
    /// paper's OpenMP parallelisation of the SMO bottleneck.
    pub threads: usize,
    /// Shrinking heuristic (Joachims' SVMlight technique, the paper's
    /// related-work reference \[2\]): bound variables that cannot join any
    /// violating pair are dropped from the active set, so kernel rows are
    /// only evaluated on active samples. On apparent convergence the full
    /// optimality vector is reconstructed and the final gap is verified on
    /// all samples, so the returned model is unaffected.
    pub shrinking: bool,
    /// Class-weight multiplier for the positive class (LIBSVM's `-w1`):
    /// positive samples use box constraint `C · positive_weight`, negatives
    /// plain `C`. Values > 1 push the boundary toward the negative class —
    /// the standard handle for imbalanced data.
    pub positive_weight: Scalar,
    /// Kernel rows prefetched per cache miss with one blocked SMSV sweep
    /// (`smsv_block`): the missed row plus up to `block_size − 1` likely-
    /// next working-set candidates. `1` reproduces the classic one-row-per-
    /// miss behaviour exactly. Ignored when `threads > 1` (the worker pool
    /// splits single rows instead).
    pub block_size: usize,
}

impl Default for SmoParams {
    fn default() -> Self {
        Self {
            c: 1.0,
            kernel: KernelKind::default(),
            tolerance: 1e-3,
            max_iterations: 100_000,
            cache_bytes: 64 << 20,
            selection: WorkingSetSelection::FirstOrder,
            threads: 1,
            shrinking: false,
            positive_weight: 1.0,
            block_size: 1,
        }
    }
}

impl SmoParams {
    /// Validates the hyperparameters.
    pub fn validate(&self) -> Result<(), SvmError> {
        if !(self.c > 0.0) {
            return Err(SvmError::InvalidParameter(format!("C must be > 0, got {}", self.c)));
        }
        if !(self.tolerance > 0.0) {
            return Err(SvmError::InvalidParameter(format!(
                "tolerance must be > 0, got {}",
                self.tolerance
            )));
        }
        if self.max_iterations == 0 {
            return Err(SvmError::InvalidParameter("max_iterations must be > 0".into()));
        }
        if self.threads == 0 {
            return Err(SvmError::InvalidParameter("threads must be >= 1".into()));
        }
        if !(self.positive_weight > 0.0) {
            return Err(SvmError::InvalidParameter(format!(
                "positive_weight must be > 0, got {}",
                self.positive_weight
            )));
        }
        if self.block_size == 0 {
            return Err(SvmError::InvalidParameter("block_size must be >= 1".into()));
        }
        Ok(())
    }
}

/// Counters and convergence info from one training run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SmoStats {
    /// SMO iterations executed.
    pub iterations: usize,
    /// Whether the duality-gap criterion was met.
    pub converged: bool,
    /// Final `b_low − b_high` gap.
    pub final_gap: Scalar,
    /// Support vectors in the returned model.
    pub n_support_vectors: usize,
    /// SMSV products actually executed (cache misses).
    pub smsv_count: u64,
    /// Kernel rows served from cache.
    pub cache_hits: u64,
}

/// Trains a binary SVM, returning only the model.
pub fn train<M: MatrixFormat + Sync>(
    x: &M,
    y: &[Scalar],
    params: &SmoParams,
) -> Result<SvmModel, SvmError> {
    train_with_stats(x, y, params).map(|(m, _)| m)
}

/// Trains a binary SVM, returning the model plus solver statistics.
pub fn train_with_stats<M: MatrixFormat + Sync>(
    x: &M,
    y: &[Scalar],
    params: &SmoParams,
) -> Result<(SvmModel, SmoStats), SvmError> {
    let mut state = SmoState::new(x, y, params)?;
    state.run_segment(x, params, usize::MAX);
    Ok(state.finalize(x, params))
}

/// What one [`SmoState::run_segment`] call did.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SegmentReport {
    /// Iterations executed in this segment.
    pub iterations: usize,
    /// SMSV products executed in this segment (cache misses only).
    pub smsv_count: u64,
    /// Whether the duality-gap criterion was met during the segment.
    pub converged: bool,
    /// Whether the solver stalled on a numerically degenerate pair.
    pub stalled: bool,
    /// `b_low − b_high` after the segment's last selection pass.
    pub gap: Scalar,
}

/// Resumable SMO solver state.
///
/// The training loop is exposed in segments so a caller can interleave it
/// with other work — most importantly the reactive layout scheduler in
/// `dls-core`, which re-converts the data matrix to a different storage
/// format *between* segments. Everything in the state — `α`, the
/// optimality vector `f`, row norms and the kernel-row cache — depends
/// only on the matrix *content*, never its layout, so the same state
/// continues seamlessly across a format change.
pub struct SmoState {
    y: Vec<Scalar>,
    alpha: Vec<Scalar>,
    f: Vec<Scalar>,
    norms_sq: Vec<Scalar>,
    active: Vec<usize>,
    do_shrink: bool,
    shrink_every: usize,
    iterations: usize,
    smsv_count: u64,
    cache: KernelCache,
    converged: bool,
    stalled: bool,
    gap: Scalar,
    /// Kernel row of the current `high` index, reused every iteration.
    k_high: Vec<Scalar>,
    /// Kernel row of the current `low` index, reused every iteration.
    k_low: Vec<Scalar>,
    /// Indices written into `k_high`/`k_low` by the last *partial* fill;
    /// zeroing exactly these restores the buffer without an O(n) sweep.
    touched_high: Vec<usize>,
    touched_low: Vec<usize>,
    /// Whether `k_high`/`k_low` last held a full row (every entry valid).
    k_high_full: bool,
    k_low_full: bool,
    ws: SmoWorkspace,
}

/// Buffers reused across iterations and segments so the steady-state SMO
/// loop (all working rows cached) performs no heap allocation at all.
struct SmoWorkspace {
    /// Row-view scratch for the working-set row being fetched.
    scratch_a: RowScratch,
    /// Row-view scratch for the inner row of partial kernel products.
    scratch_b: RowScratch,
    /// Dense scatter workspace shared by every `smsv_view`/`smsv_block`.
    smsv_ws: Vec<Scalar>,
    /// Row indices gathered for one blocked prefetch.
    block_rows: Vec<usize>,
    /// Owned right-hand sides handed to `smsv_block`.
    block_vecs: Vec<SparseVec>,
    /// Vector-major output of `smsv_block` (`b × n`).
    block_out: Vec<Scalar>,
    /// Dense mirror of `active`, maintained incrementally by the shrink
    /// pass so `reconstruct_f` never rebuilds it.
    is_active: Vec<bool>,
    /// Support-vector rows materialised at most once, ever: row *content*
    /// is format-independent, so a mid-training layout switch does not
    /// invalidate them.
    sv_rows: Vec<Option<SparseVec>>,
    /// Scratch list of support-vector indices for `reconstruct_f`.
    svs: Vec<usize>,
    /// Persistent worker pool, spawned lazily when `threads > 1` and kept
    /// across iterations and segments (replaces a spawn/join per SMSV).
    pool: Option<SmsvPool>,
}

impl SmoWorkspace {
    fn new(n: usize) -> Self {
        Self {
            scratch_a: RowScratch::new(),
            scratch_b: RowScratch::new(),
            smsv_ws: Vec::new(),
            block_rows: Vec::new(),
            block_vecs: Vec::new(),
            block_out: Vec::new(),
            is_active: vec![true; n],
            sv_rows: vec![None; n],
            svs: Vec::new(),
            pool: None,
        }
    }
}

/// Per-sample box constraint: C_i = C · w(y_i).
#[inline]
fn c_of(params: &SmoParams, yi: Scalar) -> Scalar {
    if yi > 0.0 {
        params.c * params.positive_weight
    } else {
        params.c
    }
}

impl SmoState {
    /// Validates inputs and initialises solver state at `α = 0`.
    pub fn new<M: MatrixFormat + Sync>(
        x: &M,
        y: &[Scalar],
        params: &SmoParams,
    ) -> Result<Self, SvmError> {
        params.validate()?;
        let problem = SvmProblem::new(x, y)?;
        let n = problem.n_samples();
        let y = problem.labels().to_vec();

        // Precompute row norms once: every Gaussian kernel row needs them.
        let mut norms_sq = vec![0.0; n];
        x.row_norms_sq(&mut norms_sq);

        // f_i = Σ_j α_j y_j K_ij − y_i  starts at −y_i since α = 0 (eq. 3).
        let f: Vec<Scalar> = y.iter().map(|&yi| -yi).collect();

        Ok(Self {
            alpha: vec![0.0 as Scalar; n],
            f,
            norms_sq,
            // Active set for the shrinking heuristic: indices still
            // eligible for working-set selection and f updates.
            active: (0..n).collect(),
            do_shrink: params.shrinking,
            // Iterations between shrink passes (LIBSVM uses min(n, 1000)).
            shrink_every: n.clamp(16, 1000),
            iterations: 0,
            smsv_count: 0,
            cache: KernelCache::with_budget(params.cache_bytes, n),
            converged: false,
            stalled: false,
            gap: Scalar::INFINITY,
            k_high: vec![0.0; n],
            k_low: vec![0.0; n],
            touched_high: Vec::with_capacity(n),
            touched_low: Vec::with_capacity(n),
            k_high_full: false,
            k_low_full: false,
            ws: SmoWorkspace::new(n),
            y,
        })
    }

    /// Total iterations executed so far, across all segments.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Total SMSV products executed so far (cache misses only).
    pub fn smsv_count(&self) -> u64 {
        self.smsv_count
    }

    /// Whether the duality-gap criterion has been met.
    pub fn converged(&self) -> bool {
        self.converged
    }

    /// Current `b_low − b_high` duality gap.
    pub fn gap(&self) -> Scalar {
        self.gap
    }

    /// Whether training can make further progress: false once converged,
    /// stalled, or out of the iteration budget.
    pub fn can_continue(&self, params: &SmoParams) -> bool {
        !self.converged && !self.stalled && self.iterations < params.max_iterations
    }

    /// Runs at most `budget` SMO iterations (bounded also by
    /// `params.max_iterations` globally), stopping early on convergence.
    ///
    /// `x` must hold the same matrix *content* on every call, but its
    /// storage format is free to change between calls.
    pub fn run_segment<M: MatrixFormat + Sync>(
        &mut self,
        x: &M,
        params: &SmoParams,
        budget: usize,
    ) -> SegmentReport {
        let n = self.y.len();
        let start_iterations = self.iterations;
        let start_smsv = self.smsv_count;

        // Persistent worker pool: spawned once here and reused across every
        // iteration and segment (recreated only if `threads` changed).
        if params.threads > 1 && self.ws.pool.as_ref().is_none_or(|p| p.threads() != params.threads)
        {
            self.ws.pool = Some(SmsvPool::new(params.threads));
        }

        while !self.converged && !self.stalled {
            // Lines 6–10 of Algorithm 1: one fused pass over f selecting
            // the maximal violating pair (restricted to the active set).
            let (mut high, mut low) = (usize::MAX, usize::MAX);
            let (mut b_high, mut b_low) = (Scalar::INFINITY, Scalar::NEG_INFINITY);
            for &i in &self.active {
                let ai = self.alpha[i];
                let ci = c_of(params, self.y[i]);
                let free = ai > ALPHA_EPS && ai < ci - ALPHA_EPS;
                let at_zero = ai <= ALPHA_EPS;
                let in_high =
                    free || (self.y[i] > 0.0 && at_zero) || (self.y[i] < 0.0 && !at_zero && !free);
                let in_low =
                    free || (self.y[i] > 0.0 && !at_zero && !free) || (self.y[i] < 0.0 && at_zero);
                if in_high && self.f[i] < b_high {
                    b_high = self.f[i];
                    high = i;
                }
                if in_low && self.f[i] > b_low {
                    b_low = self.f[i];
                    low = i;
                }
            }
            self.gap = b_low - b_high;
            if high == usize::MAX || low == usize::MAX || self.gap <= 2.0 * params.tolerance {
                if self.active.len() < n {
                    // Apparent convergence on the shrunk problem:
                    // reconstruct the full optimality vector and verify on
                    // all samples.
                    reconstruct_f(
                        x,
                        &self.y,
                        &self.alpha,
                        &self.norms_sq,
                        params,
                        &self.ws.is_active,
                        &mut self.ws.sv_rows,
                        &mut self.ws.svs,
                        &mut self.ws.scratch_a,
                        &mut self.f,
                    );
                    self.active.clear();
                    self.active.extend(0..n);
                    self.ws.is_active.fill(true);
                    self.do_shrink = false;
                    continue;
                }
                self.converged = true;
                break;
            }
            if self.iterations >= params.max_iterations
                || self.iterations - start_iterations >= budget
            {
                break;
            }
            self.iterations += 1;

            // Two SMSVs per iteration (the paper's §III-A bottleneck),
            // served through the LRU row cache. Once the active set has
            // shrunk well below n, rows are evaluated only at active
            // positions (per-row sparse dots), which is where shrinking
            // actually saves work; partial rows bypass the cache to keep
            // it full-row-only.
            let use_partial = self.active.len() * 4 < n;
            if use_partial {
                partial_kernel_row(
                    x,
                    high,
                    &self.active,
                    &self.norms_sq,
                    params,
                    &mut self.smsv_count,
                    &mut self.ws.scratch_a,
                    &mut self.ws.scratch_b,
                    &mut self.k_high,
                    &mut self.touched_high,
                    &mut self.k_high_full,
                );
            } else {
                fetch_full_row(
                    x,
                    high,
                    params,
                    &self.y,
                    &self.alpha,
                    &self.active,
                    &self.norms_sq,
                    &mut self.cache,
                    &mut self.ws,
                    &mut self.smsv_count,
                    &mut self.k_high,
                );
                self.k_high_full = true;
            }

            // Optional second-order refinement of `low` using the high row.
            if params.selection == WorkingSetSelection::SecondOrder {
                let mut best = Scalar::NEG_INFINITY;
                let mut best_j = low;
                for &j in &self.active {
                    let aj = self.alpha[j];
                    let free = aj > ALPHA_EPS && aj < c_of(params, self.y[j]) - ALPHA_EPS;
                    let at_zero = aj <= ALPHA_EPS;
                    let in_low = free
                        || (self.y[j] > 0.0 && !at_zero && !free)
                        || (self.y[j] < 0.0 && at_zero);
                    if !in_low {
                        continue;
                    }
                    let diff = self.f[j] - b_high;
                    if diff <= params.tolerance {
                        continue;
                    }
                    let eta = (self.k_high[high] + self_k(&self.norms_sq, params, j)
                        - 2.0 * self.k_high[j])
                        .max(1e-12);
                    let gain = diff * diff / eta;
                    if gain > best {
                        best = gain;
                        best_j = j;
                    }
                }
                low = best_j;
            }

            if use_partial {
                partial_kernel_row(
                    x,
                    low,
                    &self.active,
                    &self.norms_sq,
                    params,
                    &mut self.smsv_count,
                    &mut self.ws.scratch_a,
                    &mut self.ws.scratch_b,
                    &mut self.k_low,
                    &mut self.touched_low,
                    &mut self.k_low_full,
                );
            } else {
                fetch_full_row(
                    x,
                    low,
                    params,
                    &self.y,
                    &self.alpha,
                    &self.active,
                    &self.norms_sq,
                    &mut self.cache,
                    &mut self.ws,
                    &mut self.smsv_count,
                    &mut self.k_low,
                );
                self.k_low_full = true;
            }

            let (yh, yl) = (self.y[high], self.y[low]);
            let s = yh * yl;
            // η = K_hh + K_ll − 2 K_hl; guard non-PSD kernels (sigmoid)
            // and numerically degenerate pairs.
            let eta = (self.k_high[high] + self.k_low[low] - 2.0 * self.k_high[low]).max(1e-12);

            // Equation (5) with b_high = f_high, b_low = f_low at
            // selection time, then clip α_low to the feasible segment.
            let (c_high, c_low) = (c_of(params, yh), c_of(params, yl));
            let (l_bound, h_bound) = if s < 0.0 {
                (
                    (self.alpha[low] - self.alpha[high]).max(0.0),
                    (c_high + self.alpha[low] - self.alpha[high]).min(c_low),
                )
            } else {
                (
                    (self.alpha[low] + self.alpha[high] - c_high).max(0.0),
                    (self.alpha[low] + self.alpha[high]).min(c_low),
                )
            };
            let unclipped = self.alpha[low] + yl * (self.f[high] - self.f[low]) / eta;
            let alpha_low_new = unclipped.clamp(l_bound, h_bound);
            let delta_low = alpha_low_new - self.alpha[low];
            if delta_low.abs() < 1e-14 {
                // Numerically stalled pair: no further progress possible.
                self.stalled = true;
                break;
            }
            // Equation (6): Δα_high = −y_low y_high Δα_low.
            let delta_high = -s * delta_low;
            self.alpha[low] = alpha_low_new;
            self.alpha[high] = (self.alpha[high] + delta_high).clamp(0.0, c_high);

            // Equation (4): fused f update over the active samples.
            // Shrunk samples keep stale f values until reconstruction.
            let (dh_yh, dl_yl) = (delta_high * yh, delta_low * yl);
            let (f, k_high, k_low) = (&mut self.f, &self.k_high, &self.k_low);
            for &i in &self.active {
                f[i] += dh_yh * k_high[i] + dl_yl * k_low[i];
            }

            // Periodic shrink: drop bound variables that cannot join any
            // violating pair against the current [b_high, b_low] window.
            if self.do_shrink
                && self.iterations.is_multiple_of(self.shrink_every)
                && self.active.len() > 2
            {
                let (alpha, y, f) = (&self.alpha, &self.y, &self.f);
                let is_active = &mut self.ws.is_active;
                self.active.retain(|&i| {
                    let ai = alpha[i];
                    let free = ai > ALPHA_EPS && ai < c_of(params, y[i]) - ALPHA_EPS;
                    let keep = if free {
                        true
                    } else {
                        let at_zero = ai <= ALPHA_EPS;
                        let in_high = (y[i] > 0.0 && at_zero) || (y[i] < 0.0 && !at_zero);
                        // I_high-only at bound: can only violate as a future
                        // `high` with f[i] < b_low; I_low-only symmetric.
                        if in_high {
                            f[i] < b_low
                        } else {
                            f[i] > b_high
                        }
                    };
                    if !keep {
                        is_active[i] = false;
                    }
                    keep
                });
            }
        }

        SegmentReport {
            iterations: self.iterations - start_iterations,
            smsv_count: self.smsv_count - start_smsv,
            converged: self.converged,
            stalled: self.stalled,
            gap: self.gap,
        }
    }

    /// Extracts the model and cumulative statistics from the current state.
    pub fn finalize<M: MatrixFormat + Sync>(
        &self,
        x: &M,
        params: &SmoParams,
    ) -> (SvmModel, SmoStats) {
        let n = self.y.len();
        // Bias from the KKT interval: b = −(b_high + b_low)/2 where the
        // final selection pass already computed the interval endpoints.
        let (mut b_high, mut b_low) = (Scalar::INFINITY, Scalar::NEG_INFINITY);
        for i in 0..n {
            let ai = self.alpha[i];
            let free = ai > ALPHA_EPS && ai < c_of(params, self.y[i]) - ALPHA_EPS;
            let at_zero = ai <= ALPHA_EPS;
            let in_high =
                free || (self.y[i] > 0.0 && at_zero) || (self.y[i] < 0.0 && !at_zero && !free);
            let in_low =
                free || (self.y[i] > 0.0 && !at_zero && !free) || (self.y[i] < 0.0 && at_zero);
            if in_high {
                b_high = b_high.min(self.f[i]);
            }
            if in_low {
                b_low = b_low.max(self.f[i]);
            }
        }
        let bias = -(b_high + b_low) / 2.0;

        let mut support_vectors = Vec::new();
        let mut coefficients = Vec::new();
        for i in 0..n {
            if self.alpha[i] > ALPHA_EPS {
                support_vectors.push(x.row_sparse(i));
                coefficients.push(self.alpha[i] * self.y[i]);
            }
        }
        let stats = SmoStats {
            iterations: self.iterations,
            converged: self.converged,
            final_gap: self.gap,
            n_support_vectors: support_vectors.len(),
            smsv_count: self.smsv_count,
            cache_hits: self.cache.hits(),
        };
        let model = SvmModel::new(params.kernel, support_vectors, coefficients, bias);
        (model, stats)
    }
}

/// Serves the full kernel row `row` into `dest` (length n), through the
/// LRU cache.
///
/// On a hit the row is copied straight out of the cache. On a miss, one
/// SMSV produces the row — via the persistent worker pool when
/// `threads > 1`, via the borrowed-view kernel otherwise — and, when
/// `block_size > 1` (serial mode only), up to `block_size − 1` additional
/// not-yet-cached working-set candidates are prefetched with a single
/// blocked SMSV sweep over the matrix.
#[allow(clippy::too_many_arguments)]
fn fetch_full_row<M: MatrixFormat + Sync>(
    x: &M,
    row: usize,
    params: &SmoParams,
    y: &[Scalar],
    alpha: &[Scalar],
    active: &[usize],
    norms_sq: &[Scalar],
    cache: &mut KernelCache,
    ws: &mut SmoWorkspace,
    smsv_count: &mut u64,
    dest: &mut [Scalar],
) {
    let n = norms_sq.len();
    if let Some(cached) = cache.get(row) {
        dest.copy_from_slice(cached);
        return;
    }
    let block = if params.threads > 1 { 1 } else { params.block_size.max(1) };
    let b_max = block.min(cache.capacity());
    if b_max <= 1 {
        *smsv_count += 1;
        let xr = x.row_view_in(row, &mut ws.scratch_a);
        if params.threads > 1 {
            if let Some(pool) = ws.pool.as_ref() {
                pool.smsv_generic(x, xr, dest);
            } else {
                x.smsv_view(xr, dest, &mut ws.smsv_ws);
            }
        } else {
            x.smsv_view(xr, dest, &mut ws.smsv_ws);
        }
        params.kernel.apply_row(dest, norms_sq, norms_sq[row]);
        cache.insert(row, dest.to_vec());
        return;
    }
    // Blocked prefetch: the missed row plus free, uncached working-set
    // candidates (free α ⇒ likely future high/low selections).
    ws.block_rows.clear();
    ws.block_rows.push(row);
    for &i in active {
        if ws.block_rows.len() >= b_max {
            break;
        }
        if i == row || cache.contains(i) {
            continue;
        }
        let ai = alpha[i];
        let free = ai > ALPHA_EPS && ai < c_of(params, y[i]) - ALPHA_EPS;
        if free {
            ws.block_rows.push(i);
        }
    }
    let b = ws.block_rows.len();
    ws.block_vecs.clear();
    for &i in &ws.block_rows {
        ws.block_vecs.push(x.row_sparse(i));
    }
    ws.block_out.clear();
    ws.block_out.resize(n * b, 0.0);
    *smsv_count += b as u64;
    x.smsv_block(&ws.block_vecs, &mut ws.block_out, &mut ws.smsv_ws);
    // Insert prefetched rows first and the target row *last*, so the
    // prefetches can never evict the row this iteration actually needs.
    for bi in (0..b).rev() {
        let i = ws.block_rows[bi];
        let chunk = &mut ws.block_out[bi * n..(bi + 1) * n];
        params.kernel.apply_row(chunk, norms_sq, norms_sq[i]);
        cache.insert(i, chunk.to_vec());
    }
    dest.copy_from_slice(&ws.block_out[..n]);
}

/// K(X_j, X_j) for the second-order rule without materialising row j.
fn self_k(norms_sq: &[Scalar], params: &SmoParams, j: usize) -> Scalar {
    params.kernel.apply(norms_sq[j], norms_sq[j], norms_sq[j])
}

/// Kernel row evaluated only at the active indices (plus the row's own
/// diagonal), used once shrinking has made the active set small. Entries
/// outside the active set are left at zero and are never read: the f
/// update, the selection pass and the η computation all index into the
/// active set only.
///
/// The output buffer is reused across calls: only the entries written last
/// time (`touched`, or the whole buffer when it last held a full row per
/// `was_full`) are zeroed, and rows are read through borrowed views — no
/// allocation on any call.
#[allow(clippy::too_many_arguments)]
fn partial_kernel_row<M: MatrixFormat>(
    x: &M,
    row: usize,
    active: &[usize],
    norms_sq: &[Scalar],
    params: &SmoParams,
    smsv_count: &mut u64,
    scratch_a: &mut RowScratch,
    scratch_b: &mut RowScratch,
    out: &mut [Scalar],
    touched: &mut Vec<usize>,
    was_full: &mut bool,
) {
    *smsv_count += 1;
    if *was_full {
        out.fill(0.0);
        *was_full = false;
    } else {
        for &i in touched.iter() {
            out[i] = 0.0;
        }
    }
    touched.clear();
    let xr = x.row_view_in(row, scratch_a);
    for &i in active {
        let dot = x.row_view_in(i, scratch_b).dot(xr);
        out[i] = params.kernel.apply(dot, norms_sq[i], norms_sq[row]);
        touched.push(i);
    }
    if out[row] == 0.0 {
        // The row itself may already be shrunk; η still needs K(row,row).
        out[row] = params.kernel.apply(xr.norm_sq(), norms_sq[row], norms_sq[row]);
        touched.push(row);
    }
}

/// Recomputes `f_i = Σ_j α_j y_j K_ij − y_i` for every index *not* in the
/// active set (whose f went stale while shrunk), using one sparse dot per
/// (inactive sample, support vector) pair.
///
/// `is_active` is the dense mirror maintained by the shrink pass, and
/// support-vector rows are materialised into `sv_rows` at most once ever —
/// repeated reconstructions (one per shrink/unshrink cycle) reuse them.
#[allow(clippy::too_many_arguments)]
fn reconstruct_f<M: MatrixFormat>(
    x: &M,
    y: &[Scalar],
    alpha: &[Scalar],
    norms_sq: &[Scalar],
    params: &SmoParams,
    is_active: &[bool],
    sv_rows: &mut [Option<SparseVec>],
    svs: &mut Vec<usize>,
    scratch: &mut RowScratch,
    f: &mut [Scalar],
) {
    svs.clear();
    svs.extend((0..f.len()).filter(|&j| alpha[j] > ALPHA_EPS));
    for &j in svs.iter() {
        if sv_rows[j].is_none() {
            sv_rows[j] = Some(x.row_sparse(j));
        }
    }
    for i in 0..f.len() {
        if is_active[i] {
            continue;
        }
        let xi = x.row_view_in(i, scratch);
        let mut acc = -y[i];
        for &j in svs.iter() {
            let row_j = sv_rows[j].as_ref().expect("materialised above");
            let k = params.kernel.apply(xi.dot(row_j.as_view()), norms_sq[i], norms_sq[j]);
            acc += alpha[j] * y[j] * k;
        }
        f[i] = acc;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dls_sparse::{CsrMatrix, MatrixFormat, SparseVec, TripletMatrix};

    /// Two well-separated clusters on a line: x < 0 labelled −1, x > 0 +1.
    fn separable_1d() -> (CsrMatrix, Vec<Scalar>) {
        let points = [-3.0, -2.5, -2.0, -1.5, 1.5, 2.0, 2.5, 3.0];
        let mut t = TripletMatrix::new(points.len(), 1);
        for (i, &p) in points.iter().enumerate() {
            t.push(i, 0, p);
        }
        let labels = points.iter().map(|&p| if p > 0.0 { 1.0 } else { -1.0 }).collect();
        (CsrMatrix::from_triplets(&t.compact()), labels)
    }

    /// XOR in 2D: not linearly separable, needs the Gaussian kernel.
    fn xor_2d() -> (CsrMatrix, Vec<Scalar>) {
        let pts = [(0.0, 0.0, -1.0), (1.0, 1.0, -1.0), (0.0, 1.0, 1.0), (1.0, 0.0, 1.0)];
        let mut t = TripletMatrix::new(4, 2);
        for (i, &(a, b, _)) in pts.iter().enumerate() {
            if a != 0.0 {
                t.push(i, 0, a);
            }
            if b != 0.0 {
                t.push(i, 1, b);
            }
        }
        (CsrMatrix::from_triplets(&t.compact()), pts.iter().map(|p| p.2).collect())
    }

    #[test]
    fn linear_kernel_separates_clusters() {
        let (x, y) = separable_1d();
        let params = SmoParams { kernel: KernelKind::Linear, ..Default::default() };
        let (model, stats) = train_with_stats(&x, &y, &params).unwrap();
        assert!(stats.converged, "gap {}", stats.final_gap);
        for i in 0..x.rows() {
            assert_eq!(model.predict_label(&x.row_sparse(i)), y[i], "sample {i}");
        }
        // Margin midpoint is 0: points beyond the clusters classify correctly.
        assert_eq!(model.predict_label(&SparseVec::new(1, vec![0], vec![10.0])), 1.0);
        assert_eq!(model.predict_label(&SparseVec::new(1, vec![0], vec![-10.0])), -1.0);
    }

    #[test]
    fn gaussian_kernel_solves_xor() {
        let (x, y) = xor_2d();
        let params = SmoParams {
            kernel: KernelKind::Gaussian { gamma: 2.0 },
            c: 10.0,
            ..Default::default()
        };
        let (model, stats) = train_with_stats(&x, &y, &params).unwrap();
        assert!(stats.converged);
        for i in 0..4 {
            assert_eq!(model.predict_label(&x.row_sparse(i)), y[i], "XOR corner {i}");
        }
    }

    #[test]
    fn second_order_selection_also_converges() {
        let (x, y) = xor_2d();
        let params = SmoParams {
            kernel: KernelKind::Gaussian { gamma: 2.0 },
            c: 10.0,
            selection: WorkingSetSelection::SecondOrder,
            ..Default::default()
        };
        let (model, stats) = train_with_stats(&x, &y, &params).unwrap();
        assert!(stats.converged);
        for i in 0..4 {
            assert_eq!(model.predict_label(&x.row_sparse(i)), y[i]);
        }
    }

    #[test]
    fn alphas_respect_box_constraint_via_dual_coefs() {
        let (x, y) = separable_1d();
        let params = SmoParams { kernel: KernelKind::Linear, c: 0.5, ..Default::default() };
        let (model, _) = train_with_stats(&x, &y, &params).unwrap();
        for &coef in model.coefficients() {
            assert!(coef.abs() <= 0.5 + 1e-9, "coef {coef} violates C");
        }
        // Dual feasibility: Σ α_i y_i = Σ coef_i = 0.
        let sum: Scalar = model.coefficients().iter().sum();
        assert!(sum.abs() < 1e-9, "Σ α y = {sum}");
    }

    #[test]
    fn all_formats_train_identically() {
        use dls_sparse::{AnyMatrix, Format};
        let (x, y) = separable_1d();
        let t = x.to_triplets().compact();
        let params = SmoParams { kernel: KernelKind::Linear, ..Default::default() };
        let (reference, ref_stats) = train_with_stats(&x, &y, &params).unwrap();
        for fmt in Format::ALL {
            let m = AnyMatrix::from_triplets(fmt, &t);
            let (model, stats) = train_with_stats(&m, &y, &params).unwrap();
            assert_eq!(stats.iterations, ref_stats.iterations, "{fmt}");
            assert!((model.bias() - reference.bias()).abs() < 1e-9, "{fmt}");
            for i in 0..x.rows() {
                assert_eq!(model.predict_label(&x.row_sparse(i)), y[i], "{fmt} sample {i}");
            }
        }
    }

    #[test]
    fn cache_serves_repeated_rows() {
        let (x, y) = xor_2d();
        let params = SmoParams {
            kernel: KernelKind::Gaussian { gamma: 2.0 },
            c: 10.0,
            ..Default::default()
        };
        let (_, stats) = train_with_stats(&x, &y, &params).unwrap();
        // 4 distinct rows at most can miss; everything else must hit.
        assert!(stats.smsv_count <= 4);
        if stats.iterations > 2 {
            assert!(stats.cache_hits > 0);
        }
    }

    #[test]
    fn max_iterations_caps_work() {
        let (x, y) = xor_2d();
        let params = SmoParams {
            kernel: KernelKind::Gaussian { gamma: 2.0 },
            c: 10.0,
            max_iterations: 1,
            ..Default::default()
        };
        let (_, stats) = train_with_stats(&x, &y, &params).unwrap();
        assert_eq!(stats.iterations, 1);
        assert!(!stats.converged);
    }

    #[test]
    fn positive_weight_shifts_the_boundary() {
        use dls_sparse::TripletMatrix;
        // Overlapping clusters: class +1 centred at +0.5, −1 at −0.5, with
        // the midpoint ambiguous. Weighting the positive class pushes the
        // decision boundary toward the negatives, so an ambiguous point
        // near zero flips to +1.
        let mut t = TripletMatrix::new(20, 1);
        let mut y = Vec::new();
        for i in 0..20 {
            let sign = if i % 2 == 0 { 1.0 } else { -1.0 };
            let v = sign * 0.5 + ((i as f64) * 0.61).sin() * 0.6;
            t.push(i, 0, v);
            y.push(sign);
        }
        let x = dls_sparse::CsrMatrix::from_triplets(&t.compact());
        let balanced = SmoParams { kernel: KernelKind::Linear, c: 1.0, ..Default::default() };
        let weighted = SmoParams { positive_weight: 20.0, ..balanced };
        let (mb, _) = train_with_stats(&x, &y, &balanced).unwrap();
        let (mw, _) = train_with_stats(&x, &y, &weighted).unwrap();
        // Positive-class recall with the heavy weight must be at least as
        // good as balanced, and the decision value at the origin moves up.
        let probe = dls_sparse::SparseVec::zeros(1);
        assert!(
            mw.decision_function(&probe) >= mb.decision_function(&probe) - 1e-9,
            "weighted boundary must favour positives: {} vs {}",
            mw.decision_function(&probe),
            mb.decision_function(&probe)
        );
        let recall = |m: &crate::SvmModel| {
            let mut hit = 0;
            let mut tot = 0;
            for i in 0..20 {
                if y[i] > 0.0 {
                    tot += 1;
                    if m.predict_label(&x.row_sparse(i)) > 0.0 {
                        hit += 1;
                    }
                }
            }
            hit as f64 / tot as f64
        };
        assert!(recall(&mw) >= recall(&mb), "weighting must not hurt positive recall");
    }

    #[test]
    fn weighted_coefficients_respect_per_class_boxes() {
        let (x, y) = separable_1d();
        let params = SmoParams {
            kernel: KernelKind::Linear,
            c: 0.5,
            positive_weight: 4.0,
            ..Default::default()
        };
        let (model, _) = train_with_stats(&x, &y, &params).unwrap();
        for (&coef, sv) in model.coefficients().iter().zip(model.support_vectors()) {
            let _ = sv;
            if coef > 0.0 {
                assert!(coef <= 0.5 * 4.0 + 1e-9, "positive coef {coef}");
            } else {
                assert!(-coef <= 0.5 + 1e-9, "negative coef {coef}");
            }
        }
        assert!(train(&x, &y, &SmoParams { positive_weight: 0.0, ..params }).is_err());
    }

    #[test]
    fn shrinking_preserves_the_solution() {
        use dls_sparse::TripletMatrix;
        // A bigger problem so shrinking actually kicks in (shrink_every
        // scales with n).
        let n = 60;
        let mut t = TripletMatrix::new(n, 2);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let sign = if i % 2 == 0 { 1.0 } else { -1.0 };
            let jitter = (i as f64 * 0.77).sin();
            t.push(i, 0, sign * 2.0 + jitter * 0.5);
            t.push(i, 1, jitter);
            y.push(sign);
        }
        let x = dls_sparse::CsrMatrix::from_triplets(&t.compact());
        let plain = SmoParams { kernel: KernelKind::Gaussian { gamma: 0.5 }, ..Default::default() };
        let shrunk = SmoParams { shrinking: true, ..plain };
        let (m1, s1) = train_with_stats(&x, &y, &plain).unwrap();
        let (m2, s2) = train_with_stats(&x, &y, &shrunk).unwrap();
        assert!(s1.converged && s2.converged);
        // Same decisions everywhere; bias within the solver tolerance.
        assert!((m1.bias() - m2.bias()).abs() < 1e-2, "{} vs {}", m1.bias(), m2.bias());
        for i in 0..n {
            let r = x.row_sparse(i);
            assert_eq!(m1.predict_label(&r), m2.predict_label(&r), "row {i}");
        }
    }

    #[test]
    fn shrinking_final_gap_is_verified_on_full_set() {
        let (x, y) = separable_1d();
        let params =
            SmoParams { kernel: KernelKind::Linear, shrinking: true, ..Default::default() };
        let (_, stats) = train_with_stats(&x, &y, &params).unwrap();
        assert!(stats.converged);
        assert!(stats.final_gap <= 2.0 * params.tolerance + 1e-12);
    }

    #[test]
    fn threaded_kernel_rows_give_identical_results() {
        let (x, y) = xor_2d();
        let serial = SmoParams {
            kernel: KernelKind::Gaussian { gamma: 2.0 },
            c: 10.0,
            ..Default::default()
        };
        let threaded = SmoParams { threads: 4, ..serial };
        let (m1, s1) = train_with_stats(&x, &y, &serial).unwrap();
        let (m2, s2) = train_with_stats(&x, &y, &threaded).unwrap();
        assert_eq!(s1.iterations, s2.iterations);
        assert!((m1.bias() - m2.bias()).abs() < 1e-12);
        for i in 0..4 {
            assert_eq!(m1.predict_label(&x.row_sparse(i)), m2.predict_label(&x.row_sparse(i)));
        }
    }

    #[test]
    fn invalid_params_are_rejected() {
        let (x, y) = separable_1d();
        let bad_c = SmoParams { c: 0.0, ..Default::default() };
        assert!(train(&x, &y, &bad_c).is_err());
        let bad_tol = SmoParams { tolerance: -1.0, ..Default::default() };
        assert!(train(&x, &y, &bad_tol).is_err());
        let bad_iter = SmoParams { max_iterations: 0, ..Default::default() };
        assert!(train(&x, &y, &bad_iter).is_err());
        let bad_threads = SmoParams { threads: 0, ..Default::default() };
        assert!(train(&x, &y, &bad_threads).is_err());
        let bad_block = SmoParams { block_size: 0, ..Default::default() };
        assert!(train(&x, &y, &bad_block).is_err());
    }

    #[test]
    fn blocked_prefetch_trains_identically() {
        use dls_sparse::{AnyMatrix, Format};
        let (csr, y) = separable_1d();
        let t = csr.to_triplets().compact();
        let base = SmoParams { kernel: KernelKind::Gaussian { gamma: 0.5 }, ..Default::default() };
        let (reference, ref_stats) = train_with_stats(&csr, &y, &base).unwrap();
        for block_size in [2, 4, 32] {
            let blocked = SmoParams { block_size, ..base };
            for fmt in Format::ALL {
                let m = AnyMatrix::from_triplets(fmt, &t);
                let (model, stats) = train_with_stats(&m, &y, &blocked).unwrap();
                assert_eq!(stats.iterations, ref_stats.iterations, "{fmt} b={block_size}");
                assert!(
                    (model.bias() - reference.bias()).abs() < 1e-9,
                    "{fmt} b={block_size}: {} vs {}",
                    model.bias(),
                    reference.bias()
                );
                // Prefetching can only add SMSVs, never change decisions.
                assert!(stats.smsv_count >= ref_stats.smsv_count, "{fmt} b={block_size}");
                for i in 0..csr.rows() {
                    assert_eq!(model.predict_label(&csr.row_sparse(i)), y[i], "{fmt}");
                }
            }
        }
    }

    #[test]
    fn blocked_prefetch_reduces_cache_misses() {
        use dls_sparse::TripletMatrix;
        // A problem large enough that many distinct rows get fetched.
        let n = 40;
        let mut t = TripletMatrix::new(n, 3);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let sign = if i % 2 == 0 { 1.0 } else { -1.0 };
            let jitter = (i as f64 * 0.77).sin();
            t.push(i, 0, sign + jitter * 0.9);
            t.push(i, 1, jitter);
            t.push(i, 2, (i as f64 * 0.31).cos() * 0.5);
            y.push(sign);
        }
        let x = dls_sparse::CsrMatrix::from_triplets(&t.compact());
        let base = SmoParams { kernel: KernelKind::Gaussian { gamma: 1.0 }, ..Default::default() };
        let blocked = SmoParams { block_size: 8, ..base };
        let (_, s1) = train_with_stats(&x, &y, &base).unwrap();
        let (_, s2) = train_with_stats(&x, &y, &blocked).unwrap();
        assert_eq!(s1.iterations, s2.iterations);
        // Prefetched rows turn later misses into hits.
        assert!(
            s2.cache_hits >= s1.cache_hits,
            "blocked hits {} < unblocked {}",
            s2.cache_hits,
            s1.cache_hits
        );
    }

    #[test]
    fn rejects_bad_labels() {
        let (x, _) = separable_1d();
        let err = train(&x, &[1.0; 8], &SmoParams::default()).unwrap_err();
        assert_eq!(err, SvmError::SingleClass);
    }

    #[test]
    fn segmented_training_matches_monolithic() {
        let (x, y) = xor_2d();
        let params = SmoParams {
            kernel: KernelKind::Gaussian { gamma: 2.0 },
            c: 10.0,
            ..Default::default()
        };
        let (reference, ref_stats) = train_with_stats(&x, &y, &params).unwrap();

        // Same training driven two iterations at a time.
        let mut state = SmoState::new(&x, &y, &params).unwrap();
        let mut segments = 0;
        while state.can_continue(&params) {
            let rep = state.run_segment(&x, &params, 2);
            segments += 1;
            assert!(rep.iterations <= 2);
            assert!(segments < 10_000, "segment loop must terminate");
        }
        let (model, stats) = state.finalize(&x, &params);
        assert_eq!(stats.iterations, ref_stats.iterations);
        assert_eq!(stats.smsv_count, ref_stats.smsv_count);
        assert_eq!(stats.converged, ref_stats.converged);
        assert!((model.bias() - reference.bias()).abs() < 1e-12);
        for i in 0..4 {
            assert_eq!(model.predict_label(&x.row_sparse(i)), y[i]);
        }
    }

    #[test]
    fn format_switch_between_segments_preserves_training() {
        use dls_sparse::{AnyMatrix, Format};
        let (csr, y) = separable_1d();
        let t = csr.to_triplets().compact();
        let params = SmoParams { kernel: KernelKind::Linear, ..Default::default() };
        let (reference, ref_stats) = train_with_stats(&csr, &y, &params).unwrap();

        // Start on a deliberately poor format, then convert mid-training:
        // state depends on matrix content only, so the run must continue
        // seamlessly and reach the same solution.
        let dia = AnyMatrix::from_triplets(Format::Dia, &t);
        let mut state = SmoState::new(&dia, &y, &params).unwrap();
        state.run_segment(&dia, &params, 1);
        let better = dia.convert(Format::Csr);
        while state.can_continue(&params) {
            state.run_segment(&better, &params, 3);
        }
        let (model, stats) = state.finalize(&better, &params);
        assert!(stats.converged);
        assert_eq!(stats.iterations, ref_stats.iterations);
        assert!((model.bias() - reference.bias()).abs() < 1e-9);
        for i in 0..csr.rows() {
            assert_eq!(model.predict_label(&csr.row_sparse(i)), y[i]);
        }
    }

    #[test]
    fn zero_budget_segment_is_a_no_op() {
        let (x, y) = separable_1d();
        let params = SmoParams { kernel: KernelKind::Linear, ..Default::default() };
        let mut state = SmoState::new(&x, &y, &params).unwrap();
        let rep = state.run_segment(&x, &params, 0);
        assert_eq!(rep.iterations, 0);
        assert!(!rep.converged);
        assert!(state.can_continue(&params));
    }

    #[test]
    fn stats_count_iterations_and_svs() {
        let (x, y) = separable_1d();
        let params = SmoParams { kernel: KernelKind::Linear, ..Default::default() };
        let (model, stats) = train_with_stats(&x, &y, &params).unwrap();
        assert!(stats.iterations >= 1);
        assert_eq!(stats.n_support_vectors, model.n_support_vectors());
        assert!(stats.n_support_vectors >= 2, "at least one SV per class");
    }
}
