//! Hyperparameter search for the SVM: k-fold cross-validation and grid
//! search over `(C, γ)` — the same auto-tuning philosophy the paper applies
//! to data layouts (§III) and DNN hyperparameters (§IV), applied to the
//! solver's own knobs.

use crate::{KernelKind, SmoParams, SvmError};
use dls_sparse::{MatrixFormat, Scalar, TripletMatrix};

/// Deterministic k-fold split: fold `f` owns indices `i` with `i % k == f`
/// (round-robin, which also stratifies interleaved label layouts).
pub fn kfold_indices(n: usize, k: usize) -> Vec<(Vec<usize>, Vec<usize>)> {
    assert!(k >= 2, "need at least two folds");
    assert!(n >= k, "need at least one sample per fold");
    (0..k)
        .map(|f| {
            let mut train_idx = Vec::with_capacity(n - n / k);
            let mut test_idx = Vec::with_capacity(n / k + 1);
            for i in 0..n {
                if i % k == f {
                    test_idx.push(i);
                } else {
                    train_idx.push(i);
                }
            }
            (train_idx, test_idx)
        })
        .collect()
}

/// Extracts the sub-matrix of the given rows (re-indexed densely).
fn submatrix<M: MatrixFormat>(x: &M, rows: &[usize]) -> TripletMatrix {
    let mut t = TripletMatrix::new(rows.len(), x.cols());
    for (new_i, &old_i) in rows.iter().enumerate() {
        for (j, v) in x.row_sparse(old_i).iter() {
            t.push(new_i, j, v);
        }
    }
    t.compact()
}

/// Mean k-fold cross-validation accuracy for one parameter setting.
pub fn cross_validate<M: MatrixFormat + Sync>(
    x: &M,
    y: &[Scalar],
    params: &SmoParams,
    folds: usize,
) -> Result<f64, SvmError> {
    if y.len() != x.rows() {
        return Err(SvmError::LabelLengthMismatch { rows: x.rows(), labels: y.len() });
    }
    let mut total_correct = 0usize;
    let mut total = 0usize;
    for (train_idx, test_idx) in kfold_indices(x.rows(), folds) {
        let sub = submatrix(x, &train_idx);
        let sub_y: Vec<Scalar> = train_idx.iter().map(|&i| y[i]).collect();
        // A fold can end up single-class; score it as chance rather than
        // failing the whole grid point.
        let model = match crate::train(&dls_sparse::CsrMatrix::from_triplets(&sub), &sub_y, params)
        {
            Ok(m) => m,
            Err(SvmError::SingleClass) => {
                total += test_idx.len();
                continue;
            }
            Err(e) => return Err(e),
        };
        for &i in &test_idx {
            if model.predict_label(&x.row_sparse(i)) == y[i] {
                total_correct += 1;
            }
            total += 1;
        }
    }
    Ok(total_correct as f64 / total as f64)
}

/// One evaluated grid point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridPoint {
    /// Regularisation constant evaluated.
    pub c: Scalar,
    /// Gaussian γ evaluated (`None` for linear-kernel searches).
    pub gamma: Option<Scalar>,
    /// Mean cross-validation accuracy.
    pub cv_accuracy: f64,
}

/// Result of a grid search.
#[derive(Debug, Clone)]
pub struct GridSearchResult {
    /// The winning parameters, ready to train the final model.
    pub best_params: SmoParams,
    /// CV accuracy of the winner.
    pub best_accuracy: f64,
    /// Every evaluated point.
    pub points: Vec<GridPoint>,
}

/// Grid search over `C` (and `γ` for Gaussian kernels) with k-fold CV.
///
/// `gammas` empty means keep the base kernel untouched and search `C` only.
pub fn grid_search<M: MatrixFormat + Sync>(
    x: &M,
    y: &[Scalar],
    base: &SmoParams,
    cs: &[Scalar],
    gammas: &[Scalar],
    folds: usize,
) -> Result<GridSearchResult, SvmError> {
    assert!(!cs.is_empty(), "need at least one C candidate");
    let mut points = Vec::new();
    let mut best: Option<(SmoParams, f64)> = None;
    for &c in cs {
        let gamma_space: Vec<Option<Scalar>> =
            if gammas.is_empty() { vec![None] } else { gammas.iter().map(|&g| Some(g)).collect() };
        for gamma in gamma_space {
            let params = SmoParams {
                c,
                kernel: match gamma {
                    Some(g) => KernelKind::Gaussian { gamma: g },
                    None => base.kernel,
                },
                ..*base
            };
            let acc = cross_validate(x, y, &params, folds)?;
            points.push(GridPoint { c, gamma, cv_accuracy: acc });
            if best.as_ref().map(|(_, b)| acc > *b).unwrap_or(true) {
                best = Some((params, acc));
            }
        }
    }
    let (best_params, best_accuracy) = best.expect("non-empty grid");
    Ok(GridSearchResult { best_params, best_accuracy, points })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dls_sparse::CsrMatrix;

    fn clusters(n: usize, sep: f64) -> (CsrMatrix, Vec<Scalar>) {
        let mut t = TripletMatrix::new(n, 2);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let sign = if i % 2 == 0 { 1.0 } else { -1.0 };
            let jitter = (i as f64 * 0.37).sin() * 0.3;
            t.push(i, 0, sign * sep + jitter);
            t.push(i, 1, jitter - sign * 0.1);
            y.push(sign);
        }
        (CsrMatrix::from_triplets(&t.compact()), y)
    }

    #[test]
    fn kfold_partitions_everything_exactly_once() {
        for (n, k) in [(10, 2), (11, 3), (25, 5)] {
            let folds = kfold_indices(n, k);
            assert_eq!(folds.len(), k);
            let mut seen = vec![0usize; n];
            for (train_idx, test_idx) in &folds {
                assert_eq!(train_idx.len() + test_idx.len(), n);
                for &i in test_idx {
                    seen[i] += 1;
                }
                // Disjoint within a fold.
                for &i in test_idx {
                    assert!(!train_idx.contains(&i));
                }
            }
            assert!(seen.iter().all(|&s| s == 1), "each index tested exactly once");
        }
    }

    #[test]
    #[should_panic(expected = "two folds")]
    fn kfold_rejects_single_fold() {
        let _ = kfold_indices(10, 1);
    }

    #[test]
    fn cross_validation_scores_separable_data_highly() {
        let (x, y) = clusters(24, 3.0);
        let params = SmoParams { kernel: KernelKind::Linear, ..Default::default() };
        let acc = cross_validate(&x, &y, &params, 4).unwrap();
        assert!(acc > 0.9, "cv accuracy {acc}");
    }

    #[test]
    fn grid_search_finds_a_working_point() {
        let (x, y) = clusters(24, 2.0);
        let base = SmoParams::default();
        let result = grid_search(&x, &y, &base, &[0.1, 1.0, 10.0], &[0.1, 1.0], 4).unwrap();
        assert_eq!(result.points.len(), 6);
        assert!(result.best_accuracy > 0.9, "best {}", result.best_accuracy);
        // The winner's recorded accuracy matches its grid point.
        let best_point = result
            .points
            .iter()
            .max_by(|a, b| a.cv_accuracy.partial_cmp(&b.cv_accuracy).unwrap())
            .unwrap();
        assert_eq!(best_point.cv_accuracy, result.best_accuracy);
    }

    #[test]
    fn c_only_search_keeps_base_kernel() {
        let (x, y) = clusters(16, 3.0);
        let base = SmoParams { kernel: KernelKind::Linear, ..Default::default() };
        let result = grid_search(&x, &y, &base, &[0.5, 5.0], &[], 4).unwrap();
        assert_eq!(result.points.len(), 2);
        assert!(result.points.iter().all(|p| p.gamma.is_none()));
        assert_eq!(result.best_params.kernel, KernelKind::Linear);
    }
}
