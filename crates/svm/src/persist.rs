//! Model persistence in a LIBSVM-inspired text format.
//!
//! ```text
//! dls_svm_model v1
//! kernel gaussian 0.5
//! bias -0.25
//! nr_sv 3
//! dim 10
//! SV
//! 0.75 1:0.5 4:1.25
//! -1.5 2:2
//! 0.75 1:-1 9:3
//! ```
//!
//! Each SV line is `coefficient index:value …` with 1-based indices, so the
//! files are diffable against LIBSVM's own model files.

use crate::{KernelKind, SvmModel};
use dls_sparse::{Scalar, SparseVec};
use std::io::{BufRead, Write};

/// Persistence errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelFormatError {
    /// 1-based line number where parsing failed.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ModelFormatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "model line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ModelFormatError {}

fn kernel_header(kernel: KernelKind) -> String {
    match kernel {
        KernelKind::Linear => "kernel linear".to_string(),
        KernelKind::Gaussian { gamma } => format!("kernel gaussian {gamma}"),
        KernelKind::Polynomial { a, r, degree } => {
            format!("kernel polynomial {a} {r} {degree}")
        }
        KernelKind::Sigmoid { a, r } => format!("kernel sigmoid {a} {r}"),
    }
}

fn parse_kernel(line: &str, lineno: usize) -> Result<KernelKind, ModelFormatError> {
    let err = |m: &str| ModelFormatError { line: lineno, message: m.to_string() };
    let mut parts = line.split_ascii_whitespace();
    let _ = parts.next(); // "kernel"
    match parts.next() {
        Some("linear") => Ok(KernelKind::Linear),
        Some("gaussian") => {
            let gamma = parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| err("gaussian needs gamma"))?;
            Ok(KernelKind::Gaussian { gamma })
        }
        Some("polynomial") => {
            let a = parts.next().and_then(|s| s.parse().ok());
            let r = parts.next().and_then(|s| s.parse().ok());
            let d = parts.next().and_then(|s| s.parse().ok());
            match (a, r, d) {
                (Some(a), Some(r), Some(degree)) => Ok(KernelKind::Polynomial { a, r, degree }),
                _ => Err(err("polynomial needs a r degree")),
            }
        }
        Some("sigmoid") => {
            let a = parts.next().and_then(|s| s.parse().ok());
            let r = parts.next().and_then(|s| s.parse().ok());
            match (a, r) {
                (Some(a), Some(r)) => Ok(KernelKind::Sigmoid { a, r }),
                _ => Err(err("sigmoid needs a r")),
            }
        }
        other => Err(err(&format!("unknown kernel: {other:?}"))),
    }
}

/// Writes a model in the text format.
pub fn write_model<W: Write>(w: &mut W, model: &SvmModel) -> std::io::Result<()> {
    writeln!(w, "dls_svm_model v1")?;
    writeln!(w, "{}", kernel_header(model.kernel()))?;
    writeln!(w, "bias {}", model.bias())?;
    writeln!(w, "nr_sv {}", model.n_support_vectors())?;
    let dim = model.support_vectors().first().map(SparseVec::dim).unwrap_or(0);
    writeln!(w, "dim {dim}")?;
    writeln!(w, "SV")?;
    for (sv, &coef) in model.support_vectors().iter().zip(model.coefficients()) {
        write!(w, "{coef}")?;
        for (j, v) in sv.iter() {
            write!(w, " {}:{}", j + 1, v)?;
        }
        writeln!(w)?;
    }
    Ok(())
}

/// Reads a model from the text format.
pub fn read_model<R: BufRead>(r: R) -> Result<SvmModel, ModelFormatError> {
    let err = |line: usize, m: String| ModelFormatError { line, message: m };
    let mut lines = r.lines().enumerate();
    let mut next_line = |expect: &str| -> Result<(usize, String), ModelFormatError> {
        match lines.next() {
            Some((i, Ok(l))) => Ok((i + 1, l)),
            Some((i, Err(e))) => Err(err(i + 1, e.to_string())),
            None => Err(err(0, format!("unexpected end of file, expected {expect}"))),
        }
    };

    let (i, magic) = next_line("header")?;
    if magic.trim() != "dls_svm_model v1" {
        return Err(err(i, format!("bad magic: {magic}")));
    }
    let (i, kline) = next_line("kernel")?;
    let kernel = parse_kernel(&kline, i)?;
    let (i, bline) = next_line("bias")?;
    let bias: Scalar = bline
        .strip_prefix("bias ")
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| err(i, format!("bad bias line: {bline}")))?;
    let (i, nline) = next_line("nr_sv")?;
    let nr_sv: usize = nline
        .strip_prefix("nr_sv ")
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| err(i, format!("bad nr_sv line: {nline}")))?;
    let (i, dline) = next_line("dim")?;
    let dim: usize = dline
        .strip_prefix("dim ")
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| err(i, format!("bad dim line: {dline}")))?;
    let (i, svmark) = next_line("SV")?;
    if svmark.trim() != "SV" {
        return Err(err(i, format!("expected SV marker, got {svmark}")));
    }

    let mut svs = Vec::with_capacity(nr_sv);
    let mut coefs = Vec::with_capacity(nr_sv);
    for _ in 0..nr_sv {
        let (i, line) = next_line("support vector")?;
        let mut parts = line.split_ascii_whitespace();
        let coef: Scalar = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| err(i, "missing coefficient".into()))?;
        let mut idx = Vec::new();
        let mut val = Vec::new();
        for tok in parts {
            let (a, b) = tok
                .split_once(':')
                .ok_or_else(|| err(i, format!("expected idx:value, got {tok}")))?;
            let j: usize = a.parse().map_err(|_| err(i, format!("bad index {a}")))?;
            if j == 0 || j > dim {
                return Err(err(i, format!("index {j} out of range 1..={dim}")));
            }
            let v: Scalar = b.parse().map_err(|_| err(i, format!("bad value {b}")))?;
            idx.push(j - 1);
            val.push(v);
        }
        svs.push(SparseVec::new(dim, idx, val));
        coefs.push(coef);
    }
    Ok(SvmModel::new(kernel, svs, coefs, bias))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{train, SmoParams};
    use dls_sparse::{CsrMatrix, MatrixFormat, TripletMatrix};

    fn trained_model(kernel: KernelKind) -> (SvmModel, CsrMatrix, Vec<Scalar>) {
        let mut t = TripletMatrix::new(8, 3);
        let mut y = Vec::new();
        for i in 0..8 {
            let sign = if i < 4 { 1.0 } else { -1.0 };
            t.push(i, 0, sign * (1.0 + i as f64 * 0.1));
            t.push(i, (i % 2) + 1, 0.5);
            y.push(sign);
        }
        let x = CsrMatrix::from_triplets(&t.compact());
        let model = train(&x, &y, &SmoParams { kernel, ..Default::default() }).unwrap();
        (model, x, y)
    }

    #[test]
    fn round_trip_preserves_predictions() {
        for kernel in [
            KernelKind::Linear,
            KernelKind::Gaussian { gamma: 0.7 },
            KernelKind::Polynomial { a: 1.0, r: 0.5, degree: 3 },
            KernelKind::Sigmoid { a: 0.1, r: 0.0 },
        ] {
            let (model, x, _) = trained_model(kernel);
            let mut buf = Vec::new();
            write_model(&mut buf, &model).unwrap();
            let loaded = read_model(buf.as_slice()).unwrap();
            assert_eq!(loaded.kernel(), model.kernel());
            assert_eq!(loaded.n_support_vectors(), model.n_support_vectors());
            assert!((loaded.bias() - model.bias()).abs() < 1e-12);
            for i in 0..x.rows() {
                let r = x.row_sparse(i);
                assert!(
                    (loaded.decision_function(&r) - model.decision_function(&r)).abs() < 1e-12,
                    "{kernel:?} row {i}"
                );
            }
        }
    }

    #[test]
    fn rejects_corrupted_files() {
        let (model, _, _) = trained_model(KernelKind::Linear);
        let mut buf = Vec::new();
        write_model(&mut buf, &model).unwrap();
        let text = String::from_utf8(buf).unwrap();

        // Bad magic.
        let bad = text.replace("dls_svm_model v1", "not_a_model");
        assert!(read_model(bad.as_bytes()).is_err());
        // Truncated SV block.
        let mut lines: Vec<&str> = text.lines().collect();
        lines.pop();
        let truncated = lines.join("\n");
        assert!(read_model(truncated.as_bytes()).is_err());
        // Out-of-range index.
        let oob = text.replace("dim 3", "dim 1");
        assert!(read_model(oob.as_bytes()).is_err());
    }

    #[test]
    fn error_messages_carry_line_numbers() {
        let e = read_model("garbage".as_bytes()).unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.to_string().contains("line 1"));
    }
}
