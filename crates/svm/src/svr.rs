//! ε-Support Vector Regression.
//!
//! §II-A of the paper: "the data structure of the regression problem is
//! identical to that of the classification problem; the only difference is
//! that y_i ∈ R". The dual is solved by the same SMO machinery on the
//! standard 2n-variable extension (LIBSVM's ε-SVR formulation): variables
//! `α_i` (pseudo-label +1, linear term ε − y_i) and `α_i*` (pseudo-label
//! −1, linear term ε + y_i), box `[0, C]`, equality Σ(α − α*) = 0.
//!
//! The regression function is `f(x) = Σ (α_i − α_i*) K(X_i, x) + b`, so a
//! trained regressor reuses [`SvmModel`] with coefficients `β_i = α_i −
//! α_i*` and [`SvmModel::decision_function`] as the predicted value.

// Same conventions as smo.rs: paper-shaped set conditions, parallel-array
// loops, and NaN-rejecting `!(x > 0)` validation.
#![allow(clippy::nonminimal_bool, clippy::needless_range_loop, clippy::neg_cmp_op_on_partial_ord)]

use crate::{KernelKind, SvmError, SvmModel};
use dls_sparse::{MatrixFormat, Scalar};

/// α within this distance of a bound is treated as exactly at the bound.
const ALPHA_EPS: Scalar = 1e-12;

/// Hyperparameters for ε-SVR training.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SvrParams {
    /// Regularization constant `C`.
    pub c: Scalar,
    /// Width of the ε-insensitive tube: errors below ε are not penalised.
    pub epsilon: Scalar,
    /// Kernel function.
    pub kernel: KernelKind,
    /// Convergence tolerance τ.
    pub tolerance: Scalar,
    /// Hard iteration cap.
    pub max_iterations: usize,
}

impl Default for SvrParams {
    fn default() -> Self {
        Self {
            c: 1.0,
            epsilon: 0.1,
            kernel: KernelKind::default(),
            tolerance: 1e-3,
            max_iterations: 100_000,
        }
    }
}

impl SvrParams {
    /// Validates the hyperparameters.
    pub fn validate(&self) -> Result<(), SvmError> {
        if !(self.c > 0.0) {
            return Err(SvmError::InvalidParameter(format!("C must be > 0, got {}", self.c)));
        }
        if !(self.epsilon >= 0.0) {
            return Err(SvmError::InvalidParameter(format!(
                "epsilon must be >= 0, got {}",
                self.epsilon
            )));
        }
        if !(self.tolerance > 0.0) {
            return Err(SvmError::InvalidParameter("tolerance must be > 0".into()));
        }
        if self.max_iterations == 0 {
            return Err(SvmError::InvalidParameter("max_iterations must be > 0".into()));
        }
        Ok(())
    }
}

/// Solver statistics for a regression run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SvrStats {
    /// SMO iterations executed.
    pub iterations: usize,
    /// Whether the duality gap closed.
    pub converged: bool,
    /// Support vectors (samples with `α_i − α_i* != 0`).
    pub n_support_vectors: usize,
}

/// Trains an ε-SVR model. `y` holds real-valued targets.
pub fn train_svr<M: MatrixFormat>(
    x: &M,
    y: &[Scalar],
    params: &SvrParams,
) -> Result<(SvmModel, SvrStats), SvmError> {
    params.validate()?;
    let n = x.rows();
    if y.len() != n {
        return Err(SvmError::LabelLengthMismatch { rows: n, labels: y.len() });
    }
    if n == 0 {
        return Err(SvmError::InvalidParameter("empty training set".into()));
    }
    let c = params.c;
    let eps = params.epsilon;

    let mut norms_sq = vec![0.0; n];
    x.row_norms_sq(&mut norms_sq);

    // Extended problem: index t < n is α_t (pseudo-label +1); t >= n is
    // α*_{t-n} (pseudo-label −1).
    let m2 = 2 * n;
    let ext_y = |t: usize| -> Scalar {
        if t < n {
            1.0
        } else {
            -1.0
        }
    };
    let base = |t: usize| -> usize {
        if t < n {
            t
        } else {
            t - n
        }
    };

    let mut alpha = vec![0.0 as Scalar; m2];
    // f_t = gradient of the dual objective = p_t at α = 0.
    let mut f: Vec<Scalar> =
        (0..m2).map(|t| if t < n { eps - y[t] } else { eps + y[t - n] }).collect();

    // Base kernel row cache for the two rows used per iteration.
    let kernel_row = |i: usize| -> Vec<Scalar> {
        let xi = x.row_sparse(i);
        let mut row = vec![0.0; n];
        x.smsv(&xi, &mut row);
        params.kernel.apply_row(&mut row, &norms_sq, norms_sq[i]);
        row
    };

    let mut iterations = 0usize;
    let mut converged = false;

    loop {
        // Maximal violating pair over the extended index set. With the
        // Keerthi sets expressed through pseudo-labels: f here is the
        // gradient, and optimality is max_{I_up}(−y f) <= min_{I_dn}(−y f).
        let (mut high, mut low) = (usize::MAX, usize::MAX);
        let (mut b_high, mut b_low) = (Scalar::INFINITY, Scalar::NEG_INFINITY);
        for t in 0..m2 {
            let a = alpha[t];
            let yt = ext_y(t);
            let can_up = a < c - ALPHA_EPS; // α can grow
            let can_dn = a > ALPHA_EPS; // α can shrink
                                        // Moving α_t up changes Σ y α by y_t; the violating-pair view
                                        // uses v_t = y_t f_t.
            let v = yt * f[t];
            // I_high: indices whose v can decrease the objective when the
            // variable moves in +y direction.
            let in_high = (yt > 0.0 && can_up) || (yt < 0.0 && can_dn);
            let in_low = (yt > 0.0 && can_dn) || (yt < 0.0 && can_up);
            if in_high && v < b_high {
                b_high = v;
                high = t;
            }
            if in_low && v > b_low {
                b_low = v;
                low = t;
            }
        }
        if high == usize::MAX || low == usize::MAX || b_low - b_high <= 2.0 * params.tolerance {
            converged = true;
            break;
        }
        if iterations >= params.max_iterations {
            break;
        }
        iterations += 1;

        let (bi, bj) = (base(high), base(low));
        let k_high = kernel_row(bi);
        let k_low = kernel_row(bj);
        let (yh, yl) = (ext_y(high), ext_y(low));
        let s = yh * yl;
        let eta = (k_high[bi] + k_low[bj] - 2.0 * k_high[bj]).max(1e-12);

        // Same two-variable solution as classification SMO, in the
        // extended coordinates.
        let (l_bound, h_bound) = if s < 0.0 {
            ((alpha[low] - alpha[high]).max(0.0), (c + alpha[low] - alpha[high]).min(c))
        } else {
            ((alpha[low] + alpha[high] - c).max(0.0), (alpha[low] + alpha[high]).min(c))
        };
        let unclipped = alpha[low] + yl * (yh * f[high] - yl * f[low]) / eta;
        let alpha_low_new = unclipped.clamp(l_bound, h_bound);
        let delta_low = alpha_low_new - alpha[low];
        if delta_low.abs() < 1e-14 {
            break;
        }
        let delta_high = -s * delta_low;
        alpha[low] = alpha_low_new;
        alpha[high] = (alpha[high] + delta_high).clamp(0.0, c);

        // Gradient update: f_t += Δ(β) K over base indices, with extended
        // signs folded in: β changes by y_h Δα_high at bi and y_l Δα_low
        // at bj; f_t = Σ β K(base(t)) + p_t, and the extended gradient is
        // y_t-free in this representation.
        let (dh, dl) = (yh * delta_high, yl * delta_low);
        for t in 0..m2 {
            let bt = base(t);
            f[t] += dh * k_high[bt] + dl * k_low[bt];
        }
    }

    // KKT interval midpoint for b, in v = y f coordinates.
    let (mut b_high, mut b_low) = (Scalar::INFINITY, Scalar::NEG_INFINITY);
    for t in 0..m2 {
        let a = alpha[t];
        let yt = ext_y(t);
        let can_up = a < c - ALPHA_EPS;
        let can_dn = a > ALPHA_EPS;
        let v = yt * f[t];
        let in_high = (yt > 0.0 && can_up) || (yt < 0.0 && can_dn);
        let in_low = (yt > 0.0 && can_dn) || (yt < 0.0 && can_up);
        if in_high {
            b_high = b_high.min(v);
        }
        if in_low {
            b_low = b_low.max(v);
        }
    }
    let bias = -(b_high + b_low) / 2.0;

    let mut svs = Vec::new();
    let mut coefs = Vec::new();
    for i in 0..n {
        let beta = alpha[i] - alpha[i + n];
        if beta.abs() > ALPHA_EPS {
            svs.push(x.row_sparse(i));
            coefs.push(beta);
        }
    }
    let stats = SvrStats { iterations, converged, n_support_vectors: svs.len() };
    Ok((SvmModel::new(params.kernel, svs, coefs, bias), stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dls_sparse::{CsrMatrix, SparseVec, TripletMatrix};

    fn line_data(slope: f64, intercept: f64, n: usize) -> (CsrMatrix, Vec<f64>) {
        let mut t = TripletMatrix::new(n, 1);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let xv = i as f64 / (n - 1) as f64 * 4.0 - 2.0;
            if xv != 0.0 {
                t.push(i, 0, xv);
            }
            y.push(slope * xv + intercept);
        }
        (CsrMatrix::from_triplets(&t.compact()), y)
    }

    #[test]
    fn fits_a_line_within_the_tube() {
        let (x, y) = line_data(2.0, 1.0, 21);
        let params =
            SvrParams { kernel: KernelKind::Linear, c: 100.0, epsilon: 0.05, ..Default::default() };
        let (model, stats) = train_svr(&x, &y, &params).unwrap();
        assert!(stats.converged, "converged with gap");
        for i in 0..x.rows() {
            let pred = model.decision_function(&x.row_sparse(i));
            assert!(
                (pred - y[i]).abs() <= params.epsilon + 0.05,
                "sample {i}: pred {pred} vs {} (tube {})",
                y[i],
                params.epsilon
            );
        }
    }

    #[test]
    fn gaussian_kernel_fits_a_sine() {
        let n = 30;
        let mut t = TripletMatrix::new(n, 1);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let xv = i as f64 / (n - 1) as f64 * std::f64::consts::TAU;
            t.push(i, 0, xv);
            y.push(xv.sin());
        }
        let x = CsrMatrix::from_triplets(&t.compact());
        let params = SvrParams {
            kernel: KernelKind::Gaussian { gamma: 2.0 },
            c: 50.0,
            epsilon: 0.05,
            max_iterations: 200_000,
            ..Default::default()
        };
        let (model, stats) = train_svr(&x, &y, &params).unwrap();
        assert!(stats.converged);
        let mse: f64 = (0..n)
            .map(|i| {
                let e = model.decision_function(&x.row_sparse(i)) - y[i];
                e * e
            })
            .sum::<f64>()
            / n as f64;
        assert!(mse < 0.02, "MSE {mse}");
    }

    #[test]
    fn flat_targets_need_no_support_vectors() {
        // Constant y within the tube: zero function + correct bias fits.
        let (x, _) = line_data(1.0, 0.0, 9);
        let y = vec![3.0; 9];
        let params = SvrParams { kernel: KernelKind::Linear, epsilon: 0.5, ..Default::default() };
        let (model, stats) = train_svr(&x, &y, &params).unwrap();
        assert!(stats.converged);
        let pred = model.decision_function(&SparseVec::new(1, vec![0], vec![0.5]));
        assert!((pred - 3.0).abs() <= 0.5 + 1e-6, "pred {pred}");
    }

    #[test]
    fn epsilon_controls_sv_count() {
        let (x, y) = line_data(1.5, 0.0, 25);
        // A tube wide enough to contain every target around a constant
        // needs no support vectors at all; a tight tube on a sloped line
        // must use some.
        let tight =
            SvrParams { kernel: KernelKind::Linear, c: 100.0, epsilon: 0.01, ..Default::default() };
        let covering = SvrParams { epsilon: 10.0, ..tight };
        let (_, s_tight) = train_svr(&x, &y, &tight).unwrap();
        let (_, s_cover) = train_svr(&x, &y, &covering).unwrap();
        assert_eq!(s_cover.n_support_vectors, 0, "covering tube needs no SVs");
        assert!(s_tight.n_support_vectors > 0, "tight tube on sloped data needs SVs");
    }

    #[test]
    fn validates_parameters() {
        let (x, y) = line_data(1.0, 0.0, 5);
        assert!(train_svr(&x, &y, &SvrParams { c: 0.0, ..Default::default() }).is_err());
        assert!(train_svr(&x, &y, &SvrParams { epsilon: -1.0, ..Default::default() }).is_err());
        assert!(train_svr(&x, &y[..3], &SvrParams::default()).is_err());
    }
}
